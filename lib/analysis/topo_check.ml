open Clusteer_isa
module Topology = Clusteer_topo.Topology

let codes = [ "TP001"; "TP002"; "TP003"; "TP004"; "TP005"; "TP006" ]

let check ~topology ~clusters () =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (* TP002: structural validity, delegated to the topology's own
     validator so the diagnostic always agrees with what the fabric
     constructor would reject. *)
  (match Topology.validate topology with
  | Error msg -> add (Diag.errorf ~code:"TP002" "malformed topology: %s" msg)
  | Ok () -> ());
  (* TP001: the fabric must span exactly the machine's clusters. *)
  if topology.Topology.clusters <> clusters then
    add
      (Diag.errorf ~code:"TP001"
         "topology %s spans %d clusters but the machine has %d"
         (Topology.name topology) topology.Topology.clusters clusters);
  (* Metric checks only make sense on a structurally valid fabric of
     the right size. *)
  if Result.is_ok (Topology.validate topology) then begin
    let n = topology.Topology.clusters in
    let d = Topology.distance_matrix topology in
    for a = 0 to n - 1 do
      if d.(a).(a) <> 0 then
        add
          (Diag.errorf ~code:"TP004" "cluster %d has self-distance %d" a
             d.(a).(a));
      for b = 0 to n - 1 do
        if a <> b && d.(a).(b) <= 0 then
          add
            (Diag.errorf ~code:"TP004" "clusters %d and %d are unreachable" a
               b);
        if d.(a).(b) <> d.(b).(a) then
          add
            (Diag.errorf ~code:"TP003"
               "asymmetric hop count between clusters %d and %d (%d vs %d)" a
               b
               d.(a).(b)
               d.(b).(a));
        if
          Topology.latency topology a b <> Topology.latency topology b a
        then
          add
            (Diag.errorf ~code:"TP003"
               "asymmetric latency between clusters %d and %d" a b)
      done
    done;
    (* Triangle inequality over all ordered triples; n <= 16 keeps
       this trivial. *)
    let triangle_ok = ref true in
    for a = 0 to n - 1 do
      for b = 0 to n - 1 do
        for c = 0 to n - 1 do
          if d.(a).(c) > d.(a).(b) + d.(b).(c) then triangle_ok := false
        done
      done
    done;
    if not !triangle_ok then
      add
        (Diag.errorf ~code:"TP004"
           "hop counts violate the triangle inequality");
    (match topology.Topology.kind with
    | Topology.Hier { groups; _ }
      when groups >= 4 && topology.Topology.uplink_bandwidth = 1 ->
        add
          (Diag.warnf ~code:"TP005"
             "%d groups share a single uplink channel; cross-group copies \
              will serialize"
             groups)
    | _ -> ());
    add
      (Diag.infof ~code:"TP006" "%s: diameter %d hops, mean distance %.2f"
         (Topology.name topology) (Topology.diameter topology)
         (Topology.mean_distance topology))
  end;
  List.sort Diag.compare !diags
