(** Static micro-ops.

    A static micro-op is one node of the program text; the trace
    generator instantiates it many times dynamically. [id] is unique
    within a {!Program.t} and is the key under which compiler passes
    record steering annotations ({!Annot}).

    Loads and stores carry a [stream] identifier naming the abstract
    memory-address stream they access; branches carry a [branch_ref]
    naming their behaviour model. Both are interpreted by the trace
    layer, keeping the ISA independent of workload modelling. *)

type t = {
  id : int;
  opcode : Opcode.t;
  dst : Reg.t option;
  srcs : Reg.t array;
  stream : int;  (** memory stream id; [-1] for non-memory micro-ops *)
  branch_ref : int;  (** branch model id; [-1] for non-branches *)
}

val make :
  id:int ->
  opcode:Opcode.t ->
  ?dst:Reg.t ->
  ?srcs:Reg.t array ->
  ?stream:int ->
  ?branch_ref:int ->
  unit ->
  t
(** Smart constructor; validates operand shape against the opcode
    (e.g. a [Store] has no destination, a [Load] has one; memory
    micro-ops must name a stream). *)

val is_mem : t -> bool
val is_branch : t -> bool
val pp : Format.formatter -> t -> unit
