(** Basic blocks: straight-line micro-op sequences with CFG successors.

    A block with two or more successors must end in a [Branch] micro-op
    whose behaviour model picks among them at trace time; a block with
    one successor falls through. An empty successor array marks a
    program exit. *)

type t = {
  id : int;
  uops : Uop.t array;
  succs : int array;  (** successor block ids *)
}

val make : id:int -> uops:Uop.t array -> succs:int array -> t
(** Validates the branch/successor contract described above. *)

val terminator : t -> Uop.t option
(** The final branch micro-op, when the block is multi-successor. *)

val pp : Format.formatter -> t -> unit
