test/test_util.ml: Alcotest Array Bitset Clusteer_util Csv Filename Fun Hashtbl List Option Parallel Plot Pqueue QCheck QCheck_alcotest Ring Rng Stats String Sys Table Vec
