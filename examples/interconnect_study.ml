(* Interconnect topology study: the paper's baseline assumes dedicated
   point-to-point links between clusters (Table 2). This example
   re-runs the hybrid and the hardware baseline over a shared bus and
   a ring at 4 clusters, showing how much the steering problem hardens
   when communication gets scarcer.

     dune exec examples/interconnect_study.exe *)

module Config = Clusteer_uarch.Config
module Topology = Clusteer_topo.Topology
module Stats = Clusteer_uarch.Stats
module Runner = Clusteer_harness.Runner
module Spec2000 = Clusteer_workloads.Spec2000
module Pinpoints = Clusteer_workloads.Pinpoints
module Table = Clusteer_util.Table

let benchmarks = [ "178.galgel"; "171.swim"; "164.gzip-1" ]
let uops = 12_000

let topologies =
  [
    ("p2p", Topology.p2p ~clusters:4 ());
    ("bus", Topology.bus ~clusters:4 ());
    ("ring", Topology.ring ~clusters:4 ());
  ]

let () =
  Fmt.pr "Interconnect study: 4 clusters, %d micro-ops per point@.@." uops;
  let header =
    [| "benchmark"; "config"; "p2p cyc"; "bus cyc"; "ring cyc"; "bus copies" |]
  in
  let rows =
    List.concat_map
      (fun name ->
        let profile = Spec2000.find name in
        let point = List.hd (Pinpoints.points profile) in
        List.map
          (fun config ->
            let run topology =
              let machine = { Config.default_4c with Config.topology } in
              snd
                (List.hd
                   (Runner.run_point ~machine ~configs:[ config ] ~uops point)
                     .Runner.runs)
            in
            let by =
              List.map (fun (tag, t) -> (tag, run t)) topologies
            in
            let cyc tag = (List.assoc tag by).Stats.cycles in
            [|
              name;
              Clusteer.Configuration.name config;
              string_of_int (cyc "p2p");
              string_of_int (cyc "bus");
              string_of_int (cyc "ring");
              string_of_int (List.assoc "bus" by).Stats.copies_generated;
            |])
          [
            Clusteer.Configuration.Op;
            Clusteer.Configuration.Vc { virtual_clusters = 2 };
          ])
      benchmarks
  in
  print_string (Table.render ~header rows);
  Fmt.pr
    "@.A shared bus serialises every copy (1/cycle total); the ring pays@.\
     distance in hops. Both amplify the value of communication-aware@.\
     steering relative to the paper's dedicated point-to-point links.@."
