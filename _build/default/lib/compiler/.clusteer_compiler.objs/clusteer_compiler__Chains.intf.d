lib/compiler/chains.mli: Annot Clusteer_ddg Clusteer_isa
