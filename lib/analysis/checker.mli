(** Pass-based driver over the static checks.

    A {!target} bundles one program + annotation under one machine
    configuration; {!run} applies a selection of passes and returns the
    merged, sorted findings. This is what [csteer check], the serve
    admission hook and the test suite all drive. *)

open Clusteer_isa
module Compiler = Clusteer_compiler
module Uarch = Clusteer_uarch

type target = {
  label : string;  (** e.g. ["gzip/vc2"]; used in reports *)
  program : Program.t;
  likely : int -> int option;
  annot : Annot.t;
  config : Uarch.Config.t;
  region_uops : int;
  max_chain : int;
      (** chain-length cap the annotation was compiled with (0 =
          unlimited); see {!Vc_check.check} *)
  claimed : Compiler.Diagnostics.t option;
      (** compiler-reported partition summary to cross-check (VC008) *)
  critical : bool array option;  (** criticality hints to verify (PL005) *)
  slack_threshold : int;
  events : Dyn_check.event list option;
      (** recorded steering decisions to replay (DYN0xx) *)
}

val target :
  ?label:string ->
  ?region_uops:int ->
  ?max_chain:int ->
  ?claimed:Compiler.Diagnostics.t ->
  ?critical:bool array ->
  ?slack_threshold:int ->
  ?events:Dyn_check.event list ->
  program:Program.t ->
  likely:(int -> int option) ->
  annot:Annot.t ->
  config:Uarch.Config.t ->
  unit ->
  target
(** Build a target; [label] defaults to the program name, [region_uops]
    to 512, [max_chain] to 0 (unlimited), [slack_threshold] to 0. *)

type pass = { name : string; applies : target -> bool; run : target -> Diag.t list }

val passes : pass list
(** The registry, in canonical order: ["ir"], ["liv"], ["vc"],
    ["place"], ["cost"], ["dyn"], ["topo"], ["meta"]. A pass that does
    not apply to a target (e.g. ["vc"] on a static annotation) is
    skipped silently by {!run}. *)

val code_table : (string * string list) list
(** Every stable diagnostic code, grouped by the pass (or shared
    vocabulary: ["compiler"] for CP0xx, ["drift"] for CM1xx) that owns
    it. The ["meta"] pass checks this table for duplicates; the test
    suite additionally checks it against the ARCHITECTURE.md diagnostic
    table. *)

val select : string list -> (pass list, string) result
(** Resolve pass names; [Error] names the first unknown one. The empty
    list selects every pass. *)

val run : ?passes:pass list -> target -> Diag.t list
(** Apply the applicable passes and sort findings with
    {!Clusteer_isa.Diag.compare}. *)

val failed : strict:bool -> Diag.t list -> bool
(** Errors always fail; with [strict], warnings fail too. Info never
    fails. *)

val report_json : label:string -> Diag.t list -> Clusteer_obs.Json.t
(** [{"target":...,"errors":n,"warnings":n,"infos":n,
    "diagnostics":[...]}]. *)
