lib/vliw/schedule.ml: Array Clusteer_ddg Clusteer_util Ddg List Machine Printf
