module Json = Clusteer_obs.Json
module Counters = Clusteer_obs.Counters
module Expo = Clusteer_obs.Expo
module Prof = Clusteer_obs.Profile
module Ledger = Clusteer_obs.Ledger
module Profile = Clusteer_workloads.Profile
module Spec2000 = Clusteer_workloads.Spec2000
module Pinpoints = Clusteer_workloads.Pinpoints
module Synth = Clusteer_workloads.Synth
module Runner = Clusteer_harness.Runner
module Energy = Clusteer_uarch.Energy

type config = {
  socket_path : string;
  queue_depth : int;
  domains : int option;
  cache_budget : int;
  cache_dir : string option;
  ledger_dir : string option;
  profile : bool;
  log : string -> unit;
}

let default_config ~socket_path =
  {
    socket_path;
    queue_depth = 64;
    domains = None;
    cache_budget = 64 * 1024 * 1024;
    cache_dir = None;
    ledger_dir = None;
    profile = false;
    log = (fun _ -> ());
  }

(* Server-side profiler spans: the batch cycle is single-threaded (the
   worker pool parallelism lives inside the dispatch span), so these
   observe straight into the server registry. *)
type prof_spans = {
  p_admission : Prof.span;
  p_dispatch : Prof.span;
  p_cache : Prof.span;
}

type t = {
  cfg : config;
  registry : Counters.registry;
  cache : Cache.t;
  profiled : bool;  (* give each worker job a per-registry profiler *)
  prof : prof_spans option;
  ledger : Ledger.t option;
  requests : Counters.counter;
  batches : Counters.counter;
  rej_queue_full : Counters.counter;
  rej_timeout : Counters.counter;
  rej_check : Counters.counter;
  errors : Counters.counter;
  queue_depth_h : Counters.histogram;
  batch_size_h : Counters.histogram;
  latency_us_h : Counters.histogram;
}

(* ---- request resolution and execution ---------------------------- *)

let resolve (req : Request.t) =
  match Spec2000.find req.Request.workload with
  | exception Not_found ->
      Error (Printf.sprintf "unknown workload %S" req.Request.workload)
  | profile -> (
      match
        let profile = Request.apply_overrides profile req.Request.overrides in
        Profile.validate profile;
        profile
      with
      | exception Invalid_argument m -> Error m
      | profile -> (
          let points = Pinpoints.points profile in
          match List.nth_opt points req.Request.phase with
          | Some point -> Ok point
          | None ->
              Error
                (Printf.sprintf "workload %s has only %d phases"
                   req.Request.workload (List.length points))))

let energy_json (e : Energy.breakdown) =
  Json.Obj
    [
      ("total", Json.Float e.Energy.total);
      ("per_uop", Json.Float e.Energy.per_uop);
      ("static", Json.Float e.Energy.static_);
      ("dynamic", Json.Float e.Energy.dynamic);
      ("copies", Json.Float e.Energy.copies);
    ]

(* Run one admitted request against a private registry. The result
   document is a pure function of the canonical request (PR 2's
   determinism guarantee), which is what makes the cached bytes
   replayable verbatim. *)
let execute ~registry ?(profiled = false) (req : Request.t)
    (point : Pinpoints.point) =
  let machine =
    Clusteer_uarch.Config.default ~clusters:req.Request.clusters
  in
  let profile = if profiled then Some (Prof.create ~registry ()) else None in
  let workload = Synth.build point.Pinpoints.profile in
  let seed =
    match req.Request.seed with
    | Some s -> s
    | None -> Runner.trace_seed point
  in
  let warmup =
    match req.Request.warmup with
    | Some w -> w
    | None -> Runner.default_warmup req.Request.uops
  in
  let runs =
    Runner.run_workload ~warmup ~seed ~registry ?profile ~machine
      ~configs:[ req.Request.policy ] ~uops:req.Request.uops workload
  in
  let name, stats = List.hd runs in
  Json.Obj
    [
      ("workload", Json.Str req.Request.workload);
      ("phase", Json.Int req.Request.phase);
      ("config", Json.Str name);
      ("clusters", Json.Int req.Request.clusters);
      ("uops", Json.Int req.Request.uops);
      ("warmup", Json.Int warmup);
      ("seed", Json.Int seed);
      ("stats", Clusteer_uarch.Stats.to_json stats);
      ( "energy",
        energy_json (Energy.estimate ~clusters:req.Request.clusters stats) );
    ]

(* ---- batch cycle -------------------------------------------------- *)

type job = {
  request : Request.t;
  rhash : string;
  point : Pinpoints.point;
  deadline : float option;  (* absolute seconds, epoch scale *)
  arrived : float;
  mutable slots : (int * int) list;
      (** (line index, protocol id) to answer — head is the admitting
          command, the rest are same-batch duplicates folded in *)
}

type outcome = O_timeout | O_error of string | O_done of string * float

(* Handle one connection's command lines; returns the response lines
   (one per command, in order), whether shutdown was requested, and
   the committed micro-ops of the batch's fresh simulations (what the
   ledger attributes the batch's GC allocation to). *)
let handle_batch t lines =
  let n = List.length lines in
  Counters.incr t.batches;
  Counters.observe t.batch_size_h n;
  let responses = Array.make n "" in
  let set i r = responses.(i) <- Protocol.encode_response r in
  let stats_slots = ref [] in
  let metrics_slots = ref [] in
  let jobs = ref [] in
  let inflight : (string, job) Hashtbl.t = Hashtbl.create 8 in
  let shutdown = ref false in
  (match t.prof with Some p -> Prof.enter p.p_admission | None -> ());
  List.iteri
    (fun i line ->
      match Protocol.parse_command line with
      | Error m ->
          Counters.incr t.errors;
          set i (Protocol.Error_reply { id = 0; message = m })
      | Ok Protocol.Ping -> set i Protocol.Pong
      | Ok Protocol.Shutdown ->
          shutdown := true;
          set i Protocol.Bye
      | Ok Protocol.Stats -> stats_slots := i :: !stats_slots
      | Ok Protocol.Metrics -> metrics_slots := i :: !metrics_slots
      | Ok (Protocol.Simulate { id; deadline_ms; request }) -> (
          Counters.incr t.requests;
          match resolve request with
          | Error message ->
              Counters.incr t.errors;
              set i (Protocol.Error_reply { id; message })
          | Ok point -> (
              let now = Unix.gettimeofday () in
              let rhash = Request.hash request in
              let lookup =
                match t.prof with
                | Some p ->
                    Prof.time p.p_cache (fun () -> Cache.find t.cache rhash)
                | None -> Cache.find t.cache rhash
              in
              match lookup with
              | Some cached ->
                  (* The fast path of the whole subsystem: a repeat
                     request is answered from the table, not re-run —
                     the cached bytes are spliced back verbatim. *)
                  Counters.observe t.latency_us_h 0;
                  responses.(i) <-
                    Protocol.encode_result_line ~id ~hash:rhash ~cached:true
                      ~result:cached
              | None ->
                  if (match deadline_ms with Some d -> d <= 0. | None -> false)
                  then begin
                    Counters.incr t.rej_timeout;
                    set i (Protocol.Rejected { id; reason = Protocol.Timeout })
                  end
                  else begin
                    match Request.check request with
                    | Error message ->
                        (* Admission-time static verification: an
                           ill-formed request never reaches a worker. *)
                        Counters.incr t.rej_check;
                        set i
                          (Protocol.Rejected
                             {
                               id;
                               reason = Protocol.Check_failed message;
                             })
                    | Ok () -> (
                    match Hashtbl.find_opt inflight rhash with
                    | Some job -> job.slots <- job.slots @ [ (i, id) ]
                    | None ->
                        if Hashtbl.length inflight >= t.cfg.queue_depth then begin
                          Counters.incr t.rej_queue_full;
                          set i
                            (Protocol.Rejected
                               { id; reason = Protocol.Queue_full })
                        end
                        else begin
                          let job =
                            {
                              request;
                              rhash;
                              point;
                              deadline =
                                Option.map
                                  (fun ms -> now +. (ms /. 1000.))
                                  deadline_ms;
                              arrived = now;
                              slots = [ (i, id) ];
                            }
                          in
                          Hashtbl.add inflight rhash job;
                          jobs := job :: !jobs;
                          Counters.observe t.queue_depth_h
                            (Hashtbl.length inflight)
                        end)
                  end)))
    lines;
  (match t.prof with
  | Some p ->
      Prof.leave p.p_admission;
      Prof.flush p.p_admission
  | None -> ());
  (* Dispatch oldest-deadline-first; deadline-free work runs last, in
     arrival order. *)
  let queue =
    List.stable_sort
      (fun a b ->
        let d = function Some x -> x | None -> infinity in
        compare (d a.deadline, a.arrived) (d b.deadline, b.arrived))
      (List.rev !jobs)
  in
  (match t.prof with Some p -> Prof.enter p.p_dispatch | None -> ());
  let outcomes =
    (* Request batches are heterogeneous (arbitrary uops/config mixes)
       and the deadline check is time-of-dispatch, so the dynamic
       stealing schedule is the right fit here; it also preserves the
       per-item registry isolation the serve tests pin. *)
    Runner.map_isolated ?domains:t.cfg.domains
      ~strategy:Clusteer_util.Parallel.Steal ~into:t.registry
      (fun ~registry job ->
        let now = Unix.gettimeofday () in
        match job.deadline with
        | Some d when now >= d -> O_timeout
        | _ -> (
            Counters.incr (Counters.counter ~registry "serve.simulations");
            match
              execute ~registry ~profiled:t.profiled job.request job.point
            with
            | result -> O_done (Json.to_string result, Unix.gettimeofday ())
            | exception e -> O_error (Printexc.to_string e)))
      queue
  in
  (match t.prof with
  | Some p ->
      Prof.leave p.p_dispatch;
      Prof.flush p.p_dispatch
  | None -> ());
  let sim_uops =
    List.fold_left2
      (fun acc job outcome ->
        match outcome with
        | O_done _ -> acc + job.request.Request.uops
        | O_timeout | O_error _ -> acc)
      0 queue outcomes
  in
  List.iter2
    (fun job outcome ->
      match outcome with
      | O_timeout ->
          List.iter
            (fun (i, id) ->
              Counters.incr t.rej_timeout;
              set i (Protocol.Rejected { id; reason = Protocol.Timeout }))
            job.slots
      | O_error message ->
          List.iter
            (fun (i, id) ->
              Counters.incr t.errors;
              set i (Protocol.Error_reply { id; message }))
            job.slots
      | O_done (result, finished) ->
          Cache.store t.cache job.rhash result;
          let us = int_of_float ((finished -. job.arrived) *. 1e6) in
          List.iter
            (fun (i, id) ->
              Counters.observe t.latency_us_h us;
              responses.(i) <-
                Protocol.encode_result_line ~id ~hash:job.rhash ~cached:false
                  ~result)
            job.slots)
    queue outcomes;
  (* Stats and metrics snapshots see the whole batch they arrived in. *)
  let stats = lazy (Protocol.encode_response
                      (Protocol.Stats_reply (Counters.to_json t.registry))) in
  List.iter (fun i -> responses.(i) <- Lazy.force stats) !stats_slots;
  let metrics =
    lazy
      (Protocol.encode_response
         (Protocol.Metrics_reply (Expo.render t.registry)))
  in
  List.iter (fun i -> responses.(i) <- Lazy.force metrics) !metrics_slots;
  (Array.to_list responses, !shutdown, sim_uops)

(* ---- socket loop -------------------------------------------------- *)

let read_lines ic =
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  go []

let serve ?(registry = Counters.default) cfg =
  (match Sys.os_type with
  | "Unix" -> (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ())
  | _ -> ());
  (* A ledger needs phase timings in its snapshots, so asking for a
     ledger turns the profiler on too. *)
  let profiled = cfg.profile || cfg.ledger_dir <> None in
  let t =
    {
      cfg;
      registry;
      cache =
        Cache.create ~registry ?dir:cfg.cache_dir ~budget:cfg.cache_budget ();
      profiled;
      prof =
        (if profiled then
           let p = Prof.create ~registry () in
           Some
             {
               p_admission = Prof.span p "serve.admission";
               p_dispatch = Prof.span p "serve.dispatch";
               p_cache = Prof.span p "serve.cache_lookup";
             }
         else None);
      ledger = Option.map (fun dir -> Ledger.create ~dir) cfg.ledger_dir;
      requests = Counters.counter ~registry "serve.requests";
      batches = Counters.counter ~registry "serve.batches";
      rej_queue_full = Counters.counter ~registry "serve.rejected.queue_full";
      rej_timeout = Counters.counter ~registry "serve.rejected.timeout";
      rej_check = Counters.counter ~registry "serve.rejected.check_failed";
      errors = Counters.counter ~registry "serve.errors";
      queue_depth_h = Counters.histogram ~registry "serve.queue.depth";
      batch_size_h = Counters.histogram ~registry "serve.batch.size";
      latency_us_h = Counters.histogram ~registry "serve.latency.us";
    }
  in
  (* Pre-intern the counters the worker pool merges back, so a stats
     snapshot taken before the first simulation already lists them. *)
  ignore (Counters.counter ~registry "serve.simulations");
  Validate.install ();
  if Sys.file_exists cfg.socket_path then Sys.remove cfg.socket_path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind sock (Unix.ADDR_UNIX cfg.socket_path)
   with e ->
     Unix.close sock;
     raise e);
  Unix.listen sock 16;
  cfg.log (Printf.sprintf "listening on %s" cfg.socket_path);
  let stop = ref false in
  while not !stop do
    let fd, _ = Unix.accept sock in
    (try
       let ic = Unix.in_channel_of_descr fd in
       let oc = Unix.out_channel_of_descr fd in
       let lines = read_lines ic in
       let started = Unix.gettimeofday () in
       let gc0 = Ledger.gc_now () in
       let replies, shutdown, sim_uops = handle_batch t lines in
       (match t.ledger with
       | None -> ()
       | Some ledger ->
           let wall_s = Unix.gettimeofday () -. started in
           let gc = Ledger.gc_sub (Ledger.gc_now ()) gc0 in
           let batch = Counters.value t.batches in
           ignore
             (Ledger.append ledger ~kind:"serve_batch"
                ~label:(Printf.sprintf "batch-%d" batch)
                ~config:
                  (Json.Obj [ ("commands", Json.Int (List.length lines)) ])
                ~started ~wall_s ~outcome:"ok" ~uops:sim_uops ~gc t.registry));
       List.iter
         (fun r ->
           output_string oc r;
           output_char oc '\n')
         replies;
       flush oc;
       if shutdown then stop := true;
       cfg.log
         (Printf.sprintf "batch: %d command(s)%s" (List.length lines)
            (if shutdown then ", shutting down" else ""))
     with e -> cfg.log (Printf.sprintf "connection error: %s" (Printexc.to_string e)));
    (try Unix.close fd with Unix.Unix_error _ -> ())
  done;
  Unix.close sock;
  if Sys.file_exists cfg.socket_path then Sys.remove cfg.socket_path
