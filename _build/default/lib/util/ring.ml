type 'a t = {
  buf : 'a option array;
  mutable head : int; (* index of oldest element *)
  mutable len : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { buf = Array.make capacity None; head = 0; len = 0 }

let capacity t = Array.length t.buf
let length t = t.len
let is_empty t = t.len = 0
let is_full t = t.len = Array.length t.buf
let free_slots t = Array.length t.buf - t.len

let push t v =
  if is_full t then false
  else begin
    let tail = (t.head + t.len) mod Array.length t.buf in
    t.buf.(tail) <- Some v;
    t.len <- t.len + 1;
    true
  end

let peek t = if t.len = 0 then None else t.buf.(t.head)

let pop t =
  if t.len = 0 then None
  else begin
    let v = t.buf.(t.head) in
    t.buf.(t.head) <- None;
    t.head <- (t.head + 1) mod Array.length t.buf;
    t.len <- t.len - 1;
    v
  end

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Ring.get: index out of range";
  match t.buf.((t.head + i) mod Array.length t.buf) with
  | Some v -> v
  | None -> assert false

let iter f t =
  for i = 0 to t.len - 1 do
    f (get t i)
  done

let to_list t =
  let acc = ref [] in
  iter (fun v -> acc := v :: !acc) t;
  List.rev !acc

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.head <- 0;
  t.len <- 0
