(** Two-level data memory hierarchy: L1D + unified L2 + fixed-latency
    main memory (Table 2). Returns access latencies; port arbitration
    is done by the caller (the core's load/store pipelines). *)

type t

val create : Config.t -> t

val load_latency : t -> addr:int -> int
(** Latency of a read at [addr]: L1 hit time, or L1 + L2 hit time, or
    L1 + L2 + memory latency, filling lines along the way. When the
    configuration enables [prefetch_next_line], a demand L1 miss also
    fills [addr + line] into both levels (latency-free — an idealised
    prefetcher that is always timely). *)

val store : t -> addr:int -> unit
(** Retired-store write (write-allocate in both levels, no latency
    returned: stores retire through the LSQ). *)

val l1_resident : t -> addr:int -> bool
(** Non-mutating L1 lookup, used by the MSHR check before a load is
    allowed to start. *)

val prewarm : t -> base:int -> bytes:int -> unit
(** Touch every line of the range in both levels without counting
    statistics — restores the warmed cache state a checkpointed
    simulation point would start from. Ranges larger than a cache
    simply leave its LRU tail resident, as real warmup would. *)

val l1_hits : t -> int
val l1_misses : t -> int
val l2_hits : t -> int
val l2_misses : t -> int
val reset_stats : t -> unit

val reset : t -> unit
(** Back to the post-{!create} state: every line invalidated in both
    levels, statistics zeroed. Used by engine reuse across runs. *)
