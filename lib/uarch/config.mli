(** Machine configuration (paper Table 2).

    The baseline is a clustered x86-like out-of-order core with a
    monolithic front-end and [clusters] back-end clusters, each with
    its own INT/FP/COPY issue queues and functional units, joined by
    dedicated 1-cycle point-to-point links. The LSQ and the data cache
    hierarchy are unified and shared. *)

type cache = {
  size_bytes : int;
  ways : int;
  line_bytes : int;
  hit_latency : int;
}

type t = {
  clusters : int;
  (* Front-end *)
  fetch_width : int;  (** 6 micro-ops/cycle *)
  fetch_to_dispatch : int;  (** 5-cycle fetch-to-dispatch depth *)
  tc_size_uops : int;  (** 24K micro-op trace cache *)
  tc_line_uops : int;  (** 6 micro-ops per trace line *)
  tc_ways : int;
  tc_miss_penalty : int;  (** cycles to rebuild a missing trace line *)
  dispatch_width : int;  (** decode/rename/steer: 6 micro-ops/cycle total *)
  dispatch_per_cluster : int;
      (** per-cluster steer-port bandwidth. Default 6 (non-binding):
          modelling Table 2's "3+3" as a hard 3/cluster or 3-INT+3-FP
          cap over-serializes this reproduction's front-end and
          inverts the paper's OP-vs-software ordering, so the notation
          is read as a total width of 6; the cap stays configurable
          for sensitivity studies. *)
  commit_width : int;  (** 6 micro-ops/cycle total *)
  commit_class_width : int;
      (** per-class (INT / FP) commit bandwidth; default 6
          (non-binding) for the same reason as [dispatch_per_cluster] *)
  rob_size : int;  (** 256+256 entries *)
  (* Per-cluster back-end *)
  int_iq_size : int;  (** 48 entries *)
  int_issue_width : int;  (** 2/cycle *)
  fp_iq_size : int;  (** 48 entries *)
  fp_issue_width : int;  (** 2/cycle *)
  copy_q_size : int;  (** 24 entries *)
  copy_issue_width : int;  (** 1/cycle *)
  int_regfile : int;  (** 256-entry INT register file per cluster *)
  fp_regfile : int;  (** 256-entry FP register file per cluster *)
  (* Interconnect *)
  topology : Clusteer_topo.Topology.t;
      (** inter-cluster fabric shape and per-hop/uplink latencies; the
          default is the paper's 1-cycle point-to-point link over
          [clusters] clusters. [topology.clusters] must equal
          [clusters] ({!validate} enforces it); build alternatives
          with {!Clusteer_topo.Topology.of_name} or its
          constructors. *)
  (* Memory *)
  lsq_size : int;  (** 256 entries *)
  mshrs : int;
      (** maximum outstanding L1 misses (memory-level parallelism);
          paper-unspecified, default 8 *)
  l1d : cache;  (** 32KB 4-way, 3-cycle hit *)
  l1_read_ports : int;  (** 2 *)
  l1_write_ports : int;  (** 1 *)
  l2 : cache;  (** 2MB 16-way, 13-cycle hit *)
  memory_latency : int;  (** >= 500 cycles *)
  prefetch_next_line : bool;
      (** next-line prefetch into L1/L2 on every demand L1 miss
          (paper-unspecified; default off so the baseline matches the
          paper's memory system; the bench quantifies it) *)
  (* Branch prediction (unspecified in the paper; see DESIGN.md) *)
  bpred_bits : int;  (** gshare history/table bits *)
  redirect_penalty : int;  (** extra cycles after a mispredict resolves *)
  steer_serial_stages : int;
      (** extra decode pipeline stages charged to steering policies
          that use the serialized dependence-check + vote hardware
          (§2.1: sequential steering "may not meet the cycle time").
          Default 0 — the paper's evaluation deliberately lets OP keep
          a free serialized steer, making it an upper bound; the bench
          harness sweeps this knob to quantify the hybrid's complexity
          advantage. *)
}

val default : clusters:int -> t
(** Table 2 parameters for a machine with the given cluster count. *)

val default_2c : t
val default_4c : t

val validate : t -> unit
(** Sanity-check all parameters; raises [Invalid_argument]. *)

val describe : t -> (string * string) list
(** Human-readable parameter listing, used to regenerate Table 2. *)
