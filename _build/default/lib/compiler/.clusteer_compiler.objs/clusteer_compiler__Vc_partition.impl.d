lib/compiler/vc_partition.ml: Annot Array Chains Clusteer_ddg Clusteer_isa Critical Ddg Estimate List Program Region Uop
