lib/core/configuration.mli: Annot Clusteer_isa Clusteer_uarch Program
