lib/uarch/policy.ml: Annot Clusteer_isa Clusteer_trace Clusteer_util Dynuop Opcode Reg
