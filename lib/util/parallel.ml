(* The default domain count is capped: experiment sweeps are
   memory-bandwidth heavy and more than [default_domain_cap] domains
   has never paid for itself on the machines we run on. The cap only
   applies to the *default*; an explicit [~domains] is honoured as
   given. *)
let default_domain_cap = 8

let default_domains () = min default_domain_cap (Domain.recommended_domain_count ())

type strategy = Static | Steal

(* OCaml 5 minor collections are stop-the-world across *all* domains:
   every domain must reach a safepoint before any of them can collect.
   Allocation-heavy shards with the default (small) minor heap
   therefore spend most of their time rendezvousing instead of
   simulating — the measured root cause of the PR 2 anti-scaling.
   Enlarging the minor heap for the duration of a parallel region
   divides the rendezvous frequency by the same factor. The parent's
   setting is enlarged before spawning (so helpers inherit it) and
   restored after the join; helpers additionally apply it themselves
   in case the runtime snapshots parameters at spawn time. *)
let grow_minor_heap words =
  let g = Gc.get () in
  if g.Gc.minor_heap_size < words then
    Gc.set { g with Gc.minor_heap_size = words }

let with_minor_heap words f =
  match words with
  | None -> f ()
  | Some w ->
      let saved = (Gc.get ()).Gc.minor_heap_size in
      if saved >= w then f ()
      else begin
        grow_minor_heap w;
        Fun.protect
          ~finally:(fun () ->
            Gc.set { (Gc.get ()) with Gc.minor_heap_size = saved })
          f
      end

let reraise failure =
  match Atomic.get failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let collect results =
  Array.to_list
    (Array.map (function Some v -> v | None -> assert false) results)

(* Opt-in stealing mode: a shared atomic cursor hands out [chunk]
   consecutive indexes at a time. Kept for genuinely uneven work (the
   service layer's request batches); the cursor line bounces between
   domains, so the pre-partitioned mode below is the default. *)
let steal_map ~domains ~chunk ~minor_heap_words f input n results =
  let cursor = Atomic.make 0 in
  let failure = Atomic.make None in
  let worker () =
    Option.iter grow_minor_heap minor_heap_words;
    let rec loop () =
      let start = Atomic.fetch_and_add cursor chunk in
      if start < n && Atomic.get failure = None then begin
        let stop = min n (start + chunk) in
        (try
           (* The failure flag is consulted before every *element*, not
              just every chunk: under a large [chunk] a poisoned run
              stops after the in-flight element instead of draining the
              rest of the chunk. *)
           let i = ref start in
           while !i < stop && Atomic.get failure = None do
             results.(!i) <- Some (f input.(!i));
             incr i
           done
         with e ->
           (* First failure wins; keep its backtrace so the caller
              sees where the worker actually died. *)
           let bt = Printexc.get_raw_backtrace () in
           ignore (Atomic.compare_and_set failure None (Some (e, bt))));
        loop ()
      end
    in
    loop ()
  in
  (* There are only ceil(n/chunk) chunks to hand out: spawning more
     helpers than chunks-beyond-the-parent's just pays spawn/join for
     domains that never claim work. *)
  let nchunks = (n + chunk - 1) / chunk in
  let helpers =
    List.init (min (domains - 1) (nchunks - 1)) (fun _ -> Domain.spawn worker)
  in
  worker ();
  List.iter Domain.join helpers;
  reraise failure

(* Default mode: contiguous slices computed before spawn. No shared
   cursor on the hot path; worker [w] owns [w*n/d, (w+1)*n/d). *)
let static_map ~workers ~minor_heap_words f input n results =
  let failure = Atomic.make None in
  let run w =
    let lo = w * n / workers and hi = (w + 1) * n / workers in
    try
      let i = ref lo in
      while !i < hi && Atomic.get failure = None do
        results.(!i) <- Some (f input.(!i));
        incr i
      done
    with e ->
      let bt = Printexc.get_raw_backtrace () in
      ignore (Atomic.compare_and_set failure None (Some (e, bt)))
  in
  let helpers =
    List.init (workers - 1) (fun k ->
        Domain.spawn (fun () ->
            Option.iter grow_minor_heap minor_heap_words;
            run (k + 1)))
  in
  run 0;
  List.iter Domain.join helpers;
  reraise failure

let map ?domains ?(chunk = 1) ?(strategy = Static) ?minor_heap_words f xs =
  if chunk < 1 then invalid_arg "Parallel.map: chunk must be positive";
  let domains =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  let input = Array.of_list xs in
  let n = Array.length input in
  (* A short list never spawns: with n <= chunk the cursor could only
     ever hand out one chunk, so the helpers would join without doing
     anything — run sequentially instead. The minor-heap sizing still
     applies, so sequential and parallel runs see the same GC tuning
     (and speedup comparisons against [domains:1] stay honest). *)
  if domains <= 1 || n <= 1 || n <= chunk then
    with_minor_heap minor_heap_words (fun () -> List.map f xs)
  else begin
    let results = Array.make n None in
    with_minor_heap minor_heap_words (fun () ->
        match strategy with
        | Steal -> steal_map ~domains ~chunk ~minor_heap_words f input n results
        | Static ->
            static_map ~workers:(min domains n) ~minor_heap_words f input n
              results);
    collect results
  end

let map_sharded ?domains ?minor_heap_words ~init ~f xs =
  let domains =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  let input = Array.of_list xs in
  let n = Array.length input in
  if n = 0 then ([], [])
  else begin
    let workers = max 1 (min domains n) in
    if workers = 1 then
      with_minor_heap minor_heap_words (fun () ->
          let state = init 0 in
          (List.map (f state) xs, [ state ]))
    else begin
      let results = Array.make n None in
      let states = Array.make workers None in
      let failure = Atomic.make None in
      let run w =
        try
          (* Shard state is allocated *inside* the owning domain, so
             its minor allocations are domain-local from birth. *)
          let state = init w in
          states.(w) <- Some state;
          let lo = w * n / workers and hi = (w + 1) * n / workers in
          let i = ref lo in
          while !i < hi && Atomic.get failure = None do
            results.(!i) <- Some (f state input.(!i));
            incr i
          done
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          ignore (Atomic.compare_and_set failure None (Some (e, bt)))
      in
      with_minor_heap minor_heap_words (fun () ->
          let helpers =
            List.init (workers - 1) (fun k ->
                Domain.spawn (fun () ->
                    Option.iter grow_minor_heap minor_heap_words;
                    run (k + 1)))
          in
          run 0;
          List.iter Domain.join helpers);
      reraise failure;
      ( collect results,
        Array.to_list
          (Array.map (function Some s -> s | None -> assert false) states) )
    end
  end
