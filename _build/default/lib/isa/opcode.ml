type t =
  | Int_alu
  | Int_mul
  | Int_div
  | Fp_add
  | Fp_mul
  | Fp_div
  | Load
  | Store
  | Branch
  | Copy

type queue = Int_queue | Fp_queue | Copy_queue

type fu = Fu_alu | Fu_imul | Fu_fp | Fu_copy

let latency = function
  | Int_alu -> 1
  | Int_mul -> 3
  | Int_div -> 20
  | Fp_add -> 3
  | Fp_mul -> 5
  | Fp_div -> 20
  | Load -> 1
  | Store -> 1
  | Branch -> 1
  | Copy -> 1

let pipelined = function
  | Int_div | Fp_div -> false
  | Int_alu | Int_mul | Fp_add | Fp_mul | Load | Store | Branch | Copy -> true

let queue = function
  | Int_alu | Int_mul | Int_div | Load | Store | Branch -> Int_queue
  | Fp_add | Fp_mul | Fp_div -> Fp_queue
  | Copy -> Copy_queue

let fu = function
  | Int_alu | Load | Store | Branch -> Fu_alu
  | Int_mul | Int_div -> Fu_imul
  | Fp_add | Fp_mul | Fp_div -> Fu_fp
  | Copy -> Fu_copy

let is_mem = function
  | Load | Store -> true
  | Int_alu | Int_mul | Int_div | Fp_add | Fp_mul | Fp_div | Branch | Copy ->
      false

let writes_fp = function
  | Fp_add | Fp_mul | Fp_div -> true
  | Int_alu | Int_mul | Int_div | Load | Store | Branch | Copy -> false

let all =
  [| Int_alu; Int_mul; Int_div; Fp_add; Fp_mul; Fp_div; Load; Store; Branch; Copy |]

let to_string = function
  | Int_alu -> "alu"
  | Int_mul -> "imul"
  | Int_div -> "idiv"
  | Fp_add -> "fadd"
  | Fp_mul -> "fmul"
  | Fp_div -> "fdiv"
  | Load -> "load"
  | Store -> "store"
  | Branch -> "br"
  | Copy -> "copy"

let pp ppf t = Format.pp_print_string ppf (to_string t)
