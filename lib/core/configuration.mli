(** The five steering configurations of paper Table 3 (plus the §2.1
    parallel-steering strawman), each bundling its compile-time pass
    and its runtime policy.

    {!prepare} is the one-call entry point: given a program (and the
    profile feedback its workload provides), it runs whatever compiler
    pass the configuration needs and returns the annotation together
    with a fresh runtime {!Clusteer_uarch.Policy.t} for a machine with
    [clusters] physical clusters. *)

open Clusteer_isa

type t =
  | Op  (** occupancy-aware hardware-only steering [15] — the baseline *)
  | One_cluster  (** every micro-op to cluster 0 *)
  | Ob  (** static-placement dynamic-issue (SPDI) operation-based [19] *)
  | Rhop  (** region-based hierarchical operation partitioning [8] *)
  | Vc of { virtual_clusters : int }
      (** the paper's hybrid: software VC partitioning + hardware
          mapping. [Vc {virtual_clusters = 2}] on a 4-cluster machine
          is the paper's VC(2→4). *)
  | Op_parallel  (** §2.1 ablation: OP with stale intra-bundle locations *)
  | Mod_n of { n : int }
      (** extension beyond Table 3: the MOD_N baseline of [3] *)
  | Dep  (** extension beyond Table 3: dependence-based steering [5],
             i.e. OP without stall-over-steer *)
  | Crit
      (** extension beyond Table 3: criticality-aware steering after
          [24] — critical micro-ops chase operands, the rest balance *)
  | Thermal
      (** extension beyond Table 3: activity-migration steering after
          [7] — balance in-flight load against a decaying per-cluster
          heat proxy *)

val name : t -> string
(** Short identifier, e.g. ["vc2"]. *)

val of_name : string -> (t, [ `Msg of string ]) result
(** Inverse of {!name} (case-insensitive; also accepts ["one"] for
    ["one-cluster"]). The CLI's [--policy] parser and the service
    layer's request decoder both go through this, so the wire name of
    a policy is the same everywhere. *)

val description : t -> string
(** Table 3 description. *)

val table3 : clusters:int -> t list
(** The configurations evaluated against each other for a machine of
    the given size (2 → Fig. 5 set, 4 → Fig. 7 set). *)

type params = {
  remap_threshold : int;
      (** {!Clusteer_steer.Vc_map} remap hysteresis (in-flight
          micro-ops, default 8): a chain leader re-maps its VC to the
          least-loaded physical cluster only when the current target's
          occupancy exceeds the minimum by more than this margin
          (§3's "certain threshold"). 0 re-maps at every leader; large
          values freeze the initial mapping. *)
  stall_threshold : int;
      (** {!Clusteer_steer.Op} stall-over-steer bound (free IQ slots,
          default 36): OP stalls dispatch rather than mis-steer when
          the preferred cluster has fewer free issue-queue slots than
          this ([15]'s tuned constant). *)
  imbalance_limit : int;
      (** {!Clusteer_steer.Op} imbalance override (in-flight micro-op
          difference, default 200): when the occupancy gap between
          clusters exceeds this, OP steers to the lightest cluster
          regardless of operand locality. *)
  region_uops : int;
      (** Superblock region budget (static micro-ops, default 512):
          the compiler's region builder stops growing a region at this
          many micro-ops (§4.1's scheduling-region size). *)
  issue_width : float;
      (** {!Clusteer_compiler.Vc_partition} estimator issue bandwidth
          (micro-ops/cycle, default 2.0): per-VC issue width assumed by
          the §4.2 static completion-time estimator — Table 2's
          per-cluster INT issue width. *)
  comm_latency : float;
      (** {!Clusteer_compiler.Vc_partition} estimator communication
          cost (cycles, default 1.0): estimated penalty for a cross-VC
          operand — Table 2's 1-cycle point-to-point link. *)
  crit_min_scale : float;
      (** Placement criticality weight (dimensionless in \[0, 1\],
          default 0.15): contention-scale floor applied to zero-slack
          instructions in the VC partitioner. 0 makes critical chains
          follow their producers unconditionally; 1 disables
          criticality-aware placement (§5.3). *)
  max_chain : int;
      (** Chain-length cap (micro-ops, default 0 = unlimited): the
          compiler starts a fresh chain — i.e. inserts an extra chain
          leader, giving the hardware an extra re-mapping opportunity —
          whenever a same-VC run reaches this length. The paper's
          chains are maximal (§4.2); this is a tuner extension. See
          {!Clusteer_compiler.Chains}. *)
  slack_threshold : int;
      (** {!Clusteer_compiler.Crit_hints} criticality cut-off (cycles
          of slack, default 0): micro-ops with at most this much slack
          are marked critical for the [Crit] policy ([24]). *)
  topology : Clusteer_topo.Topology.t option;
      (** Inter-cluster fabric the steering layer should assume
          (default [None] — the paper's uniform 1-cycle point-to-point
          baseline). When set to a non-uniform topology (ring, mesh,
          hier), {!Clusteer_steer.Vc_map} remaps to the nearest of the
          least-loaded clusters and {!Clusteer_steer.Op} breaks load
          ties toward fewer copy hops; on p2p/bus (or [None]) both
          policies are bit-identical to the seed. The harness
          ({!Clusteer_harness.Runner}) overwrites this field with the
          machine's [Config.topology] so the engine's copy fabric and
          the steering layer always agree; set it manually only when
          calling {!prepare} directly. *)
}
(** Every tunable steering/compiler knob in one record — the single
    source of truth the auto-tuner's parameter space
    ({!Clusteer_tune.Param_space}) encodes into. Field defaults
    ({!default_params}) reproduce the paper's Table 2/§4 constants
    exactly, so [prepare ~params:default_params] is identical to
    [prepare] without [?params]. *)

val default_params : params
(** The paper's constants; see each field of {!params}. *)

val prepare :
  t ->
  program:Program.t ->
  likely:(int -> int option) ->
  clusters:int ->
  ?region_uops:int ->
  ?params:params ->
  ?annot:Annot.t ->
  ?registry:Clusteer_obs.Counters.registry ->
  unit ->
  Annot.t * Clusteer_uarch.Policy.t
(** [params] tunes every knob at once (default {!default_params});
    [region_uops], kept for backward compatibility, overrides
    [params.region_uops] when given explicitly.

    [registry] is where the policy registers its introspection
    counters (default {!Clusteer_obs.Counters.default}). The parallel
    harness passes a private registry per shard so concurrent runs
    never share mutable counter state, then merges the shards back
    deterministically.

    [annot] supplies a previously compiled annotation and skips the
    compiler pass. The pass is deterministic in (configuration,
    program, likely, clusters, region_uops, params), so the harness
    caches the
    annotation per (profile, configuration) within a domain and passes
    it back here; the returned policy is always fresh (policies are
    stateful). Must only be given an annotation produced by {!prepare}
    on the same configuration and inputs. *)
