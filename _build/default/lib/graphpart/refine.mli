(** Refinement step: greedy boundary moves (Fiduccia-Mattheyses style).

    Walking back up the coarsening hierarchy, nodes on part boundaries
    are moved to the part that most reduces the edge cut, subject to a
    balance constraint — the paper's "improvement to the initial
    partition based on metrics such as the workload per cluster and the
    total system workload". *)

val pass :
  Wgraph.t -> Partition.t -> k:int -> max_imbalance:float -> bool
(** One in-place refinement pass over all nodes; returns [true] when at
    least one move was applied. A move to part [p] is admissible when
    after it [p]'s weight stays within [max_imbalance] times the ideal
    part weight, or when it strictly improves the current worst
    imbalance. *)

val rebalance :
  Wgraph.t -> Partition.t -> k:int -> max_imbalance:float -> unit
(** Force the partition under the imbalance cap by evicting the
    cheapest boundary nodes from overweight parts, even at negative
    cut gain. *)

val run :
  Wgraph.t -> Partition.t -> k:int -> max_imbalance:float -> passes:int -> unit
(** Iterate {!pass} until a fixed point or [passes] rounds, then
    {!rebalance} and one final gain pass. *)
