lib/vliw/machine.mli: Clusteer_isa
