open Clusteer_isa

let codes = [ "META001" ]

let check ?documented table =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let owners = Hashtbl.create 64 in
  List.iter
    (fun (pass, cs) ->
      List.iter
        (fun code ->
          match Hashtbl.find_opt owners code with
          | Some other when other <> pass ->
              add
                (Diag.errorf ~code:"META001"
                   "diagnostic code %s is registered by both %S and %S" code
                   other pass)
          | Some _ | None -> Hashtbl.replace owners code pass)
        cs)
    table;
  (match documented with
  | None -> ()
  | Some doc ->
      let doc_set = Hashtbl.create 64 in
      List.iter (fun c -> Hashtbl.replace doc_set c ()) doc;
      Hashtbl.iter
        (fun code pass ->
          if not (Hashtbl.mem doc_set code) then
            add
              (Diag.errorf ~code:"META001"
                 "code %s (pass %S) is missing from the documented \
                  diagnostic table"
                 code pass))
        owners;
      List.iter
        (fun code ->
          if not (Hashtbl.mem owners code) then
            add
              (Diag.errorf ~code:"META001"
                 "code %s is documented but no pass registers it" code))
        doc);
  List.sort Diag.compare !diags
