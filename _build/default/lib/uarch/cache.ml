type t = {
  sets : int;
  ways : int;
  line_shift : int;
  tags : int array;  (* sets * ways; -1 = invalid *)
  recency : int array;  (* higher = more recently used *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

type outcome = Hit | Miss

let log2 n =
  let rec loop acc v = if v <= 1 then acc else loop (acc + 1) (v lsr 1) in
  loop 0 n

let create (c : Config.cache) =
  let sets = c.Config.size_bytes / (c.Config.ways * c.Config.line_bytes) in
  if sets <= 0 then invalid_arg "Cache.create: zero sets";
  if sets land (sets - 1) <> 0 then
    invalid_arg "Cache.create: set count must be a power of two";
  {
    sets;
    ways = c.Config.ways;
    line_shift = log2 c.Config.line_bytes;
    tags = Array.make (sets * c.Config.ways) (-1);
    recency = Array.make (sets * c.Config.ways) 0;
    clock = 0;
    hits = 0;
    misses = 0;
  }

let sets t = t.sets
let ways t = t.ways

let locate t addr =
  let line = addr lsr t.line_shift in
  let set = line land (t.sets - 1) in
  let tag = line lsr (log2 t.sets) in
  (set, tag)

let find_way t set tag =
  let base = set * t.ways in
  let rec loop w =
    if w = t.ways then None
    else if t.tags.(base + w) = tag then Some w
    else loop (w + 1)
  in
  loop 0

let access t ~addr ~write:_ =
  let set, tag = locate t addr in
  let base = set * t.ways in
  t.clock <- t.clock + 1;
  match find_way t set tag with
  | Some w ->
      t.hits <- t.hits + 1;
      t.recency.(base + w) <- t.clock;
      Hit
  | None ->
      t.misses <- t.misses + 1;
      (* Fill into the LRU (or an invalid) way. *)
      let victim = ref 0 in
      for w = 1 to t.ways - 1 do
        if t.recency.(base + w) < t.recency.(base + !victim) then victim := w
      done;
      t.tags.(base + !victim) <- tag;
      t.recency.(base + !victim) <- t.clock;
      Miss

let touch t ~addr =
  let hits = t.hits and misses = t.misses in
  (match access t ~addr ~write:false with Hit | Miss -> ());
  t.hits <- hits;
  t.misses <- misses

let probe t ~addr =
  let set, tag = locate t addr in
  find_way t set tag <> None

let invalidate_all t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.recency 0 (Array.length t.recency) 0

let hits t = t.hits
let misses t = t.misses

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
