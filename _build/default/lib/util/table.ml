type align = Left | Right

let fmt_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
let fmt_percent ?(decimals = 2) x = fmt_float ~decimals x ^ "%"

let render ?align ~header rows =
  let cols = Array.length header in
  List.iteri
    (fun i row ->
      if Array.length row <> cols then
        invalid_arg (Printf.sprintf "Table.render: row %d has wrong arity" i))
    rows;
  let align =
    match align with
    | Some a ->
        if Array.length a <> cols then
          invalid_arg "Table.render: align has wrong arity";
        a
    | None -> Array.init cols (fun i -> if i = 0 then Left else Right)
  in
  let widths = Array.map String.length header in
  List.iter
    (fun row ->
      Array.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    rows;
  let pad i cell =
    let w = widths.(i) in
    match align.(i) with
    | Left -> Printf.sprintf "%-*s" w cell
    | Right -> Printf.sprintf "%*s" w cell
  in
  let line row =
    String.concat "  " (Array.to_list (Array.mapi pad row))
  in
  let rule =
    String.concat "  "
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf
