lib/uarch/memsys.mli: Config
