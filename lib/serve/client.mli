(** Blocking client for the simulation service.

    One call = one connection = one batch: write every command line,
    shut down the write side, read one response line per command. *)

val call_lines : socket:string -> string list -> string list
(** Raw exchange. Raises [Unix.Unix_error] if the socket is absent or
    refuses (e.g. no server running). *)

val call : socket:string -> Protocol.command list -> (Protocol.response, string) result list
(** {!call_lines} plus per-line response parsing; result order matches
    command order. *)

val submit :
  socket:string ->
  ?id:int ->
  ?deadline_ms:float ->
  Request.t ->
  (Protocol.response, string) result
(** Submit a single simulation request. *)

val stats : socket:string -> (Clusteer_obs.Json.t, string) result
(** Fetch the server's counter-registry snapshot. *)

val metrics : socket:string -> (string, string) result
(** Scrape the server's Prometheus-style exposition text (the
    [metrics] command). *)

val shutdown : socket:string -> (unit, string) result
(** Ask the server to stop after this connection. *)
