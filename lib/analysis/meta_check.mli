(** Self-check over the diagnostic-code registry.

    Every pass (and the compiler's partition-quality reporter) declares
    the stable codes it can emit; this pass verifies the registry is
    coherent so the vocabulary stays trustworthy as passes are added:

    - [META001] (error) — a code is registered by more than one pass
      (two findings would be indistinguishable by code), or — when a
      documented-code list is supplied — a registered code is missing
      from the documentation table, or a code is documented but
      registered nowhere.

    The ARCHITECTURE.md diagnostic table is the canonical documented
    list; the test suite feeds it in, while the runtime pass checks
    uniqueness only (the binary does not carry the docs). *)

val codes : string list

val check :
  ?documented:string list -> (string * string list) list -> Clusteer_isa.Diag.t list
(** [check ~documented table] where [table] maps a pass name to its
    registered codes. *)
