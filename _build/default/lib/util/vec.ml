type t = {
  mutable data : int array;
  mutable len : int;
  default : int;
}

let create ?(initial = 64) ~default () =
  { data = Array.make (max 1 initial) default; len = 0; default }

let length t = t.len

let grow t needed =
  let cap = max needed (2 * Array.length t.data) in
  let data = Array.make cap t.default in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let get t i =
  if i < 0 then invalid_arg "Vec.get: negative index";
  if i < Array.length t.data then t.data.(i) else t.default

let set t i v =
  if i < 0 then invalid_arg "Vec.set: negative index";
  if i >= Array.length t.data then grow t (i + 1);
  t.data.(i) <- v;
  if i >= t.len then t.len <- i + 1

let push t v =
  let i = t.len in
  set t i v;
  i

let clear t =
  Array.fill t.data 0 (Array.length t.data) t.default;
  t.len <- 0
