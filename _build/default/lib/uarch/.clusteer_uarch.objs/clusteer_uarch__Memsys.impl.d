lib/uarch/memsys.ml: Cache Config
