open Clusteer_isa

type t = { seq : int; suop : Uop.t; addr : int; taken : bool }

let static_id t = t.suop.Uop.id

let pp ppf t =
  Format.fprintf ppf "@[%d:%a%s%s@]" t.seq Uop.pp t.suop
    (if t.addr >= 0 then Printf.sprintf " @0x%x" t.addr else "")
    (if Uop.is_branch t.suop then if t.taken then " T" else " N" else "")
