(* Tests for the simulation service layer: canonical request encoding
   and content hashing (with golden values so an accidental
   canonicalization change fails loudly), protocol framing round
   trips, the two-tier result cache, and an end-to-end serve/submit
   exchange against the real binary. *)

module Serve = Clusteer_serve
module Request = Serve.Request
module Protocol = Serve.Protocol
module Json = Clusteer_obs.Json
module Counters = Clusteer_obs.Counters

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ---- canonical requests and hashes ------------------------------- *)

let test_canonical_golden () =
  let r = Request.make ~workload:"mcf" () in
  (* The exact canonical bytes: field order, resolved workload name,
     null optionals. If this changes, every existing cache key is
     invalidated — change it deliberately or not at all. *)
  check_string "canonical bytes"
    {|{"v":1,"workload":"181.mcf","phase":0,"clusters":2,"policy":"vc2","uops":20000,"warmup":null,"seed":null,"overrides":{"fp_ratio":null,"mem_ratio":null,"ilp":null,"footprint_kb":null}}|}
    (Request.canonical_string r)

let test_hash_golden () =
  let r = Request.make ~workload:"mcf" () in
  check_string "hash golden" "8c4a02c0bfe2219a" (Request.hash r);
  let r2 =
    Request.make ~workload:"gzip-1" ~phase:1 ~clusters:4
      ~policy:Clusteer.Configuration.Op ~uops:5000
      ~overrides:{ Request.no_overrides with Request.mem_ratio = Some 0.25 }
      ()
  in
  check_string "hash golden 2" "c53785cc4ab8205f" (Request.hash r2)

let test_workload_name_canonicalization () =
  let short = Request.make ~workload:"mcf" () in
  let full = Request.make ~workload:"181.mcf" () in
  check_string "short and full name are one request" (Request.hash short)
    (Request.hash full)

let test_float_encoding_integer_exact () =
  let with_ratio v =
    Request.make ~workload:"mcf"
      ~overrides:{ Request.no_overrides with Request.mem_ratio = Some v }
      ()
  in
  let r = with_ratio 0.3 in
  check_bool "f64 bit pattern on the wire" true
    (let s = Request.canonical_string r in
     let rec contains i =
       i + 4 <= String.length s
       && (String.sub s i 4 = "f64:" || contains (i + 1))
     in
     contains 0);
  (* A decimal float in hand-written input canonicalizes to the same
     bytes (and so the same hash) as the bit-pattern form. *)
  match
    Json.of_string
      {|{"workload":"mcf","overrides":{"mem_ratio":0.3}}|}
  with
  | Error e -> Alcotest.fail e
  | Ok doc -> (
      match Request.of_json doc with
      | Error e -> Alcotest.fail e
      | Ok decoded ->
          check_string "decimal and f64 inputs hash identically"
            (Request.hash r) (Request.hash decoded))

let test_request_roundtrip () =
  let r =
    Request.make ~workload:"gzip-1" ~phase:2 ~clusters:4
      ~policy:(Clusteer.Configuration.Mod_n { n = 3 })
      ~uops:7000 ~warmup:1000 ~seed:42
      ~overrides:
        {
          Request.fp_ratio = Some 0.5;
          mem_ratio = None;
          ilp = Some 6;
          footprint_kb = Some 512;
        }
      ()
  in
  match Request.of_json (Request.canonical r) with
  | Error e -> Alcotest.fail e
  | Ok r' ->
      check_bool "round trip equal" true (Request.equal r r');
      check_string "round trip hash" (Request.hash r) (Request.hash r')

let test_request_rejects_unknown_field () =
  match Json.of_string {|{"workload":"mcf","uopss":100}|} with
  | Error e -> Alcotest.fail e
  | Ok doc ->
      check_bool "unknown field rejected" true
        (match Request.of_json doc with
        | Error m ->
            (* the message names the offending field *)
            let contains hay needle =
              let n = String.length needle in
              let rec go i =
                i + n <= String.length hay
                && (String.sub hay i n = needle || go (i + 1))
              in
              go 0
            in
            contains m "uopss"
        | Ok _ -> false)

let test_hash_sensitivity () =
  let base = Request.make ~workload:"mcf" () in
  let variants =
    [
      Request.make ~workload:"mcf" ~uops:20_001 ();
      Request.make ~workload:"mcf" ~policy:Clusteer.Configuration.Op ();
      Request.make ~workload:"mcf" ~seed:1 ();
      Request.make ~workload:"mcf" ~phase:1 ();
      Request.make ~workload:"gzip-1" ();
    ]
  in
  List.iter
    (fun v ->
      check_bool
        (Printf.sprintf "distinct from %s" (Request.canonical_string v))
        false
        (Request.hash base = Request.hash v))
    variants

(* ---- protocol framing -------------------------------------------- *)

let test_command_roundtrip () =
  let cases =
    [
      Protocol.Simulate
        {
          id = 7;
          deadline_ms = Some 250.;
          request = Request.make ~workload:"mcf" ~uops:3000 ();
        };
      Protocol.Simulate
        { id = 1; deadline_ms = None; request = Request.make ~workload:"mcf" () };
      Protocol.Stats;
      Protocol.Metrics;
      Protocol.Ping;
      Protocol.Shutdown;
    ]
  in
  List.iter
    (fun c ->
      let line = Protocol.encode_command c in
      check_bool "one line" false (String.contains line '\n');
      match Protocol.parse_command line with
      | Error e -> Alcotest.fail e
      | Ok c' ->
          check_string "command round trip" line (Protocol.encode_command c'))
    cases

let test_response_roundtrip () =
  let cases =
    [
      Protocol.Result
        {
          id = 3;
          hash = "0123456789abcdef";
          cached = true;
          result = Json.Obj [ ("x", Json.Int 1) ];
        };
      Protocol.Rejected { id = 4; reason = Protocol.Queue_full };
      Protocol.Rejected { id = 5; reason = Protocol.Timeout };
      Protocol.Rejected
        {
          id = 7;
          reason = Protocol.Check_failed "error[VC005] uop 3: missing leader";
        };
      Protocol.Error_reply { id = 6; message = "boom" };
      Protocol.Stats_reply (Json.Obj [ ("counters", Json.Obj []) ]);
      (* Exposition text rides inside a JSON string: the newlines must
         survive the escape/unescape round trip without breaking the
         one-line-per-response framing. *)
      Protocol.Metrics_reply "# TYPE serve_requests counter\nserve_requests 3\n";
      Protocol.Pong;
      Protocol.Bye;
    ]
  in
  List.iter
    (fun r ->
      let line = Protocol.encode_response r in
      match Protocol.parse_response line with
      | Error e -> Alcotest.fail e
      | Ok r' ->
          check_string "response round trip" line (Protocol.encode_response r'))
    cases

let test_result_line_verbatim () =
  let result = {|{"stats":{"ipc":1.25},"weird":  "spacing preserved"}|} in
  let line =
    Protocol.encode_result_line ~id:9 ~hash:"deadbeefdeadbeef" ~cached:false
      ~result
  in
  (* The spliced document's bytes survive untouched. *)
  check_bool "verbatim splice" true
    (let n = String.length line and m = String.length result in
     String.sub line (n - m - 1) m = result);
  match Protocol.parse_response line with
  | Ok (Protocol.Result { id = 9; cached = false; hash = "deadbeefdeadbeef"; _ })
    -> ()
  | Ok _ -> Alcotest.fail "parsed to the wrong response"
  | Error e -> Alcotest.fail e

(* ---- cache: memory tier + disk spill ------------------------------ *)

let temp_dir () =
  let path = Filename.temp_file "csteer_cache" "" in
  Sys.remove path;
  path

let test_cache_spill_roundtrip () =
  let registry = Counters.create () in
  let dir = temp_dir () in
  (* Budget fits roughly one entry: storing a second spills the first. *)
  let cache = Serve.Cache.create ~registry ~dir ~budget:64 () in
  let v1 = String.make 40 'x' and v2 = String.make 40 'y' in
  Serve.Cache.store cache "1111111111111111" v1;
  Serve.Cache.store cache "2222222222222222" v2;
  let value name = Counters.value (Counters.counter ~registry name) in
  check_int "first entry spilled" 1 (value "serve.cache.spills");
  check_bool "spill file exists" true
    (Sys.file_exists (Filename.concat dir "1111111111111111.json"));
  (* Disk satisfies the miss and promotes back into memory. *)
  Alcotest.(check (option string)) "disk hit" (Some v1)
    (Serve.Cache.find cache "1111111111111111");
  check_int "counted as hit" 1 (value "serve.cache.hits");
  check_int "counted as disk hit" 1 (value "serve.cache.disk_hits");
  Alcotest.(check (option string)) "absent is a miss" None
    (Serve.Cache.find cache "3333333333333333");
  check_int "miss counted" 1 (value "serve.cache.misses")

(* ---- end to end against the real binary --------------------------- *)

(* ---- admission validation ---------------------------------------- *)

let contains haystack needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length haystack
    && (String.sub haystack i n = needle || go (i + 1))
  in
  go 0

let oversized_vc_request () =
  (* 200 virtual clusters against mcf's ~hundred static uops: the one
     wire-reachable ill-formed request shape (VC010). *)
  match Clusteer.Configuration.of_name "vc200" with
  | Ok policy -> Request.make ~workload:"mcf" ~policy ~uops:2000 ()
  | Error (`Msg m) -> Alcotest.fail m

let test_validate_hook () =
  (* The default hook accepts everything; the analyzer-backed validator
     accepts well-formed requests and pins down ill-formed ones. *)
  let good = Request.make ~workload:"gzip-1" ~uops:2000 () in
  (match Request.check good with Ok () -> () | Error e -> Alcotest.fail e);
  (match Serve.Validate.check good with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Serve.Validate.check (oversized_vc_request ()) with
  | Error m -> check_bool "rejection names VC010" true (contains m "VC010")
  | Ok () -> Alcotest.fail "expected the validator to reject vc200");
  (* Unknown workloads are the resolution step's business — the
     validator waves them through so the server can answer precisely. *)
  (match Serve.Validate.check (Request.make ~workload:"nosuch" ~uops:100 ()) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* The hook is an explicit stub point for tests. *)
  let saved = !Request.check_hook in
  Fun.protect ~finally:(fun () -> Request.check_hook := saved) @@ fun () ->
  Request.check_hook := (fun _ -> Error "stubbed");
  match Request.check good with
  | Error "stubbed" -> ()
  | _ -> Alcotest.fail "stubbed hook was not consulted"

let exe =
  let candidates =
    [ "../bin/csteer.exe"; "_build/default/bin/csteer.exe"; "bin/csteer.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> "../bin/csteer.exe"

let start_server args =
  let sock = Filename.temp_file "csteer_serve" ".sock" in
  let null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid =
    Unix.create_process exe
      (Array.of_list ([ exe; "serve"; "--socket"; sock ] @ args))
      null null null
  in
  Unix.close null;
  let rec wait n =
    (* serve unlinks the temp file and rebinds it as a socket *)
    if (try (Unix.stat sock).Unix.st_kind = Unix.S_SOCK with Unix.Unix_error _ -> false)
    then ()
    else if n = 0 then Alcotest.fail "server did not start"
    else begin
      Unix.sleepf 0.05;
      wait (n - 1)
    end
  in
  wait 200;
  (sock, pid)

let stop_server (sock, pid) =
  (try ignore (Serve.Client.shutdown ~socket:sock) with _ -> ());
  ignore (Unix.waitpid [] pid);
  if Sys.file_exists sock then Sys.remove sock

let test_e2e_cache_hit_and_deadlines () =
  let server = start_server [ "--queue-depth"; "2" ] in
  let sock, _ = server in
  Fun.protect ~finally:(fun () -> stop_server server) @@ fun () ->
  let req = Request.make ~workload:"gzip-1" ~uops:2000 () in
  (* First submit simulates... *)
  let first =
    match Serve.Client.submit ~socket:sock req with
    | Ok (Protocol.Result { cached; hash; result; _ }) ->
        check_bool "first is a miss" false cached;
        check_string "hash echoes" (Request.hash req) hash;
        result
    | Ok _ -> Alcotest.fail "unexpected response"
    | Error e -> Alcotest.fail e
  in
  (* ...the second identical submit is a cache hit with a bit-identical
     result document. *)
  (match Serve.Client.submit ~socket:sock req with
  | Ok (Protocol.Result { cached; result; _ }) ->
      check_bool "second is cached" true cached;
      check_string "bit-identical result" (Json.to_string first)
        (Json.to_string result)
  | Ok _ -> Alcotest.fail "unexpected response"
  | Error e -> Alcotest.fail e);
  (* An already-expired deadline is rejected, not simulated. *)
  let uncached = Request.make ~workload:"gzip-1" ~uops:2100 () in
  (match Serve.Client.submit ~socket:sock ~deadline_ms:0. uncached with
  | Ok (Protocol.Rejected { reason = Protocol.Timeout; _ }) -> ()
  | Ok _ -> Alcotest.fail "expected a timeout rejection"
  | Error e -> Alcotest.fail e);
  (* An ill-formed request is turned away by the admission checker
     before it reaches a worker. *)
  (match Serve.Client.submit ~socket:sock (oversized_vc_request ()) with
  | Ok (Protocol.Rejected { reason = Protocol.Check_failed m; _ }) ->
      check_bool "rejection message names VC010" true (contains m "VC010")
  | Ok _ -> Alcotest.fail "expected a check_failed rejection"
  | Error e -> Alcotest.fail e);
  (* Backpressure: 4 distinct misses against a queue of 2 in one batch. *)
  let cmds =
    List.map
      (fun uops ->
        Protocol.Simulate
          {
            id = uops;
            deadline_ms = None;
            request = Request.make ~workload:"gzip-1" ~uops ();
          })
      [ 1500; 1600; 1700; 1800 ]
  in
  let replies = Serve.Client.call ~socket:sock cmds in
  let full, oks =
    List.fold_left
      (fun (full, oks) r ->
        match r with
        | Ok (Protocol.Rejected { reason = Protocol.Queue_full; _ }) ->
            (full + 1, oks)
        | Ok (Protocol.Result _) -> (full, oks + 1)
        | _ -> (full, oks))
      (0, 0) replies
  in
  check_int "two admitted" 2 oks;
  check_int "two pushed back" 2 full;
  (* Duplicate requests inside one batch simulate once, answer twice. *)
  let dup = Request.make ~workload:"gzip-1" ~uops:2200 () in
  let two =
    Serve.Client.call ~socket:sock
      [
        Protocol.Simulate { id = 1; deadline_ms = None; request = dup };
        Protocol.Simulate { id = 2; deadline_ms = None; request = dup };
      ]
  in
  (match two with
  | [
   Ok (Protocol.Result { result = ra; _ });
   Ok (Protocol.Result { result = rb; _ });
  ] ->
      check_string "dedup answers identically" (Json.to_string ra)
        (Json.to_string rb)
  | _ -> Alcotest.fail "expected two ok responses");
  (* Counters: hits/misses/simulations are visible over the wire. *)
  match Serve.Client.stats ~socket:sock with
  | Error e -> Alcotest.fail e
  | Ok doc ->
      let counter name =
        Option.bind (Json.member "counters" doc) (Json.member name)
        |> Option.map Json.to_int |> Option.join
        |> Option.value ~default:(-1)
      in
      check_int "one hit" 1 (counter "serve.cache.hits");
      check_bool "simulations ran" true (counter "serve.simulations" >= 3);
      check_int "one timeout" 1 (counter "serve.rejected.timeout");
      check_int "two queue-full" 2 (counter "serve.rejected.queue_full");
      check_int "one check failure" 1 (counter "serve.rejected.check_failed");
      (* dedup: 2200-uop request simulated once for two answers *)
      check_int "requests counted" 10 (counter "serve.requests")

let test_e2e_metrics_scrape () =
  let server = start_server [ "--profile" ] in
  let sock, _ = server in
  Fun.protect ~finally:(fun () -> stop_server server) @@ fun () ->
  let scrape () =
    match Serve.Client.metrics ~socket:sock with
    | Ok text -> text
    | Error e -> Alcotest.fail e
  in
  (* Value of a plain counter sample line, e.g. "serve_requests 3". *)
  let metric_value text name =
    String.split_on_char '\n' text
    |> List.find_map (fun line ->
           match String.index_opt line ' ' with
           | Some i when String.sub line 0 i = name ->
               int_of_string_opt
                 (String.sub line (i + 1) (String.length line - i - 1))
           | _ -> None)
    |> Option.value ~default:(-1)
  in
  let before = scrape () in
  check_bool "scrape is typed Prometheus text" true
    (contains before "# TYPE serve_requests counter");
  let r0 = metric_value before "serve_requests" in
  check_bool "request counter present" true (r0 >= 0);
  (match
     Serve.Client.submit ~socket:sock
       (Request.make ~workload:"gzip-1" ~uops:1000 ())
   with
  | Ok (Protocol.Result _) -> ()
  | Ok _ -> Alcotest.fail "unexpected response"
  | Error e -> Alcotest.fail e);
  let after = scrape () in
  check_int "serve.requests advances across scrapes" (r0 + 1)
    (metric_value after "serve_requests");
  (* The self-profiler's spans are live in the same scrape. *)
  check_bool "admission span exposed" true
    (contains after "# TYPE profile_serve_admission_ns histogram");
  check_bool "worker engine phases merged in" true
    (contains after "profile_engine_commit_ns_count 1");
  check_bool "quantiles exposed" true
    (contains after "profile_serve_admission_ns_quantile{q=\"0.99\"}")

let () =
  Alcotest.run "clusteer_serve"
    [
      ( "request",
        [
          Alcotest.test_case "canonical golden" `Quick test_canonical_golden;
          Alcotest.test_case "hash golden" `Quick test_hash_golden;
          Alcotest.test_case "name canonicalization" `Quick
            test_workload_name_canonicalization;
          Alcotest.test_case "integer-exact floats" `Quick
            test_float_encoding_integer_exact;
          Alcotest.test_case "round trip" `Quick test_request_roundtrip;
          Alcotest.test_case "rejects unknown field" `Quick
            test_request_rejects_unknown_field;
          Alcotest.test_case "hash sensitivity" `Quick test_hash_sensitivity;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "command round trip" `Quick test_command_roundtrip;
          Alcotest.test_case "response round trip" `Quick
            test_response_roundtrip;
          Alcotest.test_case "verbatim result splice" `Quick
            test_result_line_verbatim;
        ] );
      ( "cache",
        [
          Alcotest.test_case "disk spill round trip" `Quick
            test_cache_spill_roundtrip;
        ] );
      ( "serve",
        [
          Alcotest.test_case "validate hook" `Quick test_validate_hook;
          Alcotest.test_case "end to end" `Slow test_e2e_cache_hit_and_deadlines;
          Alcotest.test_case "metrics scrape" `Slow test_e2e_metrics_scrape;
        ] );
    ]
