open Clusteer_isa
open Clusteer_trace

type t = Synth.t

(* Descriptive profile metadata for a kernel (not used for synthesis). *)
let meta name ~fp ~mem ~ilp ~chain ~fkb =
  {
    Profile.name;
    suite = (if fp > 0.3 then Profile.Spec_fp else Profile.Spec_int);
    seed = 1;
    fp_ratio = fp;
    mem_ratio = mem;
    ilp;
    chain_len = chain;
    footprint_kb = fkb;
    stride_frac = 0.5;
    chase_frac = 0.0;
    loops = 1;
    block_size = 8;
    loop_trip = 32;
    hard_branch_frac = 0.0;
    phases = 1;
  }

(* Common scaffolding: one loop body built by [body], iterating [iters]
   times per outer wrap, with a 1-cycle induction counter driving the
   back-edge. *)
let loop_kernel ~name ~meta:profile ~streams ~iters ~body =
  let b = Program.Builder.create ~name ~nregs_per_class:64 () in
  let stream_ids = Array.map (fun _ -> Program.Builder.stream b) streams in
  let loop_model = Program.Builder.branch_model b in
  let blk = Program.Builder.reserve_block b in
  let exit_ = Program.Builder.reserve_block b in
  let ctr = Reg.int 32 in
  let ctr_update =
    Program.Builder.uop b Opcode.Int_alu ~dst:ctr ~srcs:[| ctr |] ()
  in
  let branch =
    Program.Builder.uop b Opcode.Branch ~srcs:[| ctr |] ~branch_ref:loop_model
      ()
  in
  let uops = (ctr_update :: body b stream_ids) @ [ branch ] in
  Program.Builder.define_block b blk uops ~succs:[ exit_; blk ];
  Program.Builder.define_block b exit_ [] ~succs:[];
  let program = Program.Builder.finish b ~entry:blk in
  {
    Synth.profile;
    program;
    branches = [| Branch_model.Loop iters |];
    streams;
    likely = (fun id -> if id = blk then Some 1 else None);
  }

let daxpy ?(iters = 256) () =
  let footprint = 64 * 1024 in
  let streams =
    [|
      Mem_model.Strided { base = 0; stride = 8; footprint };
      Mem_model.Strided { base = 1 lsl 24; stride = 8; footprint };
    |]
  in
  loop_kernel ~name:"daxpy"
    ~meta:(meta "kernel.daxpy" ~fp:0.4 ~mem:0.5 ~ilp:2 ~chain:3 ~fkb:128)
    ~streams ~iters
    ~body:(fun b s ->
      (* f0 = a (loop invariant, register 0); x in f1, y in f2 *)
      let ld_x =
        Program.Builder.uop b Opcode.Load ~dst:(Reg.fp 1)
          ~srcs:[| Reg.int 1 |] ~stream:s.(0) ()
      in
      let ld_y =
        Program.Builder.uop b Opcode.Load ~dst:(Reg.fp 2)
          ~srcs:[| Reg.int 2 |] ~stream:s.(1) ()
      in
      let mul =
        Program.Builder.uop b Opcode.Fp_mul ~dst:(Reg.fp 3)
          ~srcs:[| Reg.fp 0; Reg.fp 1 |] ()
      in
      let add =
        Program.Builder.uop b Opcode.Fp_add ~dst:(Reg.fp 4)
          ~srcs:[| Reg.fp 3; Reg.fp 2 |] ()
      in
      let st =
        Program.Builder.uop b Opcode.Store ~srcs:[| Reg.fp 4; Reg.int 2 |]
          ~stream:s.(1) ()
      in
      [ ld_x; ld_y; mul; add; st ])

let dot_product ?(iters = 256) () =
  let footprint = 64 * 1024 in
  let streams =
    [|
      Mem_model.Strided { base = 0; stride = 8; footprint };
      Mem_model.Strided { base = 1 lsl 24; stride = 8; footprint };
    |]
  in
  loop_kernel ~name:"dot"
    ~meta:(meta "kernel.dot" ~fp:0.5 ~mem:0.4 ~ilp:1 ~chain:64 ~fkb:128)
    ~streams ~iters
    ~body:(fun b s ->
      let ld_x =
        Program.Builder.uop b Opcode.Load ~dst:(Reg.fp 1)
          ~srcs:[| Reg.int 1 |] ~stream:s.(0) ()
      in
      let ld_y =
        Program.Builder.uop b Opcode.Load ~dst:(Reg.fp 2)
          ~srcs:[| Reg.int 2 |] ~stream:s.(1) ()
      in
      let mul =
        Program.Builder.uop b Opcode.Fp_mul ~dst:(Reg.fp 3)
          ~srcs:[| Reg.fp 1; Reg.fp 2 |] ()
      in
      (* the serial reduction: f0 <- f0 + product *)
      let acc =
        Program.Builder.uop b Opcode.Fp_add ~dst:(Reg.fp 0)
          ~srcs:[| Reg.fp 0; Reg.fp 3 |] ()
      in
      [ ld_x; ld_y; mul; acc ])

let pointer_chase ?(footprint_kb = 512) () =
  let streams =
    [| Mem_model.Chase { base = 0; footprint = footprint_kb * 1024 } |]
  in
  loop_kernel ~name:"chase"
    ~meta:
      (meta "kernel.chase" ~fp:0.0 ~mem:0.6 ~ilp:1 ~chain:64 ~fkb:footprint_kb)
    ~streams ~iters:1024
    ~body:(fun b s ->
      (* r1 <- [r1]: the canonical linked-list walk *)
      let ld =
        Program.Builder.uop b Opcode.Load ~dst:(Reg.int 1)
          ~srcs:[| Reg.int 1 |] ~stream:s.(0) ()
      in
      let use =
        Program.Builder.uop b Opcode.Int_alu ~dst:(Reg.int 2)
          ~srcs:[| Reg.int 1 |] ()
      in
      [ ld; use ])

let fibonacci () =
  loop_kernel ~name:"fib"
    ~meta:(meta "kernel.fib" ~fp:0.0 ~mem:0.0 ~ilp:1 ~chain:64 ~fkb:4)
    ~streams:[||] ~iters:4096
    ~body:(fun b _ ->
      (* r1, r2 <- r1+r2, r1 : two-deep serial integer recurrence *)
      let next =
        Program.Builder.uop b Opcode.Int_alu ~dst:(Reg.int 3)
          ~srcs:[| Reg.int 1; Reg.int 2 |] ()
      in
      let shift_a =
        Program.Builder.uop b Opcode.Int_alu ~dst:(Reg.int 2)
          ~srcs:[| Reg.int 1 |] ()
      in
      let shift_b =
        Program.Builder.uop b Opcode.Int_alu ~dst:(Reg.int 1)
          ~srcs:[| Reg.int 3 |] ()
      in
      [ next; shift_a; shift_b ])

let matmul_inner ?(accumulators = 4) () =
  if accumulators < 1 || accumulators > 8 then
    invalid_arg "Kernels.matmul_inner: 1..8 accumulators";
  let footprint = 128 * 1024 in
  let streams =
    [|
      Mem_model.Strided { base = 0; stride = 8; footprint };
      Mem_model.Strided { base = 1 lsl 24; stride = 64; footprint };
    |]
  in
  loop_kernel ~name:"matmul"
    ~meta:
      (meta "kernel.matmul" ~fp:0.6 ~mem:0.3 ~ilp:accumulators ~chain:8
         ~fkb:256)
    ~streams ~iters:128
    ~body:(fun b s ->
      List.concat
        (List.init accumulators (fun k ->
             let a = Reg.fp (8 + k) and acc = Reg.fp k in
             let ld_a =
               Program.Builder.uop b Opcode.Load ~dst:a ~srcs:[| Reg.int 1 |]
                 ~stream:s.(0) ()
             in
             let ld_b =
               Program.Builder.uop b Opcode.Load
                 ~dst:(Reg.fp (16 + k))
                 ~srcs:[| Reg.int 2 |] ~stream:s.(1) ()
             in
             let mul =
               Program.Builder.uop b Opcode.Fp_mul
                 ~dst:(Reg.fp (24 + k))
                 ~srcs:[| a; Reg.fp (16 + k) |]
                 ()
             in
             let fma =
               Program.Builder.uop b Opcode.Fp_add ~dst:acc
                 ~srcs:[| acc; Reg.fp (24 + k) |]
                 ()
             in
             [ ld_a; ld_b; mul; fma ])))

let histogram ?(buckets_kb = 64) () =
  let streams =
    [|
      Mem_model.Strided { base = 0; stride = 8; footprint = 256 * 1024 };
      Mem_model.Uniform
        { base = 1 lsl 24; footprint = buckets_kb * 1024; granule = 8 };
    |]
  in
  loop_kernel ~name:"histogram"
    ~meta:
      (meta "kernel.histogram" ~fp:0.0 ~mem:0.6 ~ilp:2 ~chain:4
         ~fkb:buckets_kb)
    ~streams ~iters:512
    ~body:(fun b s ->
      let ld_key =
        Program.Builder.uop b Opcode.Load ~dst:(Reg.int 1)
          ~srcs:[| Reg.int 4 |] ~stream:s.(0) ()
      in
      let ld_bucket =
        Program.Builder.uop b Opcode.Load ~dst:(Reg.int 2)
          ~srcs:[| Reg.int 1 |] ~stream:s.(1) ()
      in
      let inc =
        Program.Builder.uop b Opcode.Int_alu ~dst:(Reg.int 3)
          ~srcs:[| Reg.int 2 |] ()
      in
      let st =
        Program.Builder.uop b Opcode.Store ~srcs:[| Reg.int 3; Reg.int 1 |]
          ~stream:s.(1) ()
      in
      [ ld_key; ld_bucket; inc; st ])

let stencil3 ?(iters = 256) () =
  (* 1-D 3-point stencil: out[i] = a*(x[i-1] + x[i] + x[i+1]); three
     staggered reads of the same array, one write — spatial locality
     plus a wide, shallow DDG. *)
  let footprint = 96 * 1024 in
  let streams =
    [|
      Mem_model.Strided { base = 0; stride = 8; footprint };
      Mem_model.Strided { base = 8; stride = 8; footprint };
      Mem_model.Strided { base = 16; stride = 8; footprint };
      Mem_model.Strided { base = 1 lsl 24; stride = 8; footprint };
    |]
  in
  loop_kernel ~name:"stencil3"
    ~meta:(meta "kernel.stencil3" ~fp:0.4 ~mem:0.5 ~ilp:3 ~chain:4 ~fkb:192)
    ~streams ~iters
    ~body:(fun b s ->
      let ld k stream =
        Program.Builder.uop b Opcode.Load ~dst:(Reg.fp k)
          ~srcs:[| Reg.int 1 |] ~stream ()
      in
      let l0 = ld 1 s.(0) and l1 = ld 2 s.(1) and l2 = ld 3 s.(2) in
      let a01 =
        Program.Builder.uop b Opcode.Fp_add ~dst:(Reg.fp 4)
          ~srcs:[| Reg.fp 1; Reg.fp 2 |] ()
      in
      let a012 =
        Program.Builder.uop b Opcode.Fp_add ~dst:(Reg.fp 5)
          ~srcs:[| Reg.fp 4; Reg.fp 3 |] ()
      in
      let scaled =
        Program.Builder.uop b Opcode.Fp_mul ~dst:(Reg.fp 6)
          ~srcs:[| Reg.fp 0; Reg.fp 5 |] ()
      in
      let st =
        Program.Builder.uop b Opcode.Store ~srcs:[| Reg.fp 6; Reg.int 2 |]
          ~stream:s.(3) ()
      in
      [ l0; l1; l2; a01; a012; scaled; st ])

let reduction_tree ?(width = 8) () =
  if width < 2 || width > 16 then
    invalid_arg "Kernels.reduction_tree: width 2..16";
  (* Pairwise tree reduction of [width] independent accumulators: a
     log-depth DDG per iteration — between daxpy's flat parallelism
     and dot's serial chain. *)
  loop_kernel ~name:"reduction"
    ~meta:
      (meta "kernel.reduction" ~fp:0.8 ~mem:0.0 ~ilp:(width / 2) ~chain:4
         ~fkb:4)
    ~streams:[||] ~iters:512
    ~body:(fun b _ ->
      (* refresh the leaves (independent), then reduce pairwise *)
      let leaves =
        List.init width (fun k ->
            Program.Builder.uop b Opcode.Fp_add
              ~dst:(Reg.fp (8 + k))
              ~srcs:[| Reg.fp (8 + k) |]
              ())
      in
      let rec reduce level regs ops =
        match regs with
        | [] | [ _ ] -> List.rev ops
        | _ ->
            let rec pair acc out = function
              | a :: c :: rest ->
                  let dst = Reg.fp (24 + level + List.length out) in
                  let op =
                    Program.Builder.uop b Opcode.Fp_add ~dst
                      ~srcs:[| a; c |] ()
                  in
                  pair (op :: acc) (dst :: out) rest
              | [ last ] -> (acc, last :: out)
              | [] -> (acc, out)
            in
            let ops', next = pair ops [] regs in
            reduce (level + 4) (List.rev next) ops'
      in
      let leaf_regs = List.init width (fun k -> Reg.fp (8 + k)) in
      leaves @ reduce 0 leaf_regs [])

let all =
  [
    ("daxpy", daxpy ());
    ("dot", dot_product ());
    ("chase", pointer_chase ());
    ("fib", fibonacci ());
    ("matmul", matmul_inner ());
    ("histogram", histogram ());
    ("stencil3", stencil3 ());
    ("reduction", reduction_tree ());
  ]
