open Clusteer_isa
open Clusteer_uarch
open Clusteer_trace
module Counters = Clusteer_obs.Counters
module Topology = Clusteer_topo.Topology

let least_loaded view =
  let best = ref 0 in
  for c = 1 to view.Policy.clusters - 1 do
    if view.Policy.inflight c < view.Policy.inflight !best then best := c
  done;
  !best

let make ?(remap_threshold = 8) ?registry ?topology ~annot ~clusters () =
  if annot.Annot.virtual_clusters <= 0 then
    invalid_arg "Vc_map.make: annotation has no virtual clusters";
  let table =
    Array.init annot.Annot.virtual_clusters (fun v -> v mod clusters)
  in
  (* Topology awareness: on a non-uniform fabric the remap target is
     chosen distance-aware (nearest of the least-loaded clusters to the
     VC's current home, so remap-induced copies travel few hops) and
     the hop distance of every remap is recorded. On uniform fabrics
     (p2p, bus) every cross-cluster distance is 1, so the seed's
     pick-the-least-loaded behavior — and its counter set — is kept
     bit-identical. *)
  let dist =
    match topology with
    | Some tp when not (Topology.is_uniform tp) -> Topology.distance_matrix tp
    | _ -> [||]
  in
  let topo_aware = Array.length dist > 0 in
  let remap_hops =
    if topo_aware then Some (Counters.histogram ?registry "steer.remap.hops")
    else None
  in
  (* Introspection: decision mix, remap activity, and how long the
     chain that just ended was when a leader consulted the counters —
     the quantities that explain VC-map thrashing. *)
  let decisions = Counters.counter ?registry "vc.decisions" in
  let unassigned = Counters.counter ?registry "vc.unassigned" in
  let leaders = Counters.counter ?registry "vc.leader_decisions" in
  let remaps = Counters.counter ?registry "vc.remaps" in
  let chain_len = Counters.histogram ?registry "vc.chain_uops_at_leader" in
  let since_leader = Array.make annot.Annot.virtual_clusters 0 in
  (* Memoized decisions: the table lookup itself is allocation-free,
     so the only per-uop allocation would be the [Dispatch_to] box —
     preallocate one per cluster. *)
  let dispatch_to = Array.init clusters (fun c -> Policy.Dispatch_to c) in
  let decide view duop =
    let id = Dynuop.static_id duop in
    let vc = annot.Annot.vc_of.(id) in
    Counters.incr decisions;
    if vc < 0 then begin
      Counters.incr unassigned;
      dispatch_to.(least_loaded view)
    end
    else begin
      (* At a chain leader the workload counters are consulted; the VC
         is remapped only when its current cluster is ahead of the
         least-loaded one by more than the threshold — the hysteresis
         keeps consecutive chains of a VC together unless the
         imbalance is worth a remap. *)
      if annot.Annot.leader.(id) then begin
        Counters.incr leaders;
        Counters.observe chain_len since_leader.(vc);
        since_leader.(vc) <- 0;
        let best = least_loaded view in
        let cur = table.(vc) in
        if
          view.Policy.inflight cur - view.Policy.inflight best
          > remap_threshold
        then begin
          Counters.incr remaps;
          let target =
            if not topo_aware then best
            else begin
              (* Nearest-to-home among the clusters at the global
                 minimum load; ties by lowest index. [best] is the
                 lowest-index minimum, so the scan below computes the
                 lexicographic (distance, index) minimum. *)
              let min_load = view.Policy.inflight best in
              let t = ref best in
              for c = 0 to view.Policy.clusters - 1 do
                if
                  view.Policy.inflight c = min_load
                  && dist.(cur).(c) < dist.(cur).(!t)
                then t := c
              done;
              !t
            end
          in
          (match remap_hops with
          | None -> ()
          | Some h -> Counters.observe h dist.(cur).(target));
          table.(vc) <- target
        end
      end;
      since_leader.(vc) <- since_leader.(vc) + 1;
      dispatch_to.(table.(vc))
    end
  in
  {
    Policy.name = "vc";
    decide;
    uses_dependence_check = false;
    uses_vote_unit = false;
  }
