lib/workloads/synth.ml: Array Branch_model Clusteer_isa Clusteer_trace Clusteer_util Float Hashtbl List Mem_model Opcode Profile Program Reg Tracegen
