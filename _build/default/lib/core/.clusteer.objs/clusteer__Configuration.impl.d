lib/core/configuration.ml: Clusteer_compiler Clusteer_steer Printf
