(** Plain-text table rendering for experiment reports. *)

type align = Left | Right

val render :
  ?align:align array ->
  header:string array ->
  string array list ->
  string
(** [render ~header rows] lays out rows under [header] with columns
    padded to their widest cell and a rule under the header. All rows
    must have the same arity as the header. Default alignment: first
    column left, remaining columns right. *)

val fmt_float : ?decimals:int -> float -> string
(** Fixed-point rendering, default 2 decimals. *)

val fmt_percent : ?decimals:int -> float -> string
(** [fmt_float] followed by a ["%"] sign. *)
