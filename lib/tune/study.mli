(** Champion/challenger tuning studies.

    {!run} drives one closed loop: search the space under a budget,
    score every candidate on the workload pool, pick the best
    challenger and compare it AB against the incumbent champion. The
    study is the on-disk artifact ([tune/study.json]); {!promote}
    derives the champion artifact ([tune/champion.json]) from it.

    {2 Objective}

    A candidate's score is the geometric mean, across benchmarks, of
    the phase-weighted IPC of its configuration
    ({!Clusteer_harness.Runner.weighted_metric} over each benchmark's
    simulation points) — the paper's summary statistic applied to
    absolute IPC rather than speedup, so a study needs no baseline
    run.

    {2 AB comparison and tie-breaking}

    Champion and challenger are compared per benchmark: a delta within
    [epsilon_pct] percent is a tie; ties are re-measured over
    [tie_seeds] extra deterministic trace streams
    ({!Clusteer_harness.Runner.salted_trace_seed}, salts [1..n]) and
    re-classified on the mean, so a knife-edge benchmark only decides
    the study when it is consistently better on independent streams.
    The challenger wins the study when it wins strictly more
    benchmarks than it loses.

    {2 Determinism}

    Everything recorded in the study JSON is a pure function of
    (space, algorithm, seed, budget, workloads, machine, uops): no
    timestamps, no wall-clock, no host state. Same seed and budget =>
    bit-identical [study.json]. Wall-clock and GC cost go to the run
    ledger (one entry of kind ["tune"] per evaluation), never into the
    study. *)

type eval = {
  candidate : int array;
  score : float;  (** geomean of per-benchmark phase-weighted IPC *)
  per_benchmark : (string * float) list;  (** benchmark -> weighted IPC *)
}

type verdict = Win | Loss | Tie  (** from the challenger's viewpoint *)

type row = {
  benchmark : string;
  champion_ipc : float;
  challenger_ipc : float;
  delta_pct : float;  (** challenger vs champion, percent *)
  verdict : verdict;
  tie_broken : bool;  (** decided only after salted re-measurement *)
}

type ab = {
  epsilon_pct : float;
  tie_seeds : int;
  rows : row list;
  wins : int;
  losses : int;
  ties : int;
  challenger_wins : bool;
}

type t = {
  space : string;
  search : string;
  seed : int;
  max_evals : int;
  clusters : int;
  uops : int;
  workloads : string list;
  evals : eval list;  (** in evaluation order *)
  champion : eval;  (** incumbent (or paper default when none) *)
  challenger : eval;  (** best-scoring searched candidate *)
  incumbent_loaded : bool;  (** champion came from a champion artifact *)
  ab : ab;
}

val run :
  space:Param_space.t ->
  algo:Search.algo ->
  seed:int ->
  max_evals:int ->
  workloads:Clusteer_workloads.Profile.t list ->
  clusters:int ->
  uops:int ->
  ?domains:int ->
  ?ledger:Clusteer_obs.Ledger.t ->
  ?incumbent:int array ->
  ?epsilon_pct:float ->
  ?tie_seeds:int ->
  ?progress:(string -> unit) ->
  unit ->
  t
(** Run one study. [incumbent] is the reigning champion's candidate
    (from a champion artifact); without one the paper default defends.
    [epsilon_pct] defaults to 0.5, [tie_seeds] to 2. The incumbent is
    scored outside the [max_evals] search budget when the search did
    not visit it. [progress] receives one short line per evaluation.

    Also maintains the [tune.evals], [tune.uops_committed] and
    [tune.tie_breaks] counters in
    {!Clusteer_obs.Counters.default}. *)

val winner : t -> eval
(** The configuration the study concludes should reign: the challenger
    when [ab.challenger_wins], otherwise the champion. *)

val to_json : t -> Clusteer_obs.Json.t
val of_json : Clusteer_obs.Json.t -> (t, string) result

val save : file:string -> t -> unit
(** Write [to_json] tmp-then-rename (creating the directory). *)

val load : file:string -> (t, string) result

val champion_json : t -> Clusteer_obs.Json.t
(** The champion artifact {!winner} denotes:
    [{"space":...,"candidate":{...},"score":...,"config":...}]. *)

val save_champion : file:string -> t -> unit

val load_champion :
  space:Param_space.t -> file:string -> (int array option, string) result
(** Read a champion artifact back as an incumbent candidate for a new
    study. [Ok None] when [file] does not exist; [Error] when it
    exists but does not decode against [space] (e.g. it was promoted
    from a different space). *)

val report : Format.formatter -> t -> unit
(** Human-readable report: study header, leaderboard, AB table and
    verdict. *)
