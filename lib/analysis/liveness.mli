(** Backward liveness / def-use analysis over the block CFG.

    An instance of {!Fixpoint} with the classic gen/kill bitvector
    lattice over encoded architectural registers
    ({!Clusteer_isa.Reg.encode}): a register is live at a point when
    some CFG path from that point reads it before writing it. On top of
    the fixed point the module derives the two quantities the analyzer
    reports on:

    - {b dead definitions} — a micro-op writes a register no path ever
      reads again (the value is unobservable);
    - {b live-range pressure} — the peak number of simultaneously live
      registers per class, the static lower bound on how many physical
      registers a renaming scheme needs.

    Codes (emitted by {!check}):
    - [LIV001] (info) — dead definition.
    - [LIV002] (info) — per-program peak pressure summary.
    - [LIV003] (warning) — peak pressure exceeds the physical register
      file of the machine being checked; renaming will stall on free
      physical registers no matter how uops are steered. *)

open Clusteer_isa

type t = {
  nregs : int;  (** registers per class; bitvectors span [2 * nregs] *)
  live_in : int array array;  (** block -> bitvector of encoded regs *)
  live_out : int array array;
  dead_defs : (int * Reg.t) list;
      (** (static uop id, destination) pairs, program order *)
  peak_int : int;  (** peak simultaneously live INT registers *)
  peak_fp : int;
  iterations : int;  (** solver transfer applications *)
}

val codes : string list

val analyze : Program.t -> t

val live_at_entry : t -> block:int -> Reg.t list
(** Decoded [live_in] of a block, ascending {!Reg.compare} order. *)

val check : ?int_budget:int -> ?fp_budget:int -> Program.t -> Diag.t list
(** Run {!analyze} and render findings. The budgets are the physical
    register-file sizes used for LIV003 (defaults: no bound). At most
    [8] individual LIV001 findings are located; further dead
    definitions fold into one summarizing info so a pathological
    program cannot flood a report. *)
