open Clusteer_uarch
module Bitset = Clusteer_util.Bitset
module Counters = Clusteer_obs.Counters

let make ?registry () =
  let decisions = Counters.counter ?registry "dep.decisions" in
  let vote_ties = Counters.histogram ?registry "dep.vote_ties" in
  let decide view duop =
    Counters.incr decisions;
    let clusters = view.Policy.clusters in
    let votes = Array.make clusters 0 in
    Array.iter
      (fun loc ->
        for c = 0 to clusters - 1 do
          if Bitset.mem loc c then votes.(c) <- votes.(c) + 1
        done)
      (view.Policy.src_locations duop);
    let best_votes = Array.fold_left max 0 votes in
    let ties = ref 0 in
    Array.iter (fun v -> if v = best_votes then incr ties) votes;
    Counters.observe vote_ties !ties;
    let best = ref (-1) in
    for c = clusters - 1 downto 0 do
      if
        votes.(c) = best_votes
        && (!best = -1 || view.Policy.inflight c < view.Policy.inflight !best)
      then best := c
    done;
    Policy.Dispatch_to !best
  in
  {
    Policy.name = "dep";
    decide;
    uses_dependence_check = true;
    uses_vote_unit = true;
  }
