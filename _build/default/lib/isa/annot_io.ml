let magic = "clusteer-annot 1"

let to_string (a : Annot.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "scheme %s\n" a.Annot.scheme);
  Buffer.add_string buf (Printf.sprintf "vcs %d\n" a.Annot.virtual_clusters);
  Buffer.add_string buf
    (Printf.sprintf "uops %d\n" (Array.length a.Annot.vc_of));
  let field v = if v < 0 then "-" else string_of_int v in
  Array.iteri
    (fun id vc ->
      Buffer.add_string buf
        (Printf.sprintf "%d %s %d %s\n" id (field vc)
           (if a.Annot.leader.(id) then 1 else 0)
           (field a.Annot.cluster_of.(id))))
    a.Annot.vc_of;
  Buffer.contents buf

let fail line msg = failwith (Printf.sprintf "Annot_io: line %d: %s" line msg)

let of_string s =
  let lines = String.split_on_char '\n' s in
  let lines = List.filter (fun l -> String.trim l <> "") lines in
  match lines with
  | header :: scheme_l :: vcs_l :: uops_l :: rest ->
      if String.trim header <> magic then fail 1 "bad magic";
      let scheme =
        match String.split_on_char ' ' scheme_l with
        | [ "scheme"; name ] -> name
        | _ -> fail 2 "expected 'scheme <name>'"
      in
      let int_field line_no key l =
        match String.split_on_char ' ' l with
        | [ k; v ] when k = key -> (
            match int_of_string_opt v with
            | Some i -> i
            | None -> fail line_no "not an integer")
        | _ -> fail line_no (Printf.sprintf "expected '%s <n>'" key)
      in
      let vcs = int_field 3 "vcs" vcs_l in
      let uops = int_field 4 "uops" uops_l in
      if uops < 0 || vcs < 0 then fail 3 "negative count";
      let annot =
        if vcs > 0 then
          Annot.create_virtual ~scheme ~virtual_clusters:vcs ~uop_count:uops
        else Annot.create_static ~scheme ~uop_count:uops
      in
      List.iteri
        (fun i line ->
          let line_no = i + 5 in
          let parse_opt v =
            if v = "-" then -1
            else
              match int_of_string_opt v with
              | Some x -> x
              | None -> fail line_no "not an integer"
          in
          match String.split_on_char ' ' line with
          | [ id; vc; leader; cluster ] ->
              let id = parse_opt id in
              if id < 0 || id >= uops then fail line_no "uop id out of range";
              annot.Annot.vc_of.(id) <- parse_opt vc;
              annot.Annot.cluster_of.(id) <- parse_opt cluster;
              annot.Annot.leader.(id) <-
                (match leader with
                | "0" -> false
                | "1" -> true
                | _ -> fail line_no "leader must be 0 or 1")
          | _ -> fail line_no "expected '<id> <vc|-> <0/1> <cluster|->'")
        rest;
      if List.length rest <> uops then
        failwith
          (Printf.sprintf "Annot_io: expected %d rows, found %d" uops
             (List.length rest));
      annot
  | _ -> failwith "Annot_io: truncated header"

let save ~path a =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string a))

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_string (really_input_string ic len))
