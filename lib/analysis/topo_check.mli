(** Interconnect-topology invariants.

    The topology subsystem ([lib/topo]) promises a well-formed fabric:
    shape dimensions consistent with the cluster count, strictly
    positive latencies/bandwidth, and a hop-count function that is a
    metric (zero diagonal, symmetric, every pair reachable). This pass
    re-derives those promises from an arbitrary
    {!Clusteer_topo.Topology.t} — including one parsed from JSON or
    built by hand around the constructors — and checks it against the
    machine configuration it is about to steer.

    Codes:
    - [TP001] (error) — the topology spans a different number of
      clusters than the machine configuration.
    - [TP002] (error) — malformed description: non-positive latency,
      bandwidth or dimension, or shape dimensions that do not multiply
      out to the cluster count.
    - [TP003] (error) — asymmetric hop counts or latencies
      ([distance a b <> distance b a]).
    - [TP004] (error) — broken metric: non-zero self-distance, an
      unreachable cluster pair, or a triangle-inequality violation.
    - [TP005] (warning) — shared-bottleneck risk: a hierarchical
      fabric funnels 4+ groups through a single uplink channel.
    - [TP006] (info) — fabric summary: diameter and mean hop count. *)

open Clusteer_isa

val codes : string list

val check :
  topology:Clusteer_topo.Topology.t -> clusters:int -> unit -> Diag.t list
(** Validate [topology] against a machine with [clusters] physical
    clusters. Returns structural diagnostics ordered by
    {!Diag.compare}; an empty-to-info-only result means the fabric is
    safe to simulate. *)
