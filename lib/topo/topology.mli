(** Inter-cluster interconnect topologies.

    The paper's machine (Table 2) connects its clusters with dedicated
    1-cycle point-to-point links; that remains the default everywhere.
    This module generalizes the fabric into a small closed set of
    shapes with deterministic hop-count and latency queries so the
    engine's copy path, the hardware mapper, and the auto-tuner can
    all reason about distance instead of assuming a uniform link:

    - {b p2p}: a dedicated bi-directional link per cluster pair
      (the paper's baseline; every cross-cluster distance is 1 hop).
    - {b bus}: one shared medium; 1 hop, but a single transfer per
      cycle machine-wide.
    - {b ring}: clusters on a cycle; a copy travels the shorter way
      around, one [link_latency] per hop.
    - {b mesh}: a [cols]x[rows] 2D grid with deterministic XY routing
      (x first, then y); distance is the Manhattan distance.
    - {b hier}: two-level clustering — [groups] groups of
      [group_size] clusters, point-to-point inside a group, and a
      shared uplink between groups with its own (slower)
      [uplink_latency] and [uplink_bandwidth] channels. The shape of
      a PULP-style cluster subsystem.

    All queries are pure and total for clusters in
    [0 .. clusters - 1]; the distance function is a metric (zero on
    the diagonal, symmetric, triangle inequality) — property-tested
    in [test/test_topo.ml]. *)

type kind =
  | P2p
  | Bus
  | Ring
  | Mesh of { cols : int; rows : int }
  | Hier of { groups : int; group_size : int }

type t = {
  kind : kind;
  clusters : int;  (** total physical clusters; for mesh [cols*rows],
                       for hier [groups*group_size] *)
  link_latency : int;
      (** cycles per ordinary hop (paper baseline: 1) *)
  uplink_latency : int;
      (** hier only: cycles to cross the shared inter-group uplink
          (default 4); ignored by the flat topologies *)
  uplink_bandwidth : int;
      (** hier only: independent uplink channels, i.e. cross-group
          transfers that can start on the same cycle (default 1) *)
}

(** {1 Constructors} — all validate and raise [Invalid_argument] on a
    malformed shape. *)

val p2p : ?link_latency:int -> clusters:int -> unit -> t
val bus : ?link_latency:int -> clusters:int -> unit -> t
val ring : ?link_latency:int -> clusters:int -> unit -> t
val mesh : ?link_latency:int -> cols:int -> rows:int -> unit -> t

val hier :
  ?link_latency:int ->
  ?uplink_latency:int ->
  ?uplink_bandwidth:int ->
  groups:int ->
  group_size:int ->
  unit ->
  t

val name : t -> string
(** Canonical name: ["p2p"], ["bus"], ["ring"], ["mesh4x2"],
    ["hier2x4"], ... Fixed-size shapes encode their dimensions. *)

val of_name : ?clusters:int -> string -> (t, string) result
(** Parse a canonical name. ["p2p"], ["bus"] and ["ring"] are
    parametric and take their size from [clusters] (default 4);
    ["mesh<C>x<R>"] and ["hier<G>x<S>"] carry their own size and
    ignore [clusters]. Latencies take their defaults. *)

val builtin_names : string list
(** The names [csteer topo list] advertises:
    [p2p; bus; ring; mesh4x2; hier2x4]. *)

val is_uniform : t -> bool
(** [true] when every cross-cluster distance is one hop (p2p, bus) —
    the steering layer keeps its seed behavior exactly on uniform
    fabrics and only applies distance tie-breaks on the others. *)

(** {1 Queries} *)

val distance : t -> int -> int -> int
(** Hop count of the deterministic route between two clusters; [0] on
    the diagonal. Hier counts egress + uplink + ingress as 3 hops. *)

val latency : t -> int -> int -> int
(** Total copy travel time in cycles along the route; [0] on the
    diagonal. Flat shapes: [distance * link_latency]; hier cross-group
    routes pay [2*link_latency + uplink_latency]. *)

val distance_matrix : t -> int array array
(** Fresh [clusters]x[clusters] matrix of {!distance} — precompute it
    once where the query sits on a hot path. *)

val latency_matrix : t -> int array array
(** Fresh [clusters]x[clusters] matrix of {!latency} — the static cost
    model weights predicted copies with it. *)

val diameter : t -> int
(** Largest pairwise {!distance}. *)

val max_latency : t -> int
(** Largest pairwise {!latency}. *)

val mean_distance : t -> float
(** Mean {!distance} over ordered cross-cluster pairs; [0.] for a
    single cluster. *)

val validate : t -> (unit, string) result
(** Structural checks: positive sizes and latencies, shape consistent
    with [clusters], positive uplink bandwidth. *)

val equal : t -> t -> bool
val describe : t -> string

(** {1 JSON round trip} *)

val to_json : t -> Clusteer_obs.Json.t
val of_json : Clusteer_obs.Json.t -> (t, string) result
