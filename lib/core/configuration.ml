module Compiler = Clusteer_compiler
module Steer = Clusteer_steer

type t =
  | Op
  | One_cluster
  | Ob
  | Rhop
  | Vc of { virtual_clusters : int }
  | Op_parallel
  | Mod_n of { n : int }
  | Dep
  | Crit
  | Thermal

let name = function
  | Op -> "op"
  | One_cluster -> "one-cluster"
  | Ob -> "ob"
  | Rhop -> "rhop"
  | Vc { virtual_clusters } -> Printf.sprintf "vc%d" virtual_clusters
  | Op_parallel -> "op-parallel"
  | Mod_n { n } -> Printf.sprintf "mod%d" n
  | Dep -> "dep"
  | Crit -> "crit"
  | Thermal -> "thermal"

let of_name s =
  match String.lowercase_ascii s with
  | "op" -> Ok Op
  | "one-cluster" | "one" -> Ok One_cluster
  | "ob" -> Ok Ob
  | "rhop" -> Ok Rhop
  | "op-parallel" -> Ok Op_parallel
  | "dep" -> Ok Dep
  | "crit" -> Ok Crit
  | "thermal" -> Ok Thermal
  | s when String.length s > 3 && String.sub s 0 3 = "mod" -> (
      match int_of_string_opt (String.sub s 3 (String.length s - 3)) with
      | Some n when n > 0 -> Ok (Mod_n { n })
      | _ -> Error (`Msg "modN needs a positive N"))
  | s when String.length s > 2 && String.sub s 0 2 = "vc" -> (
      match int_of_string_opt (String.sub s 2 (String.length s - 2)) with
      | Some v when v > 0 -> Ok (Vc { virtual_clusters = v })
      | _ -> Error (`Msg "vcN needs a positive N"))
  | _ -> Error (`Msg (Printf.sprintf "unknown configuration %S" s))

let description = function
  | Op -> "Occupancy-aware steering [15]"
  | One_cluster -> "Every instruction goes to one cluster"
  | Ob -> "Static-placement dynamic-issue operation-based steering [19]"
  | Rhop -> "Region-based hierarchical operation partition [8]"
  | Vc { virtual_clusters } ->
      Printf.sprintf "Hybrid steering based on virtual clustering (%d VCs)"
        virtual_clusters
  | Op_parallel -> "OP with parallel (rename-style) steering decisions (2.1)"
  | Mod_n { n } ->
      Printf.sprintf "Rotate clusters every %d micro-ops (Baniasadi-Moshovos)" n
  | Dep -> "Dependence-based steering without stalling (Canal et al.)"
  | Crit -> "Criticality-aware steering (after Salverda-Zilles)"
  | Thermal -> "Thermal activity-migration steering (after Chaparro et al.)"

type params = {
  remap_threshold : int;
  stall_threshold : int;
  imbalance_limit : int;
  region_uops : int;
  issue_width : float;
  comm_latency : float;
  crit_min_scale : float;
  max_chain : int;
  slack_threshold : int;
  topology : Clusteer_topo.Topology.t option;
}

let default_params =
  {
    remap_threshold = 8;
    stall_threshold = 36;
    imbalance_limit = 200;
    region_uops = 512;
    issue_width = 2.0;
    comm_latency = 1.0;
    crit_min_scale = 0.15;
    max_chain = 0;
    slack_threshold = 0;
    topology = None;
  }

let table3 ~clusters =
  if clusters <= 2 then [ Op; One_cluster; Ob; Rhop; Vc { virtual_clusters = 2 } ]
  else
    [
      Op;
      Ob;
      Rhop;
      Vc { virtual_clusters = clusters };
      Vc { virtual_clusters = 2 };
    ]

let prepare t ~program ~likely ~clusters ?region_uops
    ?(params = default_params) ?annot ?registry () =
  (* An explicit [region_uops] wins over [params] for backward
     compatibility; both default to the paper's 512-uop budget. *)
  let region_uops = Option.value region_uops ~default:params.region_uops in
  let annot =
    match annot with
    | Some annot -> annot
    | None ->
        let scheme =
          match t with
          | Op | One_cluster | Op_parallel | Mod_n _ | Dep | Crit | Thermal ->
              Compiler.Passes.Sw_none
          | Ob -> Compiler.Passes.Sw_ob
          | Rhop -> Compiler.Passes.Sw_rhop { seed = 1 }
          | Vc { virtual_clusters } -> Compiler.Passes.Sw_vc { virtual_clusters }
        in
        Compiler.Passes.run scheme ~program ~likely ~clusters ~region_uops
          ~issue_width:params.issue_width ~comm_latency:params.comm_latency
          ~crit_min_scale:params.crit_min_scale ~max_chain:params.max_chain ()
  in
  let policy =
    match t with
    | Op ->
        Steer.Op.make ~stall_threshold:params.stall_threshold
          ~imbalance_limit:params.imbalance_limit ?registry
          ?topology:params.topology ()
    | Op_parallel ->
        Steer.Op_parallel.make ~stall_threshold:params.stall_threshold
          ~imbalance_limit:params.imbalance_limit ()
    | One_cluster -> Steer.One_cluster.make ()
    | Ob -> Steer.Static.make ~name:"ob" ~annot
    | Rhop -> Steer.Static.make ~name:"rhop" ~annot
    | Vc _ ->
        Steer.Vc_map.make ~remap_threshold:params.remap_threshold ?registry
          ?topology:params.topology ~annot ~clusters ()
    | Mod_n { n } -> Steer.Mod_n.make ~n ()
    | Dep -> Steer.Dep.make ?registry ()
    | Crit ->
        let critical =
          Compiler.Crit_hints.compute ~program ~likely ~region_uops
            ~slack_threshold:params.slack_threshold ()
        in
        Steer.Crit.make ~critical ()
    | Thermal -> Steer.Thermal_aware.make ()
  in
  (annot, policy)
