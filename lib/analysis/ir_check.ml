open Clusteer_isa

(* Every check re-derives its invariant from the raw block array rather
   than trusting [Program.uop]/[uop_index] — the index itself is one of
   the things under test. *)

let expects_dst (op : Opcode.t) =
  match op with
  | Opcode.Store | Opcode.Branch -> false
  | Opcode.Int_alu | Opcode.Int_mul | Opcode.Int_div | Opcode.Fp_add
  | Opcode.Fp_mul | Opcode.Fp_div | Opcode.Load | Opcode.Copy ->
      true

let codes =
  [ "IR001"; "IR002"; "IR003"; "IR004"; "IR005"; "IR006"; "IR007"; "IR008" ]

let check (p : Program.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let nblocks = Array.length p.Program.blocks in
  (* IR004: CFG shape. *)
  if p.Program.entry < 0 || p.Program.entry >= nblocks then
    add
      (Diag.errorf ~code:"IR004" "entry block %d out of range [0, %d)"
         p.Program.entry nblocks);
  Array.iteri
    (fun i blk ->
      if blk.Block.id <> i then
        add
          (Diag.errorf ~block:i ~code:"IR004"
             "block stored at index %d carries id %d" i blk.Block.id);
      Array.iter
        (fun s ->
          if s < 0 || s >= nblocks then
            add
              (Diag.errorf ~block:i ~code:"IR004"
                 "successor %d out of range [0, %d)" s nblocks))
        blk.Block.succs)
    p.Program.blocks;
  (* IR001: dense uop ids, each placed exactly once, index agreement. *)
  let n = p.Program.uop_count in
  let placed = Array.make (max n 0) 0 in
  Array.iteri
    (fun bi blk ->
      Array.iteri
        (fun pos (u : Uop.t) ->
          let id = u.Uop.id in
          if id < 0 || id >= n then
            add
              (Diag.errorf ~uop:id ~block:bi ~code:"IR001"
                 "uop id %d out of range [0, %d)" id n)
          else begin
            placed.(id) <- placed.(id) + 1;
            if placed.(id) = 2 then
              add
                (Diag.errorf ~uop:id ~block:bi ~code:"IR001"
                   "uop %d placed more than once" id);
            if
              placed.(id) = 1
              && Array.length p.Program.uop_index > id
              && p.Program.uop_index.(id) <> (bi, pos)
            then
              add
                (Diag.errorf ~uop:id ~block:bi ~code:"IR001"
                   "uop index maps uop %d to (block %d, pos %d), found at \
                    (block %d, pos %d)"
                   id
                   (fst p.Program.uop_index.(id))
                   (snd p.Program.uop_index.(id))
                   bi pos)
          end)
        blk.Block.uops)
    p.Program.blocks;
  Array.iteri
    (fun id count ->
      if count = 0 then
        add (Diag.errorf ~uop:id ~code:"IR001" "uop id %d never placed" id))
    placed;
  (* Per-uop shape (IR002), register checks (IR003), external
     references (IR006). *)
  let check_reg ~uop ~block what (r : Reg.t) =
    if r.Reg.idx < 0 || r.Reg.idx >= p.Program.nregs_per_class then
      add
        (Diag.errorf ~uop ~block ~code:"IR003"
           "%s register %s outside budget of %d per class" what
           (Reg.to_string r) p.Program.nregs_per_class)
  in
  Array.iteri
    (fun bi blk ->
      Array.iter
        (fun (u : Uop.t) ->
          let uop = u.Uop.id in
          let op = u.Uop.opcode in
          if op = Opcode.Copy then
            add
              (Diag.errorf ~uop ~block:bi ~code:"IR002"
                 "runtime-only Copy opcode in static program text");
          (match (u.Uop.dst, expects_dst op) with
          | None, true ->
              add
                (Diag.errorf ~uop ~block:bi ~code:"IR002"
                   "%s uop has no destination register" (Opcode.to_string op))
          | Some _, false ->
              add
                (Diag.errorf ~uop ~block:bi ~code:"IR002"
                   "%s uop must not write a register" (Opcode.to_string op))
          | _ -> ());
          if Array.length u.Uop.srcs > 2 then
            add
              (Diag.errorf ~uop ~block:bi ~code:"IR002"
                 "%d source operands (at most 2 allowed)"
                 (Array.length u.Uop.srcs));
          (* Class agreement binds computation opcodes only: loads and
             copies legitimately target either register class. *)
          (match (op, u.Uop.dst) with
          | (Opcode.Int_alu | Opcode.Int_mul | Opcode.Int_div), Some d
            when d.Reg.cls <> Reg.Int_class ->
              add
                (Diag.errorf ~uop ~block:bi ~code:"IR003"
                   "%s result written to FP register %s" (Opcode.to_string op)
                   (Reg.to_string d))
          | (Opcode.Fp_add | Opcode.Fp_mul | Opcode.Fp_div), Some d
            when d.Reg.cls <> Reg.Fp_class ->
              add
                (Diag.errorf ~uop ~block:bi ~code:"IR003"
                   "%s result written to integer register %s"
                   (Opcode.to_string op) (Reg.to_string d))
          | _ -> ());
          Option.iter (check_reg ~uop ~block:bi "destination") u.Uop.dst;
          Array.iter (check_reg ~uop ~block:bi "source") u.Uop.srcs;
          if Opcode.is_mem op then begin
            if u.Uop.stream < 0 then
              add
                (Diag.errorf ~uop ~block:bi ~code:"IR002"
                   "memory uop names no stream")
            else if u.Uop.stream >= p.Program.stream_count then
              add
                (Diag.errorf ~uop ~block:bi ~code:"IR006"
                   "stream %d out of range [0, %d)" u.Uop.stream
                   p.Program.stream_count)
          end
          else if u.Uop.stream >= 0 then
            add
              (Diag.errorf ~uop ~block:bi ~code:"IR002"
                 "non-memory uop names stream %d" u.Uop.stream);
          if op = Opcode.Branch then begin
            if u.Uop.branch_ref < 0 then
              add
                (Diag.errorf ~uop ~block:bi ~code:"IR002"
                   "branch names no behaviour model")
            else if u.Uop.branch_ref >= p.Program.branch_model_count then
              add
                (Diag.errorf ~uop ~block:bi ~code:"IR006"
                   "branch model %d out of range [0, %d)" u.Uop.branch_ref
                   p.Program.branch_model_count)
          end
          else if u.Uop.branch_ref >= 0 then
            add
              (Diag.errorf ~uop ~block:bi ~code:"IR002"
                 "non-branch uop names branch model %d" u.Uop.branch_ref))
        blk.Block.uops)
    p.Program.blocks;
  (* IR005: branch placement and terminator contract. *)
  Array.iteri
    (fun bi blk ->
      let nu = Array.length blk.Block.uops in
      Array.iteri
        (fun pos (u : Uop.t) ->
          if Uop.is_branch u && pos <> nu - 1 then
            add
              (Diag.errorf ~uop:u.Uop.id ~block:bi ~code:"IR005"
                 "branch at position %d is not the block terminator" pos))
        blk.Block.uops;
      let last_is_branch = nu > 0 && Uop.is_branch blk.Block.uops.(nu - 1) in
      let nsuccs = Array.length blk.Block.succs in
      if nsuccs >= 2 && not last_is_branch then
        add
          (Diag.errorf ~block:bi ~code:"IR005"
             "%d successors but no terminating branch" nsuccs);
      if last_is_branch && nsuccs < 2 then
        add
          (Diag.errorf ~uop:blk.Block.uops.(nu - 1).Uop.id ~block:bi
             ~code:"IR005" "terminating branch with %d successor%s" nsuccs
             (if nsuccs = 1 then "" else "s")))
    p.Program.blocks;
  (* IR007 (warning): sources never written anywhere in the program. *)
  let written = Hashtbl.create 64 in
  Array.iter
    (fun blk ->
      Array.iter
        (fun (u : Uop.t) ->
          Option.iter (fun d -> Hashtbl.replace written d ()) u.Uop.dst)
        blk.Block.uops)
    p.Program.blocks;
  let reported = Hashtbl.create 8 in
  Array.iteri
    (fun bi blk ->
      Array.iter
        (fun (u : Uop.t) ->
          Array.iter
            (fun src ->
              if
                (not (Hashtbl.mem written src))
                && not (Hashtbl.mem reported src)
              then begin
                Hashtbl.replace reported src ();
                add
                  (Diag.warnf ~uop:u.Uop.id ~block:bi ~code:"IR007"
                     "source register %s is never written" (Reg.to_string src))
              end)
            u.Uop.srcs)
        blk.Block.uops)
    p.Program.blocks;
  (* IR008 (warning): blocks unreachable from the entry. *)
  if nblocks > 0 && p.Program.entry >= 0 && p.Program.entry < nblocks then begin
    let seen = Array.make nblocks false in
    let rec visit b =
      if b >= 0 && b < nblocks && not seen.(b) then begin
        seen.(b) <- true;
        Array.iter visit p.Program.blocks.(b).Block.succs
      end
    in
    visit p.Program.entry;
    Array.iteri
      (fun b reachable ->
        if not reachable then
          add
            (Diag.warnf ~block:b ~code:"IR008"
               "block %d unreachable from entry %d" b p.Program.entry))
      seen
  end;
  List.rev !diags
