lib/graphpart/multilevel.ml: Array Coarsen Fun Refine Wgraph
