lib/uarch/thermal.ml: Array Energy Stats
