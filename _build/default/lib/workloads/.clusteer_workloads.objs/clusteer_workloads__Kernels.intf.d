lib/workloads/kernels.mli: Synth
