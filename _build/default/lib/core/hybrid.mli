(** One-stop API for the paper's contribution: the software-hardware
    hybrid steering mechanism based on virtual clusters.

    {[
      let workload = (* a program + profile feedback *) in
      let sim =
        Hybrid.simulate ~config:(Clusteer_uarch.Config.default_2c)
          ~virtual_clusters:2 ~program ~likely ~source ~uops:50_000 ()
      in
      Fmt.pr "IPC %.2f, %d copies@." (Clusteer_uarch.Stats.ipc sim) ...
    ]} *)

open Clusteer_isa

val compile :
  program:Program.t ->
  likely:(int -> int option) ->
  virtual_clusters:int ->
  ?region_uops:int ->
  unit ->
  Annot.t
(** The software half (Fig. 2 + Fig. 3): partition every region's DDG
    into virtual clusters and mark chain leaders. *)

val policy :
  annot:Annot.t -> clusters:int -> Clusteer_uarch.Policy.t
(** The hardware half (Fig. 4): the VC→physical mapping table driven
    by workload counters at chain leaders. *)

val simulate :
  config:Clusteer_uarch.Config.t ->
  virtual_clusters:int ->
  program:Program.t ->
  likely:(int -> int option) ->
  source:(unit -> Clusteer_trace.Dynuop.t) ->
  uops:int ->
  ?region_uops:int ->
  unit ->
  Clusteer_uarch.Stats.t
(** Compile, build the policy, run the engine: the full hybrid stack
    end to end. *)
