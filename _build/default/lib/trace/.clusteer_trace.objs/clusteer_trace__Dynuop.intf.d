lib/trace/dynuop.mli: Clusteer_isa Format Uop
