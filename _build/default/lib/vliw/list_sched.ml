open Clusteer_ddg

type state = {
  machine : Machine.t;
  g : Ddg.t;
  res : Schedule.reservation;
  entries : Schedule.entry option array;
  avail : int array array;  (* node -> cluster -> ready cycle, -1 unknown *)
  assigned_ops : int array;  (* per cluster, for tie-breaking *)
  mutable moves : int;
}

let make_state machine g =
  {
    machine;
    g;
    res = Schedule.create_reservation machine;
    entries = Array.make (Ddg.node_count g) None;
    avail =
      Array.init (Ddg.node_count g) (fun _ ->
          Array.make machine.Machine.clusters (-1));
    assigned_ops = Array.make machine.Machine.clusters 0;
    moves = 0;
  }

let entry_exn st node =
  match st.entries.(node) with
  | Some e -> e
  | None -> invalid_arg "Vliw.List_sched: predecessor not scheduled"

(* Cycle at which [pred]'s value is (or can be made) available on
   [cluster]; non-mutating estimate. *)
let estimate_avail st pred ~cluster =
  let known = st.avail.(pred).(cluster) in
  if known >= 0 then known
  else
    let e = entry_exn st pred in
    let move_cycle =
      Schedule.earliest_free st.res ~cluster:e.Schedule.cluster
        ~cls:Machine.Slot_move ~from:e.Schedule.finish
    in
    move_cycle + st.machine.Machine.comm_latency

(* Commit the moves needed to consume [pred] on [cluster]. *)
let commit_avail st pred ~cluster =
  let known = st.avail.(pred).(cluster) in
  if known >= 0 then known
  else begin
    let e = entry_exn st pred in
    let move_cycle =
      Schedule.earliest_free st.res ~cluster:e.Schedule.cluster
        ~cls:Machine.Slot_move ~from:e.Schedule.finish
    in
    Schedule.reserve st.res ~cluster:e.Schedule.cluster ~cls:Machine.Slot_move
      ~cycle:move_cycle;
    st.moves <- st.moves + 1;
    let arrival = move_cycle + st.machine.Machine.comm_latency in
    st.avail.(pred).(cluster) <- arrival;
    arrival
  end

let estimate_start st node ~cluster =
  let ready =
    List.fold_left
      (fun acc (e : Ddg.edge) ->
        max acc (estimate_avail st e.Ddg.src ~cluster))
      0
      st.g.Ddg.preds.(node)
  in
  let cls = Machine.slot_class_of st.g.Ddg.uops.(node).Clusteer_isa.Uop.opcode in
  Schedule.earliest_free st.res ~cluster ~cls ~from:ready

let commit st node ~cluster =
  let ready =
    List.fold_left
      (fun acc (e : Ddg.edge) -> max acc (commit_avail st e.Ddg.src ~cluster))
      0
      st.g.Ddg.preds.(node)
  in
  let cls = Machine.slot_class_of st.g.Ddg.uops.(node).Clusteer_isa.Uop.opcode in
  let cycle = Schedule.earliest_free st.res ~cluster ~cls ~from:ready in
  Schedule.reserve st.res ~cluster ~cls ~cycle;
  let finish = cycle + Ddg.static_latency st.g.Ddg.uops.(node) in
  st.entries.(node) <- Some { Schedule.node; cluster; cycle; finish };
  st.avail.(node).(cluster) <- finish;
  st.assigned_ops.(cluster) <- st.assigned_ops.(cluster) + 1

(* Height-priority topological order. *)
let priority_order g =
  let crit = Critical.analyze g in
  let n = Ddg.node_count g in
  let remaining_preds = Array.map List.length g.Ddg.preds in
  let scheduled = Array.make n false in
  let order = ref [] in
  for _ = 1 to n do
    let best = ref (-1) in
    for node = n - 1 downto 0 do
      if (not scheduled.(node)) && remaining_preds.(node) = 0 then
        if
          !best = -1
          || crit.Critical.height.(node) > crit.Critical.height.(!best)
        then best := node
    done;
    if !best < 0 then invalid_arg "Vliw.List_sched: cyclic DDG";
    scheduled.(!best) <- true;
    List.iter
      (fun (e : Ddg.edge) ->
        remaining_preds.(e.Ddg.dst) <- remaining_preds.(e.Ddg.dst) - 1)
      g.Ddg.succs.(!best);
    order := !best :: !order
  done;
  List.rev !order

let finish_schedule st =
  let entries =
    Array.map
      (function
        | Some e -> e
        | None -> invalid_arg "Vliw.List_sched: unscheduled node")
      st.entries
  in
  (* Makespan: every result is available by the end of cycle
     [finish - 1], so the schedule occupies [max finish] cycles. *)
  let length =
    Array.fold_left (fun acc e -> max acc e.Schedule.finish) 0 entries
  in
  { Schedule.entries; moves = st.moves; length }

let with_assignment machine g ~assignment =
  if Array.length assignment <> Ddg.node_count g then
    invalid_arg "Vliw.List_sched.with_assignment: arity mismatch";
  let st = make_state machine g in
  List.iter
    (fun node ->
      let cluster = assignment.(node) in
      if cluster < 0 || cluster >= machine.Machine.clusters then
        invalid_arg "Vliw.List_sched.with_assignment: cluster out of range";
      commit st node ~cluster)
    (priority_order g);
  finish_schedule st

let unified machine g =
  let st = make_state machine g in
  List.iter
    (fun node ->
      let best = ref 0 and best_start = ref max_int in
      for c = 0 to machine.Machine.clusters - 1 do
        let start = estimate_start st node ~cluster:c in
        if
          start < !best_start
          || (start = !best_start
             && st.assigned_ops.(c) < st.assigned_ops.(!best))
        then begin
          best := c;
          best_start := start
        end
      done;
      commit st node ~cluster:!best)
    (priority_order g);
  finish_schedule st
