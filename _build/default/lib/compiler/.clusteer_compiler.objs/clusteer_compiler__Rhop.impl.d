lib/compiler/rhop.ml: Annot Array Clusteer_ddg Clusteer_graphpart Clusteer_isa Critical Ddg List Multilevel Program Region Uop Wgraph
