(** Deterministic pseudo-random number generation (SplitMix64).

    Every stochastic component of the reproduction (workload synthesis,
    branch behaviour, memory streams) draws from an explicit [Rng.t] so
    that whole experiments are reproducible from a single seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds give equal streams. *)

val copy : t -> t
(** Independent duplicate of the current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. Used to
    give each benchmark phase its own substream. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to [0,1]). *)

val geometric : t -> float -> int
(** [geometric t p] counts failures before the first success of a
    Bernoulli(p) trial; mean [(1-p)/p]. [p] is clamped away from 0. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_weighted : t -> ('a * float) array -> 'a
(** Element drawn with probability proportional to its weight. Weights
    must be non-negative and not all zero. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Normal deviate via Box-Muller. *)
