lib/workloads/analysis.mli: Format Synth
