lib/graphpart/refine.ml: Array Float List Partition Wgraph
