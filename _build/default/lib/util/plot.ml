let scatter ?(width = 64) ?(height = 20) ?(x_label = "x") ?(y_label = "y")
    points =
  if points = [] then ""
  else begin
    let xs = List.map fst points and ys = List.map snd points in
    let min_list = List.fold_left Float.min infinity in
    let max_list = List.fold_left Float.max neg_infinity in
    (* Always include the origin so the zero lines are visible. *)
    let x_lo = Float.min 0.0 (min_list xs) and x_hi = Float.max 0.0 (max_list xs) in
    let y_lo = Float.min 0.0 (min_list ys) and y_hi = Float.max 0.0 (max_list ys) in
    let pad v = if v = 0.0 then 1.0 else v in
    let x_span = pad (x_hi -. x_lo) and y_span = pad (y_hi -. y_lo) in
    let col x =
      let c =
        int_of_float ((x -. x_lo) /. x_span *. float_of_int (width - 1))
      in
      max 0 (min (width - 1) c)
    in
    let row y =
      let r =
        int_of_float ((y -. y_lo) /. y_span *. float_of_int (height - 1))
      in
      (height - 1) - max 0 (min (height - 1) r)
    in
    let grid = Array.make_matrix height width ' ' in
    (* zero lines *)
    let zc = col 0.0 and zr = row 0.0 in
    for r = 0 to height - 1 do
      grid.(r).(zc) <- '|'
    done;
    for c = 0 to width - 1 do
      grid.(zr).(c) <- (if c = zc then '+' else '-')
    done;
    List.iter
      (fun (x, y) ->
        let r = row y and c = col x in
        grid.(r).(c) <- (match grid.(r).(c) with '*' | '@' -> '@' | _ -> '*'))
      points;
    let buf = Buffer.create (height * (width + 1)) in
    Buffer.add_string buf
      (Printf.sprintf "%s (vertical, %.1f .. %.1f) vs %s (horizontal, %.1f .. %.1f)\n"
         y_label y_lo y_hi x_label x_lo x_hi);
    Array.iter
      (fun line ->
        Buffer.add_string buf (String.init width (Array.get line));
        Buffer.add_char buf '\n')
      grid;
    Buffer.contents buf
  end
