lib/isa/annot_io.mli: Annot
