open Clusteer_isa

type scheme =
  | Sw_none
  | Sw_ob
  | Sw_rhop of { seed : int }
  | Sw_vc of { virtual_clusters : int }

let scheme_name = function
  | Sw_none -> "none"
  | Sw_ob -> "ob"
  | Sw_rhop _ -> "rhop"
  | Sw_vc { virtual_clusters } -> Printf.sprintf "vc%d" virtual_clusters

let run scheme ~program ~likely ~clusters ?(region_uops = 512) ?issue_width
    ?comm_latency ?crit_min_scale ?max_chain () =
  match scheme with
  | Sw_none -> Annot.none ~uop_count:program.Program.uop_count
  | Sw_ob -> Ob.compile ~program ~likely ~clusters ~region_uops ()
  | Sw_rhop { seed } -> Rhop.compile ~program ~likely ~clusters ~region_uops ~seed ()
  | Sw_vc { virtual_clusters } ->
      Vc_partition.compile ~program ~likely ~virtual_clusters ~region_uops
        ?issue_width ?comm_latency ?crit_min_scale ?max_chain ()
