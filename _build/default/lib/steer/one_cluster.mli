(** The naive hardware scheme of Table 3: "every instruction goes to
    one cluster". Zero communication, worst workload distribution —
    the paper's lower bound showing how much a good steering scheme
    buys. *)

val make : unit -> Clusteer_uarch.Policy.t
