lib/steer/crit.mli: Clusteer_uarch
