(** Run statistics collected by the engine.

    These are the quantities the paper evaluates on: execution cycles
    (hence IPC and slowdown), copy micro-ops generated, and allocation
    stalls — "workload balance improvement is computed as the total
    reduction of the allocation stalls in the issue queues" (§5.3). *)

type t = {
  mutable cycles : int;
  mutable committed : int;  (** program micro-ops committed (copies excluded) *)
  mutable dispatched : int;
  mutable copies_generated : int;
  mutable copies_executed : int;
  mutable link_transfers : int;
  (* Dispatch (allocation) stall cycles, by blocking reason. A cycle
     counts at most once, attributed to the first blocked micro-op. *)
  mutable stall_iq_full : int;
  mutable stall_copyq_full : int;
  mutable stall_rob_full : int;
  mutable stall_lsq_full : int;
  mutable stall_regfile : int;  (** destination register file exhausted *)
  mutable stall_policy : int;  (** steering policy chose to stall *)
  mutable stall_empty : int;  (** front-end starved (mispredict redirects) *)
  (* Memory / branches *)
  mutable loads : int;
  mutable stores : int;
  mutable branch_lookups : int;
  mutable branch_mispredicts : int;
  mutable tc_hits : int;  (** trace cache *)
  mutable tc_misses : int;
  mutable l1_hits : int;
  mutable l1_misses : int;
  mutable l2_hits : int;
  mutable l2_misses : int;
  per_cluster_dispatched : int array;
}

val create : clusters:int -> t

val reset : t -> unit
(** Zero every counter (used at the end of the warmup phase). *)

val copy : t -> t
(** Independent deep copy (the per-cluster array included). The
    harness hands copies out when it reuses an engine across points:
    the next {!reset} must not clobber results already returned. *)

val ipc : t -> float

val allocation_stalls : t -> int
(** Issue-queue allocation stalls: [stall_iq_full + stall_copyq_full +
    stall_policy] — the paper's workload-balance metric. *)

val copy_rate : t -> float
(** Copies generated per committed program micro-op. *)

val balance_entropy : t -> float
(** Normalised entropy of the per-cluster dispatch distribution in
    [0, 1]; 1.0 = perfectly even. *)

val stall_fields : t -> (string * int) list
(** Stall counters paired with their canonical names, in
    {!Clusteer_obs.Event.stall_names} order. *)

val total_stalls : t -> int
(** Sum over every stall reason. *)

val equal : t -> t -> bool
(** Field-by-field equality, including the per-cluster array — the
    zero-overhead-when-off guard compares instrumented and
    uninstrumented runs with this. *)

val snapshot : t -> Clusteer_obs.Interval.snapshot
(** Cumulative counters in the shape the interval-telemetry layer
    diffs ({!Clusteer_obs.Interval.diff}). Copies the per-cluster
    array. *)

val to_json : t -> Clusteer_obs.Json.t
(** Machine-readable encoding of every counter plus the derived
    metrics (ipc, copy rate, allocation stalls, balance entropy). *)

val pp : Format.formatter -> t -> unit
(** Human-readable dump: every counter including the full stall
    breakdown, allocation-stall total, copy rate and balance
    entropy. *)
