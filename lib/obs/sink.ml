type t = {
  emit : Event.t -> unit;
  interval : int;
  on_snapshot : Interval.snapshot -> unit;
}

let null = { emit = ignore; interval = 0; on_snapshot = ignore }

let tee a b =
  {
    emit =
      (fun ev ->
        a.emit ev;
        b.emit ev);
    interval = a.interval;
    on_snapshot =
      (fun snap ->
        a.on_snapshot snap;
        b.on_snapshot snap);
  }
