lib/workloads/profile.mli:
