open Clusteer_isa
open Clusteer_trace
module Bitset = Clusteer_util.Bitset
module Pqueue = Clusteer_util.Pqueue
module Ring = Clusteer_util.Ring
module Vec = Clusteer_util.Vec
module Obs_event = Clusteer_obs.Event
module Obs_sink = Clusteer_obs.Sink
module Obs_counters = Clusteer_obs.Counters
module Obs_profile = Clusteer_obs.Profile

type kind =
  | Op of Dynuop.t
  | Copy_op of { tag : int; to_cluster : int }

type inst = {
  iseq : int;  (* global age, used as select priority *)
  kind : kind;
  cluster : int;  (* where it is queued / executes *)
  queue : Opcode.queue;
  dst_tag : int;  (* -1 = none *)
  src_tags : int array;
  mutable waiting : int;  (* outstanding operands *)
  mutable completed : bool;
  mutable took_mshr : bool;  (* load in flight past the L1 *)
  mutable store_waiters : inst list;  (* loads blocked on this store *)
  mispredicted : bool;
}

type event =
  | Ev_complete of inst
  | Ev_copy_arrive of inst

type fetch_slot = { duop : Dynuop.t; ready_at : int; misp : bool }

(* Self-profiler spans, interned once at creation so the per-cycle
   instrumented path touches no hashtable. *)
type prof_spans = {
  p_fetch : Obs_profile.span;
  p_dispatch : Obs_profile.span;
  p_issue : Obs_profile.span;
  p_writeback : Obs_profile.span;
  p_commit : Obs_profile.span;
}

let never = max_int

(* [annot], [policy], [frontend_depth] and [view] are mutable so the
   harness can {!reset} an engine to run a different configuration on
   the same preallocated machine state — per-domain engine reuse is
   what keeps the parallel sweep's allocation rate (and with it the
   stop-the-world minor-GC frequency) down. *)
type t = {
  cfg : Config.t;
  mutable annot : Annot.t;
  mutable policy : Policy.t;
  mutable frontend_depth : int;
      (* fetch-to-dispatch + serialized-steer stages *)
  stats : Stats.t;
  memsys : Memsys.t;
  bpred : Bpred.t;
  tcache : Tracecache.t;
  (* time *)
  mutable cycle : int;
  mutable next_iseq : int;
  (* front-end *)
  fetchq : fetch_slot Ring.t;
  mutable fetch_resume : int;  (* no fetch before this cycle; [never] while
                                   a mispredicted branch is unresolved *)
  (* rename: architectural register code -> value tag *)
  rename : int array;
  (* per-tag state *)
  tag_loc : Vec.t;  (* cluster mask: where the value is or will be *)
  tag_ready : Vec.t;  (* cluster mask: where the value has been produced *)
  tag_origin : Vec.t;  (* producing cluster *)
  waiters : (int, inst list ref) Hashtbl.t;  (* (tag, cluster) key *)
  (* back-end *)
  rob : inst Ring.t;
  occupancy : int array array;  (* cluster -> queue index -> used slots *)
  inflight : int array;  (* cluster -> dispatched, not yet completed *)
  ready_q : inst Pqueue.t array array;  (* cluster -> queue index *)
  unit_free : int array array;  (* cluster -> fu index -> next free cycle *)
  fabric : Clusteer_topo.Fabric.t;  (* per-link next-free-cycle state *)
  mutable lsq_used : int;
  regs_used : int array array;  (* cluster -> class (0 int, 1 fp) -> live dests *)
  mutable misses_outstanding : int;  (* in-flight L1 misses (MSHR usage) *)
  pending_store : (int, inst) Hashtbl.t;  (* 8-byte-aligned addr -> store *)
  events : event Pqueue.t;
  (* per-cycle port counters *)
  mutable loads_this_cycle : int;
  mutable stores_this_cycle : int;
  mutable view : Policy.view;
  (* dispatch-loop scratch, reused every cycle so the per-uop path
     allocates nothing: tags needing copies (deduped) and per-source-
     cluster pending-copy counts for the copy-queue capacity check *)
  mutable copy_tags : int array;
  copy_extra : int array;
  (* observability: with [None] every emission site is one pattern
     match and constructs nothing — the simulated behaviour and the
     final statistics are bit-identical to an uninstrumented engine *)
  mutable obs : Obs_sink.t option;
  copyq_depth_hist : Obs_counters.histogram;
  (* self-profiler: like [obs], [None] means every step is one pattern
     match away from the uninstrumented path *)
  prof : prof_spans option;
}

let queue_index = function
  | Opcode.Int_queue -> 0
  | Opcode.Fp_queue -> 1
  | Opcode.Copy_queue -> 2

let queue_name = function
  | Opcode.Int_queue -> "int"
  | Opcode.Fp_queue -> "fp"
  | Opcode.Copy_queue -> "copy"

let queue_size cfg = function
  | Opcode.Int_queue -> cfg.Config.int_iq_size
  | Opcode.Fp_queue -> cfg.Config.fp_iq_size
  | Opcode.Copy_queue -> cfg.Config.copy_q_size

let queue_width cfg = function
  | Opcode.Int_queue -> cfg.Config.int_issue_width
  | Opcode.Fp_queue -> cfg.Config.fp_issue_width
  | Opcode.Copy_queue -> cfg.Config.copy_issue_width

let fu_index = function
  | Opcode.Fu_alu -> 0
  | Opcode.Fu_imul -> 1
  | Opcode.Fu_fp -> 2
  | Opcode.Fu_copy -> 3

let reg_code cfg_nregs (r : Reg.t) = Reg.encode ~nregs_per_class:cfg_nregs r

(* The engine supports any register budget; the rename table is sized
   for the largest budget the workloads use. *)
let max_nregs_per_class = 64

(* Initial architectural values live in every cluster: machine state
   that predates the trace is assumed resident everywhere. *)
let seed_rename ~rename ~tag_loc ~tag_ready ~tag_origin ~all_mask =
  Array.iteri
    (fun code _ ->
      let tag = Vec.push tag_loc all_mask in
      ignore (Vec.push tag_ready all_mask);
      ignore (Vec.push tag_origin 0);
      rename.(code) <- tag)
    rename

(* The policy's read-only window into the machine. Rebuilt on
   {!reset} because it carries the (new) annotation; the closures
   always read through [t], so the rebuild is about the [annot] field
   only. *)
let make_view t =
  {
    Policy.clusters = t.cfg.Config.clusters;
    cycle = (fun () -> t.cycle);
    inflight = (fun c -> t.inflight.(c));
    queue_free =
      (fun c q -> queue_size t.cfg q - t.occupancy.(c).(queue_index q));
    src_locations =
      (fun duop ->
        Array.map
          (fun src ->
            let tag = t.rename.(reg_code max_nregs_per_class src) in
            Bitset.of_mask (Vec.get t.tag_loc tag))
          duop.Dynuop.suop.Uop.srcs);
    src_locations_into =
      (fun duop buf ->
        let srcs = duop.Dynuop.suop.Uop.srcs in
        let n = Array.length srcs in
        for i = 0 to n - 1 do
          let tag = t.rename.(reg_code max_nregs_per_class srcs.(i)) in
          buf.(i) <- Bitset.of_mask (Vec.get t.tag_loc tag)
        done;
        n);
    reg_location =
      (fun r ->
        let tag = t.rename.(reg_code max_nregs_per_class r) in
        Bitset.of_mask (Vec.get t.tag_loc tag));
    annot = t.annot;
  }

(* Policies using the serialized dependence-check/vote hardware pay
   the extra decode stages of 2.1. *)
let frontend_depth_of config (policy : Policy.t) =
  config.Config.fetch_to_dispatch
  +
  if policy.Policy.uses_vote_unit then config.Config.steer_serial_stages else 0

let create ~config ~annot ~policy ?(prewarm = []) ?obs ?registry ?profile () =
  Config.validate config;
  let clusters = config.Config.clusters in
  let stats = Stats.create ~clusters in
  let tag_loc = Vec.create ~default:0 () in
  let tag_ready = Vec.create ~default:0 () in
  let tag_origin = Vec.create ~default:0 () in
  let rename = Array.make (2 * max_nregs_per_class) (-1) in
  let all_mask = (Bitset.full clusters :> int) in
  seed_rename ~rename ~tag_loc ~tag_ready ~tag_origin ~all_mask;
  let t =
    {
      cfg = config;
      annot;
      policy;
      frontend_depth = frontend_depth_of config policy;
      stats;
      memsys = Memsys.create config;
      bpred = Bpred.create ~bits:config.Config.bpred_bits;
      tcache =
        Tracecache.create ~size_uops:config.Config.tc_size_uops
          ~line_uops:config.Config.tc_line_uops ~ways:config.Config.tc_ways;
      cycle = 0;
      next_iseq = 0;
      fetchq =
        Ring.create
          ~capacity:
            (config.Config.fetch_width * (config.Config.fetch_to_dispatch + 2));
      fetch_resume = 0;
      rename;
      tag_loc;
      tag_ready;
      tag_origin;
      waiters = Hashtbl.create 1024;
      rob = Ring.create ~capacity:config.Config.rob_size;
      occupancy = Array.init clusters (fun _ -> Array.make 3 0);
      inflight = Array.make clusters 0;
      ready_q =
        Array.init clusters (fun _ -> Array.init 3 (fun _ -> Pqueue.create ()));
      unit_free = Array.init clusters (fun _ -> Array.make 4 0);
      fabric = Clusteer_topo.Fabric.create config.Config.topology;
      lsq_used = 0;
      regs_used = Array.init clusters (fun _ -> Array.make 2 0);
      misses_outstanding = 0;
      pending_store = Hashtbl.create 64;
      events = Pqueue.create ();
      loads_this_cycle = 0;
      stores_this_cycle = 0;
      copy_tags = Array.make 8 (-1);
      copy_extra = Array.make clusters 0;
      obs;
      copyq_depth_hist = Obs_counters.histogram ?registry "engine.copyq_depth";
      prof =
        (match profile with
        | None -> None
        | Some p ->
            Some
              {
                p_fetch = Obs_profile.span p "engine.fetch";
                p_dispatch = Obs_profile.span p "engine.dispatch";
                p_issue = Obs_profile.span p "engine.issue";
                p_writeback = Obs_profile.span p "engine.writeback";
                p_commit = Obs_profile.span p "engine.commit";
              });
      (* Placeholder, replaced right below: the real view's closures
         need [t] itself. *)
      view =
        {
          Policy.clusters;
          cycle = (fun () -> 0);
          inflight = (fun _ -> 0);
          queue_free = (fun _ _ -> 0);
          src_locations = (fun _ -> [||]);
          src_locations_into = (fun _ _ -> 0);
          reg_location = (fun _ -> Bitset.of_mask 0);
          annot;
        };
    }
  in
  t.view <- make_view t;
  List.iter (fun (base, bytes) -> Memsys.prewarm t.memsys ~base ~bytes) prewarm;
  t

let reset ?(prewarm = []) ?obs t ~annot ~policy =
  t.annot <- annot;
  t.policy <- policy;
  t.frontend_depth <- frontend_depth_of t.cfg policy;
  Stats.reset t.stats;
  Memsys.reset t.memsys;
  Bpred.reset t.bpred;
  Tracecache.reset t.tcache;
  t.cycle <- 0;
  t.next_iseq <- 0;
  Ring.clear t.fetchq;
  t.fetch_resume <- 0;
  Vec.clear t.tag_loc;
  Vec.clear t.tag_ready;
  Vec.clear t.tag_origin;
  let all_mask = (Bitset.full t.cfg.Config.clusters :> int) in
  seed_rename ~rename:t.rename ~tag_loc:t.tag_loc ~tag_ready:t.tag_ready
    ~tag_origin:t.tag_origin ~all_mask;
  Hashtbl.reset t.waiters;
  Ring.clear t.rob;
  Array.iter (fun a -> Array.fill a 0 (Array.length a) 0) t.occupancy;
  Array.fill t.inflight 0 (Array.length t.inflight) 0;
  Array.iter (fun qs -> Array.iter Pqueue.clear qs) t.ready_q;
  Array.iter (fun a -> Array.fill a 0 (Array.length a) 0) t.unit_free;
  Clusteer_topo.Fabric.reset t.fabric;
  t.lsq_used <- 0;
  Array.iter (fun a -> Array.fill a 0 (Array.length a) 0) t.regs_used;
  t.misses_outstanding <- 0;
  Hashtbl.reset t.pending_store;
  Pqueue.clear t.events;
  t.loads_this_cycle <- 0;
  t.stores_this_cycle <- 0;
  t.obs <- obs;
  t.view <- make_view t;
  List.iter (fun (base, bytes) -> Memsys.prewarm t.memsys ~base ~bytes) prewarm

let stats t = t.stats
let set_sink t obs = t.obs <- obs

(* Events are stamped in measured time (1-based cycle index of the
   statistics), not the engine's internal clock: the internal clock
   keeps counting through the warmup reset, measured time restarts —
   and the trace must line up with the interval samples and the final
   statistics. *)
let now t = t.stats.Stats.cycles + 1

(* ---- tag / wakeup machinery ------------------------------------- *)

let waiter_key t tag cluster = (tag * t.cfg.Config.clusters) + cluster

let enqueue_ready t inst =
  Pqueue.add t.ready_q.(inst.cluster).(queue_index inst.queue) inst.iseq inst

let add_waiter t inst tag cluster =
  inst.waiting <- inst.waiting + 1;
  let key = waiter_key t tag cluster in
  match Hashtbl.find_opt t.waiters key with
  | Some l -> l := inst :: !l
  | None -> Hashtbl.add t.waiters key (ref [ inst ])

let wake inst t =
  inst.waiting <- inst.waiting - 1;
  if inst.waiting = 0 then enqueue_ready t inst

let broadcast t tag cluster =
  Vec.set t.tag_ready tag (Vec.get t.tag_ready tag lor (1 lsl cluster));
  let key = waiter_key t tag cluster in
  match Hashtbl.find_opt t.waiters key with
  | Some l ->
      Hashtbl.remove t.waiters key;
      List.iter (fun inst -> wake inst t) !l
  | None -> ()

let tag_ready_in t tag cluster = Vec.get t.tag_ready tag land (1 lsl cluster) <> 0
let tag_located_in t tag cluster = Vec.get t.tag_loc tag land (1 lsl cluster) <> 0

let new_tag t ~cluster =
  let tag = Vec.push t.tag_loc (1 lsl cluster) in
  ignore (Vec.push t.tag_ready 0);
  ignore (Vec.push t.tag_origin cluster);
  tag

(* ---- events ------------------------------------------------------ *)

let on_complete t inst =
  inst.completed <- true;
  if inst.took_mshr then begin
    inst.took_mshr <- false;
    t.misses_outstanding <- t.misses_outstanding - 1
  end;
  t.inflight.(inst.cluster) <- t.inflight.(inst.cluster) - 1;
  if inst.dst_tag >= 0 then broadcast t inst.dst_tag inst.cluster;
  (match inst.kind with
  | Op duop ->
      let u = duop.Dynuop.suop in
      (match u.Uop.opcode with
      | Opcode.Store ->
          List.iter (fun load -> wake load t) inst.store_waiters;
          inst.store_waiters <- []
      | Opcode.Branch ->
          if inst.mispredicted then begin
            t.fetch_resume <- t.cycle + t.cfg.Config.redirect_penalty;
            match t.obs with
            | None -> ()
            | Some s ->
                let cycle = now t in
                s.Obs_sink.emit
                  (Obs_event.Redirect
                     { cycle; resume = cycle + t.cfg.Config.redirect_penalty })
          end
      | _ -> ())
  | Copy_op _ -> ())

let on_copy_arrive t inst =
  match inst.kind with
  | Copy_op { tag; to_cluster } ->
      t.stats.Stats.copies_executed <- t.stats.Stats.copies_executed + 1;
      broadcast t tag to_cluster
  | Op _ -> assert false

let process_events t =
  let due = Pqueue.pop_while t.events (fun cyc -> cyc <= t.cycle) in
  List.iter
    (fun (_, ev) ->
      match ev with
      | Ev_complete inst -> on_complete t inst
      | Ev_copy_arrive inst -> on_copy_arrive t inst)
    due

(* ---- commit ------------------------------------------------------ *)

(* Micro-op class for the "3+3" dispatch/commit width split: the FP
   pipe handles FP-queue micro-ops, the INT pipe everything else. *)
let is_fp_class (u : Uop.t) =
  match Opcode.queue u.Uop.opcode with
  | Opcode.Fp_queue -> true
  | Opcode.Int_queue | Opcode.Copy_queue -> false

let commit t =
  let budget = ref t.cfg.Config.commit_width in
  let int_budget = ref t.cfg.Config.commit_class_width in
  let fp_budget = ref t.cfg.Config.commit_class_width in
  let continue_ = ref true in
  while !continue_ && !budget > 0 do
    match Ring.peek t.rob with
    | Some inst when inst.completed -> (
        match inst.kind with
        | Op duop ->
            let u = duop.Dynuop.suop in
            let class_budget = if is_fp_class u then fp_budget else int_budget in
            let is_store =
              match u.Uop.opcode with Opcode.Store -> true | _ -> false
            in
            if !class_budget <= 0 then continue_ := false
            else if is_store && t.stores_this_cycle >= t.cfg.Config.l1_write_ports
            then continue_ := false
            else begin
              decr class_budget;
              ignore (Ring.pop t.rob);
              if is_store then begin
                t.stores_this_cycle <- t.stores_this_cycle + 1;
                Memsys.store t.memsys ~addr:duop.Dynuop.addr;
                let key = duop.Dynuop.addr land lnot 7 in
                (match Hashtbl.find_opt t.pending_store key with
                | Some s when s == inst -> Hashtbl.remove t.pending_store key
                | Some _ | None -> ())
              end;
              if Uop.is_mem u then t.lsq_used <- t.lsq_used - 1;
              (match u.Uop.dst with
              | Some dst ->
                  let k =
                    match dst.Reg.cls with
                    | Reg.Int_class -> 0
                    | Reg.Fp_class -> 1
                  in
                  t.regs_used.(inst.cluster).(k) <-
                    t.regs_used.(inst.cluster).(k) - 1
              | None -> ());
              t.stats.Stats.committed <- t.stats.Stats.committed + 1;
              (match t.obs with
              | None -> ()
              | Some s ->
                  s.Obs_sink.emit
                    (Obs_event.Commit
                       {
                         cycle = now t;
                         iseq = inst.iseq;
                         cluster = inst.cluster;
                       }));
              decr budget
            end
        | Copy_op _ -> assert false)
    | Some _ | None -> continue_ := false
  done

(* ---- issue ------------------------------------------------------- *)

let exec_latency t inst =
  match inst.kind with
  | Copy_op _ -> 1
  | Op duop -> (
      let u = duop.Dynuop.suop in
      match u.Uop.opcode with
      | Opcode.Load ->
          let mem = Memsys.load_latency t.memsys ~addr:duop.Dynuop.addr in
          Opcode.latency Opcode.Load + mem
      | op -> Opcode.latency op)

(* Interconnect model: the topology's link-occupancy fabric
   ({!Clusteer_topo.Fabric}) decides which links a transfer occupies
   and how long it travels. A refused reservation (any link on the
   deterministic route busy at its slot) leaves the copy in the queue
   to retry next cycle — link backpressure becomes copy-queue
   pressure upstream. On point-to-point and bus this is bit-identical
   to the historical [link_free] matrix. *)

(* Try to start one ready instruction; returns [true] on success,
   [false] when a structural hazard blocks it this cycle. *)
let try_start t inst =
  match inst.kind with
  | Copy_op { to_cluster; _ } ->
      let from = inst.cluster in
      let latency =
        Clusteer_topo.Fabric.try_transfer t.fabric ~now:t.cycle ~from
          ~to_:to_cluster
      in
      if latency < 0 then false
      else begin
        t.stats.Stats.link_transfers <- t.stats.Stats.link_transfers + 1;
        (match t.obs with
        | None -> ()
        | Some s ->
            s.Obs_sink.emit
              (Obs_event.Link_transfer
                 { cycle = now t; from_cluster = from; to_cluster; latency }));
        Pqueue.add t.events (t.cycle + latency) (Ev_copy_arrive inst);
        (* The copy has left the copy queue; completion frees the
           in-flight counter. *)
        Pqueue.add t.events (t.cycle + 1) (Ev_complete inst);
        true
      end
  | Op duop ->
      let u = duop.Dynuop.suop in
      let op = u.Uop.opcode in
      let is_load = match op with Opcode.Load -> true | _ -> false in
      if is_load && t.loads_this_cycle >= t.cfg.Config.l1_read_ports then false
      else begin
        (* MSHR check: a load that will miss the L1 needs a free miss
           register; without one it retries next cycle. *)
        let needs_mshr =
          is_load
          && not
               (Memsys.l1_resident t.memsys
                  ~addr:
                    (match inst.kind with
                    | Op d -> d.Dynuop.addr
                    | Copy_op _ -> assert false))
        in
        if needs_mshr && t.misses_outstanding >= t.cfg.Config.mshrs then false
        else
        let fu = fu_index (Opcode.fu op) in
        if
          (not (Opcode.pipelined op))
          && t.unit_free.(inst.cluster).(fu) > t.cycle
        then false
        else begin
          if is_load then t.loads_this_cycle <- t.loads_this_cycle + 1;
          if needs_mshr then begin
            inst.took_mshr <- true;
            t.misses_outstanding <- t.misses_outstanding + 1
          end;
          let lat = exec_latency t inst in
          if not (Opcode.pipelined op) then
            t.unit_free.(inst.cluster).(fu) <- t.cycle + lat;
          Pqueue.add t.events (t.cycle + lat) (Ev_complete inst);
          true
        end
      end

let issue_queue t cluster qidx queue =
  let width = queue_width t.cfg queue in
  let q = t.ready_q.(cluster).(qidx) in
  let blocked = ref [] in
  let started = ref 0 in
  let continue_ = ref true in
  while !continue_ && !started < width do
    match Pqueue.pop q with
    | None -> continue_ := false
    | Some (_, inst) ->
        if try_start t inst then begin
          t.occupancy.(cluster).(qidx) <- t.occupancy.(cluster).(qidx) - 1;
          incr started
        end
        else blocked := inst :: !blocked
  done;
  List.iter (fun inst -> Pqueue.add q inst.iseq inst) !blocked

let issue t =
  for c = 0 to t.cfg.Config.clusters - 1 do
    issue_queue t c 2 Opcode.Copy_queue;
    issue_queue t c 0 Opcode.Int_queue;
    issue_queue t c 1 Opcode.Fp_queue
  done

(* ---- dispatch ---------------------------------------------------- *)

type dispatch_block =
  | Blk_none
  | Blk_width  (* per-cluster steer bandwidth exhausted this cycle *)
  | Blk_empty
  | Blk_rob
  | Blk_lsq
  | Blk_reg  (* destination register file exhausted in the target cluster *)
  | Blk_policy
  | Blk_iq
  | Blk_copyq

let fresh_iseq t =
  let s = t.next_iseq in
  t.next_iseq <- s + 1;
  s

(* Copies needed to bring every source of [u] to [cluster]: fills
   [t.copy_tags] with the deduplicated tags whose location mask misses
   the target cluster and returns their count. Scratch-based (no list,
   no allocation): micro-ops have at most a handful of sources, so the
   quadratic dedup scan is cheaper than any set structure. *)
let copies_needed t (u : Uop.t) cluster =
  let srcs = u.Uop.srcs in
  let nsrcs = Array.length srcs in
  if nsrcs > Array.length t.copy_tags then
    t.copy_tags <- Array.make nsrcs (-1);
  let n = ref 0 in
  for i = 0 to nsrcs - 1 do
    let tag = t.rename.(reg_code max_nregs_per_class srcs.(i)) in
    if not (tag_located_in t tag cluster) then begin
      let dup = ref false in
      for j = 0 to !n - 1 do
        if t.copy_tags.(j) = tag then dup := true
      done;
      if not !dup then begin
        t.copy_tags.(!n) <- tag;
        incr n
      end
    end
  done;
  !n

let insert_copy t tag ~to_cluster =
  let from = Vec.get t.tag_origin tag in
  let inst =
    {
      iseq = fresh_iseq t;
      kind = Copy_op { tag; to_cluster };
      cluster = from;
      queue = Opcode.Copy_queue;
      dst_tag = -1;
      src_tags = [| tag |];
      waiting = 0;
      completed = false;
      took_mshr = false;
      store_waiters = [];
      mispredicted = false;
    }
  in
  t.occupancy.(from).(2) <- t.occupancy.(from).(2) + 1;
  t.inflight.(from) <- t.inflight.(from) + 1;
  Vec.set t.tag_loc tag (Vec.get t.tag_loc tag lor (1 lsl to_cluster));
  t.stats.Stats.copies_generated <- t.stats.Stats.copies_generated + 1;
  (match t.obs with
  | None -> ()
  | Some s ->
      let depth = t.occupancy.(from).(2) in
      Obs_counters.observe t.copyq_depth_hist depth;
      s.Obs_sink.emit
        (Obs_event.Copy_insert
           {
             cycle = now t;
             tag;
             from_cluster = from;
             to_cluster;
             copyq_depth = depth;
           }));
  if tag_ready_in t tag from then enqueue_ready t inst
  else add_waiter t inst tag from

let dispatch_one t (slot : fetch_slot) ~per_cluster =
  let duop = slot.duop in
  let u = duop.Dynuop.suop in
  (* Structural preconditions outside the clusters. *)
  if Ring.is_full t.rob then Blk_rob
  else if Uop.is_mem u && t.lsq_used >= t.cfg.Config.lsq_size then Blk_lsq
  else
    match t.policy.Policy.decide t.view duop with
    | Policy.Stall -> Blk_policy
    | Policy.Dispatch_to cluster ->
        if cluster < 0 || cluster >= t.cfg.Config.clusters then
          invalid_arg
            (Printf.sprintf
               "Engine: policy %s steered micro-op %d to invalid cluster %d"
               t.policy.Policy.name (Dynuop.static_id duop) cluster);
        (* The steering decision is observable even when a structural
           hazard then blocks the dispatch: the hardware consults the
           policy again next cycle, and each consult is an event. *)
        (match t.obs with
        | None -> ()
        | Some s ->
            s.Obs_sink.emit
              (Obs_event.Steer
                 {
                   cycle = now t;
                   static_id = Dynuop.static_id duop;
                   cluster;
                   inflight = Array.copy t.inflight;
                 }));
        if per_cluster.(cluster) >= t.cfg.Config.dispatch_per_cluster then
          Blk_width
        else
        let qidx = queue_index (Opcode.queue u.Uop.opcode) in
        let reg_class_of dst =
          match dst.Reg.cls with Reg.Int_class -> 0 | Reg.Fp_class -> 1
        in
        let regfile_full =
          match u.Uop.dst with
          | Some dst ->
              let k = reg_class_of dst in
              let cap =
                if k = 0 then t.cfg.Config.int_regfile
                else t.cfg.Config.fp_regfile
              in
              t.regs_used.(cluster).(k) >= cap
          | None -> false
        in
        if
          t.occupancy.(cluster).(qidx)
          >= queue_size t.cfg (Opcode.queue u.Uop.opcode)
        then Blk_iq
        else if regfile_full then Blk_reg
        else begin
          let needed = copies_needed t u cluster in
          (* Copy queue capacity check in every source cluster, using
             the per-cluster scratch counters instead of a fresh
             hashtable per dispatch attempt. *)
          Array.fill t.copy_extra 0 (Array.length t.copy_extra) 0;
          let fits = ref true in
          for i = 0 to needed - 1 do
            let from = Vec.get t.tag_origin t.copy_tags.(i) in
            if t.occupancy.(from).(2) + t.copy_extra.(from)
               >= t.cfg.Config.copy_q_size
            then fits := false;
            t.copy_extra.(from) <- t.copy_extra.(from) + 1
          done;
          if not !fits then Blk_copyq
          else begin
            for i = 0 to needed - 1 do
              insert_copy t t.copy_tags.(i) ~to_cluster:cluster
            done;
            (* Rename sources (wait for readiness in [cluster]). *)
            let src_tags =
              Array.map
                (fun src -> t.rename.(reg_code max_nregs_per_class src))
                u.Uop.srcs
            in
            let dst_tag =
              match u.Uop.dst with
              | Some dst ->
                  let tag = new_tag t ~cluster in
                  t.rename.(reg_code max_nregs_per_class dst) <- tag;
                  let k = reg_class_of dst in
                  t.regs_used.(cluster).(k) <- t.regs_used.(cluster).(k) + 1;
                  tag
              | None -> -1
            in
            let inst =
              {
                iseq = fresh_iseq t;
                kind = Op duop;
                cluster;
                queue = Opcode.queue u.Uop.opcode;
                dst_tag;
                src_tags;
                waiting = 0;
                completed = false;
                took_mshr = false;
                store_waiters = [];
                mispredicted = slot.misp;
              }
            in
            Array.iter
              (fun tag ->
                if not (tag_ready_in t tag cluster) then
                  add_waiter t inst tag cluster)
              src_tags;
            (* Memory bookkeeping: LSQ slot, store table, store-to-load
               dependences through the unified LSQ (exact 8-byte
               disambiguation; forwarding needs no inter-cluster copy). *)
            if Uop.is_mem u then begin
              t.lsq_used <- t.lsq_used + 1;
              let key = duop.Dynuop.addr land lnot 7 in
              match u.Uop.opcode with
              | Opcode.Store ->
                  Hashtbl.replace t.pending_store key inst;
                  t.stats.Stats.stores <- t.stats.Stats.stores + 1
              | Opcode.Load ->
                  t.stats.Stats.loads <- t.stats.Stats.loads + 1;
                  (match Hashtbl.find_opt t.pending_store key with
                  | Some store when not store.completed ->
                      inst.waiting <- inst.waiting + 1;
                      store.store_waiters <- inst :: store.store_waiters
                  | Some _ | None -> ())
              | _ -> ()
            end;
            t.occupancy.(cluster).(qidx) <- t.occupancy.(cluster).(qidx) + 1;
            t.inflight.(cluster) <- t.inflight.(cluster) + 1;
            per_cluster.(cluster) <- per_cluster.(cluster) + 1;
            let pushed = Ring.push t.rob inst in
            assert pushed;
            t.stats.Stats.dispatched <- t.stats.Stats.dispatched + 1;
            t.stats.Stats.per_cluster_dispatched.(cluster) <-
              t.stats.Stats.per_cluster_dispatched.(cluster) + 1;
            (match t.obs with
            | None -> ()
            | Some s ->
                s.Obs_sink.emit
                  (Obs_event.Dispatch
                     {
                       cycle = now t;
                       iseq = inst.iseq;
                       static_id = Dynuop.static_id duop;
                       cluster;
                       queue = queue_name (Opcode.queue u.Uop.opcode);
                     }));
            if inst.waiting = 0 then enqueue_ready t inst;
            Blk_none
          end
        end

let dispatch t =
  let budget = ref t.cfg.Config.dispatch_width in
  (* "3+3": the steer stage can deliver at most [dispatch_per_cluster]
     micro-ops into any one cluster per cycle. *)
  let per_cluster = Array.make t.cfg.Config.clusters 0 in
  let block = ref Blk_none in
  let width_exhausted = ref false in
  while (not !width_exhausted) && !block = Blk_none && !budget > 0 do
    match Ring.peek t.fetchq with
    | Some slot when slot.ready_at <= t.cycle -> (
        match dispatch_one t slot ~per_cluster with
        | Blk_none -> (
            match Ring.pop t.fetchq with
            | Some _ -> decr budget
            | None -> assert false)
        | Blk_width ->
            (* width limit of the target cluster's steer port, not an
               allocation stall *)
            width_exhausted := true
        | blk -> block := blk)
    | Some _ | None -> block := Blk_empty
  done;
  (* Attribute at most one stall reason per cycle, and only when the
     dispatch stage did not fill its full width. *)
  if !budget > 0 then begin
    let s = t.stats in
    let reason =
      match !block with
      | Blk_none | Blk_width -> None
      | Blk_empty ->
          s.Stats.stall_empty <- s.Stats.stall_empty + 1;
          Some Obs_event.Empty
      | Blk_rob ->
          s.Stats.stall_rob_full <- s.Stats.stall_rob_full + 1;
          Some Obs_event.Rob_full
      | Blk_lsq ->
          s.Stats.stall_lsq_full <- s.Stats.stall_lsq_full + 1;
          Some Obs_event.Lsq_full
      | Blk_reg ->
          s.Stats.stall_regfile <- s.Stats.stall_regfile + 1;
          Some Obs_event.Regfile
      | Blk_policy ->
          s.Stats.stall_policy <- s.Stats.stall_policy + 1;
          Some Obs_event.Policy
      | Blk_iq ->
          s.Stats.stall_iq_full <- s.Stats.stall_iq_full + 1;
          Some Obs_event.Iq_full
      | Blk_copyq ->
          s.Stats.stall_copyq_full <- s.Stats.stall_copyq_full + 1;
          Some Obs_event.Copyq_full
    in
    match (t.obs, reason) with
    | Some sink, Some reason ->
        sink.Obs_sink.emit (Obs_event.Stall { cycle = now t; reason })
    | (Some _ | None), _ -> ()
  end

(* ---- fetch ------------------------------------------------------- *)

let fetch t ~source =
  if t.cycle >= t.fetch_resume then begin
    let budget = ref t.cfg.Config.fetch_width in
    let blocked = ref false in
    while (not !blocked) && !budget > 0 && not (Ring.is_full t.fetchq) do
      let duop = source () in
      let misp =
        if Uop.is_branch duop.Dynuop.suop then begin
          let pc = Dynuop.static_id duop in
          let predicted = Bpred.predict t.bpred ~pc in
          Bpred.update t.bpred ~pc ~taken:duop.Dynuop.taken;
          predicted <> duop.Dynuop.taken
        end
        else false
      in
      (* Trace cache: a miss charges the line-rebuild penalty and stops
         fetch for the rest of the miss window. *)
      let tc_hit =
        Tracecache.lookup t.tcache ~static_id:(Dynuop.static_id duop)
      in
      if tc_hit then t.stats.Stats.tc_hits <- t.stats.Stats.tc_hits + 1
      else t.stats.Stats.tc_misses <- t.stats.Stats.tc_misses + 1;
      let tc_extra = if tc_hit then 0 else t.cfg.Config.tc_miss_penalty in
      let slot =
        { duop; ready_at = t.cycle + tc_extra + t.frontend_depth; misp }
      in
      let pushed = Ring.push t.fetchq slot in
      assert pushed;
      decr budget;
      if misp then begin
        (* Trace-driven wrong-path model: stop fetching until the
           branch resolves. *)
        t.fetch_resume <- never;
        blocked := true
      end
      else if not tc_hit then begin
        t.fetch_resume <- t.cycle + tc_extra;
        blocked := true
      end
    done
  end

(* ---- main loop --------------------------------------------------- *)

let step t ~source =
  (match t.prof with
  | None ->
      process_events t;
      t.loads_this_cycle <- 0;
      t.stores_this_cycle <- 0;
      commit t;
      issue t;
      dispatch t;
      fetch t ~source
  | Some p ->
      (* Same phase order; each phase bracketed by its span. The span
         accumulates across the whole run and is flushed once in
         [run], so the histogram holds per-run phase totals. *)
      Obs_profile.enter p.p_writeback;
      process_events t;
      Obs_profile.leave p.p_writeback;
      t.loads_this_cycle <- 0;
      t.stores_this_cycle <- 0;
      Obs_profile.enter p.p_commit;
      commit t;
      Obs_profile.leave p.p_commit;
      Obs_profile.enter p.p_issue;
      issue t;
      Obs_profile.leave p.p_issue;
      Obs_profile.enter p.p_dispatch;
      dispatch t;
      Obs_profile.leave p.p_dispatch;
      Obs_profile.enter p.p_fetch;
      fetch t ~source;
      Obs_profile.leave p.p_fetch);
  t.cycle <- t.cycle + 1;
  t.stats.Stats.cycles <- t.stats.Stats.cycles + 1;
  (* Interval telemetry: snapshot on measured-time boundaries so the
     series restarts cleanly when the warmup reset zeroes the stats. *)
  match t.obs with
  | Some s
    when s.Obs_sink.interval > 0
         && t.stats.Stats.cycles mod s.Obs_sink.interval = 0 ->
      s.Obs_sink.on_snapshot (Stats.snapshot t.stats)
  | Some _ | None -> ()

let run ?(warmup = 0) t ~source ~uops =
  if uops <= 0 then invalid_arg "Engine.run: uops must be positive";
  if warmup < 0 then invalid_arg "Engine.run: negative warmup";
  let max_cycles = ((warmup + uops) * 1000) + 100_000 in
  if warmup > 0 then begin
    (* The sink observes the measured phase only: warmup events would
       share timestamps with post-reset ones and pollute the trace. *)
    let saved_obs = t.obs in
    t.obs <- None;
    while t.stats.Stats.committed < warmup do
      if t.cycle > max_cycles then
        failwith "Engine.run: no forward progress during warmup";
      step t ~source
    done;
    Stats.reset t.stats;
    Memsys.reset_stats t.memsys;
    Bpred.reset_stats t.bpred;
    t.obs <- saved_obs
  end;
  while t.stats.Stats.committed < uops do
    if t.cycle > max_cycles then
      failwith "Engine.run: no forward progress (cycle bound exceeded)";
    step t ~source
  done;
  (* Fold memory / branch counters into the run statistics. *)
  t.stats.Stats.l1_hits <- Memsys.l1_hits t.memsys;
  t.stats.Stats.l1_misses <- Memsys.l1_misses t.memsys;
  t.stats.Stats.l2_hits <- Memsys.l2_hits t.memsys;
  t.stats.Stats.l2_misses <- Memsys.l2_misses t.memsys;
  t.stats.Stats.branch_lookups <- Bpred.lookups t.bpred;
  t.stats.Stats.branch_mispredicts <- Bpred.mispredicts t.bpred;
  (* One histogram observation per phase per run. Only this engine's
     own spans are flushed — the profiler may be shared with the
     harness or service layer. *)
  (match t.prof with
  | None -> ()
  | Some p ->
      Obs_profile.flush p.p_fetch;
      Obs_profile.flush p.p_dispatch;
      Obs_profile.flush p.p_issue;
      Obs_profile.flush p.p_writeback;
      Obs_profile.flush p.p_commit);
  t.stats
