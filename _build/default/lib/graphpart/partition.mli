(** Partition assignments and their quality metrics. *)

type t = int array
(** [t.(node)] is the part (cluster) index. *)

val parts : t -> int
(** Number of parts = 1 + maximum part index (0 for the empty array). *)

val edge_cut : Wgraph.t -> t -> float
(** Total weight of edges whose endpoints lie in different parts — the
    communication cost proxy. *)

val part_weights : Wgraph.t -> t -> k:int -> float array
(** Summed node weight per part. *)

val imbalance : Wgraph.t -> t -> k:int -> float
(** [max part weight / ideal part weight]; 1.0 is perfect balance.
    Returns 1.0 for graphs of zero total weight. *)

val validate : t -> k:int -> unit
(** All assignments within [\[0, k)]. *)
