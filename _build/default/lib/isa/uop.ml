type t = {
  id : int;
  opcode : Opcode.t;
  dst : Reg.t option;
  srcs : Reg.t array;
  stream : int;
  branch_ref : int;
}

let validate t =
  let fail msg = invalid_arg (Printf.sprintf "Uop.make (id %d): %s" t.id msg) in
  (match (t.opcode, t.dst) with
  | (Store | Branch), Some _ -> fail "store/branch cannot have a destination"
  | (Int_alu | Int_mul | Int_div | Load | Copy), None ->
      fail "computation needs a destination"
  | (Fp_add | Fp_mul | Fp_div), None -> fail "fp computation needs a destination"
  | _ -> ());
  (match t.opcode with
  | Load | Store ->
      if t.stream < 0 then fail "memory micro-op must name a stream"
  | Int_alu | Int_mul | Int_div | Fp_add | Fp_mul | Fp_div | Branch | Copy ->
      if t.stream >= 0 then fail "non-memory micro-op cannot name a stream");
  (match t.opcode with
  | Branch -> if t.branch_ref < 0 then fail "branch must name a behaviour model"
  | _ -> if t.branch_ref >= 0 then fail "only branches carry a branch model");
  if Array.length t.srcs > 2 then fail "at most two register sources";
  (match (t.opcode, t.dst) with
  | (Fp_add | Fp_mul | Fp_div), Some d when d.Reg.cls <> Reg.Fp_class ->
      fail "fp result must target an fp register"
  | (Int_alu | Int_mul | Int_div), Some d when d.Reg.cls <> Reg.Int_class ->
      fail "integer result must target an integer register"
  | _ -> ());
  t

let make ~id ~opcode ?dst ?(srcs = [||]) ?(stream = -1) ?(branch_ref = -1) () =
  validate { id; opcode; dst; srcs; stream; branch_ref }

let is_mem t = Opcode.is_mem t.opcode

let is_branch t =
  match t.opcode with
  | Opcode.Branch -> true
  | _ -> false

let pp ppf t =
  let pp_dst ppf = function
    | Some d -> Format.fprintf ppf "%a <- " Reg.pp d
    | None -> ()
  in
  Format.fprintf ppf "@[#%d %a%a %a@]" t.id pp_dst t.dst Opcode.pp t.opcode
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Reg.pp)
    (Array.to_list t.srcs)
