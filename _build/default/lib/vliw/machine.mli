(** Clustered VLIW machine description.

    The paper's §3.3 reviews software-only steering in its native
    habitat: statically-scheduled clustered processors, where the
    compiler controls both cluster assignment and issue cycles. This
    substrate lets the repository reproduce that context — RHOP is
    originally a VLIW algorithm — and demonstrate the paper's point
    that compile-time workload estimates are accurate there and
    inaccurate on out-of-order machines.

    Each cluster issues one VLIW instruction per cycle containing at
    most [int_slots] integer, [fp_slots] floating-point, [mem_slots]
    memory and [move_slots] inter-cluster move operations. Latencies
    are the static ones of {!Clusteer_ddg.Ddg.static_latency};
    inter-cluster moves take [comm_latency] cycles on top of the move
    slot. *)

type t = {
  clusters : int;
  int_slots : int;
  fp_slots : int;
  mem_slots : int;
  move_slots : int;
  comm_latency : int;
}

val default : clusters:int -> t
(** 2 INT + 1 FP + 1 MEM + 1 MOVE slot per cluster, 1-cycle moves —
    a per-cluster issue budget comparable to the paper's OOO clusters. *)

val validate : t -> unit

type slot_class = Slot_int | Slot_fp | Slot_mem | Slot_move

val slot_class_of : Clusteer_isa.Opcode.t -> slot_class
(** Which slot an operation occupies ([Slot_move] only for [Copy]). *)

val slots : t -> slot_class -> int
