(** Derived metrics matching the paper's reporting conventions. *)

open Clusteer_uarch

val slowdown_pct : baseline:Stats.t -> Stats.t -> float
(** Percentage by which a run is slower than the baseline run of the
    same trace (same committed micro-op count): positive = slower than
    baseline. Figure 5/7's y-axis with OP as baseline. *)

val speedup_pct : of_:Stats.t -> over:Stats.t -> float
(** Percentage by which [of_] is faster than [over] (Figure 6 x-axis:
    speedup of VC over the other scheme). *)

val copy_reduction_pct : of_:Stats.t -> over:Stats.t -> float
(** Reduction in generated copies of [of_] relative to [over]
    (Figure 6 y-axis, plots a.1-a.3). 0 when [over] generated none. *)

val balance_improvement_pct : of_:Stats.t -> over:Stats.t -> float
(** Reduction in issue-queue allocation stalls of [of_] relative to
    [over] (Figure 6 y-axis, plots b.1-b.3). 0 when [over] had none. *)
