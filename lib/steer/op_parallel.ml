open Clusteer_isa
open Clusteer_uarch
module Bitset = Clusteer_util.Bitset

(* Per-cycle memory of registers redefined by micro-ops already steered
   this cycle: maps the register to the location mask its *previous*
   value had when the bundle started. Reading through this table is
   what "non-updated information" means in §2.1.

   The table is a pair of dense arrays indexed by register code, with a
   cycle stamp per entry: an entry is live only when its stamp equals
   the current cycle, so the per-bundle "reset" is free and the decide
   path never touches a hashtable (or allocates). *)

(* Same register budget as the engine's rename table. *)
let max_nregs_per_class = 64

type bundle_state = {
  stale_mask : Bitset.t array;  (* indexed by register code *)
  stale_stamp : int array;  (* cycle the entry was written; -1 = never *)
}

let reg_code r = Reg.encode ~nregs_per_class:max_nregs_per_class r

let make ?(stall_threshold = 36) ?(imbalance_limit = 200) () =
  let state =
    {
      stale_mask = Array.make (2 * max_nregs_per_class) Bitset.empty;
      stale_stamp = Array.make (2 * max_nregs_per_class) (-1);
    }
  in
  (* Decision-path scratch: see [Op.make] — the per-uop path must not
     allocate. *)
  let votes = ref [||] in
  let src_buf = ref [||] in
  let dispatch_to = ref [||] in
  let best_votes = ref 0 in
  let preferred = ref 0 in
  let min_load = ref 0 in
  let best_alt = ref 0 in
  let decide view duop =
    let u = duop.Clusteer_trace.Dynuop.suop in
    let queue = Opcode.queue u.Uop.opcode in
    let clusters = view.Policy.clusters in
    let cycle = view.Policy.cycle () in
    if Array.length !votes < clusters then begin
      votes := Array.make clusters 0;
      dispatch_to := Array.init clusters (fun c -> Policy.Dispatch_to c)
    end;
    let votes = !votes in
    let dispatch_to = !dispatch_to in
    let srcs = u.Uop.srcs in
    let nsrcs = Array.length srcs in
    if Array.length !src_buf < nsrcs then
      src_buf := Array.make nsrcs Bitset.empty;
    (* The vote, reading redefined sources through the stale table. *)
    let n = view.Policy.src_locations_into duop !src_buf in
    Array.fill votes 0 clusters 0;
    for i = 0 to n - 1 do
      let code = reg_code srcs.(i) in
      let loc =
        if state.stale_stamp.(code) = cycle then state.stale_mask.(code)
        else (!src_buf).(i)
      in
      for c = 0 to clusters - 1 do
        if Bitset.mem loc c then votes.(c) <- votes.(c) + 1
      done
    done;
    best_votes := 0;
    for c = 0 to clusters - 1 do
      if votes.(c) > !best_votes then best_votes := votes.(c)
    done;
    (* Least-loaded candidate; ties go to the lowest cluster index,
       exactly as the list-based formulation did. *)
    preferred := -1;
    for c = 0 to clusters - 1 do
      if
        votes.(c) = !best_votes
        && (!preferred = -1
           || view.Policy.inflight c < view.Policy.inflight !preferred)
      then preferred := c
    done;
    min_load := max_int;
    for c = 0 to clusters - 1 do
      let l = view.Policy.inflight c in
      if l < !min_load then min_load := l
    done;
    if view.Policy.inflight !preferred - !min_load > imbalance_limit then begin
      preferred := -1;
      for c = 0 to clusters - 1 do
        if
          !preferred = -1
          || view.Policy.inflight c < view.Policy.inflight !preferred
        then preferred := c
      done
    end;
    let decision =
      if view.Policy.queue_free !preferred queue > 0 then
        dispatch_to.(!preferred)
      else begin
        best_alt := -1;
        for c = 0 to clusters - 1 do
          if
            c <> !preferred
            && view.Policy.queue_free c queue >= stall_threshold
            && (!best_alt = -1
               || view.Policy.inflight c < view.Policy.inflight !best_alt)
          then best_alt := c
        done;
        if !best_alt = -1 then Policy.Stall else dispatch_to.(!best_alt)
      end
    in
    (match decision with
    | Policy.Dispatch_to _ -> (
        (* Record the overwritten value's pre-bundle location so later
           micro-ops of this bundle keep seeing the stale mapping. *)
        match u.Uop.dst with
        | Some dst ->
            let code = reg_code dst in
            if state.stale_stamp.(code) <> cycle then begin
              state.stale_stamp.(code) <- cycle;
              state.stale_mask.(code) <- view.Policy.reg_location dst
            end
        | None -> ())
    | Policy.Stall -> ());
    decision
  in
  {
    Policy.name = "op-parallel";
    decide;
    uses_dependence_check = true;
    uses_vote_unit = true;
  }
