(* Tests for the synthetic SPEC CPU2000 workload layer. *)

open Clusteer_isa
open Clusteer_workloads

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- Spec2000 catalogue --------------------------------------------------- *)

let test_suite_sizes () =
  check_int "26 int points" 26 (List.length Spec2000.spec_int);
  check_int "14 fp points" 14 (List.length Spec2000.spec_fp);
  check_int "total" 40 (List.length Spec2000.all)

let test_all_profiles_valid () =
  List.iter Profile.validate Spec2000.all

let test_profiles_unique_names_and_seeds () =
  let names = List.map (fun p -> p.Profile.name) Spec2000.all in
  check_int "unique names" (List.length names)
    (List.length (List.sort_uniq compare names));
  let seeds = List.map (fun p -> p.Profile.seed) Spec2000.all in
  check_int "unique seeds" (List.length seeds)
    (List.length (List.sort_uniq compare seeds))

let test_find_by_suffix () =
  Alcotest.(check string) "mcf" "181.mcf" (Spec2000.find "mcf").Profile.name;
  Alcotest.(check string) "full name" "178.galgel"
    (Spec2000.find "178.galgel").Profile.name;
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Spec2000.find "nonexistent"))

let test_suite_assignment () =
  List.iter
    (fun p -> check_bool "int suite" true (p.Profile.suite = Profile.Spec_int))
    Spec2000.spec_int;
  List.iter
    (fun p -> check_bool "fp suite" true (p.Profile.suite = Profile.Spec_fp))
    Spec2000.spec_fp

let test_fp_profiles_have_fp_ops () =
  List.iter
    (fun p -> check_bool "fp ratio" true (p.Profile.fp_ratio >= 0.4))
    Spec2000.spec_fp;
  List.iter
    (fun p -> check_bool "int mostly int" true (p.Profile.fp_ratio <= 0.2))
    Spec2000.spec_int

(* ---- Profile validation ---------------------------------------------------- *)

let base = Spec2000.find "gzip-1"

let test_profile_validation_errors () =
  Alcotest.check_raises "bad fraction"
    (Invalid_argument "Profile 164.gzip-1: fp_ratio out of [0,1]") (fun () ->
      Profile.validate { base with Profile.fp_ratio = 1.5 });
  Alcotest.check_raises "too many phases"
    (Invalid_argument "Profile 164.gzip-1: more than 10 phases") (fun () ->
      Profile.validate { base with Profile.phases = 11 });
  Alcotest.check_raises "stream fractions"
    (Invalid_argument "Profile 164.gzip-1: stream fractions exceed 1")
    (fun () ->
      Profile.validate { base with Profile.stride_frac = 0.8; chase_frac = 0.8 })

(* ---- Synth ------------------------------------------------------------------ *)

let test_synth_deterministic () =
  let w1 = Synth.build base and w2 = Synth.build base in
  check_int "same size" w1.Synth.program.Program.uop_count
    w2.Synth.program.Program.uop_count;
  check_int "same blocks"
    (Array.length w1.Synth.program.Program.blocks)
    (Array.length w2.Synth.program.Program.blocks)

let test_synth_models_match_program () =
  List.iter
    (fun p ->
      let w = Synth.build p in
      check_int "branch arity" w.Synth.program.Program.branch_model_count
        (Array.length w.Synth.branches);
      check_int "stream arity" w.Synth.program.Program.stream_count
        (Array.length w.Synth.streams))
    [ base; Spec2000.find "mcf"; Spec2000.find "galgel" ]

let test_synth_instruction_mix () =
  (* The dynamic trace's memory fraction should track the profile. *)
  let p = Spec2000.find "equake" in
  let w = Synth.build p in
  let gen = Synth.trace w ~seed:3 in
  let n = 20_000 in
  let mem = ref 0 and fp = ref 0 in
  for _ = 1 to n do
    let d = Clusteer_trace.Tracegen.next gen in
    if Uop.is_mem d.Clusteer_trace.Dynuop.suop then incr mem;
    if Opcode.writes_fp d.Clusteer_trace.Dynuop.suop.Uop.opcode then incr fp
  done;
  let memf = float_of_int !mem /. float_of_int n in
  check_bool "memory fraction tracks profile" true
    (abs_float (memf -. p.Profile.mem_ratio) < 0.12);
  check_bool "fp present" true (!fp > n / 20)

let test_synth_likely_covers_branchy_blocks () =
  let w = Synth.build base in
  let program = w.Synth.program in
  Array.iter
    (fun blk ->
      if Array.length blk.Block.succs > 1 then
        (* likely may be None (hard branch) but must not be out of range *)
        match w.Synth.likely blk.Block.id with
        | Some i ->
            check_bool "likely in range" true
              (i >= 0 && i < Array.length blk.Block.succs)
        | None -> ())
    program.Program.blocks

let test_synth_trace_wraps_indefinitely () =
  let w = Synth.build base in
  let gen = Synth.trace w ~seed:1 in
  let duops = Clusteer_trace.Tracegen.take gen 50_000 in
  check_int "full length" 50_000 (Array.length duops)

(* ---- Kernels ------------------------------------------------------------------- *)

let test_kernels_all_build_and_trace () =
  List.iter
    (fun (name, (k : Kernels.t)) ->
      check_bool (name ^ " has uops") true
        (k.Synth.program.Program.uop_count > 3);
      check_int
        (name ^ " branch arity")
        k.Synth.program.Program.branch_model_count
        (Array.length k.Synth.branches);
      let gen = Synth.trace k ~seed:1 in
      check_int (name ^ " traces") 200
        (Array.length (Clusteer_trace.Tracegen.take gen 200));
      Profile.validate k.Synth.profile)
    Kernels.all

let test_kernel_dot_is_serial () =
  (* The dot-product reduction is one long FP chain: its region DDG
     critical path must cover (almost) the whole body repeatedly. *)
  let k = Kernels.dot_product () in
  let regions =
    Clusteer_ddg.Region.build ~program:k.Synth.program ~likely:k.Synth.likely
      ~max_uops:512
  in
  let g = Clusteer_ddg.Ddg.of_region (List.hd regions) in
  let crit = Clusteer_ddg.Critical.analyze g in
  (* fmul(5) + fadd(3) per iteration at least *)
  check_bool "long critical path" true (crit.Clusteer_ddg.Critical.length >= 8)

let test_kernel_matmul_parallel () =
  let k = Kernels.matmul_inner ~accumulators:4 () in
  let regions =
    Clusteer_ddg.Region.build ~program:k.Synth.program ~likely:k.Synth.likely
      ~max_uops:512
  in
  let g = Clusteer_ddg.Ddg.of_region (List.hd regions) in
  (* four independent accumulator chains -> at least 4 roots *)
  check_bool "parallel chains" true
    (List.length (Clusteer_ddg.Ddg.roots g) >= 4)

let test_kernel_chase_serial_loads () =
  let k = Kernels.pointer_chase () in
  let gen = Synth.trace k ~seed:1 in
  let duops = Clusteer_trace.Tracegen.take gen 40 in
  (* consecutive chase loads must visit different addresses *)
  let addrs =
    Array.to_list duops
    |> List.filter (fun d -> Uop.is_mem d.Clusteer_trace.Dynuop.suop)
    |> List.map (fun d -> d.Clusteer_trace.Dynuop.addr)
  in
  check_bool "addresses move" true
    (List.length (List.sort_uniq compare addrs) > 3)

let test_kernel_reduction_tree_depth () =
  (* Pairwise reduction of 8 leaves: log-depth (3 fadd levels = 9
     cycles) rather than the serial 8-level chain (24 cycles). *)
  let k = Kernels.reduction_tree ~width:8 () in
  let regions =
    Clusteer_ddg.Region.build ~program:k.Synth.program ~likely:k.Synth.likely
      ~max_uops:512
  in
  let g = Clusteer_ddg.Ddg.of_region (List.hd regions) in
  let crit = Clusteer_ddg.Critical.analyze g in
  check_bool "log depth" true
    (crit.Clusteer_ddg.Critical.length >= 9
    && crit.Clusteer_ddg.Critical.length <= 15)

let test_kernel_stencil_wide () =
  let k = Kernels.stencil3 () in
  let regions =
    Clusteer_ddg.Region.build ~program:k.Synth.program ~likely:k.Synth.likely
      ~max_uops:512
  in
  let g = Clusteer_ddg.Ddg.of_region (List.hd regions) in
  (* the three staggered loads are mutually independent *)
  check_bool "at least 3 roots" true
    (List.length (Clusteer_ddg.Ddg.roots g) >= 3)

let test_kernel_parameter_validation () =
  Alcotest.check_raises "too many accumulators"
    (Invalid_argument "Kernels.matmul_inner: 1..8 accumulators") (fun () ->
      ignore (Kernels.matmul_inner ~accumulators:9 ()));
  Alcotest.check_raises "reduction width"
    (Invalid_argument "Kernels.reduction_tree: width 2..16") (fun () ->
      ignore (Kernels.reduction_tree ~width:1 ()))

(* ---- Analysis ------------------------------------------------------------------- *)

let test_analysis_tracks_profile () =
  let p = Spec2000.find "equake" in
  let w = Synth.build p in
  let mix = Analysis.measure w ~uops:20_000 ~seed:3 in
  check_bool "mem tracks profile" true
    (abs_float (mix.Analysis.mem_frac -. p.Profile.mem_ratio) < 0.12);
  check_bool "static footprint sane" true
    (mix.Analysis.distinct_static = w.Synth.program.Program.uop_count)

let test_analysis_kernel_daxpy () =
  let mix = Analysis.measure (Kernels.daxpy ()) ~uops:7_000 ~seed:1 in
  (* 7-uop loop: 2 loads + 1 store + 2 fp + counter + branch *)
  check_bool "load frac" true (abs_float (mix.Analysis.load_frac -. 2. /. 7.) < 0.02);
  check_bool "store frac" true (abs_float (mix.Analysis.store_frac -. 1. /. 7.) < 0.02);
  check_bool "fp frac" true (abs_float (mix.Analysis.fp_frac -. 2. /. 7.) < 0.02);
  check_bool "branch frac" true
    (abs_float (mix.Analysis.branch_frac -. 1. /. 7.) < 0.02)

let test_analysis_rejects_bad_uops () =
  Alcotest.check_raises "zero uops"
    (Invalid_argument "Analysis.measure: uops must be positive") (fun () ->
      ignore (Analysis.measure (Kernels.fibonacci ()) ~uops:0 ~seed:1))

(* ---- Pinpoints ----------------------------------------------------------------- *)

let test_pinpoints_count_and_weights () =
  let pts = Pinpoints.points base in
  check_int "phase count" base.Profile.phases (List.length pts);
  let total = List.fold_left (fun acc p -> acc +. p.Pinpoints.weight) 0.0 pts in
  check_bool "weights normalised" true (abs_float (total -. 1.0) < 1e-9);
  List.iter
    (fun p -> check_bool "positive weight" true (p.Pinpoints.weight > 0.0))
    pts

let test_pinpoints_distinct_phases () =
  let pts = Pinpoints.points base in
  let seeds = List.map (fun p -> p.Pinpoints.profile.Profile.seed) pts in
  check_int "distinct seeds" (List.length seeds)
    (List.length (List.sort_uniq compare seeds))

let test_pinpoints_deterministic () =
  let w1 = List.map (fun p -> p.Pinpoints.weight) (Pinpoints.points base) in
  let w2 = List.map (fun p -> p.Pinpoints.weight) (Pinpoints.points base) in
  Alcotest.(check (list (float 1e-12))) "same weights" w1 w2

let test_pinpoints_profiles_stay_valid () =
  List.iter
    (fun bench ->
      List.iter
        (fun pt -> Profile.validate pt.Pinpoints.profile)
        (Pinpoints.points bench))
    Spec2000.all

let test_pinpoints_weighted_metric () =
  let pts = Pinpoints.points base in
  let v = Pinpoints.weighted pts ~f:(fun _ -> 42.0) in
  check_bool "constant preserved" true (abs_float (v -. 42.0) < 1e-9)

(* ---- Build the whole catalogue -------------------------------------------------- *)

let test_every_profile_synthesizes () =
  List.iter
    (fun p ->
      let w = Synth.build p in
      check_bool "has uops" true (w.Synth.program.Program.uop_count > 10);
      (* every block reachable structure is valid by construction;
         also exercise a short trace *)
      let gen = Synth.trace w ~seed:1 in
      check_int "traceable" 100
        (Array.length (Clusteer_trace.Tracegen.take gen 100)))
    Spec2000.all

let () =
  Alcotest.run "clusteer_workloads"
    [
      ( "spec2000",
        [
          Alcotest.test_case "suite sizes" `Quick test_suite_sizes;
          Alcotest.test_case "profiles valid" `Quick test_all_profiles_valid;
          Alcotest.test_case "unique names/seeds" `Quick test_profiles_unique_names_and_seeds;
          Alcotest.test_case "find by suffix" `Quick test_find_by_suffix;
          Alcotest.test_case "suite assignment" `Quick test_suite_assignment;
          Alcotest.test_case "fp ratios" `Quick test_fp_profiles_have_fp_ops;
        ] );
      ( "profile",
        [ Alcotest.test_case "validation errors" `Quick test_profile_validation_errors ] );
      ( "synth",
        [
          Alcotest.test_case "deterministic" `Quick test_synth_deterministic;
          Alcotest.test_case "models match program" `Quick test_synth_models_match_program;
          Alcotest.test_case "instruction mix" `Slow test_synth_instruction_mix;
          Alcotest.test_case "likely in range" `Quick test_synth_likely_covers_branchy_blocks;
          Alcotest.test_case "trace wraps" `Quick test_synth_trace_wraps_indefinitely;
          Alcotest.test_case "whole catalogue" `Slow test_every_profile_synthesizes;
        ] );
      ( "kernels",
        [
          Alcotest.test_case "all build and trace" `Quick test_kernels_all_build_and_trace;
          Alcotest.test_case "dot is serial" `Quick test_kernel_dot_is_serial;
          Alcotest.test_case "matmul parallel" `Quick test_kernel_matmul_parallel;
          Alcotest.test_case "chase moves" `Quick test_kernel_chase_serial_loads;
          Alcotest.test_case "parameter validation" `Quick test_kernel_parameter_validation;
          Alcotest.test_case "reduction tree depth" `Quick test_kernel_reduction_tree_depth;
          Alcotest.test_case "stencil width" `Quick test_kernel_stencil_wide;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "tracks profile" `Slow test_analysis_tracks_profile;
          Alcotest.test_case "kernel daxpy mix" `Quick test_analysis_kernel_daxpy;
          Alcotest.test_case "rejects bad uops" `Quick test_analysis_rejects_bad_uops;
        ] );
      ( "pinpoints",
        [
          Alcotest.test_case "count and weights" `Quick test_pinpoints_count_and_weights;
          Alcotest.test_case "distinct phases" `Quick test_pinpoints_distinct_phases;
          Alcotest.test_case "deterministic" `Quick test_pinpoints_deterministic;
          Alcotest.test_case "profiles stay valid" `Quick test_pinpoints_profiles_stay_valid;
          Alcotest.test_case "weighted metric" `Quick test_pinpoints_weighted_metric;
        ] );
    ]
