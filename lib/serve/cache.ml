module Counters = Clusteer_obs.Counters

type t = {
  lru : string Clusteer_util.Lru.t;
  dir : string option;
  hits : Counters.counter;
  disk_hits : Counters.counter;
  misses : Counters.counter;
  evictions : Counters.counter;
  spills : Counters.counter;
}

(* Hashes are [0-9a-f]{16}, so the path needs no sanitizing. *)
let spill_path dir hash = Filename.concat dir (hash ^ ".json")

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let write_spill dir hash value =
  ensure_dir dir;
  (* Write-then-rename so a concurrent reader never sees a torn file. *)
  let tmp = spill_path dir hash ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc value;
  close_out oc;
  Sys.rename tmp (spill_path dir hash)

let read_spill dir hash =
  let path = spill_path dir hash in
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let v = really_input_string ic len in
    close_in ic;
    Some v
  end
  else None

let create ?(registry = Counters.default) ?dir ~budget () =
  let t_ref = ref None in
  let on_evict hash value =
    match !t_ref with
    | None -> ()
    | Some t ->
        Counters.incr t.evictions;
        Option.iter
          (fun dir ->
            write_spill dir hash value;
            Counters.incr t.spills)
          t.dir
  in
  let t =
    {
      lru = Clusteer_util.Lru.create ~on_evict ~budget ();
      dir;
      hits = Counters.counter ~registry "serve.cache.hits";
      disk_hits = Counters.counter ~registry "serve.cache.disk_hits";
      misses = Counters.counter ~registry "serve.cache.misses";
      evictions = Counters.counter ~registry "serve.cache.evictions";
      spills = Counters.counter ~registry "serve.cache.spills";
    }
  in
  t_ref := Some t;
  t

let entry_cost hash value = String.length hash + String.length value

let find t hash =
  match Clusteer_util.Lru.find t.lru hash with
  | Some v ->
      Counters.incr t.hits;
      Some v
  | None -> (
      match Option.bind t.dir (fun dir -> read_spill dir hash) with
      | Some v ->
          (* Promote back into memory so a hot entry stops paying the
             disk read; re-admission may spill something colder. *)
          Clusteer_util.Lru.add t.lru hash ~cost:(entry_cost hash v) v;
          Counters.incr t.hits;
          Counters.incr t.disk_hits;
          Some v
      | None ->
          Counters.incr t.misses;
          None)

let store t hash value =
  Clusteer_util.Lru.add t.lru hash ~cost:(entry_cost hash value) value

let length t = Clusteer_util.Lru.length t.lru
