type t = {
  name : string;
  dependence_check : bool;
  workload_balance : bool;
  vote_unit : bool;
  copy_generator : bool;
  serialized : bool;
}

let op =
  {
    name = "hardware-only occupancy-aware (OP)";
    dependence_check = true;
    workload_balance = true;
    vote_unit = true;
    copy_generator = true;
    serialized = true;
  }

let one_cluster =
  {
    name = "one-cluster";
    dependence_check = false;
    workload_balance = false;
    vote_unit = false;
    copy_generator = false;
    serialized = false;
  }

let ob =
  {
    name = "software-only OB (SPDI)";
    dependence_check = false;
    workload_balance = false;
    vote_unit = false;
    copy_generator = true;
    serialized = false;
  }

let rhop =
  {
    name = "software-only RHOP";
    dependence_check = false;
    workload_balance = false;
    vote_unit = false;
    copy_generator = true;
    serialized = false;
  }

let vc =
  {
    name = "hybrid virtual clustering (VC)";
    dependence_check = false;
    workload_balance = true;
    vote_unit = false;
    copy_generator = true;
    serialized = false;
  }

let all = [ op; one_cluster; ob; rhop; vc ]

let yesno b = if b then "yes" else "no"

let table_rows () =
  List.map
    (fun c ->
      [|
        c.name;
        yesno c.dependence_check;
        yesno c.workload_balance;
        yesno c.vote_unit;
        yesno c.copy_generator;
        yesno c.serialized;
      |])
    all
