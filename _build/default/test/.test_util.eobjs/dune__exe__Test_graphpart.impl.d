test/test_graphpart.ml: Alcotest Array Clusteer_graphpart Coarsen List Multilevel Partition QCheck QCheck_alcotest Refine Wgraph
