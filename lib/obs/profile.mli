(** Pipeline self-profiler: named wall-clock spans feeding
    [profile.<name>.ns] histograms in a {!Counters} registry.

    A span accumulates elapsed nanoseconds over any number of
    {!enter}/{!leave} pairs and contributes {b one} histogram
    observation per {!flush}. The engine enters/leaves its phase spans
    (fetch, dispatch, issue, writeback, commit) every cycle and
    flushes once per {!Clusteer_uarch.Engine.run}, so each run
    contributes its per-phase wall-time total and the histogram's
    p50/p90/p99 summarize the distribution across runs; the service
    layer records one observation per batch (admission, worker
    dispatch) or per request (cache lookup).

    Instrumentation sites hold a [t option]: with [None] installed a
    site is a single pattern match that allocates nothing — the same
    zero-overhead-when-off contract as {!Sink}. Spans observe into the
    profiler's registry, so the parallel harness can give each shard a
    private profiler whose histograms merge back deterministically
    with the rest of the shard registry. *)

type t
type span

val create :
  ?registry:Counters.registry -> ?clock:(unit -> float) -> unit -> t
(** [clock] returns seconds (default [Unix.gettimeofday]); tests
    substitute a fake clock. Histograms intern into [registry]
    (default {!Counters.default}). *)

val span : t -> string -> span
(** Intern by name: ["engine.commit"] feeds the
    ["profile.engine.commit.ns"] histogram. *)

val enter : span -> unit

val leave : span -> unit
(** Accumulate the nanoseconds since the matching {!enter}; a {!leave}
    without one is ignored. *)

val flush : span -> unit
(** Observe the accumulated nanoseconds as one histogram sample and
    reset the accumulator. *)

val flush_all : t -> unit
(** {!flush} every span created from this profiler. *)

val time : span -> (unit -> 'a) -> 'a
(** [enter]/[leave]/[flush] around one call — one observation. *)
