type t = {
  ambient : float;
  per_cluster : float array;
  hottest : int;
  spread : float;
}

let estimate ?(ambient = 45.0) ?(resistance = 2.0) ?costs ~clusters
    (s : Stats.t) =
  if clusters <= 0 then invalid_arg "Thermal.estimate: clusters";
  let e = Energy.estimate ?costs ~clusters s in
  let total_dispatched =
    max 1 (Array.fold_left ( + ) 0 s.Stats.per_cluster_dispatched)
  in
  let cycles = float_of_int (max 1 s.Stats.cycles) in
  let per_cluster =
    Array.init clusters (fun c ->
        let share =
          float_of_int s.Stats.per_cluster_dispatched.(c)
          /. float_of_int total_dispatched
        in
        let power =
          ((share *. e.Energy.dynamic)
          +. (e.Energy.static_ /. float_of_int clusters))
          /. cycles
        in
        ambient +. (resistance *. power))
  in
  let hottest = ref 0 and coolest = ref 0 in
  Array.iteri
    (fun c temp ->
      if temp > per_cluster.(!hottest) then hottest := c;
      if temp < per_cluster.(!coolest) then coolest := c)
    per_cluster;
  {
    ambient;
    per_cluster;
    hottest = !hottest;
    spread = per_cluster.(!hottest) -. per_cluster.(!coolest);
  }
