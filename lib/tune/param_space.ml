module Json = Clusteer_obs.Json
module Configuration = Clusteer.Configuration
module Config = Clusteer_uarch.Config
module Topology = Clusteer_topo.Topology

type value = Int of int | Float of float

type param = {
  p_name : string;
  p_doc : string;
  p_values : value array;
  p_default : int;
}

type t = {
  s_name : string;
  s_params : param array;
  s_materialize : value array -> Configuration.t * Configuration.params;
  s_machine : (value array -> Config.t) option;
      (* spaces that search over the machine itself (cluster count,
         interconnect) build it from the candidate; [None] means the
         caller's --clusters default machine, which keeps the pinned
         "vc"/"op" spaces bit-identical to their pre-topology runs *)
}

let name t = t.s_name
let params t = t.s_params

let int_param p_name p_doc ~default values =
  let p_values = Array.of_list (List.map (fun v -> Int v) values) in
  let p_default =
    match Array.find_index (fun v -> v = Int default) p_values with
    | Some i -> i
    | None -> invalid_arg (p_name ^ ": default not in menu")
  in
  { p_name; p_doc; p_values; p_default }

let float_param p_name p_doc ~default values =
  let p_values = Array.of_list (List.map (fun v -> Float v) values) in
  let p_default =
    match Array.find_index (fun v -> v = Float default) p_values with
    | Some i -> i
    | None -> invalid_arg (p_name ^ ": default not in menu")
  in
  { p_name; p_doc; p_values; p_default }

let as_int = function Int n -> n | Float _ -> invalid_arg "expected int"
let as_float = function Float f -> f | Int n -> float_of_int n

(* The menus bracket each paper default with the values the paper's
   own sensitivity discussion (or plain engineering judgement) makes
   interesting, kept small enough that the full "vc" grid stays
   enumerable in a test. *)
let vc_space =
  {
    s_name = "vc";
    s_params =
      [|
        int_param "virtual_clusters"
          "number of virtual clusters the compiler partitions into"
          ~default:2 [ 2; 4 ];
        int_param "remap_threshold"
          "Vc_map remap hysteresis (in-flight uops)" ~default:8
          [ 0; 2; 4; 8; 16; 32 ];
        float_param "crit_min_scale"
          "placement criticality weight (contention-scale floor, 0..1)"
          ~default:0.15
          [ 0.0; 0.15; 0.3; 0.5; 1.0 ];
        int_param "max_chain" "chain-length cap (uops, 0 = unlimited)"
          ~default:0 [ 0; 4; 8; 16; 32 ];
        int_param "region_uops" "superblock region budget (static uops)"
          ~default:512 [ 128; 256; 512; 1024 ];
      |];
    s_materialize =
      (fun values ->
        let vcs = as_int values.(0) in
        ( Configuration.Vc { virtual_clusters = vcs },
          {
            Configuration.default_params with
            remap_threshold = as_int values.(1);
            crit_min_scale = as_float values.(2);
            max_chain = as_int values.(3);
            region_uops = as_int values.(4);
          } ));
    s_machine = None;
  }

let op_space =
  {
    s_name = "op";
    s_params =
      [|
        int_param "stall_threshold"
          "OP stall-over-steer bound (free IQ slots)" ~default:36
          [ 8; 16; 24; 36; 48; 64 ];
        int_param "imbalance_limit"
          "OP imbalance override (in-flight uop difference)" ~default:200
          [ 50; 100; 200; 400; 800 ];
      |];
    s_materialize =
      (fun values ->
        ( Configuration.Op,
          {
            Configuration.default_params with
            stall_threshold = as_int values.(0);
            imbalance_limit = as_int values.(1);
          } ));
    s_machine = None;
  }

(* Machine-level space: the §4 question (map 2 virtual clusters onto 4
   physical, or 4 onto 4?) crossed with the interconnect. The kind
   codes build a shape that scales with the chosen cluster count:
   mesh is (clusters/2)x2, hier is 2 groups of clusters/2. *)
let topo_kind ~clusters = function
  | 0 -> Topology.p2p ~clusters ()
  | 1 -> Topology.ring ~clusters ()
  | 2 -> Topology.mesh ~cols:(clusters / 2) ~rows:2 ()
  | 3 -> Topology.hier ~groups:2 ~group_size:(clusters / 2) ()
  | k -> invalid_arg (Printf.sprintf "topo space: unknown kind code %d" k)

let topo_space =
  {
    s_name = "topo";
    s_params =
      [|
        int_param "clusters" "physical clusters in the machine" ~default:4
          [ 2; 4 ];
        int_param "virtual_clusters"
          "compiler partition arity (2->N vs N->N mapping)" ~default:2
          [ 2; 4 ];
        int_param "topology"
          "interconnect kind: 0=p2p, 1=ring, 2=mesh (clusters/2)x2, \
           3=hier 2x(clusters/2)"
          ~default:0 [ 0; 1; 2; 3 ];
        int_param "remap_threshold"
          "Vc_map remap hysteresis (in-flight uops)" ~default:8 [ 2; 8; 32 ];
      |];
    s_materialize =
      (fun values ->
        ( Configuration.Vc { virtual_clusters = as_int values.(1) },
          {
            Configuration.default_params with
            remap_threshold = as_int values.(3);
          } ));
    s_machine =
      Some
        (fun values ->
          let clusters = as_int values.(0) in
          {
            (Config.default ~clusters) with
            Config.topology = topo_kind ~clusters (as_int values.(2));
          });
  }

let spaces = [ vc_space; op_space; topo_space ]

let find name =
  let name = String.lowercase_ascii name in
  match List.find_opt (fun s -> s.s_name = name) spaces with
  | Some s -> Ok s
  | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown parameter space %S (available: %s)" name
              (String.concat ", " (List.map (fun s -> s.s_name) spaces))))

let dims t = Array.map (fun p -> Array.length p.p_values) t.s_params
let cardinality t = Array.fold_left ( * ) 1 (dims t)
let default_candidate t = Array.map (fun p -> p.p_default) t.s_params

let nth t i =
  if i < 0 || i >= cardinality t then
    invalid_arg (Printf.sprintf "Param_space.nth: %d out of range" i);
  let n = Array.length t.s_params in
  let c = Array.make n 0 in
  let rem = ref i in
  for k = n - 1 downto 0 do
    let d = Array.length t.s_params.(k).p_values in
    c.(k) <- !rem mod d;
    rem := !rem / d
  done;
  c

let validate t candidate =
  if Array.length candidate <> Array.length t.s_params then
    Error
      (Printf.sprintf "candidate has %d entries for %d parameters"
         (Array.length candidate) (Array.length t.s_params))
  else
    let bad = ref None in
    Array.iteri
      (fun k idx ->
        let d = Array.length t.s_params.(k).p_values in
        if !bad = None && (idx < 0 || idx >= d) then
          bad :=
            Some
              (Printf.sprintf "%s index %d out of range [0, %d)"
                 t.s_params.(k).p_name idx d))
      candidate;
    match !bad with None -> Ok () | Some msg -> Error msg

let values t candidate =
  Array.mapi (fun k idx -> t.s_params.(k).p_values.(idx)) candidate

let bindings t candidate =
  Array.to_list
    (Array.mapi
       (fun k idx -> (t.s_params.(k).p_name, t.s_params.(k).p_values.(idx)))
       candidate)

let materialize t candidate =
  (match validate t candidate with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Param_space.materialize: " ^ msg));
  t.s_materialize (values t candidate)

let machine t ~clusters candidate =
  (match validate t candidate with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Param_space.machine: " ^ msg));
  match t.s_machine with
  | None -> Config.default ~clusters
  | Some f -> f (values t candidate)

let value_to_string = function
  | Int n -> string_of_int n
  | Float f ->
      (* shortest round-trip decimal, no trailing ".": 0.15 not 0.150000 *)
      let s = Printf.sprintf "%.12g" f in
      s

let label t candidate =
  String.concat " "
    (List.map
       (fun (n, v) -> Printf.sprintf "%s=%s" n (value_to_string v))
       (bindings t candidate))

let value_to_json = function Int n -> Json.Int n | Float f -> Json.Float f

let candidate_to_json t candidate =
  Json.Obj
    [
      ( "indices",
        Json.List (Array.to_list (Array.map (fun i -> Json.Int i) candidate))
      );
      ( "bindings",
        Json.Obj
          (List.map (fun (n, v) -> (n, value_to_json v)) (bindings t candidate))
      );
    ]

let candidate_of_json t json =
  match Option.bind (Json.member "indices" json) Json.to_list with
  | None -> Error "candidate: missing \"indices\" array"
  | Some items -> (
      let indices =
        List.map (fun item -> Option.value ~default:(-1) (Json.to_int item))
          items
      in
      let candidate = Array.of_list indices in
      match validate t candidate with
      | Ok () -> Ok candidate
      | Error msg -> Error ("candidate: " ^ msg))
