(* Tests for the runtime steering policies, using hand-built views. *)

open Clusteer_isa
open Clusteer_trace
open Clusteer_uarch
module Steer = Clusteer_steer
module Bitset = Clusteer_util.Bitset

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A malleable fake machine view. *)
type fake = {
  inflight : int array;
  free : int array;  (* per-cluster free slots of every queue *)
  locs : (Reg.t, Bitset.t) Hashtbl.t;
  mutable now : int;
}

let fake_view ?(annot = Annot.none ~uop_count:64) f =
  let location r =
    Option.value ~default:(Bitset.full (Array.length f.inflight))
      (Hashtbl.find_opt f.locs r)
  in
  {
    Policy.clusters = Array.length f.inflight;
    cycle = (fun () -> f.now);
    inflight = (fun c -> f.inflight.(c));
    queue_free = (fun c _ -> f.free.(c));
    src_locations = (fun d -> Array.map location d.Dynuop.suop.Uop.srcs);
    src_locations_into =
      (fun d buf ->
        let srcs = d.Dynuop.suop.Uop.srcs in
        Array.iteri (fun i src -> buf.(i) <- location src) srcs;
        Array.length srcs);
    reg_location = location;
    annot;
  }

let mk_fake ?(clusters = 2) () =
  {
    inflight = Array.make clusters 0;
    free = Array.make clusters 48;
    locs = Hashtbl.create 8;
    now = 0;
  }

let duop ?(seq = 0) suop = { Dynuop.seq; suop; addr = -1; taken = false }

let alu ~id ~dst ~srcs =
  Uop.make ~id ~opcode:Opcode.Int_alu ~dst:(Reg.int dst)
    ~srcs:(Array.of_list (List.map Reg.int srcs))
    ()

let decide policy view d =
  match policy.Policy.decide view d with
  | Policy.Dispatch_to c -> c
  | Policy.Stall -> -1

(* ---- one-cluster -------------------------------------------------------- *)

let test_one_cluster_always_zero () =
  let f = mk_fake () in
  let p = Steer.One_cluster.make () in
  f.inflight.(0) <- 1000;
  check_int "always 0" 0 (decide p (fake_view f) (duop (alu ~id:0 ~dst:0 ~srcs:[])))

(* ---- OP ------------------------------------------------------------------- *)

let test_op_follows_operands () =
  let f = mk_fake () in
  let p = Steer.Op.make () in
  Hashtbl.replace f.locs (Reg.int 1) (Bitset.singleton 1);
  (* Even though cluster 0 is idle, the operand lives in cluster 1. *)
  check_int "follows operand" 1
    (decide p (fake_view f) (duop (alu ~id:0 ~dst:2 ~srcs:[ 1 ])))

let test_op_tie_breaks_least_loaded () =
  let f = mk_fake () in
  let p = Steer.Op.make () in
  Hashtbl.replace f.locs (Reg.int 1) (Bitset.singleton 0);
  Hashtbl.replace f.locs (Reg.int 2) (Bitset.singleton 1);
  f.inflight.(0) <- 10;
  (* One operand in each cluster: the vote ties, the emptier cluster 1
     wins. *)
  check_int "tie to least loaded" 1
    (decide p (fake_view f) (duop (alu ~id:0 ~dst:3 ~srcs:[ 1; 2 ])))

let test_op_stall_over_steer () =
  let f = mk_fake () in
  let p = Steer.Op.make ~stall_threshold:16 () in
  Hashtbl.replace f.locs (Reg.int 1) (Bitset.singleton 0);
  f.free.(0) <- 0;
  f.free.(1) <- 5;
  (* Preferred cluster full; the other one is busy too (below the
     threshold): stall rather than steer away. *)
  check_int "stalls" (-1)
    (decide p (fake_view f) (duop (alu ~id:0 ~dst:2 ~srcs:[ 1 ])));
  f.free.(1) <- 40;
  check_int "steers away when idle" 1
    (decide p (fake_view f) (duop (alu ~id:0 ~dst:2 ~srcs:[ 1 ])))

let test_op_rotates_exact_ties () =
  (* Source-free micro-ops on a perfectly symmetric machine: every
     decision ties on both the vote and the load. The rotation
     tie-break must spread them over the clusters instead of funnelling
     everything into cluster 0. *)
  let f = mk_fake () in
  let p = Steer.Op.make () in
  let view = fake_view f in
  let picks =
    List.init 8 (fun i -> decide p view (duop ~seq:i (alu ~id:i ~dst:0 ~srcs:[])))
  in
  Alcotest.(check (list int)) "alternates" [ 0; 1; 0; 1; 0; 1; 0; 1 ] picks;
  (* Balance entropy of the resulting placement must be (near) perfect;
     the pre-rotation behaviour scored 0 (all decisions on cluster 0). *)
  let stats = Stats.create ~clusters:2 in
  List.iter
    (fun c ->
      stats.Stats.per_cluster_dispatched.(c) <-
        stats.Stats.per_cluster_dispatched.(c) + 1)
    picks;
  Alcotest.(check bool)
    "entropy >= 0.99" true
    (Stats.balance_entropy stats >= 0.99)

let test_op_rotation_never_overrides_untied_picks () =
  (* A real vote winner (or a load difference) must win regardless of
     where the rotation currently points. *)
  let f = mk_fake () in
  let p = Steer.Op.make () in
  let view = fake_view f in
  Hashtbl.replace f.locs (Reg.int 1) (Bitset.singleton 1);
  let picks =
    List.init 6 (fun i -> decide p view (duop ~seq:i (alu ~id:i ~dst:2 ~srcs:[ 1 ])))
  in
  Alcotest.(check (list int)) "always the operand cluster" [ 1; 1; 1; 1; 1; 1 ]
    picks

let test_op_imbalance_override () =
  let f = mk_fake () in
  let p = Steer.Op.make ~imbalance_limit:20 () in
  Hashtbl.replace f.locs (Reg.int 1) (Bitset.singleton 0);
  f.inflight.(0) <- 50;
  f.inflight.(1) <- 0;
  (* Gross imbalance: balance beats the dependence preference. *)
  check_int "balance override" 1
    (decide p (fake_view f) (duop (alu ~id:0 ~dst:2 ~srcs:[ 1 ])))

(* ---- OP parallel (the §2.1 strawman) --------------------------------------- *)

let test_op_parallel_uses_stale_locations () =
  let f = mk_fake () in
  let p = Steer.Op_parallel.make () in
  let view = fake_view f in
  Hashtbl.replace f.locs (Reg.int 1) (Bitset.singleton 0);
  f.inflight.(0) <- 5 (* cluster 1 emptier *);
  (* First decision of the bundle writes r1 and goes to cluster 1; we
     mimic the engine updating the location table. *)
  let d1 = duop ~seq:0 (alu ~id:0 ~dst:1 ~srcs:[ 1 ]) in
  let c1 = decide p view d1 in
  Hashtbl.replace f.locs (Reg.int 1) (Bitset.singleton c1);
  (* Second decision reads r1 in the same cycle: the parallel scheme
     still sees the OLD location (cluster 0). *)
  let d2 = duop ~seq:1 (alu ~id:1 ~dst:2 ~srcs:[ 1 ]) in
  f.inflight.(0) <- 5;
  f.inflight.(c1) <- 0;
  let c2 = decide p view d2 in
  check_int "stale vote goes to old location" 0 c2;
  (* The sequential implementation follows the fresh location. *)
  let seq_policy = Steer.Op.make () in
  check_int "sequential follows fresh" c1 (decide seq_policy view d2)

let test_op_parallel_resets_each_cycle () =
  let f = mk_fake () in
  let p = Steer.Op_parallel.make () in
  let view = fake_view f in
  Hashtbl.replace f.locs (Reg.int 1) (Bitset.singleton 0);
  let d1 = duop (alu ~id:0 ~dst:1 ~srcs:[ 1 ]) in
  let c1 = decide p view d1 in
  Hashtbl.replace f.locs (Reg.int 1) (Bitset.singleton c1);
  (* New cycle: the stale table clears, fresh locations apply. *)
  f.now <- 1;
  let d2 = duop (alu ~id:1 ~dst:2 ~srcs:[ 1 ]) in
  check_int "fresh after cycle" c1 (decide p view d2)

(* ---- static ------------------------------------------------------------------ *)

let test_static_obeys_annotation () =
  let annot = Annot.create_static ~scheme:"ob" ~uop_count:4 in
  annot.Annot.cluster_of.(0) <- 1;
  annot.Annot.cluster_of.(1) <- 0;
  let p = Steer.Static.make ~name:"ob" ~annot in
  let f = mk_fake () in
  let view = fake_view ~annot f in
  check_int "uop 0 -> 1" 1 (decide p view (duop (alu ~id:0 ~dst:0 ~srcs:[])));
  check_int "uop 1 -> 0" 0 (decide p view (duop (alu ~id:1 ~dst:0 ~srcs:[])))

let test_static_unassigned_defaults_zero () =
  let annot = Annot.create_static ~scheme:"ob" ~uop_count:4 in
  let p = Steer.Static.make ~name:"ob" ~annot in
  let f = mk_fake () in
  check_int "fallback 0" 0
    (decide p (fake_view ~annot f) (duop (alu ~id:2 ~dst:0 ~srcs:[])))

let test_static_clamps_foreign_cluster () =
  (* A 4-cluster annotation replayed on a 2-cluster machine falls back
     to cluster 0 instead of crashing. *)
  let annot = Annot.create_static ~scheme:"ob" ~uop_count:1 in
  annot.Annot.cluster_of.(0) <- 3;
  let p = Steer.Static.make ~name:"ob" ~annot in
  let f = mk_fake ~clusters:2 () in
  check_int "clamped" 0 (decide p (fake_view ~annot f) (duop (alu ~id:0 ~dst:0 ~srcs:[])))

(* ---- VC mapper (Figure 4) ------------------------------------------------------- *)

let vc_annot () =
  let annot = Annot.create_virtual ~scheme:"vc" ~virtual_clusters:2 ~uop_count:8 in
  (* uops 0-3 in vc 0 (leader 0), uops 4-7 in vc 1 (leader 4) *)
  Array.iteri (fun i _ -> annot.Annot.vc_of.(i) <- (if i < 4 then 0 else 1)) annot.Annot.vc_of;
  annot.Annot.leader.(0) <- true;
  annot.Annot.leader.(4) <- true;
  annot

let test_vc_non_leader_follows_table () =
  let annot = vc_annot () in
  let p = Steer.Vc_map.make ~annot ~clusters:2 () in
  let f = mk_fake () in
  let view = fake_view ~annot f in
  (* Non-leader uop 1 follows vc 0's initial mapping (cluster 0) even
     if cluster 0 looks loaded. *)
  f.inflight.(0) <- 99;
  check_int "follows table" 0 (decide p view (duop (alu ~id:1 ~dst:0 ~srcs:[])))

let test_vc_leader_remaps_to_least_loaded () =
  let annot = vc_annot () in
  let p = Steer.Vc_map.make ~annot ~clusters:2 () in
  let f = mk_fake () in
  let view = fake_view ~annot f in
  f.inflight.(0) <- 99;
  (* Leader of vc 0 consults the counters and remaps to cluster 1. *)
  check_int "leader remaps" 1 (decide p view (duop (alu ~id:0 ~dst:0 ~srcs:[])));
  (* Subsequent non-leaders of vc 0 follow the new mapping. *)
  check_int "chain follows" 1 (decide p view (duop (alu ~id:2 ~dst:0 ~srcs:[])))

let test_vc_hysteresis_threshold () =
  let annot = vc_annot () in
  let p = Steer.Vc_map.make ~remap_threshold:10 ~annot ~clusters:2 () in
  let f = mk_fake () in
  let view = fake_view ~annot f in
  f.inflight.(0) <- 5 (* imbalance 5 < threshold 10: stay *);
  check_int "no remap under threshold" 0
    (decide p view (duop (alu ~id:0 ~dst:0 ~srcs:[])));
  f.inflight.(0) <- 50;
  check_int "remap over threshold" 1
    (decide p view (duop (alu ~id:0 ~dst:0 ~srcs:[])))

let test_vc_unassigned_goes_least_loaded () =
  let annot = Annot.create_virtual ~scheme:"vc" ~virtual_clusters:2 ~uop_count:8 in
  let p = Steer.Vc_map.make ~annot ~clusters:2 () in
  let f = mk_fake () in
  f.inflight.(0) <- 3;
  check_int "least loaded" 1
    (decide p (fake_view ~annot f) (duop (alu ~id:0 ~dst:0 ~srcs:[])))

let test_vc_requires_virtual_annotation () =
  Alcotest.check_raises "no vcs"
    (Invalid_argument "Vc_map.make: annotation has no virtual clusters")
    (fun () ->
      ignore (Steer.Vc_map.make ~annot:(Annot.none ~uop_count:1) ~clusters:2 ()))

(* ---- mod-n (extension baseline) --------------------------------------------------- *)

let test_mod_n_rotation () =
  let p = Steer.Mod_n.make ~n:2 () in
  let f = mk_fake () in
  let view = fake_view f in
  let d i = duop ~seq:i (alu ~id:i ~dst:0 ~srcs:[]) in
  let picks = List.init 8 (fun i -> decide p view (d i)) in
  Alcotest.(check (list int)) "rotates every 2" [ 0; 0; 1; 1; 0; 0; 1; 1 ] picks

let test_mod_n_default_three () =
  let p = Steer.Mod_n.make () in
  let f = mk_fake () in
  let view = fake_view f in
  let d i = duop ~seq:i (alu ~id:i ~dst:0 ~srcs:[]) in
  let picks = List.init 6 (fun i -> decide p view (d i)) in
  Alcotest.(check (list int)) "mod3" [ 0; 0; 0; 1; 1; 1 ] picks

let test_mod_n_rejects_bad_n () =
  Alcotest.check_raises "n = 0" (Invalid_argument "Mod_n.make: n must be positive")
    (fun () -> ignore (Steer.Mod_n.make ~n:0 ()))

(* ---- dep (extension baseline) ------------------------------------------------------ *)

let test_dep_follows_operands () =
  let f = mk_fake () in
  let p = Steer.Dep.make () in
  Hashtbl.replace f.locs (Reg.int 1) (Bitset.singleton 1);
  check_int "follows operand" 1
    (decide p (fake_view f) (duop (alu ~id:0 ~dst:2 ~srcs:[ 1 ])))

let test_dep_never_stalls () =
  let f = mk_fake () in
  let p = Steer.Dep.make () in
  Hashtbl.replace f.locs (Reg.int 1) (Bitset.singleton 0);
  f.free.(0) <- 0;
  f.free.(1) <- 0;
  (* Queues full everywhere: dep still picks a cluster (the engine
     will charge the allocation stall). *)
  check_int "no voluntary stall" 0
    (decide p (fake_view f) (duop (alu ~id:0 ~dst:2 ~srcs:[ 1 ])))

let test_dep_tie_least_loaded () =
  let f = mk_fake () in
  let p = Steer.Dep.make () in
  f.inflight.(0) <- 7;
  check_int "no operands -> least loaded" 1
    (decide p (fake_view f) (duop (alu ~id:0 ~dst:2 ~srcs:[])))

(* ---- crit (extension baseline) ----------------------------------------------------- *)

let test_crit_critical_follows_operands () =
  let critical = [| true; false |] in
  let p = Steer.Crit.make ~critical () in
  let f = mk_fake () in
  Hashtbl.replace f.locs (Reg.int 1) (Bitset.singleton 1);
  (* uop 0 is critical: chases its operand into cluster 1 *)
  check_int "critical chases" 1
    (decide p (fake_view f) (duop (alu ~id:0 ~dst:2 ~srcs:[ 1 ])));
  (* uop 1 is not: goes to the least-loaded cluster (0) *)
  f.inflight.(1) <- 5;
  check_int "non-critical balances" 0
    (decide p (fake_view f) (duop (alu ~id:1 ~dst:2 ~srcs:[ 1 ])))

let test_crit_out_of_table_is_noncritical () =
  let p = Steer.Crit.make ~critical:[| true |] () in
  let f = mk_fake () in
  f.inflight.(0) <- 5;
  check_int "beyond table balances" 1
    (decide p (fake_view f) (duop (alu ~id:7 ~dst:2 ~srcs:[])))

(* ---- thermal (extension baseline) -------------------------------------------------- *)

let test_thermal_balances_when_cold () =
  let p = Steer.Thermal_aware.make () in
  let f = mk_fake () in
  f.inflight.(0) <- 9;
  check_int "prefers lighter cluster" 1
    (decide p (fake_view f) (duop (alu ~id:0 ~dst:0 ~srcs:[])))

let test_thermal_migrates_under_heat () =
  (* With equal in-flight load, accumulated heat pushes decisions to
     alternate clusters instead of sticking to cluster 0. *)
  let p = Steer.Thermal_aware.make ~weight:2.0 () in
  let f = mk_fake () in
  let view = fake_view f in
  let picks =
    List.init 10 (fun i -> decide p view (duop ~seq:i (alu ~id:i ~dst:0 ~srcs:[])))
  in
  check_bool "uses both clusters" true
    (List.exists (fun c -> c = 0) picks && List.exists (fun c -> c = 1) picks)

let test_thermal_validates_decay () =
  Alcotest.check_raises "decay range"
    (Invalid_argument "Thermal_aware.make: decay must be in (0,1)") (fun () ->
      ignore (Steer.Thermal_aware.make ~decay:1.5 ()))

(* ---- complexity table ------------------------------------------------------------ *)

let test_complexity_table1 () =
  let c = Steer.Complexity.op in
  check_bool "op needs dep check" true c.Steer.Complexity.dependence_check;
  check_bool "op needs vote" true c.Steer.Complexity.vote_unit;
  check_bool "op serialized" true c.Steer.Complexity.serialized;
  let vc = Steer.Complexity.vc in
  check_bool "vc drops dep check" false vc.Steer.Complexity.dependence_check;
  check_bool "vc drops vote" false vc.Steer.Complexity.vote_unit;
  check_bool "vc keeps balance counters" true vc.Steer.Complexity.workload_balance;
  check_bool "vc keeps copy generator" true vc.Steer.Complexity.copy_generator;
  check_bool "vc not serialized" false vc.Steer.Complexity.serialized;
  check_int "five rows" 5 (List.length (Steer.Complexity.table_rows ()))

(* ---- policy flags ------------------------------------------------------------------ *)

let test_policy_flags () =
  check_bool "op dep check" true (Steer.Op.make ()).Policy.uses_dependence_check;
  check_bool "vc no dep check" false
    (Steer.Vc_map.make ~annot:(vc_annot ()) ~clusters:2 ()).Policy.uses_dependence_check;
  check_bool "static no vote" false
    (Steer.Static.make ~name:"x" ~annot:(Annot.none ~uop_count:1)).Policy.uses_vote_unit

let () =
  Alcotest.run "clusteer_steer"
    [
      ("one-cluster", [ Alcotest.test_case "always zero" `Quick test_one_cluster_always_zero ]);
      ( "op",
        [
          Alcotest.test_case "follows operands" `Quick test_op_follows_operands;
          Alcotest.test_case "tie to least loaded" `Quick test_op_tie_breaks_least_loaded;
          Alcotest.test_case "stall over steer" `Quick test_op_stall_over_steer;
          Alcotest.test_case "imbalance override" `Quick test_op_imbalance_override;
          Alcotest.test_case "rotates exact ties" `Quick test_op_rotates_exact_ties;
          Alcotest.test_case "rotation keeps untied picks" `Quick
            test_op_rotation_never_overrides_untied_picks;
        ] );
      ( "op-parallel",
        [
          Alcotest.test_case "stale locations" `Quick test_op_parallel_uses_stale_locations;
          Alcotest.test_case "cycle reset" `Quick test_op_parallel_resets_each_cycle;
        ] );
      ( "static",
        [
          Alcotest.test_case "obeys annotation" `Quick test_static_obeys_annotation;
          Alcotest.test_case "unassigned default" `Quick test_static_unassigned_defaults_zero;
          Alcotest.test_case "clamps foreign cluster" `Quick test_static_clamps_foreign_cluster;
        ] );
      ( "vc-map",
        [
          Alcotest.test_case "non-leader follows" `Quick test_vc_non_leader_follows_table;
          Alcotest.test_case "leader remaps" `Quick test_vc_leader_remaps_to_least_loaded;
          Alcotest.test_case "hysteresis" `Quick test_vc_hysteresis_threshold;
          Alcotest.test_case "unassigned least loaded" `Quick test_vc_unassigned_goes_least_loaded;
          Alcotest.test_case "requires vcs" `Quick test_vc_requires_virtual_annotation;
        ] );
      ( "mod-n",
        [
          Alcotest.test_case "rotation" `Quick test_mod_n_rotation;
          Alcotest.test_case "default n" `Quick test_mod_n_default_three;
          Alcotest.test_case "rejects bad n" `Quick test_mod_n_rejects_bad_n;
        ] );
      ( "dep",
        [
          Alcotest.test_case "follows operands" `Quick test_dep_follows_operands;
          Alcotest.test_case "never stalls" `Quick test_dep_never_stalls;
          Alcotest.test_case "tie least loaded" `Quick test_dep_tie_least_loaded;
        ] );
      ( "crit",
        [
          Alcotest.test_case "critical chases" `Quick test_crit_critical_follows_operands;
          Alcotest.test_case "table bounds" `Quick test_crit_out_of_table_is_noncritical;
        ] );
      ( "thermal",
        [
          Alcotest.test_case "balances when cold" `Quick test_thermal_balances_when_cold;
          Alcotest.test_case "migrates under heat" `Quick test_thermal_migrates_under_heat;
          Alcotest.test_case "validates decay" `Quick test_thermal_validates_decay;
        ] );
      ( "complexity",
        [
          Alcotest.test_case "table 1" `Quick test_complexity_table1;
          Alcotest.test_case "policy flags" `Quick test_policy_flags;
        ] );
    ]
