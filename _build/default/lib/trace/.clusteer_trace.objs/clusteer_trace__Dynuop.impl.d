lib/trace/dynuop.ml: Clusteer_isa Format Printf Uop
