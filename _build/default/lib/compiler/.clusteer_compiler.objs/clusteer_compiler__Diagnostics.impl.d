lib/compiler/diagnostics.ml: Annot Array Chains Clusteer_ddg Clusteer_isa Ddg Format Fun List Program Region Uop
