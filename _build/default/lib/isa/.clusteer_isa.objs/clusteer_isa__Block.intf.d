lib/isa/block.mli: Format Uop
