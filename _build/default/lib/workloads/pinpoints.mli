(** PinPoints stand-in: representative simulation points with weights.

    The paper selects up to 10 weighted simulation points per SPEC
    benchmark with the PinPoints tool and reports weighted results. We
    reproduce the structure: each benchmark exposes [profile.phases]
    points; each point is the benchmark's profile with deterministic
    per-phase jitter (working-set scale, branch hardness, a fresh
    seed), modelling program phases with different behaviour. Weights
    are drawn deterministically and normalised to 1. *)

type point = {
  benchmark : string;
  index : int;  (** phase number, from 0 *)
  weight : float;  (** normalised; all points of a benchmark sum to 1 *)
  profile : Profile.t;  (** jittered per-phase profile *)
}

val points : Profile.t -> point list
(** The benchmark's simulation points, in phase order. *)

val weighted :
  point list -> f:(point -> float) -> float
(** Phase-weight-averaged metric over a benchmark's points. *)
