type t =
  | Bernoulli of float
  | Loop of int
  | Pattern of bool array

type state = {
  models : t array;
  counters : int array;  (* loop iteration / pattern position *)
  mutable rng : Clusteer_util.Rng.t;
  seed : int;
}

let validate = function
  | Bernoulli p ->
      if p < 0.0 || p > 1.0 then invalid_arg "Branch_model: probability range"
  | Loop n -> if n < 1 then invalid_arg "Branch_model: loop trip count >= 1"
  | Pattern a ->
      if Array.length a = 0 then invalid_arg "Branch_model: empty pattern"

let make_state models ~seed =
  Array.iter validate models;
  {
    models;
    counters = Array.make (Array.length models) 0;
    rng = Clusteer_util.Rng.create seed;
    seed;
  }

(* Reseeding keeps a wrapped walk identical to the first one, which
   makes traces deterministic functions of (program, seed, length). *)
let reset st =
  Array.fill st.counters 0 (Array.length st.counters) 0;
  st.rng <- Clusteer_util.Rng.create st.seed

let outcome st id =
  match st.models.(id) with
  | Bernoulli p -> Clusteer_util.Rng.bernoulli st.rng p
  | Loop n ->
      let c = st.counters.(id) in
      if c = n - 1 then begin
        st.counters.(id) <- 0;
        false
      end
      else begin
        st.counters.(id) <- c + 1;
        true
      end
  | Pattern a ->
      let c = st.counters.(id) in
      st.counters.(id) <- (c + 1) mod Array.length a;
      a.(c)

let describe = function
  | Bernoulli p -> Printf.sprintf "bernoulli(%.2f)" p
  | Loop n -> Printf.sprintf "loop(%d)" n
  | Pattern a -> Printf.sprintf "pattern(%d)" (Array.length a)
