lib/util/ring.mli:
