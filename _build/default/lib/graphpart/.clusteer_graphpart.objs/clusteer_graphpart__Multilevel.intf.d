lib/graphpart/multilevel.mli: Partition Wgraph
