(** Hand-written micro-kernels.

    Unlike the profile-driven SPEC stand-ins ({!Synth.build}), these are
    explicit programs built with {!Clusteer_isa.Program.Builder} — the
    classic kernels whose steering behaviour is understood analytically,
    useful as ground truth for the policies and as API examples:

    - {!daxpy}: [y[i] <- a*x[i] + y[i]] — two parallel load streams
      feeding an FP multiply-add, fully parallel across iterations.
    - {!dot_product}: a serial FP reduction — one long dependence
      chain; steering can do nothing except keep it in one cluster.
    - {!pointer_chase}: serial load-to-load chain, memory-latency bound.
    - {!fibonacci}: serial 1-cycle integer recurrence.
    - {!matmul_inner}: a blocked matrix-multiply inner loop, several
      independent FP accumulators — the ILP showcase.
    - {!histogram}: data-dependent scattered updates (load-add-store to
      pseudo-random addresses);
    - {!stencil3}: a 1-D 3-point stencil — staggered reads, wide
      shallow DDG;
    - {!reduction_tree}: pairwise tree reduction — log-depth DDG,
      between daxpy's flat parallelism and dot's serial chain. *)

type t = Synth.t
(** Kernels reuse the workload record: program + behaviour models +
    profile feedback. The [profile] field carries descriptive metadata
    only (kernels are not re-synthesizable from it). *)

val daxpy : ?iters:int -> unit -> t
val dot_product : ?iters:int -> unit -> t
val pointer_chase : ?footprint_kb:int -> unit -> t
val fibonacci : unit -> t
val matmul_inner : ?accumulators:int -> unit -> t
val histogram : ?buckets_kb:int -> unit -> t
val stencil3 : ?iters:int -> unit -> t
val reduction_tree : ?width:int -> unit -> t

val all : (string * t) list
(** Every kernel under its name, default parameters. *)
