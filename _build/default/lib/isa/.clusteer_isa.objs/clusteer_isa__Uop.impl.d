lib/isa/uop.ml: Array Format Opcode Printf Reg
