lib/vliw/modulo.ml: Array Clusteer_ddg Clusteer_isa Hashtbl List Machine Opcode Printf Reg Uop
