test/test_cli.ml: Alcotest Clusteer_isa Filename List Printf String Sys
