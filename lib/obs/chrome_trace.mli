(** Chrome [trace_event] exporter.

    Renders a run's events and interval samples as the JSON object
    format understood by [chrome://tracing] and Perfetto
    ({{:https://ui.perfetto.dev}ui.perfetto.dev} → "Open trace file").

    Layout: one process ("clusteer"), one named thread per cluster plus
    a "frontend" thread. Steer decisions, dispatches, copies, commits
    land as instant events on their cluster's track; stalls and
    redirects on the frontend track; link transfers as duration slices
    (their [dur] is the modelled link latency); interval telemetry as
    counter tracks (ipc, copy rate, per-reason stalls, per-cluster
    dispatch share). Timestamps are cycles, reported in the trace's
    microsecond unit — read "1 us" as "1 cycle". *)

val to_json :
  clusters:int ->
  events:Event.t list ->
  samples:Interval.sample list ->
  Json.t

val write :
  path:string ->
  clusters:int ->
  events:Event.t list ->
  samples:Interval.sample list ->
  unit
(** Write the trace to [path], overwriting. *)
