lib/compiler/ob.mli: Annot Clusteer_ddg Clusteer_isa Program
