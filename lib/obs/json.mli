(** Minimal JSON tree, encoder and parser.

    Just enough for the observability exporters (Chrome trace files,
    [--json] stats output) without an external dependency. Encoding
    escapes strings per RFC 8259; integers print without a decimal
    point so they survive a round trip through {!of_string}. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) encoding. *)

val to_buffer : Buffer.t -> t -> unit

val output : out_channel -> t -> unit

val of_string : string -> (t, string) result
(** Parse a complete JSON document; trailing garbage is an error.
    Numbers with a fraction or exponent parse as [Float], others as
    [Int]. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] elsewhere or when absent. *)

val to_int : t -> int option
(** [Int n] gives [Some n]; everything else [None]. *)

val to_list : t -> t list option
(** [List l] gives [Some l]; everything else [None]. *)

val to_str : t -> string option
(** [Str s] gives [Some s]; everything else [None]. *)

val to_bool : t -> bool option
(** [Bool b] gives [Some b]; everything else [None]. *)

val to_float : t -> float option
(** [Float] or [Int] as a float; everything else [None]. *)

val equal : t -> t -> bool
(** Structural equality; object fields compare order-sensitively. *)
