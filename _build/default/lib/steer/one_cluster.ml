open Clusteer_uarch

let make () =
  {
    Policy.name = "one-cluster";
    decide = (fun _view _duop -> Policy.Dispatch_to 0);
    uses_dependence_check = false;
    uses_vote_unit = false;
  }
