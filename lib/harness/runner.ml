open Clusteer_uarch
open Clusteer_workloads
module Counters = Clusteer_obs.Counters
module Parallel = Clusteer_util.Parallel

type point_result = {
  point : Pinpoints.point;
  runs : (string * Stats.t) list;
}

(* Per-point trace seed: a splitmix64-style bit mix of (master seed,
   phase index). The previous affine formula [seed*31 + index + 101]
   collided across nearby benchmarks (e.g. seeds 1/phase 31 and
   2/phase 0), silently replaying the same dynamic stream for
   different simulation points. Multiplying by an odd 64-bit constant
   and running the result through a bijective finalizer spreads every
   (seed, index) pair over the full 62-bit output range. *)
let trace_seed (point : Pinpoints.point) =
  let open Int64 in
  let z =
    add
      (mul
         (of_int point.Pinpoints.profile.Profile.seed)
         0x9E3779B97F4A7C15L)
      (of_int point.Pinpoints.index)
  in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  to_int (shift_right_logical z 2)

(* Salted variant for replicated measurements (the tuner's AB
   tie-breaks): salt 0 is the identity — exactly [trace_seed] — so
   every existing caller and determinism test is unaffected; a nonzero
   salt derives an independent but equally deterministic stream for
   the same point by running (salt, base seed) through the same
   splitmix64 finalizer. *)
let salted_trace_seed ~salt (point : Pinpoints.point) =
  let base = trace_seed point in
  if salt = 0 then base
  else
    let open Int64 in
    let z = add (mul (of_int salt) 0x9E3779B97F4A7C15L) (of_int base) in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    let z = logxor z (shift_right_logical z 31) in
    to_int (shift_right_logical z 2)

(* Default warmup: half the measured length, capped — enough to fill
   the L1 and train the predictor at the scaled-down trace sizes — and
   always strictly below the measured budget, so tiny runs (fewer than
   the old 2,000-uop floor) still terminate instead of spending their
   entire budget warming up. *)
let default_warmup uops =
  min (min 10_000 (max 2_000 (uops / 2))) (max 0 (uops - 1))

(* ---- shared trace buffer ----------------------------------------- *)

(* Every configuration of a point replays the identical dynamic stream
   (same seed), so the stream — warmup micro-ops included — only needs
   to be *generated* once per point. The buffer is fed lazily from one
   generator and each configuration reads through its own cursor;
   since {!Clusteer_trace.Dynuop.t} is immutable, sharing the elements
   is safe and the replay is bit-identical to a fresh generator. This
   hoists the warmup's generation cost from once per (point × config)
   to once per point without touching the engines' own warmup phase
   (which must stay per run for results to be independent of sharding). *)
type trace_buffer = {
  tb_gen : Clusteer_trace.Tracegen.t;
  mutable tb_buf : Clusteer_trace.Dynuop.t array;
  mutable tb_len : int;
}

let shared_trace workload ~seed =
  { tb_gen = Synth.trace workload ~seed; tb_buf = [||]; tb_len = 0 }

(* A fresh cursor over the buffer: configuration k replays what the
   generator already produced and extends the buffer past the furthest
   point reached so far. *)
let trace_consumer tb =
  let pos = ref 0 in
  fun () ->
    let i = !pos in
    incr pos;
    while tb.tb_len <= i do
      let d = Clusteer_trace.Tracegen.next tb.tb_gen in
      if tb.tb_len = Array.length tb.tb_buf then begin
        let bigger = Array.make (max 4096 (2 * tb.tb_len)) d in
        Array.blit tb.tb_buf 0 bigger 0 tb.tb_len;
        tb.tb_buf <- bigger
      end;
      tb.tb_buf.(tb.tb_len) <- d;
      tb.tb_len <- tb.tb_len + 1
    done;
    tb.tb_buf.(i)

(* ---- per-domain reuse context ------------------------------------ *)

(* Shared-nothing shard state: everything a domain can profitably keep
   alive across the points it owns. Workloads and compiled annotations
   are deterministic per (profile, configuration), so caching them
   changes nothing; engines are returned to their post-create state
   with {!Engine.reset} instead of being re-allocated. Together these
   remove the bulk of the per-point allocation — and with it the
   stop-the-world minor collections that made the parallel sweep
   anti-scale. *)
type reuse = {
  r_workloads : (Profile.t, Synth.t) Hashtbl.t;
  r_annots : (Profile.t * string, Clusteer_isa.Annot.t) Hashtbl.t;
  r_engines : (string, Engine.t) Hashtbl.t;  (* config name -> engine *)
}

let fresh_reuse () =
  {
    r_workloads = Hashtbl.create 16;
    r_annots = Hashtbl.create 64;
    r_engines = Hashtbl.create 16;
  }

(* Per-shard minor heap: 1M words (8 MB on 64-bit). Minor collections
   are global stop-the-world rendezvous in OCaml 5; giving each shard
   a big nursery makes them rare enough that domains actually run in
   parallel. *)
let shard_minor_heap_words = 1 lsl 20

let run_workload_cached ?warmup ?(seed = 1) ?(obs = fun _ -> None) ?registry
    ?profile ?reuse ?params ~machine ~configs ~uops workload =
  let warmup = Option.value ~default:(default_warmup uops) warmup in
  let committed = Counters.counter ?registry "harness.uops_committed" in
  (* The machine's fabric is the single source of truth for topology:
     whatever interconnect the engine simulates is also what the
     steering layer reasons about, so [params.topology] is always
     overwritten from the machine configuration here. On the default
     point-to-point fabric the policies' uniform path keeps behavior
     and counters bit-identical to a run without the injection. *)
  let params =
    let p =
      Option.value params ~default:Clusteer.Configuration.default_params
    in
    { p with Clusteer.Configuration.topology = Some machine.Config.topology }
  in
  let tb = shared_trace workload ~seed in
  List.map
    (fun config ->
      let name = Clusteer.Configuration.name config in
      let cached_annot =
        match reuse with
        | Some r ->
            Hashtbl.find_opt r.r_annots (workload.Synth.profile, name)
        | None -> None
      in
      let annot, policy =
        Clusteer.Configuration.prepare config ~program:workload.Synth.program
          ~likely:workload.Synth.likely ~clusters:machine.Config.clusters
          ~params ?annot:cached_annot ?registry ()
      in
      (match (reuse, cached_annot) with
      | Some r, None ->
          Hashtbl.replace r.r_annots (workload.Synth.profile, name) annot
      | _ -> ());
      let prewarm =
        Array.to_list
          (Array.map Clusteer_trace.Mem_model.extent workload.Synth.streams)
      in
      let engine =
        match reuse with
        | Some r -> (
            match Hashtbl.find_opt r.r_engines name with
            | Some e ->
                Engine.reset ~prewarm ?obs:(obs name) e ~annot ~policy;
                e
            | None ->
                let e =
                  Engine.create ~config:machine ~annot ~policy ~prewarm
                    ?obs:(obs name) ?registry ?profile ()
                in
                Hashtbl.replace r.r_engines name e;
                e)
        | None ->
            Engine.create ~config:machine ~annot ~policy ~prewarm
              ?obs:(obs name) ?registry ?profile ()
      in
      let stats = Engine.run ~warmup engine ~source:(trace_consumer tb) ~uops in
      (* A reused engine resets its stats in place on the next point:
         hand the caller an independent copy. *)
      let stats = if Option.is_some reuse then Stats.copy stats else stats in
      (* The ledger attributes committed work to the run through this
         counter — it rides the registry, so parallel shards merge it
         like any other instrument. *)
      Counters.add committed stats.Stats.committed;
      (name, stats))
    configs

let run_workload ?warmup ?seed ?obs ?registry ?profile ?params ~machine
    ~configs ~uops workload =
  run_workload_cached ?warmup ?seed ?obs ?registry ?profile ?params ~machine
    ~configs ~uops workload

let run_point_cached ?warmup ?obs ?registry ?profile ?reuse ?params
    ?(trace_salt = 0) ~machine ~configs ~uops point =
  let workload =
    match reuse with
    | Some r -> (
        match Hashtbl.find_opt r.r_workloads point.Pinpoints.profile with
        | Some w -> w
        | None ->
            let w = Synth.build point.Pinpoints.profile in
            Hashtbl.replace r.r_workloads point.Pinpoints.profile w;
            w)
    | None -> Synth.build point.Pinpoints.profile
  in
  (* Every configuration replays the identical dynamic stream: the
     generator is reseeded per point with the same seed. *)
  let runs =
    run_workload_cached ?warmup
      ~seed:(salted_trace_seed ~salt:trace_salt point)
      ?obs ?registry ?profile ?reuse ?params ~machine ~configs ~uops workload
  in
  { point; runs }

let run_point ?warmup ?obs ?registry ?profile ?params ?trace_salt ~machine
    ~configs ~uops point =
  run_point_cached ?warmup ?obs ?registry ?profile ?params ?trace_salt
    ~machine ~configs ~uops point

(* Registry-isolated parallel map. Under {!Parallel.Static} (the
   default) the items are pre-partitioned into contiguous per-domain
   shards, each shard runs against one private counter registry, and
   the shard registries are merged into [into] in shard (= input)
   order once every shard completes. Under {!Parallel.Steal} each
   *item* gets a private registry and the per-item registries merge in
   input order — the dynamic schedule balances uneven items at the
   price of cross-domain cursor traffic. {!Counters.merge} is
   commutative and associative over disjoint observation streams, so
   both groupings produce bit-identical merged totals; as long as [f]
   is deterministic per item, both produce results bit-identical to a
   sequential run. The suite sweeps below and the service layer's
   worker pool (lib/serve) both build on this. *)
let map_isolated ?domains ?chunk ?(strategy = Parallel.Static)
    ?(into = Counters.default) f items =
  match strategy with
  | Parallel.Steal ->
      let shard item =
        let registry = Counters.create () in
        let result = f ~registry item in
        (result, registry)
      in
      let sharded =
        Parallel.map ?domains ?chunk ~strategy:Parallel.Steal
          ~minor_heap_words:shard_minor_heap_words shard items
      in
      List.iter (fun (_, registry) -> Counters.merge ~into registry) sharded;
      List.map fst sharded
  | Parallel.Static ->
      let results, registries =
        Parallel.map_sharded ?domains
          ~minor_heap_words:shard_minor_heap_words
          ~init:(fun _ -> Counters.create ())
          ~f:(fun registry item -> f ~registry item)
          items
      in
      List.iter (fun registry -> Counters.merge ~into registry) registries;
      results

(* Parallel core: shard (profile x point) pairs over domains. The
   simulation is deterministic per point (a pure function of the trace
   seed and the machine), so [map_isolated]'s guarantee applies.

   Under the default static strategy each domain additionally keeps a
   {!reuse} context — cached workloads, compiled annotations and reset-
   in-place engines — plus one self-profiler when [profiled]; all of it
   private to the shard, merged (registry) or dropped (reuse) at the
   end. Contiguous partitioning keeps a profile's points on one domain,
   so the caches actually hit.

   [profiled] attaches a pipeline self-profiler per shard, over the
   shard's private registry — concurrent engines never share a span,
   and the phase-timing histograms merge back with the rest of the
   shard registry in input order. When profiled, each item also
   records a [harness.point] wall-time span and per-point GC deltas
   ([harness.gc.*] counters). These are wall-clock quantities, hence
   nondeterministic — which is why they are gated behind [profiled]
   and absent from default-mode registries (the determinism contract
   compares those). *)
let run_points ?(progress = fun _ -> ()) ?warmup ?domains ?chunk ?strategy
    ?(profiled = false) ?params ?trace_salt ~machine ~configs ~uops profiles =
  let items =
    List.concat_map
      (fun profile ->
        List.map (fun point -> (profile, point)) (Pinpoints.points profile))
      profiles
  in
  let run_item ~registry ~prof ~reuse ((profile : Profile.t), point) =
    if point.Pinpoints.index = 0 then progress profile.Profile.name;
    match prof with
    | None ->
        run_point_cached ?warmup ~registry ?reuse ?params ?trace_salt
          ~machine ~configs ~uops point
    | Some p ->
        let span = Clusteer_obs.Profile.span p "harness.point" in
        let gc0 = Gc.quick_stat () in
        let result =
          Clusteer_obs.Profile.time span (fun () ->
              run_point_cached ?warmup ~registry ~profile:p ?reuse ?params
                ?trace_salt ~machine ~configs ~uops point)
        in
        let gc1 = Gc.quick_stat () in
        let add name v = Counters.add (Counters.counter ~registry name) v in
        add "harness.gc.minor_words"
          (int_of_float (gc1.Gc.minor_words -. gc0.Gc.minor_words));
        add "harness.gc.minor_collections"
          (gc1.Gc.minor_collections - gc0.Gc.minor_collections);
        add "harness.gc.major_collections"
          (gc1.Gc.major_collections - gc0.Gc.major_collections);
        result
  in
  match Option.value ~default:Parallel.Static strategy with
  | Parallel.Steal ->
      (* Dynamic schedule: no stable item->domain mapping, so no state
         survives an item — every item builds from scratch against its
         own registry, exactly the PR 2 behaviour. *)
      map_isolated ?domains ?chunk ~strategy:Parallel.Steal
        (fun ~registry item ->
          let prof =
            if profiled then
              Some (Clusteer_obs.Profile.create ~registry ())
            else None
          in
          run_item ~registry ~prof ~reuse:None item)
        items
  | Parallel.Static ->
      let results, shards =
        Parallel.map_sharded ?domains
          ~minor_heap_words:shard_minor_heap_words
          ~init:(fun _ ->
            let registry = Counters.create () in
            let prof =
              if profiled then
                Some (Clusteer_obs.Profile.create ~registry ())
              else None
            in
            (registry, prof, fresh_reuse ()))
          ~f:(fun (registry, prof, reuse) item ->
            run_item ~registry ~prof ~reuse:(Some reuse) item)
          items
      in
      List.iter
        (fun (registry, _, _) ->
          Counters.merge ~into:Counters.default registry)
        shards;
      results

let run_benchmark ?warmup ?domains ?chunk ?strategy ?profiled ?params
    ?trace_salt ~machine ~configs ~uops profile =
  run_points ?warmup ?domains ?chunk ?strategy ?profiled ?params ?trace_salt
    ~machine ~configs ~uops [ profile ]

let run_suite ?progress ?warmup ?domains ?chunk ?strategy ?profiled ?params
    ?trace_salt ~machine ~configs ~uops profiles =
  run_points ?progress ?warmup ?domains ?chunk ?strategy ?profiled ?params
    ?trace_salt ~machine ~configs ~uops profiles

let rec split_at n xs =
  if n = 0 then ([], xs)
  else
    match xs with
    | [] -> invalid_arg "Runner.run_grouped: result count mismatch"
    | x :: rest ->
        let taken, remaining = split_at (n - 1) rest in
        (x :: taken, remaining)

let run_grouped ?progress ?warmup ?domains ?chunk ?strategy ?profiled ?params
    ?trace_salt ~machine ~configs ~uops profiles =
  let flat =
    run_points ?progress ?warmup ?domains ?chunk ?strategy ?profiled ?params
      ?trace_salt ~machine ~configs ~uops profiles
  in
  let groups, rest =
    List.fold_left
      (fun (acc, remaining) profile ->
        let n = List.length (Pinpoints.points profile) in
        let points, remaining = split_at n remaining in
        ((profile, points) :: acc, remaining))
      ([], flat) profiles
  in
  assert (rest = []);
  List.rev groups

let stats_of result config =
  match List.assoc_opt config result.runs with
  | Some s -> s
  | None ->
      invalid_arg
        (Printf.sprintf "Runner: configuration %s missing from results" config)

let weighted_metric results ~config ~f =
  let pairs =
    List.map
      (fun r -> (f (stats_of r config), r.point.Pinpoints.weight))
      results
  in
  Clusteer_util.Stats.weighted_mean (Array.of_list pairs)

(* Wall-clock and GC accounting around one run, in the shape the run
   ledger records. *)
let measured f =
  let gc0 = Clusteer_obs.Ledger.gc_now () in
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let wall_s = Unix.gettimeofday () -. t0 in
  let gc = Clusteer_obs.Ledger.gc_sub (Clusteer_obs.Ledger.gc_now ()) gc0 in
  (result, wall_s, gc)

let weighted_pair_metric results ~config_a ~config_b ~f =
  let pairs =
    List.map
      (fun r ->
        (f (stats_of r config_a) (stats_of r config_b), r.point.Pinpoints.weight))
      results
  in
  Clusteer_util.Stats.weighted_mean (Array.of_list pairs)
