(* Tests for the multilevel graph-partitioning substrate. *)

open Clusteer_graphpart

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let path_graph n =
  (* 0 - 1 - ... - n-1 with unit weights. *)
  Wgraph.create ~nv:n
    ~vwgt:(Array.make n 1.0)
    ~edges:(List.init (n - 1) (fun i -> (i, i + 1, 1.0)))

(* Two unit-weight cliques joined by a light bridge. *)
let two_cliques () =
  let clique base = [ (base, base + 1, 5.0); (base, base + 2, 5.0); (base + 1, base + 2, 5.0) ] in
  Wgraph.create ~nv:6
    ~vwgt:(Array.make 6 1.0)
    ~edges:(clique 0 @ clique 3 @ [ (2, 3, 0.5) ])

(* ---- Wgraph ------------------------------------------------------------ *)

let test_wgraph_merges_parallel_edges () =
  let g =
    Wgraph.create ~nv:2 ~vwgt:[| 1.0; 1.0 |]
      ~edges:[ (0, 1, 1.0); (1, 0, 2.0) ]
  in
  check_float "merged weight" 3.0 (Wgraph.edge_weight g 0 1);
  check_int "degree" 1 (Wgraph.degree g 0)

let test_wgraph_rejects_self_loop () =
  Alcotest.check_raises "self loop" (Invalid_argument "Wgraph.create: self loop")
    (fun () ->
      ignore (Wgraph.create ~nv:1 ~vwgt:[| 1.0 |] ~edges:[ (0, 0, 1.0) ]))

let test_wgraph_fold_edges_once () =
  let g = two_cliques () in
  let count = Wgraph.fold_edges (fun _ _ _ acc -> acc + 1) g 0 in
  check_int "edge count" 7 count

let test_wgraph_total_weight () =
  check_float "total" 6.0 (Wgraph.total_weight (two_cliques ()))

(* ---- Partition metrics --------------------------------------------------- *)

let test_partition_edge_cut () =
  let g = two_cliques () in
  let ideal = [| 0; 0; 0; 1; 1; 1 |] in
  check_float "bridge only" 0.5 (Partition.edge_cut g ideal);
  let bad = [| 0; 1; 0; 1; 0; 1 |] in
  check_bool "worse cut" true (Partition.edge_cut g bad > 0.5)

let test_partition_weights_imbalance () =
  let g = two_cliques () in
  let part = [| 0; 0; 0; 0; 1; 1 |] in
  Alcotest.(check (array (float 1e-9))) "weights" [| 4.0; 2.0 |]
    (Partition.part_weights g part ~k:2);
  check_bool "imbalance" true
    (abs_float (Partition.imbalance g part ~k:2 -. (4.0 /. 3.0)) < 1e-9)

let test_partition_validate () =
  Alcotest.check_raises "part out of range"
    (Invalid_argument "Partition.validate: node 1 in part 2") (fun () ->
      Partition.validate [| 0; 2 |] ~k:2)

(* ---- Coarsening ----------------------------------------------------------- *)

let test_coarsen_preserves_total_weight () =
  let g = two_cliques () in
  let level = Coarsen.step g in
  check_float "weight preserved"
    (Wgraph.total_weight g)
    (Wgraph.total_weight level.Coarsen.graph)

let test_coarsen_shrinks () =
  let g = path_graph 10 in
  let level = Coarsen.step g in
  check_bool "shrinks" true (Wgraph.node_count level.Coarsen.graph < 10)

let test_coarsen_heavy_edges_first () =
  (* With one heavy edge, that pair must be matched. *)
  let g =
    Wgraph.create ~nv:4
      ~vwgt:(Array.make 4 1.0)
      ~edges:[ (0, 1, 100.0); (1, 2, 1.0); (2, 3, 1.0) ]
  in
  let level = Coarsen.step ~seed:3 g in
  check_int "0 and 1 merged" level.Coarsen.map.(0) level.Coarsen.map.(1)

let test_coarsen_respects_max_node_weight () =
  let g =
    Wgraph.create ~nv:2 ~vwgt:[| 3.0; 3.0 |] ~edges:[ (0, 1, 10.0) ]
  in
  let level = Coarsen.step ~max_node_weight:4.0 g in
  check_int "no merge over cap" 2 (Wgraph.node_count level.Coarsen.graph)

let test_coarsen_project () =
  let g = path_graph 4 in
  let level = Coarsen.step g in
  let coarse_part = Array.make (Wgraph.node_count level.Coarsen.graph) 0 in
  coarse_part.(0) <- 1;
  let fine = Coarsen.project level coarse_part in
  Array.iteri
    (fun v p -> check_int "projected" coarse_part.(level.Coarsen.map.(v)) p)
    fine

(* ---- Refinement ------------------------------------------------------------ *)

let test_refine_improves_cut () =
  let g = two_cliques () in
  let part = [| 0; 1; 0; 1; 0; 1 |] in
  let before = Partition.edge_cut g part in
  (* 1.4 allows the transient 4/2 imbalance the move sequence passes
     through; the final partition is balanced again. *)
  Refine.run g part ~k:2 ~max_imbalance:1.4 ~passes:8;
  let after = Partition.edge_cut g part in
  check_bool "cut improved" true (after < before);
  check_float "reaches optimum" 0.5 after

let test_refine_rebalance_enforces_cap () =
  let g = path_graph 8 in
  let part = Array.make 8 0 in
  (* everything in part 0: rebalance must move ~half to part 1 *)
  Refine.rebalance g part ~k:2 ~max_imbalance:1.1;
  let w = Partition.part_weights g part ~k:2 in
  check_bool "part 0 within cap" true (w.(0) <= 1.1 *. 4.0 +. 1e-9);
  check_bool "part 1 nonempty" true (w.(1) > 0.0)

(* ---- Multilevel -------------------------------------------------------------- *)

let test_multilevel_two_cliques () =
  let g = two_cliques () in
  let part = Multilevel.partition g ~k:2 in
  Partition.validate part ~k:2;
  (* The natural split puts each clique in one part. *)
  check_float "optimal cut" 0.5 (Partition.edge_cut g part);
  check_bool "cliques intact" true
    (part.(0) = part.(1) && part.(1) = part.(2) && part.(3) = part.(4)
   && part.(4) = part.(5) && part.(0) <> part.(3))

let test_multilevel_k1 () =
  let g = path_graph 5 in
  let part = Multilevel.partition g ~k:1 in
  check_bool "all in part 0" true (Array.for_all (fun p -> p = 0) part)

let test_multilevel_balance () =
  let g = path_graph 32 in
  let part = Multilevel.partition g ~k:4 ~max_imbalance:1.25 in
  Partition.validate part ~k:4;
  check_bool "imbalance bounded" true
    (Partition.imbalance g part ~k:4 <= 1.3)

let test_initial_partition_balances () =
  let g =
    Wgraph.create ~nv:4 ~vwgt:[| 4.0; 3.0; 2.0; 1.0 |] ~edges:[]
  in
  let part = Multilevel.initial_partition g ~k:2 in
  let w = Partition.part_weights g part ~k:2 in
  check_float "balanced split" 5.0 w.(0);
  check_float "balanced split" 5.0 w.(1)

(* ---- Properties ---------------------------------------------------------------- *)

let arb_graph =
  QCheck.make
    QCheck.Gen.(
      sized (fun size st ->
          let n = max 2 (min size 30) in
          let nedges = int_bound (3 * n) st in
          let edges =
            List.init nedges (fun _ ->
                let a = int_bound (n - 1) st and b = int_bound (n - 1) st in
                (a, b, float_of_int (1 + int_bound 9 st)))
            |> List.filter (fun (a, b, _) -> a <> b)
          in
          let vwgt = Array.init n (fun _ -> float_of_int (1 + int_bound 4 st)) in
          Wgraph.create ~nv:n ~vwgt ~edges))

let prop_multilevel_valid =
  QCheck.Test.make ~name:"multilevel returns a valid partition" ~count:150
    arb_graph (fun g ->
      let k = 2 + (Wgraph.node_count g mod 3) in
      let part = Multilevel.partition g ~k in
      Partition.validate part ~k;
      Array.length part = Wgraph.node_count g)

let prop_coarsen_weight_conserved =
  QCheck.Test.make ~name:"coarsening conserves node weight" ~count:150
    arb_graph (fun g ->
      let level = Coarsen.step g in
      abs_float (Wgraph.total_weight g -. Wgraph.total_weight level.Coarsen.graph)
      < 1e-6)

let prop_refine_never_worsens_cut_much =
  QCheck.Test.make ~name:"gain pass never increases the cut" ~count:150
    arb_graph (fun g ->
      let n = Wgraph.node_count g in
      let part = Array.init n (fun i -> i mod 2) in
      let before = Partition.edge_cut g part in
      ignore (Refine.pass g part ~k:2 ~max_imbalance:4.0);
      Partition.edge_cut g part <= before +. 1e-6)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "clusteer_graphpart"
    [
      ( "wgraph",
        [
          Alcotest.test_case "merges parallel edges" `Quick test_wgraph_merges_parallel_edges;
          Alcotest.test_case "rejects self loop" `Quick test_wgraph_rejects_self_loop;
          Alcotest.test_case "fold edges once" `Quick test_wgraph_fold_edges_once;
          Alcotest.test_case "total weight" `Quick test_wgraph_total_weight;
        ] );
      ( "partition",
        [
          Alcotest.test_case "edge cut" `Quick test_partition_edge_cut;
          Alcotest.test_case "weights and imbalance" `Quick test_partition_weights_imbalance;
          Alcotest.test_case "validate" `Quick test_partition_validate;
        ] );
      ( "coarsen",
        [
          Alcotest.test_case "preserves weight" `Quick test_coarsen_preserves_total_weight;
          Alcotest.test_case "shrinks" `Quick test_coarsen_shrinks;
          Alcotest.test_case "heavy edges first" `Quick test_coarsen_heavy_edges_first;
          Alcotest.test_case "max node weight" `Quick test_coarsen_respects_max_node_weight;
          Alcotest.test_case "project" `Quick test_coarsen_project;
        ] );
      ( "refine",
        [
          Alcotest.test_case "improves cut" `Quick test_refine_improves_cut;
          Alcotest.test_case "rebalance cap" `Quick test_refine_rebalance_enforces_cap;
        ] );
      ( "multilevel",
        [
          Alcotest.test_case "two cliques" `Quick test_multilevel_two_cliques;
          Alcotest.test_case "k=1" `Quick test_multilevel_k1;
          Alcotest.test_case "balance" `Quick test_multilevel_balance;
          Alcotest.test_case "initial partition" `Quick test_initial_partition_balances;
          qc prop_multilevel_valid;
          qc prop_coarsen_weight_conserved;
          qc prop_refine_never_worsens_cut_much;
        ] );
    ]
