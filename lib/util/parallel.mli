(** Deterministic parallel map over OCaml 5 domains.

    Experiment sweeps run hundreds of independent simulations; this
    fans them out across domains while keeping results in input order,
    so a parallel sweep is bit-identical to a sequential one.

    By default work is {b pre-partitioned}: each worker owns one
    contiguous slice of the input computed before spawn, so the hot
    loop touches no shared state (shared-nothing sharding). A dynamic
    atomic-cursor mode ({!Steal}) remains available for genuinely
    uneven work such as the service layer's request batches.

    Because OCaml 5 minor collections are stop-the-world across all
    domains, allocation-heavy parallel regions should also pass
    [~minor_heap_words] to enlarge each domain's minor heap for the
    duration of the region — fewer global rendezvous, the measured
    root cause of the harness's former anti-scaling. *)

type strategy =
  | Static  (** Contiguous pre-partitioned slices; no shared cursor. *)
  | Steal
      (** Dynamic chunked scheduling off a shared atomic cursor;
          balances very uneven per-element cost at the price of
          cross-domain traffic on the cursor line. *)

val map :
  ?domains:int ->
  ?chunk:int ->
  ?strategy:strategy ->
  ?minor_heap_words:int ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** [map ~domains ~chunk ~strategy f xs] applies [f] to every element,
    using up to [domains] domains (default {!default_domains}; 1, a
    short list, or [n <= chunk] degrades to [List.map] without
    spawning). Under {!Steal}, workers claim [chunk] consecutive
    elements at a time (default 1) and at most [ceil(n/chunk) - 1]
    helper domains are spawned — never more than there are chunks
    beyond the parent's first. [chunk] is ignored by {!Static} (the
    default), which assigns worker [w] the slice
    [\[w*n/workers, (w+1)*n/workers)].

    [minor_heap_words], when given, enlarges every participating
    domain's minor heap to at least that many words for the duration
    of the call (the parent's setting is restored afterwards; it is
    never shrunk).

    [f] must be safe to run concurrently with itself on distinct
    elements; an exception raised by [f] poisons the run — every
    worker checks the failure flag before each {e element} and stops
    promptly — and the first failure is re-raised in the caller with
    the worker's backtrace ({!Printexc.raise_with_backtrace}). Raises
    [Invalid_argument] if [chunk < 1]. *)

val map_sharded :
  ?domains:int ->
  ?minor_heap_words:int ->
  init:(int -> 's) ->
  f:('s -> 'a -> 'b) ->
  'a list ->
  'b list * 's list
(** [map_sharded ~init ~f xs] is the shared-nothing primitive behind
    the harness: the input is split into at most [domains] contiguous
    shards, each worker allocates its private state with [init shard]
    {e inside} its own domain (so the state's minor allocations are
    domain-local from birth), maps its slice with [f state], and the
    call returns [(results, states)] — results in input order, shard
    states in shard order (shard 0, the parent's, first). Shard 0 owns
    the lowest slice, so concatenating the slices in shard order
    reproduces the input order; merging the states in shard order is
    therefore an input-order merge. With one worker (or [domains <= 1])
    no domain is spawned and a single state serves the whole list.
    Failure semantics as in {!map}. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()], capped at
    {!default_domain_cap}. The cap only shapes this default; explicit
    [~domains] arguments above it are honoured. *)

val default_domain_cap : int
(** The documented default ceiling (8) applied by {!default_domains}.
    Experiment sweeps are memory-bound enough that more domains has
    not paid off; pass [~domains] explicitly to go beyond it. *)
