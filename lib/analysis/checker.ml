open Clusteer_isa
module Compiler = Clusteer_compiler
module Uarch = Clusteer_uarch
module Json = Clusteer_obs.Json

type target = {
  label : string;
  program : Program.t;
  likely : int -> int option;
  annot : Annot.t;
  config : Uarch.Config.t;
  region_uops : int;
  max_chain : int;
  claimed : Compiler.Diagnostics.t option;
  critical : bool array option;
  slack_threshold : int;
  events : Dyn_check.event list option;
}

let target ?label ?(region_uops = 512) ?(max_chain = 0) ?claimed ?critical
    ?(slack_threshold = 0) ?events ~program ~likely ~annot ~config () =
  {
    label = Option.value label ~default:program.Program.name;
    program;
    likely;
    annot;
    config;
    region_uops;
    max_chain;
    claimed;
    critical;
    slack_threshold;
    events;
  }

type pass = {
  name : string;
  applies : target -> bool;
  run : target -> Diag.t list;
}

let is_virtual t = t.annot.Annot.virtual_clusters > 0

let is_static t =
  (not (is_virtual t))
  && Array.exists (fun c -> c <> -1) t.annot.Annot.cluster_of

let ir_pass =
  { name = "ir"; applies = (fun _ -> true); run = (fun t -> Ir_check.check t.program) }

let vc_pass =
  {
    name = "vc";
    applies = is_virtual;
    run =
      (fun t ->
        let structural =
          Vc_check.check ~program:t.program ~likely:t.likely ~annot:t.annot
            ~region_uops:t.region_uops ~max_chain:t.max_chain ()
        in
        let summary =
          match t.claimed with
          | None -> []
          | Some claimed ->
              Vc_check.check_summary ~program:t.program ~likely:t.likely
                ~annot:t.annot ~claimed ~region_uops:t.region_uops ()
        in
        structural @ summary);
  }

let place_pass =
  {
    name = "place";
    applies = (fun t -> is_static t || t.critical <> None);
    run =
      (fun t ->
        let placement =
          if is_static t then
            Place_check.check ~program:t.program ~likely:t.likely
              ~annot:t.annot ~config:t.config ~region_uops:t.region_uops ()
          else []
        in
        let crit =
          match t.critical with
          | None -> []
          | Some critical ->
              Place_check.check_crit ~program:t.program ~likely:t.likely
                ~critical ~region_uops:t.region_uops
                ~slack_threshold:t.slack_threshold ()
        in
        placement @ crit);
  }

let dyn_pass =
  {
    name = "dyn";
    applies = (fun t -> t.events <> None && is_virtual t);
    run =
      (fun t ->
        match t.events with
        | None -> []
        | Some events ->
            Dyn_check.check ~annot:t.annot
              ~clusters:t.config.Uarch.Config.clusters events);
  }

let topo_pass =
  {
    name = "topo";
    applies = (fun _ -> true);
    run =
      (fun t ->
        Topo_check.check ~topology:t.config.Uarch.Config.topology
          ~clusters:t.config.Uarch.Config.clusters ());
  }

let liv_pass =
  {
    name = "liv";
    applies = (fun _ -> true);
    run =
      (fun t ->
        Liveness.check ~int_budget:t.config.Uarch.Config.int_regfile
          ~fp_budget:t.config.Uarch.Config.fp_regfile t.program);
  }

let cost_pass =
  {
    name = "cost";
    applies = (fun _ -> true);
    run =
      (fun t ->
        let model, errors =
          Cost_model.analyze ~program:t.program ~annot:t.annot
            ~topology:t.config.Uarch.Config.topology
            ~clusters:t.config.Uarch.Config.clusters ()
        in
        errors @ Cost_model.check model);
  }

(* Pass name -> the stable codes it can emit. The compiler's
   partition-quality findings and the drift checker share the
   vocabulary, so they register here too even though they are not
   checker passes. *)
let code_table =
  [
    ("ir", Ir_check.codes);
    ("vc", Vc_check.codes);
    ("place", Place_check.codes);
    ("dyn", Dyn_check.codes);
    ("topo", Topo_check.codes);
    ("liv", Liveness.codes);
    ("cost", Cost_model.codes);
    ("drift", Dyn_check.drift_codes);
    ("compiler", Compiler.Diagnostics.codes);
    ("meta", Meta_check.codes);
  ]

let meta_pass =
  {
    name = "meta";
    applies = (fun _ -> true);
    run = (fun _ -> Meta_check.check code_table);
  }

let passes =
  [ ir_pass; liv_pass; vc_pass; place_pass; cost_pass; dyn_pass; topo_pass;
    meta_pass ]

let select names =
  match names with
  | [] -> Ok passes
  | names ->
      let rec resolve acc = function
        | [] -> Ok (List.rev acc)
        | n :: rest -> (
            match List.find_opt (fun p -> p.name = n) passes with
            | Some p -> resolve (p :: acc) rest
            | None -> Error (Printf.sprintf "unknown pass %S" n))
      in
      resolve [] names

let run ?(passes = passes) target =
  List.concat_map
    (fun p -> if p.applies target then p.run target else [])
    passes
  |> List.sort Diag.compare

let failed ~strict diags =
  Diag.count Diag.Error diags > 0
  || (strict && Diag.count Diag.Warning diags > 0)

let report_json ~label diags =
  Json.Obj
    [
      ("target", Json.Str label);
      ("errors", Json.Int (Diag.count Diag.Error diags));
      ("warnings", Json.Int (Diag.count Diag.Warning diags));
      ("infos", Json.Int (Diag.count Diag.Info diags));
      ("diagnostics", Json.List (List.map Diag.to_json diags));
    ]
