open Clusteer_uarch

let slowdown_pct ~baseline s =
  if baseline.Stats.cycles = 0 then invalid_arg "Metrics.slowdown_pct: empty baseline";
  (float_of_int s.Stats.cycles /. float_of_int baseline.Stats.cycles -. 1.0)
  *. 100.0

let speedup_pct ~of_ ~over =
  if of_.Stats.cycles = 0 then invalid_arg "Metrics.speedup_pct: empty run";
  (float_of_int over.Stats.cycles /. float_of_int of_.Stats.cycles -. 1.0)
  *. 100.0

let reduction over_v of_v =
  if over_v <= 0.0 then 0.0 else (over_v -. of_v) /. over_v *. 100.0

let copy_reduction_pct ~of_ ~over =
  reduction
    (float_of_int over.Stats.copies_generated)
    (float_of_int of_.Stats.copies_generated)

let balance_improvement_pct ~of_ ~over =
  reduction
    (float_of_int (Stats.allocation_stalls over))
    (float_of_int (Stats.allocation_stalls of_))
