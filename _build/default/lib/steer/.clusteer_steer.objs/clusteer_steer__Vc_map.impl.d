lib/steer/vc_map.ml: Annot Array Clusteer_isa Clusteer_trace Clusteer_uarch Dynuop Policy
