(** Chain and chain-leader identification (paper Figure 3).

    Within a region, a {e chain} is a maximal run of consecutive
    (program-order) micro-ops carrying the same virtual-cluster id. The
    first micro-op of each chain is its {e leader} and gets a special
    mark: at run time the hardware consults the workload counters and
    updates the VC→physical mapping table only when it decodes a
    leader; every non-leader simply follows the current table entry.
    Chain selection therefore controls how often the hardware may
    rebalance — the knob the whole hybrid scheme turns on. *)

open Clusteer_isa

val mark_region : Annot.t -> Clusteer_ddg.Region.t -> unit
(** Set leader marks for one region whose [vc_of] entries are already
    filled. The region's first micro-op always starts a chain. *)

val chains_of_region : Annot.t -> Clusteer_ddg.Region.t -> int list list
(** The chains, each as the list of uop ids, in program order.
    Useful for inspection and tests. *)
