(** Dynamic steering-trace invariants for the hybrid VC policy.

    The hardware contract (paper §4.2, Fig. 3) is that the VC→cluster
    table is consulted for every annotated micro-op but may be
    {e remapped} only at chain leaders. Replaying a recorded decision
    stream against an oracle table — initialised exactly like
    {!Clusteer_steer.Vc_map.make}, updated only at leaders — verifies
    that a policy implementation honours the contract.

    Codes:
    - [DYN001] — a recorded event names a static uop id out of range.
    - [DYN002] — a non-leader micro-op was steered away from its VC's
      current table entry (an illegal mid-chain remap). *)

open Clusteer_isa
module Uarch = Clusteer_uarch

type event = {
  uop : int;  (** static micro-op id *)
  cluster : int;  (** cluster the policy dispatched it to *)
}

val recording : Uarch.Policy.t -> Uarch.Policy.t * (unit -> event list)
(** Wrap a policy so every [Dispatch_to] decision is recorded; the
    second component returns the events seen so far, oldest first.
    [Stall] decisions are not events — the engine retries them. *)

val check : annot:Annot.t -> clusters:int -> event list -> Diag.t list
(** Replay a decision stream against the oracle table. Events for
    unannotated micro-ops ([vc = -1]) are free choices and always
    legal. *)
