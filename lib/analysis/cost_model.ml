open Clusteer_isa
module Topology = Clusteer_topo.Topology
module Json = Clusteer_obs.Json

type placement_kind =
  | Static_placement
  | Virtual_placement
  | Dynamic_placement

type t = {
  kind : placement_kind;
  clusters : int;
  domains : int;
  topology : Topology.t;
  uops : int;
  reg_uses : int;
  must_cross : int;
  may_cross : int;
  pred_copy_rate : float;
  bound_copy_rate : float;
  pred_hops : int;
  pred_latency : int;
  load : int array;
  unplaced : int;
  imbalance : float;
  peak_live : int;
  max_block_uops : int;
  max_srcs : int;
  iterations : int;
}

let codes = [ "CM001"; "CM002"; "CM003"; "CM004"; "CM005"; "CM006" ]

let kind_name = function
  | Static_placement -> "static"
  | Virtual_placement -> "virtual"
  | Dynamic_placement -> "dynamic"

(* Origin masks fit one int: bit [d] for placement domain [d], bit
   [domains] for "external" (pre-trace machine state, resident in every
   cluster — never copies) and bit [domains+1] for "roaming" (a
   definition the hardware steers freely — it lands in exactly one
   cluster, so its consumers may have to copy). Domain counts beyond
   the int width degrade to the all-roaming model. *)
let max_domains = 60

let analyze ~program:(p : Program.t) ~annot ~topology ~clusters
    ?liveness () =
  let n = p.Program.uop_count in
  let errors = ref [] in
  let err d = errors := d :: !errors in
  let nvc = annot.Annot.virtual_clusters in
  let arrays_sized =
    Array.length annot.Annot.vc_of = n
    && Array.length annot.Annot.cluster_of = n
  in
  if not arrays_sized then
    err
      (Diag.errorf ~code:"CM006"
         "annotation covers %d uops but the program has %d"
         (Array.length annot.Annot.vc_of)
         n);
  let is_virtual = nvc > 0 in
  let is_static =
    (not is_virtual) && arrays_sized
    && Array.exists (fun c -> c <> -1) annot.Annot.cluster_of
  in
  let kind =
    if is_virtual && nvc <= max_domains then Virtual_placement
    else if is_static && clusters <= max_domains then Static_placement
    else Dynamic_placement
  in
  let domains =
    match kind with
    | Virtual_placement -> nvc
    | Static_placement -> clusters
    | Dynamic_placement -> 0
  in
  let external_bit = 1 lsl domains in
  let roam_bit = external_bit lsl 1 in
  (* Domain of a static uop under the annotation; -1 = roaming. Emits
     CM006 once per out-of-range entry, then treats it as roaming. *)
  let domain_of =
    match kind with
    | Dynamic_placement -> fun _ -> -1
    | Virtual_placement ->
        fun id ->
          let v = annot.Annot.vc_of.(id) in
          if v >= nvc || v < -1 then begin
            err
              (Diag.errorf ~uop:id
                 ~block:(Program.block_of_uop p id)
                 ~code:"CM006" "virtual cluster %d out of range [0, %d)" v nvc);
            -1
          end
          else v
    | Static_placement ->
        fun id ->
          let c = annot.Annot.cluster_of.(id) in
          if c >= clusters || c < -1 then begin
            err
              (Diag.errorf ~uop:id
                 ~block:(Program.block_of_uop p id)
                 ~code:"CM006" "cluster %d out of range [0, %d)" c clusters);
            -1
          end
          else c
  in
  let domain = Array.init n (fun id -> if arrays_sized then domain_of id else -1) in
  (* Initial physical mapping of a domain: the hardware VC table starts
     as [v mod clusters]; static domains are physical already. *)
  let phys d =
    match kind with Virtual_placement -> d mod clusters | _ -> d
  in
  let nregs = p.Program.nregs_per_class in
  let nslots = 2 * nregs in
  let code r = Reg.encode ~nregs_per_class:nregs r in
  let cfg = Fixpoint.of_program p in
  let lattice =
    {
      Fixpoint.bottom = Array.make nslots 0;
      equal = ( = );
      join = (fun a b -> Array.mapi (fun i w -> w lor b.(i)) a);
    }
  in
  let def_mask id =
    let d = domain.(id) in
    if d < 0 then roam_bit else 1 lsl d
  in
  let transfer b env =
    let env = Array.copy env in
    Array.iter
      (fun (u : Uop.t) ->
        match u.Uop.dst with
        | Some r -> env.(code r) <- def_mask u.Uop.id
        | None -> ())
      p.Program.blocks.(b).Block.uops;
    env
  in
  let seed b =
    if b = p.Program.entry then Some (Array.make nslots external_bit) else None
  in
  let r =
    Fixpoint.solve ~direction:Fixpoint.Forward ~lattice ~cfg ~seed ~transfer ()
  in
  (* Per-use pass: walk each block forward with the solved entry fact,
     classifying every distinct-register source operand. *)
  let dist = Topology.distance_matrix topology in
  let lat = Topology.latency_matrix topology in
  let reg_uses = ref 0 in
  let must_cross = ref 0 and may_cross = ref 0 in
  let pred_hops = ref 0 and pred_latency = ref 0 in
  let max_srcs = ref 0 in
  let bound_rate = ref 0. in
  let max_block_uops = ref 0 in
  let seen = Array.make nslots (-1) in
  Array.iteri
    (fun b (blk : Block.t) ->
      let nuops = Array.length blk.Block.uops in
      if nuops > !max_block_uops then max_block_uops := nuops;
      let env = Array.copy r.Fixpoint.input.(b) in
      let block_may = ref 0 in
      Array.iter
        (fun (u : Uop.t) ->
          let self = domain.(u.Uop.id) in
          let distinct = ref 0 in
          Array.iter
            (fun reg ->
              let c = code reg in
              if seen.(c) <> u.Uop.id then begin
                seen.(c) <- u.Uop.id;
                incr distinct;
                incr reg_uses;
                let mask = env.(c) in
                let origins = mask land (external_bit - 1) in
                let external_ = mask land external_bit <> 0 in
                let roaming = mask land roam_bit <> 0 in
                (* may-cross: any reaching definition whose domain is
                   not the consumer's own. The external origin is
                   resident everywhere and never copies; a roaming
                   definition could be anywhere, so it always may
                   cross; an all-zero mask (unreachable code) is
                   treated pessimistically. *)
                let foreign =
                  if self < 0 then origins
                  else origins land lnot (1 lsl self)
                in
                if mask = 0 || roaming || foreign <> 0 then begin
                  incr may_cross;
                  incr block_may
                end;
                (* must-cross: every origin is a known domain mapped to
                   a different physical cluster under the initial
                   mapping — only meaningful for a placed consumer. The
                   cost charged is the farthest origin (the copy the
                   consumer would actually wait for). *)
                if self >= 0 && origins <> 0 && not external_ && not roaming
                then begin
                  let all_far = ref true and hops = ref 0 and cyc = ref 0 in
                  for d = 0 to domains - 1 do
                    if origins land (1 lsl d) <> 0 then
                      if phys d = phys self then all_far := false
                      else begin
                        if dist.(phys d).(phys self) > !hops then
                          hops := dist.(phys d).(phys self);
                        if lat.(phys d).(phys self) > !cyc then
                          cyc := lat.(phys d).(phys self)
                      end
                  done;
                  if !all_far then begin
                    incr must_cross;
                    pred_hops := !pred_hops + !hops;
                    pred_latency := !pred_latency + !cyc
                  end
                end
              end)
            u.Uop.srcs;
          if !distinct > !max_srcs then max_srcs := !distinct;
          match u.Uop.dst with
          | Some reg -> env.(code reg) <- def_mask u.Uop.id
          | None -> ())
        blk.Block.uops;
      if nuops > 0 then begin
        let rate = float_of_int !block_may /. float_of_int nuops in
        if rate > !bound_rate then bound_rate := rate
      end)
    p.Program.blocks;
  let load = Array.make clusters 0 in
  let unplaced = ref 0 in
  for id = 0 to n - 1 do
    let d = domain.(id) in
    if d < 0 then incr unplaced else load.(phys d) <- load.(phys d) + 1
  done;
  let placed = n - !unplaced in
  (* Imbalance is measured against the best integer split over the
     clusters the placement can actually address: a 2-VC annotation on
     a 4-cluster machine addresses 2 clusters by design, and a 5-uop
     program cannot spread evenly however it is placed. 1.0 = as even
     as an integer assignment allows. *)
  let addressable =
    match kind with
    | Virtual_placement -> min domains clusters
    | Static_placement | Dynamic_placement -> clusters
  in
  let imbalance =
    if placed = 0 then 1.
    else
      let best_max = (placed + addressable - 1) / addressable in
      float_of_int (Array.fold_left max 0 load) /. float_of_int best_max
  in
  let live =
    match liveness with Some l -> l | None -> Liveness.analyze p
  in
  let model =
    {
      kind;
      clusters;
      domains;
      topology;
      uops = n;
      reg_uses = !reg_uses;
      must_cross = !must_cross;
      may_cross = !may_cross;
      pred_copy_rate =
        (if n = 0 then 0. else float_of_int !must_cross /. float_of_int n);
      bound_copy_rate = !bound_rate;
      pred_hops = !pred_hops;
      pred_latency = !pred_latency;
      load;
      unplaced = !unplaced;
      imbalance;
      peak_live = live.Liveness.peak_int + live.Liveness.peak_fp;
      max_block_uops = !max_block_uops;
      max_srcs = !max_srcs;
      iterations = r.Fixpoint.iterations;
    }
  in
  (model, List.rev !errors)

let check ?(max_copy_rate = 2.0) ?(max_imbalance = 4.0) m =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  add
    (Diag.infof ~code:"CM001"
       "%s placement: %d/%d source operands must cross clusters (%.3f \
        copies/uop predicted), %d may cross (bound %.3f/uop)"
       (kind_name m.kind) m.must_cross m.reg_uses m.pred_copy_rate m.may_cross
       m.bound_copy_rate);
  add
    (Diag.infof ~code:"CM002"
       "predicted copy cost on %s: %d hops, %d cycles (%.2f hops/copy)"
       (Topology.name m.topology) m.pred_hops m.pred_latency
       (if m.must_cross = 0 then 0.
        else float_of_int m.pred_hops /. float_of_int m.must_cross));
  add
    (Diag.infof ~code:"CM003"
       "static load per cluster [%s]%s, imbalance %.2f (1.00 = even)"
       (String.concat " "
          (Array.to_list (Array.map string_of_int m.load)))
       (if m.unplaced > 0 then Printf.sprintf " + %d roaming" m.unplaced
        else "")
       m.imbalance);
  if m.pred_copy_rate > max_copy_rate then
    add
      (Diag.warnf ~code:"CM004"
         "predicted copy rate %.3f/uop exceeds the %.3f threshold — the \
          placement communicates more than it computes"
         m.pred_copy_rate max_copy_rate);
  if m.kind <> Dynamic_placement && m.imbalance > max_imbalance then
    add
      (Diag.warnf ~code:"CM005"
         "static load imbalance %.2f exceeds the %.2f threshold (loads [%s])"
         m.imbalance max_imbalance
         (String.concat " "
            (Array.to_list (Array.map string_of_int m.load))));
  List.rev !diags

let copy_bound m ~dispatched ~remaps =
  int_of_float (ceil (m.bound_copy_rate *. float_of_int dispatched))
  + (remaps * m.peak_live)
  + (m.max_srcs * m.max_block_uops)

let to_json m =
  Json.Obj
    [
      ("kind", Json.Str (kind_name m.kind));
      ("clusters", Json.Int m.clusters);
      ("domains", Json.Int m.domains);
      ("topology", Json.Str (Topology.name m.topology));
      ("uops", Json.Int m.uops);
      ("reg_uses", Json.Int m.reg_uses);
      ("must_cross", Json.Int m.must_cross);
      ("may_cross", Json.Int m.may_cross);
      ("pred_copy_rate", Json.Float m.pred_copy_rate);
      ("bound_copy_rate", Json.Float m.bound_copy_rate);
      ("pred_hops", Json.Int m.pred_hops);
      ("pred_latency", Json.Int m.pred_latency);
      ("load", Json.List (Array.to_list (Array.map (fun c -> Json.Int c) m.load)));
      ("unplaced", Json.Int m.unplaced);
      ("imbalance", Json.Float m.imbalance);
      ("peak_live", Json.Int m.peak_live);
      ("max_block_uops", Json.Int m.max_block_uops);
      ("max_srcs", Json.Int m.max_srcs);
      ("iterations", Json.Int m.iterations);
    ]
