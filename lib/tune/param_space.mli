(** Typed description of the steering/compiler parameter space the
    auto-tuner searches.

    A space is an ordered list of parameters, each with a finite,
    ordered menu of values; a {e candidate} is one value-index per
    parameter (an [int array] the search drivers can enumerate,
    perturb and hash without knowing what the values mean).
    {!materialize} turns a candidate into the
    {!Clusteer.Configuration.t} to run and the
    {!Clusteer.Configuration.params} record to run it with — that
    record is the single source of truth for what each knob does
    (units, defaults, paper references); this module only picks points
    from it.

    Three built-in spaces:
    - ["vc"] — the hybrid scheme's knobs: virtual-cluster count,
      {!Clusteer.Configuration.params.remap_threshold},
      {!Clusteer.Configuration.params.crit_min_scale},
      {!Clusteer.Configuration.params.max_chain} and
      {!Clusteer.Configuration.params.region_uops}.
    - ["op"] — the OP baseline's knobs:
      {!Clusteer.Configuration.params.stall_threshold} and
      {!Clusteer.Configuration.params.imbalance_limit}.
    - ["topo"] — machine-level choices: physical cluster count (the
      paper's 2->4 vs 4->4 VC-mapping question), interconnect
      topology kind, plus the remap hysteresis. This space also
      defines the {!machine} a candidate runs on; the other two leave
      the machine to the caller.

    Every space's default candidate reproduces the paper's constants
    exactly ({!Clusteer.Configuration.default_params}; the ["topo"]
    default machine is the 4-cluster p2p baseline). *)

type value = Int of int | Float of float

type param = {
  p_name : string;  (** e.g. ["remap_threshold"] *)
  p_doc : string;  (** one line, with units *)
  p_values : value array;  (** the menu, in sweep order *)
  p_default : int;  (** index of the paper's default in [p_values] *)
}

type t

val name : t -> string
val params : t -> param array

val spaces : t list
(** The built-in spaces, ["vc"] first. *)

val find : string -> (t, [ `Msg of string ]) result
(** Look a space up by name (case-insensitive). *)

val dims : t -> int array
(** Menu size per parameter. *)

val cardinality : t -> int
(** Product of {!dims}: the number of distinct candidates. *)

val default_candidate : t -> int array
(** The paper's configuration as a candidate. *)

val nth : t -> int -> int array
(** Candidate [i] in lexicographic order (first parameter most
    significant). Raises [Invalid_argument] outside
    [\[0, cardinality)]. *)

val validate : t -> int array -> (unit, string) result
(** Arity and per-parameter range check. *)

val bindings : t -> int array -> (string * value) list
(** Parameter name -> chosen value, in space order. *)

val materialize :
  t -> int array -> Clusteer.Configuration.t * Clusteer.Configuration.params
(** The configuration and knob record a candidate denotes. *)

val machine : t -> clusters:int -> int array -> Clusteer_uarch.Config.t
(** The machine a candidate runs on. Spaces without machine-level
    parameters (["vc"], ["op"]) return
    [Clusteer_uarch.Config.default ~clusters] — exactly the machine
    the study built before machine-level spaces existed — so their
    studies stay bit-identical. ["topo"] builds the machine from the
    candidate's cluster count and interconnect kind and ignores
    [clusters]. *)

val label : t -> int array -> string
(** Compact human label, e.g.
    ["vc=2 remap_threshold=8 crit_min_scale=0.15 ..."]. *)

val value_to_string : value -> string
val value_to_json : value -> Clusteer_obs.Json.t

val candidate_to_json : t -> int array -> Clusteer_obs.Json.t
(** [{"indices":[...],"bindings":{...}}] — indices are authoritative
    for decoding; bindings are for humans. *)

val candidate_of_json :
  t -> Clusteer_obs.Json.t -> (int array, string) result
(** Inverse of {!candidate_to_json} (reads ["indices"], validates
    against the space). *)
