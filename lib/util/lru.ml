(* Hash table over an intrusive doubly linked list: [head] is the
   most-recently-used end, [tail] the eviction end. Nodes are never
   shared outside the table, so mutation stays local. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable node_cost : int;
  mutable prev : 'a node option;  (* towards head / MRU *)
  mutable next : 'a node option;  (* towards tail / LRU *)
}

type 'a t = {
  tbl : (string, 'a node) Hashtbl.t;
  budget : int;
  on_evict : string -> 'a -> unit;
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable used : int;
}

let create ?(on_evict = fun _ _ -> ()) ~budget () =
  if budget < 0 then invalid_arg "Lru.create: negative budget";
  {
    tbl = Hashtbl.create 64;
    budget;
    on_evict;
    head = None;
    tail = None;
    used = 0;
  }

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let promote t n =
  if t.head != Some n then begin
    unlink t n;
    push_front t n
  end

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> None
  | Some n ->
      promote t n;
      Some n.value

let peek t key =
  Option.map (fun n -> n.value) (Hashtbl.find_opt t.tbl key)

let mem t key = Hashtbl.mem t.tbl key

let drop t n =
  Hashtbl.remove t.tbl n.key;
  unlink t n;
  t.used <- t.used - n.node_cost

let rec evict_to_budget t =
  if t.used > t.budget then
    match t.tail with
    | None -> ()
    | Some n ->
        drop t n;
        t.on_evict n.key n.value;
        evict_to_budget t

let add t key ~cost value =
  if cost < 0 then invalid_arg "Lru.add: negative cost";
  (match Hashtbl.find_opt t.tbl key with
  | Some n ->
      t.used <- t.used - n.node_cost + cost;
      n.value <- value;
      n.node_cost <- cost;
      promote t n
  | None ->
      let n = { key; value; node_cost = cost; prev = None; next = None } in
      Hashtbl.add t.tbl key n;
      push_front t n;
      t.used <- t.used + cost);
  evict_to_budget t

let remove t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> ()
  | Some n -> drop t n

let length t = Hashtbl.length t.tbl
let cost t = t.used
let budget t = t.budget

let keys t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.key :: acc) n.next
  in
  go [] t.head
