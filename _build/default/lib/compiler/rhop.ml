open Clusteer_isa
open Clusteer_ddg
open Clusteer_graphpart

let weights_of_ddg g =
  let crit = Critical.analyze g in
  let n = Ddg.node_count g in
  (* Node weight 1 per operation: cluster workload is issue-slot
     occupancy, which is what the per-cluster queues bound. *)
  let vwgt = Array.make n 1.0 in
  let edges =
    Array.to_list g.Ddg.succs
    |> List.concat_map
         (List.map (fun (e : Ddg.edge) ->
              let slack =
                min crit.Critical.slack.(e.Ddg.src)
                  crit.Critical.slack.(e.Ddg.dst)
              in
              let weight = 1.0 +. (4.0 /. (1.0 +. float_of_int slack)) in
              (e.Ddg.src, e.Ddg.dst, weight)))
  in
  Wgraph.create ~nv:n ~vwgt ~edges

let assign_region ?(seed = 1) g ~clusters =
  let wg = weights_of_ddg g in
  Multilevel.partition ~seed ~max_imbalance:1.05 ~refine_passes:8 wg ~k:clusters

let compile ~program ~likely ~clusters ?(region_uops = 512) ?(seed = 1) () =
  let annot =
    Annot.create_static ~scheme:"rhop" ~uop_count:program.Program.uop_count
  in
  let regions = Region.build ~program ~likely ~max_uops:region_uops in
  List.iter
    (fun region ->
      let g = Ddg.of_region region in
      let assignment = assign_region ~seed:(seed + region.Region.id) g ~clusters in
      Array.iteri
        (fun node (u : Uop.t) ->
          annot.Annot.cluster_of.(u.Uop.id) <- assignment.(node))
        region.Region.uops)
    regions;
  Annot.validate annot ~clusters;
  annot
