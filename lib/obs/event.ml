type stall_reason =
  | Iq_full
  | Copyq_full
  | Rob_full
  | Lsq_full
  | Regfile
  | Policy
  | Empty

let stall_reason_count = 7

let stall_reason_index = function
  | Iq_full -> 0
  | Copyq_full -> 1
  | Rob_full -> 2
  | Lsq_full -> 3
  | Regfile -> 4
  | Policy -> 5
  | Empty -> 6

let stall_names =
  [| "iq_full"; "copyq_full"; "rob_full"; "lsq_full"; "regfile"; "policy";
     "empty" |]

let stall_reason_name r = stall_names.(stall_reason_index r)

type t =
  | Steer of {
      cycle : int;
      static_id : int;
      cluster : int;
      inflight : int array;
    }
  | Dispatch of {
      cycle : int;
      iseq : int;
      static_id : int;
      cluster : int;
      queue : string;
    }
  | Copy_insert of {
      cycle : int;
      tag : int;
      from_cluster : int;
      to_cluster : int;
      copyq_depth : int;
    }
  | Link_transfer of {
      cycle : int;
      from_cluster : int;
      to_cluster : int;
      latency : int;
    }
  | Stall of { cycle : int; reason : stall_reason }
  | Commit of { cycle : int; iseq : int; cluster : int }
  | Redirect of { cycle : int; resume : int }

let cycle = function
  | Steer { cycle; _ }
  | Dispatch { cycle; _ }
  | Copy_insert { cycle; _ }
  | Link_transfer { cycle; _ }
  | Stall { cycle; _ }
  | Commit { cycle; _ }
  | Redirect { cycle; _ } -> cycle

let name = function
  | Steer _ -> "steer"
  | Dispatch _ -> "dispatch"
  | Copy_insert _ -> "copy"
  | Link_transfer _ -> "link"
  | Stall _ -> "stall"
  | Commit _ -> "commit"
  | Redirect _ -> "redirect"

let to_json ev =
  let base fields = Json.Obj (("ev", Json.Str (name ev)) :: fields) in
  match ev with
  | Steer { cycle; static_id; cluster; inflight } ->
      base
        [
          ("cycle", Json.Int cycle);
          ("uop", Json.Int static_id);
          ("cluster", Json.Int cluster);
          ( "inflight",
            Json.List (Array.to_list (Array.map (fun n -> Json.Int n) inflight))
          );
        ]
  | Dispatch { cycle; iseq; static_id; cluster; queue } ->
      base
        [
          ("cycle", Json.Int cycle);
          ("iseq", Json.Int iseq);
          ("uop", Json.Int static_id);
          ("cluster", Json.Int cluster);
          ("queue", Json.Str queue);
        ]
  | Copy_insert { cycle; tag; from_cluster; to_cluster; copyq_depth } ->
      base
        [
          ("cycle", Json.Int cycle);
          ("tag", Json.Int tag);
          ("from", Json.Int from_cluster);
          ("to", Json.Int to_cluster);
          ("copyq_depth", Json.Int copyq_depth);
        ]
  | Link_transfer { cycle; from_cluster; to_cluster; latency } ->
      base
        [
          ("cycle", Json.Int cycle);
          ("from", Json.Int from_cluster);
          ("to", Json.Int to_cluster);
          ("latency", Json.Int latency);
        ]
  | Stall { cycle; reason } ->
      base
        [
          ("cycle", Json.Int cycle);
          ("reason", Json.Str (stall_reason_name reason));
        ]
  | Commit { cycle; iseq; cluster } ->
      base
        [
          ("cycle", Json.Int cycle);
          ("iseq", Json.Int iseq);
          ("cluster", Json.Int cluster);
        ]
  | Redirect { cycle; resume } ->
      base [ ("cycle", Json.Int cycle); ("resume", Json.Int resume) ]

let pp ppf ev = Format.pp_print_string ppf (Json.to_string (to_json ev))
