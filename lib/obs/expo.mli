(** Prometheus-style text exposition of a {!Counters} registry.

    Deterministic rendering for the metrics endpoint: counters first,
    then histograms, each name-sorted. A counter becomes

    {v
    # TYPE serve_requests counter
    serve_requests 42
    v}

    and a histogram becomes the cumulative-bucket form (the [le] bound
    of power-of-two bucket [i] is its largest covered value,
    [2^(i+1)-2]) followed by a gauge family of interpolated quantiles:

    {v
    # TYPE serve_latency_us histogram
    serve_latency_us_bucket{le="0"} 3
    serve_latency_us_bucket{le="+Inf"} 10
    serve_latency_us_sum 1234
    serve_latency_us_count 10
    # TYPE serve_latency_us_quantile gauge
    serve_latency_us_quantile{q="0.5"} 1.5
    v}

    The output is a pure function of the registry contents — the
    golden test pins the exact bytes. *)

val metric_name : string -> string
(** Deterministic name mangling: every character outside
    [\[a-zA-Z0-9_\]] becomes ['_'] (so ["serve.cache.hits"] renders as
    ["serve_cache_hits"]). *)

val render : Counters.registry -> string
(** The full exposition document, one sample per line, trailing
    newline included. *)

val render_to_buffer : Buffer.t -> Counters.registry -> unit
