test/test_ddg.ml: Alcotest Array Block Clusteer_ddg Clusteer_isa Critical Ddg Hashtbl List Opcode Program QCheck QCheck_alcotest Reg Region Uop
