open Clusteer_isa
open Clusteer_ddg

(* Single source of truth for chain structure: a chain starts when the
   VC id changes (paper Figure 3) or, under a positive [max_chain],
   when the current chain has already reached the cap. Unassigned
   micro-ops (vc = -1) break runs and never start chains. *)
let iter_chain_starts ?(max_chain = 0) ~vc_of (region : Region.t) f =
  let prev_vc = ref (-2) and len = ref 0 in
  Array.iter
    (fun (u : Uop.t) ->
      let id = u.Uop.id in
      let vc = vc_of id in
      let start =
        vc <> -1 && (vc <> !prev_vc || (max_chain > 0 && !len >= max_chain))
      in
      if vc = -1 then len := 0 else if start then len := 1 else incr len;
      f id ~vc ~start;
      prev_vc := vc)
    region.Region.uops

let mark_region ?max_chain annot (region : Region.t) =
  iter_chain_starts ?max_chain
    ~vc_of:(fun id -> annot.Annot.vc_of.(id))
    region
    (fun id ~vc:_ ~start -> annot.Annot.leader.(id) <- start)

let chains_of_region ?max_chain annot (region : Region.t) =
  let chains = ref [] and current = ref [] in
  iter_chain_starts ?max_chain
    ~vc_of:(fun id -> annot.Annot.vc_of.(id))
    region
    (fun id ~vc ~start ->
      if (start || vc = -1) && !current <> [] then begin
        chains := List.rev !current :: !chains;
        current := []
      end;
      if vc <> -1 then current := id :: !current);
  if !current <> [] then chains := List.rev !current :: !chains;
  List.rev !chains
