lib/uarch/energy.mli: Stats
