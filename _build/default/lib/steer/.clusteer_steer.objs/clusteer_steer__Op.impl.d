lib/steer/op.ml: Array Clusteer_isa Clusteer_trace Clusteer_uarch Clusteer_util Fun List Opcode Policy Uop
