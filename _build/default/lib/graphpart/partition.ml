type t = int array

let parts t = Array.fold_left (fun acc p -> max acc (p + 1)) 0 t

let edge_cut g t =
  Wgraph.fold_edges
    (fun a b w acc -> if t.(a) <> t.(b) then acc +. w else acc)
    g 0.0

let part_weights g t ~k =
  let weights = Array.make k 0.0 in
  Array.iteri
    (fun node part -> weights.(part) <- weights.(part) +. Wgraph.node_weight g node)
    t;
  weights

let imbalance g t ~k =
  let weights = part_weights g t ~k in
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then 1.0
  else
    let ideal = total /. float_of_int k in
    Array.fold_left Float.max 0.0 weights /. ideal

let validate t ~k =
  Array.iteri
    (fun i p ->
      if p < 0 || p >= k then
        invalid_arg (Printf.sprintf "Partition.validate: node %d in part %d" i p))
    t
