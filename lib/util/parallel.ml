(* The default domain count is capped: experiment sweeps are
   memory-bandwidth heavy and more than [default_domain_cap] domains
   has never paid for itself on the machines we run on. The cap only
   applies to the *default*; an explicit [~domains] is honoured as
   given. *)
let default_domain_cap = 8

let default_domains () = min default_domain_cap (Domain.recommended_domain_count ())

let map ?domains ?(chunk = 1) f xs =
  if chunk < 1 then invalid_arg "Parallel.map: chunk must be positive";
  let domains =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  let input = Array.of_list xs in
  let n = Array.length input in
  if domains <= 1 || n <= 1 then List.map f xs
  else begin
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let rec loop () =
        let start = Atomic.fetch_and_add cursor chunk in
        if start < n && Atomic.get failure = None then begin
          let stop = min n (start + chunk) in
          (try
             for i = start to stop - 1 do
               results.(i) <- Some (f input.(i))
             done
           with e ->
             (* First failure wins; keep its backtrace so the caller
                sees where the worker actually died. *)
             let bt = Printexc.get_raw_backtrace () in
             ignore (Atomic.compare_and_set failure None (Some (e, bt))));
          loop ()
        end
      in
      loop ()
    in
    let helpers =
      List.init (min (domains - 1) (n - 1)) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join helpers;
    (match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list
      (Array.map
         (function Some v -> v | None -> assert false)
         results)
  end
