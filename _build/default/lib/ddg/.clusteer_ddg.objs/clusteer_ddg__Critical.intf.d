lib/ddg/critical.mli: Ddg
