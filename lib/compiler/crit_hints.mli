(** Criticality hints: per-micro-op "is on a critical path" bits.

    Implements the information a criticality predictor would provide
    at run time (Salverda & Zilles, MICRO-38 — the paper's [24] — study
    steering under criticality information without committing to an
    implementation). We compute it at compile time from region DDG
    slack, which acts as an oracle-ish upper bound for such predictors;
    the {!Clusteer_steer.Crit} policy consumes it. *)

open Clusteer_isa

val compute :
  program:Program.t ->
  likely:(int -> int option) ->
  ?region_uops:int ->
  ?slack_threshold:int ->
  unit ->
  bool array
(** [compute ~program ~likely ()] marks every static micro-op whose
    slack within its region DDG is at most [slack_threshold] (unit:
    cycles of estimated schedule slack, {!Clusteer_ddg.Critical};
    default 0, i.e. exactly the critical paths — larger values widen
    the "critical" set). [region_uops] (unit: static micro-ops,
    default 512) is the same region budget the partitioning passes
    use. Both are swept by the auto-tuner through
    [Clusteer.Configuration.params]. *)
