lib/compiler/rhop.mli: Annot Clusteer_ddg Clusteer_graphpart Clusteer_isa Program
