lib/ddg/ddg.mli: Clusteer_isa Region Uop
