open Clusteer_isa
open Clusteer_ddg

(* Critical instructions should chase their producers regardless of
   contention; fully slack instructions should fill the lightest VC.
   Map slack ratio in [0,1] to a contention scale in [min_scale, 1].
   [min_scale] is the placement criticality weight: at 0 a zero-slack
   instruction ignores contention entirely and always follows its
   producers; at 1 criticality is ignored and every instruction is
   priced purely on completion time (§4.2's behaviour disabled). *)
let contention_scale_of_slack ?(min_scale = 0.15) crit =
  let max_slack =
    Array.fold_left max 1 crit.Critical.slack |> float_of_int
  in
  fun node ->
    let ratio = float_of_int crit.Critical.slack.(node) /. max_slack in
    min_scale +. ((1.0 -. min_scale) *. ratio)

(* Step 1 of Fig. 2 applied literally: nodes are partitioned "according
   to different critical paths" — one seed path per virtual cluster.
   Each seed is a maximal chain grown through the most critical
   unclaimed node, following the highest-criticality unclaimed
   neighbour in both directions. With as many VCs as truly independent
   paths this is harmless; with more VCs than the DDG has independent
   critical paths, overlapping paths are torn apart — the very
   behaviour §5.4 blames for VC(4→4)'s extra copies. *)
let seed_critical_paths g crit ~virtual_clusters =
  let n = Ddg.node_count g in
  let forced = Array.make n (-1) in
  let most_critical_unclaimed () =
    let best = ref (-1) in
    for i = 0 to n - 1 do
      if
        forced.(i) = -1
        && (!best = -1
           || crit.Critical.criticality.(i) > crit.Critical.criticality.(!best))
      then best := i
    done;
    !best
  in
  for vc = 0 to virtual_clusters - 1 do
    let seed = most_critical_unclaimed () in
    if seed >= 0 then begin
      forced.(seed) <- vc;
      (* grow the path backward along the most critical unclaimed
         predecessors, then forward along successors *)
      let rec backward node =
        let best = ref (-1) in
        List.iter
          (fun (e : Ddg.edge) ->
            let p = e.Ddg.src in
            if
              forced.(p) = -1
              && (!best = -1
                 || crit.Critical.criticality.(p)
                    > crit.Critical.criticality.(!best))
            then best := p)
          g.Ddg.preds.(node);
        if !best >= 0 then begin
          forced.(!best) <- vc;
          backward !best
        end
      in
      let rec forward node =
        let best = ref (-1) in
        List.iter
          (fun (e : Ddg.edge) ->
            let s = e.Ddg.dst in
            if
              forced.(s) = -1
              && (!best = -1
                 || crit.Critical.criticality.(s)
                    > crit.Critical.criticality.(!best))
            then best := s)
          g.Ddg.succs.(node);
        if !best >= 0 then begin
          forced.(!best) <- vc;
          forward !best
        end
      in
      backward seed;
      forward seed
    end
  done;
  forced

let assign_region g ~virtual_clusters ?(issue_width = 2.0)
    ?(comm_latency = 1.0) ?crit_min_scale () =
  let crit = Critical.analyze g in
  let est =
    Estimate.create ~parts:virtual_clusters ~issue_width ~comm_latency
      ~contention_scale:(contention_scale_of_slack ?min_scale:crit_min_scale
                           crit)
      g
  in
  let forced = seed_critical_paths g crit ~virtual_clusters in
  let n = Ddg.node_count g in
  let assignment = Array.make n 0 in
  Array.iter
    (fun node ->
      let target =
        if forced.(node) >= 0 then forced.(node)
        else begin
          let best = ref 0 and best_cost = ref infinity in
          for vc = 0 to virtual_clusters - 1 do
            let cost = Estimate.estimate est ~node ~part:vc in
            if
              cost < !best_cost
              || cost = !best_cost
                 && Estimate.load est vc < Estimate.load est !best
            then begin
              best := vc;
              best_cost := cost
            end
          done;
          !best
        end
      in
      Estimate.place est ~node ~part:target;
      assignment.(node) <- target)
    (Ddg.topological_order g);
  assignment

let compile ~program ~likely ~virtual_clusters ?(region_uops = 512)
    ?(issue_width = 2.0) ?(comm_latency = 1.0) ?crit_min_scale ?max_chain () =
  let annot =
    Annot.create_virtual ~scheme:"vc" ~virtual_clusters
      ~uop_count:program.Program.uop_count
  in
  let regions = Region.build ~program ~likely ~max_uops:region_uops in
  List.iter
    (fun region ->
      let g = Ddg.of_region region in
      let assignment =
        assign_region g ~virtual_clusters ~issue_width ~comm_latency
          ?crit_min_scale ()
      in
      Array.iteri
        (fun node (u : Uop.t) ->
          annot.Annot.vc_of.(u.Uop.id) <- assignment.(node))
        region.Region.uops;
      Chains.mark_region ?max_chain annot region)
    regions;
  Annot.validate annot ~clusters:1;
  annot
