(** OB: operation-based static placement, the software half of SPDI
    ("static placement, dynamic issue", Nagarajan et al., PACT'04 —
    paper §3.2 and Table 3).

    Per region, instructions are placed greedily in program order onto
    *physical* clusters, minimizing the statically estimated completion
    time; the hardware later issues them dynamically but never revisits
    the placement. Its weakness — the reason the hybrid beats it — is
    that the static contention estimate stands in for true runtime
    workload. *)

open Clusteer_isa

val assign_region :
  Clusteer_ddg.Ddg.t -> clusters:int -> issue_width:float -> int array
(** Placement (node -> cluster) for one region DDG. *)

val compile :
  program:Program.t ->
  likely:(int -> int option) ->
  clusters:int ->
  ?region_uops:int ->
  ?issue_width:float ->
  unit ->
  Annot.t
(** Run region formation and placement over a whole program, producing
    a static-cluster annotation (scheme ["ob"]). *)
