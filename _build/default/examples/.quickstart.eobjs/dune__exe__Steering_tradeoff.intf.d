examples/steering_tradeoff.mli:
