(** Benchmark profiles: the parameter vector from which a synthetic
    SPEC CPU2000 stand-in is generated.

    The real benchmarks are unavailable (proprietary binaries, traced
    with Intel tooling); what steering behaviour actually depends on is
    the *shape* of the dynamic instruction stream — instruction mix,
    dependence-chain structure (ILP), memory footprint and regularity,
    and branch predictability. Each profile pins those per benchmark,
    from the well-documented character of the suite (e.g. mcf =
    pointer-chasing and memory-bound, swim = long regular FP loop
    nests, gcc = branchy with a large footprint). *)

type suite = Spec_int | Spec_fp

type t = {
  name : string;  (** paper's trace-point name, e.g. ["164.gzip-1"] *)
  suite : suite;
  seed : int;  (** master seed; all phases derive from it *)
  (* Instruction mix *)
  fp_ratio : float;  (** fraction of compute micro-ops that are FP *)
  mem_ratio : float;  (** fraction of all micro-ops that are loads/stores *)
  (* Dependence structure *)
  ilp : int;  (** number of independent dependence chains (DDG width) *)
  chain_len : int;  (** micro-ops before a chain is restarted *)
  (* Memory behaviour *)
  footprint_kb : int;  (** working-set size *)
  stride_frac : float;  (** fraction of streams that are sequential *)
  chase_frac : float;  (** fraction of streams that are pointer chases *)
  (* Control behaviour *)
  loops : int;  (** number of loop nests in the CFG *)
  block_size : int;  (** average micro-ops per basic block *)
  loop_trip : int;  (** typical inner-loop trip count *)
  hard_branch_frac : float;  (** fraction of data-dependent 50/50 branches *)
  phases : int;  (** PinPoints-style simulation points, <= 10 *)
}

val validate : t -> unit
val suite_name : suite -> string
