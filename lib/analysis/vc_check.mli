(** Virtual-cluster partition invariants (paper §4.2).

    The hybrid scheme's contract is that chains are maximal program-order
    runs of same-VC micro-ops within a region and that exactly the first
    micro-op of each chain carries the leader mark — that is what lets
    the hardware remap a VC only at chain boundaries. These checks
    re-derive chain structure independently from the annotation and the
    region decomposition and compare.

    Codes:
    - [VC001] — ragged annotation arrays (lengths disagree with the
      program's uop count). Reported alone: later checks need aligned
      arrays to be meaningful.
    - [VC002] — a vc id outside [\[0, virtual_clusters)].
    - [VC003] — a micro-op left unassigned by a VC scheme.
    - [VC004] — a leader mark on a micro-op with no VC.
    - [VC005] — a chain's first micro-op is missing the leader mark.
    - [VC006] — a leader mark in the middle of a chain.
    - [VC007] (info) — a virtual cluster with no micro-ops.
    - [VC008] — a claimed partition summary disagrees with the
      independently recomputed one (chain count, cut cost, population).
    - [VC009] (info) — a VC's micro-ops within one region do not form a
      connected DDG subgraph (the chain mechanism still works, but such
      a VC groups unrelated code).
    - [VC010] (warning) — more virtual clusters than static micro-ops:
      a partition with more parts than elements can never populate every
      VC, so the request almost certainly mis-sized [vcN]. *)

open Clusteer_isa
module Compiler = Clusteer_compiler

val codes : string list

val check :
  program:Program.t ->
  likely:(int -> int option) ->
  annot:Annot.t ->
  ?region_uops:int ->
  ?max_chain:int ->
  unit ->
  Diag.t list
(** Structural checks VC001–VC007, VC009 and VC010. The annotation
    must be a virtual-cluster one ([virtual_clusters > 0]).

    [max_chain] (micro-ops, default 0 = unlimited) must match the
    chain-length cap the annotation was compiled with: the VC005/VC006
    leader recomputation goes through the same
    {!Clusteer_compiler.Chains.iter_chain_starts} iterator as the
    compiler, so a capped annotation checked with the wrong cap is
    reported as VC005/VC006 drift. *)

val check_summary :
  program:Program.t ->
  likely:(int -> int option) ->
  annot:Annot.t ->
  claimed:Compiler.Diagnostics.t ->
  ?region_uops:int ->
  unit ->
  Diag.t list
(** [VC008]: recompute the partition summary from scratch and flag any
    field where [claimed] disagrees. *)
