type t =
  | Strided of { base : int; stride : int; footprint : int }
  | Uniform of { base : int; footprint : int; granule : int }
  | Chase of { base : int; footprint : int }

type state = {
  models : t array;
  cursor : int array;  (* per-stream position / last address *)
  rng : Clusteer_util.Rng.t;
}

let validate = function
  | Strided { stride; footprint; _ } ->
      if stride = 0 then invalid_arg "Mem_model: zero stride";
      if footprint <= 0 then invalid_arg "Mem_model: footprint must be positive"
  | Uniform { footprint; granule; _ } ->
      if footprint <= 0 then invalid_arg "Mem_model: footprint must be positive";
      if granule <= 0 then invalid_arg "Mem_model: granule must be positive"
  | Chase { footprint; _ } ->
      if footprint < 8 then invalid_arg "Mem_model: chase footprint too small"

let make_state models ~seed =
  Array.iter validate models;
  {
    models;
    cursor = Array.make (Array.length models) 0;
    rng = Clusteer_util.Rng.create seed;
  }

let reset st = Array.fill st.cursor 0 (Array.length st.cursor) 0

(* Cheap invertible scramble keeping chase walks inside the footprint
   while making consecutive addresses cache-unfriendly. *)
let scramble x = (x * 2654435761) land max_int

let next_address st id =
  match st.models.(id) with
  | Strided { base; stride; footprint } ->
      let off = st.cursor.(id) in
      let addr = base + off in
      let off' = off + stride in
      st.cursor.(id) <-
        (if off' < 0 then off' + footprint else off' mod footprint);
      addr
  | Uniform { base; footprint; granule } ->
      (* 80/20 temporal locality: most accesses hit a hot subset (a
         sixteenth of the footprint, at least 4KB), the rest roam the
         whole working set — real programs reuse data heavily even in
         their "random" access phases. *)
      let hot = min footprint (max 4096 (footprint / 16)) in
      let window =
        if Clusteer_util.Rng.bernoulli st.rng 0.8 then hot else footprint
      in
      let slots = max 1 (window / granule) in
      base + (Clusteer_util.Rng.int st.rng slots * granule)
  | Chase { base; footprint } ->
      let slots = max 1 (footprint / 8) in
      let cur = st.cursor.(id) in
      let nxt = scramble (cur + 1) mod slots in
      st.cursor.(id) <- nxt;
      base + (nxt * 8)

let extent = function
  | Strided { base; footprint; _ }
  | Uniform { base; footprint; _ }
  | Chase { base; footprint } ->
      (base, footprint)

let describe = function
  | Strided { stride; footprint; _ } ->
      Printf.sprintf "strided(%d,%dB)" stride footprint
  | Uniform { footprint; _ } -> Printf.sprintf "uniform(%dB)" footprint
  | Chase { footprint; _ } -> Printf.sprintf "chase(%dB)" footprint
