open Clusteer_isa
open Clusteer_uarch
open Clusteer_trace

let least_loaded view =
  let best = ref 0 in
  for c = 1 to view.Policy.clusters - 1 do
    if view.Policy.inflight c < view.Policy.inflight !best then best := c
  done;
  !best

let make ?(remap_threshold = 8) ~annot ~clusters () =
  if annot.Annot.virtual_clusters <= 0 then
    invalid_arg "Vc_map.make: annotation has no virtual clusters";
  let table =
    Array.init annot.Annot.virtual_clusters (fun v -> v mod clusters)
  in
  let decide view duop =
    let id = Dynuop.static_id duop in
    let vc = annot.Annot.vc_of.(id) in
    if vc < 0 then Policy.Dispatch_to (least_loaded view)
    else begin
      (* At a chain leader the workload counters are consulted; the VC
         is remapped only when its current cluster is ahead of the
         least-loaded one by more than the threshold — the hysteresis
         keeps consecutive chains of a VC together unless the
         imbalance is worth a remap. *)
      if annot.Annot.leader.(id) then begin
        let best = least_loaded view in
        let cur = table.(vc) in
        if
          view.Policy.inflight cur - view.Policy.inflight best
          > remap_threshold
        then table.(vc) <- best
      end;
      Policy.Dispatch_to table.(vc)
    end
  in
  {
    Policy.name = "vc";
    decide;
    uses_dependence_check = false;
    uses_vote_unit = false;
  }
