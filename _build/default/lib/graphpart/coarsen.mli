(** Coarsening step of multilevel partitioning: heavy-edge matching.

    Unmatched nodes pair with the unmatched neighbour joined by the
    heaviest edge; each matched pair collapses into one coarse node
    whose weight is the pair's sum. Heavier edges correspond to more
    critical dependences, so the coarsening "tends to group the
    operations on the critical path together" (paper §3.3 on RHOP). *)

type level = {
  graph : Wgraph.t;  (** the coarse graph *)
  map : int array;  (** fine node -> coarse node *)
}

val step : ?seed:int -> ?max_node_weight:float -> Wgraph.t -> level
(** One round of heavy-edge matching. When no edge can be matched the
    coarse graph equals the input (identity map). [seed] randomises the
    visit order (default 1). [max_node_weight] (default unlimited)
    refuses matches whose merged weight would exceed it, keeping
    coarse nodes small enough for a balanced initial partition. *)

val project : level -> Partition.t -> Partition.t
(** Pull a partition of the coarse graph back to the finer graph. *)
