(** First-order energy accounting.

    Clustered microarchitectures exist for "power, thermal and
    complexity" reasons (paper §1): smaller per-cluster structures are
    cheaper per access, but inter-cluster copies add events. This
    module turns a run's event counts into an energy estimate using
    per-event costs so those trade-offs can be compared across steering
    schemes. Costs are in arbitrary normalized units (an ALU operation
    = 1.0); the defaults follow the usual CACTI-style intuition that
    access cost grows with structure size, halved structures cost
    ~60-70% per access, and DRAM accesses dominate. *)

type costs = {
  dispatch : float;  (** rename + steer, per micro-op *)
  issue : float;  (** wakeup-select + register read, per issued micro-op *)
  execute : float;  (** per micro-op (ALU-equivalent) *)
  copy : float;  (** copy micro-op incl. link traversal *)
  l1_access : float;
  l2_access : float;
  memory_access : float;
  commit : float;
  static_per_cycle : float;
      (** leakage + clock for the whole backend, per cycle *)
}

val default_costs : clusters:int -> costs
(** Per-access costs shrink as the cluster count grows (smaller issue
    queues and register files); static power is independent of the
    cluster count (same total resources). *)

type breakdown = {
  dynamic : float;
  static_ : float;
  copies : float;  (** the part of [dynamic] caused by copy micro-ops *)
  total : float;
  per_uop : float;  (** total / committed micro-ops *)
}

val estimate : ?costs:costs -> clusters:int -> Stats.t -> breakdown
