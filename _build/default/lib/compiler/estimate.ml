open Clusteer_ddg

type t = {
  g : Ddg.t;
  parts : int;
  issue_width : float;
  comm_latency : float;
  contention_scale : int -> float;
  part_of : int array;
  completion : float array;
  busy : float array;  (* per part: estimated next free issue slot *)
  work : float array;  (* per part: accumulated latency (balance metric) *)
}

let create ~parts ~issue_width ~comm_latency ?(contention_scale = fun _ -> 1.0)
    g =
  if parts <= 0 then invalid_arg "Estimate.create: parts must be positive";
  if issue_width <= 0.0 then
    invalid_arg "Estimate.create: issue width must be positive";
  {
    g;
    parts;
    issue_width;
    comm_latency;
    contention_scale;
    part_of = Array.make (Ddg.node_count g) (-1);
    completion = Array.make (Ddg.node_count g) 0.0;
    busy = Array.make parts 0.0;
    work = Array.make parts 0.0;
  }

let ready_time t ~node ~part =
  List.fold_left
    (fun acc (e : Ddg.edge) ->
      let p = e.Ddg.src in
      if t.part_of.(p) = -1 then
        invalid_arg "Estimate: predecessor not yet placed";
      let comm = if t.part_of.(p) = part then 0.0 else t.comm_latency in
      Float.max acc (t.completion.(p) +. comm))
    0.0
    t.g.Ddg.preds.(node)

(* Issue start time: the instruction begins when its operands are ready
   and an issue slot frees up. [contention_scale] lets critical nodes
   discount the queueing delay — they should chase their producers even
   into a busy part, which is how critical dependence chains stay
   whole (paper §5.3). *)
let start_time t ~node ~part =
  let ready = ready_time t ~node ~part in
  let busy = t.busy.(part) in
  if busy <= ready then ready
  else ready +. ((busy -. ready) *. t.contention_scale node)

let estimate t ~node ~part =
  if part < 0 || part >= t.parts then invalid_arg "Estimate.estimate: part";
  start_time t ~node ~part
  +. float_of_int (Ddg.static_latency t.g.Ddg.uops.(node))

let place t ~node ~part =
  if part < 0 || part >= t.parts then invalid_arg "Estimate.place: part";
  if t.part_of.(node) <> -1 then invalid_arg "Estimate.place: already placed";
  let start = Float.max (ready_time t ~node ~part) t.busy.(part) in
  let finish =
    start +. float_of_int (Ddg.static_latency t.g.Ddg.uops.(node))
  in
  t.part_of.(node) <- part;
  t.completion.(node) <- finish;
  (* Each placed op consumes one issue slot of the part. *)
  t.busy.(part) <- start +. (1.0 /. t.issue_width);
  t.work.(part) <-
    t.work.(part) +. float_of_int (Ddg.static_latency t.g.Ddg.uops.(node))

let part_of t node = t.part_of.(node)
let completion t node = t.completion.(node)
let load t part = t.work.(part)

let lightest_part t =
  let best = ref 0 in
  for p = 1 to t.parts - 1 do
    if t.work.(p) < t.work.(!best) then best := p
  done;
  !best
