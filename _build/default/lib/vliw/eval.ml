open Clusteer_ddg

type mode = Unified | Fixed of (Ddg.t -> int array)

type summary = {
  regions : int;
  ops : int;
  cycles : int;
  moves : int;
  static_ipc : float;
}

let run machine ~program ~likely ?(region_uops = 512) mode =
  let regions = Region.build ~program ~likely ~max_uops:region_uops in
  let totals =
    List.fold_left
      (fun (nregions, ops, cycles, moves) region ->
        let g = Ddg.of_region region in
        if Ddg.node_count g = 0 then (nregions, ops, cycles, moves)
        else begin
          let schedule =
            match mode with
            | Unified -> List_sched.unified machine g
            | Fixed assign ->
                List_sched.with_assignment machine g ~assignment:(assign g)
          in
          Schedule.validate schedule g machine;
          ( nregions + 1,
            ops + Ddg.node_count g,
            cycles + schedule.Schedule.length,
            moves + schedule.Schedule.moves )
        end)
      (0, 0, 0, 0) regions
  in
  let nregions, ops, cycles, moves = totals in
  {
    regions = nregions;
    ops;
    cycles;
    moves;
    static_ipc =
      (if cycles = 0 then 0.0 else float_of_int ops /. float_of_int cycles);
  }
