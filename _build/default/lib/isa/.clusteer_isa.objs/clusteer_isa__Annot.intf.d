lib/isa/annot.mli:
