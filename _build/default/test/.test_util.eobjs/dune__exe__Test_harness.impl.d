test/test_harness.ml: Alcotest Clusteer Clusteer_harness Clusteer_uarch Clusteer_workloads Config Filename Lazy List Pinpoints Profile Spec2000 Stats String Sys
