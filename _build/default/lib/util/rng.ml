type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 finalizer (Steele et al., "Fast splittable pseudorandom
   number generators"). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = int64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's 63-bit native int without
     wrapping negative. *)
  let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  r mod bound

let float t bound =
  (* 53 random bits scaled into [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  let unit = float_of_int bits *. (1.0 /. 9007199254740992.0) in
  unit *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let bernoulli t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let geometric t p =
  let p = if p < 1e-9 then 1e-9 else p in
  let rec loop n = if bernoulli t p then n else loop (n + 1) in
  loop 0

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let pick_weighted t a =
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 a in
  if total <= 0.0 then invalid_arg "Rng.pick_weighted: weights sum to zero";
  let target = float t total in
  let rec loop i acc =
    if i = Array.length a - 1 then fst a.(i)
    else
      let acc = acc +. snd a.(i) in
      if target < acc then fst a.(i) else loop (i + 1) acc
  in
  loop 0 0.0

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let gaussian t ~mean ~stddev =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 1e-12 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (stddev *. z)
