(** Gshare branch predictor.

    The paper does not specify its predictor; any reasonable one works
    because all configurations share the front-end. We use gshare with
    a 2-bit-counter table indexed by global history xor the static
    micro-op id (the PC surrogate of a trace-driven model). *)

type t

val create : bits:int -> t
(** [bits] sets both history length and table index width. *)

val predict : t -> pc:int -> bool
(** Taken/not-taken prediction; does not update state. *)

val update : t -> pc:int -> taken:bool -> unit
(** Train the counter and shift the history with the real outcome. *)

val lookups : t -> int
val mispredicts : t -> int
val accuracy : t -> float
val reset_stats : t -> unit

val reset : t -> unit
(** Back to the post-{!create} state: counters weakly-taken, history
    and statistics cleared. Used by engine reuse across runs. *)
