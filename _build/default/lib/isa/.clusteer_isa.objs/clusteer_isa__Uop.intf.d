lib/isa/uop.mli: Format Opcode Reg
