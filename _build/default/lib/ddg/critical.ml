type t = {
  depth : int array;
  height : int array;
  criticality : int array;
  slack : int array;
  length : int;
}

let analyze (g : Ddg.t) =
  let n = Ddg.node_count g in
  let depth = Array.make n 0 in
  let height = Array.make n 0 in
  (* Forward pass: edges point from lower to higher indices, so a
     single program-order sweep is a topological traversal. *)
  for i = 0 to n - 1 do
    List.iter
      (fun (e : Ddg.edge) ->
        depth.(e.Ddg.dst) <- max depth.(e.Ddg.dst) (depth.(i) + e.Ddg.latency))
      g.Ddg.succs.(i)
  done;
  (* Backward pass for heights (inclusive of own latency). *)
  for i = n - 1 downto 0 do
    let own = Ddg.static_latency g.Ddg.uops.(i) in
    height.(i) <-
      List.fold_left
        (fun acc (e : Ddg.edge) -> max acc (own + height.(e.Ddg.dst)))
        own g.Ddg.succs.(i)
  done;
  let criticality = Array.init n (fun i -> depth.(i) + height.(i)) in
  let length = Array.fold_left max 0 criticality in
  let slack = Array.map (fun c -> length - c) criticality in
  { depth; height; criticality; slack; length }

let critical_nodes t =
  let acc = ref [] in
  for i = Array.length t.slack - 1 downto 0 do
    if t.slack.(i) = 0 then acc := i :: !acc
  done;
  !acc

let critical_path (g : Ddg.t) t =
  match List.find_opt (fun i -> t.slack.(i) = 0) (Ddg.roots g) with
  | None -> []
  | Some root ->
      let rec follow node acc =
        let next =
          List.find_opt (fun (e : Ddg.edge) -> t.slack.(e.Ddg.dst) = 0)
            g.Ddg.succs.(node)
        in
        match next with
        | Some e -> follow e.Ddg.dst (e.Ddg.dst :: acc)
        | None -> List.rev acc
      in
      follow root [ root ]
