(** The cycle-level clustered out-of-order engine.

    Models the baseline of paper §2 (Figure 1): a monolithic front-end
    (fetch pipeline, gshare predictor, in-order decode/rename/steer)
    feeding [clusters] back-end clusters, each with INT/FP/COPY issue
    queues, age-ordered wakeup-select, and functional units; clusters
    exchange register values over dedicated 1-cycle point-to-point
    links via explicit copy micro-ops; a unified LSQ and two-level
    data-cache hierarchy sit behind the clusters.

    The engine is trace-driven: it consumes a dynamic micro-op stream
    (all steering schemes see the identical stream) and charges
    mispredicted branches as front-end redirect stalls.

    Modelling notes (documented deviations): copy micro-ops occupy the
    24-entry per-cluster COPY queues and link bandwidth but not ROB
    slots; physical register file capacity (256/cluster, never binding
    next to a 512-entry ROB) is not enforced. *)

open Clusteer_isa
open Clusteer_trace

type t

val create :
  config:Config.t ->
  annot:Annot.t ->
  policy:Policy.t ->
  ?prewarm:(int * int) list ->
  ?obs:Clusteer_obs.Sink.t ->
  ?registry:Clusteer_obs.Counters.registry ->
  ?profile:Clusteer_obs.Profile.t ->
  unit ->
  t
(** Fresh machine state. [annot] is the compiler side-channel the
    policy may consult. [prewarm] lists [(base, bytes)] data ranges to
    pre-load into the cache hierarchy, restoring the warmed state a
    checkpointed simulation point starts from. [registry] receives the
    engine's introspection instruments (default
    {!Clusteer_obs.Counters.default}); the parallel harness passes a
    per-shard registry so concurrent engines never intern into shared
    state.

    [obs] installs an observability sink: the engine then emits
    structured events (steer decisions with per-cluster occupancy,
    dispatches, copy insertions, link transfers, attributed stalls,
    commits, mispredict redirects) and, when the sink's [interval] is
    positive, a cumulative statistics snapshot every [interval]
    measured cycles. Events are stamped in measured time — the 1-based
    cycle index of the statistics, which restarts at the warmup reset —
    so timestamps line up with the interval samples and the final
    cycle counts. Without a sink every emission site is a single
    pattern match that allocates nothing; simulated behaviour and the
    final {!Stats.t} are identical to an uninstrumented run.

    [profile] attaches the pipeline self-profiler: each {!run} then
    contributes one observation of per-phase wall nanoseconds
    (fetch/dispatch/issue/writeback/commit) to the profiler's
    [profile.engine.*.ns] histograms. Like [obs], [None] leaves every
    instrumentation site a single pattern match — disabled profiling
    costs nothing and changes nothing. *)

val reset :
  ?prewarm:(int * int) list ->
  ?obs:Clusteer_obs.Sink.t ->
  t ->
  annot:Annot.t ->
  policy:Policy.t ->
  unit
(** Return the engine to the post-{!create} state on the {b same}
    machine configuration, installing a new annotation/policy pair
    (and optionally a new sink / prewarm ranges). Every piece of
    microarchitectural state — caches, predictor, trace cache, rename
    tags, queues, scoreboards, statistics — is re-initialised in
    place, so a run after [reset] is bit-identical to a run on a
    freshly created engine, without re-allocating the (large) machine
    structures. This is what lets the parallel harness keep one engine
    per (domain × configuration) alive across simulation points. The
    counter registry and self-profiler bindings made at {!create} time
    are retained.

    Note the engine's {!Stats.t} is reset in place: callers that keep
    results across a reset must {!Stats.copy} them first (the harness
    does). *)

val set_sink : t -> Clusteer_obs.Sink.t option -> unit
(** Install or remove the observability sink mid-run (e.g. to skip the
    warmup phase). *)

val run : ?warmup:int -> t -> source:(unit -> Dynuop.t) -> uops:int -> Stats.t
(** Execute until [uops] program micro-ops have committed after a
    [warmup] phase (default 0) whose purpose is to warm the caches and
    the branch predictor; all statistics are reset when the warmup
    ends, mirroring the standard simulation-point methodology. The
    observability sink is suspended during warmup: the trace covers
    exactly the measured phase.
    [source] supplies the dynamic stream (see
    {!Clusteer_trace.Tracegen.next}). Raises [Failure] if the machine
    stops making progress (an engine bug, surfaced for the tests). *)

val stats : t -> Stats.t
