test/test_steer.ml: Alcotest Annot Array Clusteer_isa Clusteer_steer Clusteer_trace Clusteer_uarch Clusteer_util Dynuop Hashtbl List Opcode Option Policy Reg Uop
