(** The paper's software partitioner (Figure 2): distribute DDG nodes
    into *virtual clusters* at compile time.

    Three steps per region:
    {ol
    {- {b Critical paths}: depth and height via two DDG traversals;
       criticality = depth + height (§4.2).}
    {- {b Partition into VCs}: top-down over the DDG; each instruction
       is priced in every VC via the static completion-time estimator
       and placed where it completes earliest. The contention term is
       scaled down for critical instructions (low slack), so critical
       dependence chains follow their producers into one VC even at
       the cost of imbalance — the behaviour §5.3 observes ("VC can
       send critical dependence chains to one single cluster ... at
       the expense of increasing workload imbalance").}
    {- {b Chains and chain leaders} are identified afterwards by
       {!Chains}.}} *)

open Clusteer_isa

val assign_region :
  Clusteer_ddg.Ddg.t ->
  virtual_clusters:int ->
  ?issue_width:float ->
  ?comm_latency:float ->
  unit ->
  int array
(** VC assignment (node -> vc id) for one region DDG. *)

val compile :
  program:Program.t ->
  likely:(int -> int option) ->
  virtual_clusters:int ->
  ?region_uops:int ->
  ?issue_width:float ->
  unit ->
  Annot.t
(** Whole-program hybrid annotation (scheme ["vc"]): VC ids plus chain
    leader marks, ready for the runtime mapper. *)
