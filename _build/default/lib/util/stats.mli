(** Descriptive statistics used by the experiment harness. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

val summarize : float array -> summary
(** Sample statistics; [stddev] is the corrected sample deviation
    (0 for fewer than two samples). Raises [Invalid_argument] on []. *)

val mean : float array -> float
val geomean : float array -> float
(** Geometric mean; inputs must be positive. *)

val weighted_mean : (float * float) array -> float
(** [weighted_mean [| (x, w); ... |]]; weights must not all be zero. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,100]; linear interpolation between
    order statistics. The input is not modified. *)

val ratio_percent : float -> float -> float
(** [ratio_percent base x] is [(x -. base) /. base *. 100.], i.e. the
    percentage by which [x] exceeds [base]. *)

(** Online accumulator (Welford). *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val stddev : t -> float
end
