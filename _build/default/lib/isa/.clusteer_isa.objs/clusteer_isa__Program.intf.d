lib/isa/program.mli: Block Format Opcode Reg Uop
