lib/compiler/vc_partition.mli: Annot Clusteer_ddg Clusteer_isa Program
