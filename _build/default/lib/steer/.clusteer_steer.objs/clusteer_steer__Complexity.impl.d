lib/steer/complexity.ml: List
