(** Reproduction of every table and figure in the paper's evaluation
    (§5) plus the §2.1 worked example. See DESIGN.md's per-experiment
    index and EXPERIMENTS.md for paper-vs-measured numbers.

    The heavy entry points ({!run_2cluster}, {!run_4cluster}) sweep the
    whole SPEC suite once; the [figureN_of] derivations then slice the
    same results, so Figures 5 and 6 share one sweep as in the paper. *)

open Clusteer_uarch
open Clusteer_workloads

type suite_run = {
  machine : Config.t;
  uops : int;
  results : (Profile.t * Runner.point_result list) list;
}

val run_2cluster :
  ?uops:int ->
  ?profiles:Profile.t list ->
  ?progress:(string -> unit) ->
  ?domains:int ->
  ?strategy:Clusteer_util.Parallel.strategy ->
  ?profiled:bool ->
  unit ->
  suite_run
(** The Figure 5/6 sweep: 2-cluster machine, configurations OP /
    one-cluster / OB / RHOP / VC(2). Default 20k micro-ops per point
    over the full 40-point suite. [profiled] attaches a per-shard
    pipeline self-profiler so the merged registry carries
    [profile.engine.*.ns] phase timings (see
    {!Clusteer_obs.Profile}). [strategy] selects the work-distribution
    mode (default {!Clusteer_util.Parallel.Static}, the shared-nothing
    sharding; see {!Runner}). *)

val run_4cluster :
  ?uops:int ->
  ?profiles:Profile.t list ->
  ?progress:(string -> unit) ->
  ?domains:int ->
  ?strategy:Clusteer_util.Parallel.strategy ->
  ?profiled:bool ->
  unit ->
  suite_run
(** The Figure 7 sweep: 4-cluster machine, OP / OB / RHOP / VC(4→4) /
    VC(2→4). Both sweeps shard over individual simulation points with
    {!Runner.run_grouped} (per-shard counter registries, deterministic
    ordered merge); [domains] defaults to
    {!Clusteer_util.Parallel.default_domains} and the output is
    order-deterministic — [domains:1] and [domains:N] produce
    identical results. *)

(** {1 Figure 5 — 2-cluster slowdowns vs OP} *)

type slowdown_row = {
  bench : string;
  suite : Profile.suite;
  slowdowns : (string * float) list;  (** config -> % slowdown vs OP *)
}

type slowdown_figure = {
  rows : slowdown_row list;
  int_avg : (string * float) list;
  fp_avg : (string * float) list;
  cpu_avg : (string * float) list;
}

val figure5_of : suite_run -> slowdown_figure
val print_slowdown_figure : title:string -> slowdown_figure -> unit

(** {1 Figure 6 — copy / balance trade-off scatters} *)

type scatter_point = {
  trace : string;  (** "164.gzip-1/2" = benchmark/phase *)
  speedup : float;  (** VC speedup over the other scheme, % *)
  copy_reduction : float;  (** VC copy reduction vs the other scheme, % *)
  balance_improvement : float;  (** VC allocation-stall reduction, % *)
}

type scatter_figure = {
  vs_ob : scatter_point list;  (** Fig. 6 (a.1)/(b.1) *)
  vs_rhop : scatter_point list;  (** Fig. 6 (a.2)/(b.2) *)
  vs_op : scatter_point list;  (** Fig. 6 (a.3)/(b.3) *)
}

val figure6_of : suite_run -> scatter_figure
val print_scatter_summary : scatter_figure -> unit

val print_scatter_plots : scatter_figure -> unit
(** ASCII renderings of the six Figure 6 panels (copy reduction and
    balance improvement vs speedup, against OB, RHOP and OP). *)

(** {1 Figure 7 — 4-cluster scalability} *)

val figure7_of : suite_run -> slowdown_figure

val copy_inflation : suite_run -> float
(** §5.4: percentage of extra copies VC(4→4) generates over VC(2→4),
    suite-averaged (paper: ~28%). *)

(** {1 Tables} *)

val print_table1 : unit -> unit
(** Steering-complexity comparison. *)

val print_table2 : clusters:int -> unit
(** Architectural parameters. *)

val print_table3 : unit -> unit
(** The five configurations. *)

(** {1 §2.1 worked example} *)

type sec21 = {
  sequential_copies : int;
  parallel_copies : int;
  sequential_placement : int list;
  parallel_placement : int list;
}

val section21_example : unit -> sec21
(** Replays the I1/I2/I3 example with both the sequential and the
    parallel (rename-style) steering implementation. The paper counts
    the two extra copies of the parallel scheme; both schemes share
    one initial copy of R1. *)

val print_section21 : sec21 -> unit

(** {1 CSV export} *)

val export_slowdowns : path:string -> slowdown_figure -> unit
val export_scatter : path_prefix:string -> scatter_figure -> unit
