open Clusteer_isa
open Clusteer_trace
module Rng = Clusteer_util.Rng

type t = {
  profile : Profile.t;
  program : Program.t;
  branches : Branch_model.t array;
  streams : Mem_model.t array;
  likely : int -> int option;
}

(* Register plan (64 per class, see Engine's budget): int chains at
   0..ilp-1, fp chains at fp 0..ilp-1, one stable base register per
   memory stream from 48 up. *)
let base_reg_first = 48
let max_streams = 8

type gen_state = {
  prof : Profile.t;
  rng : Rng.t;
  builder : Program.Builder.b;
  stream_ids : int array;
  stream_is_chase : bool array;
  int_len : int array;  (* current chain lengths *)
  fp_len : int array;
  branch_info : (int, int option) Hashtbl.t;  (* block id -> likely succ *)
  mutable branch_models : Branch_model.t list;  (* reversed *)
}

let stream_count prof =
  let by_footprint = 2 + (prof.Profile.footprint_kb / 256) in
  max 3 (min max_streams by_footprint)

let make_streams prof =
  let n = stream_count prof in
  let per_stream =
    max 256 (prof.Profile.footprint_kb * 1024 / n)
  in
  let n_stride =
    int_of_float (Float.round (prof.Profile.stride_frac *. float_of_int n))
  in
  let n_chase =
    int_of_float (Float.round (prof.Profile.chase_frac *. float_of_int n))
  in
  Array.init n (fun i ->
      let base = (i + 1) * 16 * 1024 * 1024 in
      if i < n_stride then
        Mem_model.Strided { base; stride = 8; footprint = per_stream }
      else if i < n_stride + n_chase then
        Mem_model.Chase { base; footprint = max 64 per_stream }
      else Mem_model.Uniform { base; footprint = per_stream; granule = 8 })

(* Allocate a fresh branch model, returning its id. *)
let new_branch st model =
  st.branch_models <- model :: st.branch_models;
  Program.Builder.branch_model st.builder

let pick_chain st = Rng.int st.rng st.prof.Profile.ilp

let cross_chain st k =
  let n = st.prof.Profile.ilp in
  if n = 1 then k else (k + 1 + Rng.int st.rng (n - 1)) mod n

(* One compute micro-op extending (or restarting) a dependence chain. *)
let gen_compute st ~fp ~k =
  let b = st.builder in
  if fp then begin
    let opcode =
      let r = Rng.float st.rng 1.0 in
      if r < 0.70 then Opcode.Fp_add
      else if r < 0.97 then Opcode.Fp_mul
      else Opcode.Fp_div
    in
    let restart = st.fp_len.(k) >= st.prof.Profile.chain_len in
    let srcs =
      (* Restarts often seed from another chain (a reduction feeding a
         new expression), keeping the DDG connected like real code. *)
      if restart then
        if Rng.bernoulli st.rng 0.4 then [| Reg.fp (cross_chain st k) |]
        else [||]
      else if Rng.bernoulli st.rng 0.3 then
        [| Reg.fp k; Reg.fp (cross_chain st k) |]
      else [| Reg.fp k |]
    in
    st.fp_len.(k) <- (if restart then 1 else st.fp_len.(k) + 1);
    Program.Builder.uop b opcode ~dst:(Reg.fp k) ~srcs ()
  end
  else begin
    let opcode =
      let r = Rng.float st.rng 1.0 in
      if r < 0.90 then Opcode.Int_alu
      else if r < 0.99 then Opcode.Int_mul
      else Opcode.Int_div
    in
    let restart = st.int_len.(k) >= st.prof.Profile.chain_len in
    let srcs =
      if restart then
        if Rng.bernoulli st.rng 0.4 then [| Reg.int (cross_chain st k) |]
        else [||]
      else if Rng.bernoulli st.rng 0.25 then
        [| Reg.int k; Reg.int (cross_chain st k) |]
      else [| Reg.int k |]
    in
    st.int_len.(k) <- (if restart then 1 else st.int_len.(k) + 1);
    Program.Builder.uop b opcode ~dst:(Reg.int k) ~srcs ()
  end

let gen_mem st ~fp ~k =
  let b = st.builder in
  let si = Rng.int st.rng (Array.length st.stream_ids) in
  let stream = st.stream_ids.(si) in
  let base = Reg.int (base_reg_first + si) in
  if Rng.bernoulli st.rng 0.65 then begin
    (* Load. Chase streams form serial load-load chains through the
       base register; others feed the current compute chain, with the
       address either loop-invariant (base) or chain-dependent. *)
    if st.stream_is_chase.(si) then
      Program.Builder.uop b Opcode.Load ~dst:base ~srcs:[| base |] ~stream ()
    else begin
      let dst = if fp then Reg.fp k else Reg.int k in
      let srcs =
        if Rng.bernoulli st.rng 0.5 then [| base |] else [| base; Reg.int k |]
      in
      if fp then st.fp_len.(k) <- st.fp_len.(k) + 1
      else st.int_len.(k) <- 1 (* load restarts the int chain it feeds *);
      Program.Builder.uop b Opcode.Load ~dst ~srcs ~stream ()
    end
  end
  else begin
    let data = if fp then Reg.fp k else Reg.int k in
    Program.Builder.uop b Opcode.Store ~srcs:[| data; base |] ~stream ()
  end

(* Micro-ops are emitted in short program-order runs that stay on one
   dependence chain, the layout an instruction scheduler produces
   (dependent operations near each other). This is what gives the VC
   partitioner's chains their length. *)
let gen_body st ~slots =
  let out = ref [] in
  let remaining = ref slots in
  while !remaining > 0 do
    let k = pick_chain st in
    let fp = Rng.bernoulli st.rng st.prof.Profile.fp_ratio in
    let run = min !remaining (2 + Rng.int st.rng 3) in
    for _ = 1 to run do
      let u =
        if Rng.bernoulli st.rng st.prof.Profile.mem_ratio then
          gen_mem st ~fp ~k
        else gen_compute st ~fp ~k
      in
      out := u :: !out
    done;
    remaining := !remaining - run
  done;
  List.rev !out

let block_slots st =
  let base = st.prof.Profile.block_size in
  max 2 (base - 1 + Rng.int st.rng 3)

(* Conditional branch micro-op reading a chain register. *)
let gen_cond_branch st ~model =
  let k = pick_chain st in
  Program.Builder.uop st.builder Opcode.Branch ~srcs:[| Reg.int k |]
    ~branch_ref:model ()

let diamond_model st =
  if Rng.bernoulli st.rng st.prof.Profile.hard_branch_frac then
    let p = 0.4 +. Rng.float st.rng 0.2 in
    (Branch_model.Bernoulli p, None)
  else
    let taken = Rng.bool st.rng in
    let p = if taken then 0.85 +. Rng.float st.rng 0.1 else 0.05 +. Rng.float st.rng 0.1 in
    (Branch_model.Bernoulli p, Some (if taken then 1 else 0))

let build prof =
  Profile.validate prof;
  let builder = Program.Builder.create ~name:prof.Profile.name ~nregs_per_class:64 () in
  let stream_models = make_streams prof in
  let stream_ids = Array.map (fun _ -> Program.Builder.stream builder) stream_models in
  let stream_is_chase =
    Array.map
      (fun m -> match m with Mem_model.Chase _ -> true | _ -> false)
      stream_models
  in
  let st =
    {
      prof;
      rng = Rng.create prof.Profile.seed;
      builder;
      stream_ids;
      stream_is_chase;
      int_len = Array.make prof.Profile.ilp 0;
      fp_len = Array.make prof.Profile.ilp 0;
      branch_info = Hashtbl.create 16;
      branch_models = [];
    }
  in
  let b = builder in
  (* Entry block: initialise chain and base registers. *)
  let init_uops =
    List.concat
      [
        List.init prof.Profile.ilp (fun k ->
            Program.Builder.uop b Opcode.Int_alu ~dst:(Reg.int k) ());
        List.init prof.Profile.ilp (fun k ->
            Program.Builder.uop b Opcode.Fp_add ~dst:(Reg.fp k) ());
        List.init (Array.length stream_ids) (fun s ->
            Program.Builder.uop b Opcode.Int_alu
              ~dst:(Reg.int (base_reg_first + s))
              ());
      ]
  in
  let entry = Program.Builder.reserve_block b in
  let exit_block = Program.Builder.reserve_block b in
  Program.Builder.define_block b exit_block [] ~succs:[];
  (* Loop nests, last one falling through to [exit_block]. *)
  let rec make_loops i next =
    if i < 0 then next
    else begin
      let head = Program.Builder.reserve_block b in
      let cond = Program.Builder.reserve_block b in
      let then_b = Program.Builder.reserve_block b in
      let else_b = Program.Builder.reserve_block b in
      let latch = Program.Builder.reserve_block b in
      (* head: plain body, falls into cond. *)
      Program.Builder.define_block b head
        (gen_body st ~slots:(block_slots st))
        ~succs:[ cond ];
      (* cond: diamond branch. Most conditions are freshly computed
         1-cycle tests (fast to resolve after a mispredict); a minority
         read a live dependence chain directly, modelling truly
         data-dependent branches whose redirects are expensive. *)
      let model, bias = diamond_model st in
      let mid = new_branch st model in
      let bcond = Reg.int (16 + (i mod 16)) in
      let cond_uops =
        let body = gen_body st ~slots:(max 1 (block_slots st / 2)) in
        if Rng.bernoulli st.rng 0.3 then body @ [ gen_cond_branch st ~model:mid ]
        else
          let test =
            Program.Builder.uop b Opcode.Int_alu ~dst:bcond ~srcs:[| bcond |] ()
          in
          let br =
            Program.Builder.uop b Opcode.Branch ~srcs:[| bcond |]
              ~branch_ref:mid ()
          in
          (test :: body) @ [ br ]
      in
      Program.Builder.define_block b cond cond_uops ~succs:[ then_b; else_b ];
      Hashtbl.replace st.branch_info cond bias;
      (* arms fall through to latch. *)
      Program.Builder.define_block b then_b
        (gen_body st ~slots:(block_slots st))
        ~succs:[ latch ];
      Program.Builder.define_block b else_b
        (gen_body st ~slots:(block_slots st))
        ~succs:[ latch ];
      (* latch: loop back-edge (taken = repeat). The branch tests a
         dedicated induction register updated by a 1-cycle op, so loop
         exits resolve quickly — like a real loop counter, and unlike
         the data-dependent diamond branches. *)
      let trip = max 2 (prof.Profile.loop_trip - 2 + Rng.int st.rng 5) in
      let lid = new_branch st (Branch_model.Loop trip) in
      let ctr = Reg.int (32 + (i mod 16)) in
      let ctr_update =
        Program.Builder.uop b Opcode.Int_alu ~dst:ctr ~srcs:[| ctr |] ()
      in
      let latch_branch =
        Program.Builder.uop b Opcode.Branch ~srcs:[| ctr |] ~branch_ref:lid ()
      in
      Program.Builder.define_block b latch
        ((ctr_update :: gen_body st ~slots:(block_slots st)) @ [ latch_branch ])
        ~succs:[ next; head ];
      Hashtbl.replace st.branch_info latch (Some 1);
      make_loops (i - 1) head
    end
  in
  let first_loop = make_loops (prof.Profile.loops - 1) exit_block in
  Program.Builder.define_block b entry init_uops ~succs:[ first_loop ];
  let program = Program.Builder.finish b ~entry in
  let branches = Array.of_list (List.rev st.branch_models) in
  let likely blk =
    match Hashtbl.find_opt st.branch_info blk with
    | Some bias -> bias
    | None -> None
  in
  { profile = prof; program; branches; streams = stream_models; likely }

let trace t ~seed =
  Tracegen.create ~program:t.program ~branches:t.branches ~streams:t.streams
    ~seed
