lib/workloads/pinpoints.ml: Clusteer_util Float List Profile
