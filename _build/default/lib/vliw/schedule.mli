(** Reservation tables and schedules for the clustered VLIW substrate. *)

type reservation
(** Mutable slot-usage table: (cycle, cluster, slot class) -> used. *)

val create_reservation : Machine.t -> reservation

val earliest_free :
  reservation -> cluster:int -> cls:Machine.slot_class -> from:int -> int
(** First cycle at or after [from] with a free slot of the class in the
    cluster. *)

val reserve :
  reservation -> cluster:int -> cls:Machine.slot_class -> cycle:int -> unit
(** Consume one slot; raises [Invalid_argument] when none is free. *)

type entry = {
  node : int;  (** DDG node index *)
  cluster : int;
  cycle : int;  (** issue cycle *)
  finish : int;  (** cycle the result is available in [cluster] *)
}

type t = {
  entries : entry array;  (** indexed by DDG node *)
  moves : int;  (** inter-cluster moves scheduled *)
  length : int;  (** makespan: 1 + the last finish cycle *)
}

val ipc : t -> float
(** Operations (excluding moves) per cycle of the schedule. *)

val validate : t -> Clusteer_ddg.Ddg.t -> Machine.t -> unit
(** Check that the schedule respects dependences (with communication
    delay for cross-cluster edges). Raises [Invalid_argument]. *)
