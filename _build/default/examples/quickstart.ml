(* Quickstart: build a small program by hand, compile it with the
   paper's virtual-cluster partitioner, and run it through the
   clustered out-of-order simulator under the hybrid steering policy.

     dune exec examples/quickstart.exe *)

open Clusteer_isa
module Uarch = Clusteer_uarch
module Trace = Clusteer_trace

let () =
  (* 1. A toy loop: two dependence chains plus a strided load stream,
     iterating 64 times. *)
  let b = Program.Builder.create ~name:"quickstart" ~nregs_per_class:16 () in
  let stream = Program.Builder.stream b in
  let loop_model = Program.Builder.branch_model b in
  let body = Program.Builder.reserve_block b in
  let exit_ = Program.Builder.reserve_block b in
  let u1 =
    Program.Builder.uop b Opcode.Load ~dst:(Reg.int 1) ~srcs:[| Reg.int 0 |]
      ~stream ()
  in
  let u2 =
    Program.Builder.uop b Opcode.Int_alu ~dst:(Reg.int 2)
      ~srcs:[| Reg.int 1; Reg.int 2 |] ()
  in
  let u3 =
    Program.Builder.uop b Opcode.Fp_mul ~dst:(Reg.fp 0) ~srcs:[| Reg.fp 0 |] ()
  in
  let u4 =
    Program.Builder.uop b Opcode.Fp_add ~dst:(Reg.fp 1)
      ~srcs:[| Reg.fp 1; Reg.fp 0 |] ()
  in
  let u5 =
    Program.Builder.uop b Opcode.Int_alu ~dst:(Reg.int 3) ~srcs:[| Reg.int 3 |]
      ()
  in
  let u6 =
    Program.Builder.uop b Opcode.Branch ~srcs:[| Reg.int 3 |]
      ~branch_ref:loop_model ()
  in
  Program.Builder.define_block b body [ u1; u2; u3; u4; u5; u6 ]
    ~succs:[ exit_; body ];
  Program.Builder.define_block b exit_ [] ~succs:[];
  let program = Program.Builder.finish b ~entry:body in

  (* 2. Dynamic behaviour models for the trace generator. *)
  let branches = [| Trace.Branch_model.Loop 64 |] in
  let streams =
    [| Trace.Mem_model.Strided { base = 0; stride = 8; footprint = 4096 } |]
  in
  let likely blk = if blk = body then Some 1 else None in

  (* 3. Software half (paper Fig. 2/3): partition into two virtual
     clusters and mark chain leaders. *)
  let annot =
    Clusteer.Hybrid.compile ~program ~likely ~virtual_clusters:2 ()
  in
  Fmt.pr "Virtual-cluster assignment (uop -> vc, * = chain leader):@.";
  Program.iter_uops program (fun u ->
      Fmt.pr "  %a  -> vc%d%s@." Uop.pp u annot.Annot.vc_of.(u.Uop.id)
        (if annot.Annot.leader.(u.Uop.id) then " *" else ""));

  (* 4. Hardware half (Fig. 4) + the cycle-level machine of Table 2. *)
  let config = Uarch.Config.default_2c in
  let policy = Clusteer.Hybrid.policy ~annot ~clusters:config.Uarch.Config.clusters in
  let engine = Uarch.Engine.create ~config ~annot ~policy ~prewarm:[ (0, 4096) ] () in
  let gen = Trace.Tracegen.create ~program ~branches ~streams ~seed:7 in
  let stats =
    Uarch.Engine.run engine
      ~source:(fun () -> Trace.Tracegen.next gen)
      ~warmup:1000 ~uops:10_000
  in
  Fmt.pr "@.Hybrid (VC) steering on the 2-cluster machine:@.%a@."
    Uarch.Stats.pp stats;
  Fmt.pr "@.IPC %.2f, %d copy micro-ops, %d allocation-stall cycles@."
    (Uarch.Stats.ipc stats) stats.Uarch.Stats.copies_generated
    (Uarch.Stats.allocation_stalls stats)
