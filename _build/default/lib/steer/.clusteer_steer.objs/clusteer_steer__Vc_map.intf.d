lib/steer/vc_map.mli: Annot Clusteer_isa Clusteer_uarch
