open Clusteer_uarch
open Clusteer_workloads
module Counters = Clusteer_obs.Counters

type point_result = {
  point : Pinpoints.point;
  runs : (string * Stats.t) list;
}

(* Per-point trace seed: a splitmix64-style bit mix of (master seed,
   phase index). The previous affine formula [seed*31 + index + 101]
   collided across nearby benchmarks (e.g. seeds 1/phase 31 and
   2/phase 0), silently replaying the same dynamic stream for
   different simulation points. Multiplying by an odd 64-bit constant
   and running the result through a bijective finalizer spreads every
   (seed, index) pair over the full 62-bit output range. *)
let trace_seed (point : Pinpoints.point) =
  let open Int64 in
  let z =
    add
      (mul
         (of_int point.Pinpoints.profile.Profile.seed)
         0x9E3779B97F4A7C15L)
      (of_int point.Pinpoints.index)
  in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  to_int (shift_right_logical z 2)

(* Default warmup: half the measured length, capped — enough to fill
   the L1 and train the predictor at the scaled-down trace sizes — and
   always strictly below the measured budget, so tiny runs (fewer than
   the old 2,000-uop floor) still terminate instead of spending their
   entire budget warming up. *)
let default_warmup uops =
  min (min 10_000 (max 2_000 (uops / 2))) (max 0 (uops - 1))

let run_workload ?warmup ?(seed = 1) ?(obs = fun _ -> None) ?registry ?profile
    ~machine ~configs ~uops workload =
  let warmup = Option.value ~default:(default_warmup uops) warmup in
  let committed = Counters.counter ?registry "harness.uops_committed" in
  List.map
    (fun config ->
      let name = Clusteer.Configuration.name config in
      let annot, policy =
        Clusteer.Configuration.prepare config ~program:workload.Synth.program
          ~likely:workload.Synth.likely ~clusters:machine.Config.clusters
          ?registry ()
      in
      let prewarm =
        Array.to_list
          (Array.map Clusteer_trace.Mem_model.extent workload.Synth.streams)
      in
      let engine =
        Engine.create ~config:machine ~annot ~policy ~prewarm ?obs:(obs name)
          ?registry ?profile ()
      in
      let gen = Synth.trace workload ~seed in
      let stats =
        Engine.run ~warmup engine
          ~source:(fun () -> Clusteer_trace.Tracegen.next gen)
          ~uops
      in
      (* The ledger attributes committed work to the run through this
         counter — it rides the registry, so parallel shards merge it
         like any other instrument. *)
      Counters.add committed stats.Stats.committed;
      (name, stats))
    configs

let run_point ?warmup ?obs ?registry ?profile ~machine ~configs ~uops point =
  let workload = Synth.build point.Pinpoints.profile in
  (* Every configuration replays the identical dynamic stream: the
     generator is reseeded per point with the same seed. *)
  let runs =
    run_workload ?warmup ~seed:(trace_seed point) ?obs ?registry ?profile
      ~machine ~configs ~uops workload
  in
  { point; runs }

(* Registry-isolated parallel map: each item runs against a private
   counter registry, so concurrent engines and policies never touch
   shared mutable observability state; the per-item registries are
   merged into [into] afterwards, in input order. [Parallel.map]
   preserves input order, so as long as [f] is deterministic per item
   a parallel run returns results (and merged counter totals)
   bit-identical to a sequential one. The suite sweeps below and the
   service layer's worker pool (lib/serve) both build on this. *)
let map_isolated ?domains ?chunk ?(into = Counters.default) f items =
  let shard item =
    let registry = Counters.create () in
    let result = f ~registry item in
    (result, registry)
  in
  let sharded = Clusteer_util.Parallel.map ?domains ?chunk shard items in
  List.iter (fun (_, registry) -> Counters.merge ~into registry) sharded;
  List.map fst sharded

(* Parallel core: shard (profile x point) pairs over domains. The
   simulation is deterministic per point (a pure function of the trace
   seed and the machine), so [map_isolated]'s guarantee applies.

   [profiled] attaches a pipeline self-profiler per shard, over the
   shard's private registry — concurrent engines never share a span,
   and the phase-timing histograms merge back with the rest of the
   shard registry in input order. *)
let run_points ?(progress = fun _ -> ()) ?warmup ?domains ?chunk
    ?(profiled = false) ~machine ~configs ~uops profiles =
  let items =
    List.concat_map
      (fun profile ->
        List.map (fun point -> (profile, point)) (Pinpoints.points profile))
      profiles
  in
  map_isolated ?domains ?chunk
    (fun ~registry ((profile : Profile.t), point) ->
      if point.Pinpoints.index = 0 then progress profile.Profile.name;
      let prof =
        if profiled then Some (Clusteer_obs.Profile.create ~registry ())
        else None
      in
      run_point ?warmup ~registry ?profile:prof ~machine ~configs ~uops point)
    items

let run_benchmark ?warmup ?domains ?chunk ?profiled ~machine ~configs ~uops
    profile =
  run_points ?warmup ?domains ?chunk ?profiled ~machine ~configs ~uops
    [ profile ]

let run_suite ?progress ?warmup ?domains ?chunk ?profiled ~machine ~configs
    ~uops profiles =
  run_points ?progress ?warmup ?domains ?chunk ?profiled ~machine ~configs
    ~uops profiles

let rec split_at n xs =
  if n = 0 then ([], xs)
  else
    match xs with
    | [] -> invalid_arg "Runner.run_grouped: result count mismatch"
    | x :: rest ->
        let taken, remaining = split_at (n - 1) rest in
        (x :: taken, remaining)

let run_grouped ?progress ?warmup ?domains ?chunk ?profiled ~machine ~configs
    ~uops profiles =
  let flat =
    run_points ?progress ?warmup ?domains ?chunk ?profiled ~machine ~configs
      ~uops profiles
  in
  let groups, rest =
    List.fold_left
      (fun (acc, remaining) profile ->
        let n = List.length (Pinpoints.points profile) in
        let points, remaining = split_at n remaining in
        ((profile, points) :: acc, remaining))
      ([], flat) profiles
  in
  assert (rest = []);
  List.rev groups

let stats_of result config =
  match List.assoc_opt config result.runs with
  | Some s -> s
  | None ->
      invalid_arg
        (Printf.sprintf "Runner: configuration %s missing from results" config)

let weighted_metric results ~config ~f =
  let pairs =
    List.map
      (fun r -> (f (stats_of r config), r.point.Pinpoints.weight))
      results
  in
  Clusteer_util.Stats.weighted_mean (Array.of_list pairs)

(* Wall-clock and GC accounting around one run, in the shape the run
   ledger records. *)
let measured f =
  let gc0 = Clusteer_obs.Ledger.gc_now () in
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let wall_s = Unix.gettimeofday () -. t0 in
  let gc = Clusteer_obs.Ledger.gc_sub (Clusteer_obs.Ledger.gc_now ()) gc0 in
  (result, wall_s, gc)

let weighted_pair_metric results ~config_a ~config_b ~f =
  let pairs =
    List.map
      (fun r ->
        (f (stats_of r config_a) (stats_of r config_b), r.point.Pinpoints.weight))
      results
  in
  Clusteer_util.Stats.weighted_mean (Array.of_list pairs)
