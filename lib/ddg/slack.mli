(** Shared longest-path slack over compilation regions.

    Both the compiler's criticality-hint pass ({!Clusteer_compiler}'s
    [Crit_hints]) and the static checker's PL005 verification need the
    same quantity: per static micro-op, the slack of its node in the
    region DDG's longest-path (criticality) analysis. Recomputing it in
    two places let the checker and the compiler drift apart; this module
    is the single implementation both sides call, so a hint the compiler
    emits is by construction the hint the checker expects. *)

open Clusteer_isa

type region_slack = {
  region : Region.t;
  crit : Critical.t;  (** longest-path analysis of the region DDG *)
}

val analyze :
  program:Program.t ->
  likely:(int -> int option) ->
  ?region_uops:int ->
  unit ->
  region_slack list
(** Build the superblock regions (default [region_uops] 512, the
    compiler's default window) and run {!Critical.analyze} over each
    region's DDG. Regions cover the program, so every static micro-op
    appears in exactly one result. *)

val iter :
  region_slack -> (node:int -> uop:Uop.t -> slack:int -> unit) -> unit
(** Visit the region's micro-ops in flattened program order with their
    DDG node index and slack. *)

val hints :
  program:Program.t ->
  likely:(int -> int option) ->
  ?region_uops:int ->
  ?slack_threshold:int ->
  unit ->
  bool array
(** Per-static-uop criticality marks: [true] iff the uop's slack is at
    most [slack_threshold] (default 0, i.e. critical-path nodes only).
    This is the function whose output PL005 pins. *)
