(** Fixed-capacity FIFO ring buffer.

    Models hardware queues with a hard size (reorder buffers, issue
    queue candidate latches, fetch buffers): pushes fail when full,
    entries pop in order. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity] must be positive. *)

val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool
val is_full : 'a t -> bool
val free_slots : 'a t -> int

val push : 'a t -> 'a -> bool
(** Enqueue at the tail; [false] when the buffer is full. *)

val peek : 'a t -> 'a option
(** Oldest entry, without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the oldest entry. *)

val get : 'a t -> int -> 'a
(** [get t i] is the [i]-th oldest entry; raises [Invalid_argument] when
    out of range. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest-to-newest iteration. *)

val to_list : 'a t -> 'a list
val clear : 'a t -> unit
