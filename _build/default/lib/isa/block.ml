type t = {
  id : int;
  uops : Uop.t array;
  succs : int array;
}

let terminator t =
  let n = Array.length t.uops in
  if n = 0 then None
  else
    let last = t.uops.(n - 1) in
    if Uop.is_branch last then Some last else None

let make ~id ~uops ~succs =
  let t = { id; uops; succs } in
  let fail msg = invalid_arg (Printf.sprintf "Block.make (block %d): %s" id msg) in
  Array.iteri
    (fun i u ->
      if Uop.is_branch u && i <> Array.length uops - 1 then
        fail "branch must be the final micro-op")
    uops;
  if Array.length succs > 1 && terminator t = None then
    fail "multi-successor block needs a terminating branch";
  if Array.length succs <= 1 && terminator t <> None then
    fail "branch terminator requires at least two successors";
  t

let pp ppf t =
  Format.fprintf ppf "@[<v2>block %d -> [%a]:@,%a@]" t.id
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
       Format.pp_print_int)
    (Array.to_list t.succs)
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Uop.pp)
    (Array.to_list t.uops)
