open Clusteer_isa
open Clusteer_ddg

let mark_region annot (region : Region.t) =
  let prev_vc = ref (-2) in
  Array.iter
    (fun (u : Uop.t) ->
      let vc = annot.Annot.vc_of.(u.Uop.id) in
      if vc <> !prev_vc then annot.Annot.leader.(u.Uop.id) <- vc <> -1;
      prev_vc := vc)
    region.Region.uops

let chains_of_region annot (region : Region.t) =
  let chains = ref [] and current = ref [] in
  let prev_vc = ref (-2) in
  Array.iter
    (fun (u : Uop.t) ->
      let vc = annot.Annot.vc_of.(u.Uop.id) in
      if vc <> !prev_vc && !current <> [] then begin
        chains := List.rev !current :: !chains;
        current := []
      end;
      if vc <> -1 then current := u.Uop.id :: !current;
      prev_vc := vc)
    region.Region.uops;
  if !current <> [] then chains := List.rev !current :: !chains;
  List.rev !chains
