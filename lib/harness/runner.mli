(** Run (simulation point × machine × configuration) triples and
    collect statistics — the trace-driven methodology of §5.1, with
    every configuration replaying the identical dynamic stream. *)

open Clusteer_uarch
open Clusteer_workloads

type point_result = {
  point : Pinpoints.point;
  runs : (string * Stats.t) list;
      (** configuration name -> statistics, in configuration order *)
}

val run_point :
  ?warmup:int ->
  ?obs:(string -> Clusteer_obs.Sink.t option) ->
  machine:Config.t ->
  configs:Clusteer.Configuration.t list ->
  uops:int ->
  Pinpoints.point ->
  point_result
(** Build the point's workload, compile each configuration's
    annotation, and simulate [uops] committed micro-ops per
    configuration, after a cache/predictor warmup phase (default: half
    the measured length, capped at 10k).

    [obs] maps a configuration name to the observability sink to
    install in that configuration's engine ([None] = uninstrumented,
    the default for every configuration). *)

val run_workload :
  ?warmup:int ->
  ?seed:int ->
  ?obs:(string -> Clusteer_obs.Sink.t option) ->
  machine:Config.t ->
  configs:Clusteer.Configuration.t list ->
  uops:int ->
  Synth.t ->
  (string * Stats.t) list
(** Run an explicit workload (a {!Clusteer_workloads.Synth.t}, e.g. a
    hand-built {!Clusteer_workloads.Kernels} kernel) under each
    configuration on the identical trace. [obs] as in
    {!run_point}. *)

val run_benchmark :
  ?warmup:int ->
  machine:Config.t ->
  configs:Clusteer.Configuration.t list ->
  uops:int ->
  Profile.t ->
  point_result list
(** All PinPoints phases of one benchmark. *)

val run_suite :
  ?progress:(string -> unit) ->
  ?warmup:int ->
  machine:Config.t ->
  configs:Clusteer.Configuration.t list ->
  uops:int ->
  Profile.t list ->
  point_result list
(** Whole-suite sweep; [progress] is called once per benchmark. *)

val weighted_metric :
  point_result list -> config:string -> f:(Stats.t -> float) -> float
(** Phase-weighted metric for one configuration over one benchmark's
    point results. *)

val weighted_pair_metric :
  point_result list ->
  config_a:string ->
  config_b:string ->
  f:(Stats.t -> Stats.t -> float) ->
  float
(** Phase-weighted metric comparing two configurations point by
    point (e.g. slowdown of a vs b). *)
