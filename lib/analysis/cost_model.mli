(** Static communication cost model.

    For a program, a steering annotation and an interconnect topology,
    predict what the placement will cost at run time before any cycle is
    simulated: how many inter-cluster copies the placement implies, how
    far those copies travel, and how evenly the static uops spread over
    the physical clusters. The predictions come from a forward
    {e reaching-origins} dataflow over the block CFG (an instance of
    {!Fixpoint}): per architectural register, the set of placement
    domains — virtual clusters for a VC annotation, physical clusters
    for a static one — whose definitions may reach each use, plus an
    "external" origin for machine state that predates the trace (which
    the engine seeds as resident in {e every} cluster, so it never
    copies) and a "roaming" origin for definitions the hardware steers
    freely (they land in exactly one, unknown, cluster — so their
    consumers may always have to copy).

    Two layers of output per source operand:
    - {b must-cross} — every reaching definition lives in a domain
      mapped to a different physical cluster than the consumer; such a
      use will generate a copy (modulo value-reuse dedup). This is the
      {e prediction}.
    - {b may-cross} — some reaching definition may live elsewhere. This
      is the sound over-approximation the drift checker turns into a
      run-time {e bound}: dynamic copies for a window of [d] dispatched
      uops cannot exceed [bound_copy_rate * d] plus a remap-stranding
      term ([remaps * peak_live], VC schemes only — a leader remap can
      strand at most the live values) plus one partial block at the
      window edge ([max_srcs * max_block_uops]).

    Codes:
    - [CM001] (info) — predicted copy counts and rates.
    - [CM002] (info) — hop- and latency-weighted predicted copy cost.
    - [CM003] (info) — static per-cluster load and imbalance.
    - [CM004] (warning) — predicted copy rate above threshold.
    - [CM005] (warning) — static load imbalance above threshold.
    - [CM006] (error) — the annotation names a cluster or virtual
      cluster out of range (a corrupted placement).

    The drift codes [CM100..CM103] comparing these bounds against a
    recorded run live in {!Dyn_check}. *)

open Clusteer_isa
module Topology = Clusteer_topo.Topology

type placement_kind =
  | Static_placement  (** [cluster_of]: OB / RHOP *)
  | Virtual_placement  (** [vc_of] + initial table [v mod clusters] *)
  | Dynamic_placement  (** no annotation: the hardware roams freely *)

type t = {
  kind : placement_kind;
  clusters : int;
  domains : int;  (** placement domains (VCs or clusters); 0 if dynamic *)
  topology : Topology.t;
  uops : int;  (** static micro-ops *)
  reg_uses : int;  (** distinct-register source operands, program-wide *)
  must_cross : int;  (** uses that will copy under the initial mapping *)
  may_cross : int;  (** uses that may copy under any reachable mapping *)
  pred_copy_rate : float;  (** [must_cross / uops] *)
  bound_copy_rate : float;
      (** max over blocks of (may-cross uses / block uops) — the sound
          per-dispatched-uop copy rate *)
  pred_hops : int;  (** hop-weighted must-cross cost *)
  pred_latency : int;  (** latency-weighted must-cross cost, cycles *)
  load : int array;  (** static uops per physical cluster *)
  unplaced : int;  (** uops with no static placement *)
  imbalance : float;
      (** max per-cluster load relative to the best integer split over
          the clusters the placement can address (a [vcN] annotation
          addresses [min N clusters] under the initial table); [1.0] =
          as even as an integer assignment allows *)
  peak_live : int;  (** INT + FP peak pressure (remap stranding bound) *)
  max_block_uops : int;
  max_srcs : int;  (** largest distinct-register source count of a uop *)
  iterations : int;  (** solver transfer applications *)
}

val codes : string list
val kind_name : placement_kind -> string

val analyze :
  program:Program.t ->
  annot:Annot.t ->
  topology:Topology.t ->
  clusters:int ->
  ?liveness:Liveness.t ->
  unit ->
  t * Diag.t list
(** Run the reaching-origins analysis and assemble the model. The
    returned diagnostics are the CM006 errors found while reading the
    annotation (out-of-range entries are treated as unplaced and the
    analysis continues, so one corrupt entry cannot hide another).
    [liveness] avoids recomputing pressure when the caller already has
    it. *)

val check : ?max_copy_rate:float -> ?max_imbalance:float -> t -> Diag.t list
(** Render CM001..CM005 from a model. Defaults: [max_copy_rate] 2.0
    predicted copies per uop, [max_imbalance] 4.0 (the compiler's CP002
    uses the same 4x convention); both are cleared with margin by every
    built-in workload under the built-in policies and topologies
    (pinned by [make analyze-smoke]; the worst built-in is OB's 3.3x
    static skew on the 8-cluster mesh). *)

val copy_bound : t -> dispatched:int -> remaps:int -> int
(** The largest dynamic [copies_generated] consistent with the model
    for a run that dispatched [dispatched] program uops and remapped
    [remaps] times. *)

val to_json : t -> Clusteer_obs.Json.t
