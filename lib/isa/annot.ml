type t = {
  scheme : string;
  virtual_clusters : int;
  vc_of : int array;
  leader : bool array;
  cluster_of : int array;
}

let blank ~scheme ~virtual_clusters ~uop_count =
  {
    scheme;
    virtual_clusters;
    vc_of = Array.make uop_count (-1);
    leader = Array.make uop_count false;
    cluster_of = Array.make uop_count (-1);
  }

let none ~uop_count = blank ~scheme:"none" ~virtual_clusters:0 ~uop_count

let create_virtual ~scheme ~virtual_clusters ~uop_count =
  if virtual_clusters <= 0 then
    invalid_arg "Annot.create_virtual: need at least one virtual cluster";
  blank ~scheme ~virtual_clusters ~uop_count

let create_static ~scheme ~uop_count =
  blank ~scheme ~virtual_clusters:0 ~uop_count

let copy t =
  {
    t with
    vc_of = Array.copy t.vc_of;
    leader = Array.copy t.leader;
    cluster_of = Array.copy t.cluster_of;
  }

let validate t ~clusters =
  let n = Array.length t.vc_of in
  if Array.length t.leader <> n || Array.length t.cluster_of <> n then
    invalid_arg "Annot.validate: ragged annotation arrays";
  Array.iteri
    (fun i vc ->
      if vc <> -1 && (vc < 0 || vc >= t.virtual_clusters) then
        invalid_arg
          (Printf.sprintf "Annot.validate: uop %d has vc %d out of range" i vc);
      if t.leader.(i) && vc = -1 then
        invalid_arg
          (Printf.sprintf "Annot.validate: uop %d is a leader without a vc" i))
    t.vc_of;
  Array.iteri
    (fun i c ->
      if c <> -1 && (c < 0 || c >= clusters) then
        invalid_arg
          (Printf.sprintf "Annot.validate: uop %d has cluster %d out of range" i
             c))
    t.cluster_of

let chain_count t =
  Array.fold_left (fun acc l -> if l then acc + 1 else acc) 0 t.leader
