open Clusteer_uarch
module Bitset = Clusteer_util.Bitset
module Counters = Clusteer_obs.Counters

let make ?registry () =
  let decisions = Counters.counter ?registry "dep.decisions" in
  let vote_ties = Counters.histogram ?registry "dep.vote_ties" in
  (* Decision-path scratch: see [Op.make] — the per-uop path must not
     allocate. *)
  let votes = ref [||] in
  let src_buf = ref [||] in
  let dispatch_to = ref [||] in
  let best_votes = ref 0 in
  let ties = ref 0 in
  let best = ref 0 in
  let decide view duop =
    Counters.incr decisions;
    let clusters = view.Policy.clusters in
    if Array.length !votes < clusters then begin
      votes := Array.make clusters 0;
      dispatch_to := Array.init clusters (fun c -> Policy.Dispatch_to c)
    end;
    let votes = !votes in
    let nsrcs =
      Array.length duop.Clusteer_trace.Dynuop.suop.Clusteer_isa.Uop.srcs
    in
    if Array.length !src_buf < nsrcs then
      src_buf := Array.make nsrcs Bitset.empty;
    let n = view.Policy.src_locations_into duop !src_buf in
    Array.fill votes 0 clusters 0;
    for i = 0 to n - 1 do
      let loc = (!src_buf).(i) in
      for c = 0 to clusters - 1 do
        if Bitset.mem loc c then votes.(c) <- votes.(c) + 1
      done
    done;
    best_votes := 0;
    for c = 0 to clusters - 1 do
      if votes.(c) > !best_votes then best_votes := votes.(c)
    done;
    ties := 0;
    for c = 0 to clusters - 1 do
      if votes.(c) = !best_votes then incr ties
    done;
    Counters.observe vote_ties !ties;
    best := -1;
    for c = clusters - 1 downto 0 do
      if
        votes.(c) = !best_votes
        && (!best = -1 || view.Policy.inflight c < view.Policy.inflight !best)
      then best := c
    done;
    (!dispatch_to).(!best)
  in
  {
    Policy.name = "dep";
    decide;
    uses_dependence_check = true;
    uses_vote_unit = true;
  }
