open Clusteer_isa
module Uarch = Clusteer_uarch
module Trace = Clusteer_trace

type event = { uop : int; cluster : int }

let recording (policy : Uarch.Policy.t) =
  let events = ref [] in
  let decide view duop =
    let d = policy.Uarch.Policy.decide view duop in
    (match d with
    | Uarch.Policy.Dispatch_to cluster ->
        events := { uop = Trace.Dynuop.static_id duop; cluster } :: !events
    | Uarch.Policy.Stall -> ());
    d
  in
  ({ policy with Uarch.Policy.decide }, fun () -> List.rev !events)

let check ~annot ~clusters events =
  let n = Array.length annot.Annot.vc_of in
  let nvc = annot.Annot.virtual_clusters in
  let table = Array.init (max nvc 0) (fun v -> v mod clusters) in
  let diags = ref [] in
  List.iteri
    (fun seq { uop; cluster } ->
      if uop < 0 || uop >= n then
        diags :=
          Diag.errorf ~uop ~code:"DYN001"
            "event %d names uop %d out of range [0, %d)" seq uop n
          :: !diags
      else begin
        let vc = annot.Annot.vc_of.(uop) in
        if vc >= 0 && vc < nvc then
          if annot.Annot.leader.(uop) then
            (* Leaders may remap: whatever the policy chose becomes the
               VC's table entry, exactly as the hardware would latch it. *)
            table.(vc) <- cluster
          else if table.(vc) <> cluster then
            diags :=
              Diag.errorf ~uop ~code:"DYN002"
                "event %d: non-leader of vc %d steered to cluster %d, table \
                 says %d"
                seq vc cluster table.(vc)
              :: !diags
      end)
    events;
  List.rev !diags
