lib/isa/block.ml: Array Format Printf Uop
