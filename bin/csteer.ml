(* csteer: command-line driver for the clusteer reproduction.

   Subcommands:
     list        enumerate the SPEC CPU2000 workload profiles
     simulate    run one simulation point under one configuration
     compile     run a software pass and print the partition summary
     check       statically verify programs and steering annotations
     analyze     static cost prediction + optional prediction-vs-run drift
     experiment  regenerate a paper table or figure
     serve       run the long-lived simulation service on a Unix socket
     submit      send one request (or a stats/shutdown command) to a server
     batch       send a newline-JSON batch of requests to a server
     metrics     scrape a server (or run one point) as Prometheus text
     runs        list / show / prune the run ledger *)

open Cmdliner
module Config = Clusteer_uarch.Config
module Stats = Clusteer_uarch.Stats
module Obs = Clusteer_obs
module Json = Clusteer_obs.Json
module Profile = Clusteer_workloads.Profile
module Spec2000 = Clusteer_workloads.Spec2000
module Pinpoints = Clusteer_workloads.Pinpoints
module Synth = Clusteer_workloads.Synth
module Runner = Clusteer_harness.Runner
module Experiments = Clusteer_harness.Experiments
module Serve = Clusteer_serve
module Topology = Clusteer_topo.Topology

(* Every subcommand body runs under this guard: an unwritable output
   path (--trace-out, CSV/report destinations, a dead server socket)
   surfaces as a one-line diagnostic and a non-zero exit, not a raw
   backtrace. *)
let protect f =
  try f () with
  | Sys_error msg ->
      Printf.eprintf "csteer: %s\n" msg;
      exit 1
  | Unix.Unix_error (err, fn, arg) ->
      Printf.eprintf "csteer: %s: %s%s\n" fn (Unix.error_message err)
        (if arg = "" then "" else Printf.sprintf " (%s)" arg);
      exit 1

(* ---- shared arguments -------------------------------------------- *)

let workload_arg =
  let doc = "Workload name (e.g. 181.mcf or just mcf)." in
  Arg.(required & opt (some string) None & info [ "w"; "workload" ] ~doc)

let clusters_arg =
  let doc = "Number of physical clusters." in
  Arg.(value & opt int 2 & info [ "c"; "clusters" ] ~doc)

let topology_arg =
  let doc =
    "Inter-cluster interconnect: $(b,p2p) (the paper's baseline, and the \
     default), $(b,bus), $(b,ring), $(b,mesh)CxR or $(b,hier)GxS (e.g. \
     mesh4x2, hier2x4). p2p/bus/ring take their size from \
     $(b,--clusters); mesh and hier carry their own cluster count."
  in
  Arg.(value & opt (some string) None & info [ "topology" ] ~doc ~docv:"NAME")

(* Machine for a cluster count plus an optional --topology override.
   Fixed-size shapes (meshCxR, hierGxS) set the cluster count
   themselves; the parametric shapes take it from --clusters. *)
let machine_of ~clusters topology =
  match topology with
  | None -> Config.default ~clusters
  | Some name -> (
      match Topology.of_name ~clusters name with
      | Ok topo ->
          {
            (Config.default ~clusters:topo.Topology.clusters) with
            Config.topology = topo;
          }
      | Error e ->
          Printf.eprintf "csteer: %s\n" e;
          exit 2)

(* Named workloads outside the SPEC profile table: the hand-written
   kernels and the adversarial steering scenarios, both explicit
   single-phase Builder programs. *)
let synth_workloads () =
  Clusteer_workloads.Kernels.all @ Clusteer_workloads.Adversarial.all

let uops_arg default =
  let doc = "Committed micro-ops to simulate per point." in
  Arg.(value & opt int default & info [ "n"; "uops" ] ~doc)

let config_conv =
  let print ppf c =
    Format.pp_print_string ppf (Clusteer.Configuration.name c)
  in
  Arg.conv (Clusteer.Configuration.of_name, print)

let config_arg =
  let doc =
    "Steering configuration: op, one-cluster, ob, rhop, vcN, op-parallel, \
     modN, dep, crit, thermal."
  in
  Arg.(
    value
    & opt config_conv (Clusteer.Configuration.Vc { virtual_clusters = 2 })
    & info [ "p"; "policy" ] ~doc)

(* ---- list ---------------------------------------------------------- *)

let list_cmd =
  let run () =
    let header = [| "name"; "suite"; "phases"; "ilp"; "mem"; "fp"; "footprint" |] in
    let rows =
      List.map
        (fun (p : Profile.t) ->
          [|
            p.Profile.name;
            Profile.suite_name p.Profile.suite;
            string_of_int p.Profile.phases;
            string_of_int p.Profile.ilp;
            Printf.sprintf "%.2f" p.Profile.mem_ratio;
            Printf.sprintf "%.2f" p.Profile.fp_ratio;
            Printf.sprintf "%dKB" p.Profile.footprint_kb;
          |])
        Spec2000.all
    in
    print_string (Clusteer_util.Table.render ~header rows)
  in
  Cmd.v (Cmd.info "list" ~doc:"List the SPEC CPU2000 workload profiles")
    Term.(const run $ const ())

(* ---- simulate ------------------------------------------------------ *)

type trace_format = Trace_json | Trace_csv

let trace_format_conv =
  let parse = function
    | "json" -> Ok Trace_json
    | "csv" -> Ok Trace_csv
    | s -> Error (`Msg (Printf.sprintf "unknown trace format %S" s))
  in
  let print ppf f =
    Format.pp_print_string ppf
      (match f with Trace_json -> "json" | Trace_csv -> "csv")
  in
  Arg.conv (parse, print)

let energy_json (e : Clusteer_uarch.Energy.breakdown) =
  Json.Obj
    [
      ("total", Json.Float e.Clusteer_uarch.Energy.total);
      ("per_uop", Json.Float e.Clusteer_uarch.Energy.per_uop);
      ("static", Json.Float e.Clusteer_uarch.Energy.static_);
      ("dynamic", Json.Float e.Clusteer_uarch.Energy.dynamic);
      ("copies", Json.Float e.Clusteer_uarch.Energy.copies);
    ]

let simulate workload clusters topology config uops phase trace_out
    trace_format stats_interval json_out ledger_dir profile_flag =
  protect @@ fun () ->
  let source =
    match List.assoc_opt workload (synth_workloads ()) with
    | Some w -> `Synth w
    | None -> (
        match Spec2000.find workload with
        | p -> `Spec p
        | exception Not_found ->
            Printf.eprintf
              "unknown workload %S (try `csteer list`; kernels/adversarial: \
               %s)\n"
              workload
              (String.concat ", " (List.map fst (synth_workloads ())));
            exit 1)
  in
      let profile =
        match source with
        | `Spec p -> p
        | `Synth w -> w.Synth.profile
      in
      (match source with
      | `Spec p ->
          let points = List.length (Pinpoints.points p) in
          if phase < 0 || phase >= points then begin
            Printf.eprintf "workload has only %d phases\n" points;
            exit 1
          end
      | `Synth _ ->
          if phase <> 0 then begin
            Printf.eprintf "workload has only 1 phase\n";
            exit 1
          end);
      if stats_interval < 0 then begin
        Printf.eprintf "--stats-interval must be non-negative\n";
        exit 1
      end;
      let machine = machine_of ~clusters topology in
      let clusters = machine.Config.clusters in
      (* Collect events/intervals only when some output wants them:
         an unobserved run keeps the zero-overhead engine path. *)
      let interval =
        if stats_interval > 0 then stats_interval
        else if trace_out <> None && trace_format = Trace_csv then 1000
        else 0
      in
      let collector =
        if trace_out <> None || interval > 0 then
          Some (Obs.Collector.create ~interval ())
        else None
      in
      Obs.Counters.reset Obs.Counters.default;
      (* A ledger entry wants phase timings in its snapshot, so asking
         for a ledger turns the profiler on. *)
      let profiled = profile_flag || ledger_dir <> None in
      let prof = if profiled then Some (Obs.Profile.create ()) else None in
      let started = Unix.gettimeofday () in
      let obs _ = Option.map Obs.Collector.sink collector in
      let runs, wall_s, gc =
        Runner.measured (fun () ->
            match source with
            | `Spec p ->
                let point = List.nth (Pinpoints.points p) phase in
                (Runner.run_point ~machine ~configs:[ config ] ~uops ~obs
                   ?profile:prof point)
                  .Runner.runs
            | `Synth w ->
                Runner.run_workload ~machine ~configs:[ config ] ~uops ~obs
                  ?profile:prof w)
      in
      let name, stats = List.hd runs in
      Option.iter
        (fun dir ->
          let ledger = Obs.Ledger.create ~dir in
          let committed =
            Obs.Counters.value (Obs.Counters.counter "harness.uops_committed")
          in
          let s =
            Obs.Ledger.append ledger ~kind:"simulate"
              ~label:
                (Printf.sprintf "%s/%d/%s" profile.Profile.name phase name)
              ~config:
                (Json.Obj
                   [
                     ("workload", Json.Str profile.Profile.name);
                     ("phase", Json.Int phase);
                     ("config", Json.Str name);
                     ("clusters", Json.Int clusters);
                     ("uops", Json.Int uops);
                   ])
              ~started ~wall_s ~outcome:"ok" ~uops:committed ~gc
              Obs.Counters.default
          in
          Printf.eprintf "ledger: run %d recorded in %s\n" s.Obs.Ledger.id dir)
        ledger_dir;
      Option.iter
        (fun path ->
          let c = Option.get collector in
          (match trace_format with
          | Trace_json ->
              Obs.Chrome_trace.write ~path ~clusters
                ~events:(Obs.Collector.events c)
                ~samples:(Obs.Collector.samples c)
          | Trace_csv ->
              Clusteer_util.Csv.write ~path
                ~header:(Obs.Interval.csv_header ~clusters)
                (List.map Obs.Interval.csv_row (Obs.Collector.samples c)));
          Printf.eprintf "trace written to %s (%d events kept, %d dropped)\n"
            path
            (List.length (Obs.Collector.events c))
            (Obs.Collector.dropped c))
        trace_out;
      if json_out then
        (* Machine-readable mode: exactly one JSON document on stdout. *)
        (* The "topology" key appears only when --topology was given:
           default runs keep the exact document the pinned goldens
           (test/goldens/seed_*.json) were captured from. *)
        let topo_field =
          if topology = None then []
          else [ ("topology", Topology.to_json machine.Config.topology) ]
        in
        let doc =
          Json.Obj
            ([
               ("workload", Json.Str profile.Profile.name);
               ("phase", Json.Int phase);
               ("config", Json.Str name);
               ("clusters", Json.Int clusters);
             ]
            @ topo_field
            @ [
              ("uops", Json.Int uops);
              ("stats", Stats.to_json stats);
              ( "energy",
                energy_json (Clusteer_uarch.Energy.estimate ~clusters stats) );
              ("counters", Obs.Counters.to_json Obs.Counters.default);
              ( "intervals",
                match collector with
                | None -> Json.Null
                | Some c ->
                    Json.List
                      (List.map Obs.Interval.to_json (Obs.Collector.samples c))
              );
            ])
        in
        print_endline (Json.to_string doc)
      else begin
        Printf.printf "%s phase %d under %s on %d clusters (%d uops):\n"
          profile.Profile.name phase name clusters uops;
        if topology <> None then
          Printf.printf "interconnect: %s\n"
            (Topology.describe machine.Config.topology);
        Format.printf "%a@." Stats.pp stats;
        let e = Clusteer_uarch.Energy.estimate ~clusters stats in
        Printf.printf
          "energy: %.0f units (%.2f/uop), %.0f%% static, %.1f%% of dynamic in copies\n"
          e.Clusteer_uarch.Energy.total e.Clusteer_uarch.Energy.per_uop
          (100. *. e.Clusteer_uarch.Energy.static_
          /. Float.max 1e-9 e.Clusteer_uarch.Energy.total)
          (100. *. e.Clusteer_uarch.Energy.copies
          /. Float.max 1e-9 e.Clusteer_uarch.Energy.dynamic);
        if collector <> None || profiled then
          Format.printf "steering counters:@,%a@." Obs.Counters.pp
            Obs.Counters.default
      end

let simulate_cmd =
  let phase =
    Arg.(value & opt int 0 & info [ "phase" ] ~doc:"Simulation point index.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ]
          ~doc:
            "Write an execution trace to this file (see $(b,--trace-format)).")
  in
  let trace_format =
    Arg.(
      value
      & opt trace_format_conv Trace_json
      & info [ "trace-format" ]
          ~doc:
            "Trace file format: $(b,json) is a Chrome trace_event file \
             (open in chrome://tracing or ui.perfetto.dev), $(b,csv) is \
             the per-interval telemetry series.")
  in
  let stats_interval =
    Arg.(
      value
      & opt int 0
      & info [ "stats-interval" ]
          ~doc:
            "Emit interval telemetry (IPC, copy rate, stall breakdown, \
             per-cluster dispatch share) every $(docv) cycles; 0 disables."
          ~docv:"CYCLES")
  in
  let json_out =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print final statistics (plus steering counters and any \
             interval series) as a single JSON document on stdout.")
  in
  let ledger_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "ledger" ]
          ~doc:
            "Record the run in the ledger at $(docv) (implies \
             $(b,--profile)); inspect with $(b,csteer runs)."
          ~docv:"DIR")
  in
  let profile_flag =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Attach the pipeline self-profiler: per-phase wall-time \
             histograms ($(b,profile.engine.*.ns)) in the counter \
             registry.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run one simulation point under one configuration")
    Term.(
      const simulate $ workload_arg $ clusters_arg $ topology_arg $ config_arg
      $ uops_arg 20_000 $ phase $ trace_out $ trace_format $ stats_interval
      $ json_out $ ledger_dir $ profile_flag)

(* ---- compile ------------------------------------------------------- *)

let compile workload clusters config emit =
  protect @@ fun () ->
  match Spec2000.find workload with
  | exception Not_found ->
      Printf.eprintf "unknown workload %S\n" workload;
      exit 1
  | profile ->
      let w = Synth.build profile in
      let annot, _policy =
        Clusteer.Configuration.prepare config ~program:w.Synth.program
          ~likely:w.Synth.likely ~clusters ()
      in
      let n = w.Synth.program.Clusteer_isa.Program.uop_count in
      Printf.printf "%s: %d static micro-ops, scheme %s\n" profile.Profile.name
        n annot.Clusteer_isa.Annot.scheme;
      if annot.Clusteer_isa.Annot.virtual_clusters > 0 then begin
        let diag =
          Clusteer_compiler.Diagnostics.of_annot ~program:w.Synth.program
            ~likely:w.Synth.likely ~annot ()
        in
        Format.printf "%a@." Clusteer_compiler.Diagnostics.pp diag;
        (* Partition-quality findings share the analyzer's diagnostic
           vocabulary, so compile and check output read identically. *)
        List.iter
          (fun d -> Format.printf "%a@." Clusteer_isa.Diag.pp d)
          (Clusteer_compiler.Diagnostics.findings diag)
      end
      else begin
        let assigned =
          Array.to_list annot.Clusteer_isa.Annot.cluster_of
          |> List.filter (fun c -> c >= 0)
        in
        let counts = Array.make (max 1 clusters) 0 in
        List.iter (fun c -> counts.(c) <- counts.(c) + 1) assigned;
        Printf.printf "static clusters: %s\n"
          (String.concat " " (Array.to_list (Array.map string_of_int counts)))
      end;
      Option.iter
        (fun path ->
          Clusteer_isa.Annot_io.save ~path annot;
          Printf.printf "annotation written to %s\n" path)
        emit

let compile_cmd =
  let emit =
    Arg.(
      value
      & opt (some string) None
      & info [ "emit" ] ~doc:"Write the annotation (the ISA side channel) to a file.")
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Run a software steering pass and summarise the partition")
    Term.(const compile $ workload_arg $ clusters_arg $ config_arg $ emit)

(* ---- check --------------------------------------------------------- *)

module Analysis = Clusteer_analysis
module Diag = Clusteer_isa.Diag

let split_csv s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun s -> s <> "")

(* Default policy set: the three software schemes whose annotations the
   analyzer has invariants for, plus the clusters-wide VC variant on
   bigger machloads (Table 3's configuration list). *)
let default_check_policies clusters =
  let base =
    [
      Clusteer.Configuration.Ob;
      Clusteer.Configuration.Rhop;
      Clusteer.Configuration.Vc { virtual_clusters = 2 };
    ]
  in
  if clusters <> 2 then
    base @ [ Clusteer.Configuration.Vc { virtual_clusters = clusters } ]
  else base

(* Workload selection shared by check and analyze: --all covers every
   SPEC profile plus the three adversarial scenarios — the generator's
   outputs are part of the checked surface. *)
let resolve_synths ~cmd ~all workloads =
  if all then
    List.map Synth.build Spec2000.all
    @ List.map snd Clusteer_workloads.Adversarial.all
  else
    match workloads with
    | None ->
        Printf.eprintf "csteer: %s needs -w WORKLOADS or --all\n" cmd;
        exit 2
    | Some names ->
        List.map
          (fun name ->
            match List.assoc_opt name (synth_workloads ()) with
            | Some w -> w
            | None -> (
                match Spec2000.find name with
                | p -> Synth.build p
                | exception Not_found ->
                    Printf.eprintf "unknown workload %S (try `csteer list`)\n"
                      name;
                    exit 2))
          (split_csv names)

let resolve_configs ~machine policies =
  match policies with
  | None -> default_check_policies machine.Config.clusters
  | Some names ->
      List.map
        (fun name ->
          match Clusteer.Configuration.of_name name with
          | Ok c -> c
          | Error (`Msg e) ->
              Printf.eprintf "csteer: %s\n" e;
              exit 2)
        (split_csv names)

(* --annot swaps in an externally supplied annotation, which only makes
   sense against exactly one workload × policy. *)
let restrict_annot ~annot_file ~synths ~configs =
  match annot_file with
  | Some _ when List.length synths > 1 || List.length configs > 1 ->
      Printf.eprintf
        "csteer: --annot applies to exactly one workload and one policy\n";
      exit 2
  | _ -> ()

let check_one ~machine ~passes ~region_uops ~annot_file ~dynamic ~dynamic_uops
    (w : Synth.t) config =
  let clusters = machine.Config.clusters in
  let program = w.Synth.program and likely = w.Synth.likely in
  let annot, policy =
    Clusteer.Configuration.prepare config ~program ~likely ~clusters
      ~region_uops ()
  in
  let annot =
    match annot_file with
    | None -> annot
    | Some path -> Clusteer_isa.Annot_io.load ~path
  in
  let claimed =
    if annot.Clusteer_isa.Annot.virtual_clusters > 0 then
      Some
        (Clusteer_compiler.Diagnostics.of_annot ~program ~likely ~annot
           ~region_uops ())
    else None
  in
  let critical =
    match config with
    | Clusteer.Configuration.Crit ->
        Some (Clusteer_compiler.Crit_hints.compute ~program ~likely ~region_uops ())
    | _ -> None
  in
  let events =
    if dynamic && annot.Clusteer_isa.Annot.virtual_clusters > 0 then begin
      (* Replay the actual policy on the real trace, recording every
         steering decision for the DYN invariant pass. *)
      let recording_policy, recorded = Analysis.Dyn_check.recording policy in
      let prewarm =
        Array.to_list
          (Array.map Clusteer_trace.Mem_model.extent w.Synth.streams)
      in
      let engine =
        Clusteer_uarch.Engine.create ~config:machine ~annot
          ~policy:recording_policy ~prewarm ()
      in
      let gen = Synth.trace w ~seed:1 in
      let (_ : Stats.t) =
        Clusteer_uarch.Engine.run ~warmup:0 engine
          ~source:(fun () -> Clusteer_trace.Tracegen.next gen)
          ~uops:dynamic_uops
      in
      Some (recorded ())
    end
    else None
  in
  let label =
    Printf.sprintf "%s/%s" w.Synth.profile.Profile.name
      (Clusteer.Configuration.name config)
  in
  let target =
    Analysis.Checker.target ~label ~region_uops ?claimed ?critical ?events
      ~program ~likely ~annot ~config:machine ()
  in
  (* The cost model also feeds the text summary's prediction columns;
     recomputing it here is cheap and keeps the pass selection (which
     may exclude "cost") independent of the report format. *)
  let model, _ =
    Analysis.Cost_model.analyze ~program ~annot
      ~topology:machine.Config.topology ~clusters ()
  in
  (label, model, Analysis.Checker.run ~passes target)

let check all workloads clusters topology policies passes annot_file dynamic
    dynamic_uops region_uops strict json =
  protect @@ fun () ->
  let passes =
    match Analysis.Checker.select (split_csv passes) with
    | Ok ps -> ps
    | Error e ->
        Printf.eprintf
          "csteer: %s (expected ir, liv, vc, place, cost, dyn, topo, meta)\n" e;
        exit 2
  in
  let synths = resolve_synths ~cmd:"check" ~all workloads in
  let machine = machine_of ~clusters topology in
  let configs = resolve_configs ~machine policies in
  restrict_annot ~annot_file ~synths ~configs;
  let reports =
    List.concat_map
      (fun w ->
        List.map
          (check_one ~machine ~passes ~region_uops ~annot_file ~dynamic
             ~dynamic_uops w)
          configs)
      synths
  in
  let failed =
    List.exists
      (fun (_, _, diags) -> Analysis.Checker.failed ~strict diags)
      reports
  in
  if json then
    print_endline
      (Json.to_string
         (Json.Obj
            [
              ("strict", Json.Bool strict);
              ("failed", Json.Bool failed);
              ( "targets",
                Json.List
                  (List.map
                     (fun (label, _, diags) ->
                       Analysis.Checker.report_json ~label diags)
                     reports) );
            ]))
  else begin
    List.iter
      (fun (label, model, diags) ->
        let errors = Diag.count Diag.Error diags in
        let warnings = Diag.count Diag.Warning diags in
        let infos = Diag.count Diag.Info diags in
        Printf.printf
          "%s: %d error(s), %d warning(s), %d info | %s, pred %.3f copies/uop, \
           imbalance %.2f\n"
          label errors warnings infos
          (Analysis.Cost_model.kind_name model.Analysis.Cost_model.kind)
          model.Analysis.Cost_model.pred_copy_rate
          model.Analysis.Cost_model.imbalance;
        List.iter
          (fun d ->
            if d.Diag.severity <> Diag.Info || strict then
              Format.printf "  %a@." Diag.pp d)
          diags)
      reports;
    Printf.printf "checked %d target(s): %s\n" (List.length reports)
      (if failed then "FAIL" else "ok")
  end;
  if failed then exit 1

let check_cmd =
  let all =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"Check every built-in workload profile.")
  in
  let workloads =
    Arg.(
      value
      & opt (some string) None
      & info [ "w"; "workloads" ]
          ~doc:"Comma-separated workload names (e.g. mcf,gzip)."
          ~docv:"NAMES")
  in
  let policies =
    Arg.(
      value
      & opt (some string) None
      & info [ "p"; "policies" ]
          ~doc:
            "Comma-separated steering configurations to verify (default: \
             ob,rhop,vc2, plus vcN on an N-cluster machine)."
          ~docv:"NAMES")
  in
  let passes =
    Arg.(
      value & opt string ""
      & info [ "passes" ]
          ~doc:
            "Comma-separated pass subset: $(b,ir), $(b,liv), $(b,vc), \
             $(b,place), $(b,cost), $(b,dyn), $(b,topo), $(b,meta). \
             Default: all applicable passes."
          ~docv:"LIST")
  in
  let annot_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "annot" ]
          ~doc:
            "Verify this annotation file (from $(b,csteer compile --emit)) \
             instead of the freshly compiled one. Requires a single \
             workload and policy."
          ~docv:"FILE")
  in
  let dynamic =
    Arg.(
      value & flag
      & info [ "dynamic" ]
          ~doc:
            "Also replay the steering policy on the real trace and verify \
             the VC-table remap contract (leaders may remap, followers \
             must follow).")
  in
  let dynamic_uops =
    Arg.(
      value & opt int 5_000
      & info [ "dynamic-uops" ]
          ~doc:"Committed micro-ops to replay under $(b,--dynamic)."
          ~docv:"N")
  in
  let region_uops =
    Arg.(
      value & opt int 512
      & info [ "region-uops" ]
          ~doc:"Region size used when recomputing chains and slack."
          ~docv:"N")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ] ~doc:"Treat warnings as failures (info never fails).")
  in
  let json_out =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print one JSON document with per-target diagnostics.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Statically verify programs and steering annotations: IR \
          well-formedness, chain/leader invariants, static placement and \
          (optionally) the dynamic remap contract")
    Term.(
      const check $ all $ workloads $ clusters_arg $ topology_arg $ policies
      $ passes $ annot_file $ dynamic $ dynamic_uops $ region_uops $ strict
      $ json_out)

(* ---- analyze ------------------------------------------------------- *)

(* Static-analysis report: liveness plus the communication cost model
   per target, optionally validated against a fresh simulation
   (--vs-run). Where [check] is a pass/fail gate that hides info
   findings unless --strict, [analyze] is a report: the LIV/CM infos
   are the point, so they always print. *)

let analyze_one ~machine ~region_uops ~annot_file ~vs_run ~run_uops
    ~max_copy_rate ~max_imbalance (w : Synth.t) config =
  let clusters = machine.Config.clusters in
  let topology = machine.Config.topology in
  let program = w.Synth.program and likely = w.Synth.likely in
  (* Private counter registry per target: the drift check reads the
     policy's remap counters, and targets must not share mutable
     counter state. The topology is threaded into the policy the same
     way the harness does, so a --vs-run replay steers exactly like
     [csteer simulate] on the same fabric. *)
  let registry = Obs.Counters.create () in
  let params =
    {
      Clusteer.Configuration.default_params with
      Clusteer.Configuration.topology = Some topology;
    }
  in
  let annot, policy =
    Clusteer.Configuration.prepare config ~program ~likely ~clusters
      ~region_uops ~params ~registry ()
  in
  let annot =
    match annot_file with
    | None -> annot
    | Some path -> Clusteer_isa.Annot_io.load ~path
  in
  let liveness = Analysis.Liveness.analyze program in
  let model, corrupt =
    Analysis.Cost_model.analyze ~program ~annot ~topology ~clusters ~liveness
      ()
  in
  let static_diags =
    Analysis.Liveness.check ~int_budget:machine.Config.int_regfile
      ~fp_budget:machine.Config.fp_regfile program
    @ corrupt
    @ Analysis.Cost_model.check ?max_copy_rate ?max_imbalance model
  in
  let drift, dispatched =
    if not vs_run then ([], 0)
    else begin
      let prewarm =
        Array.to_list
          (Array.map Clusteer_trace.Mem_model.extent w.Synth.streams)
      in
      let engine =
        Clusteer_uarch.Engine.create ~config:machine ~annot ~policy ~prewarm
          ()
      in
      let gen = Synth.trace w ~seed:1 in
      let stats =
        Clusteer_uarch.Engine.run ~warmup:0 engine
          ~source:(fun () -> Clusteer_trace.Tracegen.next gen)
          ~uops:run_uops
      in
      let run = Analysis.Dyn_check.observe_run ~registry stats in
      ( Analysis.Dyn_check.check_drift ~model run,
        run.Analysis.Dyn_check.dispatched )
    end
  in
  let diags = List.sort Diag.compare (static_diags @ drift) in
  let label =
    Printf.sprintf "%s/%s" w.Synth.profile.Profile.name
      (Clusteer.Configuration.name config)
  in
  (label, model, diags, dispatched)

let analyze all workloads clusters topology policies annot_file region_uops
    vs_run run_uops max_copy_rate max_imbalance strict json ledger_dir =
  protect @@ fun () ->
  let synths = resolve_synths ~cmd:"analyze" ~all workloads in
  let machine = machine_of ~clusters topology in
  let configs = resolve_configs ~machine policies in
  restrict_annot ~annot_file ~synths ~configs;
  let started = Unix.gettimeofday () in
  let reports, wall_s, gc =
    Runner.measured (fun () ->
        List.concat_map
          (fun w ->
            List.map
              (analyze_one ~machine ~region_uops ~annot_file ~vs_run
                 ~run_uops ~max_copy_rate ~max_imbalance w)
              configs)
          synths)
  in
  let failed =
    List.exists
      (fun (_, _, diags, _) -> Analysis.Checker.failed ~strict diags)
      reports
  in
  if json then
    print_endline
      (Json.to_string
         (Json.Obj
            [
              ("strict", Json.Bool strict);
              ("vs_run", Json.Bool vs_run);
              ("topology", Topology.to_json machine.Config.topology);
              ("failed", Json.Bool failed);
              ( "targets",
                Json.List
                  (List.map
                     (fun (label, model, diags, dispatched) ->
                       Json.Obj
                         [
                           ("target", Json.Str label);
                           ("model", Analysis.Cost_model.to_json model);
                           ("dispatched", Json.Int dispatched);
                           ( "errors",
                             Json.Int (Diag.count Diag.Error diags) );
                           ( "warnings",
                             Json.Int (Diag.count Diag.Warning diags) );
                           ("infos", Json.Int (Diag.count Diag.Info diags));
                           ( "diagnostics",
                             Json.List (List.map Diag.to_json diags) );
                         ])
                     reports) );
            ]))
  else begin
    List.iter
      (fun (label, model, diags, _) ->
        let open Analysis.Cost_model in
        Printf.printf
          "%s: %s placement, %d uops, %d/%d uses cross (pred %.3f \
           copies/uop, bound %.3f), %d hops / %d cycles, imbalance %.2f\n"
          label (kind_name model.kind) model.uops model.must_cross
          model.reg_uses model.pred_copy_rate model.bound_copy_rate
          model.pred_hops model.pred_latency model.imbalance;
        List.iter (fun d -> Format.printf "  %a@." Diag.pp d) diags)
      reports;
    Printf.printf "analyzed %d target(s)%s: %s\n" (List.length reports)
      (if vs_run then " with drift check" else "")
      (if failed then " FAIL" else "ok")
  end;
  Option.iter
    (fun dir ->
      let ledger = Obs.Ledger.create ~dir in
      let total_dispatched =
        List.fold_left (fun acc (_, _, _, d) -> acc + d) 0 reports
      in
      let s =
        Obs.Ledger.append ledger ~kind:"analyze"
          ~label:
            (Printf.sprintf "analyze/%d-targets%s" (List.length reports)
               (if vs_run then "/vs-run" else ""))
          ~config:
            (Json.Obj
               [
                 ("targets", Json.Int (List.length reports));
                 ("clusters", Json.Int machine.Config.clusters);
                 ( "topology",
                   Json.Str (Topology.name machine.Config.topology) );
                 ("strict", Json.Bool strict);
                 ("vs_run", Json.Bool vs_run);
               ])
          ~started ~wall_s
          ~outcome:(if failed then "fail" else "ok")
          ~uops:total_dispatched ~gc
          (Obs.Counters.create ())
      in
      Printf.eprintf "ledger: run %d recorded in %s\n" s.Obs.Ledger.id dir)
    ledger_dir;
  if failed then exit 1

let analyze_cmd =
  let all =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"Analyze every built-in workload profile.")
  in
  let workloads =
    Arg.(
      value
      & opt (some string) None
      & info [ "w"; "workloads" ]
          ~doc:"Comma-separated workload names (e.g. mcf,gzip)."
          ~docv:"NAMES")
  in
  let policies =
    Arg.(
      value
      & opt (some string) None
      & info [ "p"; "policies" ]
          ~doc:
            "Comma-separated steering configurations to model (default: \
             ob,rhop,vc2, plus vcN on an N-cluster machine)."
          ~docv:"NAMES")
  in
  let annot_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "annot" ]
          ~doc:
            "Model this annotation file (from $(b,csteer compile --emit)) \
             instead of the freshly compiled one. Requires a single \
             workload and policy."
          ~docv:"FILE")
  in
  let region_uops =
    Arg.(
      value & opt int 512
      & info [ "region-uops" ]
          ~doc:"Region size used by the compiler passes." ~docv:"N")
  in
  let vs_run =
    Arg.(
      value & flag
      & info [ "vs-run" ]
          ~doc:
            "Also simulate each target and verify the dynamic copy and \
             remap counters land inside the static bounds (drift codes \
             CM100..CM103).")
  in
  let run_uops =
    Arg.(
      value & opt int 20_000
      & info [ "n"; "uops" ]
          ~doc:"Committed micro-ops to simulate under $(b,--vs-run)."
          ~docv:"N")
  in
  let max_copy_rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "cm-max-copy-rate" ]
          ~doc:
            "CM004 threshold: predicted copies per micro-op above which \
             the placement is flagged (default 2.0)."
          ~docv:"RATE")
  in
  let max_imbalance =
    Arg.(
      value
      & opt (some float) None
      & info [ "cm-max-imbalance" ]
          ~doc:
            "CM005 threshold: static load imbalance (max cluster load over \
             the best integer split) above which the placement is flagged \
             (default 4.0)."
          ~docv:"X")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ] ~doc:"Treat warnings as failures (info never fails).")
  in
  let json_out =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print one JSON document with the per-target model and \
             diagnostics.")
  in
  let ledger_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "ledger" ]
          ~doc:
            "Record the analysis in the ledger at $(docv); inspect with \
             $(b,csteer runs)."
          ~docv:"DIR")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Predict placement cost statically — liveness, criticality and \
          the communication cost model — and optionally verify a real run \
          stays inside the predicted bounds")
    Term.(
      const analyze $ all $ workloads $ clusters_arg $ topology_arg
      $ policies $ annot_file $ region_uops $ vs_run $ run_uops
      $ max_copy_rate $ max_imbalance $ strict $ json_out $ ledger_dir)

(* ---- stats ---------------------------------------------------------- *)

let workload_stats workload uops =
  let w =
    match List.assoc_opt workload (synth_workloads ()) with
    | Some k -> k
    | None -> (
        match Spec2000.find workload with
        | profile -> Synth.build profile
        | exception Not_found ->
            Printf.eprintf
              "unknown workload %S (SPEC names, kernels or adversarial: %s)\n"
              workload
              (String.concat ", " (List.map fst (synth_workloads ())));
            exit 1)
  in
  let mix = Clusteer_workloads.Analysis.measure w ~uops ~seed:1 in
  Printf.printf "%s (%d static micro-ops):\n"
    w.Synth.profile.Profile.name w.Synth.program.Clusteer_isa.Program.uop_count;
  Format.printf "%a@." Clusteer_workloads.Analysis.pp mix

let stats_cmd =
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Measure a workload's dynamic instruction mix and footprint")
    Term.(const workload_stats $ workload_arg $ uops_arg 50_000)

(* ---- sweep ------------------------------------------------------------ *)

let sweep workload uops out =
  protect @@ fun () ->
  match Spec2000.find workload with
  | exception Not_found ->
      Printf.eprintf "unknown workload %S\n" workload;
      exit 1
  | profile ->
      let point = List.hd (Pinpoints.points profile) in
      let configs =
        [
          Clusteer.Configuration.Op;
          Clusteer.Configuration.One_cluster;
          Clusteer.Configuration.Ob;
          Clusteer.Configuration.Rhop;
          Clusteer.Configuration.Vc { virtual_clusters = 2 };
          Clusteer.Configuration.Mod_n { n = 3 };
          Clusteer.Configuration.Dep;
          Clusteer.Configuration.Crit;
          Clusteer.Configuration.Thermal;
        ]
      in
      let rows = ref [] in
      List.iter
        (fun clusters ->
          let machine = Config.default ~clusters in
          let result = Runner.run_point ~machine ~configs ~uops point in
          List.iter
            (fun (name, (stats : Stats.t)) ->
              rows :=
                [
                  string_of_int clusters;
                  name;
                  string_of_int stats.Stats.cycles;
                  Printf.sprintf "%.4f" (Stats.ipc stats);
                  string_of_int stats.Stats.copies_generated;
                  string_of_int (Stats.allocation_stalls stats);
                ]
                :: !rows)
            result.Runner.runs)
        [ 2; 4; 8 ];
      let header =
        [ "clusters"; "config"; "cycles"; "ipc"; "copies"; "alloc_stalls" ]
      in
      let rows = List.rev !rows in
      (match out with
      | Some path ->
          Clusteer_util.Csv.write ~path ~header rows;
          Printf.printf "wrote %s (%d rows)\n" path (List.length rows)
      | None ->
          print_string
            (Clusteer_util.Table.render
               ~header:(Array.of_list header)
               (List.map Array.of_list rows)))

let sweep_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~doc:"Write the sweep as CSV to this file.")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Sweep one simulation point over 2/4/8 clusters and every steering \
          configuration")
    Term.(const sweep $ workload_arg $ uops_arg 10_000 $ out)

(* ---- vliw ------------------------------------------------------------ *)

let vliw_compare workload clusters =
  let machine = Clusteer_vliw.Machine.default ~clusters in
  let single_block_loop (k : Synth.t) =
    (* body + exit: the shape the modulo scheduler pipelines. Multi-nest
       programs (e.g. adv-flip) take the acyclic per-region path. *)
    Array.length k.Synth.program.Clusteer_isa.Program.blocks = 2
  in
  match List.assoc_opt workload (synth_workloads ()) with
  | Some k when single_block_loop k ->
      (* Kernels are single-block loops: software-pipeline the body. *)
      let body =
        k.Clusteer_workloads.Synth.program.Clusteer_isa.Program.blocks.(0)
          .Clusteer_isa.Block.uops
      in
      let g = Clusteer_vliw.Modulo.loop_ddg_of_body body in
      let n = Array.length body in
      let local = Array.make n 0 in
      let spread = Array.init n (fun i -> i mod clusters) in
      let report name assignment =
        let r = Clusteer_vliw.Modulo.schedule machine g ~assignment () in
        Clusteer_vliw.Modulo.validate machine g ~assignment r;
        Printf.printf "  %-14s II=%d (mii %d), %d moves/iter\n" name
          r.Clusteer_vliw.Modulo.ii r.Clusteer_vliw.Modulo.mii
          r.Clusteer_vliw.Modulo.moves
      in
      Printf.printf "%s: modulo scheduling on the %d-cluster VLIW\n" workload
        clusters;
      report "one-cluster" local;
      report "round-robin" spread
  | other ->
      let w =
        match other with
        | Some k -> k
        | None -> (
            match Spec2000.find workload with
            | exception Not_found ->
                Printf.eprintf "unknown workload %S\n" workload;
                exit 1
            | profile -> Synth.build profile)
      in
      let program = w.Synth.program and likely = w.Synth.likely in
      let run name mode =
        let s = Clusteer_vliw.Eval.run machine ~program ~likely mode in
        Printf.printf "  %-14s static IPC %.2f  cycles %d  moves %d\n" name
          s.Clusteer_vliw.Eval.static_ipc s.Clusteer_vliw.Eval.cycles
          s.Clusteer_vliw.Eval.moves
      in
      Printf.printf "%s: acyclic scheduling on the %d-cluster VLIW\n"
        w.Synth.profile.Profile.name clusters;
      run "UAS" Clusteer_vliw.Eval.Unified;
      run "RHOP"
        (Clusteer_vliw.Eval.Fixed
           (fun g -> Clusteer_compiler.Rhop.assign_region g ~clusters));
      run "VC-partition"
        (Clusteer_vliw.Eval.Fixed
           (fun g ->
             Clusteer_compiler.Vc_partition.assign_region g
               ~virtual_clusters:clusters ()))

let vliw_cmd =
  Cmd.v
    (Cmd.info "vliw"
       ~doc:
         "Schedule a workload on the clustered VLIW substrate (kernels are \
          software-pipelined; SPEC points are list-scheduled per region)")
    Term.(const vliw_compare $ workload_arg $ clusters_arg)

(* ---- experiment ---------------------------------------------------- *)

let progress name = Printf.eprintf "  running %s...\n%!" name

let subset_profiles = function
  | None -> None
  | Some names ->
      let names = String.split_on_char ',' names in
      Some (List.map Spec2000.find names)

(* The --topology sweep: every built-in workload (the SPEC stand-ins
   plus the adversarial scenarios) on one machine whose interconnect
   is the named topology, under OP and the VC schemes — a per-fabric
   view of copy traffic, copy-queue stalls and IPC. Deterministic for
   any --domains. *)
let topology_sweep ~record_sweep ~uops ~profiles ~domains ~strategy ~profiled
    name =
  let topo =
    match Topology.of_name ~clusters:4 name with
    | Ok t -> t
    | Error e ->
        Printf.eprintf "csteer: %s\n" e;
        exit 2
  in
  let machine =
    {
      (Config.default ~clusters:topo.Topology.clusters) with
      Config.topology = topo;
    }
  in
  let clusters = machine.Config.clusters in
  let configs =
    Clusteer.Configuration.Op
    :: Clusteer.Configuration.Vc { virtual_clusters = 2 }
    ::
    (if clusters <> 2 then
       [ Clusteer.Configuration.Vc { virtual_clusters = clusters } ]
     else [])
  in
  let grouped, adv =
    record_sweep (fun () ->
        let grouped =
          Runner.run_grouped ~machine ~configs ~uops ?domains ~strategy
            ~profiled ~progress
            (Option.value profiles ~default:Spec2000.all)
        in
        let adv =
          List.map
            (fun (name, w) ->
              progress name;
              (name, Runner.run_workload ~machine ~configs ~uops w))
            Clusteer_workloads.Adversarial.all
        in
        (grouped, adv))
  in
  let fmt_row ~label ~config ~ipc ~copies ~stall ~links =
    [|
      label;
      config;
      Printf.sprintf "%.4f" ipc;
      Printf.sprintf "%.1f" copies;
      Printf.sprintf "%.1f" stall;
      Printf.sprintf "%.1f" links;
    |]
  in
  let per_kuop n (s : Stats.t) = 1000. *. float_of_int n /. float_of_int (max 1 s.Stats.committed) in
  let stall_pct (s : Stats.t) =
    100. *. float_of_int s.Stats.stall_copyq_full /. float_of_int (max 1 s.Stats.cycles)
  in
  let spec_rows =
    List.concat_map
      (fun ((p : Profile.t), results) ->
        List.map
          (fun cfg ->
            let config = Clusteer.Configuration.name cfg in
            let m f = Runner.weighted_metric results ~config ~f in
            fmt_row ~label:p.Profile.name ~config ~ipc:(m Stats.ipc)
              ~copies:(m (fun s -> per_kuop s.Stats.copies_generated s))
              ~stall:(m stall_pct)
              ~links:(m (fun s -> per_kuop s.Stats.link_transfers s)))
          configs)
      grouped
  in
  let adv_rows =
    List.concat_map
      (fun (label, runs) ->
        List.map
          (fun (config, (s : Stats.t)) ->
            fmt_row ~label ~config ~ipc:(Stats.ipc s)
              ~copies:(per_kuop s.Stats.copies_generated s)
              ~stall:(stall_pct s)
              ~links:(per_kuop s.Stats.link_transfers s))
          runs)
      adv
  in
  Printf.printf "topology sweep: %s\n" (Topology.describe machine.Config.topology);
  print_string
    (Clusteer_util.Table.render
       ~header:
         [| "workload"; "config"; "ipc"; "copies/kuop"; "copy_stall%"; "links/kuop" |]
       (spec_rows @ adv_rows))

let experiment which topology uops benchmarks csv_dir domains steal ledger_dir
    =
  protect @@ fun () ->
  let profiles = subset_profiles benchmarks in
  let strategy =
    if steal then Clusteer_util.Parallel.Steal else Clusteer_util.Parallel.Static
  in
  let label =
    match (which, topology) with
    | Some w, _ -> w
    | None, Some t -> "topo:" ^ t
    | None, None ->
        Printf.eprintf
          "csteer: experiment needs an EXPERIMENT name or --topology \
           (expected tables, sec21, fig5, fig6, fig56, fig7)\n";
        exit 2
  in
  (* A ledger entry wants phase timings, so it turns the per-shard
     profiler on; the sweep's merged registry then carries the
     profile.engine.*.ns histograms the entry snapshots. *)
  let profiled = ledger_dir <> None in
  let record_sweep f =
    Obs.Counters.reset Obs.Counters.default;
    let started = Unix.gettimeofday () in
    let run, wall_s, gc = Runner.measured f in
    Option.iter
      (fun dir ->
        let ledger = Obs.Ledger.create ~dir in
        let committed =
          Obs.Counters.value (Obs.Counters.counter "harness.uops_committed")
        in
        let s =
          Obs.Ledger.append ledger ~kind:"experiment" ~label
            ~config:
              (Json.Obj
                 [ ("experiment", Json.Str label); ("uops", Json.Int uops) ])
            ~started ~wall_s ~outcome:"ok" ~uops:committed ~gc
            Obs.Counters.default
        in
        Printf.eprintf "ledger: run %d recorded in %s\n" s.Obs.Ledger.id dir)
      ledger_dir;
    run
  in
  match (which, topology) with
  | None, Some name ->
      topology_sweep ~record_sweep ~uops ~profiles ~domains ~strategy
        ~profiled name
  | Some w, Some _ ->
      Printf.eprintf
        "csteer: --topology is its own sweep; drop the %S argument\n" w;
      exit 2
  | None, None -> assert false (* caught above *)
  | Some which, None -> (
  match which with
  | "tables" ->
      Experiments.print_table1 ();
      print_newline ();
      Experiments.print_table2 ~clusters:2;
      print_newline ();
      Experiments.print_table3 ()
  | "sec21" -> Experiments.print_section21 (Experiments.section21_example ())
  | "fig5" | "fig6" | "fig56" ->
      let run =
        record_sweep (fun () ->
            Experiments.run_2cluster ~uops ?profiles ~progress ?domains
              ~strategy ~profiled ())
      in
      if which <> "fig6" then begin
        let fig5 = Experiments.figure5_of run in
        Experiments.print_slowdown_figure
          ~title:"Figure 5: slowdown vs OP, 2-cluster machine" fig5;
        Option.iter
          (fun dir ->
            List.iter (Printf.eprintf "wrote %s\n")
              (Clusteer_harness.Report.write_slowdown_figure ~dir ~name:"fig5"
                 fig5))
          csv_dir
      end;
      if which <> "fig5" then begin
        let fig6 = Experiments.figure6_of run in
        Experiments.print_scatter_summary fig6;
        Option.iter
          (fun dir ->
            List.iter (Printf.eprintf "wrote %s\n")
              (Clusteer_harness.Report.write_scatter_figure ~dir fig6))
          csv_dir
      end
  | "fig7" ->
      let run =
        record_sweep (fun () ->
            Experiments.run_4cluster ~uops ?profiles ~progress ?domains
              ~strategy ~profiled ())
      in
      let fig7 = Experiments.figure7_of run in
      Experiments.print_slowdown_figure
        ~title:"Figure 7: slowdown vs OP, 4-cluster machine" fig7;
      Printf.printf "VC(4->4) copy inflation over VC(2->4): %.1f%% (paper: 28%%)\n"
        (Experiments.copy_inflation run);
      Option.iter
        (fun dir ->
          List.iter (Printf.eprintf "wrote %s\n")
            (Clusteer_harness.Report.write_slowdown_figure ~dir ~name:"fig7"
               fig7))
        csv_dir
  | other ->
      Printf.eprintf
        "unknown experiment %S (expected tables, sec21, fig5, fig6, fig56, fig7)\n"
        other;
      exit 1)

let experiment_cmd =
  let which =
    let doc =
      "Experiment: tables, sec21, fig5, fig6, fig56, fig7. Omit it with \
       $(b,--topology) to run the interconnect sweep instead."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"EXPERIMENT" ~doc)
  in
  let topology =
    let doc =
      "Run every built-in workload (SPEC stand-ins plus the adversarial \
       scenarios) on a machine with this interconnect: p2p, bus, ring, \
       mesh4x2, hier2x4, ... Parametric shapes use 4 clusters; mesh/hier \
       set their own cluster count."
    in
    Arg.(
      value & opt (some string) None & info [ "topology" ] ~doc ~docv:"NAME")
  in
  let benchmarks =
    let doc = "Comma-separated benchmark subset (default: full suite)." in
    Arg.(value & opt (some string) None & info [ "benchmarks" ] ~doc)
  in
  let csv =
    let doc = "Directory for CSV export of the figure data." in
    Arg.(value & opt (some string) None & info [ "csv" ] ~doc)
  in
  let domains =
    let doc =
      "Worker domains for the sweep (default: the host's recommended \
       domain count, capped at 8). Results are identical for any value: \
       simulation points are sharded deterministically and merged in \
       input order. Use 1 to force a sequential run."
    in
    Arg.(value & opt (some int) None & info [ "domains" ] ~doc ~docv:"N")
  in
  let steal =
    let doc =
      "Distribute simulation points dynamically (atomic-cursor work \
       stealing) instead of the default pre-partitioned shared-nothing \
       shards. Results are bit-identical either way; the static default \
       is faster on this uniform workload."
    in
    Arg.(value & flag & info [ "steal" ] ~doc)
  in
  let ledger_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "ledger" ]
          ~doc:
            "Record the sweep in the run ledger at $(docv), with per-shard \
             pipeline profiling; inspect with $(b,csteer runs)."
          ~docv:"DIR")
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:
         "Regenerate a table or figure from the paper, or sweep every \
          workload over an interconnect topology with $(b,--topology)")
    Term.(
      const experiment $ which $ topology $ uops_arg 20_000 $ benchmarks $ csv
      $ domains $ steal $ ledger_dir)

(* ---- serve / submit / batch ---------------------------------------- *)

let socket_arg =
  let doc = "Unix-domain socket path of the simulation service." in
  Arg.(
    value
    & opt string "_build/serve.sock"
    & info [ "s"; "socket" ] ~doc ~docv:"PATH")

let serve socket queue_depth domains cache_mb cache_dir ledger_dir
    profile_flag =
  protect @@ fun () ->
  if queue_depth < 1 then begin
    Printf.eprintf "--queue-depth must be positive\n";
    exit 1
  end;
  if cache_mb < 0 then begin
    Printf.eprintf "--cache-mb must be non-negative\n";
    exit 1
  end;
  let cfg =
    {
      (Serve.Server.default_config ~socket_path:socket) with
      Serve.Server.queue_depth;
      domains;
      cache_budget = cache_mb * 1024 * 1024;
      cache_dir;
      ledger_dir;
      profile = profile_flag;
      log = (fun msg -> Printf.eprintf "csteer serve: %s\n%!" msg);
    }
  in
  Serve.Server.serve cfg

let serve_cmd =
  let queue_depth =
    Arg.(
      value & opt int 64
      & info [ "queue-depth" ]
          ~doc:
            "Admission bound: simulate requests beyond this many \
             in-flight misses per batch are rejected with \
             $(b,queue_full) instead of queued without bound."
          ~docv:"N")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ]
          ~doc:"Worker-pool domains (default: the harness default, capped at 8)."
          ~docv:"N")
  in
  let cache_mb =
    Arg.(
      value & opt int 64
      & info [ "cache-mb" ]
          ~doc:"In-memory result-cache budget, in megabytes." ~docv:"MB")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ]
          ~doc:
            "Spill evicted cache entries to $(docv)/<hash>.json and serve \
             misses from there (e.g. $(b,_cache))."
          ~docv:"DIR")
  in
  let ledger_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "ledger" ]
          ~doc:
            "Record every batch in the run ledger at $(docv) (implies \
             $(b,--profile)); inspect with $(b,csteer runs)."
          ~docv:"DIR")
  in
  let profile_flag =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Attach the pipeline self-profiler: $(b,profile.serve.*.ns) \
             batch spans and the workers' $(b,profile.engine.*.ns) phase \
             timings, scrapeable via the $(b,metrics) command.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the batch simulation service on a Unix-domain socket until a \
          client sends shutdown")
    Term.(
      const serve $ socket_arg $ queue_depth $ domains $ cache_mb $ cache_dir
      $ ledger_dir $ profile_flag)

let print_simulate_response ~json line =
  if json then print_endline line
  else
    match Serve.Protocol.parse_response line with
    | Error e ->
        Printf.eprintf "csteer: unparseable response: %s\n" e;
        exit 1
    | Ok (Serve.Protocol.Result { hash; cached; result; _ }) ->
        let ipc =
          Option.bind (Json.member "stats" result) (Json.member "ipc")
          |> Option.map Json.to_float |> Option.join
        in
        let cycles =
          Option.bind (Json.member "stats" result) (Json.member "cycles")
          |> Option.map Json.to_int |> Option.join
        in
        Printf.printf "%s %s ipc=%s cycles=%s\n" hash
          (if cached then "cached" else "simulated")
          (match ipc with Some v -> Printf.sprintf "%.4f" v | None -> "?")
          (match cycles with Some v -> string_of_int v | None -> "?")
    | Ok (Serve.Protocol.Rejected { reason; _ }) ->
        Printf.eprintf "csteer: rejected: %s%s\n"
          (Serve.Protocol.reject_reason_name reason)
          (match reason with
          | Serve.Protocol.Check_failed m -> ": " ^ m
          | Serve.Protocol.Queue_full | Serve.Protocol.Timeout -> "");
        exit 1
    | Ok (Serve.Protocol.Error_reply { message; _ }) ->
        Printf.eprintf "csteer: server error: %s\n" message;
        exit 1
    | Ok _ ->
        Printf.eprintf "csteer: unexpected response\n";
        exit 1

let submit socket workload phase clusters config uops warmup seed deadline_ms
    stats shutdown json =
  protect @@ fun () ->
  if shutdown then begin
    match Serve.Client.shutdown ~socket with
    | Ok () -> if not json then Printf.eprintf "server shut down\n"
    | Error e ->
        Printf.eprintf "csteer: %s\n" e;
        exit 1
  end
  else if stats then begin
    match Serve.Client.stats ~socket with
    | Ok doc -> print_endline (Json.to_string doc)
    | Error e ->
        Printf.eprintf "csteer: %s\n" e;
        exit 1
  end
  else
    match workload with
    | None ->
        Printf.eprintf
          "csteer: submit needs -w WORKLOAD (or --stats / --shutdown)\n";
        exit 1
    | Some workload ->
        let request =
          Serve.Request.make ~workload ~phase ~clusters ~policy:config ~uops
            ?warmup ?seed ()
        in
        let line =
          Serve.Protocol.encode_command
            (Serve.Protocol.Simulate { id = 0; deadline_ms; request })
        in
        (match Serve.Client.call_lines ~socket [ line ] with
        | [ reply ] -> print_simulate_response ~json reply
        | _ ->
            Printf.eprintf "csteer: server closed the connection early\n";
            exit 1)

let submit_cmd =
  let workload =
    Arg.(
      value
      & opt (some string) None
      & info [ "w"; "workload" ] ~doc:"Workload name (e.g. 181.mcf or mcf).")
  in
  let phase =
    Arg.(value & opt int 0 & info [ "phase" ] ~doc:"Simulation point index.")
  in
  let warmup =
    Arg.(
      value
      & opt (some int) None
      & info [ "warmup" ] ~doc:"Explicit warmup budget (default: derived).")
  in
  let seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~doc:"Explicit trace seed (default: derived).")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ]
          ~doc:
            "Per-request deadline in milliseconds from arrival; an already \
             expired deadline (<= 0) is rejected with $(b,timeout) without \
             simulating."
          ~docv:"MS")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print the server's counter registry as JSON and exit.")
  in
  let shutdown =
    Arg.(value & flag & info [ "shutdown" ] ~doc:"Stop the server.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the raw response line (always exit 0).")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:"Submit one simulation request to a running csteer serve")
    Term.(
      const submit $ socket_arg $ workload $ phase $ clusters_arg $ config_arg
      $ uops_arg 20_000 $ warmup $ seed $ deadline_ms $ stats $ shutdown
      $ json)

(* Extract the verbatim result document from an ok response line; the
   encoder places it last, so this preserves byte identity. *)
let result_of_line line =
  let marker = {|,"result":|} in
  let mlen = String.length marker in
  let n = String.length line in
  let rec find i =
    if i + mlen > n then None
    else if String.sub line i mlen = marker then Some i
    else find (i + 1)
  in
  Option.map
    (fun i -> String.sub line (i + mlen) (n - i - mlen - 1))
    (find 0)

let batch socket file deadline_ms results_only =
  protect @@ fun () ->
  let read_all ic =
    let rec go acc =
      match input_line ic with
      | line -> go (line :: acc)
      | exception End_of_file -> List.rev acc
    in
    go []
  in
  let raw =
    if file = "-" then read_all stdin
    else begin
      let ic = open_in file in
      let lines = read_all ic in
      close_in ic;
      lines
    end
  in
  let raw = List.filter (fun l -> String.trim l <> "") raw in
  let commands =
    List.mapi
      (fun i line ->
        match Json.of_string line with
        | Error e ->
            Printf.eprintf "csteer: line %d: %s\n" (i + 1) e;
            exit 1
        | Ok doc -> (
            match Json.member "op" doc with
            | Some _ -> String.trim line (* full protocol envelope *)
            | None -> (
                (* bare canonical request object *)
                match Serve.Request.of_json doc with
                | Error e ->
                    Printf.eprintf "csteer: line %d: %s\n" (i + 1) e;
                    exit 1
                | Ok request ->
                    Serve.Protocol.encode_command
                      (Serve.Protocol.Simulate
                         { id = i + 1; deadline_ms; request }))))
      raw
  in
  let replies = Serve.Client.call_lines ~socket commands in
  let ok = ref 0 and cached = ref 0 and rejected = ref 0 and errors = ref 0 in
  List.iter
    (fun line ->
      (match Serve.Protocol.parse_response line with
      | Ok (Serve.Protocol.Result { cached = c; _ }) ->
          incr ok;
          if c then incr cached
      | Ok (Serve.Protocol.Rejected _) -> incr rejected
      | Ok (Serve.Protocol.Error_reply _) | Error _ -> incr errors
      | Ok _ -> ());
      if results_only then
        Option.iter print_endline (result_of_line line)
      else print_endline line)
    replies;
  Printf.eprintf "batch: %d ok (%d cached), %d rejected, %d error(s)\n" !ok
    !cached !rejected !errors;
  if List.length replies < List.length commands then begin
    Printf.eprintf "csteer: server closed the connection early\n";
    exit 1
  end

let batch_cmd =
  let file =
    let doc =
      "Newline-JSON input: one request per line, either a bare canonical \
       request object ({\"workload\":...,...}) or a full protocol envelope \
       ({\"op\":\"simulate\",...}); $(b,-) reads stdin."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ]
          ~doc:"Deadline applied to every bare request line." ~docv:"MS")
  in
  let results_only =
    Arg.(
      value & flag
      & info [ "results-only" ]
          ~doc:
            "Print only the result documents of successful responses \
             (verbatim bytes — two runs of an identical batch produce \
             identical output).")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Submit a newline-JSON batch of requests to a running csteer serve")
    Term.(const batch $ socket_arg $ file $ deadline_ms $ results_only)

(* ---- metrics -------------------------------------------------------- *)

let metrics socket workload clusters config uops phase =
  protect @@ fun () ->
  match workload with
  | None -> (
      (* Live scrape of a running server. *)
      match Serve.Client.metrics ~socket with
      | Ok text -> print_string text
      | Error e ->
          Printf.eprintf "csteer: %s\n" e;
          exit 1)
  | Some workload -> (
      (* One-shot local dump: run the point under the profiler and
         expose the process registry. *)
      match Spec2000.find workload with
      | exception Not_found ->
          Printf.eprintf "unknown workload %S (try `csteer list`)\n" workload;
          exit 1
      | profile ->
          let point =
            match List.nth_opt (Pinpoints.points profile) phase with
            | Some p -> p
            | None ->
                Printf.eprintf "workload has only %d phases\n"
                  (List.length (Pinpoints.points profile));
                exit 1
          in
          let machine = Config.default ~clusters in
          Obs.Counters.reset Obs.Counters.default;
          let prof = Obs.Profile.create () in
          let (_ : Runner.point_result) =
            Runner.run_point ~machine ~configs:[ config ] ~uops ~profile:prof
              point
          in
          print_string (Obs.Expo.render Obs.Counters.default))

let metrics_cmd =
  let workload =
    Arg.(
      value
      & opt (some string) None
      & info [ "w"; "workload" ]
          ~doc:
            "Run one simulation point locally (with the self-profiler) and \
             dump its registry instead of scraping a server.")
  in
  let phase =
    Arg.(value & opt int 0 & info [ "phase" ] ~doc:"Simulation point index.")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Expose counters and histograms as Prometheus text: scrape a \
          running csteer serve, or run one point locally with $(b,-w)")
    Term.(
      const metrics $ socket_arg $ workload $ clusters_arg $ config_arg
      $ uops_arg 20_000 $ phase)

(* ---- runs ----------------------------------------------------------- *)

let runs_dir_arg =
  let doc = "Run-ledger directory." in
  Arg.(value & opt string "runs" & info [ "dir" ] ~doc ~docv:"DIR")

let summary_json (s : Obs.Ledger.summary) =
  Json.Obj
    [
      ("id", Json.Int s.Obs.Ledger.id);
      ("kind", Json.Str s.Obs.Ledger.kind);
      ("label", Json.Str s.Obs.Ledger.label);
      ("started", Json.Float s.Obs.Ledger.started);
      ("wall_s", Json.Float s.Obs.Ledger.wall_s);
      ("outcome", Json.Str s.Obs.Ledger.outcome);
      ("uops", Json.Int s.Obs.Ledger.uops);
      ("minor_words_per_uop", Json.Float s.Obs.Ledger.minor_words_per_uop);
      ("file", Json.Str s.Obs.Ledger.file);
    ]

let runs_list dir json =
  protect @@ fun () ->
  let ledger = Obs.Ledger.create ~dir in
  let summaries = Obs.Ledger.list ledger in
  if json then
    print_endline
      (Json.to_string (Json.List (List.map summary_json summaries)))
  else if summaries = [] then
    Printf.printf "no runs recorded in %s\n" dir
  else begin
    let header =
      [| "id"; "kind"; "label"; "wall_s"; "outcome"; "uops"; "mw/uop" |]
    in
    let rows =
      List.map
        (fun (s : Obs.Ledger.summary) ->
          [|
            string_of_int s.Obs.Ledger.id;
            s.Obs.Ledger.kind;
            s.Obs.Ledger.label;
            Printf.sprintf "%.3f" s.Obs.Ledger.wall_s;
            s.Obs.Ledger.outcome;
            string_of_int s.Obs.Ledger.uops;
            Printf.sprintf "%.2f" s.Obs.Ledger.minor_words_per_uop;
          |])
        summaries
    in
    print_string (Clusteer_util.Table.render ~header rows)
  end

let runs_show dir id =
  protect @@ fun () ->
  let ledger = Obs.Ledger.create ~dir in
  match Obs.Ledger.load ledger id with
  | Some doc -> print_endline (Json.to_string doc)
  | None ->
      Printf.eprintf "csteer: no run %d in %s\n" id dir;
      exit 1

let runs_gc dir keep =
  protect @@ fun () ->
  if keep < 0 then begin
    Printf.eprintf "--keep must be non-negative\n";
    exit 1
  end;
  let ledger = Obs.Ledger.create ~dir in
  let removed = Obs.Ledger.prune ledger ~keep in
  Printf.printf "removed %d run(s), kept %d in %s\n" removed
    (List.length (Obs.Ledger.list ledger))
    dir

let runs_cmd =
  let list_cmd =
    let json =
      Arg.(
        value & flag
        & info [ "json" ] ~doc:"Print the summaries as one JSON array.")
    in
    Cmd.v
      (Cmd.info "list" ~doc:"List recorded runs (id, kind, wall time, GC)")
      Term.(const runs_list $ runs_dir_arg $ json)
  in
  let show_cmd =
    let id =
      Arg.(required & pos 0 (some int) None & info [] ~docv:"ID" ~doc:"Run id.")
    in
    Cmd.v
      (Cmd.info "show"
         ~doc:
           "Print one run's full ledger entry (config, counter snapshot \
            with percentiles, GC deltas) as JSON")
      Term.(const runs_show $ runs_dir_arg $ id)
  in
  let gc_cmd =
    let keep =
      Arg.(
        value & opt int 32
        & info [ "keep" ] ~doc:"How many newest runs to keep." ~docv:"N")
    in
    Cmd.v
      (Cmd.info "gc" ~doc:"Delete all but the newest --keep runs")
      Term.(const runs_gc $ runs_dir_arg $ keep)
  in
  Cmd.group
    (Cmd.info "runs" ~doc:"Inspect and prune the on-disk run ledger")
    [ list_cmd; show_cmd; gc_cmd ]

(* ---- topo ----------------------------------------------------------- *)

let topo_of_name ~clusters name =
  match Topology.of_name ~clusters name with
  | Ok t -> t
  | Error e ->
      Printf.eprintf "csteer: %s\n" e;
      exit 1

let topo_list clusters json =
  protect @@ fun () ->
  let topos =
    List.map (topo_of_name ~clusters) Topology.builtin_names
  in
  if json then
    print_endline
      (Json.to_string (Json.List (List.map Topology.to_json topos)))
  else begin
    let header =
      [| "name"; "clusters"; "diameter"; "mean_dist"; "description" |]
    in
    let rows =
      List.map
        (fun t ->
          [|
            Topology.name t;
            string_of_int t.Topology.clusters;
            string_of_int (Topology.diameter t);
            Printf.sprintf "%.2f" (Topology.mean_distance t);
            Topology.describe t;
          |])
        topos
    in
    print_string (Clusteer_util.Table.render ~header rows)
  end

let topo_show name clusters json =
  protect @@ fun () ->
  let t = topo_of_name ~clusters name in
  let matrix = Topology.distance_matrix t in
  if json then
    (* The "topology" value is the round-trippable description
       (Topology.of_json accepts it); the rest is derived. *)
    print_endline
      (Json.to_string
         (Json.Obj
            [
              ("topology", Topology.to_json t);
              ("diameter", Json.Int (Topology.diameter t));
              ("mean_distance", Json.Float (Topology.mean_distance t));
              ( "distance_matrix",
                Json.List
                  (Array.to_list
                     (Array.map
                        (fun row ->
                          Json.List
                            (Array.to_list
                               (Array.map (fun d -> Json.Int d) row)))
                        matrix)) );
            ]))
  else begin
    Printf.printf "%s\n" (Topology.describe t);
    Printf.printf "diameter %d hop(s), mean cross-cluster distance %.2f\n"
      (Topology.diameter t)
      (Topology.mean_distance t);
    let n = Array.length matrix in
    let header =
      Array.init (n + 1) (fun j ->
          if j = 0 then "hops" else string_of_int (j - 1))
    in
    let rows =
      List.init n (fun i ->
          Array.init (n + 1) (fun j ->
              if j = 0 then string_of_int i
              else string_of_int matrix.(i).(j - 1)))
    in
    print_string (Clusteer_util.Table.render ~header rows)
  end

let topo_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the description as one JSON document.")
  in
  let list_cmd =
    Cmd.v
      (Cmd.info "list"
         ~doc:
           "List the built-in interconnect topologies with their derived \
            metrics")
      Term.(const topo_list $ clusters_arg $ json)
  in
  let show_cmd =
    let name_arg =
      Arg.(
        required
        & pos 0 (some string) None
        & info [] ~docv:"NAME"
            ~doc:"Topology name (see $(b,csteer topo list)).")
    in
    Cmd.v
      (Cmd.info "show"
         ~doc:
           "Describe one topology: JSON round-trip form, diameter, mean \
            distance and the full hop-count matrix")
      Term.(const topo_show $ name_arg $ clusters_arg $ json)
  in
  Cmd.group
    (Cmd.info "topo"
       ~doc:
         "Inspect the interconnect topologies available to $(b,--topology)")
    [ list_cmd; show_cmd ]

(* ---- tune ----------------------------------------------------------- *)

module Tune = Clusteer_tune

let space_conv =
  let print ppf s =
    Format.pp_print_string ppf (Tune.Param_space.name s)
  in
  Arg.conv (Tune.Param_space.find, print)

let algo_conv =
  let print ppf a =
    Format.pp_print_string ppf (Tune.Search.algo_to_string a)
  in
  Arg.conv (Tune.Search.algo_of_string, print)

let space_arg =
  let doc = "Parameter space to search: vc, op or topo." in
  Arg.(
    value
    & opt space_conv (List.hd Tune.Param_space.spaces)
    & info [ "space" ] ~doc ~docv:"SPACE")

let study_file_arg =
  let doc = "Study artifact to read." in
  Arg.(
    value
    & opt string (Filename.concat "tune" "study.json")
    & info [ "study" ] ~doc ~docv:"FILE")

let tune_run space algo seed max_evals benchmarks clusters uops domains out
    champion_file ledger_dir epsilon_pct tie_seeds json =
  protect @@ fun () ->
  if max_evals <= 0 then begin
    Printf.eprintf "csteer: --max-evals must be positive\n";
    exit 1
  end;
  let workloads =
    match
      try subset_profiles benchmarks
      with Not_found ->
        Printf.eprintf "csteer: unknown workload in %s\n"
          (Option.value ~default:"" benchmarks);
        exit 1
    with
    | Some ps -> ps
    | None -> Spec2000.all
  in
  let champion_file =
    Option.value champion_file
      ~default:(Filename.concat out "champion.json")
  in
  let incumbent =
    match Tune.Study.load_champion ~space ~file:champion_file with
    | Ok c -> c
    | Error msg ->
        Printf.eprintf "csteer: %s\n" msg;
        exit 1
  in
  let ledger = Option.map (fun dir -> Obs.Ledger.create ~dir) ledger_dir in
  let progress line = Printf.eprintf "  %s\n%!" line in
  let study =
    Tune.Study.run ~space ~algo ~seed ~max_evals ~workloads ~clusters ~uops
      ?domains ?ledger ?incumbent ~epsilon_pct ~tie_seeds ~progress ()
  in
  let study_file = Filename.concat out "study.json" in
  Tune.Study.save ~file:study_file study;
  if json then print_endline (Json.to_string (Tune.Study.to_json study))
  else begin
    Tune.Study.report Format.std_formatter study;
    Printf.printf "study written to %s\n" study_file
  end

let tune_report file json =
  protect @@ fun () ->
  match Tune.Study.load ~file with
  | Error msg ->
      Printf.eprintf "csteer: %s: %s\n" file msg;
      exit 1
  | Ok study ->
      if json then print_endline (Json.to_string (Tune.Study.to_json study))
      else Tune.Study.report Format.std_formatter study

let tune_promote file out =
  protect @@ fun () ->
  match Tune.Study.load ~file with
  | Error msg ->
      Printf.eprintf "csteer: %s: %s\n" file msg;
      exit 1
  | Ok study ->
      let out =
        Option.value out
          ~default:(Filename.concat (Filename.dirname file) "champion.json")
      in
      Tune.Study.save_champion ~file:out study;
      let w = Tune.Study.winner study in
      let space =
        match Tune.Param_space.find study.Tune.Study.space with
        | Ok s -> s
        | Error (`Msg m) ->
            Printf.eprintf "csteer: %s\n" m;
            exit 1
      in
      Printf.printf "%s: %s (score %.4f) -> %s\n"
        (if study.Tune.Study.ab.Tune.Study.challenger_wins then "promoted"
         else "champion retained")
        (Tune.Param_space.label space w.Tune.Study.candidate)
        w.Tune.Study.score out

let tune_cmd =
  let run_cmd =
    let algo =
      let doc = "Search driver: grid, random or hill." in
      Arg.(
        value
        & opt algo_conv Tune.Search.Random
        & info [ "search" ] ~doc ~docv:"ALGO")
    in
    let seed =
      let doc = "Search seed (random draws and hill restarts)." in
      Arg.(value & opt int 1 & info [ "seed" ] ~doc ~docv:"N")
    in
    let max_evals =
      let doc = "Evaluation budget: distinct candidates to score." in
      Arg.(value & opt int 12 & info [ "max-evals" ] ~doc ~docv:"N")
    in
    let benchmarks =
      let doc =
        "Comma-separated workload subset (default: the whole pool)."
      in
      Arg.(
        value
        & opt (some string) None
        & info [ "w"; "workloads" ] ~doc ~docv:"NAMES")
    in
    let domains =
      let doc = "Worker domains for each evaluation's sweep." in
      Arg.(value & opt (some int) None & info [ "domains" ] ~doc ~docv:"N")
    in
    let out =
      let doc = "Directory for the study artifact." in
      Arg.(value & opt string "tune" & info [ "out" ] ~doc ~docv:"DIR")
    in
    let champion_file =
      let doc =
        "Champion artifact defending the study (default: \
         $(i,OUT)/champion.json; absent file means the paper default \
         defends)."
      in
      Arg.(
        value
        & opt (some string) None
        & info [ "champion" ] ~doc ~docv:"FILE")
    in
    let ledger_dir =
      let doc = "Record one ledger entry per evaluation under DIR." in
      Arg.(value & opt (some string) None & info [ "ledger" ] ~doc ~docv:"DIR")
    in
    let epsilon_pct =
      let doc = "AB tie band: IPC deltas within this percentage tie." in
      Arg.(
        value & opt float 0.5 & info [ "tie-epsilon-pct" ] ~doc ~docv:"PCT")
    in
    let tie_seeds =
      let doc = "Extra salted trace streams used to re-measure ties." in
      Arg.(value & opt int 2 & info [ "tie-seeds" ] ~doc ~docv:"N")
    in
    let json =
      Arg.(
        value & flag & info [ "json" ] ~doc:"Print the study as JSON.")
    in
    Cmd.v
      (Cmd.info "run"
         ~doc:
           "Search the parameter space under a budget and compare the best \
            candidate AB against the reigning champion")
      Term.(
        const tune_run $ space_arg $ algo $ seed $ max_evals $ benchmarks
        $ clusters_arg $ uops_arg 20_000 $ domains $ out $ champion_file
        $ ledger_dir $ epsilon_pct $ tie_seeds $ json)
  in
  let report_cmd =
    let json =
      Arg.(
        value & flag & info [ "json" ] ~doc:"Print the study as JSON.")
    in
    Cmd.v
      (Cmd.info "report"
         ~doc:
           "Render a saved study: leaderboard, AB table and verdict")
      Term.(const tune_report $ study_file_arg $ json)
  in
  let promote_cmd =
    let out =
      let doc =
        "Champion artifact to write (default: champion.json next to the \
         study)."
      in
      Arg.(value & opt (some string) None & info [ "out" ] ~doc ~docv:"FILE")
    in
    Cmd.v
      (Cmd.info "promote"
         ~doc:
           "Persist the study's winner as the champion artifact future \
            studies defend")
      Term.(const tune_promote $ study_file_arg $ out)
  in
  Cmd.group
    (Cmd.info "tune"
       ~doc:
         "Closed-loop steering parameter tuning with champion/challenger \
          studies")
    [ run_cmd; report_cmd; promote_cmd ]

let main =
  let doc =
    "clusteer: software-hardware hybrid steering for clustered \
     microarchitectures (IPPS 2008 reproduction)"
  in
  Cmd.group (Cmd.info "csteer" ~doc)
    [
      list_cmd; simulate_cmd; compile_cmd; check_cmd; analyze_cmd; stats_cmd;
      sweep_cmd;
      vliw_cmd; experiment_cmd; serve_cmd; submit_cmd; batch_cmd; metrics_cmd;
      runs_cmd; tune_cmd; topo_cmd;
    ]

let () = exit (Cmd.eval main)
