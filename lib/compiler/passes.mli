(** Top-level compiler driver: one entry point per software scheme.

    [likely] is the profile feedback the region builder uses (index of
    the likely successor of a block, or [None] for an unbiased
    branch); workload definitions provide it from their branch models,
    standing in for the production compiler's profile data. *)

open Clusteer_isa

type scheme =
  | Sw_none  (** hardware-only schemes: empty annotation *)
  | Sw_ob
  | Sw_rhop of { seed : int }
  | Sw_vc of { virtual_clusters : int }

val scheme_name : scheme -> string

val run :
  scheme ->
  program:Program.t ->
  likely:(int -> int option) ->
  clusters:int ->
  ?region_uops:int ->
  ?issue_width:float ->
  ?comm_latency:float ->
  ?crit_min_scale:float ->
  ?max_chain:int ->
  unit ->
  Annot.t
(** Produce the annotation for [scheme] targeting a machine with
    [clusters] physical clusters. The optional knobs parameterize the
    VC partitioner ({!Vc_partition}: estimator issue width and
    communication latency, placement criticality weight, chain-length
    cap) and are ignored by the other schemes; defaults reproduce the
    paper. *)
