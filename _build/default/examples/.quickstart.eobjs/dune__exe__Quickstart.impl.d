examples/quickstart.ml: Annot Array Clusteer Clusteer_isa Clusteer_trace Clusteer_uarch Fmt Opcode Program Reg Uop
