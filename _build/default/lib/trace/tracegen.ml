open Clusteer_isa

type t = {
  prog : Program.t;
  bstate : Branch_model.state;
  mstate : Mem_model.state;
  mutable block : int;
  mutable pos : int;
  mutable seq : int;
  mutable stalled_restarts : int;
}

let create ~program ~branches ~streams ~seed =
  if Array.length branches <> program.Program.branch_model_count then
    invalid_arg "Tracegen.create: branch model arity mismatch";
  if Array.length streams <> program.Program.stream_count then
    invalid_arg "Tracegen.create: memory stream arity mismatch";
  {
    prog = program;
    bstate = Branch_model.make_state branches ~seed;
    mstate = Mem_model.make_state streams ~seed:(seed lxor 0x5DEECE66D);
    block = program.Program.entry;
    pos = 0;
    seq = 0;
    stalled_restarts = 0;
  }

let program t = t.prog

(* Wrap back to the entry. Model state (loop counters, stream cursors,
   RNG) deliberately keeps rolling: the trace is one long stream, not a
   periodic repeat — a wrap-identical trace would let the branch
   predictor memorise the whole program. Determinism still holds: the
   trace is a function of (program, models, seed, length). *)
let restart t =
  t.block <- t.prog.Program.entry;
  t.pos <- 0;
  t.stalled_restarts <- t.stalled_restarts + 1;
  if t.stalled_restarts > 2 && t.seq = 0 then
    failwith "Tracegen: program produces no micro-ops"

(* Move to the next block: branch outcome selects successor 1 (taken)
   or 0 (not taken); single-successor blocks fall through; no
   successors means program exit. *)
let advance_block t ~taken =
  let blk = t.prog.Program.blocks.(t.block) in
  let succs = blk.Block.succs in
  match Array.length succs with
  | 0 -> restart t
  | 1 ->
      t.block <- succs.(0);
      t.pos <- 0
  | _ ->
      t.block <- (if taken then succs.(1) else succs.(0));
      t.pos <- 0

let rec next t =
  let blk = t.prog.Program.blocks.(t.block) in
  if t.pos >= Array.length blk.Block.uops then begin
    (* Empty block or exhausted without a branch terminator. *)
    advance_block t ~taken:false;
    next t
  end
  else begin
    let suop = blk.Block.uops.(t.pos) in
    t.pos <- t.pos + 1;
    let addr =
      if Uop.is_mem suop then Mem_model.next_address t.mstate suop.Uop.stream
      else -1
    in
    let taken =
      if Uop.is_branch suop then Branch_model.outcome t.bstate suop.Uop.branch_ref
      else false
    in
    let d = { Dynuop.seq = t.seq; suop; addr; taken } in
    t.seq <- t.seq + 1;
    t.stalled_restarts <- 0;
    if t.pos >= Array.length blk.Block.uops then advance_block t ~taken;
    d
  end

let take t n = Array.init n (fun _ -> next t)

let generated t = t.seq
