open Clusteer_uarch

let make ?(n = 3) () =
  if n <= 0 then invalid_arg "Mod_n.make: n must be positive";
  let count = ref 0 in
  let decide view _duop =
    let cluster = !count / n mod view.Policy.clusters in
    incr count;
    Policy.Dispatch_to cluster
  in
  {
    Policy.name = Printf.sprintf "mod%d" n;
    decide;
    uses_dependence_check = false;
    uses_vote_unit = false;
  }
