type t = {
  clusters : int;
  int_slots : int;
  fp_slots : int;
  mem_slots : int;
  move_slots : int;
  comm_latency : int;
}

let default ~clusters =
  {
    clusters;
    int_slots = 2;
    fp_slots = 1;
    mem_slots = 1;
    move_slots = 1;
    comm_latency = 1;
  }

let validate t =
  let pos name v =
    if v <= 0 then
      invalid_arg (Printf.sprintf "Vliw.Machine: %s must be positive" name)
  in
  pos "clusters" t.clusters;
  pos "int_slots" t.int_slots;
  pos "fp_slots" t.fp_slots;
  pos "mem_slots" t.mem_slots;
  pos "move_slots" t.move_slots;
  pos "comm_latency" t.comm_latency

type slot_class = Slot_int | Slot_fp | Slot_mem | Slot_move

let slot_class_of (op : Clusteer_isa.Opcode.t) =
  match op with
  | Clusteer_isa.Opcode.Load | Clusteer_isa.Opcode.Store -> Slot_mem
  | Clusteer_isa.Opcode.Fp_add | Clusteer_isa.Opcode.Fp_mul
  | Clusteer_isa.Opcode.Fp_div ->
      Slot_fp
  | Clusteer_isa.Opcode.Copy -> Slot_move
  | Clusteer_isa.Opcode.Int_alu | Clusteer_isa.Opcode.Int_mul
  | Clusteer_isa.Opcode.Int_div | Clusteer_isa.Opcode.Branch ->
      Slot_int

let slots t = function
  | Slot_int -> t.int_slots
  | Slot_fp -> t.fp_slots
  | Slot_mem -> t.mem_slots
  | Slot_move -> t.move_slots
