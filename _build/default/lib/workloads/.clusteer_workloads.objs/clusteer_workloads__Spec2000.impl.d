lib/workloads/spec2000.ml: List Printf Profile String
