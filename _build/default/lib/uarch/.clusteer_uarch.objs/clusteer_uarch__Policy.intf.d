lib/uarch/policy.mli: Annot Clusteer_isa Clusteer_trace Clusteer_util Dynuop Opcode Reg
