lib/isa/program.ml: Array Block Format Fun List Option Printf Reg Uop
