(** In-memory collector: a ring of recent events plus the full
    interval-sample series.

    The event ring has drop-oldest overflow semantics — when the
    capacity is reached the oldest event is discarded and counted in
    {!dropped}, so a bounded collector always holds the most recent
    window of the run. Interval samples are unbounded (there are only
    [cycles / interval] of them).

    The first snapshot of a series is diffed against an implicit
    all-zero baseline at cycle 0, so no interval is lost. A statistics
    reset mid-run (the engine zeroes its counters when the warmup phase
    ends) is detected by a non-monotonic committed count; the series
    restarts there against a fresh zero baseline without emitting a
    bogus negative sample. *)

type t

val create : ?capacity:int -> ?interval:int -> unit -> t
(** [capacity] bounds the event ring (default 65536, must be positive);
    [interval] is the sampling period in cycles (default 0 = no
    interval telemetry). *)

val sink : t -> Sink.t

val events : t -> Event.t list
(** Retained events, oldest first. *)

val event_count : t -> int
(** Total events emitted, including dropped ones. *)

val dropped : t -> int
(** Events discarded to keep the ring within capacity. *)

val samples : t -> Interval.sample list
(** Interval samples in time order. *)

val clear : t -> unit
