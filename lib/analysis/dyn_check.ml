open Clusteer_isa
module Uarch = Clusteer_uarch
module Trace = Clusteer_trace
module Counters = Clusteer_obs.Counters
module Topology = Clusteer_topo.Topology

type event = { uop : int; cluster : int }

let codes = [ "DYN001"; "DYN002" ]
let drift_codes = [ "CM100"; "CM101"; "CM102"; "CM103" ]

let recording (policy : Uarch.Policy.t) =
  let events = ref [] in
  let decide view duop =
    let d = policy.Uarch.Policy.decide view duop in
    (match d with
    | Uarch.Policy.Dispatch_to cluster ->
        events := { uop = Trace.Dynuop.static_id duop; cluster } :: !events
    | Uarch.Policy.Stall -> ());
    d
  in
  ({ policy with Uarch.Policy.decide }, fun () -> List.rev !events)

let check ~annot ~clusters events =
  let n = Array.length annot.Annot.vc_of in
  let nvc = annot.Annot.virtual_clusters in
  let table = Array.init (max nvc 0) (fun v -> v mod clusters) in
  let diags = ref [] in
  List.iteri
    (fun seq { uop; cluster } ->
      if uop < 0 || uop >= n then
        diags :=
          Diag.errorf ~uop ~code:"DYN001"
            "event %d names uop %d out of range [0, %d)" seq uop n
          :: !diags
      else begin
        let vc = annot.Annot.vc_of.(uop) in
        if vc >= 0 && vc < nvc then
          if annot.Annot.leader.(uop) then
            (* Leaders may remap: whatever the policy chose becomes the
               VC's table entry, exactly as the hardware would latch it. *)
            table.(vc) <- cluster
          else if table.(vc) <> cluster then
            diags :=
              Diag.errorf ~uop ~code:"DYN002"
                "event %d: non-leader of vc %d steered to cluster %d, table \
                 says %d"
                seq vc cluster table.(vc)
              :: !diags
      end)
    events;
  List.rev !diags

type run = {
  dispatched : int;
  copies_generated : int;
  remaps : int;
  leader_decisions : int;
  remap_hops_max : int;
}

let observe_run ~registry (stats : Uarch.Stats.t) =
  let c name = Counters.value (Counters.counter ~registry name) in
  {
    dispatched = stats.Uarch.Stats.dispatched;
    copies_generated = stats.Uarch.Stats.copies_generated;
    remaps = c "vc.remaps";
    leader_decisions = c "vc.leader_decisions";
    remap_hops_max =
      Counters.hist_max (Counters.histogram ~registry "steer.remap.hops");
  }

let check_drift ~model run =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let bound =
    Cost_model.copy_bound model ~dispatched:run.dispatched ~remaps:run.remaps
  in
  let rate =
    if run.dispatched = 0 then 0.
    else float_of_int run.copies_generated /. float_of_int run.dispatched
  in
  add
    (Diag.infof ~code:"CM100"
       "run generated %d copies over %d dispatched uops (%.3f/uop); static \
        bound %d (rate %.3f/uop + %d remaps x %d live + %d edge), predicted \
        %.3f/uop"
       run.copies_generated run.dispatched rate bound
       model.Cost_model.bound_copy_rate run.remaps
       model.Cost_model.peak_live
       (model.Cost_model.max_srcs * model.Cost_model.max_block_uops)
       model.Cost_model.pred_copy_rate);
  if run.copies_generated > bound then
    add
      (Diag.errorf ~code:"CM101"
         "dynamic copies %d exceed the static bound %d — the policy \
          communicates more than the placement can explain"
         run.copies_generated bound);
  if model.Cost_model.kind = Cost_model.Virtual_placement then begin
    if run.remaps > run.leader_decisions then
      add
        (Diag.errorf ~code:"CM102"
           "%d remaps recorded over only %d chain-leader decisions — the \
            hardware remapped mid-chain"
           run.remaps run.leader_decisions)
  end;
  let diam = Topology.diameter model.Cost_model.topology in
  if run.remap_hops_max > diam then
    add
      (Diag.errorf ~code:"CM103"
         "a remap moved a virtual cluster %d hops; the topology diameter is \
          %d"
         run.remap_hops_max diam);
  List.rev !diags
