type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---- encoding ---------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    (* Keep a decimal point so the value parses back as a float. *)
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | Str s -> escape_to buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let output oc v = output_string oc (to_string v)

(* ---- parsing ----------------------------------------------------- *)

exception Parse_error of string

type parser_state = { src : string; mutable pos : int }

let error st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  while
    st.pos < String.length st.src
    &&
    match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance st
  done

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | _ -> error st (Printf.sprintf "expected %C" c)

let parse_literal st lit value =
  let n = String.length lit in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = lit
  then begin
    st.pos <- st.pos + n;
    value
  end
  else error st (Printf.sprintf "expected %s" lit)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
        | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
        | Some 'r' -> advance st; Buffer.add_char buf '\r'; go ()
        | Some 'b' -> advance st; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance st; Buffer.add_char buf '\012'; go ()
        | Some '/' -> advance st; Buffer.add_char buf '/'; go ()
        | Some '"' -> advance st; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance st; Buffer.add_char buf '\\'; go ()
        | Some 'u' ->
            advance st;
            if st.pos + 4 > String.length st.src then
              error st "truncated \\u escape";
            let hex = String.sub st.src st.pos 4 in
            let code =
              match int_of_string_opt ("0x" ^ hex) with
              | Some c -> c
              | None -> error st "bad \\u escape"
            in
            st.pos <- st.pos + 4;
            (* Encode the code point as UTF-8 (BMP only; surrogate
               pairs are left as two replacement-free code units). *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | _ -> error st "bad escape")
    | Some c -> advance st; Buffer.add_char buf c; go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.src && is_num_char st.src.[st.pos]
  do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  let is_float =
    String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text
  in
  if is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> error st "bad number"
  else
    match int_of_string_opt text with
    | Some n -> Int n
    | None -> error st "bad number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some 'n' -> parse_literal st "null" Null
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some '"' -> Str (parse_string st)
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin advance st; List [] end
      else begin
        let items = ref [ parse_value st ] in
        skip_ws st;
        while peek st = Some ',' do
          advance st;
          items := parse_value st :: !items;
          skip_ws st
        done;
        expect st ']';
        List (List.rev !items)
      end
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin advance st; Obj [] end
      else begin
        let field () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws st;
        while peek st = Some ',' do
          advance st;
          fields := field () :: !fields;
          skip_ws st
        done;
        expect st '}';
        Obj (List.rev !fields)
      end
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> error st (Printf.sprintf "unexpected character %C" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
      else Ok v
  | exception Parse_error msg -> Error msg

(* ---- access ------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int n -> Some n | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None

let to_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let equal (a : t) (b : t) = a = b
