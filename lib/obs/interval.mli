(** Interval telemetry: cumulative snapshots diffed into per-interval
    samples.

    The engine hands the sink a cheap cumulative {!snapshot} of its
    statistics every N cycles; {!diff} turns two consecutive snapshots
    into a {!sample} — the per-interval IPC, copy rate, dispatch share
    and stall breakdown the paper's §5.3 analysis is about, but
    resolved in time instead of aggregated over the whole run. *)

type snapshot = {
  cycle : int;
  committed : int;
  dispatched : int;
  copies_generated : int;
  copies_executed : int;
  link_transfers : int;
  stalls : int array;  (** cumulative, indexed by {!Event.stall_reason_index} *)
  per_cluster_dispatched : int array;
}

type sample = {
  t_start : int;  (** first cycle covered (exclusive bound of previous) *)
  t_end : int;  (** last cycle covered *)
  committed : int;  (** micro-ops committed in the interval *)
  dispatched : int;
  copies : int;  (** copies generated in the interval *)
  copies_executed : int;
  link_transfers : int;
  stall_breakdown : int array;  (** per-reason stall cycles in the interval *)
  per_cluster : int array;  (** per-cluster dispatches in the interval *)
  ipc : float;
  copy_rate : float;  (** copies per committed micro-op *)
}

val diff : snapshot -> snapshot -> sample
(** [diff prev next] is the interval [(prev.cycle, next.cycle]].
    Raises [Invalid_argument] if [next.cycle <= prev.cycle]. *)

val contains : sample -> int -> bool
(** [contains s cycle] — does the sample's interval cover [cycle]? *)

val csv_header : clusters:int -> string list
val csv_row : sample -> string list
val to_json : sample -> Json.t
