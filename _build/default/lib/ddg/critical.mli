(** Criticality analysis (paper §4.2).

    Two DDG traversals compute, per node, its [depth] (longest latency
    path from any root up to and excluding the node) and [height]
    (longest latency path from the node, inclusive, down to any leaf).
    The paper defines criticality as their sum; nodes of maximal
    criticality lie on critical paths, and [slack] — the gap to the
    maximum — weights RHOP's partitioning graph. *)

type t = {
  depth : int array;
  height : int array;
  criticality : int array;  (** depth + height, per node *)
  slack : int array;  (** max criticality - criticality, per node *)
  length : int;  (** critical path length = max criticality *)
}

val analyze : Ddg.t -> t

val critical_nodes : t -> int list
(** Nodes with zero slack, ascending. *)

val critical_path : Ddg.t -> t -> int list
(** One maximal zero-slack path, ascending program order: starting from
    a zero-slack root, repeatedly follow a zero-slack successor. *)
