lib/util/pqueue.mli:
