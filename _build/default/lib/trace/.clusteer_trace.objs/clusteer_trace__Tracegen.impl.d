lib/trace/tracegen.ml: Array Block Branch_model Clusteer_isa Dynuop Mem_model Program Uop
