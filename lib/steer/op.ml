open Clusteer_isa
open Clusteer_uarch
module Bitset = Clusteer_util.Bitset

let make ?(stall_threshold = 36) ?(imbalance_limit = 200) ?registry ?topology
    () =
  let module Counters = Clusteer_obs.Counters in
  (* Topology awareness: on a non-uniform fabric, load ties are broken
     by the hop cost of the copies the pick would cause (each source
     travels from its nearest resident cluster). On uniform fabrics
     every candidate's cost is identical, so the tie-break never fires
     and the decision stream is bit-identical to the seed policy. The
     cost is pure integer arithmetic over a precomputed matrix — the
     decide path stays allocation-free. *)
  let dist =
    match topology with
    | Some tp when not (Clusteer_topo.Topology.is_uniform tp) ->
        Clusteer_topo.Topology.distance_matrix tp
    | _ -> [||]
  in
  let topo_aware = Array.length dist > 0 in
  (* Introspection: [op.vote_candidates] is a latency proxy for the
     serialized vote hardware of §2.1 — more tied candidates means a
     longer resolve chain; the override/stall counters expose how
     often occupancy-awareness beats pure dependence steering. *)
  let decisions = Counters.counter ?registry "op.decisions" in
  let balance_overrides = Counters.counter ?registry "op.balance_overrides" in
  let steer_away = Counters.counter ?registry "op.steer_away" in
  let stalls = Counters.counter ?registry "op.stall_decisions" in
  let vote_candidates = Counters.histogram ?registry "op.vote_candidates" in
  (* Decision-path scratch, allocated once and reused: the per-uop path
     must not allocate (no lists, no closures, no fresh refs). The
     [Dispatch_to] variants are memoized for the same reason. *)
  let votes = ref [||] in
  let src_buf = ref [||] in
  let dispatch_to = ref [||] in
  let ndecisions = ref 0 in
  let best_votes = ref 0 in
  let ncand = ref 0 in
  let preferred = ref 0 in
  let min_load = ref 0 in
  let best_alt = ref 0 in
  (* Hop cost of steering the current micro-op to [c]: each source not
     resident on [c] is copied from its nearest resident cluster.
     Scratch accumulators live at [make] scope so the call allocates
     nothing. Only reached when [topo_aware]. *)
  let cost_acc = ref 0 in
  let cost_near = ref 0 in
  let copy_cost srcs n c =
    cost_acc := 0;
    for i = 0 to n - 1 do
      let loc = srcs.(i) in
      if not (Bitset.mem loc c) then begin
        cost_near := max_int;
        for s = 0 to Array.length dist - 1 do
          if Bitset.mem loc s && dist.(s).(c) < !cost_near then
            cost_near := dist.(s).(c)
        done;
        if !cost_near < max_int then cost_acc := !cost_acc + !cost_near
      end
    done;
    !cost_acc
  in
  let decide view duop =
    let u = duop.Clusteer_trace.Dynuop.suop in
    let queue = Opcode.queue u.Uop.opcode in
    let clusters = view.Policy.clusters in
    if Array.length !votes < clusters then begin
      votes := Array.make clusters 0;
      dispatch_to := Array.init clusters (fun c -> Policy.Dispatch_to c)
    end;
    let votes = !votes in
    let dispatch_to = !dispatch_to in
    let nsrcs = Array.length u.Uop.srcs in
    if Array.length !src_buf < nsrcs then
      src_buf := Array.make nsrcs Bitset.empty;
    Counters.incr decisions;
    (* Tie rotation: scanning always from cluster 0 funnels every tie
       (notably the all-zero vote of source-free micro-ops on an idle
       machine) into cluster 0; rotating the scan start by decision
       count spreads ties evenly without changing any untied pick. *)
    let rot = !ndecisions mod clusters in
    incr ndecisions;
    (* The vote. *)
    let n = view.Policy.src_locations_into duop !src_buf in
    Array.fill votes 0 clusters 0;
    for i = 0 to n - 1 do
      let loc = (!src_buf).(i) in
      for c = 0 to clusters - 1 do
        if Bitset.mem loc c then votes.(c) <- votes.(c) + 1
      done
    done;
    best_votes := 0;
    for c = 0 to clusters - 1 do
      if votes.(c) > !best_votes then best_votes := votes.(c)
    done;
    (* Least-loaded candidate, ties resolved by rotated scan order. *)
    ncand := 0;
    preferred := -1;
    for k = 0 to clusters - 1 do
      let c = (rot + k) mod clusters in
      if votes.(c) = !best_votes then begin
        incr ncand;
        if
          !preferred = -1
          || view.Policy.inflight c < view.Policy.inflight !preferred
          || topo_aware
             && view.Policy.inflight c = view.Policy.inflight !preferred
             && copy_cost !src_buf n c < copy_cost !src_buf n !preferred
        then preferred := c
      end
    done;
    Counters.observe vote_candidates !ncand;
    min_load := max_int;
    for c = 0 to clusters - 1 do
      let l = view.Policy.inflight c in
      if l < !min_load then min_load := l
    done;
    (* Balance override: a severely overloaded preferred cluster loses
       its dependence advantage. *)
    if view.Policy.inflight !preferred - !min_load > imbalance_limit then begin
      Counters.incr balance_overrides;
      preferred := -1;
      for k = 0 to clusters - 1 do
        let c = (rot + k) mod clusters in
        if
          !preferred = -1
          || view.Policy.inflight c < view.Policy.inflight !preferred
          || topo_aware
             && view.Policy.inflight c = view.Policy.inflight !preferred
             && copy_cost !src_buf n c < copy_cost !src_buf n !preferred
        then preferred := c
      done
    end;
    if view.Policy.queue_free !preferred queue > 0 then dispatch_to.(!preferred)
    else begin
      (* Preferred cluster is out of queue slots: steer away only when
         some other cluster is comfortably idle, otherwise stall
         (stall-over-steer). *)
      best_alt := -1;
      for k = 0 to clusters - 1 do
        let c = (rot + k) mod clusters in
        if
          c <> !preferred
          && view.Policy.queue_free c queue >= stall_threshold
          && (!best_alt = -1
             || view.Policy.inflight c < view.Policy.inflight !best_alt
             || topo_aware
                && view.Policy.inflight c = view.Policy.inflight !best_alt
                && copy_cost !src_buf n c < copy_cost !src_buf n !best_alt)
        then best_alt := c
      done;
      if !best_alt = -1 then begin
        Counters.incr stalls;
        Policy.Stall
      end
      else begin
        Counters.incr steer_away;
        dispatch_to.(!best_alt)
      end
    end
  in
  {
    Policy.name = "op";
    decide;
    uses_dependence_check = true;
    uses_vote_unit = true;
  }
