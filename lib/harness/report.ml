module Csv = Clusteer_util.Csv
module Interval = Clusteer_obs.Interval

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Report: %s is not a directory" dir)

let write_interval_series ~dir ~name ~clusters samples =
  ensure_dir dir;
  let path = Filename.concat dir (name ^ "_intervals.csv") in
  Csv.write ~path
    ~header:(Interval.csv_header ~clusters)
    (List.map Interval.csv_row samples);
  path

let write_slowdown_figure ~dir ~name (fig : Experiments.slowdown_figure) =
  ensure_dir dir;
  let csv_path = Filename.concat dir (name ^ ".csv") in
  Experiments.export_slowdowns ~path:csv_path fig;
  let configs =
    match fig.Experiments.rows with
    | row :: _ -> List.map fst row.Experiments.slowdowns
    | [] -> []
  in
  let gp_path = Filename.concat dir (name ^ ".gp") in
  let oc = open_out gp_path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc
        "# Regenerates the %s bar chart from %s.csv\n\
         set terminal pngcairo size 1400,500\n\
         set output '%s.png'\n\
         set datafile separator ','\n\
         set style data histograms\n\
         set style histogram clustered gap 1\n\
         set style fill solid 0.8 border -1\n\
         set ylabel 'slowdown vs OP (%%)'\n\
         set xtics rotate by -45 scale 0\n\
         set key top left\n\
         set grid ytics\n"
        name name name;
      let columns =
        List.mapi
          (fun i config ->
            Printf.sprintf "'%s.csv' using %d:xtic(1) title '%s'" name (i + 3)
              config)
          configs
      in
      Printf.fprintf oc "plot %s\n" (String.concat ", \\\n     " columns));
  [ csv_path; gp_path ]

let write_scatter_figure ~dir (fig : Experiments.scatter_figure) =
  ensure_dir dir;
  let dump suffix points =
    let path = Filename.concat dir ("fig6_vs_" ^ suffix ^ ".csv") in
    Csv.write ~path
      ~header:
        [ "trace"; "speedup_pct"; "copy_reduction_pct"; "balance_improvement_pct" ]
      (List.map
         (fun (p : Experiments.scatter_point) ->
           [
             p.Experiments.trace;
             Printf.sprintf "%.4f" p.Experiments.speedup;
             Printf.sprintf "%.4f" p.Experiments.copy_reduction;
             Printf.sprintf "%.4f" p.Experiments.balance_improvement;
           ])
         points);
    path
  in
  let p1 = dump "ob" fig.Experiments.vs_ob in
  let p2 = dump "rhop" fig.Experiments.vs_rhop in
  let p3 = dump "op" fig.Experiments.vs_op in
  let gp_path = Filename.concat dir "fig6.gp" in
  let oc = open_out gp_path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc
        "# Regenerates the six Figure 6 scatter panels\n\
         set terminal pngcairo size 1500,900\n\
         set output 'fig6.png'\n\
         set datafile separator ','\n\
         set multiplot layout 2,3\n\
         set grid\n\
         set xzeroaxis\n\
         set yzeroaxis\n\
         set xlabel 'speedup (%%)'\n";
      List.iter
        (fun (title, file, col, ylab) ->
          Printf.fprintf oc
            "set title '%s'\nset ylabel '%s'\nplot '%s' using 2:%d notitle \
             pt 7 ps 0.6\n"
            title ylab file col)
        [
          ("a.1 VC vs OB", "fig6_vs_ob.csv", 3, "copy reduction (%)");
          ("a.2 VC vs RHOP", "fig6_vs_rhop.csv", 3, "copy reduction (%)");
          ("a.3 VC vs OP", "fig6_vs_op.csv", 3, "copy reduction (%)");
          ("b.1 VC vs OB", "fig6_vs_ob.csv", 4, "balance improvement (%)");
          ("b.2 VC vs RHOP", "fig6_vs_rhop.csv", 4, "balance improvement (%)");
          ("b.3 VC vs OP", "fig6_vs_op.csv", 4, "balance improvement (%)");
        ];
      Printf.fprintf oc "unset multiplot\n");
  [ p1; p2; p3; gp_path ]
