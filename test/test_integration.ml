(* End-to-end integration tests: full compile-steer-simulate pipelines
   across configurations, checking the cross-cutting invariants the
   paper's evaluation relies on. *)

open Clusteer_uarch
open Clusteer_workloads
module Harness = Clusteer_harness

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let uops = 4000

let bench name = { (Spec2000.find name) with Profile.phases = 1 }

let run_configs ?(machine = Config.default_2c) profile configs =
  let point = List.hd (Pinpoints.points profile) in
  (Harness.Runner.run_point ~machine ~configs ~uops point).Harness.Runner.runs

let all_2c = Clusteer.Configuration.table3 ~clusters:2
let all_4c = Clusteer.Configuration.table3 ~clusters:4

(* ---- basic invariants across all configurations --------------------------- *)

let check_commits name stats =
  (* The commit stage retires up to commit-width micro-ops in the final
     cycle, so the count may overshoot slightly. *)
  check_bool (name ^ " commits") true
    (stats.Stats.committed >= uops && stats.Stats.committed < uops + 8)

let test_all_configs_commit_exactly () =
  List.iter
    (fun (name, stats) -> check_commits name stats)
    (run_configs (bench "gzip-1") all_2c)

let test_copies_executed_bounded () =
  List.iter
    (fun (name, stats) ->
      check_bool
        (name ^ " executed <= generated+inflight")
        true
        (stats.Stats.copies_executed <= stats.Stats.copies_generated + 64))
    (run_configs (bench "galgel") all_2c)

let test_one_cluster_never_copies () =
  List.iter
    (fun profile ->
      let runs = run_configs profile [ Clusteer.Configuration.One_cluster ] in
      let _, stats = List.hd runs in
      check_int "no copies" 0 stats.Stats.copies_generated;
      check_int "cluster 1 idle" 0 stats.Stats.per_cluster_dispatched.(1))
    [ bench "gzip-1"; bench "swim" ]

let test_dispatch_conservation () =
  (* Per-cluster dispatch counts sum to the total (trace-driven: no
     squashes). Committed may exceed dispatched by at most the ROB
     occupancy at the warmup reset: micro-ops dispatched before the
     reset (not counted) commit after it (counted). *)
  List.iter
    (fun (name, stats) ->
      let total = Array.fold_left ( + ) 0 stats.Stats.per_cluster_dispatched in
      check_int (name ^ " dispatch = commit") stats.Stats.dispatched total;
      check_bool (name ^ " committed <= dispatched + rob") true
        (stats.Stats.committed
        <= stats.Stats.dispatched + Config.default_2c.Config.rob_size))
    (run_configs (bench "crafty") all_2c)

let test_determinism_across_runs () =
  let once () =
    List.map (fun (n, s) -> (n, s.Stats.cycles)) (run_configs (bench "twolf") all_2c)
  in
  Alcotest.(check (list (pair string int))) "bit-identical reruns" (once ()) (once ())

(* ---- the paper's headline orderings ----------------------------------------- *)

let cycles_of runs name =
  match List.assoc_opt name runs with
  | Some s -> s.Stats.cycles
  | None -> Alcotest.fail ("missing config " ^ name)

let test_steering_matters_on_ilp_benchmarks () =
  (* On high-ILP benchmarks the naive one-cluster scheme must clearly
     lose to every real steering scheme. *)
  List.iter
    (fun profile ->
      let runs = run_configs profile all_2c in
      let one = cycles_of runs "one-cluster" in
      List.iter
        (fun other ->
          check_bool
            (profile.Profile.name ^ ": one-cluster worst vs " ^ other)
            true
            (one > cycles_of runs other))
        [ "op"; "vc2" ])
    [ bench "galgel"; bench "crafty"; bench "sixtrack" ]

let test_vc_close_to_op () =
  (* The headline claim: the hybrid tracks the hardware-only baseline
     closely (paper: within a few percent on average). Allow per-
     benchmark slack; the suite-level averages are checked by the
     bench harness. *)
  List.iter
    (fun profile ->
      let runs = run_configs profile all_2c in
      let op = cycles_of runs "op" and vc = cycles_of runs "vc2" in
      let gap = float_of_int (vc - op) /. float_of_int op in
      check_bool (profile.Profile.name ^ ": vc within 15% of op") true
        (gap < 0.15))
    [ bench "gzip-1"; bench "galgel"; bench "swim"; bench "twolf" ]

let test_4cluster_machine_runs_all_configs () =
  List.iter
    (fun (name, stats) ->
      check_commits name stats;
      check_int "four clusters tracked" 4
        (Array.length stats.Stats.per_cluster_dispatched))
    (run_configs ~machine:Config.default_4c (bench "galgel") all_4c)

let test_vc2_on_4_clusters_uses_at_most_two_at_once () =
  (* VC(2->4): only two VCs exist, but remapping over time can still
     spread work over all four clusters. All dispatches must land
     somewhere, and cluster counts must sum correctly. *)
  let runs =
    run_configs ~machine:Config.default_4c (bench "swim")
      [ Clusteer.Configuration.Vc { virtual_clusters = 2 } ]
  in
  let _, stats = List.hd runs in
  let total = Array.fold_left ( + ) 0 stats.Stats.per_cluster_dispatched in
  check_int "dispatch conserved" stats.Stats.dispatched total

let test_op_parallel_never_beats_op_much () =
  (* §2.1: the parallel (stale-location) implementation generates more
     copies than the sequential one. *)
  List.iter
    (fun profile ->
      let runs =
        run_configs profile
          [ Clusteer.Configuration.Op; Clusteer.Configuration.Op_parallel ]
      in
      let op = List.assoc "op" runs and par = List.assoc "op-parallel" runs in
      check_bool
        (profile.Profile.name ^ ": parallel steering generates more copies")
        true
        (par.Stats.copies_generated >= op.Stats.copies_generated))
    [ bench "gzip-1"; bench "galgel"; bench "gcc-1" ]

let test_static_schemes_fill_both_clusters () =
  List.iter
    (fun config ->
      let runs = run_configs (bench "swim") [ config ] in
      let _, stats = List.hd runs in
      check_bool
        (Clusteer.Configuration.name config ^ " uses both clusters")
        true
        (stats.Stats.per_cluster_dispatched.(0) > 0
        && stats.Stats.per_cluster_dispatched.(1) > 0))
    [ Clusteer.Configuration.Ob; Clusteer.Configuration.Rhop ]

let test_hybrid_api_end_to_end () =
  (* The Clusteer.Hybrid one-call API produces the same kind of result
     as the harness pipeline. *)
  let profile = bench "mesa" in
  let w = Synth.build profile in
  let gen = Synth.trace w ~seed:42 in
  let stats =
    Clusteer.Hybrid.simulate ~config:Config.default_2c ~virtual_clusters:2
      ~program:w.Synth.program ~likely:w.Synth.likely
      ~source:(fun () -> Clusteer_trace.Tracegen.next gen)
      ~uops:2000 ()
  in
  check_bool "commits" true
    (stats.Stats.committed >= 2000 && stats.Stats.committed < 2008);
  check_bool "produces cycles" true (stats.Stats.cycles > 0)

let test_topologies_run_and_rank () =
  (* All three interconnects execute correctly; the shared bus can
     never beat the dedicated point-to-point links. *)
  let profile = bench "galgel" in
  let point = List.hd (Pinpoints.points profile) in
  let cycles topology =
    let machine = { Config.default_4c with Config.topology } in
    let runs =
      (Harness.Runner.run_point ~machine
         ~configs:[ Clusteer.Configuration.Vc { virtual_clusters = 2 } ]
         ~uops point)
        .Harness.Runner.runs
    in
    (snd (List.hd runs)).Stats.cycles
  in
  let p2p = cycles (Clusteer_topo.Topology.p2p ~clusters:4 ()) in
  let bus = cycles (Clusteer_topo.Topology.bus ~clusters:4 ()) in
  let ring = cycles (Clusteer_topo.Topology.ring ~clusters:4 ()) in
  check_bool "bus not faster than p2p" true (bus >= p2p);
  check_bool "ring sane" true (ring > 0)

let test_extended_baselines_rank () =
  (* mod-N and dep sit between OP and one-cluster on a steering-
     sensitive benchmark. *)
  let profile = bench "galgel" in
  let point = List.hd (Pinpoints.points profile) in
  let runs =
    (Harness.Runner.run_point ~machine:Config.default_2c
       ~configs:
         [
           Clusteer.Configuration.Op;
           Clusteer.Configuration.Mod_n { n = 3 };
           Clusteer.Configuration.Dep;
           Clusteer.Configuration.One_cluster;
         ]
       ~uops point)
      .Harness.Runner.runs
  in
  let c name = (List.assoc name runs).Stats.cycles in
  check_bool "one-cluster worst" true
    (c "one-cluster" > c "mod3" && c "one-cluster" > c "dep");
  check_bool "dep competitive with op" true
    (float_of_int (c "dep") < 1.35 *. float_of_int (c "op"))

(* Property: random small workload profiles run through the full
   pipeline under every configuration without violating the core
   invariants. *)
let arb_mini_profile =
  QCheck.make
    QCheck.Gen.(
      map
        (fun (seed, ilp, mem10, fp10, hard10) ->
          {
            (Spec2000.find "gzip-1") with
            Profile.name = Printf.sprintf "prop-%d" seed;
            seed;
            ilp = 1 + ilp;
            mem_ratio = float_of_int mem10 /. 20.0;
            fp_ratio = float_of_int fp10 /. 20.0;
            hard_branch_frac = float_of_int hard10 /. 40.0;
            footprint_kb = 64;
            phases = 1;
          })
        (tup5 (int_bound 10_000) (int_bound 5) (int_bound 10) (int_bound 10)
           (int_bound 10)))

let prop_pipeline_invariants =
  QCheck.Test.make ~name:"pipeline invariants on random profiles" ~count:25
    arb_mini_profile (fun profile ->
      Profile.validate profile;
      let point = List.hd (Pinpoints.points profile) in
      let runs =
        (Harness.Runner.run_point ~machine:Config.default_2c ~configs:all_2c
           ~uops:1500 point)
          .Harness.Runner.runs
      in
      List.for_all
        (fun (_, stats) ->
          stats.Stats.committed >= 1500
          && stats.Stats.cycles > 0
          (* warmup resets counters mid-flight: copies generated before
             the reset may execute after it, up to the copy-queue +
             link capacity *)
          && stats.Stats.copies_executed <= stats.Stats.copies_generated + 64
          && Array.fold_left ( + ) 0 stats.Stats.per_cluster_dispatched
             = stats.Stats.dispatched)
        runs)

let test_fig5_shape_regression () =
  (* Pin the reproduction's headline shape on a fixed 8-benchmark
     subset: one-cluster is clearly worst, the software-only schemes
     sit between it and OP, and the hybrid tracks OP within noise. *)
  let names =
    [ "gzip-1"; "gcc-1"; "crafty"; "galgel"; "swim"; "art-1"; "sixtrack"; "lucas" ]
  in
  let profiles = List.map (fun n -> { (Spec2000.find n) with Profile.phases = 1 }) names in
  let totals = Hashtbl.create 8 in
  List.iter
    (fun profile ->
      let point = List.hd (Pinpoints.points profile) in
      let runs =
        (Harness.Runner.run_point ~machine:Config.default_2c ~configs:all_2c
           ~uops:6000 point)
          .Harness.Runner.runs
      in
      List.iter
        (fun (name, stats) ->
          Hashtbl.replace totals name
            (stats.Stats.cycles
            + Option.value ~default:0 (Hashtbl.find_opt totals name)))
        runs)
    profiles;
  let cycles name = Hashtbl.find totals name in
  let pct name = float_of_int (cycles name) /. float_of_int (cycles "op") -. 1.0 in
  check_bool "one-cluster clearly worst" true (pct "one-cluster" > 0.10);
  check_bool "ob between" true (pct "ob" > 0.0 && pct "ob" < pct "one-cluster");
  check_bool "rhop between" true
    (pct "rhop" > -0.02 && pct "rhop" < pct "one-cluster");
  check_bool "vc tracks op" true (abs_float (pct "vc2") < 0.04);
  check_bool "vc beats ob" true (pct "vc2" < pct "ob")

let test_configuration_names_unique () =
  let names = List.map Clusteer.Configuration.name (all_2c @ all_4c) in
  let distinct = List.sort_uniq compare names in
  (* op/ob/rhop/vc2 shared between machine sizes, vc4 and one-cluster
     unique to one of them: 6 distinct configurations overall. *)
  check_int "distinct configurations" 6 (List.length distinct)

let () =
  Alcotest.run "clusteer_integration"
    [
      ( "invariants",
        [
          Alcotest.test_case "all configs commit" `Slow test_all_configs_commit_exactly;
          Alcotest.test_case "copies bounded" `Slow test_copies_executed_bounded;
          Alcotest.test_case "one-cluster no copies" `Slow test_one_cluster_never_copies;
          Alcotest.test_case "dispatch conservation" `Slow test_dispatch_conservation;
          Alcotest.test_case "determinism" `Slow test_determinism_across_runs;
        ] );
      ( "paper-shape",
        [
          Alcotest.test_case "steering matters" `Slow test_steering_matters_on_ilp_benchmarks;
          Alcotest.test_case "vc close to op" `Slow test_vc_close_to_op;
          Alcotest.test_case "4-cluster configs" `Slow test_4cluster_machine_runs_all_configs;
          Alcotest.test_case "vc2 on 4 clusters" `Slow test_vc2_on_4_clusters_uses_at_most_two_at_once;
          Alcotest.test_case "parallel steering copies" `Slow test_op_parallel_never_beats_op_much;
          Alcotest.test_case "static fills clusters" `Slow test_static_schemes_fill_both_clusters;
          Alcotest.test_case "hybrid api" `Slow test_hybrid_api_end_to_end;
          Alcotest.test_case "topologies" `Slow test_topologies_run_and_rank;
          Alcotest.test_case "extended baselines" `Slow test_extended_baselines_rank;
          Alcotest.test_case "fig5 shape regression" `Slow test_fig5_shape_regression;
          Alcotest.test_case "config names" `Quick test_configuration_names_unique;
          QCheck_alcotest.to_alcotest prop_pipeline_invariants;
        ] );
    ]
