(** Deterministic parallel map over OCaml 5 domains.

    Experiment sweeps run hundreds of independent simulations; this
    fans them out across domains while keeping results in input order,
    so a parallel sweep is bit-identical to a sequential one. Work is
    distributed dynamically (an atomic cursor), which balances the very
    uneven per-benchmark simulation times. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f xs] applies [f] to every element, using up to
    [domains] domains (default {!Domain.recommended_domain_count}; 1 or
    a short list degrades to [List.map]). [f] must be safe to run
    concurrently with itself on distinct elements; exceptions raised by
    [f] are re-raised in the caller. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()], capped at 8. *)
