(** Framed newline-JSON wire protocol of the simulation service.

    One JSON document per line, both directions. A client connects to
    the Unix-domain socket, writes any number of command lines, shuts
    down its write side, and reads one response line per command (in
    command order) until EOF. Delivery metadata — request id, deadline
    — lives in the envelope, {b outside} {!Request.t}, so it never
    perturbs the content hash.

    Commands:
    {v
    {"op":"simulate","id":7,"deadline_ms":250.0,"request":{...}}
    {"op":"stats"}
    {"op":"metrics"}
    {"op":"ping"}
    {"op":"shutdown"}
    v}

    Responses:
    {v
    {"id":7,"status":"ok","hash":"<16 hex>","cached":false,"result":{...}}
    {"id":7,"status":"rejected","reason":"queue_full"|"timeout"}
    {"id":7,"status":"rejected","reason":"check_failed","message":"..."}
    {"id":7,"status":"error","message":"..."}
    {"status":"ok","stats":{"counters":{...},"histograms":{...}}}
    {"status":"ok","metrics":"# TYPE serve_requests counter\n..."}
    {"status":"ok","pong":true}
    {"status":"ok","bye":true}
    v} *)

type command =
  | Simulate of { id : int; deadline_ms : float option; request : Request.t }
      (** [deadline_ms] is relative to arrival at the server; a
          non-positive value is already expired. [None] = no deadline. *)
  | Stats  (** snapshot of the service counter registry *)
  | Metrics
      (** Prometheus-style text exposition of the same registry (see
          {!Clusteer_obs.Expo}) — a live scrape of a running server *)
  | Ping
  | Shutdown  (** finish this connection's batch, then stop serving *)

type reject_reason =
  | Queue_full
  | Timeout
  | Check_failed of string
      (** the request decoded but failed static validation (see
          {!Validate}); the payload is a one-line explanation *)

type response =
  | Result of { id : int; hash : string; cached : bool; result : Clusteer_obs.Json.t }
  | Rejected of { id : int; reason : reject_reason }
  | Error_reply of { id : int; message : string }
  | Stats_reply of Clusteer_obs.Json.t
  | Metrics_reply of string
      (** the exposition document, carried as one JSON string *)
  | Pong
  | Bye

val reject_reason_name : reject_reason -> string
(** ["queue_full"] / ["timeout"] / ["check_failed"]. *)

val encode_command : command -> string
(** One line, no trailing newline. [Simulate] embeds the request's
    canonical encoding. *)

val parse_command : string -> (command, string) result

val encode_response : response -> string
val parse_response : string -> (response, string) result

val encode_result_line :
  id:int -> hash:string -> cached:bool -> result:string -> string
(** Like {!encode_response} for [Result], but splices [result] — an
    already-serialized JSON document — verbatim. The server answers
    cache hits through this, so a replayed result is byte-identical to
    the run that produced it (no parse/re-encode round trip). *)
