lib/compiler/chains.ml: Annot Array Clusteer_ddg Clusteer_isa List Region Uop
