open Clusteer_isa
open Clusteer_ddg
module Uarch = Clusteer_uarch

let codes = [ "PL001"; "PL002"; "PL003"; "PL004"; "PL005" ]

let check ~program ~likely ~annot ~config ?(region_uops = 512) () =
  let n = program.Program.uop_count in
  if Array.length annot.Annot.cluster_of <> n then
    [
      Diag.errorf ~code:"PL003" "cluster_of has %d entries for %d static uops"
        (Array.length annot.Annot.cluster_of)
        n;
    ]
  else begin
    let diags = ref [] in
    let add d = diags := d :: !diags in
    let clusters = config.Uarch.Config.clusters in
    Array.iteri
      (fun id c ->
        let block = Program.block_of_uop program id in
        if c = -1 then
          add
            (Diag.errorf ~uop:id ~block ~code:"PL002"
               "uop unplaced under static scheme %S" annot.Annot.scheme)
        else if c < 0 || c >= clusters then
          add
            (Diag.errorf ~uop:id ~block ~code:"PL001"
               "cluster %d out of range [0, %d)" c clusters))
      annot.Annot.cluster_of;
    (* PL004 (info): static per-region queue pressure.  A region that
       places more uops of one queue class on a cluster than its issue
       queue holds cannot ever have the whole region in flight there. *)
    let regions = Region.build ~program ~likely ~max_uops:region_uops in
    List.iter
      (fun (region : Region.t) ->
        let int_load = Array.make clusters 0 in
        let fp_load = Array.make clusters 0 in
        Array.iter
          (fun (u : Uop.t) ->
            let c = annot.Annot.cluster_of.(u.Uop.id) in
            if c >= 0 && c < clusters then
              match Opcode.queue u.Uop.opcode with
              | Opcode.Int_queue -> int_load.(c) <- int_load.(c) + 1
              | Opcode.Fp_queue -> fp_load.(c) <- fp_load.(c) + 1
              | Opcode.Copy_queue -> ())
          region.Region.uops;
        for c = 0 to clusters - 1 do
          if int_load.(c) > config.Uarch.Config.int_iq_size then
            add
              (Diag.infof ~region:region.Region.id ~code:"PL004"
                 "region %d places %d INT-queue uops on cluster %d (queue \
                  holds %d)"
                 region.Region.id int_load.(c) c
                 config.Uarch.Config.int_iq_size);
          if fp_load.(c) > config.Uarch.Config.fp_iq_size then
            add
              (Diag.infof ~region:region.Region.id ~code:"PL004"
                 "region %d places %d FP-queue uops on cluster %d (queue \
                  holds %d)"
                 region.Region.id fp_load.(c) c config.Uarch.Config.fp_iq_size)
        done)
      regions;
    List.rev !diags
  end

let check_crit ~program ~likely ~critical ?(region_uops = 512)
    ?(slack_threshold = 0) () =
  let n = program.Program.uop_count in
  if Array.length critical <> n then
    [
      Diag.errorf ~code:"PL003" "criticality hints have %d entries for %d \
                                 static uops"
        (Array.length critical) n;
    ]
  else begin
    let diags = ref [] in
    (* Slack comes from the shared longest-path module — the same
       function Crit_hints calls — so this pass checks the hints
       against their own definition, not a private recomputation. *)
    List.iter
      (fun (rs : Slack.region_slack) ->
        Slack.iter rs (fun ~node:_ ~uop:(u : Uop.t) ~slack ->
            let id = u.Uop.id in
            let expected = slack <= slack_threshold in
            if expected && not critical.(id) then
              diags :=
                Diag.errorf ~uop:id
                  ~block:(Program.block_of_uop program id)
                  ~region:rs.Slack.region.Region.id ~code:"PL005"
                  "uop with slack %d (threshold %d) not marked critical" slack
                  slack_threshold
                :: !diags
            else if (not expected) && critical.(id) then
              diags :=
                Diag.errorf ~uop:id
                  ~block:(Program.block_of_uop program id)
                  ~region:rs.Slack.region.Region.id ~code:"PL005"
                  "uop marked critical but has slack %d (threshold %d)" slack
                  slack_threshold
                :: !diags))
      (Slack.analyze ~program ~likely ~region_uops ());
    List.rev !diags
  end
