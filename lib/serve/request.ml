module Json = Clusteer_obs.Json
module Spec2000 = Clusteer_workloads.Spec2000

type overrides = {
  fp_ratio : float option;
  mem_ratio : float option;
  ilp : int option;
  footprint_kb : int option;
}

let no_overrides =
  { fp_ratio = None; mem_ratio = None; ilp = None; footprint_kb = None }

type t = {
  workload : string;
  phase : int;
  clusters : int;
  policy : Clusteer.Configuration.t;
  uops : int;
  warmup : int option;
  seed : int option;
  overrides : overrides;
}

(* The short suite names ("mcf") and the paper's trace-point names
   ("181.mcf") must hash identically, so resolve at construction. An
   unknown name is kept verbatim; execution rejects it later. *)
let canonical_workload name =
  match Spec2000.find name with
  | profile -> profile.Clusteer_workloads.Profile.name
  | exception Not_found -> name

let make ~workload ?(phase = 0) ?(clusters = 2)
    ?(policy = Clusteer.Configuration.Vc { virtual_clusters = 2 })
    ?(uops = 20_000) ?warmup ?seed ?(overrides = no_overrides) () =
  {
    workload = canonical_workload workload;
    phase;
    clusters;
    policy;
    uops;
    warmup;
    seed;
    overrides;
  }

let apply_overrides (p : Clusteer_workloads.Profile.t) o =
  let module Profile = Clusteer_workloads.Profile in
  let p =
    match o.fp_ratio with
    | Some v -> { p with Profile.fp_ratio = v }
    | None -> p
  in
  let p =
    match o.mem_ratio with
    | Some v -> { p with Profile.mem_ratio = v }
    | None -> p
  in
  let p = match o.ilp with Some v -> { p with Profile.ilp = v } | None -> p in
  match o.footprint_kb with
  | Some v -> { p with Profile.footprint_kb = v }
  | None -> p

(* ---- admission check --------------------------------------------- *)

(* The hook indirection keeps this module free of a dependency on the
   static analyzer: [Validate.install] (which does depend on
   [clusteer_analysis]) replaces the default accept-everything hook
   when the server starts. *)
let check_hook : (t -> (unit, string) result) ref = ref (fun _ -> Ok ())
let check t = !check_hook t

(* ---- canonical encoding ------------------------------------------ *)

(* Floats travel as their IEEE-754 bit pattern: integer-exact, no
   decimal formatting ambiguity, and [Json.to_string] never sees a
   [Float] node on the canonical path. *)
let float_json f = Json.Str (Printf.sprintf "f64:%016Lx" (Int64.bits_of_float f))

let opt enc = function None -> Json.Null | Some v -> enc v

let overrides_json o =
  Json.Obj
    [
      ("fp_ratio", opt float_json o.fp_ratio);
      ("mem_ratio", opt float_json o.mem_ratio);
      ("ilp", opt (fun n -> Json.Int n) o.ilp);
      ("footprint_kb", opt (fun n -> Json.Int n) o.footprint_kb);
    ]

let canonical t =
  Json.Obj
    [
      ("v", Json.Int 1);
      ("workload", Json.Str t.workload);
      ("phase", Json.Int t.phase);
      ("clusters", Json.Int t.clusters);
      ("policy", Json.Str (Clusteer.Configuration.name t.policy));
      ("uops", Json.Int t.uops);
      ("warmup", opt (fun n -> Json.Int n) t.warmup);
      ("seed", opt (fun n -> Json.Int n) t.seed);
      ("overrides", overrides_json t.overrides);
    ]

let canonical_string t = Json.to_string (canonical t)

let hash t =
  let s = canonical_string t in
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code c)))
          0x100000001B3L)
    s;
  Printf.sprintf "%016Lx" !h

(* ---- decoding ---------------------------------------------------- *)

let ( let* ) = Result.bind

let decode_float field = function
  | Json.Float f -> Ok (Some f)
  | Json.Int n -> Ok (Some (float_of_int n))
  | Json.Str s
    when String.length s = 20 && String.sub s 0 4 = "f64:" -> (
      match Int64.of_string_opt ("0x" ^ String.sub s 4 16) with
      | Some bits -> Ok (Some (Int64.float_of_bits bits))
      | None -> Error (Printf.sprintf "%s: bad f64 bit pattern %S" field s))
  | Json.Null -> Ok None
  | _ -> Error (Printf.sprintf "%s: expected a number or f64:<hex>" field)

let decode_int field = function
  | Json.Int n -> Ok (Some n)
  | Json.Null -> Ok None
  | _ -> Error (Printf.sprintf "%s: expected an integer" field)

let check_known ~known fields =
  match List.find_opt (fun (k, _) -> not (List.mem k known)) fields with
  | Some (k, _) -> Error (Printf.sprintf "unknown field %S" k)
  | None -> Ok ()

let field name fields = List.assoc_opt name fields

let decode_overrides = function
  | None | Some Json.Null -> Ok no_overrides
  | Some (Json.Obj fields) ->
      let* () =
        check_known
          ~known:[ "fp_ratio"; "mem_ratio"; "ilp"; "footprint_kb" ]
          fields
      in
      let f name = Option.value ~default:Json.Null (field name fields) in
      let* fp_ratio = decode_float "overrides.fp_ratio" (f "fp_ratio") in
      let* mem_ratio = decode_float "overrides.mem_ratio" (f "mem_ratio") in
      let* ilp = decode_int "overrides.ilp" (f "ilp") in
      let* footprint_kb = decode_int "overrides.footprint_kb" (f "footprint_kb") in
      Ok { fp_ratio; mem_ratio; ilp; footprint_kb }
  | Some _ -> Error "overrides: expected an object"

let of_json = function
  | Json.Obj fields ->
      let* () =
        check_known
          ~known:
            [
              "v"; "workload"; "phase"; "clusters"; "policy"; "uops";
              "warmup"; "seed"; "overrides";
            ]
          fields
      in
      let* () =
        match field "v" fields with
        | None | Some (Json.Int 1) -> Ok ()
        | Some v ->
            Error (Printf.sprintf "unsupported schema version %s" (Json.to_string v))
      in
      let* workload =
        match field "workload" fields with
        | Some (Json.Str s) -> Ok s
        | Some _ -> Error "workload: expected a string"
        | None -> Error "workload: required"
      in
      let int_with ~default name =
        match field name fields with
        | None -> Ok default
        | Some v ->
            let* n = decode_int name v in
            Ok (Option.value ~default n)
      in
      let* phase = int_with ~default:0 "phase" in
      let* clusters = int_with ~default:2 "clusters" in
      let* uops = int_with ~default:20_000 "uops" in
      let* warmup =
        match field "warmup" fields with
        | None -> Ok None
        | Some v -> decode_int "warmup" v
      in
      let* seed =
        match field "seed" fields with
        | None -> Ok None
        | Some v -> decode_int "seed" v
      in
      let* policy =
        match field "policy" fields with
        | None -> Ok (Clusteer.Configuration.Vc { virtual_clusters = 2 })
        | Some (Json.Str s) -> (
            match Clusteer.Configuration.of_name s with
            | Ok p -> Ok p
            | Error (`Msg m) -> Error ("policy: " ^ m))
        | Some _ -> Error "policy: expected a string"
      in
      let* overrides = decode_overrides (field "overrides" fields) in
      if clusters <= 0 then Error "clusters: must be positive"
      else if uops <= 0 then Error "uops: must be positive"
      else if phase < 0 then Error "phase: must be non-negative"
      else if (match warmup with Some w -> w < 0 | None -> false) then
        Error "warmup: must be non-negative"
      else
        Ok
          (make ~workload ~phase ~clusters ~policy ~uops ?warmup ?seed
             ~overrides ())
  | _ -> Error "request: expected an object"

let equal a b = canonical_string a = canonical_string b
