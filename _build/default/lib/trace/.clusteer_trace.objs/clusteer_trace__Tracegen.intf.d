lib/trace/tracegen.mli: Branch_model Clusteer_isa Dynuop Mem_model Program
