(** Content-addressed result cache.

    Maps a request {!Request.hash} to the serialized result document
    that simulation produced for it. Because PR 2 made simulation a
    bit-deterministic pure function of the canonical request, a hit
    can be replayed verbatim — the second response is byte-identical
    to the first, with zero simulation work.

    Two tiers:
    - an in-memory {!Clusteer_util.Lru} bounded by a byte budget
      (entry cost = key + value bytes);
    - an optional on-disk spill directory: entries evicted from memory
      are written to [dir/<hash>.json]; a memory miss consults the
      directory and re-admits the entry on success. The directory is
      also how a restarted server warm-starts.

    Instrumentation is registered in the given counter registry:
    [serve.cache.hits] (served from either tier), [serve.cache.disk_hits]
    (subset satisfied from disk), [serve.cache.misses],
    [serve.cache.evictions] and [serve.cache.spills]. *)

type t

val create :
  ?registry:Clusteer_obs.Counters.registry ->
  ?dir:string ->
  budget:int ->
  unit ->
  t
(** [budget] is the in-memory byte budget. [dir] enables the disk
    tier; it is created (once, on first spill or lookup) if missing. *)

val find : t -> string -> string option
(** Lookup by content hash; counts a hit or a miss. *)

val store : t -> string -> string -> unit
(** [store t hash result] admits a fresh result (memory tier; spills
    whatever the admission evicts). *)

val length : t -> int
(** Entries resident in memory. *)
