lib/vliw/schedule.mli: Clusteer_ddg Machine
