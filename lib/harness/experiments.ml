open Clusteer_uarch
open Clusteer_workloads
module Table = Clusteer_util.Table
module Csv = Clusteer_util.Csv
module Bitset = Clusteer_util.Bitset

type suite_run = {
  machine : Config.t;
  uops : int;
  results : (Profile.t * Runner.point_result list) list;
}

let default_uops = 20_000

let run_sweep ~machine ~configs ?(uops = default_uops)
    ?(profiles = Spec2000.all) ?(progress = fun _ -> ()) ?domains ?strategy
    ?profiled () =
  (* Simulation points are independent; the runner shards them across
     domains at point granularity (finer than per-benchmark, so large
     benchmarks don't serialize the tail) with per-shard counter
     registries. Results keep input order, so parallel sweeps are
     bit-identical to sequential ones. *)
  let results =
    Runner.run_grouped ~progress ?domains ?strategy ?profiled ~machine
      ~configs ~uops profiles
  in
  { machine; uops; results }

let run_2cluster ?uops ?profiles ?progress ?domains ?strategy ?profiled () =
  run_sweep ~machine:Config.default_2c
    ~configs:(Clusteer.Configuration.table3 ~clusters:2)
    ?uops ?profiles ?progress ?domains ?strategy ?profiled ()

let run_4cluster ?uops ?profiles ?progress ?domains ?strategy ?profiled () =
  run_sweep ~machine:Config.default_4c
    ~configs:(Clusteer.Configuration.table3 ~clusters:4)
    ?uops ?profiles ?progress ?domains ?strategy ?profiled ()

(* ---- Figures 5 and 7: slowdown vs OP ----------------------------- *)

type slowdown_row = {
  bench : string;
  suite : Profile.suite;
  slowdowns : (string * float) list;
}

type slowdown_figure = {
  rows : slowdown_row list;
  int_avg : (string * float) list;
  fp_avg : (string * float) list;
  cpu_avg : (string * float) list;
}

let config_names run =
  match run.results with
  | (_, r :: _) :: _ -> List.map fst r.Runner.runs
  | _ -> []

let non_baseline_configs run =
  List.filter (fun n -> n <> "op") (config_names run)

let slowdown_figure_of run =
  let configs = non_baseline_configs run in
  let rows =
    List.map
      (fun ((profile : Profile.t), points) ->
        let slowdowns =
          List.map
            (fun config ->
              let s =
                Runner.weighted_pair_metric points ~config_a:config
                  ~config_b:"op" ~f:(fun a b ->
                    Metrics.slowdown_pct ~baseline:b a)
              in
              (config, s))
            configs
        in
        { bench = profile.Profile.name; suite = profile.Profile.suite; slowdowns })
      run.results
  in
  let avg_over pred =
    let selected = List.filter (fun r -> pred r.suite) rows in
    List.map
      (fun config ->
        let values =
          List.map (fun r -> List.assoc config r.slowdowns) selected
        in
        let mean =
          if values = [] then 0.0
          else Clusteer_util.Stats.mean (Array.of_list values)
        in
        (config, mean))
      configs
  in
  {
    rows;
    int_avg = avg_over (fun s -> s = Profile.Spec_int);
    fp_avg = avg_over (fun s -> s = Profile.Spec_fp);
    cpu_avg = avg_over (fun _ -> true);
  }

let figure5_of = slowdown_figure_of
let figure7_of = slowdown_figure_of

let print_slowdown_figure ~title fig =
  let configs = List.map fst (List.nth fig.rows 0).slowdowns in
  let header = Array.of_list ("benchmark" :: configs) in
  let row_of name slowdowns =
    Array.of_list
      (name
      :: List.map (fun c -> Table.fmt_percent (List.assoc c slowdowns)) configs)
  in
  let rows =
    List.map (fun r -> row_of r.bench r.slowdowns) fig.rows
    @ [
        row_of "INT AVG" fig.int_avg;
        row_of "FP AVG" fig.fp_avg;
        row_of "CPU2000 AVG" fig.cpu_avg;
      ]
  in
  print_endline title;
  print_string (Table.render ~header rows)

(* ---- Figure 6: scatter data --------------------------------------- *)

type scatter_point = {
  trace : string;
  speedup : float;
  copy_reduction : float;
  balance_improvement : float;
}

type scatter_figure = {
  vs_ob : scatter_point list;
  vs_rhop : scatter_point list;
  vs_op : scatter_point list;
}

let vc_config_name run =
  (* The 2-VC hybrid on a 2-cluster machine, VC(2->4) on 4 clusters. *)
  match List.find_opt (fun n -> n = "vc2") (config_names run) with
  | Some n -> n
  | None -> (
      match
        List.find_opt
          (fun n -> String.length n > 2 && String.sub n 0 2 = "vc")
          (config_names run)
      with
      | Some n -> n
      | None -> invalid_arg "Experiments: no VC configuration in run")

let scatter_against run ~other =
  let vc = vc_config_name run in
  List.concat_map
    (fun ((profile : Profile.t), points) ->
      List.map
        (fun (r : Runner.point_result) ->
          let stats c = List.assoc c r.Runner.runs in
          let vc_s = stats vc and other_s = stats other in
          {
            trace =
              Printf.sprintf "%s/%d" profile.Profile.name
                r.Runner.point.Pinpoints.index;
            speedup = Metrics.speedup_pct ~of_:vc_s ~over:other_s;
            copy_reduction = Metrics.copy_reduction_pct ~of_:vc_s ~over:other_s;
            balance_improvement =
              Metrics.balance_improvement_pct ~of_:vc_s ~over:other_s;
          })
        points)
    run.results

let figure6_of run =
  {
    vs_ob = scatter_against run ~other:"ob";
    vs_rhop = scatter_against run ~other:"rhop";
    vs_op = scatter_against run ~other:"op";
  }

let scatter_summary name points =
  let arr f = Array.of_list (List.map f points) in
  let frac_pos f =
    let n = List.length points in
    if n = 0 then 0.0
    else
      float_of_int (List.length (List.filter (fun p -> f p > 0.0) points))
      /. float_of_int n *. 100.0
  in
  Printf.printf
    "%-10s  speedup avg %+6.2f%%  copy-red avg %+6.2f%% (pos %4.0f%%)  balance avg %+7.2f%% (pos %4.0f%%)\n"
    name
    (Clusteer_util.Stats.mean (arr (fun p -> p.speedup)))
    (Clusteer_util.Stats.mean (arr (fun p -> p.copy_reduction)))
    (frac_pos (fun p -> p.copy_reduction))
    (Clusteer_util.Stats.mean (arr (fun p -> p.balance_improvement)))
    (frac_pos (fun p -> p.balance_improvement))

let print_scatter_summary fig =
  print_endline
    "Figure 6 summaries (per trace point; positive = VC better):";
  scatter_summary "VC vs OB" fig.vs_ob;
  scatter_summary "VC vs RHOP" fig.vs_rhop;
  scatter_summary "VC vs OP" fig.vs_op

let print_scatter_plots fig =
  let panel tag other points metric y_label =
    Printf.printf "\nFigure 6 (%s): VC vs %s\n" tag other;
    print_string
      (Clusteer_util.Plot.scatter ~x_label:"speedup %" ~y_label
         (List.map (fun p -> (p.speedup, metric p)) points))
  in
  panel "a.1" "OB" fig.vs_ob (fun p -> p.copy_reduction) "copy reduction %";
  panel "b.1" "OB" fig.vs_ob
    (fun p -> p.balance_improvement)
    "balance improvement %";
  panel "a.2" "RHOP" fig.vs_rhop (fun p -> p.copy_reduction) "copy reduction %";
  panel "b.2" "RHOP" fig.vs_rhop
    (fun p -> p.balance_improvement)
    "balance improvement %";
  panel "a.3" "OP" fig.vs_op (fun p -> p.copy_reduction) "copy reduction %";
  panel "b.3" "OP" fig.vs_op
    (fun p -> p.balance_improvement)
    "balance improvement %"

(* ---- §5.4 copy inflation ------------------------------------------ *)

let copy_inflation run =
  let names = config_names run in
  let vc_wide =
    match List.find_opt (fun n -> n = "vc4") names with
    | Some n -> n
    | None -> invalid_arg "Experiments.copy_inflation: needs a vc4 run"
  in
  let ratios =
    List.concat_map
      (fun (_, points) ->
        List.map
          (fun (r : Runner.point_result) ->
            let copies c =
              float_of_int (List.assoc c r.Runner.runs).Stats.copies_generated
            in
            let narrow = copies "vc2" in
            if narrow <= 0.0 then 1.0 else copies vc_wide /. narrow)
          points)
      run.results
  in
  (Clusteer_util.Stats.mean (Array.of_list ratios) -. 1.0) *. 100.0

(* ---- Tables -------------------------------------------------------- *)

let print_table1 () =
  print_endline "Table 1: steering-logic complexity comparison";
  let header =
    [|
      "configuration"; "dep check"; "balance"; "vote unit"; "copy gen";
      "serialized";
    |]
  in
  print_string (Table.render ~header (Clusteer_steer.Complexity.table_rows ()))

let print_table2 ~clusters =
  Printf.printf "Table 2: architectural parameters (%d clusters)\n" clusters;
  let header = [| "parameter"; "value" |] in
  let rows =
    List.map
      (fun (k, v) -> [| k; v |])
      (Config.describe (Config.default ~clusters))
  in
  print_string
    (Table.render ~align:[| Table.Left; Table.Left |] ~header rows)

let print_table3 () =
  print_endline "Table 3: evaluated configurations";
  let header = [| "configuration"; "description" |] in
  let configs =
    Clusteer.Configuration.table3 ~clusters:2
    @ [ Clusteer.Configuration.Vc { virtual_clusters = 4 } ]
  in
  let rows =
    List.map
      (fun c ->
        [|
          Clusteer.Configuration.name c; Clusteer.Configuration.description c;
        |])
      configs
  in
  print_string (Table.render ~align:[| Table.Left; Table.Left |] ~header rows)

(* ---- §2.1 worked example ------------------------------------------ *)

open Clusteer_isa

type sec21 = {
  sequential_copies : int;
  parallel_copies : int;
  sequential_placement : int list;
  parallel_placement : int list;
}

(* The example: I1: R1 <- R1 + R2; I2: R3 <- Load(R1); I3: R4 <-
   Load(R3). Before steering R1 is in cluster 0, R2 and R3 in cluster
   1; cluster 1 is empty, cluster 0 has work in flight. *)
let section21_example () =
  let i1 =
    Uop.make ~id:0 ~opcode:Opcode.Int_alu ~dst:(Reg.int 1)
      ~srcs:[| Reg.int 1; Reg.int 2 |] ()
  in
  let i2 =
    Uop.make ~id:1 ~opcode:Opcode.Load ~dst:(Reg.int 3) ~srcs:[| Reg.int 1 |]
      ~stream:0 ()
  in
  let i3 =
    Uop.make ~id:2 ~opcode:Opcode.Load ~dst:(Reg.int 4) ~srcs:[| Reg.int 3 |]
      ~stream:0 ()
  in
  let duop seq suop = { Clusteer_trace.Dynuop.seq; suop; addr = 0; taken = false } in
  let replay (policy : Policy.t) =
    (* Live location table, updated sequentially as the engine would. *)
    let loc = Hashtbl.create 8 in
    Hashtbl.replace loc (Reg.int 1) (Bitset.singleton 0);
    Hashtbl.replace loc (Reg.int 2) (Bitset.singleton 1);
    Hashtbl.replace loc (Reg.int 3) (Bitset.singleton 1);
    let location r =
      Option.value ~default:(Bitset.full 2) (Hashtbl.find_opt loc r)
    in
    let inflight = [| 5; 0 |] in
    let view =
      {
        Policy.clusters = 2;
        cycle = (fun () -> 0);
        inflight = (fun c -> inflight.(c));
        queue_free = (fun _ _ -> 48);
        src_locations =
          (fun d -> Array.map location d.Clusteer_trace.Dynuop.suop.Uop.srcs);
        src_locations_into =
          (fun d buf ->
            let srcs = d.Clusteer_trace.Dynuop.suop.Uop.srcs in
            Array.iteri (fun i src -> buf.(i) <- location src) srcs;
            Array.length srcs);
        reg_location = location;
        annot = Annot.none ~uop_count:3;
      }
    in
    let copies = ref 0 in
    let placement =
      List.mapi
        (fun i u ->
          match policy.Policy.decide view (duop i u) with
          | Policy.Stall -> invalid_arg "section21: unexpected stall"
          | Policy.Dispatch_to c ->
              (* Engine copy rule: each source not located in [c]
                 generates a copy and becomes located there too. *)
              Array.iter
                (fun src ->
                  let l = location src in
                  if not (Bitset.mem l c) then begin
                    incr copies;
                    Hashtbl.replace loc src (Bitset.add l c)
                  end)
                u.Uop.srcs;
              Option.iter
                (fun dst -> Hashtbl.replace loc dst (Bitset.singleton c))
                u.Uop.dst;
              inflight.(c) <- inflight.(c) + 1;
              c)
        [ i1; i2; i3 ]
    in
    (!copies, placement)
  in
  let sequential_copies, sequential_placement =
    replay (Clusteer_steer.Op.make ())
  in
  let parallel_copies, parallel_placement =
    replay (Clusteer_steer.Op_parallel.make ())
  in
  { sequential_copies; parallel_copies; sequential_placement; parallel_placement }

let print_section21 r =
  Printf.printf
    "Section 2.1 example (I1: R1<-R1+R2; I2: R3<-[R1]; I3: R4<-[R3])\n\
     sequential steering: placement %s, %d copies\n\
     parallel steering:   placement %s, %d copies\n\
     extra copies of the parallel implementation: %d (paper: 2)\n"
    (String.concat "," (List.map string_of_int r.sequential_placement))
    r.sequential_copies
    (String.concat "," (List.map string_of_int r.parallel_placement))
    r.parallel_copies
    (r.parallel_copies - r.sequential_copies)

(* ---- CSV export ---------------------------------------------------- *)

let export_slowdowns ~path fig =
  let configs = List.map fst (List.nth fig.rows 0).slowdowns in
  let header = "benchmark" :: "suite" :: configs in
  let rows =
    List.map
      (fun r ->
        r.bench
        :: Profile.suite_name r.suite
        :: List.map
             (fun c -> Printf.sprintf "%.4f" (List.assoc c r.slowdowns))
             configs)
      fig.rows
  in
  Csv.write ~path ~header rows

let export_scatter ~path_prefix fig =
  let dump name points =
    let header = [ "trace"; "speedup_pct"; "copy_reduction_pct"; "balance_improvement_pct" ] in
    let rows =
      List.map
        (fun p ->
          [
            p.trace;
            Printf.sprintf "%.4f" p.speedup;
            Printf.sprintf "%.4f" p.copy_reduction;
            Printf.sprintf "%.4f" p.balance_improvement;
          ])
        points
    in
    Csv.write ~path:(path_prefix ^ "_" ^ name ^ ".csv") ~header rows
  in
  dump "vs_ob" fig.vs_ob;
  dump "vs_rhop" fig.vs_rhop;
  dump "vs_op" fig.vs_op
