(** The simulation service: a long-lived batch request server over a
    Unix-domain socket.

    Per-connection batch cycle (the {!Protocol} framing):

    + {b Admission}, in arrival order. A simulate command is resolved
      and validated ([Error_reply] on a bad request), looked up in the
      content-addressed {!Cache} (a hit is answered immediately, no
      queue slot, no deadline check — the lookup {e is} the fast
      path), deduplicated against identical in-flight requests of the
      same batch, and finally admitted to the bounded queue — or
      rejected with [Queue_full] (backpressure is an explicit answer,
      not unbounded latency). A request whose deadline is already
      expired at admission is rejected with [Timeout] without
      simulating.
    + {b Dispatch}, oldest deadline first (no deadline sorts last;
      ties in arrival order). The worker pool runs the queue on
      {!Clusteer_harness.Runner.map_isolated}: each job gets a private
      counter registry (merged back in input order), so concurrent
      jobs keep PR 2's bit-determinism. A job whose deadline expires
      while it waits behind earlier work is dropped with [Timeout]
      before any simulation happens.
    + {b Reply}: one response line per command line, in command order.
      Fresh results are admitted to the cache (and spill to disk as
      the byte budget forces evictions).

    Instrumentation (in the server's registry): the [serve.cache.*]
    counters of {!Cache}, [serve.requests], [serve.batches],
    [serve.simulations], [serve.rejected.queue_full],
    [serve.rejected.timeout], [serve.errors], and histograms
    [serve.queue.depth] (depth observed at each admission),
    [serve.batch.size] and [serve.latency.us] (per simulate request,
    arrival to completion).

    The [metrics] command answers a Prometheus-style text scrape of
    that registry ({!Clusteer_obs.Expo}). With [profile] set (or
    implied by [ledger_dir]) the self-profiler adds
    [profile.serve.admission.ns] / [profile.serve.dispatch.ns] (one
    observation per batch), [profile.serve.cache_lookup.ns] (one per
    lookup) and the workers' [profile.engine.*.ns] phase timings. With
    [ledger_dir] set, every batch also appends a
    {!Clusteer_obs.Ledger} entry ([kind = "serve_batch"]) capturing
    wall time, GC deltas over the batch, the committed micro-ops of
    its fresh simulations, and the full registry snapshot. *)

type config = {
  socket_path : string;
  queue_depth : int;  (** admission bound per batch (default 64) *)
  domains : int option;  (** worker-pool width; [None] = harness default *)
  cache_budget : int;  (** in-memory cache byte budget *)
  cache_dir : string option;  (** disk spill directory, e.g. [_cache/] *)
  ledger_dir : string option;
      (** record every batch in a {!Clusteer_obs.Ledger} at this
          directory; implies [profile] *)
  profile : bool;  (** attach the pipeline self-profiler *)
  log : string -> unit;  (** diagnostic lines (default: drop) *)
}

val default_config : socket_path:string -> config
(** queue_depth 64, default domains, 64 MB cache, no disk spill, no
    ledger, profiler off, silent log. *)

val serve : ?registry:Clusteer_obs.Counters.registry -> config -> unit
(** Bind the socket (replacing a stale file at that path), accept
    connections one batch at a time, and block until a client sends
    [shutdown]. The socket file is unlinked on exit. Counters go to
    [registry] (default {!Clusteer_obs.Counters.default}). *)
