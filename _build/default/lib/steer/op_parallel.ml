open Clusteer_isa
open Clusteer_uarch
module Bitset = Clusteer_util.Bitset

(* Per-cycle memory of registers redefined by micro-ops already steered
   this cycle: maps the register to the location mask its *previous*
   value had when the bundle started. Reading through this table is
   what "non-updated information" means in §2.1. *)
type bundle_state = {
  mutable cycle : int;
  stale : (Reg.t, Bitset.t) Hashtbl.t;
}

let stale_locations state view duop =
  let fresh = view.Policy.src_locations duop in
  Array.mapi
    (fun i loc ->
      let src = duop.Clusteer_trace.Dynuop.suop.Uop.srcs.(i) in
      match Hashtbl.find_opt state.stale src with
      | Some old -> old
      | None -> loc)
    fresh

let vote_with locations clusters =
  let votes = Array.make clusters 0 in
  Array.iter
    (fun loc ->
      for c = 0 to clusters - 1 do
        if Bitset.mem loc c then votes.(c) <- votes.(c) + 1
      done)
    locations;
  let best = Array.fold_left max 0 votes in
  let candidates = ref [] in
  for c = clusters - 1 downto 0 do
    if votes.(c) = best then candidates := c :: !candidates
  done;
  !candidates

let least_loaded view candidates =
  match candidates with
  | [] -> invalid_arg "Op_parallel.least_loaded: no candidates"
  | first :: rest ->
      List.fold_left
        (fun best c ->
          if view.Policy.inflight c < view.Policy.inflight best then c else best)
        first rest

let make ?(stall_threshold = 36) ?(imbalance_limit = 200) () =
  let state = { cycle = -1; stale = Hashtbl.create 16 } in
  let decide view duop =
    if view.Policy.cycle () <> state.cycle then begin
      state.cycle <- view.Policy.cycle ();
      Hashtbl.reset state.stale
    end;
    let u = duop.Clusteer_trace.Dynuop.suop in
    let queue = Opcode.queue u.Uop.opcode in
    let clusters = view.Policy.clusters in
    let all = List.init clusters Fun.id in
    let locations = stale_locations state view duop in
    let preferred = least_loaded view (vote_with locations clusters) in
    let min_load =
      List.fold_left (fun acc c -> min acc (view.Policy.inflight c)) max_int all
    in
    let preferred =
      if view.Policy.inflight preferred - min_load > imbalance_limit then
        least_loaded view all
      else preferred
    in
    let decision =
      if view.Policy.queue_free preferred queue > 0 then
        Policy.Dispatch_to preferred
      else begin
        let alternatives =
          List.filter
            (fun c ->
              c <> preferred && view.Policy.queue_free c queue >= stall_threshold)
            all
        in
        match alternatives with
        | [] -> Policy.Stall
        | cs -> Policy.Dispatch_to (least_loaded view cs)
      end
    in
    (match decision with
    | Policy.Dispatch_to _ ->
        (* Record the overwritten value's pre-bundle location so later
           micro-ops of this bundle keep seeing the stale mapping. *)
        Option.iter
          (fun dst ->
            if not (Hashtbl.mem state.stale dst) then
              Hashtbl.add state.stale dst (view.Policy.reg_location dst))
          u.Uop.dst
    | Policy.Stall -> ());
    decision
  in
  {
    Policy.name = "op-parallel";
    decide;
    uses_dependence_check = true;
    uses_vote_unit = true;
  }
