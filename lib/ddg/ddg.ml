open Clusteer_isa

type edge = { src : int; dst : int; latency : int }

type t = {
  uops : Uop.t array;
  succs : edge list array;
  preds : edge list array;
}

let node_count t = Array.length t.uops

(* Compiler-visible latency: assume L1 hits for loads (3-cycle data
   cache, Table 2) on top of the 1-cycle address generation. *)
let l1_hit_latency = 3

let static_latency (u : Uop.t) =
  let base = Opcode.latency u.Uop.opcode in
  match u.Uop.opcode with
  | Opcode.Load -> base + l1_hit_latency
  | _ -> base

let build uops =
  let n = Array.length uops in
  let succs = Array.make n [] in
  let preds = Array.make n [] in
  let add_edge src dst =
    if src <> dst then begin
      let latency = static_latency uops.(src) in
      let e = { src; dst; latency } in
      (* Avoid duplicate edges between the same pair. *)
      if not (List.exists (fun e' -> e'.dst = dst) succs.(src)) then begin
        succs.(src) <- e :: succs.(src);
        preds.(dst) <- e :: preds.(dst)
      end
    end
  in
  (* Register true dependences: last writer of each register feeds
     subsequent readers until the next write. *)
  let last_writer : (Reg.t * int) list ref = ref [] in
  let writer_of r =
    Option.map snd (List.find_opt (fun (reg, _) -> Reg.equal reg r) !last_writer)
  in
  let set_writer r i =
    last_writer :=
      (r, i) :: List.filter (fun (reg, _) -> not (Reg.equal reg r)) !last_writer
  in
  (* Memory dependences: per stream, remember the last store and all
     loads since it. *)
  let last_store = Hashtbl.create 7 in
  for i = 0 to n - 1 do
    let u = uops.(i) in
    Array.iter
      (fun src -> match writer_of src with Some w -> add_edge w i | None -> ())
      u.Uop.srcs;
    if Uop.is_mem u then begin
      let stream = u.Uop.stream in
      (match u.Uop.opcode with
      | Opcode.Load -> (
          match Hashtbl.find_opt last_store stream with
          | Some s -> add_edge s i
          | None -> ())
      | Opcode.Store ->
          (match Hashtbl.find_opt last_store stream with
          | Some s -> add_edge s i
          | None -> ());
          Hashtbl.replace last_store stream i
      | _ -> ())
    end;
    Option.iter (fun d -> set_writer d i) u.Uop.dst
  done;
  Array.iteri (fun i l -> succs.(i) <- List.rev l) succs;
  Array.iteri (fun i l -> preds.(i) <- List.rev l) preds;
  { uops; succs; preds }

let of_region (r : Region.t) = build r.Region.uops

let iter_edges t f =
  Array.iter (fun es -> List.iter f es) t.succs

let edge_count t =
  Array.fold_left (fun acc es -> acc + List.length es) 0 t.succs

let roots t =
  let acc = ref [] in
  for i = node_count t - 1 downto 0 do
    if t.preds.(i) = [] then acc := i :: !acc
  done;
  !acc

let leaves t =
  let acc = ref [] in
  for i = node_count t - 1 downto 0 do
    if t.succs.(i) = [] then acc := i :: !acc
  done;
  !acc

let is_acyclic t =
  (* Edges produced by [build] always satisfy src < dst. *)
  Array.for_all (List.for_all (fun e -> e.src < e.dst)) t.succs

let topological_order t = Array.init (node_count t) Fun.id
