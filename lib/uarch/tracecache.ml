type t = {
  line_uops : int;
  sets : int;
  ways : int;
  tags : int array;  (* sets * ways, -1 invalid *)
  recency : int array;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~size_uops ~line_uops ~ways =
  if size_uops <= 0 || line_uops <= 0 || ways <= 0 then
    invalid_arg "Tracecache.create: sizes must be positive";
  let lines = size_uops / line_uops in
  if lines < ways then invalid_arg "Tracecache.create: fewer lines than ways";
  let sets = lines / ways in
  if sets land (sets - 1) <> 0 then
    invalid_arg "Tracecache.create: set count must be a power of two";
  {
    line_uops;
    sets;
    ways;
    tags = Array.make (sets * ways) (-1);
    recency = Array.make (sets * ways) 0;
    clock = 0;
    hits = 0;
    misses = 0;
  }

let lookup t ~static_id =
  if static_id < 0 then invalid_arg "Tracecache.lookup: negative id";
  let line = static_id / t.line_uops in
  let set = line land (t.sets - 1) in
  let tag = line lsr 0 in
  let base = set * t.ways in
  t.clock <- t.clock + 1;
  let rec find w = if w = t.ways then None else if t.tags.(base + w) = tag then Some w else find (w + 1) in
  match find 0 with
  | Some w ->
      t.hits <- t.hits + 1;
      t.recency.(base + w) <- t.clock;
      true
  | None ->
      t.misses <- t.misses + 1;
      let victim = ref 0 in
      for w = 1 to t.ways - 1 do
        if t.recency.(base + w) < t.recency.(base + !victim) then victim := w
      done;
      t.tags.(base + !victim) <- tag;
      t.recency.(base + !victim) <- t.clock;
      false

let hits t = t.hits
let misses t = t.misses

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.recency 0 (Array.length t.recency) 0;
  t.clock <- 0;
  reset_stats t
