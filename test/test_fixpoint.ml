(* Tests for the dataflow layer: qcheck properties of the worklist
   fixpoint solver (the fixpoint equations hold, facts are independent
   of worklist scheduling, fuel catches non-monotone transfers),
   pinned golden liveness/cost-model numbers for built-in and
   adversarial workloads, drift-check pass/fail unit cases, corrupted
   placements (CM006), and the META001 diagnostic-code cross-check
   against ARCHITECTURE.md's pass table. *)

open Clusteer_isa
module Analysis = Clusteer_analysis
module Fixpoint = Analysis.Fixpoint
module Liveness = Analysis.Liveness
module Cost_model = Analysis.Cost_model
module Dyn_check = Analysis.Dyn_check
module Meta_check = Analysis.Meta_check
module Checker = Analysis.Checker
module Topology = Clusteer_topo.Topology
module Synth = Clusteer_workloads.Synth
module Spec2000 = Clusteer_workloads.Spec2000

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let has code diags = List.exists (fun d -> d.Diag.code = code) diags

let assert_code what code diags =
  if not (has code diags) then
    Alcotest.failf "%s: expected %s among [%s]" what code
      (String.concat " " (List.map (fun d -> d.Diag.code) diags))

(* ---- solver properties --------------------------------------------- *)

(* A random CFG plus a random monotone transfer over int bitmasks:
   f_b(x) = (x land keep_b) lor gen_b is monotone in the subset order,
   so the solver must converge and the solution must satisfy the
   fixpoint equations for either direction. *)

type scenario = {
  nblocks : int;
  succs : int array array;
  gen : int array;
  keep : int array;
  seed_mask : int array;  (** -1 = no seed at this block *)
}

let gen_scenario =
  QCheck.Gen.(
    int_range 1 12 >>= fun nblocks ->
    let block = int_range 0 (nblocks - 1) in
    array_size (return nblocks) (array_size (int_range 0 3) block)
    >>= fun succs ->
    array_size (return nblocks) (int_bound 0xFFFF) >>= fun gen_ ->
    array_size (return nblocks) (int_bound 0xFFFF) >>= fun keep ->
    array_size (return nblocks)
      (frequency [ (3, return (-1)); (1, int_bound 0xFFFF) ])
    >>= fun seed_mask -> return { nblocks; succs; gen = gen_; keep; seed_mask })

let print_scenario s =
  Printf.sprintf "{nblocks=%d; succs=[%s]}" s.nblocks
    (String.concat "; "
       (Array.to_list
          (Array.map
             (fun a ->
               "[" ^ String.concat "," (Array.to_list (Array.map string_of_int a))
               ^ "]")
             s.succs)))

let arb_scenario = QCheck.make ~print:print_scenario gen_scenario

let lattice =
  { Fixpoint.bottom = 0; equal = Int.equal; join = (fun a b -> a lor b) }

let solve ?order s direction =
  let cfg = { Fixpoint.nblocks = s.nblocks; succs = (fun b -> s.succs.(b)) } in
  let transfer b x = x land s.keep.(b) lor s.gen.(b) in
  let seed b = if s.seed_mask.(b) < 0 then None else Some s.seed_mask.(b) in
  Fixpoint.solve ?order ~direction ~lattice ~cfg ~transfer ~seed ()

(* Flow predecessors: CFG predecessors when running forward, CFG
   successors when running backward. *)
let flow_preds s direction b =
  match direction with
  | Fixpoint.Backward -> Array.to_list s.succs.(b)
  | Fixpoint.Forward ->
      List.filter
        (fun p -> Array.exists (( = ) b) s.succs.(p))
        (List.init s.nblocks Fun.id)

let prop_fixpoint_equations =
  QCheck.Test.make ~name:"solution satisfies the fixpoint equations"
    ~count:300 arb_scenario (fun s ->
      List.for_all
        (fun direction ->
          let r = solve s direction in
          Array.for_all Fun.id
            (Array.init s.nblocks (fun b ->
                 let seeded = max 0 s.seed_mask.(b) in
                 let expect_in =
                   List.fold_left
                     (fun acc p -> acc lor r.Fixpoint.output.(p))
                     seeded (flow_preds s direction b)
                 in
                 r.Fixpoint.input.(b) = expect_in
                 && r.Fixpoint.output.(b)
                    = (r.Fixpoint.input.(b) land s.keep.(b)) lor s.gen.(b))))
        [ Fixpoint.Forward; Fixpoint.Backward ])

let prop_order_independent =
  QCheck.Test.make ~name:"facts do not depend on worklist order" ~count:300
    QCheck.(pair arb_scenario (int_bound 1_000_000))
    (fun (s, salt) ->
      (* A deterministic pseudo-random permutation of the block ids. *)
      let order = Array.init s.nblocks Fun.id in
      let st = ref (salt + 17) in
      for i = s.nblocks - 1 downto 1 do
        st := (!st * 1103515245) + 12345;
        let j = abs !st mod (i + 1) in
        let t = order.(i) in
        order.(i) <- order.(j);
        order.(j) <- t
      done;
      List.for_all
        (fun direction ->
          let a = solve s direction in
          let b = solve ~order s direction in
          a.Fixpoint.input = b.Fixpoint.input
          && a.Fixpoint.output = b.Fixpoint.output)
        [ Fixpoint.Forward; Fixpoint.Backward ])

let test_fuel_catches_divergence () =
  (* A transfer that keeps inventing new facts never converges; the
     fuel bound must turn that into Diverged, not a hang. *)
  let cfg = { Fixpoint.nblocks = 2; succs = (fun b -> [| 1 - b |]) } in
  let transfer _ x = x + 1 in
  check_bool "non-monotone transfer diverges" true
    (match
       Fixpoint.solve ~direction:Fixpoint.Forward ~lattice ~cfg ~transfer ()
     with
    | exception Fixpoint.Diverged _ -> true
    | _ -> false)

let test_bad_order_rejected () =
  let cfg = { Fixpoint.nblocks = 3; succs = (fun _ -> [||]) } in
  let transfer _ x = x in
  check_bool "non-permutation order rejected" true
    (match
       Fixpoint.solve ~order:[| 0; 0; 2 |] ~direction:Fixpoint.Forward
         ~lattice ~cfg ~transfer ()
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---- golden model numbers ------------------------------------------ *)

let p2p = Topology.p2p ~clusters:2 ()

let build name =
  match List.assoc_opt name Clusteer_workloads.Adversarial.all with
  | Some w -> w
  | None -> Synth.build (Spec2000.find name)

let model name policy =
  let w = build name in
  let program = w.Synth.program and likely = w.Synth.likely in
  let config =
    match Clusteer.Configuration.of_name policy with
    | Ok c -> c
    | Error (`Msg m) -> Alcotest.fail m
  in
  let annot, _ =
    Clusteer.Configuration.prepare config ~program ~likely ~clusters:2 ()
  in
  let m, errors =
    Cost_model.analyze ~program ~annot ~topology:p2p ~clusters:2 ()
  in
  check_int (name ^ "/" ^ policy ^ " clean") 0 (List.length errors);
  m

(* One golden row per (workload, policy): the crossing counts, the
   per-block bound rate and the static load vector pin the whole
   reaching-origins analysis — any change to the dataflow, the
   chain/leader layout or the initial VC table moves one of these. *)
let goldens =
  [
    ("164.gzip-1", "ob", (36, 60, 36, [| 72; 62 |]));
    ("164.gzip-1", "vc2", (39, 67, 39, [| 65; 69 |]));
    ("181.mcf", "ob", (37, 49, 37, [| 57; 60 |]));
    ("181.mcf", "vc2", (28, 46, 28, [| 69; 48 |]));
    ("171.swim", "ob", (60, 92, 60, [| 109; 112 |]));
    ("171.swim", "vc2", (52, 81, 52, [| 111; 110 |]));
    ("adv-fanout", "ob", (24, 24, 24, [| 16; 14 |]));
    ("adv-fanout", "vc2", (24, 24, 24, [| 19; 11 |]));
    ("adv-flip", "ob", (1, 1, 1, [| 6; 8 |]));
    ("adv-flip", "vc2", (0, 0, 0, [| 9; 5 |]));
    ("adv-storm", "ob", (0, 2, 0, [| 5; 5 |]));
    ("adv-storm", "vc2", (0, 2, 0, [| 5; 5 |]));
  ]

let test_golden_models () =
  List.iter
    (fun (name, policy, (must, may, hops, load)) ->
      let m = model name policy in
      let label what = Printf.sprintf "%s/%s %s" name policy what in
      check_int (label "must_cross") must m.Cost_model.must_cross;
      check_int (label "may_cross") may m.Cost_model.may_cross;
      check_int (label "pred_hops") hops m.Cost_model.pred_hops;
      (* On the 1-cycle point-to-point fabric every hop is a cycle. *)
      check_int (label "pred_latency") hops m.Cost_model.pred_latency;
      check_bool (label "load") true (m.Cost_model.load = load))
    goldens

let test_golden_liveness () =
  List.iter
    (fun (name, (peak_int, peak_fp, dead)) ->
      let w = build name in
      let liv = Liveness.analyze w.Synth.program in
      let label what = Printf.sprintf "%s %s" name what in
      check_int (label "peak INT") peak_int liv.Liveness.peak_int;
      check_int (label "peak FP") peak_fp liv.Liveness.peak_fp;
      check_int (label "dead defs") dead
        (List.length liv.Liveness.dead_defs))
    [
      ("164.gzip-1", (11, 3, 14));
      ("181.mcf", (15, 2, 7));
      ("171.swim", (16, 6, 31));
      ("adv-fanout", (5, 0, 24));
      ("adv-flip", (8, 1, 0));
      ("adv-storm", (9, 0, 0));
    ]

let test_liveness_diags_are_info () =
  (* Dead definitions and pressure summaries are reports, not failures:
     --strict must stay usable on every built-in workload. *)
  let w = build "171.swim" in
  let diags = Liveness.check w.Synth.program in
  assert_code "dead defs reported" "LIV001" diags;
  assert_code "pressure reported" "LIV002" diags;
  check_int "no errors" 0 (Diag.count Diag.Error diags);
  check_int "no warnings" 0 (Diag.count Diag.Warning diags);
  (* A budget below the measured peak must turn into the LIV003 warning. *)
  let tight = Liveness.check ~int_budget:8 w.Synth.program in
  assert_code "budget exceeded" "LIV003" tight;
  check_bool "LIV003 is a warning" true
    (List.exists
       (fun d -> d.Diag.code = "LIV003" && d.Diag.severity = Diag.Warning)
       tight)

let test_cost_check_defaults_clean () =
  List.iter
    (fun (name, policy, _) ->
      let diags = Cost_model.check (model name policy) in
      check_int
        (Printf.sprintf "%s/%s default thresholds clean" name policy)
        0
        (List.length
           (List.filter (fun d -> d.Diag.severity <> Diag.Info) diags)))
    goldens

let test_cost_thresholds_fire () =
  let m = model "164.gzip-1" "vc2" in
  assert_code "tight copy-rate threshold" "CM004"
    (Cost_model.check ~max_copy_rate:0.01 m);
  assert_code "tight imbalance threshold" "CM005"
    (Cost_model.check ~max_imbalance:1.0 m)

(* ---- corrupted placements ------------------------------------------ *)

let test_cm006_corrupt_static () =
  let w = build "164.gzip-1" in
  let program = w.Synth.program and likely = w.Synth.likely in
  let annot, _ =
    Clusteer.Configuration.prepare Clusteer.Configuration.Ob ~program ~likely
      ~clusters:2 ()
  in
  let bad = Annot.copy annot in
  bad.Annot.cluster_of.(3) <- 99;
  bad.Annot.cluster_of.(7) <- -5;
  let _, errors =
    Cost_model.analyze ~program ~annot:bad ~topology:p2p ~clusters:2 ()
  in
  (* One corrupt entry must not hide another. *)
  check_int "both corruptions reported" 2 (List.length errors);
  List.iter (fun d -> check_bool "code is CM006" true (d.Diag.code = "CM006"))
    errors

let test_cm006_corrupt_virtual () =
  let w = build "164.gzip-1" in
  let program = w.Synth.program and likely = w.Synth.likely in
  let annot, _ =
    Clusteer.Configuration.prepare
      (Clusteer.Configuration.Vc { virtual_clusters = 2 })
      ~program ~likely ~clusters:2 ()
  in
  let bad = Annot.copy annot in
  bad.Annot.vc_of.(0) <- 9;
  let _, errors =
    Cost_model.analyze ~program ~annot:bad ~topology:p2p ~clusters:2 ()
  in
  assert_code "vc out of range" "CM006" errors

(* ---- drift checking ------------------------------------------------ *)

let drift_model policy = model "164.gzip-1" policy

let ok_run m =
  {
    Dyn_check.dispatched = 1_000;
    copies_generated =
      min 400 (Cost_model.copy_bound m ~dispatched:1_000 ~remaps:0);
    remaps = 0;
    leader_decisions = 50;
    remap_hops_max = 0;
  }

let test_drift_within_bounds () =
  let m = drift_model "vc2" in
  let diags = Dyn_check.check_drift ~model:m (ok_run m) in
  assert_code "summary always present" "CM100" diags;
  check_int "no drift errors" 0 (Diag.count Diag.Error diags)

let test_drift_copy_violation () =
  let m = drift_model "vc2" in
  let run =
    {
      (ok_run m) with
      Dyn_check.copies_generated =
        Cost_model.copy_bound m ~dispatched:1_000 ~remaps:0 + 1;
    }
  in
  assert_code "copies beyond bound" "CM101" (Dyn_check.check_drift ~model:m run)

let test_drift_remap_violation () =
  let m = drift_model "vc2" in
  let run =
    { (ok_run m) with Dyn_check.remaps = 51; leader_decisions = 50 }
  in
  (* The remap term loosens the copy bound, so only CM102 may fire. *)
  assert_code "more remaps than leaders" "CM102"
    (Dyn_check.check_drift ~model:m run);
  (* The leader contract is a VC-scheme notion: a static placement has
     no leaders, so the same counters are not a violation. *)
  let m_static = drift_model "ob" in
  check_bool "CM102 is virtual-only" false
    (has "CM102"
       (Dyn_check.check_drift ~model:m_static
          { (ok_run m_static) with Dyn_check.remaps = 51; leader_decisions = 0 }))

let test_drift_hop_violation () =
  let m = drift_model "vc2" in
  let run = { (ok_run m) with Dyn_check.remap_hops_max = 5 } in
  (* p2p diameter is 1: a 5-hop remap cannot have happened there. *)
  assert_code "remap beyond the diameter" "CM103"
    (Dyn_check.check_drift ~model:m run)

(* ---- the meta check ------------------------------------------------ *)

let test_meta_duplicate () =
  assert_code "duplicate registration" "META001"
    (Meta_check.check [ ("a", [ "X001" ]); ("b", [ "X001" ]) ]);
  check_int "clean table" 0
    (List.length (Meta_check.check [ ("a", [ "X001" ]); ("b", [ "X002" ]) ]))

let test_meta_documented () =
  assert_code "undocumented code" "META001"
    (Meta_check.check ~documented:[ "X001" ]
       [ ("a", [ "X001"; "X002" ]) ]);
  assert_code "unregistered documented code" "META001"
    (Meta_check.check ~documented:[ "X001"; "X003" ] [ ("a", [ "X001" ]) ]);
  check_int "in-sync table" 0
    (List.length
       (Meta_check.check ~documented:[ "X001"; "X002" ]
          [ ("a", [ "X001" ]); ("b", [ "X002" ]) ]))

let test_registry_self_check () =
  check_int "the real registry has no duplicates" 0
    (List.length (Meta_check.check Checker.code_table))

(* Every code registered in Checker.code_table must appear in
   ARCHITECTURE.md's pass table (and vice versa): scan the document
   for code-shaped tokens — 2+ uppercase letters, exactly three
   digits, delimited — and hand both sets to the meta check. *)
let architecture_md =
  let candidates =
    [
      "../../../ARCHITECTURE.md";
      "../ARCHITECTURE.md";
      "ARCHITECTURE.md";
    ]
  in
  List.find_opt Sys.file_exists candidates

let scan_codes text =
  let n = String.length text in
  let is_upper c = c >= 'A' && c <= 'Z' in
  let is_digit c = c >= '0' && c <= '9' in
  let is_word c = is_upper c || is_digit c || (c >= 'a' && c <= 'z') in
  let codes = ref [] in
  let i = ref 0 in
  while !i < n do
    if is_upper text.[!i] && (!i = 0 || not (is_word text.[!i - 1])) then begin
      let j = ref !i in
      while !j < n && is_upper text.[!j] do
        incr j
      done;
      let letters = !j - !i in
      let k = ref !j in
      while !k < n && is_digit text.[!k] do
        incr k
      done;
      let digits = !k - !j in
      if
        letters >= 2 && digits = 3
        && (!k = n || not (is_word text.[!k]))
      then codes := String.sub text !i (!k - !i) :: !codes;
      i := !k + 1
    end
    else incr i
  done;
  List.sort_uniq compare !codes

let test_doc_table_in_sync () =
  match architecture_md with
  | None -> Alcotest.skip ()
  | Some path ->
      let ic = open_in path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let documented = scan_codes text in
      check_bool "scanner found the table" true (List.length documented > 20);
      match Meta_check.check ~documented Checker.code_table with
      | [] -> ()
      | d :: _ ->
          Alcotest.failf "ARCHITECTURE.md out of sync: %s"
            (Format.asprintf "%a" Diag.pp d)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "clusteer_fixpoint"
    [
      ( "solver",
        [
          qc prop_fixpoint_equations;
          qc prop_order_independent;
          Alcotest.test_case "fuel catches divergence" `Quick
            test_fuel_catches_divergence;
          Alcotest.test_case "bad order rejected" `Quick
            test_bad_order_rejected;
        ] );
      ( "goldens",
        [
          Alcotest.test_case "cost models" `Quick test_golden_models;
          Alcotest.test_case "liveness" `Quick test_golden_liveness;
          Alcotest.test_case "liveness severities" `Quick
            test_liveness_diags_are_info;
          Alcotest.test_case "default thresholds clean" `Quick
            test_cost_check_defaults_clean;
          Alcotest.test_case "tight thresholds fire" `Quick
            test_cost_thresholds_fire;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "static CM006" `Quick test_cm006_corrupt_static;
          Alcotest.test_case "virtual CM006" `Quick test_cm006_corrupt_virtual;
        ] );
      ( "drift",
        [
          Alcotest.test_case "within bounds" `Quick test_drift_within_bounds;
          Alcotest.test_case "copy violation" `Quick
            test_drift_copy_violation;
          Alcotest.test_case "remap violation" `Quick
            test_drift_remap_violation;
          Alcotest.test_case "hop violation" `Quick test_drift_hop_violation;
        ] );
      ( "meta",
        [
          Alcotest.test_case "duplicate codes" `Quick test_meta_duplicate;
          Alcotest.test_case "documented set" `Quick test_meta_documented;
          Alcotest.test_case "registry self-check" `Quick
            test_registry_self_check;
          Alcotest.test_case "doc table in sync" `Quick
            test_doc_table_in_sync;
        ] );
    ]
