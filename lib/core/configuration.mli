(** The five steering configurations of paper Table 3 (plus the §2.1
    parallel-steering strawman), each bundling its compile-time pass
    and its runtime policy.

    {!prepare} is the one-call entry point: given a program (and the
    profile feedback its workload provides), it runs whatever compiler
    pass the configuration needs and returns the annotation together
    with a fresh runtime {!Clusteer_uarch.Policy.t} for a machine with
    [clusters] physical clusters. *)

open Clusteer_isa

type t =
  | Op  (** occupancy-aware hardware-only steering [15] — the baseline *)
  | One_cluster  (** every micro-op to cluster 0 *)
  | Ob  (** static-placement dynamic-issue (SPDI) operation-based [19] *)
  | Rhop  (** region-based hierarchical operation partitioning [8] *)
  | Vc of { virtual_clusters : int }
      (** the paper's hybrid: software VC partitioning + hardware
          mapping. [Vc {virtual_clusters = 2}] on a 4-cluster machine
          is the paper's VC(2→4). *)
  | Op_parallel  (** §2.1 ablation: OP with stale intra-bundle locations *)
  | Mod_n of { n : int }
      (** extension beyond Table 3: the MOD_N baseline of [3] *)
  | Dep  (** extension beyond Table 3: dependence-based steering [5],
             i.e. OP without stall-over-steer *)
  | Crit
      (** extension beyond Table 3: criticality-aware steering after
          [24] — critical micro-ops chase operands, the rest balance *)
  | Thermal
      (** extension beyond Table 3: activity-migration steering after
          [7] — balance in-flight load against a decaying per-cluster
          heat proxy *)

val name : t -> string
(** Short identifier, e.g. ["vc2"]. *)

val of_name : string -> (t, [ `Msg of string ]) result
(** Inverse of {!name} (case-insensitive; also accepts ["one"] for
    ["one-cluster"]). The CLI's [--policy] parser and the service
    layer's request decoder both go through this, so the wire name of
    a policy is the same everywhere. *)

val description : t -> string
(** Table 3 description. *)

val table3 : clusters:int -> t list
(** The configurations evaluated against each other for a machine of
    the given size (2 → Fig. 5 set, 4 → Fig. 7 set). *)

val prepare :
  t ->
  program:Program.t ->
  likely:(int -> int option) ->
  clusters:int ->
  ?region_uops:int ->
  ?annot:Annot.t ->
  ?registry:Clusteer_obs.Counters.registry ->
  unit ->
  Annot.t * Clusteer_uarch.Policy.t
(** [registry] is where the policy registers its introspection
    counters (default {!Clusteer_obs.Counters.default}). The parallel
    harness passes a private registry per shard so concurrent runs
    never share mutable counter state, then merges the shards back
    deterministically.

    [annot] supplies a previously compiled annotation and skips the
    compiler pass. The pass is deterministic in (configuration,
    program, likely, clusters, region_uops), so the harness caches the
    annotation per (profile, configuration) within a domain and passes
    it back here; the returned policy is always fresh (policies are
    stateful). Must only be given an annotation produced by {!prepare}
    on the same configuration and inputs. *)
