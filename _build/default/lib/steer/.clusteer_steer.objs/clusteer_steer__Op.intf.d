lib/steer/op.mli: Clusteer_uarch
