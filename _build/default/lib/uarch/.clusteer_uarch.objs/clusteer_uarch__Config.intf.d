lib/uarch/config.mli:
