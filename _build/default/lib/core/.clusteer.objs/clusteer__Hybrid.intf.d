lib/core/hybrid.mli: Annot Clusteer_isa Clusteer_trace Clusteer_uarch Program
