lib/compiler/estimate.ml: Array Clusteer_ddg Ddg Float List
