lib/ddg/region.ml: Array Block Clusteer_isa List Program Uop
