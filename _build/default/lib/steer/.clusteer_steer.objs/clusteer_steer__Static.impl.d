lib/steer/static.ml: Annot Array Clusteer_isa Clusteer_trace Clusteer_uarch Dynuop Policy
