lib/trace/mem_model.mli:
