(* The auto-tuner: parameter-space encoding, search drivers,
   champion/challenger studies, and the csteer tune CLI. *)

module Param_space = Clusteer_tune.Param_space
module Search = Clusteer_tune.Search
module Study = Clusteer_tune.Study
module Json = Clusteer_obs.Json
module Spec2000 = Clusteer_workloads.Spec2000

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let vc_space =
  match Param_space.find "vc" with Ok s -> s | Error (`Msg m) -> failwith m

let op_space =
  match Param_space.find "op" with Ok s -> s | Error (`Msg m) -> failwith m

(* ---- param space ------------------------------------------------- *)

let test_space_shape () =
  check_int "vc dims" 5 (Array.length (Param_space.dims vc_space));
  check_int "op dims" 2 (Array.length (Param_space.dims op_space));
  let card =
    Array.fold_left ( * ) 1 (Param_space.dims vc_space)
  in
  check_int "vc cardinality" card (Param_space.cardinality vc_space);
  Alcotest.check_raises "unknown space is an error" (Failure "unknown")
    (fun () ->
      match Param_space.find "nope" with
      | Error (`Msg _) -> raise (Failure "unknown")
      | Ok _ -> ())

let test_default_is_paper () =
  (* The default candidate must materialize to exactly the paper's
     constants — the whole study format relies on the incumbent-free
     champion being the reproduction baseline. *)
  let config, params =
    Param_space.materialize vc_space (Param_space.default_candidate vc_space)
  in
  check_string "default config" "vc2" (Clusteer.Configuration.name config);
  check_bool "default params" true
    (params = Clusteer.Configuration.default_params);
  let config, params =
    Param_space.materialize op_space (Param_space.default_candidate op_space)
  in
  check_string "op default config" "op" (Clusteer.Configuration.name config);
  check_bool "op default params" true
    (params = Clusteer.Configuration.default_params)

let test_candidate_roundtrip () =
  (* encode -> decode is the identity for every candidate of the op
     space and a lexicographic sample of the vc space. *)
  let roundtrip space candidate =
    let json = Param_space.candidate_to_json space candidate in
    match Param_space.candidate_of_json space json with
    | Ok decoded -> check_bool "roundtrip" true (decoded = candidate)
    | Error m -> Alcotest.failf "decode failed: %s" m
  in
  for i = 0 to Param_space.cardinality op_space - 1 do
    roundtrip op_space (Param_space.nth op_space i)
  done;
  let card = Param_space.cardinality vc_space in
  let step = max 1 (card / 50) in
  let i = ref 0 in
  while !i < card do
    roundtrip vc_space (Param_space.nth vc_space !i);
    i := !i + step
  done;
  (* Round-trip survives the string encoder too (floats included). *)
  let c = Param_space.default_candidate vc_space in
  let s = Json.to_string (Param_space.candidate_to_json vc_space c) in
  (match Json.of_string s with
  | Ok json -> (
      match Param_space.candidate_of_json vc_space json with
      | Ok decoded -> check_bool "string roundtrip" true (decoded = c)
      | Error m -> Alcotest.fail m)
  | Error m -> Alcotest.fail m);
  (* Decoding rejects out-of-range and wrong-arity candidates. *)
  let bad =
    Json.Obj [ ("indices", Json.List [ Json.Int 0; Json.Int 99 ]) ]
  in
  check_bool "wrong arity rejected" true
    (Result.is_error (Param_space.candidate_of_json vc_space bad));
  let bad2 =
    Json.Obj
      [
        ( "indices",
          Json.List
            [ Json.Int 0; Json.Int 99; Json.Int 0; Json.Int 0; Json.Int 0 ] );
      ]
  in
  check_bool "out of range rejected" true
    (Result.is_error (Param_space.candidate_of_json vc_space bad2))

let test_nth_golden () =
  (* Lexicographic enumeration, first parameter most significant:
     candidate 0 is all-zeros, candidate 1 bumps the last parameter. *)
  check_bool "nth 0" true
    (Param_space.nth op_space 0 = [| 0; 0 |]);
  check_bool "nth 1" true (Param_space.nth op_space 1 = [| 0; 1 |]);
  let dims = Param_space.dims op_space in
  check_bool "nth last" true
    (Param_space.nth op_space (Param_space.cardinality op_space - 1)
    = [| dims.(0) - 1; dims.(1) - 1 |]);
  (* nth is a bijection onto the space. *)
  let seen = Hashtbl.create 64 in
  for i = 0 to Param_space.cardinality op_space - 1 do
    Hashtbl.replace seen (Param_space.nth op_space i) ()
  done;
  check_int "nth covers the space" (Param_space.cardinality op_space)
    (Hashtbl.length seen)

(* ---- search drivers ---------------------------------------------- *)

(* A synthetic, deterministic objective: no simulation, so driver
   behaviour is tested in isolation. *)
let toy_score candidate =
  Array.to_list candidate
  |> List.mapi (fun k idx -> float_of_int ((k + 1) * idx))
  |> List.fold_left ( +. ) 0.0

let test_grid_truncates_and_dedups () =
  let seen = ref [] in
  let out =
    Search.run op_space ~algo:Search.Grid ~seed:1 ~max_evals:7
      ~eval:(fun c ->
        seen := c :: !seen;
        toy_score c)
  in
  check_int "budget respected" 7 (List.length out);
  check_int "eval called once per candidate" 7 (List.length !seen);
  let distinct = List.sort_uniq compare (List.map fst out) in
  check_int "no duplicates" 7 (List.length distinct);
  (* Grid order is Param_space.nth order. *)
  List.iteri
    (fun i (c, _) ->
      check_bool "lexicographic" true (c = Param_space.nth op_space i))
    out;
  (* Budget above cardinality clamps to the space. *)
  let out =
    Search.run op_space ~algo:Search.Grid ~seed:1 ~max_evals:10_000
      ~eval:toy_score
  in
  check_int "full grid" (Param_space.cardinality op_space) (List.length out)

let test_random_deterministic () =
  let run seed =
    Search.run vc_space ~algo:Search.Random ~seed ~max_evals:20
      ~eval:toy_score
  in
  check_bool "same seed, same sequence" true (run 42 = run 42);
  check_bool "different seed, different sequence" true (run 42 <> run 43);
  let out = run 7 in
  check_int "budget" 20 (List.length out);
  check_int "distinct" 20
    (List.length (List.sort_uniq compare (List.map fst out)));
  check_bool "default candidate evaluated first" true
    (fst (List.hd out) = Param_space.default_candidate vc_space)

let test_random_exhausts_tiny_space () =
  (* Budget >= cardinality must still visit every candidate exactly
     once (rejection sampling falls back to a scan). *)
  let out =
    Search.run op_space ~algo:Search.Random ~seed:5 ~max_evals:1_000
      ~eval:toy_score
  in
  check_int "exhausts the space" (Param_space.cardinality op_space)
    (List.length out);
  check_int "each candidate once" (Param_space.cardinality op_space)
    (List.length (List.sort_uniq compare (List.map fst out)))

let test_hill_climbs () =
  (* toy_score is separable and monotone in every index, so ample-
     budget coordinate descent must reach the all-max corner. *)
  let out =
    Search.run op_space ~algo:Search.Hill ~seed:3 ~max_evals:1_000
      ~eval:toy_score
  in
  let best =
    List.fold_left
      (fun (bc, bs) (c, s) -> if s > bs then (c, s) else (bc, bs))
      (List.hd out) (List.tl out)
  in
  let dims = Param_space.dims op_space in
  check_bool "found the optimum" true
    (fst best = [| dims.(0) - 1; dims.(1) - 1 |]);
  check_bool "hill is deterministic" true
    (Search.run op_space ~algo:Search.Hill ~seed:3 ~max_evals:40
       ~eval:toy_score
    = Search.run op_space ~algo:Search.Hill ~seed:3 ~max_evals:40
        ~eval:toy_score)

(* ---- studies ----------------------------------------------------- *)

let tiny_workloads = [ Spec2000.find "gzip-1"; Spec2000.find "vpr-1" ]

let run_tiny ?incumbent ?(algo = Search.Random) ?(seed = 11) () =
  Study.run ~space:vc_space ~algo ~seed ~max_evals:4
    ~workloads:tiny_workloads ~clusters:2 ~uops:2_000 ?incumbent
    ~epsilon_pct:0.5 ~tie_seeds:1 ()

let test_study_deterministic () =
  (* Same seed and budget => same champion and bit-identical study
     JSON — the acceptance criterion of the tuner. *)
  let a = run_tiny () and b = run_tiny () in
  check_string "bit-identical JSON"
    (Json.to_string (Study.to_json a))
    (Json.to_string (Study.to_json b));
  check_bool "same challenger" true
    (a.Study.challenger.Study.candidate = b.Study.challenger.Study.candidate)

let test_study_shape () =
  let s = run_tiny () in
  check_int "evals" 4 (List.length s.Study.evals);
  check_int "ab rows = workloads" 2 (List.length s.Study.ab.Study.rows);
  check_int "verdicts partition the rows" 2
    (s.Study.ab.Study.wins + s.Study.ab.Study.losses + s.Study.ab.Study.ties);
  check_bool "challenger is the best eval" true
    (List.for_all
       (fun (e : Study.eval) ->
         e.Study.score <= s.Study.challenger.Study.score)
       s.Study.evals);
  check_bool "incumbent-free champion is the paper default" true
    (s.Study.champion.Study.candidate
    = Param_space.default_candidate vc_space);
  check_bool "no incumbent loaded" false s.Study.incumbent_loaded;
  (* The study JSON is a pure function of the run: no timestamps. *)
  let text = Json.to_string (Study.to_json s) in
  check_bool "no wall-clock fields" false
    (let contains n h =
       let nl = String.length n in
       let rec go i =
         i + nl <= String.length h
         && (String.sub h i nl = n || go (i + 1))
       in
       go 0
     in
     contains "started" text || contains "wall_s" text)

let test_study_roundtrip () =
  let s = run_tiny () in
  let json = Study.to_json s in
  match Study.of_json json with
  | Error m -> Alcotest.fail m
  | Ok s' ->
      check_string "of_json . to_json = id"
        (Json.to_string json)
        (Json.to_string (Study.to_json s'))

let test_study_incumbent_and_champion_artifact () =
  let s = run_tiny () in
  let dir = Filename.temp_file "tune_test" "" in
  Sys.remove dir;
  let champion_file = Filename.concat dir "champion.json" in
  Study.save_champion ~file:champion_file s;
  (match Study.load_champion ~space:vc_space ~file:champion_file with
  | Ok (Some c) ->
      check_bool "artifact stores the winner" true
        (c = (Study.winner s).Study.candidate)
  | Ok None -> Alcotest.fail "champion artifact missing"
  | Error m -> Alcotest.fail m);
  (* A missing file is a clean "no incumbent". *)
  (match
     Study.load_champion ~space:vc_space
       ~file:(Filename.concat dir "nope.json")
   with
  | Ok None -> ()
  | _ -> Alcotest.fail "missing artifact should be Ok None");
  (* A champion from another space is rejected, not misapplied. *)
  (match Study.load_champion ~space:op_space ~file:champion_file with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "cross-space champion must be rejected");
  (* Defending the incumbent: its eval is the study's champion. *)
  let incumbent = (Study.winner s).Study.candidate in
  let s2 = run_tiny ~incumbent () in
  check_bool "incumbent defends" true
    (s2.Study.champion.Study.candidate = incumbent);
  check_bool "incumbent flag" true s2.Study.incumbent_loaded;
  (* Study save/load round-trips through disk. *)
  let study_file = Filename.concat dir "study.json" in
  Study.save ~file:study_file s2;
  (match Study.load ~file:study_file with
  | Ok loaded ->
      check_string "disk roundtrip"
        (Json.to_string (Study.to_json s2))
        (Json.to_string (Study.to_json loaded))
  | Error m -> Alcotest.fail m);
  Sys.remove champion_file;
  Sys.remove study_file;
  Unix.rmdir dir

(* ---- CLI e2e ----------------------------------------------------- *)

let exe =
  let candidates =
    [ "../bin/csteer.exe"; "_build/default/bin/csteer.exe"; "bin/csteer.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> "../bin/csteer.exe"

let run_capture args =
  let tmp = Filename.temp_file "csteer_tune" ".txt" in
  let cmd =
    Printf.sprintf "%s %s > %s 2>/dev/null" (Filename.quote exe) args
      (Filename.quote tmp)
  in
  let code = Sys.command cmd in
  let ic = open_in tmp in
  let len = in_channel_length ic in
  let out = really_input_string ic len in
  close_in ic;
  Sys.remove tmp;
  (code, out)

let contains haystack needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length haystack
    && (String.sub haystack i n = needle || go (i + 1))
  in
  go 0

let test_cli_tune_cycle () =
  let dir = Filename.temp_file "tune_cli" "" in
  Sys.remove dir;
  let base =
    Printf.sprintf
      "tune run --space vc --search grid --max-evals 2 -w gzip-1 -n 1500 \
       --out %s"
      (Filename.quote dir)
  in
  let code, out = run_capture base in
  check_int "tune run exits 0" 0 code;
  check_bool "prints a verdict" true
    (contains out "challenger" || contains out "champion");
  check_bool "study written" true
    (Sys.file_exists (Filename.concat dir "study.json"));
  (* report --json parses and carries the study shape. *)
  let code, out =
    run_capture
      (Printf.sprintf "tune report --study %s --json"
         (Filename.quote (Filename.concat dir "study.json")))
  in
  check_int "report exits 0" 0 code;
  (match Json.of_string (String.trim out) with
  | Ok json ->
      check_bool "is a tune study" true
        (Json.member "kind" json = Some (Json.Str "tune_study"))
  | Error m -> Alcotest.failf "report --json is not JSON: %s" m);
  (* promote writes the champion artifact. *)
  let code, _ =
    run_capture
      (Printf.sprintf "tune promote --study %s"
         (Filename.quote (Filename.concat dir "study.json")))
  in
  check_int "promote exits 0" 0 code;
  check_bool "champion written" true
    (Sys.file_exists (Filename.concat dir "champion.json"));
  (* Same seed + budget => bit-identical report JSON (CLI level). *)
  let code, out1 =
    run_capture
      (Printf.sprintf
         "tune run --space vc --search random --seed 9 --max-evals 2 -w \
          gzip-1 -n 1500 --out %s --json"
         (Filename.quote dir))
  in
  check_int "json run exits 0" 0 code;
  let _, out2 =
    run_capture
      (Printf.sprintf
         "tune run --space vc --search random --seed 9 --max-evals 2 -w \
          gzip-1 -n 1500 --out %s --json"
         (Filename.quote dir))
  in
  check_string "bit-identical CLI JSON" out1 out2;
  (* Usage errors exit 2-ish (cmdliner: 124 for parse errors); runtime
     failures exit 1. *)
  let code, _ = run_capture "tune run --search bogus" in
  check_bool "usage error is non-zero" true (code <> 0);
  let code, _ = run_capture "tune report --study /nonexistent/study.json" in
  check_int "missing study exits 1" 1 code;
  List.iter
    (fun f ->
      let f = Filename.concat dir f in
      if Sys.file_exists f then Sys.remove f)
    [ "study.json"; "champion.json" ];
  Unix.rmdir dir

let () =
  Alcotest.run "tune"
    [
      ( "param_space",
        [
          Alcotest.test_case "space shape" `Quick test_space_shape;
          Alcotest.test_case "default is the paper" `Quick
            test_default_is_paper;
          Alcotest.test_case "candidate roundtrip" `Quick
            test_candidate_roundtrip;
          Alcotest.test_case "nth golden" `Quick test_nth_golden;
        ] );
      ( "search",
        [
          Alcotest.test_case "grid truncates and dedups" `Quick
            test_grid_truncates_and_dedups;
          Alcotest.test_case "random is seed-deterministic" `Quick
            test_random_deterministic;
          Alcotest.test_case "random exhausts tiny spaces" `Quick
            test_random_exhausts_tiny_space;
          Alcotest.test_case "hill climbs to the optimum" `Quick
            test_hill_climbs;
        ] );
      ( "study",
        [
          Alcotest.test_case "deterministic" `Quick test_study_deterministic;
          Alcotest.test_case "shape" `Quick test_study_shape;
          Alcotest.test_case "json roundtrip" `Quick test_study_roundtrip;
          Alcotest.test_case "incumbent and champion artifact" `Quick
            test_study_incumbent_and_champion_artifact;
        ] );
      ( "cli",
        [ Alcotest.test_case "tune cycle e2e" `Quick test_cli_tune_cycle ] );
    ]
