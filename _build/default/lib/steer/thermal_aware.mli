(** Thermal-aware steering (after the paper's [7], Chaparro et al.):
    activity migration by steering.

    The policy keeps a per-cluster exponentially-decaying activity
    accumulator (a proxy for temperature the hardware could implement
    with one counter per cluster) and steers each micro-op to the
    cluster minimizing [inflight + weight * heat]. Over short windows
    it behaves like load balancing; over long windows the decay makes
    it rotate work away from persistently hot clusters — trading
    communication for a lower thermal spread, which
    {!Clusteer_uarch.Thermal.estimate} can quantify. *)

val make :
  ?decay:float -> ?weight:float -> unit -> Clusteer_uarch.Policy.t
(** [decay] (default 0.999) is the per-decision retention of the heat
    accumulator; [weight] (default 0.5) scales heat against the
    in-flight count. *)
