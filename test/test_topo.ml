(* The interconnect topology subsystem: metric axioms of the distance
   function, JSON round trips, the link-occupancy fabric, the
   adversarial scenario generator's static validity, parallel-harness
   determinism on non-uniform fabrics, and the pinned pre-topology
   goldens (default p2p must stay bit-identical to the seed). *)

module Topology = Clusteer_topo.Topology
module Fabric = Clusteer_topo.Fabric
module Adversarial = Clusteer_workloads.Adversarial
module Synth = Clusteer_workloads.Synth
module Spec2000 = Clusteer_workloads.Spec2000
module Profile = Clusteer_workloads.Profile
module Runner = Clusteer_harness.Runner
module Config = Clusteer_uarch.Config
module Stats = Clusteer_uarch.Stats
module Checker = Clusteer_analysis.Checker
module Diag = Clusteer_isa.Diag

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- generators ---------------------------------------------------- *)

let gen_topology =
  QCheck.Gen.(
    int_range 0 4 >>= fun kind ->
    match kind with
    | 0 -> map (fun c -> Topology.p2p ~clusters:(1 + c) ()) (int_bound 11)
    | 1 -> map (fun c -> Topology.bus ~clusters:(1 + c) ()) (int_bound 11)
    | 2 ->
        map
          (fun (c, l) -> Topology.ring ~link_latency:(1 + l) ~clusters:(1 + c) ())
          (pair (int_bound 11) (int_bound 2))
    | 3 ->
        map
          (fun (cols, rows) -> Topology.mesh ~cols:(1 + cols) ~rows:(1 + rows) ())
          (pair (int_bound 3) (int_bound 3))
    | _ ->
        map
          (fun (g, s, ul) ->
            Topology.hier ~uplink_latency:(1 + ul) ~groups:(1 + g)
              ~group_size:(1 + s) ())
          (triple (int_bound 3) (int_bound 3) (int_bound 5)))

let arb_topology =
  QCheck.make ~print:Topology.describe gen_topology

(* ---- distance is a metric ------------------------------------------ *)

let prop_distance_metric =
  QCheck.Test.make ~name:"distance is a metric" ~count:200 arb_topology
    (fun t ->
      let n = t.Topology.clusters in
      let d = Topology.distance t in
      let ok = ref true in
      for i = 0 to n - 1 do
        if d i i <> 0 then ok := false;
        for j = 0 to n - 1 do
          if i <> j && d i j <= 0 then ok := false;
          if d i j <> d j i then ok := false;
          if Topology.latency t i j <> Topology.latency t j i then ok := false;
          for k = 0 to n - 1 do
            if d i k > d i j + d j k then ok := false
          done
        done
      done;
      !ok)

let prop_derived_queries_agree =
  QCheck.Test.make ~name:"matrix/diameter/mean agree with distance" ~count:100
    arb_topology (fun t ->
      let n = t.Topology.clusters in
      let m = Topology.distance_matrix t in
      let max_d = ref 0 and sum = ref 0 and pairs = ref 0 in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if m.(i).(j) <> Topology.distance t i j then
            QCheck.Test.fail_report "matrix disagrees with distance";
          if i <> j then begin
            max_d := max !max_d m.(i).(j);
            sum := !sum + m.(i).(j);
            incr pairs
          end
        done
      done;
      Topology.diameter t = !max_d
      && Float.abs
           (Topology.mean_distance t
           -. (if !pairs = 0 then 0.0
               else float_of_int !sum /. float_of_int !pairs))
         < 1e-9)

let prop_json_roundtrip =
  QCheck.Test.make ~name:"to_json/of_json round trip" ~count:200 arb_topology
    (fun t ->
      match Topology.of_json (Topology.to_json t) with
      | Ok t' -> Topology.equal t t'
      | Error m -> QCheck.Test.fail_report m)

let prop_name_roundtrip =
  QCheck.Test.make ~name:"of_name inverts name (shape and size)" ~count:200
    arb_topology (fun t ->
      match
        Topology.of_name ~clusters:t.Topology.clusters (Topology.name t)
      with
      | Ok t' ->
          Topology.name t' = Topology.name t
          && t'.Topology.clusters = t.Topology.clusters
          && t'.Topology.kind = t.Topology.kind
      | Error m -> QCheck.Test.fail_report m)

(* ---- fabric -------------------------------------------------------- *)

let test_fabric_p2p_matches_seed_link_model () =
  (* p2p: one slot per directed pair, latency 1 — the seed's
     link_free matrix exactly. *)
  let f = Fabric.create (Topology.p2p ~clusters:2 ()) in
  check_int "first transfer" 1 (Fabric.try_transfer f ~now:0 ~from:0 ~to_:1);
  check_int "same-cycle same link refused" (-1)
    (Fabric.try_transfer f ~now:0 ~from:0 ~to_:1);
  check_int "reverse direction is a distinct link" 1
    (Fabric.try_transfer f ~now:0 ~from:1 ~to_:0);
  check_int "free again next cycle" 1
    (Fabric.try_transfer f ~now:1 ~from:0 ~to_:1);
  Fabric.reset f;
  check_int "reset frees everything" 1
    (Fabric.try_transfer f ~now:0 ~from:0 ~to_:1)

let test_fabric_bus_serializes () =
  let f = Fabric.create (Topology.bus ~clusters:4 ()) in
  check_int "first transfer" 1 (Fabric.try_transfer f ~now:0 ~from:0 ~to_:1);
  check_int "any other pair blocked the same cycle" (-1)
    (Fabric.try_transfer f ~now:0 ~from:2 ~to_:3)

let test_fabric_hier_uplink_bandwidth () =
  let topo =
    Topology.hier ~uplink_latency:4 ~uplink_bandwidth:1 ~groups:2 ~group_size:2
      ()
  in
  let f = Fabric.create topo in
  let lat = Fabric.try_transfer f ~now:0 ~from:0 ~to_:2 in
  check_int "cross-group latency = 2*link + uplink" 6 lat;
  check_int "second cross-group transfer blocked (1 uplink channel)" (-1)
    (Fabric.try_transfer f ~now:0 ~from:1 ~to_:3);
  check_int "in-group transfer still free" 1
    (Fabric.try_transfer f ~now:0 ~from:0 ~to_:1)

let prop_fabric_latency_consistent =
  (* Whatever the shape, a granted transfer on an idle fabric costs
     exactly Topology.latency. *)
  QCheck.Test.make ~name:"idle-fabric transfer cost = Topology.latency"
    ~count:100 arb_topology (fun t ->
      let n = t.Topology.clusters in
      QCheck.assume (n > 1);
      let f = Fabric.create t in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if i <> j then begin
            Fabric.reset f;
            if Fabric.try_transfer f ~now:0 ~from:i ~to_:j
               <> Topology.latency t i j
            then ok := false
          end
        done
      done;
      !ok)

(* ---- adversarial generator ----------------------------------------- *)

let prop_adversarial_shapes_valid =
  QCheck.Test.make ~name:"of_seed always draws a valid shape" ~count:500
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      match Adversarial.validate (Adversarial.of_seed seed) with
      | Ok () -> true
      | Error m -> QCheck.Test.fail_report m)

let prop_adversarial_pass_checker =
  (* Every generated program passes the static verifier (no errors, no
     warnings) under both a software and the hybrid configuration. *)
  QCheck.Test.make ~name:"generated scenarios pass the checker" ~count:20
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let shape = Adversarial.of_seed seed in
      let w = Adversarial.synth shape in
      let machine = Config.default ~clusters:4 in
      List.for_all
        (fun config ->
          let annot, _ =
            Clusteer.Configuration.prepare config ~program:w.Synth.program
              ~likely:w.Synth.likely ~clusters:4 ()
          in
          let target =
            Checker.target ~program:w.Synth.program ~likely:w.Synth.likely
              ~annot ~config:machine ()
          in
          let diags = Checker.run target in
          Diag.count Diag.Error diags = 0 && Diag.count Diag.Warning diags = 0)
        [
          Clusteer.Configuration.Ob;
          Clusteer.Configuration.Vc { virtual_clusters = 2 };
        ])

let test_adversarial_deterministic () =
  (* Same shape, same program: the synthesized traces replay
     identically, so two runs produce identical statistics. *)
  let machine =
    { (Config.default ~clusters:4) with
      Config.topology = Topology.mesh ~cols:2 ~rows:2 ();
    }
  in
  let configs = [ Clusteer.Configuration.Vc { virtual_clusters = 2 } ] in
  let run () =
    List.map
      (fun (_, w) -> Runner.run_workload ~machine ~configs ~uops:2_000 w)
      Adversarial.all
  in
  check_bool "two runs bit-identical" true (run () = run ())

(* ---- parallel determinism on non-uniform fabrics ------------------- *)

let test_domains_identical_with_topology () =
  let profiles = [ Spec2000.find "mcf"; Spec2000.find "gzip-1" ] in
  let configs =
    [
      Clusteer.Configuration.Op;
      Clusteer.Configuration.Vc { virtual_clusters = 2 };
    ]
  in
  let sweep machine domains =
    List.map
      (fun (r : Runner.point_result) -> r.Runner.runs)
      (Runner.run_suite ~domains ~machine ~configs ~uops:2_000 profiles)
  in
  List.iter
    (fun topo ->
      let machine =
        {
          (Config.default ~clusters:topo.Topology.clusters) with
          Config.topology = topo;
        }
      in
      check_bool
        (Printf.sprintf "%s: domains 1 = domains 4" (Topology.name topo))
        true
        (sweep machine 1 = sweep machine 4))
    [
      Topology.ring ~clusters:4 ();
      Topology.mesh ~cols:2 ~rows:2 ();
      Topology.hier ~groups:2 ~group_size:2 ();
    ]

(* ---- pinned seed goldens ------------------------------------------- *)

(* The per-workload stats documents captured from the pre-topology
   seed build: `csteer simulate --json` under the default p2p machine
   must stay byte-identical. Any diff here means the topology layer
   leaked into the baseline. *)

let exe =
  let candidates =
    [ "../bin/csteer.exe"; "_build/default/bin/csteer.exe"; "bin/csteer.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> "../bin/csteer.exe"

let golden_dir =
  let candidates = [ "goldens"; "test/goldens"; "../test/goldens" ] in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> "goldens"

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let run_stdout args =
  let tmp = Filename.temp_file "csteer_golden" ".json" in
  let cmd =
    Printf.sprintf "%s %s > %s 2>/dev/null" (Filename.quote exe) args
      (Filename.quote tmp)
  in
  let code = Sys.command cmd in
  let out = read_file tmp in
  Sys.remove tmp;
  (code, out)

let seed_golden_cases =
  [
    ("seed_mcf_vc2_4c.json", "simulate -w mcf -p vc2 -c 4 -n 3000 --json");
    ("seed_gzip1_op_4c.json", "simulate -w gzip-1 -p op -c 4 -n 3000 --json");
    ("seed_vpr1_dep_2c.json", "simulate -w vpr-1 -p dep -c 2 -n 3000 --json");
    ( "seed_mcf_oppar_4c.json",
      "simulate -w mcf -p op-parallel -c 4 -n 3000 --json" );
    ( "seed_equake_vc4_4c.json",
      "simulate -w equake -p vc4 -c 4 -n 3000 --json" );
  ]

let test_seed_goldens () =
  List.iter
    (fun (golden, args) ->
      let code, out = run_stdout args in
      check_int (golden ^ " exit") 0 code;
      let expected = read_file (Filename.concat golden_dir golden) in
      check_bool (golden ^ " byte-identical to seed") true (out = expected))
    seed_golden_cases

let test_tune_study_golden () =
  (* A whole vc-space study (search trajectory, AB table, JSON
     artifact) pinned against the pre-topology seed: proves the
     per-candidate machine refactor left the vc space bit-identical. *)
  let out_dir = Filename.temp_file "csteer_tune" "" in
  Sys.remove out_dir;
  let code, out =
    run_stdout
      (Printf.sprintf
         "tune run --space vc --search random --seed 5 --max-evals 3 -w \
          mcf,gzip-1 -c 4 -n 2000 --out %s --json"
         (Filename.quote out_dir))
  in
  check_int "tune exit" 0 code;
  let expected =
    read_file (Filename.concat golden_dir "seed_tune_vc_study.json")
  in
  check_bool "vc study byte-identical to seed" true (out = expected)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "clusteer_topo"
    [
      ( "metric",
        [
          qc prop_distance_metric;
          qc prop_derived_queries_agree;
          qc prop_json_roundtrip;
          qc prop_name_roundtrip;
        ] );
      ( "fabric",
        [
          Alcotest.test_case "p2p matches the seed link model" `Quick
            test_fabric_p2p_matches_seed_link_model;
          Alcotest.test_case "bus serializes" `Quick test_fabric_bus_serializes;
          Alcotest.test_case "hier uplink bandwidth" `Quick
            test_fabric_hier_uplink_bandwidth;
          qc prop_fabric_latency_consistent;
        ] );
      ( "adversarial",
        [
          qc prop_adversarial_shapes_valid;
          qc prop_adversarial_pass_checker;
          Alcotest.test_case "runs deterministically" `Slow
            test_adversarial_deterministic;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "domains 1 = 4 on non-uniform fabrics" `Slow
            test_domains_identical_with_topology;
        ] );
      ( "goldens",
        [
          Alcotest.test_case "seed stats documents" `Slow test_seed_goldens;
          Alcotest.test_case "seed vc tune study" `Slow test_tune_study_golden;
        ] );
    ]
