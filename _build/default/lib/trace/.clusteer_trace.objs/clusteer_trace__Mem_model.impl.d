lib/trace/mem_model.ml: Array Clusteer_util Printf
