(* End-to-end tests of the csteer command-line interface, run as a
   subprocess against the built executable. *)

let exe =
  (* dune runtest runs in _build/default/test; dune exec from the
     project root. *)
  let candidates =
    [ "../bin/csteer.exe"; "_build/default/bin/csteer.exe"; "bin/csteer.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> "../bin/csteer.exe"

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run_capture args =
  let tmp = Filename.temp_file "csteer_out" ".txt" in
  let cmd =
    Printf.sprintf "%s %s > %s 2>/dev/null" (Filename.quote exe) args
      (Filename.quote tmp)
  in
  let code = Sys.command cmd in
  let ic = open_in tmp in
  let len = in_channel_length ic in
  let out = really_input_string ic len in
  close_in ic;
  Sys.remove tmp;
  (code, out)

let contains haystack needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length haystack
    && (String.sub haystack i n = needle || go (i + 1))
  in
  go 0

let test_list () =
  let code, out = run_capture "list" in
  check_int "exit 0" 0 code;
  check_bool "lists mcf" true (contains out "181.mcf");
  check_bool "lists apsi" true (contains out "301.apsi")

let test_simulate () =
  let code, out = run_capture "simulate -w gzip-1 -p vc2 -n 3000" in
  check_int "exit 0" 0 code;
  check_bool "prints ipc" true (contains out "ipc");
  check_bool "prints energy" true (contains out "energy")

let test_simulate_json_roundtrip () =
  let code, out =
    run_capture "simulate -w gzip-1 -p vc2 -n 3000 --stats-interval 500 --json"
  in
  check_int "exit 0" 0 code;
  (* The whole stdout is one machine-readable JSON document. *)
  match Clusteer_obs.Json.of_string (String.trim out) with
  | Error e -> Alcotest.failf "--json output unparseable: %s" e
  | Ok doc ->
      let module J = Clusteer_obs.Json in
      check_bool "workload" true
        (J.member "workload" doc = Some (J.Str "164.gzip-1"));
      let committed =
        Option.bind (J.member "stats" doc) (J.member "committed")
      in
      check_bool "committed count" true
        (match Option.bind committed J.to_int with
        | Some n -> n >= 3000
        | None -> false);
      check_bool "counters present" true
        (Option.bind (J.member "counters" doc) (J.member "counters") <> None);
      check_bool "interval series present" true
        (match J.member "intervals" doc with
        | Some (J.List (_ :: _)) -> true
        | _ -> false)

let test_simulate_trace_out () =
  let trace = Filename.temp_file "csteer_trace" ".json" in
  let code, _ =
    run_capture
      (Printf.sprintf
         "simulate -w gzip-1 -n 3000 --trace-out %s --trace-format json \
          --stats-interval 500"
         (Filename.quote trace))
  in
  check_int "exit 0" 0 code;
  let ic = open_in trace in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  Sys.remove trace;
  match Clusteer_obs.Json.of_string content with
  | Error e -> Alcotest.failf "trace file unparseable: %s" e
  | Ok doc ->
      check_bool "has trace events" true
        (match Clusteer_obs.Json.member "traceEvents" doc with
        | Some (Clusteer_obs.Json.List (_ :: _)) -> true
        | _ -> false)

let test_simulate_unknown_workload () =
  let code, _ = run_capture "simulate -w not-a-benchmark" in
  check_bool "nonzero exit" true (code <> 0)

let test_compile_emit_annotation () =
  let annot = Filename.temp_file "csteer" ".annot" in
  let code, out =
    run_capture (Printf.sprintf "compile -w gzip-1 -p vc2 --emit %s" annot)
  in
  check_int "exit 0" 0 code;
  check_bool "reports chains" true (contains out "chains");
  (* The emitted file parses back through the library. *)
  let a = Clusteer_isa.Annot_io.load ~path:annot in
  Sys.remove annot;
  check_int "two vcs" 2 a.Clusteer_isa.Annot.virtual_clusters

let test_stats () =
  let code, out = run_capture "stats -w daxpy -n 5000" in
  check_int "exit 0" 0 code;
  check_bool "mentions mem" true (contains out "mem")

let test_vliw () =
  let code, out = run_capture "vliw -w dot" in
  check_int "exit 0" 0 code;
  check_bool "prints II" true (contains out "II=")

let test_sweep_csv () =
  let csv = Filename.temp_file "csteer_sweep" ".csv" in
  let code, _ = run_capture (Printf.sprintf "sweep -w gzip-1 -n 2000 -o %s" csv) in
  check_int "exit 0" 0 code;
  let ic = open_in csv in
  let header = input_line ic in
  let rows = ref 0 in
  (try
     while true do
       ignore (input_line ic);
       incr rows
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove csv;
  Alcotest.(check string) "header"
    "clusters,config,cycles,ipc,copies,alloc_stalls" header;
  (* 3 cluster counts x 9 configurations *)
  check_int "rows" 27 !rows

let test_experiment_tables () =
  let code, out = run_capture "experiment tables" in
  check_int "exit 0" 0 code;
  check_bool "table 1" true (contains out "hybrid virtual clustering");
  check_bool "table 2" true (contains out "trace cache");
  check_bool "table 3" true (contains out "Occupancy-aware")

let test_experiment_sec21 () =
  let code, out = run_capture "experiment sec21" in
  check_int "exit 0" 0 code;
  check_bool "paper delta" true (contains out "(paper: 2)")

let test_unknown_experiment () =
  let code, _ = run_capture "experiment not-a-figure" in
  check_bool "nonzero exit" true (code <> 0)

let () =
  Alcotest.run "clusteer_cli"
    [
      ( "csteer",
        [
          Alcotest.test_case "list" `Quick test_list;
          Alcotest.test_case "simulate" `Slow test_simulate;
          Alcotest.test_case "simulate --json" `Slow test_simulate_json_roundtrip;
          Alcotest.test_case "simulate --trace-out" `Slow test_simulate_trace_out;
          Alcotest.test_case "unknown workload" `Quick test_simulate_unknown_workload;
          Alcotest.test_case "compile --emit" `Quick test_compile_emit_annotation;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "vliw" `Quick test_vliw;
          Alcotest.test_case "sweep csv" `Slow test_sweep_csv;
          Alcotest.test_case "experiment tables" `Quick test_experiment_tables;
          Alcotest.test_case "experiment sec21" `Quick test_experiment_sec21;
          Alcotest.test_case "unknown experiment" `Quick test_unknown_experiment;
        ] );
    ]
