type t = {
  bits : int;
  counters : int array;  (* 2-bit saturating, 0..3; >=2 predicts taken *)
  mutable history : int;
  mutable lookups : int;
  mutable mispredicts : int;
}

let create ~bits =
  if bits < 1 || bits > 24 then invalid_arg "Bpred.create: bits out of range";
  {
    bits;
    counters = Array.make (1 lsl bits) 2;
    history = 0;
    lookups = 0;
    mispredicts = 0;
  }

let index t ~pc = (pc lxor t.history) land ((1 lsl t.bits) - 1)

let predict t ~pc = t.counters.(index t ~pc) >= 2

let update t ~pc ~taken =
  let i = index t ~pc in
  t.lookups <- t.lookups + 1;
  let predicted = t.counters.(i) >= 2 in
  if predicted <> taken then t.mispredicts <- t.mispredicts + 1;
  let c = t.counters.(i) in
  t.counters.(i) <- (if taken then min 3 (c + 1) else max 0 (c - 1));
  t.history <- ((t.history lsl 1) lor (if taken then 1 else 0)) land ((1 lsl t.bits) - 1)

let lookups t = t.lookups
let mispredicts t = t.mispredicts

let accuracy t =
  if t.lookups = 0 then 1.0
  else 1.0 -. (float_of_int t.mispredicts /. float_of_int t.lookups)

let reset_stats t =
  t.lookups <- 0;
  t.mispredicts <- 0

let reset t =
  Array.fill t.counters 0 (Array.length t.counters) 2;
  t.history <- 0;
  reset_stats t
