(** Annotation serialization.

    In the paper the virtual-cluster ids and chain-leader marks travel
    from the compiler to the hardware inside the binary, through an
    x86 ISA extension. This module is that channel's file form: a
    compiler invocation can emit the annotation once and any number of
    simulations can consume it, without re-running the partitioner.

    Format (line-oriented, versioned):
    {v
    clusteer-annot 1
    scheme <name>
    vcs <n>
    uops <n>
    <uop-id> <vc|-> <leader 0/1> <cluster|->
    ...
    v} *)

val save : path:string -> Annot.t -> unit

val load : path:string -> Annot.t
(** Raises [Failure] with a line-precise message on malformed input. *)

val to_string : Annot.t -> string
val of_string : string -> Annot.t
