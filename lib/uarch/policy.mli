(** The runtime steering interface.

    The engine consults a policy once per micro-op at the decode/
    rename/steer stage, in program order (sequential steering — the
    engine gives each decision the up-to-date machine state, which is
    the expensive hardware behaviour hardware-only schemes must pay
    for and the hybrid scheme avoids needing). The [view] exposes
    exactly the information the paper's schemes use:

    - {b workload balance counters} — in-flight micro-ops per cluster;
    - {b dependence check} — per-source value location masks, read from
      the renaming table (used by OP; unused by the hybrid);
    - {b issue-queue occupancy} — free slots per cluster/queue (used by
      occupancy-aware stalling);
    - {b compiler annotations} — the {!Clusteer_isa.Annot.t} side
      channel (used by static and hybrid schemes).

    Policy implementations live in [clusteer_steer]; the engine only
    knows this record type. *)

open Clusteer_isa
open Clusteer_trace

type decision =
  | Dispatch_to of int  (** steer to this physical cluster *)
  | Stall  (** stall the front-end this cycle (stall-over-steer) *)

type view = {
  clusters : int;
  cycle : unit -> int;
  inflight : int -> int;
      (** per-cluster in-flight count (dispatched, not yet completed) *)
  queue_free : int -> Opcode.queue -> int;
      (** free slots of a queue in a cluster *)
  src_locations : Dynuop.t -> Clusteer_util.Bitset.t array;
      (** per source operand, the clusters where its value is (or will
          be) present — the rename-table location logic *)
  src_locations_into : Dynuop.t -> Clusteer_util.Bitset.t array -> int;
      (** allocation-free variant of [src_locations]: fill the
          caller's scratch buffer (which must hold at least as many
          slots as the micro-op has sources) and return the source
          count. This is what the per-uop hot path uses; the
          allocating [src_locations] remains for tests and one-off
          inspection. *)
  reg_location : Reg.t -> Clusteer_util.Bitset.t;
      (** same lookup for an arbitrary architectural register *)
  annot : Annot.t;
}

type t = {
  name : string;
  decide : view -> Dynuop.t -> decision;
  uses_dependence_check : bool;
      (** complexity accounting for Table 1: does the scheme read
          source locations at steer time? *)
  uses_vote_unit : bool;
      (** does it combine per-source locations with occupancy in a
          voting step? *)
}
