lib/graphpart/wgraph.ml: Array Hashtbl List Option
