lib/workloads/profile.ml: Printf
