lib/harness/metrics.ml: Clusteer_uarch Stats
