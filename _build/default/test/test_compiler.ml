(* Tests for the compiler passes: the completion-time estimator, OB,
   RHOP, the VC partitioner and chain identification. *)

open Clusteer_isa
open Clusteer_ddg
open Clusteer_compiler

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let alu b ~dst ~srcs =
  Program.Builder.uop b Opcode.Int_alu ~dst:(Reg.int dst)
    ~srcs:(Array.of_list (List.map Reg.int srcs))
    ()

(* Two independent chains of length 3 each. *)
let two_chain_uops () =
  let b = Program.Builder.create ~name:"c" ~nregs_per_class:8 () in
  [|
    alu b ~dst:0 ~srcs:[];
    alu b ~dst:0 ~srcs:[ 0 ];
    alu b ~dst:0 ~srcs:[ 0 ];
    alu b ~dst:1 ~srcs:[];
    alu b ~dst:1 ~srcs:[ 1 ];
    alu b ~dst:1 ~srcs:[ 1 ];
  |]

(* ---- Estimate ----------------------------------------------------------- *)

let test_estimate_dependence_prefers_producer_part () =
  let g = Ddg.build (two_chain_uops ()) in
  let est = Estimate.create ~parts:2 ~issue_width:2.0 ~comm_latency:1.0 g in
  Estimate.place est ~node:0 ~part:0;
  (* Node 1 depends on node 0: part 0 avoids the communication cycle. *)
  check_bool "same part cheaper" true
    (Estimate.estimate est ~node:1 ~part:0
    < Estimate.estimate est ~node:1 ~part:1)

let test_estimate_contention_spreads_roots () =
  let g = Ddg.build (two_chain_uops ()) in
  let est = Estimate.create ~parts:2 ~issue_width:1.0 ~comm_latency:1.0 g in
  Estimate.place est ~node:0 ~part:0;
  (* An independent root prefers the idle part once part 0 is busy. *)
  check_bool "idle part preferred" true
    (Estimate.estimate est ~node:3 ~part:1
    <= Estimate.estimate est ~node:3 ~part:0)

let test_estimate_place_commits () =
  let g = Ddg.build (two_chain_uops ()) in
  let est = Estimate.create ~parts:2 ~issue_width:2.0 ~comm_latency:1.0 g in
  Estimate.place est ~node:0 ~part:1;
  check_int "part recorded" 1 (Estimate.part_of est 0);
  check_bool "completion positive" true (Estimate.completion est 0 > 0.0);
  check_bool "load recorded" true (Estimate.load est 1 > 0.0);
  check_int "lightest is other" 0 (Estimate.lightest_part est)

let test_estimate_requires_placed_preds () =
  let g = Ddg.build (two_chain_uops ()) in
  let est = Estimate.create ~parts:2 ~issue_width:2.0 ~comm_latency:1.0 g in
  Alcotest.check_raises "unplaced predecessor"
    (Invalid_argument "Estimate: predecessor not yet placed") (fun () ->
      ignore (Estimate.estimate est ~node:1 ~part:0))

let test_estimate_double_place_rejected () =
  let g = Ddg.build (two_chain_uops ()) in
  let est = Estimate.create ~parts:2 ~issue_width:2.0 ~comm_latency:1.0 g in
  Estimate.place est ~node:0 ~part:0;
  Alcotest.check_raises "double place"
    (Invalid_argument "Estimate.place: already placed") (fun () ->
      Estimate.place est ~node:0 ~part:1)

(* ---- OB ------------------------------------------------------------------- *)

let test_ob_keeps_chains_together () =
  let g = Ddg.build (two_chain_uops ()) in
  let a = Ob.assign_region g ~clusters:2 ~issue_width:2.0 in
  check_int "chain 1 united (0-1)" a.(0) a.(1);
  check_int "chain 1 united (1-2)" a.(1) a.(2);
  check_int "chain 2 united (3-4)" a.(3) a.(4);
  check_int "chain 2 united (4-5)" a.(4) a.(5)

let test_ob_spreads_independent_chains () =
  let g = Ddg.build (two_chain_uops ()) in
  let a = Ob.assign_region g ~clusters:2 ~issue_width:1.0 in
  check_bool "chains on different clusters" true (a.(0) <> a.(3))

(* A tiny two-block program for whole-program passes. *)
let small_program () =
  let b = Program.Builder.create ~name:"p" ~nregs_per_class:8 () in
  let blk0 = Program.Builder.reserve_block b in
  let blk1 = Program.Builder.reserve_block b in
  (* let-bound so micro-op ids follow program order. *)
  let u0 = alu b ~dst:0 ~srcs:[] in
  let u1 = alu b ~dst:0 ~srcs:[ 0 ] in
  let u2 = alu b ~dst:1 ~srcs:[] in
  Program.Builder.define_block b blk0 [ u0; u1; u2 ] ~succs:[ blk1 ];
  let u3 = alu b ~dst:1 ~srcs:[ 1 ] in
  let u4 = alu b ~dst:2 ~srcs:[ 0; 1 ] in
  Program.Builder.define_block b blk1 [ u3; u4 ] ~succs:[];
  Program.Builder.finish b ~entry:blk0

let no_profile _ = None

let test_ob_compile_covers_program () =
  let program = small_program () in
  let annot = Ob.compile ~program ~likely:no_profile ~clusters:2 () in
  Alcotest.(check string) "scheme" "ob" annot.Annot.scheme;
  Array.iter
    (fun c -> check_bool "assigned" true (c >= 0 && c < 2))
    annot.Annot.cluster_of

(* ---- RHOP ------------------------------------------------------------------- *)

let test_rhop_weights_shape () =
  let g = Ddg.build (two_chain_uops ()) in
  let wg = Rhop.weights_of_ddg g in
  check_int "one node per uop" 6 (Clusteer_graphpart.Wgraph.node_count wg);
  (* chain edges have low slack -> heavy weight *)
  check_bool "chain edge heavy" true
    (Clusteer_graphpart.Wgraph.edge_weight wg 0 1 > 1.0)

let test_rhop_assign_balances () =
  let g = Ddg.build (two_chain_uops ()) in
  let a = Rhop.assign_region g ~clusters:2 in
  let count p = Array.fold_left (fun acc x -> if x = p then acc + 1 else acc) 0 a in
  check_int "balanced halves" 3 (count 0);
  check_int "balanced halves" 3 (count 1)

let test_rhop_compile_covers_program () =
  let program = small_program () in
  let annot = Rhop.compile ~program ~likely:no_profile ~clusters:2 () in
  Alcotest.(check string) "scheme" "rhop" annot.Annot.scheme;
  Array.iter
    (fun c -> check_bool "assigned" true (c >= 0 && c < 2))
    annot.Annot.cluster_of

(* ---- VC partition -------------------------------------------------------------- *)

let test_vc_assign_respects_dependences () =
  let g = Ddg.build (two_chain_uops ()) in
  let a = Vc_partition.assign_region g ~virtual_clusters:2 () in
  check_int "chain 1 in one vc" a.(0) a.(1);
  check_int "chain 1 in one vc" a.(1) a.(2);
  check_int "chain 2 in one vc" a.(3) a.(4)

let test_vc_compile_produces_leaders () =
  let program = small_program () in
  let annot =
    Vc_partition.compile ~program ~likely:no_profile ~virtual_clusters:2 ()
  in
  Alcotest.(check string) "scheme" "vc" annot.Annot.scheme;
  check_int "vcs" 2 annot.Annot.virtual_clusters;
  Array.iter (fun vc -> check_bool "vc assigned" true (vc >= 0 && vc < 2)) annot.Annot.vc_of;
  check_bool "has chains" true (Annot.chain_count annot >= 1);
  (* The first micro-op of the program must lead a chain. *)
  check_bool "first uop leads" true annot.Annot.leader.(0)

let test_vc_assign_within_range () =
  let g = Ddg.build (two_chain_uops ()) in
  let a = Vc_partition.assign_region g ~virtual_clusters:4 () in
  Array.iter (fun vc -> check_bool "in range" true (vc >= 0 && vc < 4)) a

(* ---- Chains ----------------------------------------------------------------------- *)

let region_of_program program =
  List.hd (Region.build ~program ~likely:no_profile ~max_uops:1000)

let test_chains_marking () =
  let program = small_program () in
  let region = region_of_program program in
  let annot = Annot.create_virtual ~scheme:"vc" ~virtual_clusters:2 ~uop_count:5 in
  (* vc pattern: 0 0 1 1 0 -> leaders at positions 0, 2, 4 *)
  let pattern = [| 0; 0; 1; 1; 0 |] in
  Array.iteri (fun i vc -> annot.Annot.vc_of.(i) <- vc) pattern;
  Chains.mark_region annot region;
  Alcotest.(check (array bool)) "leaders"
    [| true; false; true; false; true |]
    annot.Annot.leader;
  check_int "chain count" 3 (Annot.chain_count annot)

let test_chains_of_region () =
  let program = small_program () in
  let region = region_of_program program in
  let annot = Annot.create_virtual ~scheme:"vc" ~virtual_clusters:2 ~uop_count:5 in
  Array.iteri (fun i _ -> annot.Annot.vc_of.(i) <- (if i < 2 then 0 else 1)) annot.Annot.vc_of;
  Chains.mark_region annot region;
  let chains = Chains.chains_of_region annot region in
  Alcotest.(check (list (list int))) "chains" [ [ 0; 1 ]; [ 2; 3; 4 ] ] chains

let test_chains_single_vc_single_chain () =
  let program = small_program () in
  let region = region_of_program program in
  let annot = Annot.create_virtual ~scheme:"vc" ~virtual_clusters:1 ~uop_count:5 in
  Array.iteri (fun i _ -> annot.Annot.vc_of.(i) <- 0) annot.Annot.vc_of;
  Chains.mark_region annot region;
  check_int "one chain" 1 (Annot.chain_count annot)

(* ---- Criticality hints ------------------------------------------------------------- *)

let test_crit_hints_marks_critical_chain () =
  (* A long serial chain next to one independent op: only the chain is
     critical. *)
  let b = Program.Builder.create ~name:"ch" ~nregs_per_class:8 () in
  let u0 = alu b ~dst:0 ~srcs:[] in
  let u1 = alu b ~dst:0 ~srcs:[ 0 ] in
  let u2 = alu b ~dst:0 ~srcs:[ 0 ] in
  let lone = alu b ~dst:1 ~srcs:[] in
  let blk = Program.Builder.add_block b [ u0; u1; u2; lone ] ~succs:[] in
  let program = Program.Builder.finish b ~entry:blk in
  let critical = Crit_hints.compute ~program ~likely:no_profile () in
  Alcotest.(check (array bool)) "chain critical, lone not"
    [| true; true; true; false |]
    critical

let test_crit_hints_threshold_widens () =
  let b = Program.Builder.create ~name:"ch2" ~nregs_per_class:8 () in
  let u0 = alu b ~dst:0 ~srcs:[] in
  let u1 = alu b ~dst:0 ~srcs:[ 0 ] in
  let lone = alu b ~dst:1 ~srcs:[] in
  let blk = Program.Builder.add_block b [ u0; u1; lone ] ~succs:[] in
  let program = Program.Builder.finish b ~entry:blk in
  let tight = Crit_hints.compute ~program ~likely:no_profile () in
  let loose =
    Crit_hints.compute ~program ~likely:no_profile ~slack_threshold:10 ()
  in
  check_bool "lone op not critical at 0" false tight.(2);
  check_bool "lone op critical at 10" true loose.(2)

(* ---- Diagnostics -------------------------------------------------------------------- *)

let test_diagnostics_counts () =
  let program = small_program () in
  let annot =
    Vc_partition.compile ~program ~likely:no_profile ~virtual_clusters:2 ()
  in
  let d = Diagnostics.of_annot ~program ~likely:no_profile ~annot () in
  check_int "uops" program.Program.uop_count d.Diagnostics.static_uops;
  check_int "vc population sums" program.Program.uop_count
    (Array.fold_left ( + ) 0 d.Diagnostics.vc_population);
  check_int "chains match annot" (Annot.chain_count annot) d.Diagnostics.chains;
  check_bool "edges partitioned" true
    (d.Diagnostics.cross_vc_edges >= 0 && d.Diagnostics.intra_vc_edges >= 0);
  check_bool "mean length sane" true
    (d.Diagnostics.mean_chain_length >= 1.0
    && d.Diagnostics.max_chain_length >= 1)

let test_diagnostics_requires_vcs () =
  let program = small_program () in
  Alcotest.check_raises "no vcs"
    (Invalid_argument "Diagnostics.of_annot: annotation has no virtual clusters")
    (fun () ->
      ignore
        (Diagnostics.of_annot ~program ~likely:no_profile
           ~annot:(Annot.none ~uop_count:program.Program.uop_count)
           ()))

(* ---- Paper Figure 3 worked example ---------------------------------------------------- *)

let test_figure3_chain_semantics () =
  (* The paper's Fig. 3: a DDG partitioned into two virtual clusters
     where the chain leaders are the first program-order micro-op of
     each same-vc run — nodes A, B and E in the figure. We encode six
     micro-ops A..F with the vc pattern A:1 B:2 C:2 D:2 E:1 F:1, giving
     chains {A}, {B,C,D}, {E,F} led by A, B and E. *)
  let b = Program.Builder.create ~name:"fig3" ~nregs_per_class:8 () in
  let a = alu b ~dst:0 ~srcs:[] in
  let b_ = alu b ~dst:1 ~srcs:[] in
  let c = alu b ~dst:2 ~srcs:[ 1 ] in
  let d = alu b ~dst:3 ~srcs:[ 1 ] in
  let e = alu b ~dst:4 ~srcs:[ 0 ] in
  let f = alu b ~dst:5 ~srcs:[ 4; 2 ] in
  let blk = Program.Builder.add_block b [ a; b_; c; d; e; f ] ~succs:[] in
  let program = Program.Builder.finish b ~entry:blk in
  let annot = Annot.create_virtual ~scheme:"vc" ~virtual_clusters:2 ~uop_count:6 in
  Array.iteri
    (fun i vc -> annot.Annot.vc_of.(i) <- vc)
    [| 0; 1; 1; 1; 0; 0 |];
  let region =
    List.hd (Region.build ~program ~likely:no_profile ~max_uops:100)
  in
  Chains.mark_region annot region;
  Alcotest.(check (array bool)) "leaders are A, B, E"
    [| true; true; false; false; true; false |]
    annot.Annot.leader;
  Alcotest.(check (list (list int))) "three chains"
    [ [ 0 ]; [ 1; 2; 3 ]; [ 4; 5 ] ]
    (Chains.chains_of_region annot region);
  Annot.validate annot ~clusters:2

(* ---- Passes dispatch ----------------------------------------------------------------- *)

let test_passes_names () =
  Alcotest.(check string) "none" "none" (Passes.scheme_name Passes.Sw_none);
  Alcotest.(check string) "ob" "ob" (Passes.scheme_name Passes.Sw_ob);
  Alcotest.(check string) "rhop" "rhop" (Passes.scheme_name (Passes.Sw_rhop { seed = 1 }));
  Alcotest.(check string) "vc" "vc2"
    (Passes.scheme_name (Passes.Sw_vc { virtual_clusters = 2 }))

let test_passes_none_empty () =
  let program = small_program () in
  let annot = Passes.run Passes.Sw_none ~program ~likely:no_profile ~clusters:2 () in
  check_bool "no assignments" true
    (Array.for_all (fun c -> c = -1) annot.Annot.cluster_of);
  check_bool "no vcs" true (Array.for_all (fun v -> v = -1) annot.Annot.vc_of)

let test_passes_run_all_validate () =
  let program = small_program () in
  List.iter
    (fun scheme ->
      let annot = Passes.run scheme ~program ~likely:no_profile ~clusters:2 () in
      Annot.validate annot ~clusters:2)
    [
      Passes.Sw_none;
      Passes.Sw_ob;
      Passes.Sw_rhop { seed = 1 };
      Passes.Sw_vc { virtual_clusters = 2 };
    ]

(* ---- Properties over random programs --------------------------------------------------- *)

let arb_profile_seedling =
  (* Random straight-line DDGs via the same generator style as test_ddg. *)
  QCheck.make
    QCheck.Gen.(
      sized (fun size st ->
          let n = max 2 (min size 40) in
          let b = Program.Builder.create ~name:"q" ~nregs_per_class:8 () in
          let uops =
            List.init n (fun _ ->
                let dst = int_bound 5 st in
                let nsrcs = int_bound 2 st in
                let srcs = Array.init nsrcs (fun _ -> Reg.int (int_bound 5 st)) in
                Program.Builder.uop b Opcode.Int_alu ~dst:(Reg.int dst) ~srcs ())
          in
          let blk = Program.Builder.add_block b uops ~succs:[] in
          Program.Builder.finish b ~entry:blk))

let prop_vc_chain_leaders_iff_vc_change =
  QCheck.Test.make ~name:"leaders mark exactly vc changes" ~count:150
    arb_profile_seedling (fun program ->
      let annot =
        Vc_partition.compile ~program ~likely:no_profile ~virtual_clusters:2 ()
      in
      let ok = ref true in
      let prev = ref (-2) in
      Program.iter_uops program (fun u ->
          let id = u.Uop.id in
          let vc = annot.Annot.vc_of.(id) in
          let expected_leader = vc <> !prev in
          if annot.Annot.leader.(id) <> expected_leader then ok := false;
          prev := vc);
      !ok)

let prop_all_passes_total =
  QCheck.Test.make ~name:"every pass assigns every micro-op" ~count:100
    arb_profile_seedling (fun program ->
      let ob = Ob.compile ~program ~likely:no_profile ~clusters:2 () in
      let rhop = Rhop.compile ~program ~likely:no_profile ~clusters:2 () in
      let vc =
        Vc_partition.compile ~program ~likely:no_profile ~virtual_clusters:2 ()
      in
      Array.for_all (fun c -> c >= 0) ob.Annot.cluster_of
      && Array.for_all (fun c -> c >= 0) rhop.Annot.cluster_of
      && Array.for_all (fun v -> v >= 0) vc.Annot.vc_of)

let prop_rhop_balance_bounded =
  QCheck.Test.make ~name:"rhop partitions are roughly balanced" ~count:100
    arb_profile_seedling (fun program ->
      let annot = Rhop.compile ~program ~likely:no_profile ~clusters:2 () in
      let n = Array.length annot.Annot.cluster_of in
      let c0 =
        Array.fold_left (fun acc c -> if c = 0 then acc + 1 else acc) 0
          annot.Annot.cluster_of
      in
      (* within 25% imbalance + slack for tiny regions *)
      abs ((2 * c0) - n) <= max 2 (n / 3))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "clusteer_compiler"
    [
      ( "estimate",
        [
          Alcotest.test_case "dependence preference" `Quick test_estimate_dependence_prefers_producer_part;
          Alcotest.test_case "contention spreads roots" `Quick test_estimate_contention_spreads_roots;
          Alcotest.test_case "place commits" `Quick test_estimate_place_commits;
          Alcotest.test_case "unplaced pred rejected" `Quick test_estimate_requires_placed_preds;
          Alcotest.test_case "double place rejected" `Quick test_estimate_double_place_rejected;
        ] );
      ( "ob",
        [
          Alcotest.test_case "keeps chains together" `Quick test_ob_keeps_chains_together;
          Alcotest.test_case "spreads independent chains" `Quick test_ob_spreads_independent_chains;
          Alcotest.test_case "compile covers program" `Quick test_ob_compile_covers_program;
        ] );
      ( "rhop",
        [
          Alcotest.test_case "weights shape" `Quick test_rhop_weights_shape;
          Alcotest.test_case "balances" `Quick test_rhop_assign_balances;
          Alcotest.test_case "compile covers program" `Quick test_rhop_compile_covers_program;
        ] );
      ( "vc",
        [
          Alcotest.test_case "respects dependences" `Quick test_vc_assign_respects_dependences;
          Alcotest.test_case "produces leaders" `Quick test_vc_compile_produces_leaders;
          Alcotest.test_case "vc range" `Quick test_vc_assign_within_range;
        ] );
      ( "chains",
        [
          Alcotest.test_case "marking" `Quick test_chains_marking;
          Alcotest.test_case "chains of region" `Quick test_chains_of_region;
          Alcotest.test_case "single vc single chain" `Quick test_chains_single_vc_single_chain;
        ] );
      ( "crit-hints",
        [
          Alcotest.test_case "marks critical chain" `Quick test_crit_hints_marks_critical_chain;
          Alcotest.test_case "threshold widens" `Quick test_crit_hints_threshold_widens;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "counts" `Quick test_diagnostics_counts;
          Alcotest.test_case "requires vcs" `Quick test_diagnostics_requires_vcs;
          Alcotest.test_case "figure 3 semantics" `Quick test_figure3_chain_semantics;
        ] );
      ( "passes",
        [
          Alcotest.test_case "names" `Quick test_passes_names;
          Alcotest.test_case "none is empty" `Quick test_passes_none_empty;
          Alcotest.test_case "all validate" `Quick test_passes_run_all_validate;
          qc prop_vc_chain_leaders_iff_vc_change;
          qc prop_all_passes_total;
          qc prop_rhop_balance_bounded;
        ] );
    ]
