type t = {
  mutable cycles : int;
  mutable committed : int;
  mutable dispatched : int;
  mutable copies_generated : int;
  mutable copies_executed : int;
  mutable link_transfers : int;
  mutable stall_iq_full : int;
  mutable stall_copyq_full : int;
  mutable stall_rob_full : int;
  mutable stall_lsq_full : int;
  mutable stall_regfile : int;
  mutable stall_policy : int;
  mutable stall_empty : int;
  mutable loads : int;
  mutable stores : int;
  mutable branch_lookups : int;
  mutable branch_mispredicts : int;
  mutable tc_hits : int;
  mutable tc_misses : int;
  mutable l1_hits : int;
  mutable l1_misses : int;
  mutable l2_hits : int;
  mutable l2_misses : int;
  per_cluster_dispatched : int array;
}

let create ~clusters =
  {
    cycles = 0;
    committed = 0;
    dispatched = 0;
    copies_generated = 0;
    copies_executed = 0;
    link_transfers = 0;
    stall_iq_full = 0;
    stall_copyq_full = 0;
    stall_rob_full = 0;
    stall_lsq_full = 0;
    stall_regfile = 0;
    stall_policy = 0;
    stall_empty = 0;
    loads = 0;
    stores = 0;
    branch_lookups = 0;
    branch_mispredicts = 0;
    tc_hits = 0;
    tc_misses = 0;
    l1_hits = 0;
    l1_misses = 0;
    l2_hits = 0;
    l2_misses = 0;
    per_cluster_dispatched = Array.make clusters 0;
  }

let copy t = { t with per_cluster_dispatched = Array.copy t.per_cluster_dispatched }

let reset t =
  t.cycles <- 0;
  t.committed <- 0;
  t.dispatched <- 0;
  t.copies_generated <- 0;
  t.copies_executed <- 0;
  t.link_transfers <- 0;
  t.stall_iq_full <- 0;
  t.stall_copyq_full <- 0;
  t.stall_rob_full <- 0;
  t.stall_lsq_full <- 0;
  t.stall_regfile <- 0;
  t.stall_policy <- 0;
  t.stall_empty <- 0;
  t.loads <- 0;
  t.stores <- 0;
  t.branch_lookups <- 0;
  t.branch_mispredicts <- 0;
  t.tc_hits <- 0;
  t.tc_misses <- 0;
  t.l1_hits <- 0;
  t.l1_misses <- 0;
  t.l2_hits <- 0;
  t.l2_misses <- 0;
  Array.fill t.per_cluster_dispatched 0
    (Array.length t.per_cluster_dispatched)
    0

let ipc t =
  if t.cycles = 0 then 0.0 else float_of_int t.committed /. float_of_int t.cycles

let allocation_stalls t = t.stall_iq_full + t.stall_copyq_full + t.stall_policy

let copy_rate t =
  if t.committed = 0 then 0.0
  else float_of_int t.copies_generated /. float_of_int t.committed

let balance_entropy t =
  let total = Array.fold_left ( + ) 0 t.per_cluster_dispatched in
  let k = Array.length t.per_cluster_dispatched in
  if total = 0 || k <= 1 then 1.0
  else begin
    let h =
      Array.fold_left
        (fun acc n ->
          if n = 0 then acc
          else
            let p = float_of_int n /. float_of_int total in
            acc -. (p *. log p))
        0.0 t.per_cluster_dispatched
    in
    h /. log (float_of_int k)
  end

(* Stall counters paired with their canonical names, in
   {!Clusteer_obs.Event.stall_names} order. *)
let stall_fields t =
  [
    ("iq_full", t.stall_iq_full);
    ("copyq_full", t.stall_copyq_full);
    ("rob_full", t.stall_rob_full);
    ("lsq_full", t.stall_lsq_full);
    ("regfile", t.stall_regfile);
    ("policy", t.stall_policy);
    ("empty", t.stall_empty);
  ]

let total_stalls t = List.fold_left (fun acc (_, n) -> acc + n) 0 (stall_fields t)

let equal a b =
  a.cycles = b.cycles && a.committed = b.committed
  && a.dispatched = b.dispatched
  && a.copies_generated = b.copies_generated
  && a.copies_executed = b.copies_executed
  && a.link_transfers = b.link_transfers
  && a.stall_iq_full = b.stall_iq_full
  && a.stall_copyq_full = b.stall_copyq_full
  && a.stall_rob_full = b.stall_rob_full
  && a.stall_lsq_full = b.stall_lsq_full
  && a.stall_regfile = b.stall_regfile
  && a.stall_policy = b.stall_policy
  && a.stall_empty = b.stall_empty
  && a.loads = b.loads && a.stores = b.stores
  && a.branch_lookups = b.branch_lookups
  && a.branch_mispredicts = b.branch_mispredicts
  && a.tc_hits = b.tc_hits && a.tc_misses = b.tc_misses
  && a.l1_hits = b.l1_hits && a.l1_misses = b.l1_misses
  && a.l2_hits = b.l2_hits && a.l2_misses = b.l2_misses
  && a.per_cluster_dispatched = b.per_cluster_dispatched

let snapshot t =
  {
    Clusteer_obs.Interval.cycle = t.cycles;
    committed = t.committed;
    dispatched = t.dispatched;
    copies_generated = t.copies_generated;
    copies_executed = t.copies_executed;
    link_transfers = t.link_transfers;
    stalls = Array.of_list (List.map snd (stall_fields t));
    per_cluster_dispatched = Array.copy t.per_cluster_dispatched;
  }

let to_json t =
  let module Json = Clusteer_obs.Json in
  Json.Obj
    [
      ("cycles", Json.Int t.cycles);
      ("committed", Json.Int t.committed);
      ("dispatched", Json.Int t.dispatched);
      ("ipc", Json.Float (ipc t));
      ("copies_generated", Json.Int t.copies_generated);
      ("copies_executed", Json.Int t.copies_executed);
      ("copy_rate", Json.Float (copy_rate t));
      ("link_transfers", Json.Int t.link_transfers);
      ( "stalls",
        Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) (stall_fields t)) );
      ("allocation_stalls", Json.Int (allocation_stalls t));
      ("loads", Json.Int t.loads);
      ("stores", Json.Int t.stores);
      ("branch_lookups", Json.Int t.branch_lookups);
      ("branch_mispredicts", Json.Int t.branch_mispredicts);
      ("tc_hits", Json.Int t.tc_hits);
      ("tc_misses", Json.Int t.tc_misses);
      ("l1_hits", Json.Int t.l1_hits);
      ("l1_misses", Json.Int t.l1_misses);
      ("l2_hits", Json.Int t.l2_hits);
      ("l2_misses", Json.Int t.l2_misses);
      ( "per_cluster_dispatched",
        Json.List
          (Array.to_list
             (Array.map (fun n -> Json.Int n) t.per_cluster_dispatched)) );
      ("balance_entropy", Json.Float (balance_entropy t));
    ]

let pp ppf t =
  Format.fprintf ppf
    "@[<v>cycles %d  committed %d  ipc %.3f@,\
     copies %d (executed %d)  link transfers %d@,\
     stalls:%a  (total %d)@,\
     allocation stalls %d  copy rate %.4f  balance entropy %.4f@,\
     loads %d  stores %d  l1 %d/%d  l2 %d/%d@,\
     branches %d  mispredicts %d  tc %d/%d@,\
     per-cluster dispatch %a@]"
    t.cycles t.committed (ipc t) t.copies_generated t.copies_executed
    t.link_transfers
    (fun ppf fields ->
      List.iter (fun (n, v) -> Format.fprintf ppf " %s %d" n v) fields)
    (stall_fields t) (total_stalls t) (allocation_stalls t) (copy_rate t)
    (balance_entropy t) t.loads t.stores t.l1_hits t.l1_misses t.l2_hits
    t.l2_misses t.branch_lookups t.branch_mispredicts t.tc_hits t.tc_misses
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "/")
       Format.pp_print_int)
    (Array.to_list t.per_cluster_dispatched)
