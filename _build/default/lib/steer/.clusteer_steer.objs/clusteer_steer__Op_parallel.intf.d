lib/steer/op_parallel.mli: Clusteer_uarch
