(** Structured pipeline events.

    The taxonomy mirrors the quantities the paper's evaluation argues
    from: where the steering logic sent each micro-op (and what the
    cluster occupancies looked like at that moment), which copies and
    link transfers the placement cost, why allocation stalled, and the
    retirement/redirect stream that anchors everything in time.

    Events carry only plain integers so the event layer has no
    dependency on the microarchitecture types; the engine translates
    its internal state when a sink is installed and constructs nothing
    otherwise. *)

type stall_reason =
  | Iq_full  (** target issue queue out of slots *)
  | Copyq_full  (** a source cluster's copy queue out of slots *)
  | Rob_full
  | Lsq_full
  | Regfile  (** destination register file exhausted *)
  | Policy  (** the steering policy chose to stall *)
  | Empty  (** front-end starved (mispredict redirect, trace-cache miss) *)

val stall_reason_count : int
(** Number of stall reasons; indexes from {!stall_reason_index} are
    dense in [0, stall_reason_count). *)

val stall_reason_index : stall_reason -> int
val stall_reason_name : stall_reason -> string
val stall_names : string array
(** Reason names in index order. *)

type t =
  | Steer of {
      cycle : int;
      static_id : int;  (** static micro-op id of the steered uop *)
      cluster : int;  (** chosen cluster *)
      inflight : int array;  (** per-cluster occupancy at decision time *)
    }
  | Dispatch of {
      cycle : int;
      iseq : int;  (** global dynamic sequence number *)
      static_id : int;
      cluster : int;
      queue : string;  (** "int", "fp" or "copy" *)
    }
  | Copy_insert of {
      cycle : int;
      tag : int;  (** value tag being replicated *)
      from_cluster : int;
      to_cluster : int;
      copyq_depth : int;  (** producer's copy-queue depth after insertion *)
    }
  | Link_transfer of {
      cycle : int;
      from_cluster : int;
      to_cluster : int;
      latency : int;
    }
  | Stall of { cycle : int; reason : stall_reason }
  | Commit of { cycle : int; iseq : int; cluster : int }
  | Redirect of { cycle : int; resume : int }
      (** mispredicted branch resolved; fetch resumes at [resume] *)

val cycle : t -> int
val name : t -> string
(** Short kind name ("steer", "stall", ...). *)

val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit
