lib/util/vec.mli:
