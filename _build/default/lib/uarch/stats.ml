type t = {
  mutable cycles : int;
  mutable committed : int;
  mutable dispatched : int;
  mutable copies_generated : int;
  mutable copies_executed : int;
  mutable link_transfers : int;
  mutable stall_iq_full : int;
  mutable stall_copyq_full : int;
  mutable stall_rob_full : int;
  mutable stall_lsq_full : int;
  mutable stall_regfile : int;
  mutable stall_policy : int;
  mutable stall_empty : int;
  mutable loads : int;
  mutable stores : int;
  mutable branch_lookups : int;
  mutable branch_mispredicts : int;
  mutable tc_hits : int;
  mutable tc_misses : int;
  mutable l1_hits : int;
  mutable l1_misses : int;
  mutable l2_hits : int;
  mutable l2_misses : int;
  per_cluster_dispatched : int array;
}

let create ~clusters =
  {
    cycles = 0;
    committed = 0;
    dispatched = 0;
    copies_generated = 0;
    copies_executed = 0;
    link_transfers = 0;
    stall_iq_full = 0;
    stall_copyq_full = 0;
    stall_rob_full = 0;
    stall_lsq_full = 0;
    stall_regfile = 0;
    stall_policy = 0;
    stall_empty = 0;
    loads = 0;
    stores = 0;
    branch_lookups = 0;
    branch_mispredicts = 0;
    tc_hits = 0;
    tc_misses = 0;
    l1_hits = 0;
    l1_misses = 0;
    l2_hits = 0;
    l2_misses = 0;
    per_cluster_dispatched = Array.make clusters 0;
  }

let reset t =
  t.cycles <- 0;
  t.committed <- 0;
  t.dispatched <- 0;
  t.copies_generated <- 0;
  t.copies_executed <- 0;
  t.link_transfers <- 0;
  t.stall_iq_full <- 0;
  t.stall_copyq_full <- 0;
  t.stall_rob_full <- 0;
  t.stall_lsq_full <- 0;
  t.stall_regfile <- 0;
  t.stall_policy <- 0;
  t.stall_empty <- 0;
  t.loads <- 0;
  t.stores <- 0;
  t.branch_lookups <- 0;
  t.branch_mispredicts <- 0;
  t.tc_hits <- 0;
  t.tc_misses <- 0;
  t.l1_hits <- 0;
  t.l1_misses <- 0;
  t.l2_hits <- 0;
  t.l2_misses <- 0;
  Array.fill t.per_cluster_dispatched 0
    (Array.length t.per_cluster_dispatched)
    0

let ipc t =
  if t.cycles = 0 then 0.0 else float_of_int t.committed /. float_of_int t.cycles

let allocation_stalls t = t.stall_iq_full + t.stall_copyq_full + t.stall_policy

let copy_rate t =
  if t.committed = 0 then 0.0
  else float_of_int t.copies_generated /. float_of_int t.committed

let balance_entropy t =
  let total = Array.fold_left ( + ) 0 t.per_cluster_dispatched in
  let k = Array.length t.per_cluster_dispatched in
  if total = 0 || k <= 1 then 1.0
  else begin
    let h =
      Array.fold_left
        (fun acc n ->
          if n = 0 then acc
          else
            let p = float_of_int n /. float_of_int total in
            acc -. (p *. log p))
        0.0 t.per_cluster_dispatched
    in
    h /. log (float_of_int k)
  end

let pp ppf t =
  Format.fprintf ppf
    "@[<v>cycles %d  committed %d  ipc %.3f@,\
     copies %d (executed %d)  link transfers %d@,\
     stalls: iq %d  copyq %d  rob %d  lsq %d  regfile %d  policy %d  empty %d@,\
     loads %d  stores %d  l1 %d/%d  l2 %d/%d@,\
     branches %d  mispredicts %d  tc %d/%d@,\
     per-cluster dispatch %a@]"
    t.cycles t.committed (ipc t) t.copies_generated t.copies_executed
    t.link_transfers t.stall_iq_full t.stall_copyq_full t.stall_rob_full
    t.stall_lsq_full t.stall_regfile t.stall_policy t.stall_empty t.loads
    t.stores t.l1_hits
    t.l1_misses t.l2_hits t.l2_misses t.branch_lookups t.branch_mispredicts
    t.tc_hits t.tc_misses
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Format.pp_print_int)
    (Array.to_list t.per_cluster_dispatched)
