lib/util/parallel.mli:
