module Json = Clusteer_obs.Json

type severity = Error | Warning | Info

type location = { uop : int; block : int; region : int }

type t = {
  code : string;
  severity : severity;
  message : string;
  loc : location;
}

let no_location = { uop = -1; block = -1; region = -1 }

let make ?(uop = -1) ?(block = -1) ?(region = -1) severity ~code message =
  { code; severity; message; loc = { uop; block; region } }

let errorf ?uop ?block ?region ~code fmt =
  Printf.ksprintf (make ?uop ?block ?region Error ~code) fmt

let warnf ?uop ?block ?region ~code fmt =
  Printf.ksprintf (make ?uop ?block ?region Warning ~code) fmt

let infof ?uop ?block ?region ~code fmt =
  Printf.ksprintf (make ?uop ?block ?region Info ~code) fmt

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_of_name = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

let is_error d = d.severity = Error

let count severity diags =
  List.fold_left
    (fun acc d -> if d.severity = severity then acc + 1 else acc)
    0 diags

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.code b.code in
    if c <> 0 then c
    else
      let c = Int.compare a.loc.region b.loc.region in
      if c <> 0 then c
      else
        let c = Int.compare a.loc.block b.loc.block in
        if c <> 0 then c else Int.compare a.loc.uop b.loc.uop

let pp ppf d =
  let pp_loc ppf loc =
    if loc.uop >= 0 then Format.fprintf ppf " uop %d" loc.uop;
    if loc.block >= 0 then Format.fprintf ppf " (block %d)" loc.block
    else if loc.region >= 0 then Format.fprintf ppf " (region %d)" loc.region
  in
  Format.fprintf ppf "%s[%s]%a: %s" (severity_name d.severity) d.code pp_loc
    d.loc d.message

let to_json d =
  let base =
    [
      ("severity", Json.Str (severity_name d.severity));
      ("code", Json.Str d.code);
      ("message", Json.Str d.message);
    ]
  in
  let loc_field name v = if v >= 0 then [ (name, Json.Int v) ] else [] in
  Json.Obj
    (base
    @ loc_field "uop" d.loc.uop
    @ loc_field "block" d.loc.block
    @ loc_field "region" d.loc.region)

let of_json doc =
  let str name =
    match Option.bind (Json.member name doc) Json.to_str with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "diagnostic: missing field %S" name)
  in
  let int_default name =
    match Json.member name doc with
    | Some j -> (
        match Json.to_int j with
        | Some n -> Ok n
        | None -> Error (Printf.sprintf "diagnostic: %s must be an integer" name))
    | None -> Ok (-1)
  in
  let ( let* ) = Result.bind in
  let* sev = str "severity" in
  let* severity =
    match severity_of_name sev with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "diagnostic: unknown severity %S" sev)
  in
  let* code = str "code" in
  let* message = str "message" in
  let* uop = int_default "uop" in
  let* block = int_default "block" in
  let* region = int_default "region" in
  Ok { code; severity; message; loc = { uop; block; region } }
