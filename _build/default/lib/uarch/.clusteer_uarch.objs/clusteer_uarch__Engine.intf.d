lib/uarch/engine.mli: Annot Clusteer_isa Clusteer_trace Config Dynuop Policy Stats
