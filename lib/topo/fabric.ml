type t = {
  topo : Topology.t;
  free : int array;  (* link id -> next free cycle *)
}

(* Link numbering, per topology kind (n = clusters):
   - p2p : n*n slots, directed pair [from*n + to] — exactly the seed
     engine's [link_free] matrix, flattened.
   - bus : one shared slot.
   - ring: 2n directed hop links — forward out of node c is [c],
     backward out of node c is [n + c].
   - mesh: four directed outgoing links per cell, [4*c + dir] with
     dir 0 = +x, 1 = -x, 2 = +y, 3 = -y.
   - hier: n*n local slots (in-group copies use [from*n + to]; the
     diagonal [c*n + c], never used by a direct copy, doubles as
     cluster [c]'s uplink access port) plus [uplink_bandwidth] shared
     uplink channels at [n*n ..]. *)
let link_count (topo : Topology.t) =
  let n = topo.Topology.clusters in
  match topo.Topology.kind with
  | Topology.P2p -> n * n
  | Topology.Bus -> 1
  | Topology.Ring -> 2 * n
  | Topology.Mesh _ -> 4 * n
  | Topology.Hier _ -> (n * n) + topo.Topology.uplink_bandwidth

let create topo =
  (match Topology.validate topo with
  | Ok () -> ()
  | Error m -> invalid_arg ("Fabric.create: " ^ m));
  { topo; free = Array.make (link_count topo) 0 }

let topology t = t.topo
let links t = Array.length t.free
let reset t = Array.fill t.free 0 (Array.length t.free) 0

(* A hop holds its link for one cycle starting at [start]; busy means
   the link is reserved past [start] — the seed's exact condition. *)
let[@inline] hop_free t ~id ~start = t.free.(id) <= start
let[@inline] hop_take t ~id ~start = t.free.(id) <- start + 1

let try_transfer t ~now ~from ~to_ =
  let topo = t.topo in
  let n = topo.Topology.clusters in
  let ll = topo.Topology.link_latency in
  match topo.Topology.kind with
  | Topology.P2p ->
      let id = (from * n) + to_ in
      if hop_free t ~id ~start:now then begin
        hop_take t ~id ~start:now;
        ll
      end
      else -1
  | Topology.Bus ->
      if hop_free t ~id:0 ~start:now then begin
        hop_take t ~id:0 ~start:now;
        ll
      end
      else -1
  | Topology.Ring ->
      let fwd = (to_ - from + n) mod n in
      let bwd = (from - to_ + n) mod n in
      let hops = max 1 (min fwd bwd) in
      let step = if fwd <= bwd then 1 else n - 1 (* -1 mod n *) in
      let base = if fwd <= bwd then 0 else n in
      (* pass 1: every hop link free at its slot? *)
      let ok = ref true in
      let node = ref from in
      for k = 0 to hops - 1 do
        let id = base + !node in
        if not (hop_free t ~id ~start:(now + (k * ll))) then ok := false;
        node := (!node + step) mod n
      done;
      if not !ok then -1
      else begin
        let node = ref from in
        for k = 0 to hops - 1 do
          hop_take t ~id:(base + !node) ~start:(now + (k * ll));
          node := (!node + step) mod n
        done;
        hops * ll
      end
  | Topology.Mesh { cols; _ } ->
      let fx = from mod cols and fy = from / cols in
      let tx = to_ mod cols and ty = to_ / cols in
      let hops = abs (fx - tx) + abs (fy - ty) in
      (* XY routing: walk x to the target column, then y. [probe]
         enumerates the route twice — once checking, once reserving —
         so the reservation is all-or-nothing. *)
      let probe ~take =
        let ok = ref true in
        let x = ref fx and y = ref fy and k = ref 0 in
        while !ok && (!x <> tx || !y <> ty) do
          let cell = (!y * cols) + !x in
          let dir =
            if !x < tx then begin
              incr x;
              0
            end
            else if !x > tx then begin
              decr x;
              1
            end
            else if !y < ty then begin
              incr y;
              2
            end
            else begin
              decr y;
              3
            end
          in
          let id = (4 * cell) + dir in
          let start = now + (!k * ll) in
          if take then hop_take t ~id ~start
          else if not (hop_free t ~id ~start) then ok := false;
          incr k
        done;
        !ok
      in
      if not (probe ~take:false) then -1
      else begin
        ignore (probe ~take:true);
        hops * ll
      end
  | Topology.Hier { group_size; _ } ->
      if from / group_size = to_ / group_size then begin
        (* in-group: a dedicated point-to-point link, as the seed. *)
        let id = (from * n) + to_ in
        if hop_free t ~id ~start:now then begin
          hop_take t ~id ~start:now;
          ll
        end
        else -1
      end
      else begin
        (* egress port -> shared uplink channel -> ingress port *)
        let egress = (from * n) + from in
        let ingress = (to_ * n) + to_ in
        let up_start = now + ll in
        let in_start = now + ll + topo.Topology.uplink_latency in
        (* lowest-numbered free channel wins: deterministic. *)
        let chan = ref (-1) in
        let c = ref 0 in
        let bw = topo.Topology.uplink_bandwidth in
        while !chan < 0 && !c < bw do
          if hop_free t ~id:((n * n) + !c) ~start:up_start then chan := !c;
          incr c
        done;
        if
          !chan < 0
          || (not (hop_free t ~id:egress ~start:now))
          || not (hop_free t ~id:ingress ~start:in_start)
        then -1
        else begin
          hop_take t ~id:egress ~start:now;
          hop_take t ~id:((n * n) + !chan) ~start:up_start;
          hop_take t ~id:ingress ~start:in_start;
          (2 * ll) + topo.Topology.uplink_latency
        end
      end
