(** IR well-formedness verification.

    Re-checks, from first principles, every structural invariant the
    {!Clusteer_isa.Program.Builder} enforces at construction time —
    so programs that arrive through other routes (deserialized,
    hand-assembled, or corrupted in memory) are caught before any
    compiler pass or simulation trusts them.

    Codes:
    - [IR001] — static uop ids are not dense: an id is out of
      [\[0, uop_count)], placed more than once, never placed, or the
      program's uop index disagrees with the blocks.
    - [IR002] — operand shape violates the opcode contract: wrong
      destination presence, more than two sources, a memory stream or
      branch model reference on the wrong opcode class, or a
      runtime-only [Copy] in the static program text.
    - [IR003] — a register operand is out of the program's per-class
      budget, or a computation's destination class disagrees with the
      opcode's result class (loads and copies may target either).
    - [IR004] — CFG shape: entry or a successor id out of range, or a
      block stored under the wrong index.
    - [IR005] — branch placement: a branch not in terminal position, a
      multi-successor block without a terminating branch, or a branch
      terminating a block with fewer than two successors.
    - [IR006] — a memory-stream or branch-model reference beyond the
      program's declared counts.
    - [IR007] (warning) — a source register read somewhere but written
      nowhere in the program.
    - [IR008] (warning) — a block unreachable from the entry. *)

open Clusteer_isa

val codes : string list

val check : Program.t -> Diag.t list
(** All IR findings, in discovery order (callers sort). Never raises,
    even on badly corrupted programs. *)
