lib/workloads/kernels.ml: Array Branch_model Clusteer_isa Clusteer_trace List Mem_model Opcode Profile Program Reg Synth
