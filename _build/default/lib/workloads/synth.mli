(** Program synthesis: turn a {!Profile.t} into a runnable workload.

    The generated CFG is a chain of loop nests — head block, an
    if/else diamond, and a latch with a back-edge — preceded by an
    initialisation block. Micro-op operands are wired to form
    [profile.ilp] independent dependence chains that restart every
    [chain_len] operations, which fixes the width and depth of the
    dynamic DDG. Memory micro-ops draw addresses from per-benchmark
    stream models (strided / uniform / pointer-chase over the
    footprint); conditional branches are biased or hard per
    [hard_branch_frac]; loop back-edges use the profile trip count.

    Everything is a deterministic function of the profile (including
    its seed). *)

open Clusteer_isa
open Clusteer_trace

type t = {
  profile : Profile.t;
  program : Program.t;
  branches : Branch_model.t array;
  streams : Mem_model.t array;
  likely : int -> int option;
      (** profile feedback for the compiler's region builder *)
}

val build : Profile.t -> t

val trace : t -> seed:int -> Tracegen.t
(** Fresh trace generator over the workload's program and models. *)
