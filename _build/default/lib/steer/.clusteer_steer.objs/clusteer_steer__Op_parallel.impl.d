lib/steer/op_parallel.ml: Array Clusteer_isa Clusteer_trace Clusteer_uarch Clusteer_util Fun Hashtbl List Opcode Option Policy Reg Uop
