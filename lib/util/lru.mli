(** String-keyed LRU map with a byte budget.

    Backs the simulation service's content-addressed result cache, but
    is policy-agnostic: every entry carries an explicit [cost] (bytes,
    usually) and the map evicts least-recently-used entries whenever
    the summed cost exceeds the budget. Lookups through {!find}
    promote the entry to most-recently-used; {!peek} and {!mem} do
    not. An [on_evict] hook observes every eviction (the service layer
    uses it to spill evicted results to disk).

    All operations are O(1) expected (hash table + intrusive doubly
    linked list). Not thread-safe; callers serialize access. *)

type 'a t

val create : ?on_evict:(string -> 'a -> unit) -> budget:int -> unit -> 'a t
(** [create ~budget ()] makes an empty map holding at most [budget]
    total cost. Raises [Invalid_argument] if [budget < 0]. A budget of
    0 admits nothing: every {!add} evicts its own entry immediately
    (after calling [on_evict]). *)

val find : 'a t -> string -> 'a option
(** Lookup; a hit becomes the most-recently-used entry. *)

val peek : 'a t -> string -> 'a option
(** Lookup without promotion. *)

val mem : 'a t -> string -> bool

val add : 'a t -> string -> cost:int -> 'a -> unit
(** Insert, or replace an existing binding (replacement re-costs and
    promotes it). Then evicts from the LRU end until the summed cost
    fits the budget; [on_evict] fires once per evicted binding, in
    eviction (least-recently-used first) order. Raises
    [Invalid_argument] if [cost < 0]. *)

val remove : 'a t -> string -> unit
(** Drop a binding without calling [on_evict]; no-op when absent. *)

val length : 'a t -> int
val cost : 'a t -> int
(** Summed cost of the live entries. *)

val budget : 'a t -> int

val keys : 'a t -> string list
(** Keys from most- to least-recently used (test hook). *)
