type costs = {
  dispatch : float;
  issue : float;
  execute : float;
  copy : float;
  l1_access : float;
  l2_access : float;
  memory_access : float;
  commit : float;
  static_per_cycle : float;
}

(* Structure-size scaling: a cluster of a 2n-cluster machine has half
   the queue/regfile capacity of an n-cluster machine's, and smaller
   RAMs cost less per access. Model per-access cost ~ capacity^0.5. *)
let default_costs ~clusters =
  if clusters <= 0 then invalid_arg "Energy.default_costs: clusters";
  let shrink = 1.0 /. sqrt (float_of_int clusters) in
  {
    dispatch = 1.2;
    issue = 2.0 *. shrink;
    execute = 1.0;
    copy = 1.5;
    l1_access = 2.5;
    l2_access = 10.0;
    memory_access = 120.0;
    commit = 0.6;
    static_per_cycle = 3.0;
  }

type breakdown = {
  dynamic : float;
  static_ : float;
  copies : float;
  total : float;
  per_uop : float;
}

let estimate ?costs ~clusters (s : Stats.t) =
  let c = match costs with Some c -> c | None -> default_costs ~clusters in
  let f = float_of_int in
  let copies =
    f s.Stats.copies_generated *. (c.dispatch +. c.issue +. c.copy)
  in
  let dynamic =
    (f s.Stats.dispatched *. (c.dispatch +. c.issue +. c.execute +. c.commit))
    +. copies
    +. (f (s.Stats.l1_hits + s.Stats.l1_misses) *. c.l1_access)
    +. (f (s.Stats.l2_hits + s.Stats.l2_misses) *. c.l2_access)
    +. (f s.Stats.l2_misses *. c.memory_access)
  in
  let static_ = f s.Stats.cycles *. c.static_per_cycle in
  let total = dynamic +. static_ in
  {
    dynamic;
    static_;
    copies;
    total;
    per_uop = (if s.Stats.committed = 0 then 0.0 else total /. f s.Stats.committed);
  }
