(* Tests for clusteer_ddg: region formation, dependence-graph
   construction, criticality analysis. *)

open Clusteer_isa
open Clusteer_ddg

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let alu b ~dst ~srcs =
  Program.Builder.uop b Opcode.Int_alu ~dst:(Reg.int dst)
    ~srcs:(Array.of_list (List.map Reg.int srcs))
    ()

(* ---- DDG construction ------------------------------------------------- *)

(* r0 = const; r1 = r0; r2 = r0; r3 = r1 + r2  (diamond) *)
let diamond_uops () =
  let b = Program.Builder.create ~name:"d" ~nregs_per_class:8 () in
  let u0 = alu b ~dst:0 ~srcs:[] in
  let u1 = alu b ~dst:1 ~srcs:[ 0 ] in
  let u2 = alu b ~dst:2 ~srcs:[ 0 ] in
  let u3 = alu b ~dst:3 ~srcs:[ 1; 2 ] in
  [| u0; u1; u2; u3 |]

let test_ddg_diamond_edges () =
  let g = Ddg.build (diamond_uops ()) in
  let succs i = List.map (fun (e : Ddg.edge) -> e.Ddg.dst) g.Ddg.succs.(i) in
  Alcotest.(check (list int)) "u0 feeds u1 u2" [ 1; 2 ] (succs 0);
  Alcotest.(check (list int)) "u1 feeds u3" [ 3 ] (succs 1);
  Alcotest.(check (list int)) "u2 feeds u3" [ 3 ] (succs 2);
  Alcotest.(check (list int)) "u3 leaf" [] (succs 3)

let test_ddg_redefinition_kills () =
  (* r0 = c; r0 = c (redefine); r1 = r0 — only the second def feeds r1. *)
  let b = Program.Builder.create ~name:"waw" ~nregs_per_class:8 () in
  let u0 = alu b ~dst:0 ~srcs:[] in
  let u1 = alu b ~dst:0 ~srcs:[] in
  let u2 = alu b ~dst:1 ~srcs:[ 0 ] in
  let g = Ddg.build [| u0; u1; u2 |] in
  check_int "u0 has no consumers" 0 (List.length g.Ddg.succs.(0));
  check_int "u1 feeds u2" 1 (List.length g.Ddg.succs.(1))

let test_ddg_memory_dependences () =
  let b = Program.Builder.create ~name:"mem" ~nregs_per_class:8 () in
  let s0 = Program.Builder.stream b in
  let s1 = Program.Builder.stream b in
  let st0 =
    Program.Builder.uop b Opcode.Store ~srcs:[| Reg.int 0; Reg.int 1 |]
      ~stream:s0 ()
  in
  let ld_same =
    Program.Builder.uop b Opcode.Load ~dst:(Reg.int 2) ~srcs:[| Reg.int 1 |]
      ~stream:s0 ()
  in
  let ld_other =
    Program.Builder.uop b Opcode.Load ~dst:(Reg.int 3) ~srcs:[| Reg.int 1 |]
      ~stream:s1 ()
  in
  let st_same =
    Program.Builder.uop b Opcode.Store ~srcs:[| Reg.int 0; Reg.int 1 |]
      ~stream:s0 ()
  in
  let g = Ddg.build [| st0; ld_same; ld_other; st_same |] in
  let has_edge a b = List.exists (fun (e : Ddg.edge) -> e.Ddg.dst = b) g.Ddg.succs.(a) in
  check_bool "store -> load same stream" true (has_edge 0 1);
  check_bool "no edge to other stream" false (has_edge 0 2);
  check_bool "store -> store same stream" true (has_edge 0 3)

let test_ddg_acyclic_and_forward () =
  let g = Ddg.build (diamond_uops ()) in
  check_bool "acyclic" true (Ddg.is_acyclic g);
  Array.iter
    (List.iter (fun (e : Ddg.edge) -> check_bool "forward" true (e.Ddg.src < e.Ddg.dst)))
    g.Ddg.succs

let test_ddg_roots_leaves () =
  let g = Ddg.build (diamond_uops ()) in
  Alcotest.(check (list int)) "roots" [ 0 ] (Ddg.roots g);
  Alcotest.(check (list int)) "leaves" [ 3 ] (Ddg.leaves g)

let test_ddg_static_latency_load () =
  let b = Program.Builder.create ~name:"lat" ~nregs_per_class:8 () in
  let s = Program.Builder.stream b in
  let ld =
    Program.Builder.uop b Opcode.Load ~dst:(Reg.int 0) ~srcs:[| Reg.int 1 |]
      ~stream:s ()
  in
  check_int "load = agu + l1 hit" 4 (Ddg.static_latency ld);
  check_int "alu = 1" 1 (Ddg.static_latency (alu b ~dst:0 ~srcs:[]))

(* ---- Criticality ------------------------------------------------------- *)

let test_critical_diamond () =
  let g = Ddg.build (diamond_uops ()) in
  let c = Critical.analyze g in
  (* All latencies 1: depth 0,1,1,2; height 3,2,2,1. *)
  Alcotest.(check (array int)) "depth" [| 0; 1; 1; 2 |] c.Critical.depth;
  Alcotest.(check (array int)) "height" [| 3; 2; 2; 1 |] c.Critical.height;
  check_int "critical path length" 3 c.Critical.length;
  Alcotest.(check (array int)) "slack all zero" [| 0; 0; 0; 0 |] c.Critical.slack

let test_critical_slack_off_path () =
  (* Chain of 3 plus one independent op: the lone op has slack. *)
  let b = Program.Builder.create ~name:"s" ~nregs_per_class:8 () in
  let u0 = alu b ~dst:0 ~srcs:[] in
  let u1 = alu b ~dst:1 ~srcs:[ 0 ] in
  let u2 = alu b ~dst:2 ~srcs:[ 1 ] in
  let u3 = alu b ~dst:3 ~srcs:[] in
  let g = Ddg.build [| u0; u1; u2; u3 |] in
  let c = Critical.analyze g in
  check_int "chain length" 3 c.Critical.length;
  check_int "chain head slack" 0 c.Critical.slack.(0);
  check_int "lone op slack" 2 c.Critical.slack.(3)

let test_critical_path_extraction () =
  let b = Program.Builder.create ~name:"p" ~nregs_per_class:8 () in
  let u0 = alu b ~dst:0 ~srcs:[] in
  let u1 = alu b ~dst:1 ~srcs:[ 0 ] in
  let u2 = alu b ~dst:2 ~srcs:[ 1 ] in
  let u3 = alu b ~dst:3 ~srcs:[] in
  let g = Ddg.build [| u0; u1; u2; u3 |] in
  let c = Critical.analyze g in
  Alcotest.(check (list int)) "critical path" [ 0; 1; 2 ] (Critical.critical_path g c)

let test_critical_latency_weighting () =
  (* imul (3 cycles) chain vs alu (1 cycle) chain: the mul chain is
     critical even though both have two nodes. *)
  let b = Program.Builder.create ~name:"w" ~nregs_per_class:8 () in
  let m0 = Program.Builder.uop b Opcode.Int_mul ~dst:(Reg.int 0) () in
  let m1 =
    Program.Builder.uop b Opcode.Int_mul ~dst:(Reg.int 1) ~srcs:[| Reg.int 0 |] ()
  in
  let a0 = alu b ~dst:2 ~srcs:[] in
  let a1 = alu b ~dst:3 ~srcs:[ 2 ] in
  let g = Ddg.build [| m0; m1; a0; a1 |] in
  let c = Critical.analyze g in
  check_int "length = 2 muls" 6 c.Critical.length;
  check_int "mul chain critical" 0 c.Critical.slack.(0);
  check_bool "alu chain slack" true (c.Critical.slack.(2) > 0)

(* ---- Regions ----------------------------------------------------------- *)

let program_with_loop () =
  let b = Program.Builder.create ~name:"r" ~nregs_per_class:8 () in
  let m_loop = Program.Builder.branch_model b in
  let m_cond = Program.Builder.branch_model b in
  let head = Program.Builder.reserve_block b in
  let cond = Program.Builder.reserve_block b in
  let left = Program.Builder.reserve_block b in
  let right = Program.Builder.reserve_block b in
  let latch = Program.Builder.reserve_block b in
  let exit_ = Program.Builder.reserve_block b in
  Program.Builder.define_block b head [ alu b ~dst:0 ~srcs:[] ] ~succs:[ cond ];
  Program.Builder.define_block b cond
    [
      alu b ~dst:1 ~srcs:[ 0 ];
      Program.Builder.uop b Opcode.Branch ~srcs:[| Reg.int 1 |] ~branch_ref:m_cond ();
    ]
    ~succs:[ left; right ];
  Program.Builder.define_block b left [ alu b ~dst:2 ~srcs:[ 1 ] ] ~succs:[ latch ];
  Program.Builder.define_block b right [ alu b ~dst:2 ~srcs:[ 0 ] ] ~succs:[ latch ];
  Program.Builder.define_block b latch
    [
      alu b ~dst:3 ~srcs:[ 2 ];
      Program.Builder.uop b Opcode.Branch ~srcs:[| Reg.int 3 |] ~branch_ref:m_loop ();
    ]
    ~succs:[ exit_; head ];
  Program.Builder.define_block b exit_ [ alu b ~dst:4 ~srcs:[ 3 ] ] ~succs:[];
  Program.Builder.finish b ~entry:head

let likely_left blk = if blk = 1 then Some 0 else if blk = 4 then Some 1 else None

let test_regions_cover_all_blocks () =
  let program = program_with_loop () in
  let regions = Region.build ~program ~likely:likely_left ~max_uops:100 in
  let covered = Hashtbl.create 8 in
  List.iter
    (fun r ->
      Array.iter
        (fun blk ->
          Alcotest.(check bool) "block covered once" false (Hashtbl.mem covered blk);
          Hashtbl.replace covered blk ())
        r.Region.blocks)
    regions;
  check_int "all blocks" (Array.length program.Program.blocks)
    (Hashtbl.length covered)

let test_regions_follow_likely_path () =
  let program = program_with_loop () in
  let regions = Region.build ~program ~likely:likely_left ~max_uops:100 in
  let first = List.hd regions in
  (* Entry region follows head -> cond -> left (likely side) and stops
     at the latch back-edge (latch's likely successor is head, already
     placed). *)
  Alcotest.(check (array int)) "hot trace" [| 0; 1; 2; 4 |] first.Region.blocks

let test_regions_respect_max_uops () =
  let program = program_with_loop () in
  let regions = Region.build ~program ~likely:likely_left ~max_uops:2 in
  (* Growth stops once the budget is reached; the final block may push
     a region past the bound, so: before its last block every region
     was still under budget. *)
  List.iter
    (fun r ->
      let nblocks = Array.length r.Region.blocks in
      if nblocks > 1 then begin
        let last = r.Region.blocks.(nblocks - 1) in
        let last_size =
          Array.length program.Program.blocks.(last).Block.uops
        in
        check_bool "under budget before last block" true
          (Array.length r.Region.uops - last_size < 2)
      end)
    regions

let test_region_find_and_position () =
  let program = program_with_loop () in
  let regions = Region.build ~program ~likely:likely_left ~max_uops:100 in
  let r = Region.find regions ~uop_id:2 in
  check_bool "contains uop 2" true
    (Array.exists (fun (u : Uop.t) -> u.Uop.id = 2) r.Region.uops);
  let pos = Region.position r ~uop_id:2 in
  check_int "position consistent" 2 r.Region.uops.(pos).Uop.id

(* ---- Property tests ----------------------------------------------------- *)

(* Random straight-line micro-op sequences. *)
let gen_uops =
  QCheck.Gen.(
    let gen_op rng_n i =
      let dst = rng_n 6 in
      let nsrcs = rng_n 3 in
      let srcs = Array.init nsrcs (fun _ -> Reg.int (rng_n 6)) in
      Uop.make ~id:i ~opcode:Opcode.Int_alu ~dst:(Reg.int dst) ~srcs ()
    in
    sized (fun n st ->
        let n = max 1 (min n 40) in
        Array.init n (fun i -> gen_op (fun b -> int_bound (b - 1) st) i)))

let arb_uops = QCheck.make gen_uops

let prop_ddg_forward_edges =
  QCheck.Test.make ~name:"ddg edges always point forward" ~count:200 arb_uops
    (fun uops ->
      let g = Ddg.build uops in
      Ddg.is_acyclic g)

let prop_ddg_pred_succ_symmetric =
  QCheck.Test.make ~name:"ddg preds mirror succs" ~count:200 arb_uops
    (fun uops ->
      let g = Ddg.build uops in
      let ok = ref true in
      Array.iteri
        (fun i succs ->
          List.iter
            (fun (e : Ddg.edge) ->
              if
                not
                  (List.exists
                     (fun (e' : Ddg.edge) -> e'.Ddg.src = i)
                     g.Ddg.preds.(e.Ddg.dst))
              then ok := false)
            succs)
        g.Ddg.succs;
      !ok)

let prop_criticality_bounds =
  QCheck.Test.make ~name:"criticality bounded by path length" ~count:200
    arb_uops (fun uops ->
      let g = Ddg.build uops in
      let c = Critical.analyze g in
      Array.for_all
        (fun crit -> crit >= 0 && crit <= c.Critical.length)
        c.Critical.criticality
      && Array.exists (fun s -> s = 0) c.Critical.slack)

let prop_critical_path_is_zero_slack =
  QCheck.Test.make ~name:"extracted critical path has zero slack" ~count:200
    arb_uops (fun uops ->
      let g = Ddg.build uops in
      let c = Critical.analyze g in
      let path = Critical.critical_path g c in
      path <> [] && List.for_all (fun n -> c.Critical.slack.(n) = 0) path)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "clusteer_ddg"
    [
      ( "ddg",
        [
          Alcotest.test_case "diamond edges" `Quick test_ddg_diamond_edges;
          Alcotest.test_case "redefinition kills" `Quick test_ddg_redefinition_kills;
          Alcotest.test_case "memory dependences" `Quick test_ddg_memory_dependences;
          Alcotest.test_case "acyclic forward" `Quick test_ddg_acyclic_and_forward;
          Alcotest.test_case "roots and leaves" `Quick test_ddg_roots_leaves;
          Alcotest.test_case "static latency" `Quick test_ddg_static_latency_load;
          qc prop_ddg_forward_edges;
          qc prop_ddg_pred_succ_symmetric;
        ] );
      ( "critical",
        [
          Alcotest.test_case "diamond" `Quick test_critical_diamond;
          Alcotest.test_case "off-path slack" `Quick test_critical_slack_off_path;
          Alcotest.test_case "path extraction" `Quick test_critical_path_extraction;
          Alcotest.test_case "latency weighting" `Quick test_critical_latency_weighting;
          qc prop_criticality_bounds;
          qc prop_critical_path_is_zero_slack;
        ] );
      ( "region",
        [
          Alcotest.test_case "covers all blocks" `Quick test_regions_cover_all_blocks;
          Alcotest.test_case "follows likely path" `Quick test_regions_follow_likely_path;
          Alcotest.test_case "respects max uops" `Quick test_regions_respect_max_uops;
          Alcotest.test_case "find and position" `Quick test_region_find_and_position;
        ] );
    ]
