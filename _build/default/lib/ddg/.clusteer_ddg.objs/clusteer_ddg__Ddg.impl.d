lib/ddg/ddg.ml: Array Clusteer_isa Fun Hashtbl List Opcode Option Reg Region Uop
