lib/trace/branch_model.ml: Array Clusteer_util Printf
