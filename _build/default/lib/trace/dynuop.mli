(** Dynamic micro-op instances: one element of a trace. *)

open Clusteer_isa

type t = {
  seq : int;  (** dynamic sequence number, dense from 0 *)
  suop : Uop.t;  (** the static micro-op this instantiates *)
  addr : int;  (** byte address for loads/stores, [-1] otherwise *)
  taken : bool;  (** branch outcome; [false] for non-branches *)
}

val static_id : t -> int
(** Shorthand for [t.suop.id] — the key into {!Clusteer_isa.Annot}
    side tables and the branch predictor's PC surrogate. *)

val pp : Format.formatter -> t -> unit
