open Clusteer_isa
open Clusteer_uarch
module Bitset = Clusteer_util.Bitset

(* Clusters holding the most source operands (the vote), as a list of
   candidates; sources located everywhere vote for every cluster. *)
let vote view duop =
  let clusters = view.Policy.clusters in
  let votes = Array.make clusters 0 in
  Array.iter
    (fun loc ->
      for c = 0 to clusters - 1 do
        if Bitset.mem loc c then votes.(c) <- votes.(c) + 1
      done)
    (view.Policy.src_locations duop);
  let best = Array.fold_left max 0 votes in
  let candidates = ref [] in
  for c = clusters - 1 downto 0 do
    if votes.(c) = best then candidates := c :: !candidates
  done;
  !candidates

let least_loaded view candidates =
  match candidates with
  | [] -> invalid_arg "Op.least_loaded: no candidates"
  | first :: rest ->
      List.fold_left
        (fun best c ->
          if view.Policy.inflight c < view.Policy.inflight best then c else best)
        first rest

let make ?(stall_threshold = 36) ?(imbalance_limit = 200) ?registry () =
  let module Counters = Clusteer_obs.Counters in
  (* Introspection: [op.vote_candidates] is a latency proxy for the
     serialized vote hardware of §2.1 — more tied candidates means a
     longer resolve chain; the override/stall counters expose how
     often occupancy-awareness beats pure dependence steering. *)
  let decisions = Counters.counter ?registry "op.decisions" in
  let balance_overrides = Counters.counter ?registry "op.balance_overrides" in
  let steer_away = Counters.counter ?registry "op.steer_away" in
  let stalls = Counters.counter ?registry "op.stall_decisions" in
  let vote_candidates = Counters.histogram ?registry "op.vote_candidates" in
  let decide view duop =
    let u = duop.Clusteer_trace.Dynuop.suop in
    let queue = Opcode.queue u.Uop.opcode in
    let clusters = view.Policy.clusters in
    let all = List.init clusters Fun.id in
    Counters.incr decisions;
    let candidates = vote view duop in
    Counters.observe vote_candidates (List.length candidates);
    let preferred = least_loaded view candidates in
    let min_load =
      List.fold_left (fun acc c -> min acc (view.Policy.inflight c)) max_int all
    in
    (* Balance override: a severely overloaded preferred cluster loses
       its dependence advantage. *)
    let preferred =
      if view.Policy.inflight preferred - min_load > imbalance_limit then begin
        Counters.incr balance_overrides;
        least_loaded view all
      end
      else preferred
    in
    if view.Policy.queue_free preferred queue > 0 then
      Policy.Dispatch_to preferred
    else begin
      (* Preferred cluster is out of queue slots: steer away only when
         some other cluster is comfortably idle, otherwise stall
         (stall-over-steer). *)
      let alternatives =
        List.filter
          (fun c ->
            c <> preferred && view.Policy.queue_free c queue >= stall_threshold)
          all
      in
      match alternatives with
      | [] ->
          Counters.incr stalls;
          Policy.Stall
      | cs ->
          Counters.incr steer_away;
          Policy.Dispatch_to (least_loaded view cs)
    end
  in
  {
    Policy.name = "op";
    decide;
    uses_dependence_check = true;
    uses_vote_unit = true;
  }
