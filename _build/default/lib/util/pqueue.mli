(** Mutable binary min-heap keyed by integer priority.

    Used for event ordering and for select logic where the oldest /
    cheapest candidate wins. Ties are broken by insertion order (FIFO),
    which matters for age-ordered instruction select. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val add : 'a t -> int -> 'a -> unit
(** [add t priority v] inserts [v]. Smaller priorities pop first; equal
    priorities pop in insertion order. *)

val peek : 'a t -> (int * 'a) option
val pop : 'a t -> (int * 'a) option
val clear : 'a t -> unit

val pop_while : 'a t -> (int -> bool) -> (int * 'a) list
(** [pop_while t keep] pops, in order, every minimum whose priority
    satisfies [keep] and returns them oldest-first. *)
