lib/steer/one_cluster.ml: Clusteer_uarch Policy
