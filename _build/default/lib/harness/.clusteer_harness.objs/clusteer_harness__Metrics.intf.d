lib/harness/metrics.mli: Clusteer_uarch Stats
