lib/steer/mod_n.ml: Clusteer_uarch Policy Printf
