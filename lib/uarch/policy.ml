open Clusteer_isa
open Clusteer_trace

type decision = Dispatch_to of int | Stall

type view = {
  clusters : int;
  cycle : unit -> int;
  inflight : int -> int;
  queue_free : int -> Opcode.queue -> int;
  src_locations : Dynuop.t -> Clusteer_util.Bitset.t array;
  src_locations_into : Dynuop.t -> Clusteer_util.Bitset.t array -> int;
  reg_location : Reg.t -> Clusteer_util.Bitset.t;
  annot : Annot.t;
}

type t = {
  name : string;
  decide : view -> Dynuop.t -> decision;
  uses_dependence_check : bool;
  uses_vote_unit : bool;
}
