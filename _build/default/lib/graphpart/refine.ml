let pass g part ~k ~max_imbalance =
  let n = Wgraph.node_count g in
  let weights = Partition.part_weights g part ~k in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let ideal = if total > 0.0 then total /. float_of_int k else 1.0 in
  let cap = max_imbalance *. ideal in
  let moved = ref false in
  for v = 0 to n - 1 do
    let home = part.(v) in
    (* Connectivity of v to each part. *)
    let link = Array.make k 0.0 in
    List.iter (fun (u, w) -> link.(part.(u)) <- link.(part.(u)) +. w)
      (Wgraph.neighbours g v);
    let vw = Wgraph.node_weight g v in
    let best = ref home and best_gain = ref 0.0 in
    for p = 0 to k - 1 do
      if p <> home then begin
        let gain = link.(p) -. link.(home) in
        let new_weight = weights.(p) +. vw in
        let balance_ok =
          new_weight <= cap
          || new_weight < Array.fold_left Float.max 0.0 weights
        in
        (* Prefer strict cut improvement; accept zero-gain moves that
           improve balance, which spreads weight when cuts tie. *)
        let improves_balance =
          gain = 0.0 && weights.(p) +. vw < weights.(home)
        in
        if balance_ok && (gain > !best_gain || (improves_balance && !best = home))
        then begin
          best := p;
          best_gain := gain
        end
      end
    done;
    if !best <> home then begin
      weights.(home) <- weights.(home) -. vw;
      weights.(!best) <- weights.(!best) +. vw;
      part.(v) <- !best;
      moved := true
    end
  done;
  !moved

(* Explicit rebalance: while some part exceeds the imbalance cap, move
   the node of the heaviest part whose departure costs the least edge
   weight to the lightest part. Runs after gain-driven passes so that
   balance is restored even when every rebalancing move has negative
   cut gain (e.g. when coarsening glued a long chain together). *)
let rebalance g part ~k ~max_imbalance =
  let n = Wgraph.node_count g in
  let weights = Partition.part_weights g part ~k in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let ideal = if total > 0.0 then total /. float_of_int k else 1.0 in
  let cap = max_imbalance *. ideal in
  let heaviest () =
    let h = ref 0 in
    for p = 1 to k - 1 do
      if weights.(p) > weights.(!h) then h := p
    done;
    !h
  in
  let lightest () =
    let l = ref 0 in
    for p = 1 to k - 1 do
      if weights.(p) < weights.(!l) then l := p
    done;
    !l
  in
  let guard = ref (2 * n) in
  let continue_ = ref true in
  while !continue_ && !guard > 0 do
    decr guard;
    let src = heaviest () and dst = lightest () in
    if weights.(src) <= cap || src = dst then continue_ := false
    else begin
      (* Cheapest node to evict: least (internal - external) link. *)
      let best = ref (-1) and best_cost = ref infinity in
      for v = 0 to n - 1 do
        if part.(v) = src then begin
          let internal = ref 0.0 and towards = ref 0.0 in
          List.iter
            (fun (u, w) ->
              if part.(u) = src then internal := !internal +. w
              else if part.(u) = dst then towards := !towards +. w)
            (Wgraph.neighbours g v);
          let cost = !internal -. !towards in
          if cost < !best_cost then begin
            best := v;
            best_cost := cost
          end
        end
      done;
      if !best < 0 then continue_ := false
      else begin
        let vw = Wgraph.node_weight g !best in
        part.(!best) <- dst;
        weights.(src) <- weights.(src) -. vw;
        weights.(dst) <- weights.(dst) +. vw
      end
    end
  done

let run g part ~k ~max_imbalance ~passes =
  let rec loop i =
    if i < passes && pass g part ~k ~max_imbalance then loop (i + 1)
  in
  loop 0;
  rebalance g part ~k ~max_imbalance;
  (* A final gain pass can claw back cut lost during rebalancing. *)
  ignore (pass g part ~k ~max_imbalance)
