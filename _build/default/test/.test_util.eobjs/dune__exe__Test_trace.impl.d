test/test_trace.ml: Alcotest Array Branch_model Clusteer_isa Clusteer_trace Dynuop List Mem_model Opcode Program Reg Tracegen Uop
