(** Compiler-output diagnostics.

    "The effectiveness of our proposed hardware-software mechanism
    largely depends on the selection of chains" (paper §4.2): these
    measurements expose that selection — chain count and lengths, VC
    population balance, and how many dependence edges cross VCs (the
    copies a static VC→cluster mapping would imply). Used by
    [csteer compile] and the test suite. *)

open Clusteer_isa

type t = {
  static_uops : int;
  regions : int;
  chains : int;
  mean_chain_length : float;
  max_chain_length : int;
  vc_population : int array;  (** micro-ops per virtual cluster *)
  cross_vc_edges : int;
      (** region-DDG dependence edges whose endpoints sit in different
          virtual clusters *)
  intra_vc_edges : int;
}

val codes : string list
(** The stable CP0xx codes {!findings} can emit — registered in the
    analyzer's [Checker.code_table] self-check. *)

val of_annot :
  program:Program.t ->
  likely:(int -> int option) ->
  annot:Annot.t ->
  ?region_uops:int ->
  unit ->
  t
(** Analyse a VC annotation. Raises [Invalid_argument] when the
    annotation has no virtual clusters. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Clusteer_obs.Json.t
(** All summary fields, machine-readable; used by [csteer compile
    --json] and stored alongside analyzer reports. *)

val findings : t -> Diag.t list
(** Partition-quality findings in the shared diagnostic vocabulary
    (all [Info] — quality, unlike well-formedness, is advisory):
    - [CP001] — a virtual cluster holds no micro-ops;
    - [CP002] — VC population imbalance beyond 4x;
    - [CP003] — more dependence edges cross VCs than stay inside
      ({> 50%} cut: every crossing is a potential inter-cluster copy);
    - [CP004] — mean chain length below 2 (chains too short for the
      leader mechanism to amortize remap decisions). *)
