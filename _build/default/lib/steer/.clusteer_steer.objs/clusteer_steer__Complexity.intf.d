lib/steer/complexity.mli:
