(** Iterative modulo scheduling (software pipelining) for single-block
    loops on the clustered VLIW substrate.

    The paper's §3.3 splits VLIW steering work into modulo-scheduled
    loop code ([9], [20], [23], [25] in its bibliography) and general
    acyclic scheduling; this module covers the first category with
    Rau-style iterative modulo scheduling: compute the minimum
    initiation interval (the larger of the resource bound {!res_mii}
    and the recurrence bound {!rec_mii}), then place operations into a
    modulo reservation table, evicting and retrying on conflicts, and
    increase the II until a schedule fits.

    Inter-cluster communication: a cross-cluster dependence adds the
    machine's communication latency, and each required move counts
    against the producer cluster's move-slot capacity per II
    (aggregate accounting — moves are not placed into individual
    reservation slots). *)

open Clusteer_isa

(** Loop dependence graphs: intra-iteration edges (distance 0) plus
    loop-carried edges (distance ≥ 1) through registers. *)
type edge = { src : int; dst : int; latency : int; distance : int }

type loop_ddg = { uops : Uop.t array; edges : edge list }

val loop_ddg_of_body : Uop.t array -> loop_ddg
(** Build the cyclic dependence graph of a loop body: program-order
    register/memory dependences at distance 0 ({!Clusteer_ddg.Ddg})
    plus distance-1 edges from each definition to the uses that read
    it in the next iteration. *)

val res_mii : Machine.t -> loop_ddg -> assignment:int array -> int
(** Resource-constrained minimum II: per cluster and slot class,
    [ceil(uses / slots)], counting the move operations the assignment
    implies. *)

val rec_mii : loop_ddg -> int
(** Recurrence-constrained minimum II: the smallest [II] such that no
    dependence cycle requires more latency than [II * distance]
    (binary search with positive-cycle detection). 1 for acyclic
    bodies. *)

type result = {
  ii : int;  (** achieved initiation interval *)
  mii : int;  (** the lower bound max(res_mii, rec_mii) *)
  times : int array;  (** issue cycle per operation (flat schedule) *)
  moves : int;  (** inter-cluster moves per iteration *)
}

val schedule :
  Machine.t -> loop_ddg -> assignment:int array -> ?max_ii:int -> unit -> result
(** Modulo-schedule the body with a fixed cluster assignment. Raises
    [Failure] if no schedule is found up to [max_ii] (default
    [4 * mii + 16] — generous; real failures indicate a bug). *)

val validate : Machine.t -> loop_ddg -> assignment:int array -> result -> unit
(** Check dependence (modulo-aware) and resource feasibility of a
    result. Raises [Invalid_argument] on violation. *)
