type t = int

let max_member = Sys.int_size - 2

let check i =
  if i < 0 || i > max_member then invalid_arg "Bitset: member out of range"

let empty = 0

let singleton i =
  check i;
  1 lsl i

let full n =
  if n < 0 || n > max_member + 1 then invalid_arg "Bitset.full: out of range";
  (1 lsl n) - 1

let of_mask m =
  if m < 0 then invalid_arg "Bitset.of_mask: negative mask";
  m

let add t i =
  check i;
  t lor (1 lsl i)

let remove t i =
  check i;
  t land lnot (1 lsl i)

let mem t i =
  check i;
  t land (1 lsl i) <> 0

let union a b = a lor b
let inter a b = a land b

let cardinal t =
  let rec loop acc v = if v = 0 then acc else loop (acc + (v land 1)) (v lsr 1) in
  loop 0 t

let is_empty t = t = 0

let iter f t =
  let rec loop i v =
    if v <> 0 then begin
      if v land 1 <> 0 then f i;
      loop (i + 1) (v lsr 1)
    end
  in
  loop 0 t

let fold f init t =
  let acc = ref init in
  iter (fun i -> acc := f !acc i) t;
  !acc

let to_list t = List.rev (fold (fun acc i -> i :: acc) [] t)
let of_list l = List.fold_left add empty l

let choose t =
  if t = 0 then None
  else
    let rec loop i v = if v land 1 <> 0 then Some i else loop (i + 1) (v lsr 1) in
    loop 0 t

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (to_list t)
