open Clusteer_isa
open Clusteer_ddg
module Compiler = Clusteer_compiler

let ragged (p : Program.t) (a : Annot.t) =
  let n = p.Program.uop_count in
  let bad name len =
    if len <> n then
      Some
        (Diag.errorf ~code:"VC001" "%s has %d entries for %d static uops" name
           len n)
    else None
  in
  List.filter_map Fun.id
    [
      bad "vc_of" (Array.length a.Annot.vc_of);
      bad "leader" (Array.length a.Annot.leader);
      bad "cluster_of" (Array.length a.Annot.cluster_of);
    ]

let codes =
  [
    "VC001"; "VC002"; "VC003"; "VC004"; "VC005"; "VC006"; "VC007";
    "VC008"; "VC009"; "VC010";
  ]

let check ~program ~likely ~annot ?(region_uops = 512) ?max_chain () =
  match ragged program annot with
  | _ :: _ as diags -> diags
  | [] ->
      let diags = ref [] in
      let add d = diags := d :: !diags in
      let nvc = annot.Annot.virtual_clusters in
      if nvc > program.Program.uop_count then
        add
          (Diag.warnf ~code:"VC010"
             "%d virtual clusters for %d static uops: a partition with more \
              parts than elements"
             nvc program.Program.uop_count);
      (* VC002/VC003/VC004: per-uop assignment sanity. *)
      Array.iteri
        (fun id vc ->
          let block = Program.block_of_uop program id in
          if vc = -1 then
            add
              (Diag.errorf ~uop:id ~block ~code:"VC003"
                 "uop unassigned under scheme %S" annot.Annot.scheme)
          else if vc < 0 || vc >= nvc then
            add
              (Diag.errorf ~uop:id ~block ~code:"VC002"
                 "vc %d out of range [0, %d)" vc nvc);
          if annot.Annot.leader.(id) && vc = -1 then
            add
              (Diag.errorf ~uop:id ~block ~code:"VC004"
                 "leader mark on a uop with no virtual cluster"))
        annot.Annot.vc_of;
      (* VC005/VC006: recompute chain-leader marks per region and
         compare with the annotation. Uses the same
         [Compiler.Chains.iter_chain_starts] the compiler's
         [mark_region] uses, so checker and compiler (including the
         [max_chain] cap) can never drift. *)
      let regions = Region.build ~program ~likely ~max_uops:region_uops in
      List.iter
        (fun (region : Region.t) ->
          Compiler.Chains.iter_chain_starts ?max_chain
            ~vc_of:(fun id -> annot.Annot.vc_of.(id))
            region
            (fun id ~vc ~start:expected ->
              let marked = annot.Annot.leader.(id) in
              let block = Program.block_of_uop program id in
              if expected && not marked then
                add
                  (Diag.errorf ~uop:id ~block ~region:region.Region.id
                     ~code:"VC005" "chain start of vc %d missing leader mark"
                     vc)
              else if marked && vc <> -1 && not expected then
                add
                  (Diag.errorf ~uop:id ~block ~region:region.Region.id
                     ~code:"VC006" "leader mark inside a chain of vc %d" vc)))
        regions;
      (* VC007 (info): empty virtual clusters. *)
      let population = Array.make (max nvc 0) 0 in
      Array.iter
        (fun vc ->
          if vc >= 0 && vc < nvc then population.(vc) <- population.(vc) + 1)
        annot.Annot.vc_of;
      Array.iteri
        (fun vc count ->
          if count = 0 then
            add
              (Diag.infof ~code:"VC007" "virtual cluster %d has no uops" vc))
        population;
      (* VC009 (info): per-region per-VC DDG connectivity.  Union-find
         over intra-VC edges; a VC whose region slice splits into
         several components groups dependence-unrelated code. *)
      List.iter
        (fun (region : Region.t) ->
          let g = Ddg.of_region region in
          let n = Ddg.node_count g in
          let parent = Array.init n Fun.id in
          let rec find i =
            if parent.(i) = i then i
            else begin
              parent.(i) <- find parent.(i);
              parent.(i)
            end
          in
          let union a b =
            let ra = find a and rb = find b in
            if ra <> rb then parent.(ra) <- rb
          in
          let vc_of node =
            let id = region.Region.uops.(node).Uop.id in
            annot.Annot.vc_of.(id)
          in
          Ddg.iter_edges g (fun e ->
              let v = vc_of e.Ddg.src in
              if v <> -1 && v = vc_of e.Ddg.dst then union e.Ddg.src e.Ddg.dst);
          (* Unions only join same-VC nodes, so each component's
             representative shares its members' vc: counting roots per
             vc counts components per vc. *)
          let components = Array.make (max nvc 0) 0 in
          for node = 0 to n - 1 do
            let v = vc_of node in
            if v >= 0 && v < nvc && find node = node then
              components.(v) <- components.(v) + 1
          done;
          Array.iteri
            (fun v c ->
              if c > 1 then
                add
                  (Diag.infof ~region:region.Region.id ~code:"VC009"
                     "vc %d splits into %d dependence components in region %d"
                     v c region.Region.id))
            components)
        regions;
      List.rev !diags

let check_summary ~program ~likely ~annot ~claimed ?(region_uops = 512) () =
  match ragged program annot with
  | _ :: _ as diags -> diags
  | [] ->
      let fresh =
        Compiler.Diagnostics.of_annot ~program ~likely ~annot ~region_uops ()
      in
      let diags = ref [] in
      let mismatch field got want =
        if got <> want then
          diags :=
            Diag.errorf ~code:"VC008"
              "claimed %s = %d, independent recomputation finds %d" field got
              want
            :: !diags
      in
      mismatch "static_uops" claimed.Compiler.Diagnostics.static_uops
        fresh.Compiler.Diagnostics.static_uops;
      mismatch "regions" claimed.Compiler.Diagnostics.regions
        fresh.Compiler.Diagnostics.regions;
      mismatch "chains" claimed.Compiler.Diagnostics.chains
        fresh.Compiler.Diagnostics.chains;
      mismatch "max_chain_length" claimed.Compiler.Diagnostics.max_chain_length
        fresh.Compiler.Diagnostics.max_chain_length;
      mismatch "cross_vc_edges" claimed.Compiler.Diagnostics.cross_vc_edges
        fresh.Compiler.Diagnostics.cross_vc_edges;
      mismatch "intra_vc_edges" claimed.Compiler.Diagnostics.intra_vc_edges
        fresh.Compiler.Diagnostics.intra_vc_edges;
      if
        Array.length claimed.Compiler.Diagnostics.vc_population
        <> Array.length fresh.Compiler.Diagnostics.vc_population
        || claimed.Compiler.Diagnostics.vc_population
           <> fresh.Compiler.Diagnostics.vc_population
      then
        diags :=
          Diag.errorf ~code:"VC008"
            "claimed vc population [%s] disagrees with recomputed [%s]"
            (String.concat " "
               (Array.to_list
                  (Array.map string_of_int
                     claimed.Compiler.Diagnostics.vc_population)))
            (String.concat " "
               (Array.to_list
                  (Array.map string_of_int
                     fresh.Compiler.Diagnostics.vc_population)))
          :: !diags;
      List.rev !diags
