(* Defining a custom workload profile: a synthetic "sparse solver" that
   is not part of SPEC CPU2000, synthesized with the same generator the
   suite uses, then evaluated under all five steering configurations.

     dune exec examples/custom_workload.exe *)

module Profile = Clusteer_workloads.Profile
module Pinpoints = Clusteer_workloads.Pinpoints
module Config = Clusteer_uarch.Config
module Stats = Clusteer_uarch.Stats
module Runner = Clusteer_harness.Runner
module Metrics = Clusteer_harness.Metrics
module Table = Clusteer_util.Table

(* A sparse iterative solver: FP-heavy, mixed strided/irregular memory
   with a large footprint, long dependence chains, predictable inner
   loops with occasional data-dependent branches. *)
let sparse_solver =
  {
    Profile.name = "custom.sparse-solver";
    suite = Profile.Spec_fp;
    seed = 20_260_706;
    fp_ratio = 0.55;
    mem_ratio = 0.38;
    ilp = 4;
    chain_len = 9;
    footprint_kb = 1536;
    stride_frac = 0.5;
    chase_frac = 0.2;
    loops = 3;
    block_size = 11;
    loop_trip = 24;
    hard_branch_frac = 0.08;
    phases = 3;
  }

let uops = 15_000

let () =
  Profile.validate sparse_solver;
  Fmt.pr "Custom workload %s: %d phases, %d micro-ops per phase@.@."
    sparse_solver.Profile.name sparse_solver.Profile.phases uops;
  let results =
    Runner.run_benchmark ~machine:Config.default_2c
      ~configs:(Clusteer.Configuration.table3 ~clusters:2)
      ~uops sparse_solver
  in
  (* Phase-weighted slowdown vs OP, as the paper reports. *)
  let configs =
    List.filter
      (fun n -> n <> "op")
      (List.map fst (List.hd results).Runner.runs)
  in
  let rows =
    List.map
      (fun config ->
        let slowdown =
          Runner.weighted_pair_metric results ~config_a:config ~config_b:"op"
            ~f:(fun a b -> Metrics.slowdown_pct ~baseline:b a)
        in
        let copies =
          Runner.weighted_metric results ~config ~f:(fun s ->
              float_of_int s.Stats.copies_generated)
        in
        [|
          config;
          Printf.sprintf "%+.2f%%" slowdown;
          Printf.sprintf "%.0f" copies;
        |])
      configs
  in
  print_string
    (Table.render
       ~header:[| "config"; "slowdown vs op"; "copies (weighted)" |]
       rows);
  Fmt.pr
    "@.Per-phase detail (phase : weight : op IPC : vc2 IPC):@.";
  List.iter
    (fun (r : Runner.point_result) ->
      let ipc name = Stats.ipc (List.assoc name r.Runner.runs) in
      Fmt.pr "  phase %d : %.2f : %.2f : %.2f@." r.Runner.point.Pinpoints.index
        r.Runner.point.Pinpoints.weight (ipc "op") (ipc "vc2"))
    results
