lib/util/stats.mli:
