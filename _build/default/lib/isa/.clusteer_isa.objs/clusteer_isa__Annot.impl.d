lib/isa/annot.ml: Array Printf
