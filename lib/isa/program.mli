(** Whole programs: a control-flow graph of {!Block}s plus the metadata
    the rest of the system needs (register budget, number of memory
    streams and branch models).

    Static micro-op ids are dense in [\[0, uop_count)], so compiler
    annotations ({!Annot}) and per-uop side tables are plain arrays. *)

type t = private {
  name : string;
  blocks : Block.t array;  (** indexed by block id *)
  entry : int;
  nregs_per_class : int;
  uop_count : int;
  stream_count : int;
  branch_model_count : int;
  uop_index : (int * int) array;  (** uop id -> (block id, position) *)
}

val uop : t -> int -> Uop.t
(** Look up a static micro-op by id. O(1). *)

val block_of_uop : t -> int -> int
(** Id of the block containing the given micro-op. *)

val index_in_block : t -> int -> int
(** Position of the micro-op inside its block. *)

val iter_uops : t -> (Uop.t -> unit) -> unit
(** All static micro-ops in (block id, position) order. *)

val static_size : t -> int
(** Total static micro-op count (same as [uop_count]). *)

val pp : Format.formatter -> t -> unit

val of_blocks_unchecked :
  ?name:string ->
  nregs_per_class:int ->
  ?stream_count:int ->
  ?branch_model_count:int ->
  blocks:Block.t array ->
  entry:int ->
  unit ->
  t
(** Assemble a program {b without} the {!Builder}'s validation: blocks
    are taken as given, [uop_count] is derived from the largest uop id
    present, and the uop index maps each id to its (last) occurrence.
    This deliberately admits ill-formed programs — it exists so the
    static analyzer ([lib/analysis]) can be tested against exactly the
    malformed inputs the Builder refuses to construct. Everything else
    should go through {!Builder}. *)

(** Imperative construction API. Typical use:
    {[
      let b = Builder.create ~name:"loop" ~nregs_per_class:32 () in
      let body = Builder.reserve_block b in
      let s = Builder.stream b and m = Builder.branch_model b in
      let u1 = Builder.uop b Opcode.Load ~dst:(Reg.int 1) ~srcs:[| Reg.int 0 |] ~stream:s () in
      ...
      Builder.define_block b body [ u1; ... ] ~succs:[ body; exit_blk ];
      Builder.finish b ~entry:body
    ]} *)
module Builder : sig
  type program = t
  type b

  val create : ?name:string -> nregs_per_class:int -> unit -> b

  val stream : b -> int
  (** Allocate a fresh memory-stream id. *)

  val branch_model : b -> int
  (** Allocate a fresh branch-model id. *)

  val uop :
    b ->
    Opcode.t ->
    ?dst:Reg.t ->
    ?srcs:Reg.t array ->
    ?stream:int ->
    ?branch_ref:int ->
    unit ->
    Uop.t
  (** Allocate a micro-op with a fresh dense id. Register indices must
      be below the builder's [nregs_per_class]. *)

  val reserve_block : b -> int
  (** Allocate a block id to be defined later (for loops and forward
      branches). *)

  val define_block : b -> int -> Uop.t list -> succs:int list -> unit
  (** Fill a reserved block. Each micro-op may appear in exactly one
      block. *)

  val add_block : b -> Uop.t list -> succs:int list -> int
  (** [reserve_block] + [define_block] in one step. *)

  val finish : b -> entry:int -> program
  (** Validate (all blocks defined, successors in range, every
      allocated micro-op placed exactly once) and seal the program. *)
end
