(** Criticality-aware steering (after the paper's [24], Salverda &
    Zilles): micro-ops marked critical follow their operands (zero
    communication on the critical path); everything else goes to the
    least-loaded cluster (balance from the slack pool).

    The criticality bits come from {!Clusteer_compiler.Crit_hints} —
    a compile-time oracle standing in for the runtime criticality
    predictors [24] assumes. *)

val make : critical:bool array -> unit -> Clusteer_uarch.Policy.t
