(** Minimal CSV output, for exporting figure series to plotting tools. *)

val escape : string -> string
(** Quote a field when it contains separators, quotes or newlines. *)

val line : string list -> string
(** One CSV record (no trailing newline). *)

val write : path:string -> header:string list -> string list list -> unit
(** Write a header plus rows to [path], overwriting. *)
