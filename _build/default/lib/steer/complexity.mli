(** Steering-logic complexity accounting (paper Table 1).

    Which hardware blocks each steering configuration needs. The two
    blocks the hybrid scheme eliminates — dependence checking and the
    vote unit — are "the most expensive parts, both in complexity and
    delay, of a hardware-only scheme" because they serialize steering
    within a decode bundle (§4.3). *)

type t = {
  name : string;
  dependence_check : bool;
  workload_balance : bool;
  vote_unit : bool;
  copy_generator : bool;
  serialized : bool;  (** must earlier bundle slots steer first? *)
}

val op : t
val one_cluster : t
val ob : t
val rhop : t
val vc : t
val all : t list

val table_rows : unit -> string array list
(** Rows for regenerating Table 1. *)
