(** Link-occupancy model for copy micro-ops.

    One {!t} belongs to one engine instance and tracks, per physical
    link of the topology, the next cycle the link is free. A transfer
    reserves every link on its deterministic route at the staggered
    cycle the copy traverses it (each hop holds its link for one
    cycle — the occupancy model of the seed's point-to-point fabric,
    applied per hop); if any link on the route is busy at its slot the
    whole transfer is refused and the copy retries from the copy queue
    next cycle, which is how link backpressure turns into
    [stall_copyq_full] upstream.

    On the point-to-point and bus topologies this is bit-identical to
    the seed engine's [link_free] matrix: same refusal condition, same
    single-cycle reservation, same arrival time. *)

type t

val create : Topology.t -> t
val topology : t -> Topology.t

val links : t -> int
(** Number of physical links (reservation slots) the model tracks. *)

val reset : t -> unit
(** Mark every link free; used by [Engine.reset]. *)

val try_transfer : t -> now:int -> from:int -> to_:int -> int
(** Attempt to start a copy from cluster [from] to [to_] on cycle
    [now]. Returns the route's total latency in cycles and reserves
    every hop on success; returns [-1] (reserving nothing) when any
    link on the route is occupied at the slot the copy would need it.
    [from <> to_] is required. The function never allocates. *)
