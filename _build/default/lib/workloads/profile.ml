type suite = Spec_int | Spec_fp

type t = {
  name : string;
  suite : suite;
  seed : int;
  fp_ratio : float;
  mem_ratio : float;
  ilp : int;
  chain_len : int;
  footprint_kb : int;
  stride_frac : float;
  chase_frac : float;
  loops : int;
  block_size : int;
  loop_trip : int;
  hard_branch_frac : float;
  phases : int;
}

let validate t =
  let frac name v =
    if v < 0.0 || v > 1.0 then
      invalid_arg (Printf.sprintf "Profile %s: %s out of [0,1]" t.name name)
  in
  let pos name v =
    if v <= 0 then
      invalid_arg (Printf.sprintf "Profile %s: %s must be positive" t.name name)
  in
  frac "fp_ratio" t.fp_ratio;
  frac "mem_ratio" t.mem_ratio;
  frac "stride_frac" t.stride_frac;
  frac "chase_frac" t.chase_frac;
  frac "hard_branch_frac" t.hard_branch_frac;
  if t.stride_frac +. t.chase_frac > 1.0 then
    invalid_arg (Printf.sprintf "Profile %s: stream fractions exceed 1" t.name);
  pos "ilp" t.ilp;
  pos "chain_len" t.chain_len;
  pos "footprint_kb" t.footprint_kb;
  pos "loops" t.loops;
  pos "block_size" t.block_size;
  pos "loop_trip" t.loop_trip;
  pos "phases" t.phases;
  if t.phases > 10 then
    invalid_arg (Printf.sprintf "Profile %s: more than 10 phases" t.name);
  if t.ilp > 12 then
    invalid_arg (Printf.sprintf "Profile %s: ilp too wide for register budget" t.name)

let suite_name = function Spec_int -> "SPECint" | Spec_fp -> "SPECfp"
