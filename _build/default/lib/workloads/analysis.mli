(** Dynamic workload characterisation.

    Measures, over a trace prefix, the quantities the profiles promise
    (instruction mix, branch behaviour, footprint coverage) — used by
    `csteer stats`, by the test suite to validate the generators, and
    when calibrating new profiles against published benchmark data. *)

type mix = {
  uops : int;
  mem_frac : float;  (** loads + stores *)
  load_frac : float;
  store_frac : float;
  fp_frac : float;  (** micro-ops going to the FP issue queues *)
  branch_frac : float;
  taken_frac : float;  (** of branches *)
  distinct_static : int;  (** static micro-ops touched *)
  distinct_lines : int;  (** distinct 64B memory lines touched *)
}

val measure : Synth.t -> uops:int -> seed:int -> mix

val pp : Format.formatter -> mix -> unit
