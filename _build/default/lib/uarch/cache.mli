(** Set-associative cache with true-LRU replacement.

    Tracks tags only (the reproduction never needs data values). Used
    for both L1D and L2. *)

type t

type outcome = Hit | Miss

val create : Config.cache -> t
val sets : t -> int
val ways : t -> int

val access : t -> addr:int -> write:bool -> outcome
(** Look up the line containing [addr]; on a miss the line is filled
    (allocate-on-write as well) and the LRU line evicted. Updates
    recency on hits. *)

val probe : t -> addr:int -> bool
(** Non-mutating lookup. *)

val touch : t -> addr:int -> unit
(** Fill / refresh the line without counting statistics (prefetches
    and warmup are not demand accesses). *)

val invalidate_all : t -> unit

(* Statistics *)
val hits : t -> int
val misses : t -> int
val reset_stats : t -> unit
