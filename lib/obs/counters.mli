(** Named counters and histograms that policies and the engine register
    introspection into.

    A registry is a flat namespace of monotonically increasing
    counters and power-of-two-bucketed histograms. Steering policies
    register what their decision logic knows and nothing else can see
    from the outside — VC remap counts, chain length at a leader
    re-steer, how many clusters tied a vote (a latency proxy for the
    serialized steering hardware of §2.1), copy-queue depth at
    insertion. The registry costs a hashtable lookup at registration
    time and a field increment per observation afterwards; it never
    influences simulation behaviour.

    [default] is the process-wide registry most callers use; tests or
    concurrent runs can isolate themselves with {!create}. *)

type registry
type counter
type histogram

val create : unit -> registry
val default : registry

val counter : ?registry:registry -> string -> counter
(** Intern by name: the same name always yields the same counter. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val histogram : ?registry:registry -> string -> histogram
(** Intern by name. Buckets are powers of two: bucket [i] counts
    observations [v] with [2^i <= v+1 < 2^(i+1)] (so 0 lands in bucket
    0, 1-2 in bucket 1, 3-6 in bucket 2, ...). *)

val observe : histogram -> int -> unit
(** Negative observations clamp to 0. *)

val hist_count : histogram -> int
val hist_sum : histogram -> int
val hist_max : histogram -> int
(** Largest value observed; 0 when empty. *)

val hist_mean : histogram -> float
val buckets : histogram -> int array
(** Bucket occupancy up to the highest non-empty bucket. *)

val bucket_lo : int -> int
(** Smallest value bucket [i] covers: [2^i - 1]. *)

val bucket_hi : int -> int
(** Largest value bucket [i] covers: [2^(i+1) - 2]. *)

val percentile : histogram -> float -> float
(** [percentile h p] estimates the [p]-quantile ([p] in \[0,1\],
    clamped) by linear interpolation inside the power-of-two bucket
    holding the rank, with the top clamped to the largest value
    actually observed. Exact when a bucket holds one distinct value;
    otherwise within the bucket's range. 0 for an empty histogram.
    Deterministic — a pure function of the bucket contents, so merged
    shard histograms report the same percentiles as a sequential
    run's. *)

val reset : registry -> unit
(** Zero every counter and histogram (registrations survive). *)

val merge : into:registry -> registry -> unit
(** [merge ~into src] adds every counter value and histogram of [src]
    into [into], interning names as needed. Counter values and
    histogram counts/sums/buckets add; histogram maxima take the max.
    Used by the parallel harness to fold per-shard registries into the
    process-wide one in deterministic (input) order; since merging is
    commutative over addition, a parallel run's merged totals equal a
    sequential run's. [src] is not modified. *)

val counters : registry -> (string * int) list
(** Name-sorted counter values. *)

val histograms : registry -> (string * histogram) list
(** Name-sorted histograms. *)

val to_json : registry -> Json.t
val pp : Format.formatter -> registry -> unit
