(** Search drivers over a {!Param_space}.

    All three drivers are deterministic: the candidate sequence is a
    pure function of (space, algorithm, seed, budget) and — for hill
    climbing — of the scores the evaluator returns, which are
    themselves deterministic (the harness's determinism contract). No
    candidate is ever evaluated twice. *)

type algo =
  | Grid  (** exhaustive lexicographic enumeration, budget-truncated *)
  | Random
      (** seeded uniform sampling without replacement (splitmix64);
          the paper-default candidate is always evaluated first *)
  | Hill
      (** coordinate-descent hill climbing from the paper default:
          probe every ±1 neighbour of the current best, move to the
          best improving one; on convergence, restart from a seeded
          random unseen candidate *)

val algo_to_string : algo -> string
val algo_of_string : string -> (algo, [ `Msg of string ]) result

val run :
  Param_space.t ->
  algo:algo ->
  seed:int ->
  max_evals:int ->
  eval:(int array -> float) ->
  (int array * float) list
(** Evaluate up to [max_evals] distinct candidates (higher score =
    better) and return every (candidate, score) pair in evaluation
    order. [seed] only matters to [Random] and [Hill]. *)
