(** Static-placement invariants for OB/RHOP annotations, and
    criticality-hint verification for the criticality-aware policy.

    Codes:
    - [PL001] — a physical cluster id outside [\[0, clusters)].
    - [PL002] — a micro-op left unplaced by a static scheme.
    - [PL003] — ragged annotation arrays. Reported alone.
    - [PL004] (info) — a region assigns more micro-ops of one issue
      queue class to one cluster than that queue holds; purely static
      pressure, so informational (dynamically the queue drains).
    - [PL005] — a claimed criticality hint disagrees with the
      recomputed region-DDG slack. *)

open Clusteer_isa
module Uarch = Clusteer_uarch

val codes : string list

val check :
  program:Program.t ->
  likely:(int -> int option) ->
  annot:Annot.t ->
  config:Uarch.Config.t ->
  ?region_uops:int ->
  unit ->
  Diag.t list
(** PL001–PL004 for a static-placement annotation. *)

val check_crit :
  program:Program.t ->
  likely:(int -> int option) ->
  critical:bool array ->
  ?region_uops:int ->
  ?slack_threshold:int ->
  unit ->
  Diag.t list
(** [PL005]: re-run the criticality analysis and flag hints that
    disagree with the recomputed slack (a hint is expected exactly when
    the micro-op's slack in its region DDG is at most
    [slack_threshold]). *)
