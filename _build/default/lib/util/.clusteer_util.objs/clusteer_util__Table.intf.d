lib/util/table.mli:
