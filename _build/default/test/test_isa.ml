(* Unit tests for clusteer_isa: registers, opcodes, micro-ops, blocks,
   programs and annotations. *)

open Clusteer_isa

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- Reg ------------------------------------------------------------ *)

let test_reg_encode_roundtrip () =
  let n = 32 in
  for code = 0 to (2 * n) - 1 do
    let r = Reg.decode ~nregs_per_class:n code in
    check_int "roundtrip" code (Reg.encode ~nregs_per_class:n r)
  done

let test_reg_encode_ranges () =
  check_int "int 0" 0 (Reg.encode ~nregs_per_class:16 (Reg.int 0));
  check_int "fp 0" 16 (Reg.encode ~nregs_per_class:16 (Reg.fp 0));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Reg.encode: index out of range") (fun () ->
      ignore (Reg.encode ~nregs_per_class:16 (Reg.int 16)))

let test_reg_compare () =
  check_bool "int < fp" true (Reg.compare (Reg.int 5) (Reg.fp 0) < 0);
  check_bool "equal" true (Reg.equal (Reg.int 3) (Reg.int 3));
  check_bool "not equal across class" false (Reg.equal (Reg.int 3) (Reg.fp 3))

let test_reg_to_string () =
  Alcotest.(check string) "int" "r4" (Reg.to_string (Reg.int 4));
  Alcotest.(check string) "fp" "f7" (Reg.to_string (Reg.fp 7))

(* ---- Opcode --------------------------------------------------------- *)

let test_opcode_latencies_positive () =
  Array.iter
    (fun op -> check_bool "latency > 0" true (Opcode.latency op > 0))
    Opcode.all

let test_opcode_queues () =
  check_bool "alu int queue" true (Opcode.queue Opcode.Int_alu = Opcode.Int_queue);
  check_bool "load int queue" true (Opcode.queue Opcode.Load = Opcode.Int_queue);
  check_bool "fp queue" true (Opcode.queue Opcode.Fp_mul = Opcode.Fp_queue);
  check_bool "copy queue" true (Opcode.queue Opcode.Copy = Opcode.Copy_queue)

let test_opcode_unpipelined_divides () =
  check_bool "idiv" false (Opcode.pipelined Opcode.Int_div);
  check_bool "fdiv" false (Opcode.pipelined Opcode.Fp_div);
  check_bool "alu" true (Opcode.pipelined Opcode.Int_alu)

let test_opcode_mem () =
  check_bool "load" true (Opcode.is_mem Opcode.Load);
  check_bool "store" true (Opcode.is_mem Opcode.Store);
  check_bool "branch" false (Opcode.is_mem Opcode.Branch)

(* ---- Uop ------------------------------------------------------------ *)

let test_uop_valid_alu () =
  let u =
    Uop.make ~id:0 ~opcode:Opcode.Int_alu ~dst:(Reg.int 1)
      ~srcs:[| Reg.int 2 |] ()
  in
  check_int "id" 0 u.Uop.id;
  check_bool "not mem" false (Uop.is_mem u)

let test_uop_store_no_dst () =
  Alcotest.check_raises "store with dst"
    (Invalid_argument "Uop.make (id 1): store/branch cannot have a destination")
    (fun () ->
      ignore
        (Uop.make ~id:1 ~opcode:Opcode.Store ~dst:(Reg.int 0) ~stream:0 ()))

let test_uop_load_needs_stream () =
  Alcotest.check_raises "load without stream"
    (Invalid_argument "Uop.make (id 2): memory micro-op must name a stream")
    (fun () -> ignore (Uop.make ~id:2 ~opcode:Opcode.Load ~dst:(Reg.int 0) ()))

let test_uop_alu_needs_dst () =
  Alcotest.check_raises "alu without dst"
    (Invalid_argument "Uop.make (id 3): computation needs a destination")
    (fun () -> ignore (Uop.make ~id:3 ~opcode:Opcode.Int_alu ()))

let test_uop_branch_needs_model () =
  Alcotest.check_raises "branch without model"
    (Invalid_argument "Uop.make (id 4): branch must name a behaviour model")
    (fun () -> ignore (Uop.make ~id:4 ~opcode:Opcode.Branch ()))

let test_uop_fp_class_check () =
  Alcotest.check_raises "fp writes int reg"
    (Invalid_argument "Uop.make (id 5): fp result must target an fp register")
    (fun () ->
      ignore (Uop.make ~id:5 ~opcode:Opcode.Fp_add ~dst:(Reg.int 0) ()))

let test_uop_too_many_srcs () =
  Alcotest.check_raises "3 sources"
    (Invalid_argument "Uop.make (id 6): at most two register sources")
    (fun () ->
      ignore
        (Uop.make ~id:6 ~opcode:Opcode.Int_alu ~dst:(Reg.int 0)
           ~srcs:[| Reg.int 1; Reg.int 2; Reg.int 3 |] ()))

let test_uop_non_mem_no_stream () =
  Alcotest.check_raises "alu with stream"
    (Invalid_argument "Uop.make (id 7): non-memory micro-op cannot name a stream")
    (fun () ->
      ignore (Uop.make ~id:7 ~opcode:Opcode.Int_alu ~dst:(Reg.int 0) ~stream:0 ()))

(* ---- Block ----------------------------------------------------------- *)

let branch ~id ~model =
  Uop.make ~id ~opcode:Opcode.Branch ~srcs:[| Reg.int 0 |] ~branch_ref:model ()

let alu ~id = Uop.make ~id ~opcode:Opcode.Int_alu ~dst:(Reg.int 0) ()

let test_block_fallthrough () =
  let b = Block.make ~id:0 ~uops:[| alu ~id:0 |] ~succs:[| 1 |] in
  Alcotest.(check (option pass)) "no terminator" None (Block.terminator b)

let test_block_branch_terminator () =
  let b =
    Block.make ~id:0
      ~uops:[| alu ~id:0; branch ~id:1 ~model:0 |]
      ~succs:[| 1; 2 |]
  in
  check_bool "has terminator" true (Block.terminator b <> None)

let test_block_branch_must_be_last () =
  Alcotest.check_raises "branch mid-block"
    (Invalid_argument "Block.make (block 0): branch must be the final micro-op")
    (fun () ->
      ignore
        (Block.make ~id:0
           ~uops:[| branch ~id:0 ~model:0; alu ~id:1 |]
           ~succs:[| 1; 2 |]))

let test_block_multisucc_needs_branch () =
  Alcotest.check_raises "two succs no branch"
    (Invalid_argument
       "Block.make (block 0): multi-successor block needs a terminating branch")
    (fun () -> ignore (Block.make ~id:0 ~uops:[| alu ~id:0 |] ~succs:[| 1; 2 |]))

let test_block_branch_needs_multisucc () =
  Alcotest.check_raises "branch with one succ"
    (Invalid_argument
       "Block.make (block 0): branch terminator requires at least two successors")
    (fun () ->
      ignore
        (Block.make ~id:0 ~uops:[| branch ~id:0 ~model:0 |] ~succs:[| 1 |]))

(* ---- Program builder -------------------------------------------------- *)

let build_diamond () =
  let b = Program.Builder.create ~name:"diamond" ~nregs_per_class:8 () in
  let m = Program.Builder.branch_model b in
  let entry = Program.Builder.reserve_block b in
  let left = Program.Builder.reserve_block b in
  let right = Program.Builder.reserve_block b in
  let exit_ = Program.Builder.reserve_block b in
  let u0 = Program.Builder.uop b Opcode.Int_alu ~dst:(Reg.int 0) () in
  let br =
    Program.Builder.uop b Opcode.Branch ~srcs:[| Reg.int 0 |] ~branch_ref:m ()
  in
  Program.Builder.define_block b entry [ u0; br ] ~succs:[ left; right ];
  let u1 = Program.Builder.uop b Opcode.Int_alu ~dst:(Reg.int 1) () in
  Program.Builder.define_block b left [ u1 ] ~succs:[ exit_ ];
  let u2 = Program.Builder.uop b Opcode.Int_alu ~dst:(Reg.int 2) () in
  Program.Builder.define_block b right [ u2 ] ~succs:[ exit_ ];
  Program.Builder.define_block b exit_ [] ~succs:[];
  Program.Builder.finish b ~entry

let test_program_diamond_shape () =
  let p = build_diamond () in
  check_int "blocks" 4 (Array.length p.Program.blocks);
  check_int "uops" 4 p.Program.uop_count;
  check_int "branch models" 1 p.Program.branch_model_count;
  check_int "streams" 0 p.Program.stream_count

let test_program_uop_lookup () =
  let p = build_diamond () in
  for id = 0 to p.Program.uop_count - 1 do
    let u = Program.uop p id in
    check_int "dense ids" id u.Uop.id
  done;
  check_int "uop 2 in block 1" 1 (Program.block_of_uop p 2);
  check_int "position" 0 (Program.index_in_block p 2)

let test_program_iter_covers_all () =
  let p = build_diamond () in
  let seen = ref 0 in
  Program.iter_uops p (fun _ -> incr seen);
  check_int "covers all" p.Program.uop_count !seen

let test_builder_rejects_unplaced_uop () =
  let b = Program.Builder.create ~nregs_per_class:4 () in
  let _orphan = Program.Builder.uop b Opcode.Int_alu ~dst:(Reg.int 0) () in
  let blk = Program.Builder.add_block b [] ~succs:[] in
  Alcotest.check_raises "orphan uop"
    (Invalid_argument "Program.Builder.finish: micro-op 0 never placed")
    (fun () -> ignore (Program.Builder.finish b ~entry:blk))

let test_builder_rejects_double_placement () =
  let b = Program.Builder.create ~nregs_per_class:4 () in
  let u = Program.Builder.uop b Opcode.Int_alu ~dst:(Reg.int 0) () in
  let b1 = Program.Builder.add_block b [ u ] ~succs:[] in
  let _b2 = Program.Builder.add_block b [ u ] ~succs:[] in
  Alcotest.check_raises "double placement"
    (Invalid_argument "Program.Builder.finish: micro-op 0 placed twice")
    (fun () -> ignore (Program.Builder.finish b ~entry:b1))

let test_builder_rejects_bad_successor () =
  let b = Program.Builder.create ~nregs_per_class:4 () in
  let blk = Program.Builder.add_block b [] ~succs:[ 42 ] in
  Alcotest.check_raises "successor out of range"
    (Invalid_argument "Program.Builder.finish: successor 42 out of range")
    (fun () -> ignore (Program.Builder.finish b ~entry:blk))

let test_builder_rejects_register_over_budget () =
  let b = Program.Builder.create ~nregs_per_class:4 () in
  Alcotest.check_raises "register over budget"
    (Invalid_argument "Program.Builder: register r9 out of budget (4)")
    (fun () ->
      ignore (Program.Builder.uop b Opcode.Int_alu ~dst:(Reg.int 9) ()))

let test_builder_rejects_unknown_stream () =
  let b = Program.Builder.create ~nregs_per_class:4 () in
  Alcotest.check_raises "unknown stream"
    (Invalid_argument "Program.Builder.uop: unknown stream") (fun () ->
      ignore
        (Program.Builder.uop b Opcode.Load ~dst:(Reg.int 0) ~stream:3 ()))

(* ---- Annot ----------------------------------------------------------- *)

let test_annot_none_shape () =
  let a = Annot.none ~uop_count:5 in
  check_int "vc count" 0 a.Annot.virtual_clusters;
  check_int "vc unassigned" (-1) a.Annot.vc_of.(3);
  check_bool "no leaders" false (Array.exists Fun.id a.Annot.leader);
  Annot.validate a ~clusters:2

let test_annot_virtual_validation () =
  let a = Annot.create_virtual ~scheme:"vc" ~virtual_clusters:2 ~uop_count:3 in
  a.Annot.vc_of.(0) <- 1;
  a.Annot.leader.(0) <- true;
  Annot.validate a ~clusters:2;
  a.Annot.vc_of.(1) <- 5;
  Alcotest.check_raises "vc out of range"
    (Invalid_argument "Annot.validate: uop 1 has vc 5 out of range") (fun () ->
      Annot.validate a ~clusters:2)

let test_annot_leader_requires_vc () =
  let a = Annot.create_virtual ~scheme:"vc" ~virtual_clusters:2 ~uop_count:2 in
  a.Annot.leader.(0) <- true;
  Alcotest.check_raises "leader without vc"
    (Invalid_argument "Annot.validate: uop 0 is a leader without a vc")
    (fun () -> Annot.validate a ~clusters:2)

let test_annot_static_validation () =
  let a = Annot.create_static ~scheme:"ob" ~uop_count:2 in
  a.Annot.cluster_of.(0) <- 1;
  Annot.validate a ~clusters:2;
  a.Annot.cluster_of.(1) <- 2;
  Alcotest.check_raises "cluster out of range"
    (Invalid_argument "Annot.validate: uop 1 has cluster 2 out of range")
    (fun () -> Annot.validate a ~clusters:2)

let test_annot_chain_count () =
  let a = Annot.create_virtual ~scheme:"vc" ~virtual_clusters:2 ~uop_count:4 in
  Array.iteri (fun i _ -> a.Annot.vc_of.(i) <- 0) a.Annot.vc_of;
  a.Annot.leader.(0) <- true;
  a.Annot.leader.(2) <- true;
  check_int "two chains" 2 (Annot.chain_count a)

(* ---- printers ---------------------------------------------------------- *)

let test_pretty_printers_smoke () =
  let u =
    Uop.make ~id:3 ~opcode:Opcode.Int_alu ~dst:(Reg.int 1)
      ~srcs:[| Reg.int 2 |] ()
  in
  let s = Format.asprintf "%a" Uop.pp u in
  check_bool "uop pp mentions id" true (String.length s > 0 && String.contains s '3');
  let p = build_diamond () in
  let s = Format.asprintf "%a" Program.pp p in
  check_bool "program pp nonempty" true (String.length s > 50);
  let s = Format.asprintf "%a" Block.pp p.Program.blocks.(0) in
  check_bool "block pp nonempty" true (String.length s > 10)

(* ---- Annot_io --------------------------------------------------------- *)

let test_annot_io_roundtrip_virtual () =
  let a = Annot.create_virtual ~scheme:"vc" ~virtual_clusters:2 ~uop_count:4 in
  a.Annot.vc_of.(0) <- 1;
  a.Annot.vc_of.(2) <- 0;
  a.Annot.leader.(0) <- true;
  let b = Annot_io.of_string (Annot_io.to_string a) in
  Alcotest.(check string) "scheme" a.Annot.scheme b.Annot.scheme;
  check_int "vcs" a.Annot.virtual_clusters b.Annot.virtual_clusters;
  Alcotest.(check (array int)) "vc_of" a.Annot.vc_of b.Annot.vc_of;
  Alcotest.(check (array bool)) "leader" a.Annot.leader b.Annot.leader;
  Alcotest.(check (array int)) "cluster_of" a.Annot.cluster_of b.Annot.cluster_of

let test_annot_io_roundtrip_static () =
  let a = Annot.create_static ~scheme:"rhop" ~uop_count:3 in
  a.Annot.cluster_of.(1) <- 1;
  let b = Annot_io.of_string (Annot_io.to_string a) in
  Alcotest.(check (array int)) "cluster_of" a.Annot.cluster_of b.Annot.cluster_of;
  check_int "no vcs" 0 b.Annot.virtual_clusters

let test_annot_io_file_roundtrip () =
  let a = Annot.create_virtual ~scheme:"vc" ~virtual_clusters:3 ~uop_count:5 in
  Array.iteri (fun i _ -> a.Annot.vc_of.(i) <- i mod 3) a.Annot.vc_of;
  a.Annot.leader.(0) <- true;
  let path = Filename.temp_file "clusteer_annot" ".txt" in
  Annot_io.save ~path a;
  let b = Annot_io.load ~path in
  Sys.remove path;
  Alcotest.(check (array int)) "vc_of" a.Annot.vc_of b.Annot.vc_of

let test_annot_io_rejects_garbage () =
  Alcotest.check_raises "bad magic"
    (Failure "Annot_io: line 1: bad magic") (fun () ->
      ignore (Annot_io.of_string "nope\nscheme x\nvcs 0\nuops 0\n"));
  Alcotest.check_raises "truncated"
    (Failure "Annot_io: truncated header") (fun () ->
      ignore (Annot_io.of_string "clusteer-annot 1\n"));
  Alcotest.check_raises "row count"
    (Failure "Annot_io: expected 2 rows, found 0") (fun () ->
      ignore
        (Annot_io.of_string "clusteer-annot 1\nscheme x\nvcs 0\nuops 2\n"))

let () =
  Alcotest.run "clusteer_isa"
    [
      ( "reg",
        [
          Alcotest.test_case "encode roundtrip" `Quick test_reg_encode_roundtrip;
          Alcotest.test_case "encode ranges" `Quick test_reg_encode_ranges;
          Alcotest.test_case "compare" `Quick test_reg_compare;
          Alcotest.test_case "to_string" `Quick test_reg_to_string;
        ] );
      ( "opcode",
        [
          Alcotest.test_case "latencies" `Quick test_opcode_latencies_positive;
          Alcotest.test_case "queues" `Quick test_opcode_queues;
          Alcotest.test_case "unpipelined" `Quick test_opcode_unpipelined_divides;
          Alcotest.test_case "memory ops" `Quick test_opcode_mem;
        ] );
      ( "uop",
        [
          Alcotest.test_case "valid alu" `Quick test_uop_valid_alu;
          Alcotest.test_case "store no dst" `Quick test_uop_store_no_dst;
          Alcotest.test_case "load needs stream" `Quick test_uop_load_needs_stream;
          Alcotest.test_case "alu needs dst" `Quick test_uop_alu_needs_dst;
          Alcotest.test_case "branch needs model" `Quick test_uop_branch_needs_model;
          Alcotest.test_case "fp class check" `Quick test_uop_fp_class_check;
          Alcotest.test_case "max two sources" `Quick test_uop_too_many_srcs;
          Alcotest.test_case "no stream on alu" `Quick test_uop_non_mem_no_stream;
        ] );
      ( "block",
        [
          Alcotest.test_case "fallthrough" `Quick test_block_fallthrough;
          Alcotest.test_case "branch terminator" `Quick test_block_branch_terminator;
          Alcotest.test_case "branch must be last" `Quick test_block_branch_must_be_last;
          Alcotest.test_case "multisucc needs branch" `Quick test_block_multisucc_needs_branch;
          Alcotest.test_case "branch needs multisucc" `Quick test_block_branch_needs_multisucc;
        ] );
      ( "program",
        [
          Alcotest.test_case "diamond shape" `Quick test_program_diamond_shape;
          Alcotest.test_case "uop lookup" `Quick test_program_uop_lookup;
          Alcotest.test_case "iter covers all" `Quick test_program_iter_covers_all;
          Alcotest.test_case "rejects orphan" `Quick test_builder_rejects_unplaced_uop;
          Alcotest.test_case "rejects double placement" `Quick test_builder_rejects_double_placement;
          Alcotest.test_case "rejects bad successor" `Quick test_builder_rejects_bad_successor;
          Alcotest.test_case "register budget" `Quick test_builder_rejects_register_over_budget;
          Alcotest.test_case "unknown stream" `Quick test_builder_rejects_unknown_stream;
        ] );
      ( "printers",
        [ Alcotest.test_case "smoke" `Quick test_pretty_printers_smoke ] );
      ( "annot-io",
        [
          Alcotest.test_case "roundtrip virtual" `Quick test_annot_io_roundtrip_virtual;
          Alcotest.test_case "roundtrip static" `Quick test_annot_io_roundtrip_static;
          Alcotest.test_case "file roundtrip" `Quick test_annot_io_file_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_annot_io_rejects_garbage;
        ] );
      ( "annot",
        [
          Alcotest.test_case "none shape" `Quick test_annot_none_shape;
          Alcotest.test_case "virtual validation" `Quick test_annot_virtual_validation;
          Alcotest.test_case "leader requires vc" `Quick test_annot_leader_requires_vc;
          Alcotest.test_case "static validation" `Quick test_annot_static_validation;
          Alcotest.test_case "chain count" `Quick test_annot_chain_count;
        ] );
    ]
