module Json = Clusteer_obs.Json

type command =
  | Simulate of { id : int; deadline_ms : float option; request : Request.t }
  | Stats
  | Metrics
  | Ping
  | Shutdown

type reject_reason = Queue_full | Timeout | Check_failed of string

type response =
  | Result of { id : int; hash : string; cached : bool; result : Json.t }
  | Rejected of { id : int; reason : reject_reason }
  | Error_reply of { id : int; message : string }
  | Stats_reply of Json.t
  | Metrics_reply of string
  | Pong
  | Bye

let reject_reason_name = function
  | Queue_full -> "queue_full"
  | Timeout -> "timeout"
  | Check_failed _ -> "check_failed"

(* Deadlines are delivery metadata, not request content; they are the
   one place the wire format carries a decimal float. Encode with
   enough digits to round-trip ms-scale values exactly for practical
   purposes; nothing hashes these bytes. *)
let deadline_json = function
  | None -> Json.Null
  | Some ms -> Json.Float ms

let encode_command = function
  | Simulate { id; deadline_ms; request } ->
      Json.to_string
        (Json.Obj
           [
             ("op", Json.Str "simulate");
             ("id", Json.Int id);
             ("deadline_ms", deadline_json deadline_ms);
             ("request", Request.canonical request);
           ])
  | Stats -> {|{"op":"stats"}|}
  | Metrics -> {|{"op":"metrics"}|}
  | Ping -> {|{"op":"ping"}|}
  | Shutdown -> {|{"op":"shutdown"}|}

let ( let* ) = Result.bind

let parse_command line =
  let* doc = Json.of_string line in
  match Json.member "op" doc with
  | Some (Json.Str "simulate") ->
      let id =
        Option.value ~default:0 (Option.bind (Json.member "id" doc) Json.to_int)
      in
      let deadline_ms =
        Option.bind (Json.member "deadline_ms" doc) Json.to_float
      in
      let* request =
        match Json.member "request" doc with
        | Some r -> Request.of_json r
        | None -> Error "simulate: missing request"
      in
      Ok (Simulate { id; deadline_ms; request })
  | Some (Json.Str "stats") -> Ok Stats
  | Some (Json.Str "metrics") -> Ok Metrics
  | Some (Json.Str "ping") -> Ok Ping
  | Some (Json.Str "shutdown") -> Ok Shutdown
  | Some (Json.Str op) -> Error (Printf.sprintf "unknown op %S" op)
  | _ -> Error "missing op field"

let encode_response = function
  | Result { id; hash; cached; result } ->
      Json.to_string
        (Json.Obj
           [
             ("id", Json.Int id);
             ("status", Json.Str "ok");
             ("hash", Json.Str hash);
             ("cached", Json.Bool cached);
             ("result", result);
           ])
  | Rejected { id; reason } ->
      Json.to_string
        (Json.Obj
           ([
              ("id", Json.Int id);
              ("status", Json.Str "rejected");
              ("reason", Json.Str (reject_reason_name reason));
            ]
           @
           match reason with
           | Check_failed message -> [ ("message", Json.Str message) ]
           | Queue_full | Timeout -> []))
  | Error_reply { id; message } ->
      Json.to_string
        (Json.Obj
           [
             ("id", Json.Int id);
             ("status", Json.Str "error");
             ("message", Json.Str message);
           ])
  | Stats_reply stats ->
      Json.to_string
        (Json.Obj [ ("status", Json.Str "ok"); ("stats", stats) ])
  | Metrics_reply text ->
      (* The exposition text rides as one JSON string — RFC 8259
         escaping keeps the newline-JSON framing intact. *)
      Json.to_string
        (Json.Obj [ ("status", Json.Str "ok"); ("metrics", Json.Str text) ])
  | Pong -> {|{"status":"ok","pong":true}|}
  | Bye -> {|{"status":"ok","bye":true}|}

let encode_result_line ~id ~hash ~cached ~result =
  Printf.sprintf {|{"id":%d,"status":"ok","hash":%s,"cached":%b,"result":%s}|}
    id
    (Json.to_string (Json.Str hash))
    cached result

let parse_response line =
  let* doc = Json.of_string line in
  let id =
    Option.value ~default:0 (Option.bind (Json.member "id" doc) Json.to_int)
  in
  match Option.bind (Json.member "status" doc) Json.to_str with
  | Some "ok" -> (
      match Json.member "result" doc with
      | Some result ->
          let hash =
            Option.value ~default:""
              (Option.bind (Json.member "hash" doc) Json.to_str)
          in
          let cached =
            Option.value ~default:false
              (Option.bind (Json.member "cached" doc) Json.to_bool)
          in
          Ok (Result { id; hash; cached; result })
      | None -> (
          match Json.member "stats" doc with
          | Some stats -> Ok (Stats_reply stats)
          | None -> (
              match
                Option.bind (Json.member "metrics" doc) Json.to_str
              with
              | Some text -> Ok (Metrics_reply text)
              | None ->
                  if Json.member "pong" doc <> None then Ok Pong
                  else if Json.member "bye" doc <> None then Ok Bye
                  else Error "ok response without payload")))
  | Some "rejected" -> (
      match Option.bind (Json.member "reason" doc) Json.to_str with
      | Some "queue_full" -> Ok (Rejected { id; reason = Queue_full })
      | Some "timeout" -> Ok (Rejected { id; reason = Timeout })
      | Some "check_failed" ->
          let message =
            Option.value ~default:"request failed validation"
              (Option.bind (Json.member "message" doc) Json.to_str)
          in
          Ok (Rejected { id; reason = Check_failed message })
      | _ -> Error "rejected response without a known reason")
  | Some "error" ->
      let message =
        Option.value ~default:"unknown error"
          (Option.bind (Json.member "message" doc) Json.to_str)
      in
      Ok (Error_reply { id; message })
  | _ -> Error "missing status field"
