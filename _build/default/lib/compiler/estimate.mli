(** Static completion-time estimation.

    The shared model behind the greedy placement passes (OB and the
    VC partitioner): for a candidate placement of a DDG node into a
    part (physical cluster for OB, virtual cluster for VC), estimate
    when the instruction would complete, "based on the dependences,
    the latencies, and the resource contention in the intended
    cluster" (paper §4.2). The estimate is deliberately static — it
    knows nothing about cache misses or dynamic issue order, which is
    exactly the inaccuracy the hybrid scheme's runtime mapping
    compensates for.

    The estimator is imperative: nodes are committed one at a time in
    topological (program) order with {!place}; {!estimate} prices any
    part for the next node. *)

type t

val create :
  parts:int ->
  issue_width:float ->
  comm_latency:float ->
  ?contention_scale:(int -> float) ->
  Clusteer_ddg.Ddg.t ->
  t
(** [issue_width] is the per-part issue bandwidth used to convert
    accumulated work into contention delay; [comm_latency] the cost of
    a cross-part operand; [contention_scale node] (default [fun _ ->
    1.0]) scales the contention term per node — the VC pass uses it to
    let critical instructions ignore imbalance and chase their
    producers. *)

val estimate : t -> node:int -> part:int -> float
(** Estimated completion time of [node] if placed in [part]. All its
    DDG predecessors must already be placed. *)

val place : t -> node:int -> part:int -> unit
(** Commit the node, updating its completion time and the part's
    accumulated work. *)

val part_of : t -> int -> int
(** Committed part of a node, [-1] when unplaced. *)

val completion : t -> int -> float
(** Committed completion time; 0 when unplaced. *)

val load : t -> int -> float
(** Accumulated work (summed latencies) of a part. *)

val lightest_part : t -> int
(** Part with the least accumulated work (lowest index on ties). *)
