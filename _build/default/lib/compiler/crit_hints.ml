open Clusteer_isa
open Clusteer_ddg

let compute ~program ~likely ?(region_uops = 512) ?(slack_threshold = 0) () =
  let critical = Array.make program.Program.uop_count false in
  let regions = Region.build ~program ~likely ~max_uops:region_uops in
  List.iter
    (fun region ->
      let g = Ddg.of_region region in
      let crit = Critical.analyze g in
      Array.iteri
        (fun node (u : Uop.t) ->
          if crit.Critical.slack.(node) <= slack_threshold then
            critical.(u.Uop.id) <- true)
        region.Region.uops)
    regions;
  critical
