(* Hand-written micro-kernels as steering ground truth: each kernel's
   behaviour under clustering is understood analytically, so the
   simulator's results can be sanity-checked by eye.

     dune exec examples/kernels_study.exe

   Expectations:
   - dot / chase are serial: one-cluster costs nothing (it can even be
     the optimum — any spreading only adds copies to the chain);
   - fib is serial but three-wide per iteration, so one cluster's
     2-wide issue pinches a little;
   - daxpy and histogram are embarrassingly parallel: one-cluster
     roughly halves their throughput and good steering recovers it;
   - matmul is bound by the shared data-cache read ports (2 loads per
     cycle, Table 2), so clustering barely matters for it. *)

module Config = Clusteer_uarch.Config
module Stats = Clusteer_uarch.Stats
module Runner = Clusteer_harness.Runner
module Kernels = Clusteer_workloads.Kernels
module Analysis = Clusteer_workloads.Analysis
module Table = Clusteer_util.Table

let uops = 12_000

let () =
  Fmt.pr "Micro-kernel steering study (%d micro-ops each, 2 clusters)@.@."
    uops;
  let header =
    [| "kernel"; "op IPC"; "one-cl"; "vc2"; "vc2 copies"; "mix" |]
  in
  let rows =
    List.map
      (fun (name, kernel) ->
        let runs =
          Runner.run_workload ~machine:Config.default_2c
            ~configs:
              [
                Clusteer.Configuration.Op;
                Clusteer.Configuration.One_cluster;
                Clusteer.Configuration.Vc { virtual_clusters = 2 };
              ]
            ~uops kernel
        in
        let stats n = List.assoc n runs in
        let op = stats "op" in
        let slow n =
          (float_of_int (stats n).Stats.cycles
           /. float_of_int op.Stats.cycles
          -. 1.0)
          *. 100.0
        in
        let mix = Analysis.measure kernel ~uops:5_000 ~seed:2 in
        [|
          name;
          Printf.sprintf "%.2f" (Stats.ipc op);
          Printf.sprintf "%+.1f%%" (slow "one-cluster");
          Printf.sprintf "%+.1f%%" (slow "vc2");
          string_of_int (stats "vc2").Stats.copies_generated;
          Printf.sprintf "%.0f%%mem %.0f%%fp" (100. *. mix.Analysis.mem_frac)
            (100. *. mix.Analysis.fp_frac);
        |])
      Kernels.all
  in
  print_string (Table.render ~header rows);
  Fmt.pr
    "@.one-cl / vc2 columns: slowdown vs the OP baseline on the same kernel.@."
