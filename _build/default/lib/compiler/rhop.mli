(** RHOP: region-based hierarchical operation partitioning (Chu, Fan &
    Mahlke, PLDI'03 — paper §3.3 and Table 3).

    Cluster assignment is formulated as weighted graph partitioning and
    solved with the multilevel scheme: slack-derived weights make
    critical dependences heavy (so coarsening groups critical-path
    operations), and refinement trades edge cut against per-cluster
    workload. The result is a *static physical* assignment, like OB —
    its strength is balance, its weakness communication on the critical
    path, which is precisely the trade-off Figure 6(a.2)/(b.2) shows. *)

open Clusteer_isa

val weights_of_ddg :
  Clusteer_ddg.Ddg.t -> Clusteer_graphpart.Wgraph.t
(** Node weight = 1 (issue-slot occupancy); edge weight =
    [1 + 4/(1 + slack)] where the edge's slack is the smaller of its
    endpoints' slacks. *)

val assign_region :
  ?seed:int -> Clusteer_ddg.Ddg.t -> clusters:int -> int array

val compile :
  program:Program.t ->
  likely:(int -> int option) ->
  clusters:int ->
  ?region_uops:int ->
  ?seed:int ->
  unit ->
  Annot.t
(** Whole-program RHOP annotation (scheme ["rhop"]). *)
