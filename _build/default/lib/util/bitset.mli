(** Small immutable bitsets backed by a native [int].

    Used for cluster masks: which physical clusters currently hold a copy
    of a given register value. Supports at most [Sys.int_size - 1] = 62
    members, far above any realistic cluster count. *)

type t = private int

val empty : t
val singleton : int -> t

val full : int -> t
(** [full n] contains [0 .. n-1]. *)

val of_mask : int -> t
(** Reinterpret a raw bit mask (must be non-negative). *)

val add : t -> int -> t
val remove : t -> int -> t
val mem : t -> int -> bool
val union : t -> t -> t
val inter : t -> t -> t
val cardinal : t -> int
val is_empty : t -> bool
val iter : (int -> unit) -> t -> unit
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
val to_list : t -> int list
val of_list : int list -> t
val choose : t -> int option
(** Smallest member, if any. *)

val pp : Format.formatter -> t -> unit
