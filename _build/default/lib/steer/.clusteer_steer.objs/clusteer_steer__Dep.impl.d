lib/steer/dep.ml: Array Clusteer_uarch Clusteer_util Policy
