lib/compiler/estimate.mli: Clusteer_ddg
