lib/workloads/pinpoints.mli: Profile
