type counter = { c_name : string; mutable value : int }

let max_buckets = 31

type histogram = {
  h_name : string;
  mutable count : int;
  mutable sum : int;
  mutable max_v : int;
  bucket : int array;  (* power-of-two buckets over v+1 *)
}

type registry = {
  counters_tbl : (string, counter) Hashtbl.t;
  histograms_tbl : (string, histogram) Hashtbl.t;
}

let create () =
  { counters_tbl = Hashtbl.create 16; histograms_tbl = Hashtbl.create 16 }

let default = create ()

let counter ?(registry = default) name =
  match Hashtbl.find_opt registry.counters_tbl name with
  | Some c -> c
  | None ->
      let c = { c_name = name; value = 0 } in
      Hashtbl.add registry.counters_tbl name c;
      c

let incr c = c.value <- c.value + 1
let add c n = c.value <- c.value + n
let value c = c.value

let histogram ?(registry = default) name =
  match Hashtbl.find_opt registry.histograms_tbl name with
  | Some h -> h
  | None ->
      let h =
        {
          h_name = name;
          count = 0;
          sum = 0;
          max_v = 0;
          bucket = Array.make max_buckets 0;
        }
      in
      Hashtbl.add registry.histograms_tbl name h;
      h

let bucket_of v =
  (* floor log2 of v+1, clamped to the bucket range. *)
  let rec go x acc = if x <= 1 then acc else go (x lsr 1) (acc + 1) in
  min (max_buckets - 1) (go (v + 1) 0)

let observe h v =
  let v = max 0 v in
  h.count <- h.count + 1;
  h.sum <- h.sum + v;
  if v > h.max_v then h.max_v <- v;
  let b = bucket_of v in
  h.bucket.(b) <- h.bucket.(b) + 1

let hist_count h = h.count
let hist_sum h = h.sum
let hist_max h = h.max_v

let hist_mean h =
  if h.count = 0 then 0.0 else float_of_int h.sum /. float_of_int h.count

let buckets h =
  let hi = ref 0 in
  Array.iteri (fun i n -> if n > 0 then hi := i) h.bucket;
  Array.sub h.bucket 0 (!hi + 1)

(* Bucket [i] covers values v with 2^i <= v+1 < 2^(i+1). *)
let bucket_lo i = (1 lsl i) - 1
let bucket_hi i = (1 lsl (i + 1)) - 2

let percentile h p =
  if h.count = 0 then 0.0
  else begin
    let p = Float.max 0.0 (Float.min 1.0 p) in
    let rank = p *. float_of_int h.count in
    let result = ref (float_of_int h.max_v) in
    let cum = ref 0.0 in
    (try
       for i = 0 to max_buckets - 1 do
         let n = h.bucket.(i) in
         if n > 0 then begin
           let cum' = !cum +. float_of_int n in
           if cum' >= rank then begin
             (* Linear interpolation inside the bucket's value range,
                clamped to the largest value actually observed. *)
             let lo = float_of_int (bucket_lo i) in
             let hi = float_of_int (min (bucket_hi i) h.max_v) in
             let frac = (rank -. !cum) /. float_of_int n in
             result := lo +. (frac *. (hi -. lo));
             raise Exit
           end;
           cum := cum'
         end
       done
     with Exit -> ());
    !result
  end

let reset registry =
  Hashtbl.iter (fun _ c -> c.value <- 0) registry.counters_tbl;
  Hashtbl.iter
    (fun _ h ->
      h.count <- 0;
      h.sum <- 0;
      h.max_v <- 0;
      Array.fill h.bucket 0 max_buckets 0)
    registry.histograms_tbl

let merge ~into src =
  (* Name-sorted iteration keeps the intern order (and therefore any
     later registration) deterministic regardless of how the source
     registry was populated. *)
  Hashtbl.fold (fun name c acc -> (name, c) :: acc) src.counters_tbl []
  |> List.sort compare
  |> List.iter (fun (name, c) -> add (counter ~registry:into name) c.value);
  Hashtbl.fold (fun name h acc -> (name, h) :: acc) src.histograms_tbl []
  |> List.sort compare
  |> List.iter (fun (name, h) ->
         let dst = histogram ~registry:into name in
         dst.count <- dst.count + h.count;
         dst.sum <- dst.sum + h.sum;
         if h.max_v > dst.max_v then dst.max_v <- h.max_v;
         Array.iteri
           (fun i n -> dst.bucket.(i) <- dst.bucket.(i) + n)
           h.bucket)

let counters registry =
  Hashtbl.fold (fun name c acc -> (name, c.value) :: acc) registry.counters_tbl []
  |> List.sort compare

let histograms registry =
  Hashtbl.fold (fun name h acc -> (name, h) :: acc) registry.histograms_tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let to_json registry =
  let hist_json h =
    Json.Obj
      [
        ("count", Json.Int h.count);
        ("sum", Json.Int h.sum);
        ("max", Json.Int h.max_v);
        ("mean", Json.Float (hist_mean h));
        ("p50", Json.Float (percentile h 0.5));
        ("p90", Json.Float (percentile h 0.9));
        ("p99", Json.Float (percentile h 0.99));
        ( "buckets",
          Json.List
            (Array.to_list (Array.map (fun n -> Json.Int n) (buckets h))) );
      ]
  in
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) (counters registry))
      );
      ( "histograms",
        Json.Obj (List.map (fun (n, h) -> (n, hist_json h)) (histograms registry))
      );
    ]

let pp ppf registry =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (n, v) -> Format.fprintf ppf "%-36s %12d@," n v)
    (counters registry);
  List.iter
    (fun (n, h) ->
      Format.fprintf ppf "%-36s n=%d mean=%.2f p50=%.1f p90=%.1f p99=%.1f max=%d@,"
        n h.count (hist_mean h) (percentile h 0.5) (percentile h 0.9)
        (percentile h 0.99) h.max_v)
    (histograms registry);
  Format.fprintf ppf "@]"
