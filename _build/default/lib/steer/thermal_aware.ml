open Clusteer_uarch

let make ?(decay = 0.999) ?(weight = 0.5) () =
  if decay <= 0.0 || decay >= 1.0 then
    invalid_arg "Thermal_aware.make: decay must be in (0,1)";
  let heat = ref [||] in
  let decide view _duop =
    let clusters = view.Policy.clusters in
    if Array.length !heat <> clusters then heat := Array.make clusters 0.0;
    let h = !heat in
    for c = 0 to clusters - 1 do
      h.(c) <- h.(c) *. decay
    done;
    let best = ref 0 and best_score = ref infinity in
    for c = 0 to clusters - 1 do
      let score = float_of_int (view.Policy.inflight c) +. (weight *. h.(c)) in
      if score < !best_score then begin
        best := c;
        best_score := score
      end
    done;
    h.(!best) <- h.(!best) +. 1.0;
    Policy.Dispatch_to !best
  in
  {
    Policy.name = "thermal";
    decide;
    uses_dependence_check = false;
    uses_vote_unit = false;
  }
