lib/steer/crit.ml: Array Clusteer_trace Clusteer_uarch Clusteer_util Dynuop Policy
