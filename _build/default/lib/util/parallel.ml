let default_domains () = min 8 (Domain.recommended_domain_count ())

let map ?domains f xs =
  let domains =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  let input = Array.of_list xs in
  let n = Array.length input in
  if domains <= 1 || n <= 1 then List.map f xs
  else begin
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n && Atomic.get failure = None then begin
          (match f input.(i) with
          | v -> results.(i) <- Some v
          | exception e ->
              (* First failure wins; others are dropped. *)
              ignore (Atomic.compare_and_set failure None (Some e)));
          loop ()
        end
      in
      loop ()
    in
    let helpers =
      List.init (min (domains - 1) (n - 1)) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join helpers;
    (match Atomic.get failure with
    | Some e -> raise e
    | None -> ());
    Array.to_list
      (Array.map
         (function Some v -> v | None -> assert false)
         results)
  end
