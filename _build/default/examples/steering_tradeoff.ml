(* The copy/balance trade-off (paper §5.3) on a handful of SPEC-like
   workloads: every steering configuration is run on the identical
   trace, and copies, allocation stalls and IPC are tabulated — the
   data behind Figure 6.

     dune exec examples/steering_tradeoff.exe *)

module Config = Clusteer_uarch.Config
module Stats = Clusteer_uarch.Stats
module Runner = Clusteer_harness.Runner
module Spec2000 = Clusteer_workloads.Spec2000
module Pinpoints = Clusteer_workloads.Pinpoints
module Table = Clusteer_util.Table

let benchmarks = [ "164.gzip-1"; "178.galgel"; "176.gcc-1"; "171.swim" ]
let uops = 15_000

let () =
  Fmt.pr
    "Steering trade-off study: %d micro-ops per point, 2-cluster machine@.@."
    uops;
  List.iter
    (fun name ->
      let profile = Spec2000.find name in
      let point = List.hd (Pinpoints.points profile) in
      let result =
        Runner.run_point ~machine:Config.default_2c
          ~configs:(Clusteer.Configuration.table3 ~clusters:2)
          ~uops point
      in
      let rows =
        List.map
          (fun (config, stats) ->
            [|
              config;
              Printf.sprintf "%.3f" (Stats.ipc stats);
              string_of_int stats.Stats.copies_generated;
              string_of_int (Stats.allocation_stalls stats);
              Printf.sprintf "%.2f" (Stats.balance_entropy stats);
            |])
          result.Runner.runs
      in
      Fmt.pr "%s (phase 0):@." name;
      print_string
        (Table.render
           ~header:[| "config"; "IPC"; "copies"; "alloc stalls"; "balance" |]
           rows);
      print_newline ())
    benchmarks;
  Fmt.pr
    "Reading guide (paper 5.3): OP pays the fewest copies but stalls over@.\
     steering; the software-only schemes cannot adapt their balance at@.\
     runtime; VC trades a few extra copies for runtime balance, landing@.\
     within a couple of percent of OP.@."
