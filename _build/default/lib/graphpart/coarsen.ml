type level = { graph : Wgraph.t; map : int array }

let step ?(seed = 1) ?(max_node_weight = infinity) g =
  let n = Wgraph.node_count g in
  let rng = Clusteer_util.Rng.create seed in
  let order = Array.init n Fun.id in
  Clusteer_util.Rng.shuffle rng order;
  let mate = Array.make n (-1) in
  Array.iter
    (fun v ->
      if mate.(v) = -1 then begin
        let best = ref (-1) and best_w = ref neg_infinity in
        List.iter
          (fun (u, w) ->
            if
              mate.(u) = -1 && u <> v && w > !best_w
              && Wgraph.node_weight g v +. Wgraph.node_weight g u
                 <= max_node_weight
            then begin
              best := u;
              best_w := w
            end)
          (Wgraph.neighbours g v);
        if !best >= 0 then begin
          mate.(v) <- !best;
          mate.(!best) <- v
        end
      end)
    order;
  (* Assign coarse ids: a matched pair shares one id. *)
  let map = Array.make n (-1) in
  let next = ref 0 in
  for v = 0 to n - 1 do
    if map.(v) = -1 then begin
      map.(v) <- !next;
      if mate.(v) >= 0 then map.(mate.(v)) <- !next;
      incr next
    end
  done;
  let nc = !next in
  let vwgt = Array.make nc 0.0 in
  for v = 0 to n - 1 do
    vwgt.(map.(v)) <- vwgt.(map.(v)) +. Wgraph.node_weight g v
  done;
  let edges =
    Wgraph.fold_edges
      (fun a b w acc ->
        if map.(a) <> map.(b) then (map.(a), map.(b), w) :: acc else acc)
      g []
  in
  { graph = Wgraph.create ~nv:nc ~vwgt ~edges; map }

let project level coarse_part =
  Array.map (fun coarse -> coarse_part.(coarse)) level.map
