type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty";
  let m = mean xs in
  let sq = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
  let stddev = if n < 2 then 0.0 else sqrt (sq /. float_of_int (n - 1)) in
  let min = Array.fold_left Float.min xs.(0) xs in
  let max = Array.fold_left Float.max xs.(0) xs in
  { count = n; mean = m; stddev; min; max }

let geomean xs =
  if Array.length xs = 0 then invalid_arg "Stats.geomean: empty";
  let logsum =
    Array.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geomean: non-positive input";
        acc +. log x)
      0.0 xs
  in
  exp (logsum /. float_of_int (Array.length xs))

let weighted_mean pairs =
  let num, den =
    Array.fold_left
      (fun (num, den) (x, w) -> (num +. (x *. w), den +. w))
      (0.0, 0.0) pairs
  in
  if den = 0.0 then invalid_arg "Stats.weighted_mean: zero total weight";
  num /. den

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let ratio_percent base x =
  if base = 0.0 then invalid_arg "Stats.ratio_percent: zero base";
  (x -. base) /. base *. 100.0

module Online = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.0; m2 = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.n
  let mean t = t.mean

  let stddev t =
    if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1))
end
