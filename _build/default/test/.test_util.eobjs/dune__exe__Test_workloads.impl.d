test/test_workloads.ml: Alcotest Analysis Array Block Clusteer_ddg Clusteer_isa Clusteer_trace Clusteer_workloads Kernels List Opcode Pinpoints Profile Program Spec2000 Synth Uop
