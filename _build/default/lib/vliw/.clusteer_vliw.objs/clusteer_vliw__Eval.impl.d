lib/vliw/eval.ml: Clusteer_ddg Ddg List List_sched Region Schedule
