(** Data-dependence graphs over a region.

    Nodes are positions in the region's flattened micro-op sequence;
    edges are register true dependences (definition to next uses) and
    conservative memory dependences within a stream (store→load,
    store→store). Each node carries the static latency the compiler
    assumes for it — actual execution latency (cache misses, contention)
    is only known to the simulator, which is exactly the software/
    hardware information gap the paper's hybrid scheme bridges. *)

open Clusteer_isa

type edge = { src : int; dst : int; latency : int }

type t = {
  uops : Uop.t array;  (** node [i] is [uops.(i)] *)
  succs : edge list array;
  preds : edge list array;
}

val node_count : t -> int

val static_latency : Uop.t -> int
(** Latency the compiler assumes: opcode latency, plus the L1 hit time
    for loads. *)

val build : Uop.t array -> t
(** Build the DDG of a program-order micro-op sequence. *)

val of_region : Region.t -> t

val iter_edges : t -> (edge -> unit) -> unit
(** Every edge exactly once, in successor-list order. *)

val edge_count : t -> int

val roots : t -> int list
(** Nodes with no predecessors. *)

val leaves : t -> int list
(** Nodes with no successors. *)

val is_acyclic : t -> bool
(** Always true for graphs built by {!build}; exposed for testing. *)

val topological_order : t -> int array
(** A topological order of the nodes (program order qualifies and is
    what [build] guarantees, since edges always point forward). *)
