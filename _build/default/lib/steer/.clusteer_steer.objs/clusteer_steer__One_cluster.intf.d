lib/steer/one_cluster.mli: Clusteer_uarch
