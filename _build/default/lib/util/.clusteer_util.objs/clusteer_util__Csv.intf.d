lib/util/csv.mli:
