lib/compiler/diagnostics.mli: Annot Clusteer_isa Format Program
