module Topology = Clusteer_topo.Topology

type cache = {
  size_bytes : int;
  ways : int;
  line_bytes : int;
  hit_latency : int;
}

type t = {
  clusters : int;
  fetch_width : int;
  fetch_to_dispatch : int;
  tc_size_uops : int;
  tc_line_uops : int;
  tc_ways : int;
  tc_miss_penalty : int;
  dispatch_width : int;
  dispatch_per_cluster : int;
  commit_width : int;
  commit_class_width : int;
  rob_size : int;
  int_iq_size : int;
  int_issue_width : int;
  fp_iq_size : int;
  fp_issue_width : int;
  copy_q_size : int;
  copy_issue_width : int;
  int_regfile : int;
  fp_regfile : int;
  topology : Topology.t;
  lsq_size : int;
  mshrs : int;
  l1d : cache;
  l1_read_ports : int;
  l1_write_ports : int;
  l2 : cache;
  memory_latency : int;
  prefetch_next_line : bool;
  bpred_bits : int;
  redirect_penalty : int;
  steer_serial_stages : int;
}

let default ~clusters =
  {
    clusters;
    fetch_width = 6;
    fetch_to_dispatch = 5;
    tc_size_uops = 24 * 1024;
    tc_line_uops = 6;
    tc_ways = 4;
    tc_miss_penalty = 8;
    dispatch_width = 6;
    dispatch_per_cluster = 6;
    commit_width = 6;
    commit_class_width = 6;
    rob_size = 512;
    int_iq_size = 48;
    int_issue_width = 2;
    fp_iq_size = 48;
    fp_issue_width = 2;
    copy_q_size = 24;
    copy_issue_width = 1;
    int_regfile = 256;
    fp_regfile = 256;
    topology = Topology.p2p ~link_latency:1 ~clusters ();
    lsq_size = 256;
    mshrs = 8;
    l1d = { size_bytes = 32 * 1024; ways = 4; line_bytes = 64; hit_latency = 3 };
    l1_read_ports = 2;
    l1_write_ports = 1;
    l2 =
      {
        size_bytes = 2 * 1024 * 1024;
        ways = 16;
        line_bytes = 64;
        hit_latency = 13;
      };
    memory_latency = 500;
    prefetch_next_line = false;
    bpred_bits = 12;
    redirect_penalty = 1;
    steer_serial_stages = 0;
  }

let default_2c = default ~clusters:2
let default_4c = default ~clusters:4

let validate t =
  let pos name v =
    if v <= 0 then invalid_arg (Printf.sprintf "Config: %s must be positive" name)
  in
  pos "clusters" t.clusters;
  pos "fetch_width" t.fetch_width;
  pos "fetch_to_dispatch" t.fetch_to_dispatch;
  pos "tc_size_uops" t.tc_size_uops;
  pos "tc_line_uops" t.tc_line_uops;
  pos "tc_ways" t.tc_ways;
  pos "tc_miss_penalty" t.tc_miss_penalty;
  pos "dispatch_width" t.dispatch_width;
  pos "dispatch_per_cluster" t.dispatch_per_cluster;
  pos "commit_width" t.commit_width;
  pos "commit_class_width" t.commit_class_width;
  pos "rob_size" t.rob_size;
  pos "int_iq_size" t.int_iq_size;
  pos "int_issue_width" t.int_issue_width;
  pos "fp_iq_size" t.fp_iq_size;
  pos "fp_issue_width" t.fp_issue_width;
  pos "copy_q_size" t.copy_q_size;
  pos "copy_issue_width" t.copy_issue_width;
  pos "int_regfile" t.int_regfile;
  pos "fp_regfile" t.fp_regfile;
  (match Topology.validate t.topology with
  | Ok () -> ()
  | Error m -> invalid_arg ("Config: " ^ m));
  if t.topology.Topology.clusters <> t.clusters then
    invalid_arg
      (Printf.sprintf "Config: topology %s spans %d clusters, machine has %d"
         (Topology.name t.topology) t.topology.Topology.clusters t.clusters);
  pos "lsq_size" t.lsq_size;
  pos "mshrs" t.mshrs;
  pos "memory_latency" t.memory_latency;
  pos "bpred_bits" t.bpred_bits;
  if t.steer_serial_stages < 0 then
    invalid_arg "Config: steer_serial_stages must be non-negative";
  let cache name (c : cache) =
    pos (name ^ ".size") c.size_bytes;
    pos (name ^ ".ways") c.ways;
    pos (name ^ ".line") c.line_bytes;
    pos (name ^ ".hit") c.hit_latency;
    if c.size_bytes mod (c.ways * c.line_bytes) <> 0 then
      invalid_arg (Printf.sprintf "Config: %s size not divisible by way size" name)
  in
  cache "l1d" t.l1d;
  cache "l2" t.l2;
  if t.clusters > 16 then invalid_arg "Config: at most 16 clusters"

let describe t =
  let kb n = Printf.sprintf "%dKB" (n / 1024) in
  [
    ("Clusters", string_of_int t.clusters);
    ( "Fetch",
      Printf.sprintf
        "%dK micro-op trace cache, %d micro-ops/cycle, %d cycle \
         fetch-to-dispatch"
        (t.tc_size_uops / 1024) t.fetch_width t.fetch_to_dispatch );
    ( "Decode, rename and steer",
      Printf.sprintf "%d micro-ops/cycle (%d per cluster), 1 cycle latency"
        t.dispatch_width t.dispatch_per_cluster );
    ( "Reorder buffer",
      Printf.sprintf "%d entries, commit %d+%d micro-ops/cycle" t.rob_size
        t.commit_class_width t.commit_class_width );
    ( "Register files (per cluster)",
      Printf.sprintf "%d-entry INT, %d-entry FP" t.int_regfile t.fp_regfile );
    ( "Issue queues (per cluster)",
      Printf.sprintf
        "%d-entry INT %d/cycle, %d-entry FP %d/cycle, %d-entry COPY %d/cycle"
        t.int_iq_size t.int_issue_width t.fp_iq_size t.fp_issue_width
        t.copy_q_size t.copy_issue_width );
    ("Inter-cluster communication", Topology.describe t.topology);
    ( "L1 data cache",
      Printf.sprintf "%s, %d-way, %d cycle hit, %dR/%dW ports, %d-entry LSQ"
        (kb t.l1d.size_bytes) t.l1d.ways t.l1d.hit_latency t.l1_read_ports
        t.l1_write_ports t.lsq_size );
    ( "L2 unified cache",
      Printf.sprintf "%s, %d-way, %d cycle hit, %d cycle miss"
        (kb t.l2.size_bytes) t.l2.ways t.l2.hit_latency t.memory_latency );
    ("Branch predictor", Printf.sprintf "gshare, %d bits" t.bpred_bits);
  ]
