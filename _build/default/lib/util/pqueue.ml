type 'a entry = { prio : int; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }
let length t = t.size
let is_empty t = t.size = 0

(* [a] comes before [b] when its priority is smaller, or on equal
   priority when it was inserted earlier. *)
let before a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let ensure_capacity t =
  if t.size = Array.length t.heap then begin
    let cap = max 16 (2 * Array.length t.heap) in
    let dummy = if t.size > 0 then t.heap.(0) else Obj.magic 0 in
    let heap = Array.make cap dummy in
    Array.blit t.heap 0 heap 0 t.size;
    t.heap <- heap
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

let add t prio value =
  ensure_capacity t;
  t.heap.(t.size) <- { prio; seq = t.next_seq; value };
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t =
  if t.size = 0 then None
  else
    let e = t.heap.(0) in
    Some (e.prio, e.value)

let pop t =
  if t.size = 0 then None
  else begin
    let e = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    Some (e.prio, e.value)
  end

let clear t =
  t.size <- 0;
  t.next_seq <- 0

let pop_while t keep =
  let rec loop acc =
    match peek t with
    | Some (prio, _) when keep prio -> (
        match pop t with
        | Some pair -> loop (pair :: acc)
        | None -> List.rev acc)
    | _ -> List.rev acc
  in
  loop []
