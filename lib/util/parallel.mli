(** Deterministic parallel map over OCaml 5 domains.

    Experiment sweeps run hundreds of independent simulations; this
    fans them out across domains while keeping results in input order,
    so a parallel sweep is bit-identical to a sequential one. Work is
    distributed dynamically (an atomic cursor), which balances the very
    uneven per-benchmark simulation times. *)

val map : ?domains:int -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains ~chunk f xs] applies [f] to every element, using up
    to [domains] domains (default {!default_domains}; 1 or a short
    list degrades to [List.map]). Workers claim [chunk] consecutive
    elements at a time (default 1): raise it when elements are tiny
    and the atomic cursor would dominate, keep 1 when per-element cost
    is very uneven. [f] must be safe to run concurrently with itself
    on distinct elements; an exception raised by [f] is re-raised in
    the caller with the worker's backtrace
    ({!Printexc.raise_with_backtrace}). Raises [Invalid_argument] if
    [chunk < 1]. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()], capped at
    {!default_domain_cap}. The cap only shapes this default; explicit
    [~domains] arguments above it are honoured. *)

val default_domain_cap : int
(** The documented default ceiling (8) applied by {!default_domains}.
    Experiment sweeps are memory-bound enough that more domains has
    not paid off; pass [~domains] explicitly to go beyond it. *)
