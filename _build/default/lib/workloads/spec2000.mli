(** Profiles for every SPEC CPU2000 trace point named in the paper's
    Figures 5 and 7: 26 SPECint points (164.gzip-1 … 300.twolf) and 14
    SPECfp points (168.wupwise … 301.apsi; 173.applu appears in Fig. 5
    only).

    Parameter choices encode each benchmark's published character —
    e.g. 181.mcf is memory-bound pointer-chasing with a large
    footprint and low ILP; 178.galgel (the paper's best case for VC)
    has long regular FP dependence chains; 176.gcc is branchy with a
    big working set. See DESIGN.md for the substitution argument. *)

val spec_int : Profile.t list
(** The 26 integer trace points, in the paper's Figure 5(a) order. *)

val spec_fp : Profile.t list
(** The 14 floating-point trace points, Figure 5(b) order. *)

val all : Profile.t list

val find : string -> Profile.t
(** Lookup by name ("181.mcf") or suffix ("mcf"). Raises [Not_found]. *)
