(** Dependence-based steering (Canal, Parcerisa & González, HPCA-6 [5]
    in the paper's bibliography): follow your operands, break ties to
    the least-loaded cluster — like OP but without occupancy-aware
    stalling (the front-end never stalls voluntarily; a full queue is
    handled by the dispatch stage like any structural hazard).

    Included beyond Table 3 as the ancestor of OP: comparing the two
    isolates exactly what stall-over-steer buys (§3.1: "some recent
    work has pointed out the benefit of stalling over steering"). *)

val make :
  ?registry:Clusteer_obs.Counters.registry -> unit -> Clusteer_uarch.Policy.t
(** Registers [dep.decisions] and the [dep.vote_ties] histogram
    (clusters tying the source-operand vote) into [registry] (default
    {!Clusteer_obs.Counters.default}). Counters never influence
    steering. *)
