(* Unit and property tests for clusteer_util. *)

open Clusteer_util

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let check_bool = Alcotest.(check bool)

(* ---- Rng ----------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let equal = ref 0 in
  for _ = 1 to 64 do
    if Rng.int64 a = Rng.int64 b then incr equal
  done;
  check_bool "different seeds diverge" true (!equal < 4)

let test_rng_int_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 13 in
    check_bool "in range" true (v >= 0 && v < 13)
  done

let test_rng_int_rejects_bad_bound () =
  let r = Rng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_float_bounds () =
  let r = Rng.create 11 in
  for _ = 1 to 10_000 do
    let v = Rng.float r 2.5 in
    check_bool "in range" true (v >= 0.0 && v < 2.5)
  done

let test_rng_bernoulli_extremes () =
  let r = Rng.create 3 in
  for _ = 1 to 100 do
    check_bool "p=0 never" false (Rng.bernoulli r 0.0);
    check_bool "p=1 always" true (Rng.bernoulli r 1.0)
  done

let test_rng_bernoulli_rate () =
  let r = Rng.create 5 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Rng.bernoulli r 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  check_bool "close to 0.3" true (rate > 0.27 && rate < 0.33)

let test_rng_geometric_mean () =
  let r = Rng.create 9 in
  let total = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    total := !total + Rng.geometric r 0.5
  done;
  let mean = float_of_int !total /. float_of_int n in
  (* mean of geometric(0.5) counting failures = 1.0 *)
  check_bool "geometric mean near 1" true (mean > 0.9 && mean < 1.1)

let test_rng_pick () =
  let r = Rng.create 13 in
  let a = [| 1; 2; 3 |] in
  for _ = 1 to 100 do
    check_bool "member" true (Array.mem (Rng.pick r a) a)
  done

let test_rng_pick_weighted () =
  let r = Rng.create 17 in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.pick_weighted r [| ("a", 1.0); ("b", 0.0); ("c", 3.0) |] in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  check_int "zero weight never drawn" 0
    (Option.value ~default:0 (Hashtbl.find_opt counts "b"));
  let a = Option.value ~default:0 (Hashtbl.find_opt counts "a") in
  let c = Option.value ~default:0 (Hashtbl.find_opt counts "c") in
  check_bool "c ~ 3x a" true (c > 2 * a)

let test_rng_shuffle_permutation () =
  let r = Rng.create 23 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_rng_split_independent () =
  let parent = Rng.create 31 in
  let child = Rng.split parent in
  let equal = ref 0 in
  for _ = 1 to 64 do
    if Rng.int64 parent = Rng.int64 child then incr equal
  done;
  check_bool "split streams diverge" true (!equal < 4)

let test_rng_gaussian_moments () =
  let r = Rng.create 37 in
  let acc = Stats.Online.create () in
  for _ = 1 to 20_000 do
    Stats.Online.add acc (Rng.gaussian r ~mean:5.0 ~stddev:2.0)
  done;
  check_bool "mean near 5" true (abs_float (Stats.Online.mean acc -. 5.0) < 0.1);
  check_bool "stddev near 2" true (abs_float (Stats.Online.stddev acc -. 2.0) < 0.1)

(* ---- Stats --------------------------------------------------------- *)

let test_stats_summary () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0; 4.0 |] in
  check_int "count" 4 s.Stats.count;
  check_float "mean" 2.5 s.Stats.mean;
  check_float "min" 1.0 s.Stats.min;
  check_float "max" 4.0 s.Stats.max;
  check_bool "stddev" true (abs_float (s.Stats.stddev -. 1.2909944487) < 1e-6)

let test_stats_geomean () =
  check_float "geomean" 2.0 (Stats.geomean [| 1.0; 2.0; 4.0 |])

let test_stats_weighted_mean () =
  check_float "weighted" 3.0
    (Stats.weighted_mean [| (1.0, 1.0); (4.0, 2.0) |])

let test_stats_weighted_mean_zero_weight () =
  Alcotest.check_raises "zero weights"
    (Invalid_argument "Stats.weighted_mean: zero total weight") (fun () ->
      ignore (Stats.weighted_mean [| (1.0, 0.0) |]))

let test_stats_percentile () =
  let xs = [| 10.0; 20.0; 30.0; 40.0 |] in
  check_float "p0" 10.0 (Stats.percentile xs 0.0);
  check_float "p100" 40.0 (Stats.percentile xs 100.0);
  check_float "p50" 25.0 (Stats.percentile xs 50.0)

let test_stats_ratio_percent () =
  check_float "ratio" 25.0 (Stats.ratio_percent 100.0 125.0);
  check_float "negative" (-10.0) (Stats.ratio_percent 100.0 90.0)

let test_stats_online_matches_batch () =
  let xs = Array.init 100 (fun i -> float_of_int (i * i) /. 7.0) in
  let acc = Stats.Online.create () in
  Array.iter (Stats.Online.add acc) xs;
  let s = Stats.summarize xs in
  check_bool "mean matches" true
    (abs_float (Stats.Online.mean acc -. s.Stats.mean) < 1e-9);
  check_bool "stddev matches" true
    (abs_float (Stats.Online.stddev acc -. s.Stats.stddev) < 1e-9)

let test_stats_percentile_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty")
    (fun () -> ignore (Stats.percentile [||] 50.0));
  Alcotest.check_raises "range"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile [| 1.0 |] 150.0))

let test_rng_geometric_certain () =
  let r = Rng.create 3 in
  for _ = 1 to 50 do
    check_int "p=1 never fails" 0 (Rng.geometric r 1.0)
  done

(* ---- Pqueue -------------------------------------------------------- *)

let test_pqueue_ordering () =
  let q = Pqueue.create () in
  List.iter (fun (p, v) -> Pqueue.add q p v) [ (3, "c"); (1, "a"); (2, "b") ];
  Alcotest.(check (option (pair int string))) "min" (Some (1, "a")) (Pqueue.pop q);
  Alcotest.(check (option (pair int string))) "next" (Some (2, "b")) (Pqueue.pop q);
  Alcotest.(check (option (pair int string))) "last" (Some (3, "c")) (Pqueue.pop q);
  Alcotest.(check (option (pair int string))) "empty" None (Pqueue.pop q)

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  List.iter (fun v -> Pqueue.add q 5 v) [ "first"; "second"; "third" ];
  Alcotest.(check (option (pair int string))) "fifo 1" (Some (5, "first")) (Pqueue.pop q);
  Alcotest.(check (option (pair int string))) "fifo 2" (Some (5, "second")) (Pqueue.pop q)

let test_pqueue_peek_noop () =
  let q = Pqueue.create () in
  Pqueue.add q 1 "x";
  ignore (Pqueue.peek q);
  check_int "peek preserves" 1 (Pqueue.length q)

let test_pqueue_pop_while () =
  let q = Pqueue.create () in
  List.iter (fun p -> Pqueue.add q p p) [ 5; 1; 3; 8; 2 ];
  let popped = Pqueue.pop_while q (fun p -> p <= 3) in
  Alcotest.(check (list (pair int int))) "popped prefix"
    [ (1, 1); (2, 2); (3, 3) ] popped;
  check_int "remaining" 2 (Pqueue.length q)

let test_pqueue_clear () =
  let q = Pqueue.create () in
  Pqueue.add q 1 ();
  Pqueue.clear q;
  check_bool "empty" true (Pqueue.is_empty q)

let prop_pqueue_sorted =
  QCheck.Test.make ~name:"pqueue pops in priority order" ~count:200
    QCheck.(list (int_bound 1000))
    (fun prios ->
      let q = Pqueue.create () in
      List.iter (fun p -> Pqueue.add q p p) prios;
      let rec drain acc =
        match Pqueue.pop q with
        | Some (p, _) -> drain (p :: acc)
        | None -> List.rev acc
      in
      let out = drain [] in
      out = List.sort compare prios)

(* ---- Ring ---------------------------------------------------------- *)

let test_ring_fifo () =
  let r = Ring.create ~capacity:3 in
  check_bool "push1" true (Ring.push r 1);
  check_bool "push2" true (Ring.push r 2);
  check_bool "push3" true (Ring.push r 3);
  check_bool "full rejects" false (Ring.push r 4);
  Alcotest.(check (option int)) "pop order" (Some 1) (Ring.pop r);
  check_bool "push after pop" true (Ring.push r 4);
  Alcotest.(check (list int)) "contents" [ 2; 3; 4 ] (Ring.to_list r)

let test_ring_wraparound () =
  let r = Ring.create ~capacity:2 in
  for i = 1 to 10 do
    check_bool "push" true (Ring.push r i);
    Alcotest.(check (option int)) "pop" (Some i) (Ring.pop r)
  done

let test_ring_get () =
  let r = Ring.create ~capacity:4 in
  List.iter (fun v -> ignore (Ring.push r v)) [ 10; 20; 30 ];
  check_int "get 0" 10 (Ring.get r 0);
  check_int "get 2" 30 (Ring.get r 2);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Ring.get: index out of range") (fun () ->
      ignore (Ring.get r 3))

let test_ring_free_slots () =
  let r = Ring.create ~capacity:5 in
  ignore (Ring.push r 1);
  ignore (Ring.push r 2);
  check_int "free" 3 (Ring.free_slots r);
  Ring.clear r;
  check_int "after clear" 5 (Ring.free_slots r)

let prop_ring_model =
  QCheck.Test.make ~name:"ring behaves like a bounded FIFO" ~count:200
    QCheck.(list (option (int_bound 100)))
    (fun ops ->
      (* Some v = push v, None = pop; compare against a list model. *)
      let r = Ring.create ~capacity:4 in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Some v ->
              let accepted = Ring.push r v in
              let should = List.length !model < 4 in
              if should then model := !model @ [ v ];
              accepted = should
          | None -> (
              match (Ring.pop r, !model) with
              | None, [] -> true
              | Some x, y :: rest ->
                  model := rest;
                  x = y
              | _ -> false))
        ops)

(* ---- Bitset -------------------------------------------------------- *)

let test_bitset_basics () =
  let s = Bitset.of_list [ 0; 3; 5 ] in
  check_bool "mem 3" true (Bitset.mem s 3);
  check_bool "mem 1" false (Bitset.mem s 1);
  check_int "cardinal" 3 (Bitset.cardinal s);
  Alcotest.(check (list int)) "to_list sorted" [ 0; 3; 5 ] (Bitset.to_list s)

let test_bitset_ops () =
  let a = Bitset.of_list [ 0; 1 ] and b = Bitset.of_list [ 1; 2 ] in
  Alcotest.(check (list int)) "union" [ 0; 1; 2 ]
    (Bitset.to_list (Bitset.union a b));
  Alcotest.(check (list int)) "inter" [ 1 ] (Bitset.to_list (Bitset.inter a b));
  Alcotest.(check (list int)) "remove" [ 0 ]
    (Bitset.to_list (Bitset.remove a 1))

let test_bitset_full () =
  check_int "full 4" 4 (Bitset.cardinal (Bitset.full 4));
  check_bool "full empty" true (Bitset.is_empty (Bitset.full 0))

let test_bitset_choose () =
  Alcotest.(check (option int)) "choose min" (Some 2)
    (Bitset.choose (Bitset.of_list [ 5; 2; 9 ]));
  Alcotest.(check (option int)) "choose empty" None (Bitset.choose Bitset.empty)

let prop_bitset_set_semantics =
  QCheck.Test.make ~name:"bitset matches sorted-dedup list" ~count:300
    QCheck.(list (int_bound 30))
    (fun l ->
      let s = Bitset.of_list l in
      Bitset.to_list s = List.sort_uniq compare l)

(* ---- Vec ------------------------------------------------------------ *)

let test_vec_growth () =
  let v = Vec.create ~initial:2 ~default:(-1) () in
  Vec.set v 100 7;
  check_int "set far" 7 (Vec.get v 100);
  check_int "default below" (-1) (Vec.get v 50);
  check_int "length" 101 (Vec.length v)

let test_vec_push () =
  let v = Vec.create ~default:0 () in
  check_int "push idx 0" 0 (Vec.push v 10);
  check_int "push idx 1" 1 (Vec.push v 20);
  check_int "value" 20 (Vec.get v 1)

let test_vec_get_beyond () =
  let v = Vec.create ~default:9 () in
  check_int "default beyond data" 9 (Vec.get v 1_000_000)

let test_vec_clear () =
  let v = Vec.create ~default:0 () in
  ignore (Vec.push v 5);
  Vec.clear v;
  check_int "length reset" 0 (Vec.length v);
  check_int "value reset" 0 (Vec.get v 0)

(* ---- Lru ------------------------------------------------------------ *)

let check_keys = Alcotest.(check (list string))

let test_lru_eviction_order () =
  let evicted = ref [] in
  let t =
    Lru.create ~on_evict:(fun k _ -> evicted := k :: !evicted) ~budget:3 ()
  in
  Lru.add t "a" ~cost:1 "A";
  Lru.add t "b" ~cost:1 "B";
  Lru.add t "c" ~cost:1 "C";
  check_keys "mru order" [ "c"; "b"; "a" ] (Lru.keys t);
  (* One unit over budget: the least-recently-used entry goes. *)
  Lru.add t "d" ~cost:1 "D";
  check_keys "a evicted first" [ "a" ] (List.rev !evicted);
  check_keys "survivors" [ "d"; "c"; "b" ] (Lru.keys t);
  (* A large insertion evicts from the LRU end until it fits. *)
  Lru.add t "e" ~cost:3 "E";
  check_keys "b then c then d" [ "a"; "b"; "c"; "d" ] (List.rev !evicted);
  check_keys "only e" [ "e" ] (Lru.keys t)

let test_lru_hit_promotion () =
  let t = Lru.create ~budget:3 () in
  Lru.add t "a" ~cost:1 "A";
  Lru.add t "b" ~cost:1 "B";
  Lru.add t "c" ~cost:1 "C";
  (* Touch "a": it must now survive the next eviction instead of "b". *)
  Alcotest.(check (option string)) "find hits" (Some "A") (Lru.find t "a");
  Lru.add t "d" ~cost:1 "D";
  check_keys "b evicted, a kept" [ "d"; "a"; "c" ] (Lru.keys t);
  (* peek must NOT promote. *)
  Alcotest.(check (option string)) "peek hits" (Some "C") (Lru.peek t "c");
  Lru.add t "e" ~cost:1 "E";
  check_keys "c evicted despite peek" [ "e"; "d"; "a" ] (Lru.keys t)

let test_lru_byte_accounting () =
  let t = Lru.create ~budget:100 () in
  Lru.add t "a" ~cost:40 "A";
  Lru.add t "b" ~cost:40 "B";
  check_int "cost sums" 80 (Lru.cost t);
  Lru.add t "c" ~cost:40 "C";
  (* 120 > 100: "a" must go, leaving 80. *)
  check_int "cost after eviction" 80 (Lru.cost t);
  check_int "two entries" 2 (Lru.length t);
  Lru.remove t "b";
  check_int "cost after remove" 40 (Lru.cost t);
  check_int "budget preserved" 100 (Lru.budget t)

let test_lru_replace_recosts () =
  let t = Lru.create ~budget:10 () in
  Lru.add t "a" ~cost:4 "A";
  Lru.add t "b" ~cost:4 "B";
  Lru.add t "a" ~cost:6 "A2";
  check_int "re-costed" 10 (Lru.cost t);
  Alcotest.(check (option string)) "new value" (Some "A2") (Lru.peek t "a");
  check_keys "replacement promotes" [ "a"; "b" ] (Lru.keys t)

let test_lru_oversized_entry () =
  let evicted = ref [] in
  let t =
    Lru.create ~on_evict:(fun k _ -> evicted := k :: !evicted) ~budget:5 ()
  in
  (* An entry bigger than the whole budget is admitted and immediately
     evicted (spill hook still observes it). *)
  Lru.add t "big" ~cost:9 "B";
  check_int "nothing resident" 0 (Lru.length t);
  check_int "no residual cost" 0 (Lru.cost t);
  check_keys "evict hook saw it" [ "big" ] !evicted

let test_lru_remove () =
  let evicted = ref 0 in
  let t = Lru.create ~on_evict:(fun _ _ -> incr evicted) ~budget:10 () in
  Lru.add t "a" ~cost:1 "A";
  Lru.remove t "a";
  Lru.remove t "a";
  check_bool "gone" false (Lru.mem t "a");
  check_int "remove is not eviction" 0 !evicted

let test_lru_rejects_negatives () =
  Alcotest.check_raises "negative budget"
    (Invalid_argument "Lru.create: negative budget") (fun () ->
      ignore (Lru.create ~budget:(-1) () : unit Lru.t));
  let t = Lru.create ~budget:1 () in
  Alcotest.check_raises "negative cost"
    (Invalid_argument "Lru.add: negative cost") (fun () ->
      Lru.add t "a" ~cost:(-1) ())

(* ---- Plot ------------------------------------------------------------ *)

let test_plot_empty () =
  Alcotest.(check string) "empty" "" (Plot.scatter [])

let test_plot_contains_points_and_axes () =
  let out = Plot.scatter ~width:20 ~height:10 [ (1.0, 2.0); (-3.0, -1.0) ] in
  check_bool "has stars" true (String.contains out '*');
  check_bool "has vertical axis" true (String.contains out '|');
  check_bool "has horizontal axis" true (String.contains out '-');
  let lines = String.split_on_char '\n' out in
  (* header + 10 rows + trailing empty *)
  check_int "height respected" 12 (List.length lines)

let test_plot_overlap_marker () =
  let out = Plot.scatter ~width:10 ~height:5 [ (5.0, 5.0); (5.0, 5.0) ] in
  check_bool "coincident points marked" true (String.contains out '@')

let test_plot_labels () =
  let out =
    Plot.scatter ~x_label:"speedup" ~y_label:"copies" [ (1.0, 1.0) ]
  in
  check_bool "labels present" true
    (String.length out > 0
    && (let header = List.hd (String.split_on_char '\n' out) in
        let contains s sub =
          let n = String.length sub in
          let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
          go 0
        in
        contains header "speedup" && contains header "copies"))

(* ---- Parallel ---------------------------------------------------------- *)

let test_parallel_matches_sequential () =
  let xs = List.init 100 Fun.id in
  let f x = (x * x) + 1 in
  Alcotest.(check (list int)) "order-deterministic" (List.map f xs)
    (Parallel.map ~domains:4 f xs)

let test_parallel_single_domain () =
  Alcotest.(check (list int)) "degrades to List.map" [ 2; 4 ]
    (Parallel.map ~domains:1 (fun x -> 2 * x) [ 1; 2 ])

let test_parallel_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Parallel.map ~domains:4 Fun.id []);
  Alcotest.(check (list int)) "singleton" [ 7 ]
    (Parallel.map ~domains:4 Fun.id [ 7 ])

let test_parallel_propagates_exception () =
  Alcotest.check_raises "worker failure" (Failure "boom") (fun () ->
      ignore
        (Parallel.map ~domains:3
           (fun x -> if x = 5 then failwith "boom" else x)
           (List.init 10 Fun.id)))

let test_parallel_default_domains () =
  check_bool "at least one" true (Parallel.default_domains () >= 1);
  check_bool "capped" true
    (Parallel.default_domains () <= Parallel.default_domain_cap);
  check_int "documented cap" 8 Parallel.default_domain_cap

let test_parallel_chunked_matches_sequential () =
  let xs = List.init 37 Fun.id in
  let f x = (x * 3) - 1 in
  List.iter
    (fun chunk ->
      Alcotest.(check (list int))
        (Printf.sprintf "chunk %d" chunk)
        (List.map f xs)
        (Parallel.map ~domains:4 ~chunk f xs))
    [ 1; 2; 5; 37; 100 ]

let test_parallel_rejects_bad_chunk () =
  Alcotest.check_raises "chunk 0"
    (Invalid_argument "Parallel.map: chunk must be positive") (fun () ->
      ignore (Parallel.map ~domains:2 ~chunk:0 Fun.id [ 1 ]))

let test_parallel_exception_keeps_backtrace () =
  (* The re-raise must preserve the worker's exception payload; raising
     from a chunked multi-domain run exercises the backtrace-carrying
     failure slot. *)
  Alcotest.check_raises "worker failure" (Failure "chunked boom") (fun () ->
      ignore
        (Parallel.map ~domains:4 ~chunk:3
           (fun x -> if x = 17 then failwith "chunked boom" else x)
           (List.init 32 Fun.id)))

let test_parallel_steal_matches_sequential () =
  let xs = List.init 53 Fun.id in
  let f x = (x * 7) mod 11 in
  List.iter
    (fun chunk ->
      Alcotest.(check (list int))
        (Printf.sprintf "steal chunk %d" chunk)
        (List.map f xs)
        (Parallel.map ~domains:4 ~chunk ~strategy:Parallel.Steal f xs))
    [ 1; 2; 5; 53; 100 ]

let test_parallel_steal_propagates_exception () =
  Alcotest.check_raises "steal worker failure" (Failure "steal boom")
    (fun () ->
      ignore
        (Parallel.map ~domains:3 ~chunk:2 ~strategy:Parallel.Steal
           (fun x -> if x = 9 then failwith "steal boom" else x)
           (List.init 20 Fun.id)))

let test_parallel_failure_stops_per_element () =
  (* One big chunk per worker: after element 0 poisons the run, the
     owning worker must notice before each subsequent element rather
     than draining its whole chunk. Surviving elements sleep, so a
     chunk-granular check would evaluate ~100 elements; the
     per-element check stops almost immediately. *)
  let n = 200 in
  let evaluated = Atomic.make 0 in
  (try
     ignore
       (Parallel.map ~domains:2 ~chunk:100 ~strategy:Parallel.Steal
          (fun x ->
            Atomic.incr evaluated;
            if x = 0 then failwith "poison" else Unix.sleepf 0.002)
          (List.init n Fun.id));
     Alcotest.fail "expected the poisoned run to raise"
   with Failure msg when msg = "poison" -> ());
  check_bool
    (Printf.sprintf "stopped early (evaluated %d of %d)" (Atomic.get evaluated) n)
    true
    (Atomic.get evaluated < 50)

let test_parallel_map_sharded_basics () =
  let xs = List.init 40 Fun.id in
  let f state x =
    incr state;
    x * 2
  in
  let results, states =
    Parallel.map_sharded ~domains:4 ~init:(fun _ -> ref 0) ~f xs
  in
  Alcotest.(check (list int)) "results in input order"
    (List.map (fun x -> x * 2) xs)
    results;
  check_int "one state per worker" 4 (List.length states);
  check_int "every element visited exactly once" 40
    (List.fold_left (fun acc r -> acc + !r) 0 states)

let test_parallel_map_sharded_shard_order () =
  (* Worker [w] owns the contiguous slice [w*n/d, (w+1)*n/d); the
     returned states must come back in shard order so callers can merge
     them deterministically. *)
  let xs = List.init 8 Fun.id in
  let f seen x =
    seen := x :: !seen;
    x
  in
  let _, states =
    Parallel.map_sharded ~domains:4 ~init:(fun _ -> ref []) ~f xs
  in
  Alcotest.(check (list int)) "states in shard (= input) order"
    xs
    (List.concat_map (fun seen -> List.rev !seen) states)

let test_parallel_map_sharded_single_worker () =
  let results, states =
    Parallel.map_sharded ~domains:1 ~init:(fun w -> w) ~f:(fun w x -> x + w)
      [ 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "sequential path" [ 1; 2; 3 ] results;
  Alcotest.(check (list int)) "single shard 0" [ 0 ] states

let test_parallel_map_sharded_empty () =
  let results, states =
    Parallel.map_sharded ~domains:4 ~init:(fun _ -> ()) ~f:(fun () x -> x) []
  in
  Alcotest.(check (list int)) "no results" [] results;
  check_int "no states" 0 (List.length states)

let test_parallel_map_sharded_propagates_exception () =
  Alcotest.check_raises "sharded worker failure" (Failure "shard boom")
    (fun () ->
      ignore
        (Parallel.map_sharded ~domains:3
           ~init:(fun _ -> ())
           ~f:(fun () x -> if x = 11 then failwith "shard boom" else x)
           (List.init 20 Fun.id)))

(* ---- Table / Csv ---------------------------------------------------- *)

let test_table_render () =
  let out =
    Table.render ~header:[| "name"; "value" |]
      [ [| "a"; "1" |]; [| "longer"; "22" |] ]
  in
  let lines = String.split_on_char '\n' out in
  check_int "line count" 5 (List.length lines) (* header, rule, 2 rows, trailing *)

let test_table_arity_check () =
  Alcotest.check_raises "ragged row"
    (Invalid_argument "Table.render: row 0 has wrong arity") (fun () ->
      ignore (Table.render ~header:[| "a"; "b" |] [ [| "x" |] ]))

let test_table_fmt () =
  Alcotest.(check string) "float" "3.14" (Table.fmt_float 3.14159);
  Alcotest.(check string) "percent" "2.6%" (Table.fmt_percent ~decimals:1 2.62)

let test_csv_escape () =
  Alcotest.(check string) "plain" "abc" (Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv.escape "a\"b")

let test_csv_write_read () =
  let path = Filename.temp_file "clusteer" ".csv" in
  Csv.write ~path ~header:[ "x"; "y" ] [ [ "1"; "a,b" ]; [ "2"; "c" ] ];
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  Alcotest.(check (list string)) "roundtrip"
    [ "x,y"; "1,\"a,b\""; "2,c" ]
    (List.rev !lines)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "clusteer_util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int bad bound" `Quick test_rng_int_rejects_bad_bound;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
          Alcotest.test_case "bernoulli rate" `Quick test_rng_bernoulli_rate;
          Alcotest.test_case "geometric mean" `Quick test_rng_geometric_mean;
          Alcotest.test_case "pick" `Quick test_rng_pick;
          Alcotest.test_case "pick_weighted" `Quick test_rng_pick_weighted;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "gaussian moments" `Slow test_rng_gaussian_moments;
          Alcotest.test_case "geometric certain" `Quick test_rng_geometric_certain;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "geomean" `Quick test_stats_geomean;
          Alcotest.test_case "weighted mean" `Quick test_stats_weighted_mean;
          Alcotest.test_case "weighted zero" `Quick test_stats_weighted_mean_zero_weight;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "ratio percent" `Quick test_stats_ratio_percent;
          Alcotest.test_case "online matches batch" `Quick test_stats_online_matches_batch;
          Alcotest.test_case "percentile errors" `Quick test_stats_percentile_errors;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "ordering" `Quick test_pqueue_ordering;
          Alcotest.test_case "fifo ties" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "peek" `Quick test_pqueue_peek_noop;
          Alcotest.test_case "pop_while" `Quick test_pqueue_pop_while;
          Alcotest.test_case "clear" `Quick test_pqueue_clear;
          qc prop_pqueue_sorted;
        ] );
      ( "ring",
        [
          Alcotest.test_case "fifo" `Quick test_ring_fifo;
          Alcotest.test_case "wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "get" `Quick test_ring_get;
          Alcotest.test_case "free slots" `Quick test_ring_free_slots;
          qc prop_ring_model;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basics" `Quick test_bitset_basics;
          Alcotest.test_case "ops" `Quick test_bitset_ops;
          Alcotest.test_case "full" `Quick test_bitset_full;
          Alcotest.test_case "choose" `Quick test_bitset_choose;
          qc prop_bitset_set_semantics;
        ] );
      ( "vec",
        [
          Alcotest.test_case "growth" `Quick test_vec_growth;
          Alcotest.test_case "push" `Quick test_vec_push;
          Alcotest.test_case "get beyond" `Quick test_vec_get_beyond;
          Alcotest.test_case "clear" `Quick test_vec_clear;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "matches sequential" `Quick test_parallel_matches_sequential;
          Alcotest.test_case "single domain" `Quick test_parallel_single_domain;
          Alcotest.test_case "empty and singleton" `Quick test_parallel_empty_and_singleton;
          Alcotest.test_case "propagates exception" `Quick test_parallel_propagates_exception;
          Alcotest.test_case "default domains" `Quick test_parallel_default_domains;
          Alcotest.test_case "chunked matches sequential" `Quick
            test_parallel_chunked_matches_sequential;
          Alcotest.test_case "rejects bad chunk" `Quick test_parallel_rejects_bad_chunk;
          Alcotest.test_case "exception keeps backtrace" `Quick
            test_parallel_exception_keeps_backtrace;
          Alcotest.test_case "steal matches sequential" `Quick
            test_parallel_steal_matches_sequential;
          Alcotest.test_case "steal propagates exception" `Quick
            test_parallel_steal_propagates_exception;
          Alcotest.test_case "failure stops per element" `Quick
            test_parallel_failure_stops_per_element;
          Alcotest.test_case "map_sharded basics" `Quick
            test_parallel_map_sharded_basics;
          Alcotest.test_case "map_sharded shard order" `Quick
            test_parallel_map_sharded_shard_order;
          Alcotest.test_case "map_sharded single worker" `Quick
            test_parallel_map_sharded_single_worker;
          Alcotest.test_case "map_sharded empty" `Quick
            test_parallel_map_sharded_empty;
          Alcotest.test_case "map_sharded propagates exception" `Quick
            test_parallel_map_sharded_propagates_exception;
        ] );
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "hit promotion" `Quick test_lru_hit_promotion;
          Alcotest.test_case "byte accounting" `Quick test_lru_byte_accounting;
          Alcotest.test_case "replace re-costs" `Quick test_lru_replace_recosts;
          Alcotest.test_case "oversized entry" `Quick test_lru_oversized_entry;
          Alcotest.test_case "remove" `Quick test_lru_remove;
          Alcotest.test_case "rejects negatives" `Quick test_lru_rejects_negatives;
        ] );
      ( "plot",
        [
          Alcotest.test_case "empty" `Quick test_plot_empty;
          Alcotest.test_case "points and axes" `Quick test_plot_contains_points_and_axes;
          Alcotest.test_case "overlap marker" `Quick test_plot_overlap_marker;
          Alcotest.test_case "labels" `Quick test_plot_labels;
        ] );
      ( "table-csv",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity" `Quick test_table_arity_check;
          Alcotest.test_case "formatting" `Quick test_table_fmt;
          Alcotest.test_case "csv escape" `Quick test_csv_escape;
          Alcotest.test_case "csv roundtrip" `Quick test_csv_write_read;
        ] );
    ]
