lib/steer/dep.mli: Clusteer_uarch
