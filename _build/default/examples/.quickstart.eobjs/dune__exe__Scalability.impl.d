examples/scalability.ml: Clusteer Clusteer_harness Clusteer_uarch Clusteer_util Clusteer_workloads Fmt List Printf
