# Convenience targets; everything below is plain dune + the CLI.

.PHONY: all build test bench bench-smoke fmt smoke clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Quick machine-checkable slice of the bench harness: the throughput/
# allocation study only, at reduced trace length. Fails if the BENCH
# JSON is not produced or a steering policy started allocating on the
# decision path.
bench-smoke: build
	CLUSTEER_BENCH_STUDY=throughput CLUSTEER_BENCH_UOPS=2000 \
	  CLUSTEER_BENCH_JSON=_build/bench.json dune exec bench/main.exe
	@grep -q '"suite_throughput"' _build/bench.json
	@grep -q '"steering_alloc_words_per_decide":{"op":0.0,"op-parallel":0.0,"dep":0.0,"vc2":0.0}' \
	  _build/bench.json
	@echo "bench-smoke: OK (_build/bench.json)"

# Formatting is checked only where the formatter exists; the dune rules
# are always available (`dune build @fmt`) once ocamlformat is installed.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "fmt: ocamlformat not installed, skipping"; \
	fi

# Fast end-to-end confidence: full build, the test suite, a parallel
# deterministic sweep, the bench smoke, and one traced 10k-uop
# simulation whose Chrome trace must be valid JSON with interval
# telemetry.
smoke: build test fmt bench-smoke
	dune exec bin/csteer.exe -- simulate -w mcf -n 10000 \
	  --trace-out _build/smoke_trace.json --trace-format json \
	  --stats-interval 1000
	@grep -q '"traceEvents"' _build/smoke_trace.json
	@echo "smoke: OK (_build/smoke_trace.json)"

clean:
	dune clean
