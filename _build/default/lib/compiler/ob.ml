open Clusteer_isa
open Clusteer_ddg

let comm_latency = 1.0

let assign_region g ~clusters ~issue_width =
  let est = Estimate.create ~parts:clusters ~issue_width ~comm_latency g in
  let n = Ddg.node_count g in
  let assignment = Array.make n 0 in
  Array.iter
    (fun node ->
      let best = ref 0 and best_cost = ref infinity in
      for c = 0 to clusters - 1 do
        let cost = Estimate.estimate est ~node ~part:c in
        (* Strict improvement keeps ties on the lowest-loaded earlier
           cluster; break exact ties by load. *)
        if
          cost < !best_cost
          || (cost = !best_cost && Estimate.load est c < Estimate.load est !best)
        then begin
          best := c;
          best_cost := cost
        end
      done;
      Estimate.place est ~node ~part:!best;
      assignment.(node) <- !best)
    (Ddg.topological_order g);
  assignment

let compile ~program ~likely ~clusters ?(region_uops = 512)
    ?(issue_width = 2.0) () =
  let annot =
    Annot.create_static ~scheme:"ob" ~uop_count:program.Program.uop_count
  in
  let regions = Region.build ~program ~likely ~max_uops:region_uops in
  List.iter
    (fun region ->
      let g = Ddg.of_region region in
      let assignment = assign_region g ~clusters ~issue_width in
      Array.iteri
        (fun node (u : Uop.t) ->
          annot.Annot.cluster_of.(u.Uop.id) <- assignment.(node))
        region.Region.uops)
    regions;
  Annot.validate annot ~clusters;
  annot
