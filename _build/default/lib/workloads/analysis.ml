open Clusteer_isa
open Clusteer_trace

type mix = {
  uops : int;
  mem_frac : float;
  load_frac : float;
  store_frac : float;
  fp_frac : float;
  branch_frac : float;
  taken_frac : float;
  distinct_static : int;
  distinct_lines : int;
}

let measure workload ~uops ~seed =
  if uops <= 0 then invalid_arg "Analysis.measure: uops must be positive";
  let gen = Synth.trace workload ~seed in
  let loads = ref 0 and stores = ref 0 and fp = ref 0 in
  let branches = ref 0 and taken = ref 0 in
  let statics = Hashtbl.create 256 and lines = Hashtbl.create 1024 in
  for _ = 1 to uops do
    let d = Tracegen.next gen in
    let u = d.Dynuop.suop in
    Hashtbl.replace statics u.Uop.id ();
    (match u.Uop.opcode with
    | Opcode.Load ->
        incr loads;
        Hashtbl.replace lines (d.Dynuop.addr lsr 6) ()
    | Opcode.Store ->
        incr stores;
        Hashtbl.replace lines (d.Dynuop.addr lsr 6) ()
    | Opcode.Branch ->
        incr branches;
        if d.Dynuop.taken then incr taken
    | _ -> ());
    match Opcode.queue u.Uop.opcode with
    | Opcode.Fp_queue -> incr fp
    | Opcode.Int_queue | Opcode.Copy_queue -> ()
  done;
  let f n = float_of_int n /. float_of_int uops in
  {
    uops;
    mem_frac = f (!loads + !stores);
    load_frac = f !loads;
    store_frac = f !stores;
    fp_frac = f !fp;
    branch_frac = f !branches;
    taken_frac =
      (if !branches = 0 then 0.0
       else float_of_int !taken /. float_of_int !branches);
    distinct_static = Hashtbl.length statics;
    distinct_lines = Hashtbl.length lines;
  }

let pp ppf m =
  Format.fprintf ppf
    "@[<v>%d micro-ops: %.1f%% mem (%.1f%% loads, %.1f%% stores), %.1f%% fp, \
     %.1f%% branches (%.1f%% taken)@,\
     static footprint %d micro-ops, data footprint %d lines (%.0f KB)@]"
    m.uops (100. *. m.mem_frac) (100. *. m.load_frac) (100. *. m.store_frac)
    (100. *. m.fp_frac) (100. *. m.branch_frac) (100. *. m.taken_frac)
    m.distinct_static m.distinct_lines
    (float_of_int (m.distinct_lines * 64) /. 1024.)
