lib/uarch/stats.ml: Array Format
