(** Weighted undirected graphs for multilevel partitioning.

    Nodes carry weights (estimated resource usage of the operations
    they represent); edges carry weights (the cost of cutting the
    dependence, i.e. of an inter-cluster communication). Parallel
    edges are merged by summing their weights at construction. *)

type t

val create : nv:int -> vwgt:float array -> edges:(int * int * float) list -> t
(** [vwgt] must have length [nv]; edge endpoints must be distinct and
    in range; edge weights non-negative. *)

val node_count : t -> int
val node_weight : t -> int -> float
val total_weight : t -> float
val neighbours : t -> int -> (int * float) list
(** Adjacent nodes with the merged edge weight. *)

val edge_weight : t -> int -> int -> float
(** 0 when not adjacent. *)

val fold_edges : (int -> int -> float -> 'a -> 'a) -> t -> 'a -> 'a
(** Each undirected edge visited once, with [src < dst]. *)

val degree : t -> int -> int
