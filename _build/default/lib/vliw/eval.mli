(** Whole-program evaluation on the VLIW substrate.

    Every region of the program is scheduled independently (as a VLIW
    compiler would schedule superblocks) and the results aggregated.
    Comparing {!Unified} (the VLIW-native assign-and-schedule) against
    {!Fixed} partitions produced by the OOO passes reproduces the
    §3.3 observation: on a statically-scheduled machine the static
    workload estimates are accurate and graph-partitioning assignments
    are competitive — the gap only opens on the dynamic machine. *)

open Clusteer_isa

type mode =
  | Unified  (** cluster chosen during scheduling ([21]) *)
  | Fixed of (Clusteer_ddg.Ddg.t -> int array)
      (** pre-computed assignment, e.g. RHOP or the VC partition *)

type summary = {
  regions : int;
  ops : int;
  cycles : int;  (** summed schedule makespans *)
  moves : int;
  static_ipc : float;  (** ops / cycles *)
}

val run :
  Machine.t ->
  program:Program.t ->
  likely:(int -> int option) ->
  ?region_uops:int ->
  mode ->
  summary
