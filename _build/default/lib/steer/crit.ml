open Clusteer_uarch
open Clusteer_trace
module Bitset = Clusteer_util.Bitset

let least_loaded view =
  let best = ref 0 in
  for c = 1 to view.Policy.clusters - 1 do
    if view.Policy.inflight c < view.Policy.inflight !best then best := c
  done;
  !best

let make ~critical () =
  let decide view duop =
    let id = Dynuop.static_id duop in
    let is_critical = id < Array.length critical && critical.(id) in
    if not is_critical then Policy.Dispatch_to (least_loaded view)
    else begin
      (* Critical micro-op: chase the operands. *)
      let clusters = view.Policy.clusters in
      let votes = Array.make clusters 0 in
      Array.iter
        (fun loc ->
          for c = 0 to clusters - 1 do
            if Bitset.mem loc c then votes.(c) <- votes.(c) + 1
          done)
        (view.Policy.src_locations duop);
      let best_votes = Array.fold_left max 0 votes in
      let best = ref (-1) in
      for c = clusters - 1 downto 0 do
        if
          votes.(c) = best_votes
          && (!best = -1 || view.Policy.inflight c < view.Policy.inflight !best)
        then best := c
      done;
      Policy.Dispatch_to !best
    end
  in
  {
    Policy.name = "crit";
    decide;
    uses_dependence_check = true;
    uses_vote_unit = true;
  }
