open Clusteer_isa

type region_slack = { region : Region.t; crit : Critical.t }

let analyze ~program ~likely ?(region_uops = 512) () =
  Region.build ~program ~likely ~max_uops:region_uops
  |> List.map (fun region ->
         { region; crit = Critical.analyze (Ddg.of_region region) })

let iter rs f =
  Array.iteri
    (fun node u -> f ~node ~uop:u ~slack:rs.crit.Critical.slack.(node))
    rs.region.Region.uops

let hints ~program ~likely ?(region_uops = 512) ?(slack_threshold = 0) () =
  let critical = Array.make program.Program.uop_count false in
  List.iter
    (fun rs ->
      iter rs (fun ~node:_ ~uop ~slack ->
          if slack <= slack_threshold then critical.(uop.Uop.id) <- true))
    (analyze ~program ~likely ~region_uops ());
  critical
