lib/trace/branch_model.mli:
