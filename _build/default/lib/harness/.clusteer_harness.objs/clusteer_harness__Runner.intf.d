lib/harness/runner.mli: Clusteer Clusteer_uarch Clusteer_workloads Config Pinpoints Profile Stats Synth
