module Json = Clusteer_obs.Json
module Counters = Clusteer_obs.Counters
module Ledger = Clusteer_obs.Ledger
module Runner = Clusteer_harness.Runner
module Stats = Clusteer_uarch.Stats
module Config = Clusteer_uarch.Config
module Profile = Clusteer_workloads.Profile
module Configuration = Clusteer.Configuration
module Ustats = Clusteer_util.Stats
module Table = Clusteer_util.Table

type eval = {
  candidate : int array;
  score : float;
  per_benchmark : (string * float) list;
}

type verdict = Win | Loss | Tie

type row = {
  benchmark : string;
  champion_ipc : float;
  challenger_ipc : float;
  delta_pct : float;
  verdict : verdict;
  tie_broken : bool;
}

type ab = {
  epsilon_pct : float;
  tie_seeds : int;
  rows : row list;
  wins : int;
  losses : int;
  ties : int;
  challenger_wins : bool;
}

type t = {
  space : string;
  search : string;
  seed : int;
  max_evals : int;
  clusters : int;
  uops : int;
  workloads : string list;
  evals : eval list;
  champion : eval;
  challenger : eval;
  incumbent_loaded : bool;
  ab : ab;
}

(* ---- evaluation -------------------------------------------------- *)

let evaluate ~space ~workloads ~clusters ~uops ?domains ?ledger candidate =
  let machine = Param_space.machine space ~clusters candidate in
  let config, params = Param_space.materialize space candidate in
  let config_name = Configuration.name config in
  let committed_counter = Counters.counter "harness.uops_committed" in
  let before = Counters.value committed_counter in
  let started = Unix.gettimeofday () in
  let grouped, wall_s, gc =
    Runner.measured (fun () ->
        Runner.run_grouped ?domains ~params ~machine ~configs:[ config ] ~uops
          workloads)
  in
  let per_benchmark =
    List.map
      (fun ((profile : Profile.t), results) ->
        ( profile.Profile.name,
          Runner.weighted_metric results ~config:config_name ~f:Stats.ipc ))
      grouped
  in
  let score =
    Ustats.geomean (Array.of_list (List.map snd per_benchmark))
  in
  let committed = Counters.value committed_counter - before in
  Counters.incr (Counters.counter "tune.evals");
  Counters.add (Counters.counter "tune.uops_committed") committed;
  Option.iter
    (fun ledger ->
      ignore
        (Ledger.append ledger ~kind:"tune"
           ~label:
             (Printf.sprintf "%s: %s" (Param_space.name space)
                (Param_space.label space candidate))
           ~config:
             (Json.Obj
                [
                  ("space", Json.Str (Param_space.name space));
                  ("config", Json.Str config_name);
                  ("candidate", Param_space.candidate_to_json space candidate);
                  ("score", Json.Float score);
                ])
           ~started ~wall_s ~outcome:"ok" ~uops:committed ~gc
           Counters.default))
    ledger;
  { candidate; score; per_benchmark }

(* Phase-weighted IPC of one configuration on one benchmark, averaged
   over the canonical stream and [tie_seeds] salted ones — the tie-
   break measurement. *)
let replicated_ipc ~space ~clusters ~uops ?domains ~tie_seeds candidate profile
    =
  let machine = Param_space.machine space ~clusters candidate in
  let config, params = Param_space.materialize space candidate in
  let config_name = Configuration.name config in
  let ipcs =
    List.init (tie_seeds + 1) (fun salt ->
        let results =
          Runner.run_benchmark ?domains ~params ~trace_salt:salt ~machine
            ~configs:[ config ] ~uops profile
        in
        Runner.weighted_metric results ~config:config_name ~f:Stats.ipc)
  in
  Ustats.mean (Array.of_list ipcs)

(* ---- AB comparison ----------------------------------------------- *)

let delta_pct ~champion ~challenger =
  if champion = 0.0 then 0.0
  else (challenger -. champion) /. champion *. 100.0

let classify ~epsilon_pct d =
  if d > epsilon_pct then Win else if d < -.epsilon_pct then Loss else Tie

let compare_ab ~space ~clusters ~uops ?domains ~epsilon_pct ~tie_seeds
    ~workloads ~champion ~challenger () =
  let rows =
    List.map
      (fun (profile : Profile.t) ->
        let benchmark = profile.Profile.name in
        let champion_ipc = List.assoc benchmark champion.per_benchmark in
        let challenger_ipc = List.assoc benchmark challenger.per_benchmark in
        let d = delta_pct ~champion:champion_ipc ~challenger:challenger_ipc in
        match classify ~epsilon_pct d with
        | (Win | Loss) as verdict ->
            {
              benchmark;
              champion_ipc;
              challenger_ipc;
              delta_pct = d;
              verdict;
              tie_broken = false;
            }
        | Tie when tie_seeds = 0 ->
            {
              benchmark;
              champion_ipc;
              challenger_ipc;
              delta_pct = d;
              verdict = Tie;
              tie_broken = false;
            }
        | Tie ->
            (* Within noise on the canonical stream: replicate both
               sides over extra deterministic streams and re-classify
               on the means. *)
            Counters.incr (Counters.counter "tune.tie_breaks");
            let champion_ipc =
              replicated_ipc ~space ~clusters ~uops ?domains ~tie_seeds
                champion.candidate profile
            in
            let challenger_ipc =
              replicated_ipc ~space ~clusters ~uops ?domains ~tie_seeds
                challenger.candidate profile
            in
            let d =
              delta_pct ~champion:champion_ipc ~challenger:challenger_ipc
            in
            let verdict = classify ~epsilon_pct d in
            {
              benchmark;
              champion_ipc;
              challenger_ipc;
              delta_pct = d;
              verdict;
              tie_broken = verdict <> Tie;
            })
      workloads
  in
  let count v = List.length (List.filter (fun r -> r.verdict = v) rows) in
  let wins = count Win and losses = count Loss and ties = count Tie in
  {
    epsilon_pct;
    tie_seeds;
    rows;
    wins;
    losses;
    ties;
    challenger_wins = wins > losses;
  }

(* ---- the study --------------------------------------------------- *)

let same_candidate a b = a = b

let run ~space ~algo ~seed ~max_evals ~workloads ~clusters ~uops ?domains
    ?ledger ?incumbent ?(epsilon_pct = 0.5) ?(tie_seeds = 2)
    ?(progress = fun _ -> ()) () =
  let evaluate = evaluate ~space ~workloads ~clusters ~uops ?domains ?ledger in
  let order = ref [] in
  let n = ref 0 in
  let eval candidate =
    let e = evaluate candidate in
    order := e :: !order;
    incr n;
    progress
      (Printf.sprintf "eval %d/%d: %s -> %.4f" !n max_evals
         (Param_space.label space candidate)
         e.score);
    e.score
  in
  ignore (Search.run space ~algo ~seed ~max_evals ~eval);
  let evals = List.rev !order in
  let challenger =
    match evals with
    | [] -> invalid_arg "Study.run: no evaluations"
    | e :: rest ->
        List.fold_left (fun best e -> if e.score > best.score then e else best)
          e rest
  in
  let incumbent_candidate, incumbent_loaded =
    match incumbent with
    | Some c -> (c, true)
    | None -> (Param_space.default_candidate space, false)
  in
  let champion =
    match
      List.find_opt
        (fun e -> same_candidate e.candidate incumbent_candidate)
        evals
    with
    | Some e -> e
    | None ->
        progress
          (Printf.sprintf "scoring incumbent: %s"
             (Param_space.label space incumbent_candidate));
        evaluate incumbent_candidate
  in
  let ab =
    compare_ab ~space ~clusters ~uops ?domains ~epsilon_pct ~tie_seeds
      ~workloads ~champion ~challenger ()
  in
  {
    space = Param_space.name space;
    search = Search.algo_to_string algo;
    seed;
    max_evals;
    clusters;
    uops;
    workloads = List.map (fun (p : Profile.t) -> p.Profile.name) workloads;
    evals;
    champion;
    challenger;
    incumbent_loaded;
    ab;
  }

let winner t = if t.ab.challenger_wins then t.challenger else t.champion

(* ---- JSON -------------------------------------------------------- *)

let space_of t = Param_space.find t.space

let eval_to_json space e =
  Json.Obj
    [
      ("candidate", Param_space.candidate_to_json space e.candidate);
      ("score", Json.Float e.score);
      ( "per_benchmark",
        Json.Obj (List.map (fun (b, ipc) -> (b, Json.Float ipc)) e.per_benchmark)
      );
    ]

let verdict_to_string = function Win -> "win" | Loss -> "loss" | Tie -> "tie"

let verdict_of_string = function
  | "win" -> Ok Win
  | "loss" -> Ok Loss
  | "tie" -> Ok Tie
  | s -> Error (Printf.sprintf "unknown verdict %S" s)

let row_to_json r =
  Json.Obj
    [
      ("benchmark", Json.Str r.benchmark);
      ("champion_ipc", Json.Float r.champion_ipc);
      ("challenger_ipc", Json.Float r.challenger_ipc);
      ("delta_pct", Json.Float r.delta_pct);
      ("verdict", Json.Str (verdict_to_string r.verdict));
      ("tie_broken", Json.Bool r.tie_broken);
    ]

let ab_to_json ab =
  Json.Obj
    [
      ("epsilon_pct", Json.Float ab.epsilon_pct);
      ("tie_seeds", Json.Int ab.tie_seeds);
      ("rows", Json.List (List.map row_to_json ab.rows));
      ("wins", Json.Int ab.wins);
      ("losses", Json.Int ab.losses);
      ("ties", Json.Int ab.ties);
      ("challenger_wins", Json.Bool ab.challenger_wins);
    ]

let to_json t =
  let space =
    match space_of t with
    | Ok s -> s
    | Error (`Msg m) -> invalid_arg ("Study.to_json: " ^ m)
  in
  Json.Obj
    [
      ("kind", Json.Str "tune_study");
      ("space", Json.Str t.space);
      ("search", Json.Str t.search);
      ("seed", Json.Int t.seed);
      ("max_evals", Json.Int t.max_evals);
      ("clusters", Json.Int t.clusters);
      ("uops", Json.Int t.uops);
      ("workloads", Json.List (List.map (fun w -> Json.Str w) t.workloads));
      ("evals", Json.List (List.map (eval_to_json space) t.evals));
      ("champion", eval_to_json space t.champion);
      ("challenger", eval_to_json space t.challenger);
      ("incumbent_loaded", Json.Bool t.incumbent_loaded);
      ("ab", ab_to_json t.ab);
    ]

(* Decoding helpers: a tiny applicative over [option] keeps the field
   plumbing short. *)
let field name f json err =
  match Option.bind (Json.member name json) f with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "study: missing or invalid %S" err)

let get name f json = field name f json name

let ( let* ) = Result.bind

let eval_of_json space json =
  let* candidate =
    match Json.member "candidate" json with
    | Some c -> Param_space.candidate_of_json space c
    | None -> Error "eval: missing \"candidate\""
  in
  let* score = get "score" Json.to_float json in
  let* per_benchmark =
    match Json.member "per_benchmark" json with
    | Some (Json.Obj fields) ->
        let rec decode acc = function
          | [] -> Ok (List.rev acc)
          | (b, v) :: rest -> (
              match Json.to_float v with
              | Some ipc -> decode ((b, ipc) :: acc) rest
              | None -> Error ("eval: bad IPC for " ^ b))
        in
        decode [] fields
    | _ -> Error "eval: missing \"per_benchmark\""
  in
  Ok { candidate; score; per_benchmark }

let row_of_json json =
  let* benchmark = get "benchmark" Json.to_str json in
  let* champion_ipc = get "champion_ipc" Json.to_float json in
  let* challenger_ipc = get "challenger_ipc" Json.to_float json in
  let* delta_pct = get "delta_pct" Json.to_float json in
  let* verdict_s = get "verdict" Json.to_str json in
  let* verdict = verdict_of_string verdict_s in
  let* tie_broken = get "tie_broken" Json.to_bool json in
  Ok { benchmark; champion_ipc; challenger_ipc; delta_pct; verdict; tie_broken }

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let ab_of_json json =
  let* epsilon_pct = get "epsilon_pct" Json.to_float json in
  let* tie_seeds = get "tie_seeds" Json.to_int json in
  let* rows =
    match Option.bind (Json.member "rows" json) Json.to_list with
    | Some items -> map_result row_of_json items
    | None -> Error "ab: missing \"rows\""
  in
  let* wins = get "wins" Json.to_int json in
  let* losses = get "losses" Json.to_int json in
  let* ties = get "ties" Json.to_int json in
  let* challenger_wins = get "challenger_wins" Json.to_bool json in
  Ok { epsilon_pct; tie_seeds; rows; wins; losses; ties; challenger_wins }

let of_json json =
  let* space_name = get "space" Json.to_str json in
  let* space =
    match Param_space.find space_name with
    | Ok s -> Ok s
    | Error (`Msg m) -> Error m
  in
  let* search = get "search" Json.to_str json in
  let* seed = get "seed" Json.to_int json in
  let* max_evals = get "max_evals" Json.to_int json in
  let* clusters = get "clusters" Json.to_int json in
  let* uops = get "uops" Json.to_int json in
  let* workloads =
    match Option.bind (Json.member "workloads" json) Json.to_list with
    | Some items ->
        map_result
          (fun w ->
            match Json.to_str w with
            | Some s -> Ok s
            | None -> Error "study: bad workload name")
          items
    | None -> Error "study: missing \"workloads\""
  in
  let* evals =
    match Option.bind (Json.member "evals" json) Json.to_list with
    | Some items -> map_result (eval_of_json space) items
    | None -> Error "study: missing \"evals\""
  in
  let* champion =
    match Json.member "champion" json with
    | Some j -> eval_of_json space j
    | None -> Error "study: missing \"champion\""
  in
  let* challenger =
    match Json.member "challenger" json with
    | Some j -> eval_of_json space j
    | None -> Error "study: missing \"challenger\""
  in
  let* incumbent_loaded = get "incumbent_loaded" Json.to_bool json in
  let* ab =
    match Json.member "ab" json with
    | Some j -> ab_of_json j
    | None -> Error "study: missing \"ab\""
  in
  Ok
    {
      space = space_name;
      search;
      seed;
      max_evals;
      clusters;
      uops;
      workloads;
      evals;
      champion;
      challenger;
      incumbent_loaded;
      ab;
    }

(* ---- artifacts --------------------------------------------------- *)

let mkdir_for file =
  let dir = Filename.dirname file in
  if dir <> "." && dir <> "/" && not (Sys.file_exists dir) then
    Unix.mkdir dir 0o755

let write_atomic ~file json =
  mkdir_for file;
  let tmp = file ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp file

let save ~file t = write_atomic ~file (to_json t)

let load ~file =
  match In_channel.with_open_text file In_channel.input_all with
  | exception Sys_error m -> Error m
  | contents ->
      let* json = Json.of_string contents in
      of_json json

let champion_json t =
  let space =
    match space_of t with
    | Ok s -> s
    | Error (`Msg m) -> invalid_arg ("Study.champion_json: " ^ m)
  in
  let w = winner t in
  let config, _ = Param_space.materialize space w.candidate in
  Json.Obj
    [
      ("kind", Json.Str "tune_champion");
      ("space", Json.Str t.space);
      ("config", Json.Str (Configuration.name config));
      ("candidate", Param_space.candidate_to_json space w.candidate);
      ("score", Json.Float w.score);
      ("label", Json.Str (Param_space.label space w.candidate));
    ]

let save_champion ~file t = write_atomic ~file (champion_json t)

let load_champion ~space ~file =
  if not (Sys.file_exists file) then Ok None
  else
    match In_channel.with_open_text file In_channel.input_all with
    | exception Sys_error m -> Error m
    | contents -> (
        let* json = Json.of_string contents in
        match Json.member "space" json with
        | Some (Json.Str s) when s <> Param_space.name space ->
            Error
              (Printf.sprintf
                 "champion %s was promoted from space %S, not %S" file s
                 (Param_space.name space))
        | _ -> (
            match Json.member "candidate" json with
            | None -> Error (file ^ ": missing \"candidate\"")
            | Some c ->
                let* candidate = Param_space.candidate_of_json space c in
                Ok (Some candidate)))

(* ---- report ------------------------------------------------------ *)

let report ppf t =
  let space =
    match space_of t with
    | Ok s -> s
    | Error (`Msg m) -> invalid_arg ("Study.report: " ^ m)
  in
  Format.fprintf ppf
    "tune study: space=%s search=%s seed=%d max-evals=%d clusters=%d uops=%d@."
    t.space t.search t.seed t.max_evals t.clusters t.uops;
  Format.fprintf ppf "workloads: %s@." (String.concat ", " t.workloads);
  Format.fprintf ppf "evaluations: %d@.@." (List.length t.evals);
  let ranked =
    List.stable_sort (fun a b -> compare b.score a.score) t.evals
  in
  let top = List.filteri (fun i _ -> i < 10) ranked in
  Format.fprintf ppf "leaderboard (top %d of %d, geomean weighted IPC):@."
    (List.length top) (List.length t.evals);
  Format.pp_print_string ppf
    (Table.render
       ~header:[| "#"; "score"; "candidate" |]
       (List.mapi
          (fun i e ->
            [|
              string_of_int (i + 1);
              Table.fmt_float ~decimals:4 e.score;
              Param_space.label space e.candidate;
            |])
          top));
  Format.fprintf ppf "@.champion%s: %s (score %s)@."
    (if t.incumbent_loaded then " (incumbent)" else " (paper default)")
    (Param_space.label space t.champion.candidate)
    (Table.fmt_float ~decimals:4 t.champion.score);
  Format.fprintf ppf "challenger: %s (score %s)@.@."
    (Param_space.label space t.challenger.candidate)
    (Table.fmt_float ~decimals:4 t.challenger.score);
  Format.fprintf ppf "AB comparison (epsilon %.2f%%, %d tie seeds):@."
    t.ab.epsilon_pct t.ab.tie_seeds;
  Format.pp_print_string ppf
    (Table.render
       ~header:
         [| "benchmark"; "champion"; "challenger"; "delta"; "verdict" |]
       (List.map
          (fun r ->
            [|
              r.benchmark;
              Table.fmt_float ~decimals:4 r.champion_ipc;
              Table.fmt_float ~decimals:4 r.challenger_ipc;
              Table.fmt_percent ~decimals:2 r.delta_pct;
              (verdict_to_string r.verdict
              ^ if r.tie_broken then " (tie-broken)" else "");
            |])
          t.ab.rows));
  Format.fprintf ppf "@.wins %d / losses %d / ties %d -> %s@." t.ab.wins
    t.ab.losses t.ab.ties
    (if t.ab.challenger_wins then "challenger wins: promote"
     else "champion retained");
  let w = winner t in
  Format.fprintf ppf "winner: %s (score %s)@."
    (Param_space.label space w.candidate)
    (Table.fmt_float ~decimals:4 w.score)
