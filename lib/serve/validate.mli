(** Analyzer-backed admission validation.

    Before the server queues a cache-miss simulation it runs the
    [lib/analysis] static verifier over the request's compiled
    program + annotation: IR well-formedness, chain/leader invariants
    and static-placement ranges. A request that would simulate garbage
    (or crash a compiler pass) is rejected up front with
    [check_failed] instead of occupying a worker. The gate is strict:
    warnings reject too (e.g. [VC010], a [vcN] policy asking for more
    virtual clusters than the workload has static micro-ops).

    Unknown workloads and invalid profile overrides are {e not} this
    module's business — the server's resolution step already answers
    those with a precise [Error_reply]; the validator accepts them
    unexamined.

    Verdicts are memoized per (workload, policy, clusters, overrides):
    the annotation is a pure function of those fields, so a server
    lifetime sees each distinct combination compiled and checked once. *)

val check : Request.t -> (unit, string) result
(** [Error] carries a one-line explanation: the first (most severe)
    diagnostic, plus the error count. *)

val install : unit -> unit
(** Point {!Request.check_hook} at {!check}. Idempotent. *)
