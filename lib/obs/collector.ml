module Ring = Clusteer_util.Ring

type t = {
  ring : Event.t Ring.t;
  interval : int;
  mutable emitted : int;
  mutable dropped : int;
  mutable last : Interval.snapshot option;
  mutable samples_rev : Interval.sample list;
}

let create ?(capacity = 65536) ?(interval = 0) () =
  if interval < 0 then invalid_arg "Collector.create: negative interval";
  {
    ring = Ring.create ~capacity;
    interval;
    emitted = 0;
    dropped = 0;
    last = None;
    samples_rev = [];
  }

let emit t ev =
  t.emitted <- t.emitted + 1;
  if not (Ring.push t.ring ev) then begin
    (* Full: discard the oldest so the ring always holds the most
       recent window. *)
    ignore (Ring.pop t.ring);
    t.dropped <- t.dropped + 1;
    let pushed = Ring.push t.ring ev in
    assert pushed
  end

(* A zeroed snapshot shaped like [snap], standing in for the implicit
   state at cycle 0: all cumulative counters start at zero, so the very
   first interval (and the first one after a counter reset) is a real
   sample, not a discarded baseline. *)
let zero_of (snap : Interval.snapshot) =
  {
    Interval.cycle = 0;
    committed = 0;
    dispatched = 0;
    copies_generated = 0;
    copies_executed = 0;
    link_transfers = 0;
    stalls = Array.map (fun _ -> 0) snap.Interval.stalls;
    per_cluster_dispatched =
      Array.map (fun _ -> 0) snap.Interval.per_cluster_dispatched;
  }

let on_snapshot t (snap : Interval.snapshot) =
  (match t.last with
  | Some prev
    when snap.Interval.committed >= prev.Interval.committed
         && snap.Interval.cycle > prev.Interval.cycle ->
      t.samples_rev <- Interval.diff prev snap :: t.samples_rev
  | Some _ | None ->
      (* First snapshot, or the engine reset its counters (end of
         warmup): the series restarts against an implicit zero
         baseline. *)
      if snap.Interval.cycle > 0 then
        t.samples_rev <- Interval.diff (zero_of snap) snap :: t.samples_rev);
  t.last <- Some snap

let sink t =
  {
    Sink.emit = emit t;
    interval = t.interval;
    on_snapshot = on_snapshot t;
  }

let events t = Ring.to_list t.ring
let event_count t = t.emitted
let dropped t = t.dropped
let samples t = List.rev t.samples_rev

let clear t =
  Ring.clear t.ring;
  t.emitted <- 0;
  t.dropped <- 0;
  t.last <- None;
  t.samples_rev <- []
