(** Memory address stream models.

    Each load/store micro-op names a stream id; the trace generator
    materialises concrete byte addresses from the stream's model. The
    models cover the behaviours that matter for the cache hierarchy:
    sequential array walks (high spatial locality), uniform accesses
    inside a working set (locality controlled by the set size vs the
    cache size), and serially-dependent pointer chases. *)

type t =
  | Strided of { base : int; stride : int; footprint : int }
      (** walks [base, base+stride, ...] wrapping every [footprint]
          bytes; [stride <> 0], [footprint > 0] *)
  | Uniform of { base : int; footprint : int; granule : int }
      (** [granule]-aligned accesses over [footprint] bytes with 80/20
          temporal locality: 80% of draws fall in a hot subset (a
          sixteenth of the footprint, at least 4KB) *)
  | Chase of { base : int; footprint : int }
      (** pointer chase: pseudo-random 8-byte-aligned walk inside the
          footprint where each address depends on the previous one *)

type state

val make_state : t array -> seed:int -> state
val reset : state -> unit
val next_address : state -> int -> int
(** [next_address st id] draws the next byte address of stream [id]. *)

val extent : t -> int * int
(** [(base, bytes)] address range the stream can touch — used to
    pre-warm simulated caches the way checkpointed simulation points
    restore cache state. *)

val describe : t -> string
