(** Chain and chain-leader identification (paper Figure 3).

    Within a region, a {e chain} is a maximal run of consecutive
    (program-order) micro-ops carrying the same virtual-cluster id. The
    first micro-op of each chain is its {e leader} and gets a special
    mark: at run time the hardware consults the workload counters and
    updates the VC→physical mapping table only when it decodes a
    leader; every non-leader simply follows the current table entry.
    Chain selection therefore controls how often the hardware may
    rebalance — the knob the whole hybrid scheme turns on.

    {b Chain-length cap} ([max_chain], unit: micro-ops; default 0 =
    unlimited, the paper's Figure 3 semantics): when positive, a run of
    same-VC micro-ops is split into chains of at most [max_chain]
    micro-ops, each starting with its own leader mark. A shorter cap
    gives the hardware mapper more remap opportunities (better load
    tracking) at the price of more table consultations and potentially
    more remap-induced copies — a tunable the paper never swept, exposed
    to {!Clusteer_tune.Param_space} as [max_chain]. *)

open Clusteer_isa

val iter_chain_starts :
  ?max_chain:int ->
  vc_of:(int -> int) ->
  Clusteer_ddg.Region.t ->
  (int -> vc:int -> start:bool -> unit) ->
  unit
(** Walk the region's micro-ops in program order, telling the callback
    for each uop id whether it starts a chain under the given VC
    assignment and cap. This is the single source of truth for chain
    structure: {!mark_region} writes leader marks through it and the
    static analyzer's VC005/VC006 checks recompute expectations through
    it, so the two can never drift. *)

val mark_region : ?max_chain:int -> Annot.t -> Clusteer_ddg.Region.t -> unit
(** Set leader marks for one region whose [vc_of] entries are already
    filled. The region's first micro-op always starts a chain. *)

val chains_of_region :
  ?max_chain:int -> Annot.t -> Clusteer_ddg.Region.t -> int list list
(** The chains, each as the list of uop ids, in program order.
    Useful for inspection and tests. *)
