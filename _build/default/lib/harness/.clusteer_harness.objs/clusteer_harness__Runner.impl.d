lib/harness/runner.ml: Array Clusteer Clusteer_trace Clusteer_uarch Clusteer_util Clusteer_workloads Config Engine List Option Pinpoints Printf Profile Stats Synth
