examples/quickstart.mli:
