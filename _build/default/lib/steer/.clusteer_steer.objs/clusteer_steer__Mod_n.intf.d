lib/steer/mod_n.mli: Clusteer_uarch
