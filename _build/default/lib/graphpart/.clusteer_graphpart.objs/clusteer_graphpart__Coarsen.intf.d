lib/graphpart/coarsen.mli: Partition Wgraph
