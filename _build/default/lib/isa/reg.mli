(** Architectural registers of the micro-op ISA.

    Two classes, integer and floating point, mirroring the paper's
    backend split (separate INT and FP issue queues and register files
    per cluster). Registers are identified by a class and a small
    index; [encode] flattens them into a dense integer space for the
    renaming tables. *)

type cls = Int_class | Fp_class

type t = { cls : cls; idx : int }

val int : int -> t
(** [int i] is integer register [Ri]. *)

val fp : int -> t
(** [fp i] is floating-point register [Fi]. *)

val encode : nregs_per_class:int -> t -> int
(** Dense encoding in [\[0, 2*nregs_per_class)]. Raises
    [Invalid_argument] if [idx] is out of range. *)

val decode : nregs_per_class:int -> int -> t
(** Inverse of {!encode}. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
