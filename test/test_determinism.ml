(* Determinism guarantees of this reproduction:

   1. The domain-parallel harness is bit-identical to a sequential
      run: [run_suite ~domains:1] and [~domains:4] produce equal
      per-point statistics (checked with [Stats.equal] and on the
      serialized JSON).

   2. The zero-allocation steering fast paths decide exactly like
      straightforward list-based implementations of the same policies:
      we record every [Policy.decide] outcome over a full engine run
      and compare the sequences decision by decision. Identical
      decisions imply identical machine evolution, so the first
      divergence (if any) is caught at its earliest point. *)

open Clusteer_isa
open Clusteer_uarch
open Clusteer_workloads
module Harness = Clusteer_harness
module Steer = Clusteer_steer
module Bitset = Clusteer_util.Bitset
module Json = Clusteer_obs.Json

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- parallel harness vs sequential ------------------------------ *)

let mini_suite =
  [
    { (Spec2000.find "gzip-1") with Profile.phases = 2 };
    { (Spec2000.find "galgel") with Profile.phases = 2 };
  ]

let mini_configs =
  [
    Clusteer.Configuration.Op;
    Clusteer.Configuration.Vc { virtual_clusters = 2 };
  ]

let run_mini ~domains =
  Harness.Runner.run_suite ~domains ~machine:Config.default_2c
    ~configs:mini_configs ~uops:1500 mini_suite

let test_suite_parallel_equals_sequential () =
  let seq = run_mini ~domains:1 in
  let par = run_mini ~domains:4 in
  check_int "same point count" (List.length seq) (List.length par);
  List.iter2
    (fun (a : Harness.Runner.point_result) (b : Harness.Runner.point_result) ->
      Alcotest.(check string)
        "same benchmark" a.point.Pinpoints.benchmark b.point.Pinpoints.benchmark;
      check_int "same phase" a.point.Pinpoints.index b.point.Pinpoints.index;
      List.iter2
        (fun (name_a, stats_a) (name_b, stats_b) ->
          Alcotest.(check string) "same config" name_a name_b;
          check_bool (name_a ^ " Stats.equal") true (Stats.equal stats_a stats_b);
          Alcotest.(check string)
            (name_a ^ " identical JSON")
            (Json.to_string (Stats.to_json stats_a))
            (Json.to_string (Stats.to_json stats_b)))
        a.runs b.runs)
    seq par

let test_chunked_sharding_equals_sequential () =
  let seq = run_mini ~domains:1 in
  let par =
    Harness.Runner.run_suite ~domains:3 ~chunk:2 ~machine:Config.default_2c
      ~configs:mini_configs ~uops:1500 mini_suite
  in
  List.iter2
    (fun (a : Harness.Runner.point_result) (b : Harness.Runner.point_result) ->
      List.iter2
        (fun (_, sa) (_, sb) ->
          check_bool "chunked Stats.equal" true (Stats.equal sa sb))
        a.runs b.runs)
    seq par

(* ---- static vs stealing strategy agreement ------------------------ *)

(* The two scheduling strategies differ in everything the harness is
   allowed to vary — item→domain mapping, per-shard state reuse vs
   per-item rebuild, registry granularity — so agreement here pins the
   whole shared-nothing refactor: random suites must produce
   bit-identical per-point statistics AND bit-identical merged counter
   registries under both strategies, for any domain count. *)
let prop_strategies_agree =
  let open QCheck in
  let profile_gen =
    Gen.map2
      (fun name phases -> { (Spec2000.find name) with Profile.phases })
      (Gen.oneofl [ "gzip-1"; "galgel"; "swim" ])
      (Gen.int_range 1 2)
  in
  let case =
    make
      ~print:(fun (profiles, domains) ->
        Printf.sprintf "domains=%d suite=[%s]" domains
          (String.concat "; "
             (List.map
                (fun (p : Profile.t) ->
                  Printf.sprintf "%s x%d" p.Profile.name p.Profile.phases)
                profiles)))
      (Gen.pair
         (Gen.list_size (Gen.int_range 1 3) profile_gen)
         (Gen.int_range 1 8))
  in
  Test.make ~name:"static and stealing strategies agree" ~count:8 case
    (fun (profiles, domains) ->
      let run strategy =
        (* The suite merges shard registries into the default registry;
           start each run from the same zeroed state so the registry
           JSONs are directly comparable. *)
        Clusteer_obs.Counters.reset Clusteer_obs.Counters.default;
        let results =
          Harness.Runner.run_suite ~domains ~strategy
            ~machine:Config.default_2c ~configs:mini_configs ~uops:500
            profiles
        in
        let stats_json =
          List.map
            (fun (r : Harness.Runner.point_result) ->
              List.map
                (fun (name, s) -> (name, Json.to_string (Stats.to_json s)))
                r.runs)
            results
        in
        let registry_json =
          Json.to_string
            (Clusteer_obs.Counters.to_json Clusteer_obs.Counters.default)
        in
        (stats_json, registry_json)
      in
      run Clusteer_util.Parallel.Static = run Clusteer_util.Parallel.Steal)

(* ---- shared trace buffer vs fresh generators ----------------------- *)

(* [run_workload] feeds every configuration from one shared,
   lazily-extended trace buffer (the warmup stream is generated once
   per point, not once per configuration). The replay must stay
   bit-identical to the naive form — a fresh generator per
   configuration — and commit exactly the asked-for budget per run. *)
let test_shared_trace_matches_fresh_generators () =
  let profile = { (Spec2000.find "gzip-1") with Profile.phases = 1 } in
  let workload = Synth.build profile in
  let machine = Config.default_2c in
  let uops = 1200 and seed = 42 in
  let registry = Clusteer_obs.Counters.create () in
  let shared =
    Harness.Runner.run_workload ~seed ~registry ~machine ~configs:mini_configs
      ~uops workload
  in
  let manual =
    List.map
      (fun config ->
        let annot, policy =
          Clusteer.Configuration.prepare config
            ~program:workload.Synth.program ~likely:workload.Synth.likely
            ~clusters:machine.Config.clusters ()
        in
        let prewarm =
          Array.to_list
            (Array.map Clusteer_trace.Mem_model.extent workload.Synth.streams)
        in
        let engine =
          Engine.create ~config:machine ~annot ~policy ~prewarm ()
        in
        let gen = Synth.trace workload ~seed in
        let stats =
          Engine.run
            ~warmup:(Harness.Runner.default_warmup uops)
            engine
            ~source:(fun () -> Clusteer_trace.Tracegen.next gen)
            ~uops
        in
        (Clusteer.Configuration.name config, stats))
      mini_configs
  in
  List.iter2
    (fun (name_a, sa) (name_b, sb) ->
      Alcotest.(check string) "same config" name_a name_b;
      check_bool
        (name_a ^ " met the measured budget") true
        (sa.Stats.committed >= uops);
      check_bool (name_a ^ " shared trace bit-identical") true
        (Stats.equal sa sb))
    shared manual;
  (* The warmup hoist must not change what gets attributed to the run:
     the counter is exactly the measured commits, summed per config. *)
  check_int "committed counter sums the per-config commits"
    (List.fold_left (fun acc (_, s) -> acc + s.Stats.committed) 0 shared)
    (Clusteer_obs.Counters.value
       (Clusteer_obs.Counters.counter ~registry "harness.uops_committed"))

(* ---- fast-path policies vs list-based references ------------------- *)

(* Straightforward list-based reimplementations of the steering
   policies, written in the style of the original (pre-fast-path)
   code. [ref_op] includes the rotation tie-break — the one deliberate
   behaviour change of the fast-path rewrite; the others mirror the
   seed implementations exactly. *)

let least_loaded view candidates =
  match candidates with
  | [] -> invalid_arg "reference: no candidates"
  | first :: rest ->
      List.fold_left
        (fun best c ->
          if view.Policy.inflight c < view.Policy.inflight best then c else best)
        first rest

let vote_candidates view locations ~order =
  let clusters = view.Policy.clusters in
  let votes = Array.make clusters 0 in
  Array.iter
    (fun loc ->
      for c = 0 to clusters - 1 do
        if Bitset.mem loc c then votes.(c) <- votes.(c) + 1
      done)
    locations;
  let best = Array.fold_left max 0 votes in
  List.filter (fun c -> votes.(c) = best) order

let ref_op ?(stall_threshold = 36) ?(imbalance_limit = 200) () =
  let ndecisions = ref 0 in
  let decide view duop =
    let u = duop.Clusteer_trace.Dynuop.suop in
    let queue = Opcode.queue u.Uop.opcode in
    let clusters = view.Policy.clusters in
    let rot = !ndecisions mod clusters in
    incr ndecisions;
    let order = List.init clusters (fun k -> (rot + k) mod clusters) in
    let candidates =
      vote_candidates view (view.Policy.src_locations duop) ~order
    in
    let preferred = least_loaded view candidates in
    let min_load =
      List.fold_left (fun acc c -> min acc (view.Policy.inflight c)) max_int
        order
    in
    let preferred =
      if view.Policy.inflight preferred - min_load > imbalance_limit then
        least_loaded view order
      else preferred
    in
    if view.Policy.queue_free preferred queue > 0 then
      Policy.Dispatch_to preferred
    else
      match
        List.filter
          (fun c ->
            c <> preferred && view.Policy.queue_free c queue >= stall_threshold)
          order
      with
      | [] -> Policy.Stall
      | cs -> Policy.Dispatch_to (least_loaded view cs)
  in
  {
    Policy.name = "op-ref";
    decide;
    uses_dependence_check = true;
    uses_vote_unit = true;
  }

let ref_dep () =
  let decide view duop =
    let clusters = view.Policy.clusters in
    let votes = Array.make clusters 0 in
    Array.iter
      (fun loc ->
        for c = 0 to clusters - 1 do
          if Bitset.mem loc c then votes.(c) <- votes.(c) + 1
        done)
      (view.Policy.src_locations duop);
    let best_votes = Array.fold_left max 0 votes in
    let best = ref (-1) in
    for c = clusters - 1 downto 0 do
      if
        votes.(c) = best_votes
        && (!best = -1 || view.Policy.inflight c < view.Policy.inflight !best)
      then best := c
    done;
    Policy.Dispatch_to !best
  in
  {
    Policy.name = "dep-ref";
    decide;
    uses_dependence_check = true;
    uses_vote_unit = true;
  }

let ref_op_parallel ?(stall_threshold = 36) ?(imbalance_limit = 200) () =
  let cycle = ref (-1) in
  let stale : (Reg.t, Bitset.t) Hashtbl.t = Hashtbl.create 16 in
  let decide view duop =
    if view.Policy.cycle () <> !cycle then begin
      cycle := view.Policy.cycle ();
      Hashtbl.reset stale
    end;
    let u = duop.Clusteer_trace.Dynuop.suop in
    let queue = Opcode.queue u.Uop.opcode in
    let clusters = view.Policy.clusters in
    let all = List.init clusters Fun.id in
    let locations =
      Array.mapi
        (fun i loc ->
          match Hashtbl.find_opt stale u.Uop.srcs.(i) with
          | Some old -> old
          | None -> loc)
        (view.Policy.src_locations duop)
    in
    let preferred = least_loaded view (vote_candidates view locations ~order:all) in
    let min_load =
      List.fold_left (fun acc c -> min acc (view.Policy.inflight c)) max_int all
    in
    let preferred =
      if view.Policy.inflight preferred - min_load > imbalance_limit then
        least_loaded view all
      else preferred
    in
    let decision =
      if view.Policy.queue_free preferred queue > 0 then
        Policy.Dispatch_to preferred
      else
        match
          List.filter
            (fun c ->
              c <> preferred && view.Policy.queue_free c queue >= stall_threshold)
            all
        with
        | [] -> Policy.Stall
        | cs -> Policy.Dispatch_to (least_loaded view cs)
    in
    (match decision with
    | Policy.Dispatch_to _ ->
        Option.iter
          (fun dst ->
            if not (Hashtbl.mem stale dst) then
              Hashtbl.add stale dst (view.Policy.reg_location dst))
          u.Uop.dst
    | Policy.Stall -> ());
    decision
  in
  {
    Policy.name = "op-parallel-ref";
    decide;
    uses_dependence_check = true;
    uses_vote_unit = true;
  }

(* Record the full decision stream of [policy] over an engine run. *)
let record_decisions ~machine ~annot ~policy ~workload ~seed ~uops =
  let log = ref [] in
  let wrapped =
    {
      policy with
      Policy.decide =
        (fun view duop ->
          let d = policy.Policy.decide view duop in
          log := d :: !log;
          d);
    }
  in
  let prewarm =
    Array.to_list
      (Array.map Clusteer_trace.Mem_model.extent workload.Synth.streams)
  in
  let engine =
    Engine.create ~config:machine ~annot ~policy:wrapped ~prewarm ()
  in
  let gen = Synth.trace workload ~seed in
  ignore
    (Engine.run ~warmup:0 engine
       ~source:(fun () -> Clusteer_trace.Tracegen.next gen)
       ~uops);
  List.rev !log

let as_ints =
  List.map (function Policy.Dispatch_to c -> c | Policy.Stall -> -1)

let check_same_decisions name fast reference =
  let profile = { (Spec2000.find "gzip-1") with Profile.phases = 1 } in
  let workload = Synth.build profile in
  let annot =
    Annot.none ~uop_count:workload.Synth.program.Program.uop_count
  in
  let machine = Config.default_2c in
  let run policy =
    record_decisions ~machine ~annot ~policy ~workload ~seed:42 ~uops:2500
  in
  let fast_d = run fast and ref_d = run reference in
  check_bool (name ^ " decided at least once") true (fast_d <> []);
  Alcotest.(check (list int))
    (name ^ " identical decision stream")
    (as_ints ref_d) (as_ints fast_d)

let test_op_fast_path_matches_reference () =
  check_same_decisions "op" (Steer.Op.make ()) (ref_op ())

let test_dep_fast_path_matches_reference () =
  check_same_decisions "dep" (Steer.Dep.make ()) (ref_dep ())

let test_op_parallel_fast_path_matches_reference () =
  check_same_decisions "op-parallel"
    (Steer.Op_parallel.make ())
    (ref_op_parallel ())

let test_vc_decisions_stable () =
  (* Vc_map only memoizes its [Dispatch_to] values; two independent
     instances replaying the same trace must match decision for
     decision. *)
  let profile = { (Spec2000.find "swim") with Profile.phases = 1 } in
  let workload = Synth.build profile in
  let machine = Config.default_2c in
  let annot, _ =
    Clusteer.Configuration.prepare
      (Clusteer.Configuration.Vc { virtual_clusters = 2 })
      ~program:workload.Synth.program ~likely:workload.Synth.likely ~clusters:2
      ()
  in
  let run () =
    record_decisions ~machine ~annot
      ~policy:(Steer.Vc_map.make ~annot ~clusters:2 ())
      ~workload ~seed:7 ~uops:2000
  in
  Alcotest.(check (list int)) "vc replays identically" (as_ints (run ()))
    (as_ints (run ()))

let () =
  Alcotest.run "clusteer_determinism"
    [
      ( "parallel-harness",
        [
          Alcotest.test_case "domains 1 = domains 4" `Slow
            test_suite_parallel_equals_sequential;
          Alcotest.test_case "chunked sharding" `Slow
            test_chunked_sharding_equals_sequential;
          QCheck_alcotest.to_alcotest prop_strategies_agree;
          Alcotest.test_case "shared trace = fresh generators" `Slow
            test_shared_trace_matches_fresh_generators;
        ] );
      ( "fast-path",
        [
          Alcotest.test_case "op matches reference" `Slow
            test_op_fast_path_matches_reference;
          Alcotest.test_case "dep matches reference" `Slow
            test_dep_fast_path_matches_reference;
          Alcotest.test_case "op-parallel matches reference" `Slow
            test_op_parallel_fast_path_matches_reference;
          Alcotest.test_case "vc replays identically" `Slow
            test_vc_decisions_stable;
        ] );
    ]
