open Clusteer_uarch
open Clusteer_workloads

type point_result = {
  point : Pinpoints.point;
  runs : (string * Stats.t) list;
}

let trace_seed (point : Pinpoints.point) =
  (point.Pinpoints.profile.Profile.seed * 31) + point.Pinpoints.index + 101

(* Default warmup: half the measured length, capped — enough to fill
   the L1 and train the predictor at the scaled-down trace sizes. *)
let default_warmup uops = min 10_000 (max 2_000 (uops / 2))

let run_workload ?warmup ?(seed = 1) ?(obs = fun _ -> None) ~machine ~configs
    ~uops workload =
  let warmup = Option.value ~default:(default_warmup uops) warmup in
  List.map
    (fun config ->
      let name = Clusteer.Configuration.name config in
      let annot, policy =
        Clusteer.Configuration.prepare config ~program:workload.Synth.program
          ~likely:workload.Synth.likely ~clusters:machine.Config.clusters ()
      in
      let prewarm =
        Array.to_list
          (Array.map Clusteer_trace.Mem_model.extent workload.Synth.streams)
      in
      let engine =
        Engine.create ~config:machine ~annot ~policy ~prewarm ?obs:(obs name) ()
      in
      let gen = Synth.trace workload ~seed in
      let stats =
        Engine.run ~warmup engine
          ~source:(fun () -> Clusteer_trace.Tracegen.next gen)
          ~uops
      in
      (name, stats))
    configs

let run_point ?warmup ?obs ~machine ~configs ~uops point =
  let workload = Synth.build point.Pinpoints.profile in
  (* Every configuration replays the identical dynamic stream: the
     generator is reseeded per point with the same seed. *)
  let runs =
    run_workload ?warmup ~seed:(trace_seed point) ?obs ~machine ~configs ~uops
      workload
  in
  { point; runs }

let run_benchmark ?warmup ~machine ~configs ~uops profile =
  List.map (run_point ?warmup ~machine ~configs ~uops) (Pinpoints.points profile)

let run_suite ?(progress = fun _ -> ()) ?warmup ~machine ~configs ~uops
    profiles =
  List.concat_map
    (fun profile ->
      progress profile.Profile.name;
      run_benchmark ?warmup ~machine ~configs ~uops profile)
    profiles

let stats_of result config =
  match List.assoc_opt config result.runs with
  | Some s -> s
  | None ->
      invalid_arg
        (Printf.sprintf "Runner: configuration %s missing from results" config)

let weighted_metric results ~config ~f =
  let pairs =
    List.map
      (fun r -> (f (stats_of r config), r.point.Pinpoints.weight))
      results
  in
  Clusteer_util.Stats.weighted_mean (Array.of_list pairs)

let weighted_pair_metric results ~config_a ~config_b ~f =
  let pairs =
    List.map
      (fun r ->
        (f (stats_of r config_a) (stats_of r config_b), r.point.Pinpoints.weight))
      results
  in
  Clusteer_util.Stats.weighted_mean (Array.of_list pairs)
