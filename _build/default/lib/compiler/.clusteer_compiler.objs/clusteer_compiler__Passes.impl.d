lib/compiler/passes.ml: Annot Clusteer_isa Ob Printf Program Rhop Vc_partition
