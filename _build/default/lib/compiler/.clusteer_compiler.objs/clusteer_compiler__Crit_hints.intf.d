lib/compiler/crit_hints.mli: Clusteer_isa Program
