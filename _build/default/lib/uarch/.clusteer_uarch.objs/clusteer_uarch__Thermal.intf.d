lib/uarch/thermal.mli: Energy Stats
