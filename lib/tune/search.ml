type algo = Grid | Random | Hill

let algo_to_string = function
  | Grid -> "grid"
  | Random -> "random"
  | Hill -> "hill"

let algo_of_string s =
  match String.lowercase_ascii s with
  | "grid" -> Ok Grid
  | "random" -> Ok Random
  | "hill" -> Ok Hill
  | s ->
      Error
        (`Msg
           (Printf.sprintf
              "unknown search algorithm %S (available: grid, random, hill)" s))

(* splitmix64, same generator family the harness derives trace seeds
   from: trivially seedable, full-period, and identical on every
   platform — which is what makes "same seed => same champion" a
   testable contract. *)
type rng = { mutable state : int64 }

let rng seed = { state = Int64.of_int seed }

let next r =
  let open Int64 in
  r.state <- add r.state 0x9E3779B97F4A7C15L;
  let z = r.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let next_below r n =
  if n <= 0 then invalid_arg "Search.next_below";
  (* 62 uniform bits then modulo: the bias is < 2^-50 for our menu
     sizes and the draw stays deterministic and platform-independent. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next r) 2) (Int64.of_int n))
  |> abs

let random_candidate r dims =
  Array.map (fun d -> next_below r d) dims

let run space ~algo ~seed ~max_evals ~eval =
  if max_evals <= 0 then invalid_arg "Search.run: max_evals must be positive";
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let evaluated () = Hashtbl.length seen in
  let try_eval candidate =
    if Hashtbl.mem seen candidate || evaluated () >= max_evals then None
    else begin
      let score = eval candidate in
      Hashtbl.replace seen candidate score;
      out := (candidate, score) :: !out;
      Some score
    end
  in
  (match algo with
  | Grid ->
      let budget = min max_evals (Param_space.cardinality space) in
      for i = 0 to budget - 1 do
        ignore (try_eval (Param_space.nth space i))
      done
  | Random ->
      let r = rng seed in
      let dims = Param_space.dims space in
      let budget = min max_evals (Param_space.cardinality space) in
      ignore (try_eval (Param_space.default_candidate space));
      (* Draw-and-skip sampling: the attempt cap bounds the rejection
         loop when the budget approaches the space's cardinality. *)
      let attempts = ref 0 in
      let max_attempts = 64 * budget in
      while evaluated () < budget && !attempts < max_attempts do
        incr attempts;
        ignore (try_eval (random_candidate r dims))
      done;
      (* If rejection sampling starved (tiny space), finish by scan. *)
      let i = ref 0 in
      while evaluated () < budget && !i < Param_space.cardinality space do
        ignore (try_eval (Param_space.nth space !i));
        incr i
      done
  | Hill ->
      let r = rng seed in
      let dims = Param_space.dims space in
      let budget = min max_evals (Param_space.cardinality space) in
      let score_of c = Hashtbl.find_opt seen c in
      let start = Param_space.default_candidate space in
      ignore (try_eval start);
      let current = ref start in
      let finished = ref false in
      while (not !finished) && evaluated () < budget do
        let base =
          match score_of !current with Some s -> s | None -> neg_infinity
        in
        (* Probe every ±1 neighbour of the current point. *)
        let best_neighbour = ref None in
        Array.iteri
          (fun k _ ->
            List.iter
              (fun delta ->
                let idx = !current.(k) + delta in
                if idx >= 0 && idx < dims.(k) then begin
                  let cand = Array.copy !current in
                  cand.(k) <- idx;
                  let score =
                    match score_of cand with
                    | Some s -> Some s
                    | None -> try_eval cand
                  in
                  match score with
                  | Some s -> (
                      match !best_neighbour with
                      | Some (_, best) when best >= s -> ()
                      | _ -> best_neighbour := Some (cand, s))
                  | None -> ()
                end)
              [ -1; 1 ])
          !current;
        match !best_neighbour with
        | Some (cand, s) when s > base -> current := cand
        | _ ->
            (* Converged (or out of budget): seeded restart from an
               unseen candidate, give up after a bounded number of
               draws. *)
            if evaluated () >= budget then finished := true
            else begin
              let restart = ref None in
              let attempts = ref 0 in
              while !restart = None && !attempts < 64 * budget do
                incr attempts;
                let cand = random_candidate r dims in
                if not (Hashtbl.mem seen cand) then restart := Some cand
              done;
              match !restart with
              | Some cand ->
                  ignore (try_eval cand);
                  current := cand
              | None -> finished := true
            end
      done);
  List.rev !out
