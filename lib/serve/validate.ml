module Profile = Clusteer_workloads.Profile
module Spec2000 = Clusteer_workloads.Spec2000
module Synth = Clusteer_workloads.Synth
module Checker = Clusteer_analysis.Checker
module Diag = Clusteer_isa.Diag

(* The verdict depends on exactly these request fields (uops, warmup,
   seed and phase change the dynamic run, not the static program or
   its annotation), so memoize on their canonical rendering. *)
let memo_key (req : Request.t) =
  let o = req.Request.overrides in
  let opt_f = function None -> "-" | Some f -> Printf.sprintf "%h" f in
  let opt_i = function None -> "-" | Some i -> string_of_int i in
  Printf.sprintf "%s|%s|%d|%s,%s,%s,%s" req.Request.workload
    (Clusteer.Configuration.name req.Request.policy)
    req.Request.clusters
    (opt_f o.Request.fp_ratio)
    (opt_f o.Request.mem_ratio)
    (opt_i o.Request.ilp)
    (opt_i o.Request.footprint_kb)

let verdicts : (string, (unit, string) result) Hashtbl.t = Hashtbl.create 16

let summarize diags =
  let gating d =
    match d.Diag.severity with
    | Diag.Error | Diag.Warning -> true
    | Diag.Info -> false
  in
  let n = Diag.count Diag.Error diags + Diag.count Diag.Warning diags in
  match List.find_opt gating diags with
  | None -> "request failed validation"
  | Some d ->
      let first = Format.asprintf "%a" Diag.pp d in
      if n > 1 then Printf.sprintf "%s (+%d more finding(s))" first (n - 1)
      else first

let validate (req : Request.t) =
  match Spec2000.find req.Request.workload with
  | exception Not_found -> Ok () (* resolution answers with Error_reply *)
  | profile -> (
      match
        let profile = Request.apply_overrides profile req.Request.overrides in
        Profile.validate profile;
        profile
      with
      | exception Invalid_argument _ -> Ok () (* ditto *)
      | profile -> (
          match
            let w = Synth.build profile in
            let program = w.Synth.program and likely = w.Synth.likely in
            let annot, _policy =
              Clusteer.Configuration.prepare req.Request.policy ~program
                ~likely ~clusters:req.Request.clusters ()
            in
            let config =
              Clusteer_uarch.Config.default ~clusters:req.Request.clusters
            in
            let target =
              Checker.target
                ~label:(req.Request.workload ^ "/"
                       ^ Clusteer.Configuration.name req.Request.policy)
                ~program ~likely ~annot ~config ()
            in
            Checker.run target
          with
          | exception e ->
              Error
                (Printf.sprintf "compilation failed: %s" (Printexc.to_string e))
          | diags ->
              (* The server gates strictly: a warning that a human might
                 wave through interactively still wastes a worker here. *)
              if Checker.failed ~strict:true diags then
                Error (summarize diags)
              else Ok ()))

let check req =
  let key = memo_key req in
  match Hashtbl.find_opt verdicts key with
  | Some verdict -> verdict
  | None ->
      let verdict = validate req in
      Hashtbl.replace verdicts key verdict;
      verdict

let install () = Request.check_hook := check
