(* Tests for the observability layer: JSON encoding, counters,
   the collector ring, interval telemetry, the Chrome trace exporter
   and the zero-overhead-when-off guarantee of the engine. *)

open Clusteer_isa
open Clusteer_trace
open Clusteer_uarch
open Clusteer_obs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ---- Json ------------------------------------------------------------ *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("null", Json.Null);
        ("flag", Json.Bool true);
        ("n", Json.Int (-42));
        ("x", Json.Float 1.5);
        ("whole", Json.Float 3.0);
        ("s", Json.Str "a\"b\\c\nd\tunicode \xc3\xa9");
        ("l", Json.List [ Json.Int 1; Json.Obj []; Json.List [] ]);
      ]
  in
  match Json.of_string (Json.to_string doc) with
  | Ok parsed -> check_bool "round trip" true (Json.equal doc parsed)
  | Error e -> Alcotest.failf "parse error: %s" e

let test_json_parse_numbers () =
  (match Json.of_string "17" with
  | Ok (Json.Int 17) -> ()
  | _ -> Alcotest.fail "plain int");
  (match Json.of_string "1.25e2" with
  | Ok (Json.Float f) -> Alcotest.(check (float 1e-9)) "exp float" 125.0 f
  | _ -> Alcotest.fail "float with exponent");
  (* A float that happens to be whole must encode with a decimal point
     so it parses back as a Float, not an Int. *)
  match Json.of_string (Json.to_string (Json.Float 3.0)) with
  | Ok (Json.Float _) -> ()
  | _ -> Alcotest.fail "whole float stays float"

let test_json_parse_errors () =
  let bad s =
    match Json.of_string s with Ok _ -> false | Error _ -> true
  in
  check_bool "trailing garbage" true (bad "{} x");
  check_bool "bare word" true (bad "nope");
  check_bool "unterminated string" true (bad "\"abc");
  check_bool "missing value" true (bad "{\"k\":}");
  check_bool "empty input" true (bad "")

let test_json_accessors () =
  let doc = Json.Obj [ ("a", Json.Int 3); ("b", Json.Float 0.5) ] in
  check_bool "member hit" true (Json.member "a" doc = Some (Json.Int 3));
  check_bool "member miss" true (Json.member "z" doc = None);
  check_bool "to_int" true (Json.to_int (Json.Int 7) = Some 7);
  check_bool "to_int rejects float" true (Json.to_int (Json.Float 7.0) = None);
  check_bool "to_float of int" true (Json.to_float (Json.Int 2) = Some 2.0)

(* ---- Counters -------------------------------------------------------- *)

let test_counters_basic () =
  let r = Counters.create () in
  let c = Counters.counter ~registry:r "test.a" in
  Counters.incr c;
  Counters.add c 4;
  check_int "value" 5 (Counters.value c);
  (* Interning: same name, same counter. *)
  let c' = Counters.counter ~registry:r "test.a" in
  Counters.incr c';
  check_int "interned" 6 (Counters.value c);
  check_bool "listed" true (Counters.counters r = [ ("test.a", 6) ]);
  Counters.reset r;
  check_int "reset zeroes" 0 (Counters.value c);
  check_bool "registration survives reset" true
    (Counters.counters r = [ ("test.a", 0) ])

let test_histogram_buckets () =
  let r = Counters.create () in
  let h = Counters.histogram ~registry:r "test.h" in
  (* 0 -> bucket 0; 1,2 -> bucket 1; 3..6 -> bucket 2 *)
  List.iter (Counters.observe h) [ 0; 1; 2; 3; 6; -5 ];
  check_int "count" 6 (Counters.hist_count h);
  check_int "sum (negative clamped)" 12 (Counters.hist_sum h);
  check_int "max" 6 (Counters.hist_max h);
  check_bool "buckets" true (Counters.buckets h = [| 2; 2; 2 |]);
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Counters.hist_mean h)

let test_counters_json () =
  let r = Counters.create () in
  Counters.add (Counters.counter ~registry:r "c") 3;
  Counters.observe (Counters.histogram ~registry:r "h") 1;
  match Json.of_string (Json.to_string (Counters.to_json r)) with
  | Ok doc ->
      check_bool "counter in json" true
        (Option.bind (Json.member "counters" doc) (Json.member "c")
        = Some (Json.Int 3))
  | Error e -> Alcotest.failf "counters json unparseable: %s" e

(* ---- Collector ring -------------------------------------------------- *)

let stall_at cycle = Event.Stall { cycle; reason = Event.Iq_full }

let test_collector_overflow () =
  let col = Collector.create ~capacity:4 () in
  let sink = Collector.sink col in
  for c = 1 to 10 do
    sink.Sink.emit (stall_at c)
  done;
  check_int "total emitted" 10 (Collector.event_count col);
  check_int "dropped oldest" 6 (Collector.dropped col);
  let kept = List.map Event.cycle (Collector.events col) in
  check_bool "most recent window, oldest first" true (kept = [ 7; 8; 9; 10 ])

let test_sink_tee () =
  let a = Collector.create () and b = Collector.create () in
  let tee = Sink.tee (Collector.sink a) (Collector.sink b) in
  tee.Sink.emit (stall_at 1);
  check_int "first sink" 1 (Collector.event_count a);
  check_int "second sink" 1 (Collector.event_count b)

(* ---- Engine-driven telemetry ---------------------------------------- *)

(* Single-block program of [n] micro-ops built by [make_uop]. *)
let straightline n make_uop =
  let b = Program.Builder.create ~name:"t" ~nregs_per_class:16 () in
  let uops = List.init n (fun i -> make_uop b i) in
  let blk = Program.Builder.add_block b uops ~succs:[] in
  Program.Builder.finish b ~entry:blk

let independent_program n =
  straightline n (fun b i ->
      Program.Builder.uop b Opcode.Int_alu ~dst:(Reg.int (i mod 8)) ())

let source_of program seed =
  let gen = Tracegen.create ~program ~branches:[||] ~streams:[||] ~seed in
  fun () -> Tracegen.next gen

let run_traced ?(warmup = 0) ?(interval = 0) ~uops program =
  let col = Collector.create ~interval () in
  let engine =
    Engine.create ~config:Config.default_2c
      ~annot:(Annot.none ~uop_count:program.Program.uop_count)
      ~policy:(Clusteer_steer.Op.make ())
      ~obs:(Collector.sink col) ()
  in
  let stats = Engine.run ~warmup engine ~source:(source_of program 1) ~uops in
  (stats, col)

let check_sample_series ~interval ~(stats : Stats.t) samples =
  check_int "one sample per full interval"
    (stats.Stats.cycles / interval)
    (List.length samples);
  List.iteri
    (fun i (s : Interval.sample) ->
      check_int "starts after previous" ((i * interval) + 1) s.Interval.t_start;
      check_int "covers exactly one interval" ((i + 1) * interval)
        s.Interval.t_end;
      check_bool "non-negative deltas" true
        (s.Interval.committed >= 0 && s.Interval.dispatched >= 0);
      check_bool "contains its own midpoint" true
        (Interval.contains s s.Interval.t_start))
    samples

let test_interval_boundaries () =
  let interval = 64 in
  let stats, col = run_traced ~interval ~uops:2000 (independent_program 16) in
  let samples = Collector.samples col in
  check_bool "produced samples" true (samples <> []);
  check_sample_series ~interval ~stats samples;
  (* The sampled committed counts sum to the cumulative count at the
     last interval boundary: nothing is lost or double-counted. *)
  let sampled = List.fold_left (fun a s -> a + s.Interval.committed) 0 samples in
  check_bool "sampled <= total" true (sampled <= stats.Stats.committed);
  check_bool "only the tail missing" true
    (stats.Stats.committed - sampled
    <= 8 * (stats.Stats.cycles mod interval) + 8);
  (* Every retained event is stamped in measured time and lands inside
     the sample covering its cycle. *)
  List.iter
    (fun ev ->
      let c = Event.cycle ev in
      check_bool "measured-time stamp" true (c >= 1 && c <= stats.Stats.cycles);
      check_bool "in exactly one sample" true
        (List.length (List.filter (fun s -> Interval.contains s c) samples)
        <= 1))
    (Collector.events col)

let test_interval_warmup_reset () =
  let interval = 32 in
  let stats, col =
    run_traced ~warmup:500 ~interval ~uops:1000 (independent_program 16)
  in
  (* The sink is suspended during warmup and the measured clock restarts
     at the reset, so the series is exactly the measured phase. *)
  check_sample_series ~interval ~stats (Collector.samples col);
  List.iter
    (fun ev ->
      check_bool "no warmup events" true
        (Event.cycle ev >= 1 && Event.cycle ev <= stats.Stats.cycles))
    (Collector.events col)

let test_zero_overhead_guard () =
  let p = independent_program 16 in
  let run obs =
    let engine =
      Engine.create ~config:Config.default_2c
        ~annot:(Annot.none ~uop_count:p.Program.uop_count)
        ~policy:(Clusteer_steer.Op.make ())
        ?obs ()
    in
    Engine.run ~warmup:200 engine ~source:(source_of p 1) ~uops:2000
  in
  let plain = run None in
  let col = Collector.create ~interval:16 () in
  let traced = run (Some (Collector.sink col)) in
  check_bool "collector saw the run" true (Collector.event_count col > 0);
  check_bool "statistics identical with and without sink" true
    (Stats.equal plain traced)

(* ---- Chrome trace ---------------------------------------------------- *)

let test_chrome_trace_wellformed () =
  let stats, col = run_traced ~interval:64 ~uops:2000 (independent_program 16) in
  ignore stats;
  let doc =
    Chrome_trace.to_json ~clusters:2 ~events:(Collector.events col)
      ~samples:(Collector.samples col)
  in
  match Json.of_string (Json.to_string doc) with
  | Error e -> Alcotest.failf "trace not valid JSON: %s" e
  | Ok parsed ->
      let evs =
        match Json.member "traceEvents" parsed with
        | Some (Json.List l) -> l
        | _ -> Alcotest.fail "traceEvents missing"
      in
      check_bool "non-empty" true (evs <> []);
      let phases = List.filter_map (Json.member "ph") evs in
      check_int "every event has a phase" (List.length evs)
        (List.length phases);
      List.iter
        (fun ph ->
          check_bool "known phase" true
            (match ph with
            | Json.Str ("M" | "i" | "X" | "C") -> true
            | _ -> false))
        phases;
      let names =
        List.filter_map
          (fun e ->
            match Json.member "name" e with
            | Some (Json.Str s) -> Some s
            | _ -> None)
          evs
      in
      check_bool "has steer instants" true (List.mem "steer" names);
      check_bool "has ipc counter track" true (List.mem "ipc" names);
      List.iter
        (fun e ->
          match (Json.member "ph" e, Json.member "ts" e) with
          | Some (Json.Str "M"), _ -> ()
          | _, Some (Json.Int ts) ->
              check_bool "timestamps non-negative" true (ts >= 0)
          | _ -> Alcotest.fail "non-metadata event without integer ts")
        evs

(* ---- Canonical stall order ------------------------------------------- *)

let test_stall_order_matches_stats () =
  (* Event.stall_names is the canonical order; Stats.stall_fields and
     Stats.snapshot must index stalls the same way. *)
  let s = Stats.create ~clusters:2 in
  s.Stats.stall_iq_full <- 1;
  s.Stats.stall_copyq_full <- 2;
  s.Stats.stall_rob_full <- 3;
  s.Stats.stall_lsq_full <- 4;
  s.Stats.stall_regfile <- 5;
  s.Stats.stall_policy <- 6;
  s.Stats.stall_empty <- 7;
  check_int "dense reasons" Event.stall_reason_count
    (Array.length Event.stall_names);
  List.iteri
    (fun i (name, v) ->
      check_string "field order" Event.stall_names.(i) name;
      check_int "field value" (i + 1) v;
      check_int "snapshot order" (i + 1) (Stats.snapshot s).Interval.stalls.(i))
    (Stats.stall_fields s);
  check_int "total" 28 (Stats.total_stalls s)

(* ---- Percentiles ----------------------------------------------------- *)

let check_float = Alcotest.(check (float 1e-9))

let test_percentiles () =
  let r = Counters.create () in
  let h = Counters.histogram ~registry:r "p" in
  check_float "empty histogram" 0.0 (Counters.percentile h 0.5);
  List.iter (Counters.observe h) [ 0; 1; 2; 3 ];
  (* Buckets [|1;2;1|]: rank 2.0 lands mid-bucket-1 (values 1-2). *)
  check_float "p50 interpolates" 1.5 (Counters.percentile h 0.5);
  check_float "p90 clamps to max" 3.0 (Counters.percentile h 0.9);
  check_float "p99 clamps to max" 3.0 (Counters.percentile h 0.99);
  check_float "p<=0 clamps" 0.0 (Counters.percentile h (-1.0));
  check_float "p>=1 clamps" 3.0 (Counters.percentile h 2.0);
  let u = Counters.histogram ~registry:r "u" in
  for v = 0 to 99 do
    Counters.observe u v
  done;
  (* Uniform 0..99: rank 50 falls in bucket 5 (31-62, 32 entries) at
     fraction 19/32; rank 99 in bucket 6, whose top clamps to 99. *)
  check_float "p50 uniform" 49.40625 (Counters.percentile u 0.5);
  Alcotest.(check (float 1e-6))
    "p99 uniform"
    (63.0 +. (36.0 /. 37.0 *. 36.0))
    (Counters.percentile u 0.99);
  (* The JSON snapshot carries the same quantiles. *)
  match Json.member "histograms" (Counters.to_json r) with
  | Some (Json.Obj hs) -> (
      match List.assoc_opt "p" hs with
      | Some hj -> (
          match Json.member "p50" hj with
          | Some (Json.Float f) -> check_float "json p50" 1.5 f
          | _ -> Alcotest.fail "p50 missing from histogram json")
      | None -> Alcotest.fail "histogram missing from json")
  | _ -> Alcotest.fail "histograms object missing"

(* ---- Prometheus exposition ------------------------------------------ *)

let test_expo_golden () =
  let r = Counters.create () in
  let c = Counters.counter ~registry:r "serve.requests" in
  Counters.add c 3;
  let h = Counters.histogram ~registry:r "lat.us" in
  List.iter (Counters.observe h) [ 0; 1; 2; 3 ];
  let golden =
    String.concat "\n"
      [
        "# TYPE serve_requests counter";
        "serve_requests 3";
        "# TYPE lat_us histogram";
        "lat_us_bucket{le=\"0\"} 1";
        "lat_us_bucket{le=\"2\"} 3";
        "lat_us_bucket{le=\"6\"} 4";
        "lat_us_bucket{le=\"+Inf\"} 4";
        "lat_us_sum 6";
        "lat_us_count 4";
        "# TYPE lat_us_quantile gauge";
        "lat_us_quantile{q=\"0.5\"} 1.5";
        "lat_us_quantile{q=\"0.9\"} 3";
        "lat_us_quantile{q=\"0.99\"} 3";
        "";
      ]
  in
  check_string "pinned exposition bytes" golden (Expo.render r);
  (* A second scrape of an unchanged registry is byte-identical. *)
  check_string "scrape is deterministic" (Expo.render r) (Expo.render r)

let test_expo_name_mangling () =
  let r = Counters.create () in
  Counters.incr (Counters.counter ~registry:r "steer.remap/vc-2");
  let text = Expo.render r in
  check_bool "mangles to [a-zA-Z0-9_]" true
    (String.length text > 0
    && String.split_on_char '\n' text
       |> List.exists (fun l -> l = "steer_remap_vc_2 1"))

(* ---- Self-profiler --------------------------------------------------- *)

let test_profile_spans () =
  let now = ref 0.0 in
  let r = Counters.create () in
  let prof = Profile.create ~registry:r ~clock:(fun () -> !now) () in
  let s = Profile.span prof "x" in
  check_bool "span interns by name" true (s == Profile.span prof "x");
  (* Two enter/leave pairs accumulate into ONE observation per flush. *)
  Profile.enter s;
  now := 0.25;
  Profile.leave s;
  Profile.enter s;
  now := 0.75;
  Profile.leave s;
  let h = Counters.histogram ~registry:r "profile.x.ns" in
  check_int "nothing observed before flush" 0 (Counters.hist_count h);
  Profile.flush s;
  check_int "one observation per flush" 1 (Counters.hist_count h);
  check_int "accumulated nanoseconds" 750_000_000 (Counters.hist_sum h);
  (* A leave without a matching enter is ignored. *)
  Profile.leave s;
  Profile.flush s;
  check_int "unmatched leave ignored" 750_000_000 (Counters.hist_sum h);
  (* [time] wraps one call into one observation and passes the result. *)
  let v =
    Profile.time s (fun () ->
        now := !now +. 0.125;
        42)
  in
  check_int "time returns the result" 42 v;
  check_int "time adds one observation" 3 (Counters.hist_count h);
  check_int "time observes the elapsed ns" 875_000_000 (Counters.hist_sum h);
  (* flush_all covers every span created from this profiler. *)
  let s2 = Profile.span prof "y" in
  Profile.enter s2;
  now := !now +. 0.5;
  Profile.leave s2;
  Profile.flush_all prof;
  check_int "flush_all flushes new spans" 1
    (Counters.hist_count (Counters.histogram ~registry:r "profile.y.ns"))

let test_profile_zero_overhead () =
  (* Same contract as the event sink: an engine without a profiler must
     produce bit-identical stats to one with it attached. *)
  let p = independent_program 16 in
  let run profile =
    let engine =
      Engine.create ~config:Config.default_2c
        ~annot:(Annot.none ~uop_count:p.Program.uop_count)
        ~policy:(Clusteer_steer.Op.make ())
        ?profile ()
    in
    Engine.run ~warmup:200 engine ~source:(source_of p 1) ~uops:2000
  in
  let plain = run None in
  let r = Counters.create () in
  let prof = Profile.create ~registry:r () in
  let profiled = run (Some prof) in
  check_bool "profiling does not perturb simulation" true
    (Stats.equal plain profiled);
  (* One flush per engine phase per run. *)
  List.iter
    (fun phase ->
      check_int
        (Printf.sprintf "one observation for %s" phase)
        1
        (Counters.hist_count
           (Counters.histogram ~registry:r ("profile.engine." ^ phase ^ ".ns"))))
    [ "fetch"; "dispatch"; "issue"; "writeback"; "commit" ]

(* ---- Run ledger ------------------------------------------------------ *)

let temp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "clusteer-ledger-%d-%d" (Unix.getpid ()) !n)
    in
    Unix.mkdir d 0o755;
    d

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  let d = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

let sample_registry () =
  let r = Counters.create () in
  Counters.add (Counters.counter ~registry:r "harness.uops_committed") 100;
  Counters.observe (Counters.histogram ~registry:r "profile.engine.commit.ns") 5;
  r

let no_gc = { Ledger.minor_words = 0.0; promoted_words = 0.0;
              major_collections = 0; minor_collections = 0 }

let append_run t ~label =
  Ledger.append t ~kind:"simulate" ~label ~started:1000.0 ~wall_s:0.5
    ~outcome:"ok" ~uops:100
    ~gc:{ no_gc with Ledger.minor_words = 250.0 }
    (sample_registry ())

let test_ledger_roundtrip () =
  with_temp_dir (fun dir ->
      let t = Ledger.create ~dir in
      check_int "fresh ledger is empty" 0 (List.length (Ledger.list t));
      let s1 = append_run t ~label:"a" in
      let s2 = append_run t ~label:"b" in
      check_int "ids are monotonic" 1 s1.Ledger.id;
      check_int "ids are monotonic" 2 s2.Ledger.id;
      check_float "minor words per uop" 2.5 s1.Ledger.minor_words_per_uop;
      (* Reopening recovers the same summaries and the next id. *)
      let t' = Ledger.create ~dir in
      let listed = Ledger.list t' in
      check_int "reopen sees both runs" 2 (List.length listed);
      check_string "labels survive" "a" (List.hd listed).Ledger.label;
      let s3 = append_run t' ~label:"c" in
      check_int "next id continues" 3 s3.Ledger.id;
      (* The full entry round-trips with GC stats and counter snapshot. *)
      match Ledger.load t' 1 with
      | None -> Alcotest.fail "run 1 must load"
      | Some doc -> (
          (match Json.member "kind" doc with
          | Some (Json.Str k) -> check_string "kind" "simulate" k
          | _ -> Alcotest.fail "kind missing");
          (match
             Option.bind (Json.member "gc" doc)
               (Json.member "engine_minor_words_per_uop")
           with
          | Some (Json.Float f) -> check_float "gc words/uop" 2.5 f
          | _ -> Alcotest.fail "engine_minor_words_per_uop missing");
          match
            Option.bind (Json.member "counters" doc) (Json.member "histograms")
          with
          | Some (Json.Obj hs) ->
              check_bool "profiler snapshot embedded" true
                (List.mem_assoc "profile.engine.commit.ns" hs)
          | _ -> Alcotest.fail "counter snapshot missing"))

let test_ledger_crash_recovery () =
  with_temp_dir (fun dir ->
      let t = Ledger.create ~dir in
      ignore (append_run t ~label:"a");
      ignore (append_run t ~label:"b");
      (* Simulate a crash mid-append: garbage and a torn line in the
         index must be skipped, not fatal. *)
      let oc =
        open_out_gen
          [ Open_append; Open_creat ]
          0o644
          (Filename.concat dir "index.jsonl")
      in
      output_string oc "this is not json\n{\"id\":3,\"ki";
      close_out oc;
      let t' = Ledger.create ~dir in
      check_int "torn lines skipped" 2 (List.length (Ledger.list t'));
      check_int "ids not reused" 3 (append_run t' ~label:"c").Ledger.id;
      (* Even with the index gone, run files stop id reuse. *)
      Sys.remove (Filename.concat dir "index.jsonl");
      let t'' = Ledger.create ~dir in
      check_int "index lost, summaries lost" 0 (List.length (Ledger.list t''));
      check_int "ids recovered from run files" 4
        (append_run t'' ~label:"d").Ledger.id)

let test_ledger_prune () =
  with_temp_dir (fun dir ->
      let t = Ledger.create ~dir in
      for i = 1 to 3 do
        ignore (append_run t ~label:(string_of_int i))
      done;
      check_int "prune removes the oldest" 2 (Ledger.prune t ~keep:1);
      (match Ledger.list t with
      | [ s ] -> check_int "newest survives" 3 s.Ledger.id
      | l -> Alcotest.failf "expected one summary, got %d" (List.length l));
      check_bool "pruned file deleted" false
        (Sys.file_exists (Filename.concat dir "run-000001.json"));
      check_bool "kept file intact" true
        (Sys.file_exists (Filename.concat dir "run-000003.json"));
      (* The rewritten index is what a fresh open sees. *)
      let t' = Ledger.create ~dir in
      check_int "prune rewrote the index" 1 (List.length (Ledger.list t'));
      check_int "prune below count is a no-op" 0 (Ledger.prune t' ~keep:10))

let test_ledger_gc_accounting () =
  check_float "words per uop" 2.0
    (Ledger.minor_words_per_uop
       { no_gc with Ledger.minor_words = 100.0 }
       ~uops:50);
  check_float "zero uops guard" 0.0
    (Ledger.minor_words_per_uop
       { no_gc with Ledger.minor_words = 100.0 }
       ~uops:0);
  let d =
    Ledger.gc_sub
      { Ledger.minor_words = 10.0; promoted_words = 4.0;
        major_collections = 3; minor_collections = 7 }
      { Ledger.minor_words = 6.0; promoted_words = 1.0;
        major_collections = 1; minor_collections = 2 }
  in
  check_float "delta minor words" 4.0 d.Ledger.minor_words;
  check_int "delta majors" 2 d.Ledger.major_collections;
  (match Json.member "engine_minor_words_per_uop" (Ledger.gc_json ~uops:2 d) with
  | Some (Json.Float f) -> check_float "gc_json ratio" 2.0 f
  | _ -> Alcotest.fail "gc_json must carry the ratio");
  (* gc_now really moves when we allocate. *)
  let before = Ledger.gc_now () in
  let junk = List.init 10_000 (fun i -> (i, string_of_int i)) in
  ignore (Sys.opaque_identity junk);
  let d = Ledger.gc_sub (Ledger.gc_now ()) before in
  check_bool "allocation is visible" true (d.Ledger.minor_words > 0.0)

let () =
  Alcotest.run "clusteer_obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "numbers" `Quick test_json_parse_numbers;
          Alcotest.test_case "errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "counters",
        [
          Alcotest.test_case "basic" `Quick test_counters_basic;
          Alcotest.test_case "histogram" `Quick test_histogram_buckets;
          Alcotest.test_case "json" `Quick test_counters_json;
        ] );
      ( "collector",
        [
          Alcotest.test_case "overflow" `Quick test_collector_overflow;
          Alcotest.test_case "tee" `Quick test_sink_tee;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "interval boundaries" `Quick
            test_interval_boundaries;
          Alcotest.test_case "warmup reset" `Quick test_interval_warmup_reset;
          Alcotest.test_case "zero overhead" `Quick test_zero_overhead_guard;
          Alcotest.test_case "chrome trace" `Quick test_chrome_trace_wellformed;
          Alcotest.test_case "stall order" `Quick test_stall_order_matches_stats;
        ] );
      ( "percentiles",
        [ Alcotest.test_case "interpolation" `Quick test_percentiles ] );
      ( "expo",
        [
          Alcotest.test_case "golden" `Quick test_expo_golden;
          Alcotest.test_case "name mangling" `Quick test_expo_name_mangling;
        ] );
      ( "profile",
        [
          Alcotest.test_case "spans" `Quick test_profile_spans;
          Alcotest.test_case "zero overhead" `Quick test_profile_zero_overhead;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "roundtrip" `Quick test_ledger_roundtrip;
          Alcotest.test_case "crash recovery" `Quick test_ledger_crash_recovery;
          Alcotest.test_case "prune" `Quick test_ledger_prune;
          Alcotest.test_case "gc accounting" `Quick test_ledger_gc_accounting;
        ] );
    ]
