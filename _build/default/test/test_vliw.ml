(* Tests for the clustered VLIW substrate: machine, reservation tables,
   list scheduling (fixed assignment and unified), whole-program eval. *)

open Clusteer_isa
open Clusteer_ddg
open Clusteer_vliw

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let alu b ~dst ~srcs =
  Program.Builder.uop b Opcode.Int_alu ~dst:(Reg.int dst)
    ~srcs:(Array.of_list (List.map Reg.int srcs))
    ()

let chain_uops n =
  let b = Program.Builder.create ~name:"chain" ~nregs_per_class:8 () in
  Array.init n (fun i -> alu b ~dst:0 ~srcs:(if i = 0 then [] else [ 0 ]))

let two_chains n =
  let b = Program.Builder.create ~name:"two" ~nregs_per_class:8 () in
  Array.concat
    [
      Array.init n (fun i -> alu b ~dst:0 ~srcs:(if i = 0 then [] else [ 0 ]));
      Array.init n (fun i -> alu b ~dst:1 ~srcs:(if i = 0 then [] else [ 1 ]));
    ]

let machine2 = Machine.default ~clusters:2

(* ---- machine ----------------------------------------------------------- *)

let test_machine_default () =
  Machine.validate machine2;
  check_int "clusters" 2 machine2.Machine.clusters;
  check_int "int slots" 2 (Machine.slots machine2 Machine.Slot_int);
  check_int "move slots" 1 (Machine.slots machine2 Machine.Slot_move)

let test_machine_slot_classes () =
  check_bool "load is mem" true
    (Machine.slot_class_of Opcode.Load = Machine.Slot_mem);
  check_bool "fmul is fp" true
    (Machine.slot_class_of Opcode.Fp_mul = Machine.Slot_fp);
  check_bool "branch is int" true
    (Machine.slot_class_of Opcode.Branch = Machine.Slot_int);
  check_bool "copy is move" true
    (Machine.slot_class_of Opcode.Copy = Machine.Slot_move)

let test_machine_validation () =
  Alcotest.check_raises "zero clusters"
    (Invalid_argument "Vliw.Machine: clusters must be positive") (fun () ->
      Machine.validate { machine2 with Machine.clusters = 0 })

(* ---- reservation -------------------------------------------------------- *)

let test_reservation_fills_slots () =
  let r = Schedule.create_reservation machine2 in
  (* two INT slots in cycle 0, the third op pushes to cycle 1 *)
  check_int "slot a" 0
    (Schedule.earliest_free r ~cluster:0 ~cls:Machine.Slot_int ~from:0);
  Schedule.reserve r ~cluster:0 ~cls:Machine.Slot_int ~cycle:0;
  Schedule.reserve r ~cluster:0 ~cls:Machine.Slot_int ~cycle:0;
  check_int "cycle 0 full" 1
    (Schedule.earliest_free r ~cluster:0 ~cls:Machine.Slot_int ~from:0);
  (* other cluster unaffected *)
  check_int "cluster 1 free" 0
    (Schedule.earliest_free r ~cluster:1 ~cls:Machine.Slot_int ~from:0)

let test_reservation_overbook_rejected () =
  let r = Schedule.create_reservation machine2 in
  Schedule.reserve r ~cluster:0 ~cls:Machine.Slot_move ~cycle:3;
  Alcotest.check_raises "overbook"
    (Invalid_argument "Vliw.Schedule.reserve: slot full") (fun () ->
      Schedule.reserve r ~cluster:0 ~cls:Machine.Slot_move ~cycle:3)

(* ---- list scheduling ------------------------------------------------------ *)

let test_serial_chain_one_cluster () =
  let g = Ddg.build (chain_uops 6) in
  let sched =
    List_sched.with_assignment machine2 g ~assignment:(Array.make 6 0)
  in
  Schedule.validate sched g machine2;
  check_int "length = chain latency" 6 sched.Schedule.length;
  check_int "no moves" 0 sched.Schedule.moves

let test_serial_chain_alternating_pays_moves () =
  let g = Ddg.build (chain_uops 6) in
  let assignment = Array.init 6 (fun i -> i mod 2) in
  let sched = List_sched.with_assignment machine2 g ~assignment in
  Schedule.validate sched g machine2;
  check_bool "moves inserted" true (sched.Schedule.moves >= 5);
  check_bool "slower than local" true (sched.Schedule.length > 6)

let test_unified_parallelizes_two_chains () =
  let g = Ddg.build (two_chains 6) in
  let sched = List_sched.unified machine2 g in
  Schedule.validate sched g machine2;
  (* both chains fit in one cluster's 2 INT slots, but unified should
     still finish in ~chain length *)
  check_bool "near-optimal makespan" true (sched.Schedule.length <= 7);
  check_int "no moves needed" 0 sched.Schedule.moves

let test_unified_matches_ideal_on_wide_block () =
  (* 8 independent ops, 2 clusters x 2 INT slots = 4/cycle -> 2 cycles
     (+1 for the 1-cycle latency of the last issue). *)
  let b = Program.Builder.create ~name:"wide" ~nregs_per_class:16 () in
  let uops = Array.init 8 (fun i -> alu b ~dst:(i mod 8) ~srcs:[]) in
  let g = Ddg.build uops in
  let sched = List_sched.unified machine2 g in
  Schedule.validate sched g machine2;
  check_int "two issue cycles" 2 sched.Schedule.length

let test_move_reused_by_second_consumer () =
  (* producer on cluster 0; two consumers forced to cluster 1: one move
     suffices. *)
  let b = Program.Builder.create ~name:"reuse" ~nregs_per_class:8 () in
  let p = alu b ~dst:0 ~srcs:[] in
  let c1 = alu b ~dst:1 ~srcs:[ 0 ] in
  let c2 = alu b ~dst:2 ~srcs:[ 0 ] in
  let g = Ddg.build [| p; c1; c2 |] in
  let sched = List_sched.with_assignment machine2 g ~assignment:[| 0; 1; 1 |] in
  Schedule.validate sched g machine2;
  check_int "single move" 1 sched.Schedule.moves

let test_with_assignment_validates_input () =
  let g = Ddg.build (chain_uops 3) in
  Alcotest.check_raises "arity"
    (Invalid_argument "Vliw.List_sched.with_assignment: arity mismatch")
    (fun () ->
      ignore (List_sched.with_assignment machine2 g ~assignment:[| 0 |]));
  Alcotest.check_raises "range"
    (Invalid_argument "Vliw.List_sched.with_assignment: cluster out of range")
    (fun () ->
      ignore (List_sched.with_assignment machine2 g ~assignment:[| 0; 5; 0 |]))

let test_schedule_ipc () =
  let g = Ddg.build (two_chains 6) in
  let sched = List_sched.unified machine2 g in
  check_bool "ipc positive" true (Schedule.ipc sched > 1.0)

(* ---- modulo scheduling --------------------------------------------------------- *)

(* The dot-product recurrence: acc <- acc + x*y every iteration. *)
let reduction_body () =
  let b = Program.Builder.create ~name:"red" ~nregs_per_class:8 () in
  let mul =
    Program.Builder.uop b Opcode.Fp_mul ~dst:(Reg.fp 1) ~srcs:[| Reg.fp 2 |] ()
  in
  let acc =
    Program.Builder.uop b Opcode.Fp_add ~dst:(Reg.fp 0)
      ~srcs:[| Reg.fp 0; Reg.fp 1 |] ()
  in
  [| mul; acc |]

let test_loop_ddg_carried_edges () =
  let g = Modulo.loop_ddg_of_body (reduction_body ()) in
  (* intra: mul -> acc (distance 0); carried: acc -> acc reads its own
     previous value (distance 1); mul reads fp2, never defined: no
     edge. *)
  let count p = List.length (List.filter p g.Modulo.edges) in
  check_int "one intra edge" 1 (count (fun e -> e.Modulo.distance = 0));
  check_int "one carried edge" 1 (count (fun e -> e.Modulo.distance = 1));
  let carried = List.find (fun e -> e.Modulo.distance = 1) g.Modulo.edges in
  check_int "acc feeds itself" 1 carried.Modulo.src;
  check_int "acc feeds itself" 1 carried.Modulo.dst

let test_rec_mii_reduction () =
  let g = Modulo.loop_ddg_of_body (reduction_body ()) in
  (* the recurrence is acc->acc with fadd latency 3 and distance 1 *)
  check_int "rec mii = fadd latency" 3 (Modulo.rec_mii g)

let test_rec_mii_acyclic_is_one () =
  let b = Program.Builder.create ~name:"ac" ~nregs_per_class:8 () in
  let u0 = alu b ~dst:0 ~srcs:[] in
  let u1 = alu b ~dst:1 ~srcs:[ 0 ] in
  let g = Modulo.loop_ddg_of_body [| u0; u1 |] in
  (* u1 also carries u0->... wait: u1 reads r0 defined earlier: no
     carried edge; u0 defines r0 with no cross-iteration reader before
     its definition. *)
  check_int "acyclic" 1 (Modulo.rec_mii g)

let test_res_mii_counts_slots () =
  (* four int ops on one cluster with 2 int slots -> II >= 2 *)
  let b = Program.Builder.create ~name:"r" ~nregs_per_class:8 () in
  let uops = Array.init 4 (fun i -> alu b ~dst:i ~srcs:[]) in
  let g = Modulo.loop_ddg_of_body uops in
  check_int "res mii" 2 (Modulo.res_mii machine2 g ~assignment:(Array.make 4 0));
  (* spread over two clusters -> II >= 1 *)
  check_int "res mii spread" 1
    (Modulo.res_mii machine2 g ~assignment:[| 0; 0; 1; 1 |])

let test_modulo_schedule_achieves_mii () =
  let g = Modulo.loop_ddg_of_body (reduction_body ()) in
  let assignment = [| 0; 0 |] in
  let r = Modulo.schedule machine2 g ~assignment () in
  Modulo.validate machine2 g ~assignment r;
  check_int "ii = mii" r.Modulo.mii r.Modulo.ii;
  check_int "mii is recurrence bound" 3 r.Modulo.mii;
  check_int "no moves" 0 r.Modulo.moves

let test_modulo_cross_cluster_costs () =
  let g = Modulo.loop_ddg_of_body (reduction_body ()) in
  let assignment = [| 0; 1 |] in
  let r = Modulo.schedule machine2 g ~assignment () in
  Modulo.validate machine2 g ~assignment r;
  check_int "one move" 1 r.Modulo.moves;
  check_bool "ii not better than local" true (r.Modulo.ii >= 3)

let test_modulo_kernel_daxpy () =
  (* daxpy body from the kernels library: fully pipelinable; II is
     resource-bound, not recurrence-bound. *)
  let k = Clusteer_workloads.Kernels.daxpy () in
  let body = k.Clusteer_workloads.Synth.program.Program.blocks.(0).Block.uops in
  let g = Modulo.loop_ddg_of_body body in
  let n = Array.length body in
  let r = Modulo.schedule machine2 g ~assignment:(Array.make n 0) () in
  Modulo.validate machine2 g ~assignment:(Array.make n 0) r;
  (* The y-stream store feeds next iteration's y load: the recurrence
     ld_y -> fadd -> store -> (carried) ld_y bounds the II at ~8
     cycles, above the 3-op memory resource bound. *)
  check_bool "recurrence bound" true (r.Modulo.ii >= 8);
  (* naive spreading adds communication inside that recurrence: legal,
     pays moves, and cannot beat the local schedule *)
  let spread = Array.init n (fun i -> i mod 2) in
  let r2 = Modulo.schedule machine2 g ~assignment:spread () in
  Modulo.validate machine2 g ~assignment:spread r2;
  check_bool "moves paid" true (r2.Modulo.moves > 0);
  check_bool "no free lunch" true (r2.Modulo.ii >= r.Modulo.ii)

let test_four_cluster_machine_schedules () =
  let machine4 = Machine.default ~clusters:4 in
  let g = Ddg.build (two_chains 8) in
  let sched = List_sched.unified machine4 g in
  Schedule.validate sched g machine4;
  check_bool "valid and fast" true (sched.Schedule.length <= 10)

(* ---- whole-program eval ----------------------------------------------------- *)

let no_profile _ = None

let small_program () =
  let b = Program.Builder.create ~name:"p" ~nregs_per_class:16 () in
  let blk0 = Program.Builder.reserve_block b in
  let blk1 = Program.Builder.reserve_block b in
  let u0 = alu b ~dst:0 ~srcs:[] in
  let u1 = alu b ~dst:0 ~srcs:[ 0 ] in
  let u2 = alu b ~dst:1 ~srcs:[] in
  Program.Builder.define_block b blk0 [ u0; u1; u2 ] ~succs:[ blk1 ];
  let u3 = alu b ~dst:1 ~srcs:[ 1 ] in
  let u4 = alu b ~dst:2 ~srcs:[ 0; 1 ] in
  Program.Builder.define_block b blk1 [ u3; u4 ] ~succs:[];
  Program.Builder.finish b ~entry:blk0

let test_eval_unified_runs () =
  let program = small_program () in
  let s = Eval.run machine2 ~program ~likely:no_profile Eval.Unified in
  check_int "covers all ops" program.Program.uop_count s.Eval.ops;
  check_bool "positive ipc" true (s.Eval.static_ipc > 0.0)

let test_eval_fixed_matches_assignment () =
  let program = small_program () in
  let s =
    Eval.run machine2 ~program ~likely:no_profile
      (Eval.Fixed (fun g -> Array.make (Ddg.node_count g) 0))
  in
  check_int "no moves when monocluster" 0 s.Eval.moves

let test_eval_rhop_competitive_with_unified () =
  (* The paper's §3.3 point: on the static machine, graph-partitioning
     assignments are competitive with the native assign-and-schedule. *)
  let workload = Clusteer_workloads.Synth.build (Clusteer_workloads.Spec2000.find "galgel") in
  let program = workload.Clusteer_workloads.Synth.program in
  let likely = workload.Clusteer_workloads.Synth.likely in
  let uas = Eval.run machine2 ~program ~likely Eval.Unified in
  let rhop =
    Eval.run machine2 ~program ~likely
      (Eval.Fixed (fun g -> Clusteer_compiler.Rhop.assign_region g ~clusters:2))
  in
  check_bool "rhop within 30% of UAS on VLIW" true
    (float_of_int rhop.Eval.cycles <= 1.3 *. float_of_int uas.Eval.cycles)

(* ---- properties --------------------------------------------------------------- *)

let arb_uops =
  QCheck.make
    QCheck.Gen.(
      sized (fun size st ->
          let n = max 1 (min size 30) in
          let b = Program.Builder.create ~name:"q" ~nregs_per_class:8 () in
          Array.init n (fun _ ->
              let dst = int_bound 5 st in
              let nsrcs = int_bound 2 st in
              let srcs = Array.init nsrcs (fun _ -> Reg.int (int_bound 5 st)) in
              Program.Builder.uop b Opcode.Int_alu ~dst:(Reg.int dst) ~srcs ())))

let prop_unified_schedules_validate =
  QCheck.Test.make ~name:"unified schedules always validate" ~count:200
    arb_uops (fun uops ->
      let g = Ddg.build uops in
      let sched = List_sched.unified machine2 g in
      Schedule.validate sched g machine2;
      true)

let prop_length_bounded_by_critical_path =
  QCheck.Test.make ~name:"makespan >= critical path" ~count:200 arb_uops
    (fun uops ->
      let g = Ddg.build uops in
      let crit = Critical.analyze g in
      let sched = List_sched.unified machine2 g in
      sched.Schedule.length >= crit.Critical.length)

let prop_modulo_validates =
  QCheck.Test.make ~name:"modulo schedules always validate" ~count:100
    arb_uops (fun uops ->
      let g = Modulo.loop_ddg_of_body uops in
      let n = Array.length uops in
      let assignment = Array.init n (fun i -> i mod 2) in
      let r = Modulo.schedule machine2 g ~assignment () in
      Modulo.validate machine2 g ~assignment r;
      r.Modulo.ii >= r.Modulo.mii)

let prop_fixed_zero_assignment_no_moves =
  QCheck.Test.make ~name:"single-cluster assignment never moves" ~count:200
    arb_uops (fun uops ->
      let g = Ddg.build uops in
      let sched =
        List_sched.with_assignment machine2 g
          ~assignment:(Array.make (Ddg.node_count g) 1)
      in
      Schedule.validate sched g machine2;
      sched.Schedule.moves = 0)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "clusteer_vliw"
    [
      ( "machine",
        [
          Alcotest.test_case "default" `Quick test_machine_default;
          Alcotest.test_case "slot classes" `Quick test_machine_slot_classes;
          Alcotest.test_case "validation" `Quick test_machine_validation;
        ] );
      ( "reservation",
        [
          Alcotest.test_case "fills slots" `Quick test_reservation_fills_slots;
          Alcotest.test_case "overbook rejected" `Quick test_reservation_overbook_rejected;
        ] );
      ( "list-sched",
        [
          Alcotest.test_case "serial chain" `Quick test_serial_chain_one_cluster;
          Alcotest.test_case "alternating pays moves" `Quick test_serial_chain_alternating_pays_moves;
          Alcotest.test_case "unified parallelizes" `Quick test_unified_parallelizes_two_chains;
          Alcotest.test_case "wide block ideal" `Quick test_unified_matches_ideal_on_wide_block;
          Alcotest.test_case "move reuse" `Quick test_move_reused_by_second_consumer;
          Alcotest.test_case "input validation" `Quick test_with_assignment_validates_input;
          Alcotest.test_case "ipc" `Quick test_schedule_ipc;
          qc prop_unified_schedules_validate;
          qc prop_length_bounded_by_critical_path;
          qc prop_fixed_zero_assignment_no_moves;
        ] );
      ( "modulo",
        [
          Alcotest.test_case "carried edges" `Quick test_loop_ddg_carried_edges;
          Alcotest.test_case "rec mii reduction" `Quick test_rec_mii_reduction;
          Alcotest.test_case "rec mii acyclic" `Quick test_rec_mii_acyclic_is_one;
          Alcotest.test_case "res mii" `Quick test_res_mii_counts_slots;
          Alcotest.test_case "achieves mii" `Quick test_modulo_schedule_achieves_mii;
          Alcotest.test_case "cross-cluster cost" `Quick test_modulo_cross_cluster_costs;
          Alcotest.test_case "daxpy kernel" `Quick test_modulo_kernel_daxpy;
          qc prop_modulo_validates;
        ] );
      ( "four-cluster",
        [ Alcotest.test_case "schedules" `Quick test_four_cluster_machine_schedules ] );
      ( "eval",
        [
          Alcotest.test_case "unified runs" `Quick test_eval_unified_runs;
          Alcotest.test_case "fixed monocluster" `Quick test_eval_fixed_matches_assignment;
          Alcotest.test_case "rhop competitive" `Slow test_eval_rhop_competitive_with_unified;
        ] );
    ]
