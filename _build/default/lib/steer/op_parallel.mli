(** The §2.1 strawman: dependence-based steering implemented "as
    register renaming", i.e. all micro-ops of a decode bundle vote in
    parallel against the locations captured at the start of the cycle,
    without seeing where earlier micro-ops of the same bundle just
    went.

    On the paper's three-instruction example this produces two copies
    where the sequential implementation produces zero; the ablation
    bench quantifies the same gap on full traces. *)

val make :
  ?stall_threshold:int -> ?imbalance_limit:int -> unit ->
  Clusteer_uarch.Policy.t
