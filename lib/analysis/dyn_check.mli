(** Dynamic steering-trace invariants for the hybrid VC policy.

    The hardware contract (paper §4.2, Fig. 3) is that the VC→cluster
    table is consulted for every annotated micro-op but may be
    {e remapped} only at chain leaders. Replaying a recorded decision
    stream against an oracle table — initialised exactly like
    {!Clusteer_steer.Vc_map.make}, updated only at leaders — verifies
    that a policy implementation honours the contract.

    This module also hosts the {e drift checker}: given a
    {!Cost_model.t} and the counters of a finished run, verify that the
    dynamic copy and remap behavior landed inside the static bounds the
    compiler promised.

    Codes:
    - [DYN001] — a recorded event names a static uop id out of range.
    - [DYN002] — a non-leader micro-op was steered away from its VC's
      current table entry (an illegal mid-chain remap).
    - [CM100] (info) — prediction-vs-run summary.
    - [CM101] — dynamic copies exceed {!Cost_model.copy_bound}.
    - [CM102] — more remaps than chain-leader decisions (a mid-chain
      remap slipped past the table contract).
    - [CM103] — a remap moved a VC farther than the topology diameter. *)

open Clusteer_isa
module Uarch = Clusteer_uarch

val codes : string list
val drift_codes : string list

type event = {
  uop : int;  (** static micro-op id *)
  cluster : int;  (** cluster the policy dispatched it to *)
}

val recording : Uarch.Policy.t -> Uarch.Policy.t * (unit -> event list)
(** Wrap a policy so every [Dispatch_to] decision is recorded; the
    second component returns the events seen so far, oldest first.
    [Stall] decisions are not events — the engine retries them. *)

val check : annot:Annot.t -> clusters:int -> event list -> Diag.t list
(** Replay a decision stream against the oracle table. Events for
    unannotated micro-ops ([vc = -1]) are free choices and always
    legal. *)

(** {1 Prediction-vs-run drift} *)

type run = {
  dispatched : int;  (** program uops dispatched (copies excluded) *)
  copies_generated : int;
  remaps : int;  (** [vc.remaps] counter *)
  leader_decisions : int;  (** [vc.leader_decisions] counter *)
  remap_hops_max : int;  (** largest [steer.remap.hops] observation *)
}

val observe_run :
  registry:Clusteer_obs.Counters.registry -> Uarch.Stats.t -> run
(** Snapshot the quantities the drift check needs from a finished run:
    engine stats plus the steering policy's counters in [registry].
    Counters a policy never registered read as zero, so the same
    snapshot works for static and hardware-only schemes. *)

val check_drift : model:Cost_model.t -> run -> Diag.t list
(** Compare a run against the static model: always one CM100 info,
    plus CM101/CM102/CM103 errors on any bound violation. *)
