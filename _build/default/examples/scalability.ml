(* Scalability of the hybrid scheme (paper §5.4): the same workloads on
   2- and 4-cluster machines, comparing hardware-only steering with
   VC(2), VC(4->4) and VC(2->4).

     dune exec examples/scalability.exe *)

module Config = Clusteer_uarch.Config
module Stats = Clusteer_uarch.Stats
module Runner = Clusteer_harness.Runner
module Metrics = Clusteer_harness.Metrics
module Spec2000 = Clusteer_workloads.Spec2000
module Pinpoints = Clusteer_workloads.Pinpoints
module Table = Clusteer_util.Table

let benchmarks = [ "178.galgel"; "171.swim"; "186.crafty"; "200.sixtrack" ]
let uops = 15_000

let run ~clusters ~configs name =
  let profile = Spec2000.find name in
  let point = List.hd (Pinpoints.points profile) in
  (Runner.run_point ~machine:(Config.default ~clusters) ~configs ~uops point)
    .Runner.runs

let () =
  Fmt.pr "Scalability study: 2 vs 4 clusters, %d micro-ops per point@.@." uops;
  let header =
    [| "benchmark"; "2c IPC(op)"; "2c vc2"; "4c IPC(op)"; "4c vc4"; "4c vc2" |]
  in
  let rows =
    List.map
      (fun name ->
        let r2 =
          run ~clusters:2
            ~configs:
              [
                Clusteer.Configuration.Op;
                Clusteer.Configuration.Vc { virtual_clusters = 2 };
              ]
            name
        in
        let r4 =
          run ~clusters:4
            ~configs:
              [
                Clusteer.Configuration.Op;
                Clusteer.Configuration.Vc { virtual_clusters = 4 };
                Clusteer.Configuration.Vc { virtual_clusters = 2 };
              ]
            name
        in
        let slow runs base other =
          Metrics.slowdown_pct ~baseline:(List.assoc base runs)
            (List.assoc other runs)
        in
        [|
          name;
          Printf.sprintf "%.2f" (Stats.ipc (List.assoc "op" r2));
          Printf.sprintf "%+.2f%%" (slow r2 "op" "vc2");
          Printf.sprintf "%.2f" (Stats.ipc (List.assoc "op" r4));
          Printf.sprintf "%+.2f%%" (slow r4 "op" "vc4");
          Printf.sprintf "%+.2f%%" (slow r4 "op" "vc2");
        |])
      benchmarks
  in
  print_string (Table.render ~header rows);
  Fmt.pr
    "@.vcN columns are slowdowns vs the occupancy-aware hardware baseline@.\
     on the same machine. The paper's guidance: keep the number of@.\
     virtual clusters at two even on the 4-cluster machine (VC(2->4)).@."
