lib/compiler/passes.mli: Annot Clusteer_isa Program
