(* Tests for the microarchitecture simulator: configuration, caches,
   memory system, branch predictor, statistics and the engine itself. *)

open Clusteer_isa
open Clusteer_trace
open Clusteer_uarch

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- Config --------------------------------------------------------- *)

let test_config_defaults () =
  check_int "2c" 2 Config.default_2c.Config.clusters;
  check_int "4c" 4 Config.default_4c.Config.clusters;
  Config.validate Config.default_2c;
  Config.validate Config.default_4c;
  check_int "iq" 48 Config.default_2c.Config.int_iq_size;
  check_int "copyq" 24 Config.default_2c.Config.copy_q_size;
  check_int "mem" 500 Config.default_2c.Config.memory_latency

let test_config_validation () =
  Alcotest.check_raises "bad clusters"
    (Invalid_argument "Config: clusters must be positive") (fun () ->
      Config.validate { Config.default_2c with Config.clusters = 0 })

let test_config_describe () =
  let rows = Config.describe Config.default_2c in
  check_bool "non-empty" true (List.length rows >= 8);
  check_bool "mentions LSQ" true
    (List.exists (fun (_, v) -> String.length v > 0 && String.length v < 200) rows)

(* ---- Cache ----------------------------------------------------------- *)

let tiny_cache () =
  (* 2 sets x 2 ways x 64B lines = 256B *)
  Cache.create
    { Config.size_bytes = 256; ways = 2; line_bytes = 64; hit_latency = 1 }

let test_cache_geometry () =
  let c = tiny_cache () in
  check_int "sets" 2 (Cache.sets c);
  check_int "ways" 2 (Cache.ways c)

let test_cache_hit_after_fill () =
  let c = tiny_cache () in
  check_bool "first miss" true (Cache.access c ~addr:0 ~write:false = Cache.Miss);
  check_bool "then hit" true (Cache.access c ~addr:0 ~write:false = Cache.Hit);
  check_bool "same line hit" true (Cache.access c ~addr:63 ~write:false = Cache.Hit);
  check_bool "next line miss" true (Cache.access c ~addr:64 ~write:false = Cache.Miss)

let test_cache_lru_eviction () =
  let c = tiny_cache () in
  (* Set 0 holds lines with addr mod 128 = 0: 0, 128, 256... *)
  ignore (Cache.access c ~addr:0 ~write:false);
  ignore (Cache.access c ~addr:128 ~write:false);
  (* Touch 0 so 128 is LRU, then bring in 256: 128 must be evicted. *)
  ignore (Cache.access c ~addr:0 ~write:false);
  ignore (Cache.access c ~addr:256 ~write:false);
  check_bool "0 still resident" true (Cache.probe c ~addr:0);
  check_bool "128 evicted" false (Cache.probe c ~addr:128);
  check_bool "256 resident" true (Cache.probe c ~addr:256)

let test_cache_stats_and_reset () =
  let c = tiny_cache () in
  ignore (Cache.access c ~addr:0 ~write:false);
  ignore (Cache.access c ~addr:0 ~write:false);
  check_int "hits" 1 (Cache.hits c);
  check_int "misses" 1 (Cache.misses c);
  Cache.reset_stats c;
  check_int "reset" 0 (Cache.hits c + Cache.misses c)

let test_cache_invalidate () =
  let c = tiny_cache () in
  ignore (Cache.access c ~addr:0 ~write:false);
  Cache.invalidate_all c;
  check_bool "gone" false (Cache.probe c ~addr:0)

let test_cache_touch_no_stats () =
  let c = tiny_cache () in
  Cache.touch c ~addr:0;
  check_int "no stats from touch" 0 (Cache.hits c + Cache.misses c);
  check_bool "line resident" true (Cache.probe c ~addr:0)

let test_cache_power_of_two_required () =
  Alcotest.check_raises "non power-of-two sets"
    (Invalid_argument "Cache.create: set count must be a power of two")
    (fun () ->
      ignore
        (Cache.create
           { Config.size_bytes = 192; ways = 1; line_bytes = 64; hit_latency = 1 }))

(* ---- Tracecache ----------------------------------------------------------- *)

let test_tracecache_hits_after_fill () =
  let tc = Tracecache.create ~size_uops:48 ~line_uops:6 ~ways:4 in
  check_bool "first touch misses" false (Tracecache.lookup tc ~static_id:0);
  check_bool "same line hits" true (Tracecache.lookup tc ~static_id:5);
  check_bool "next line misses" false (Tracecache.lookup tc ~static_id:6);
  check_int "stats" 2 (Tracecache.misses tc);
  check_int "stats" 1 (Tracecache.hits tc)

let test_tracecache_lru () =
  (* 8 lines, 4 ways, 2 sets: lines 0,2,4,6,8 share set 0. *)
  let tc = Tracecache.create ~size_uops:48 ~line_uops:6 ~ways:4 in
  List.iter (fun l -> ignore (Tracecache.lookup tc ~static_id:(l * 6)))
    [ 0; 2; 4; 6 ];
  ignore (Tracecache.lookup tc ~static_id:0) (* refresh line 0 *);
  ignore (Tracecache.lookup tc ~static_id:48) (* line 8 evicts LRU (2) *);
  check_bool "line 0 kept" true (Tracecache.lookup tc ~static_id:0);
  check_bool "line 2 evicted" false (Tracecache.lookup tc ~static_id:12)

let test_tracecache_reset () =
  let tc = Tracecache.create ~size_uops:48 ~line_uops:6 ~ways:4 in
  ignore (Tracecache.lookup tc ~static_id:0);
  Tracecache.reset_stats tc;
  check_int "reset" 0 (Tracecache.hits tc + Tracecache.misses tc)

let test_tracecache_validation () =
  Alcotest.check_raises "bad geometry"
    (Invalid_argument "Tracecache.create: set count must be a power of two")
    (fun () -> ignore (Tracecache.create ~size_uops:36 ~line_uops:6 ~ways:2))

(* ---- Memsys ------------------------------------------------------------ *)

let test_memsys_latencies () =
  let m = Memsys.create Config.default_2c in
  (* Cold: L1 miss + L2 miss -> memory. *)
  check_int "cold" (3 + 13 + 500) (Memsys.load_latency m ~addr:0);
  (* Now resident everywhere. *)
  check_int "l1 hit" 3 (Memsys.load_latency m ~addr:0)

let test_memsys_l2_hit_after_l1_eviction () =
  let m = Memsys.create Config.default_2c in
  (* Fill far beyond L1 (32KB) but within L2 (2MB): early lines are
     evicted from L1 but still in L2. *)
  for i = 0 to 2047 do
    ignore (Memsys.load_latency m ~addr:(i * 64))
  done;
  check_int "l2 hit" (3 + 13) (Memsys.load_latency m ~addr:0)

let test_memsys_prewarm () =
  let m = Memsys.create Config.default_2c in
  Memsys.prewarm m ~base:0 ~bytes:4096;
  check_int "prewarmed l1 hit" 3 (Memsys.load_latency m ~addr:64);
  check_int "stats clean" 0 (Memsys.l1_misses m + Memsys.l1_hits m - 1)

let test_memsys_prefetch_next_line () =
  let cfg = { Config.default_2c with Config.prefetch_next_line = true } in
  let m = Memsys.create cfg in
  (* miss at 0 prefetches line 64: the next sequential access hits *)
  ignore (Memsys.load_latency m ~addr:0);
  check_int "next line L1 hit" 3 (Memsys.load_latency m ~addr:64);
  (* without prefetch the same pattern misses *)
  let m2 = Memsys.create Config.default_2c in
  ignore (Memsys.load_latency m2 ~addr:0);
  check_bool "baseline misses" true (Memsys.load_latency m2 ~addr:64 > 3)

let test_memsys_stats () =
  let m = Memsys.create Config.default_2c in
  ignore (Memsys.load_latency m ~addr:0);
  ignore (Memsys.load_latency m ~addr:0);
  check_int "l1" 1 (Memsys.l1_hits m);
  check_int "l1 misses" 1 (Memsys.l1_misses m);
  check_int "l2 misses" 1 (Memsys.l2_misses m);
  Memsys.reset_stats m;
  check_int "reset" 0 (Memsys.l1_hits m)

(* ---- Bpred --------------------------------------------------------------- *)

let test_bpred_learns_bias () =
  let p = Bpred.create ~bits:10 in
  for _ = 1 to 200 do
    Bpred.update p ~pc:5 ~taken:true
  done;
  check_bool "predicts taken" true (Bpred.predict p ~pc:5);
  check_bool "high accuracy" true (Bpred.accuracy p > 0.95)

let test_bpred_learns_alternation () =
  let p = Bpred.create ~bits:10 in
  for i = 1 to 400 do
    Bpred.update p ~pc:5 ~taken:(i mod 2 = 0)
  done;
  (* Global history disambiguates the alternating pattern. *)
  check_bool "learns pattern" true (Bpred.accuracy p > 0.8)

let test_bpred_random_is_hard () =
  let p = Bpred.create ~bits:10 in
  let rng = Clusteer_util.Rng.create 77 in
  Bpred.reset_stats p;
  for _ = 1 to 2000 do
    Bpred.update p ~pc:9 ~taken:(Clusteer_util.Rng.bool rng)
  done;
  check_bool "near coin flip" true
    (Bpred.accuracy p > 0.35 && Bpred.accuracy p < 0.65)

let test_bpred_stats_reset () =
  let p = Bpred.create ~bits:8 in
  Bpred.update p ~pc:0 ~taken:true;
  Bpred.reset_stats p;
  check_int "lookups" 0 (Bpred.lookups p);
  check_int "mispredicts" 0 (Bpred.mispredicts p)

(* ---- Stats ------------------------------------------------------------------ *)

let test_stats_ipc_and_metrics () =
  let s = Stats.create ~clusters:2 in
  s.Stats.cycles <- 100;
  s.Stats.committed <- 250;
  Alcotest.(check (float 1e-9)) "ipc" 2.5 (Stats.ipc s);
  s.Stats.copies_generated <- 50;
  Alcotest.(check (float 1e-9)) "copy rate" 0.2 (Stats.copy_rate s);
  s.Stats.stall_iq_full <- 3;
  s.Stats.stall_policy <- 4;
  s.Stats.stall_copyq_full <- 5;
  check_int "allocation stalls" 12 (Stats.allocation_stalls s)

let test_stats_balance_entropy () =
  let s = Stats.create ~clusters:2 in
  s.Stats.per_cluster_dispatched.(0) <- 100;
  s.Stats.per_cluster_dispatched.(1) <- 100;
  Alcotest.(check (float 1e-9)) "even" 1.0 (Stats.balance_entropy s);
  s.Stats.per_cluster_dispatched.(1) <- 0;
  Alcotest.(check (float 1e-9)) "skewed" 0.0 (Stats.balance_entropy s)

let test_stats_reset () =
  let s = Stats.create ~clusters:2 in
  s.Stats.cycles <- 10;
  s.Stats.per_cluster_dispatched.(0) <- 5;
  Stats.reset s;
  check_int "cycles" 0 s.Stats.cycles;
  check_int "per-cluster" 0 s.Stats.per_cluster_dispatched.(0)

(* ---- Engine ------------------------------------------------------------------- *)

(* Single-block program of [n] micro-ops built by [make_uop]. *)
let straightline n make_uop =
  let b = Program.Builder.create ~name:"t" ~nregs_per_class:16 () in
  let uops = List.init n (fun i -> make_uop b i) in
  let blk = Program.Builder.add_block b uops ~succs:[] in
  Program.Builder.finish b ~entry:blk

let source_of program ?(branches = [||]) ?(streams = [||]) seed =
  let gen = Tracegen.create ~program ~branches ~streams ~seed in
  fun () -> Tracegen.next gen

let run_with ?(config = Config.default_2c) ?annot ~policy program ~uops =
  let annot =
    match annot with
    | Some a -> a
    | None -> Annot.none ~uop_count:program.Program.uop_count
  in
  let engine = Engine.create ~config ~annot ~policy () in
  Engine.run engine ~source:(source_of program 1) ~uops

let serial_chain_program n =
  straightline n (fun b _ ->
      Program.Builder.uop b Opcode.Int_alu ~dst:(Reg.int 0) ~srcs:[| Reg.int 0 |] ())

let independent_program n =
  straightline n (fun b i ->
      Program.Builder.uop b Opcode.Int_alu ~dst:(Reg.int (i mod 8)) ())

let test_engine_commits_exactly () =
  let p = independent_program 16 in
  let stats = run_with ~policy:(Clusteer_steer.One_cluster.make ()) p ~uops:500 in
  check_bool "committed in window" true
    (stats.Stats.committed >= 500 && stats.Stats.committed < 508)

let test_engine_serial_chain_rate () =
  (* A serial 1-cycle chain issues at most one per cycle. *)
  let p = serial_chain_program 16 in
  let stats = run_with ~policy:(Clusteer_steer.One_cluster.make ()) p ~uops:400 in
  check_bool "at least 1 cycle per uop" true (stats.Stats.cycles >= 400);
  check_bool "no pathological overhead" true (stats.Stats.cycles < 500)

let test_engine_independent_throughput () =
  (* Independent ALUs on one cluster: bounded by the 2-wide INT issue. *)
  let p = independent_program 16 in
  let one = run_with ~policy:(Clusteer_steer.One_cluster.make ()) p ~uops:2000 in
  check_bool "about 2 ipc" true
    (Stats.ipc one > 1.6 && Stats.ipc one <= 2.05);
  (* OP over two clusters doubles the issue bandwidth. *)
  let op = run_with ~policy:(Clusteer_steer.Op.make ()) p ~uops:2000 in
  check_bool "faster with 2 clusters" true (op.Stats.cycles < one.Stats.cycles)

let test_engine_one_cluster_no_copies () =
  let p = serial_chain_program 32 in
  let stats = run_with ~policy:(Clusteer_steer.One_cluster.make ()) p ~uops:1000 in
  check_int "zero copies" 0 stats.Stats.copies_generated;
  check_int "one cluster only" 0 stats.Stats.per_cluster_dispatched.(1)

let test_engine_forced_copies () =
  (* Alternate a serial chain across clusters via a static annotation:
     every transition needs a copy. *)
  let n = 16 in
  let p = serial_chain_program n in
  let annot = Annot.create_static ~scheme:"alt" ~uop_count:n in
  Array.iteri (fun i _ -> annot.Annot.cluster_of.(i) <- i mod 2) annot.Annot.cluster_of;
  let policy = Clusteer_steer.Static.make ~name:"alt" ~annot in
  let stats = run_with ~annot ~policy p ~uops:400 in
  check_bool "copies generated" true (stats.Stats.copies_generated > 300);
  check_bool "copies executed" true
    (stats.Stats.copies_executed <= stats.Stats.copies_generated);
  (* Same chain kept on one cluster is faster. *)
  let mono = run_with ~policy:(Clusteer_steer.One_cluster.make ()) p ~uops:400 in
  check_bool "cross-cluster chain slower" true
    (stats.Stats.cycles > mono.Stats.cycles)

let test_engine_determinism () =
  let p = independent_program 32 in
  let s1 = run_with ~policy:(Clusteer_steer.Op.make ()) p ~uops:1000 in
  let s2 = run_with ~policy:(Clusteer_steer.Op.make ()) p ~uops:1000 in
  check_int "same cycles" s1.Stats.cycles s2.Stats.cycles;
  check_int "same copies" s1.Stats.copies_generated s2.Stats.copies_generated

let test_engine_load_latency_counted () =
  let b = Program.Builder.create ~name:"ld" ~nregs_per_class:16 () in
  let s = Program.Builder.stream b in
  let ld =
    Program.Builder.uop b Opcode.Load ~dst:(Reg.int 0) ~srcs:[| Reg.int 1 |]
      ~stream:s ()
  in
  let blk = Program.Builder.add_block b [ ld ] ~succs:[] in
  let program = Program.Builder.finish b ~entry:blk in
  let streams = [| Mem_model.Strided { base = 0; stride = 0o10; footprint = 64 } |] in
  let engine =
    Engine.create ~config:Config.default_2c
      ~annot:(Annot.none ~uop_count:1)
      ~policy:(Clusteer_steer.One_cluster.make ())
      ~prewarm:[ (0, 64) ] ()
  in
  let stats =
    Engine.run engine ~source:(source_of program ~streams 1) ~uops:100
  in
  (* loads are counted at dispatch, which runs ahead of commit *)
  check_bool "loads counted" true (stats.Stats.loads >= 100);
  check_bool "l1 hits dominate" true (stats.Stats.l1_hits >= 99)

let test_engine_branch_mispredict_costs () =
  let mk_branch_prog () =
    let b = Program.Builder.create ~name:"br" ~nregs_per_class:16 () in
    let m = Program.Builder.branch_model b in
    let blk = Program.Builder.reserve_block b in
    let exit_ = Program.Builder.reserve_block b in
    let uops =
      [
        Program.Builder.uop b Opcode.Int_alu ~dst:(Reg.int 0) ();
        Program.Builder.uop b Opcode.Int_alu ~dst:(Reg.int 1) ();
        Program.Builder.uop b Opcode.Int_alu ~dst:(Reg.int 2) ();
        Program.Builder.uop b Opcode.Branch ~srcs:[| Reg.int 0 |] ~branch_ref:m ();
      ]
    in
    Program.Builder.define_block b blk uops ~succs:[ exit_; blk ];
    Program.Builder.define_block b exit_ [] ~succs:[];
    Program.Builder.finish b ~entry:blk
  in
  let run branches =
    let program = mk_branch_prog () in
    let engine =
      Engine.create ~config:Config.default_2c
        ~annot:(Annot.none ~uop_count:4)
        ~policy:(Clusteer_steer.One_cluster.make ())
        ()
    in
    Engine.run engine ~source:(source_of program ~branches 1) ~uops:2000
  in
  let predictable = run [| Branch_model.Loop 1000 |] in
  let random = run [| Branch_model.Bernoulli 0.5 |] in
  check_bool "few mispredicts when predictable" true
    (predictable.Stats.branch_mispredicts < 50);
  check_bool "many mispredicts when random" true
    (random.Stats.branch_mispredicts > 100);
  check_bool "mispredicts cost cycles" true
    (random.Stats.cycles > predictable.Stats.cycles)

let test_engine_reset_equals_fresh () =
  (* Dirty an engine with one policy and trace seed, then [Engine.reset]
     it in place onto a different policy and seed: caches, predictor,
     trace cache, rename state and every queue must return to their
     post-create state, so the replay is bit-identical to a freshly
     created engine. This is the contract the parallel harness's
     engine-reuse cache leans on. *)
  let b = Program.Builder.create ~name:"reset" ~nregs_per_class:16 () in
  let s = Program.Builder.stream b in
  let m = Program.Builder.branch_model b in
  let blk = Program.Builder.reserve_block b in
  let exit_ = Program.Builder.reserve_block b in
  let uops =
    [
      Program.Builder.uop b Opcode.Load ~dst:(Reg.int 0) ~srcs:[| Reg.int 1 |]
        ~stream:s ();
      Program.Builder.uop b Opcode.Int_alu ~dst:(Reg.int 2)
        ~srcs:[| Reg.int 0 |] ();
      Program.Builder.uop b Opcode.Branch ~srcs:[| Reg.int 2 |] ~branch_ref:m
        ();
    ]
  in
  Program.Builder.define_block b blk uops ~succs:[ exit_; blk ];
  Program.Builder.define_block b exit_ [] ~succs:[];
  let program = Program.Builder.finish b ~entry:blk in
  let streams =
    [| Mem_model.Strided { base = 0; stride = 0o10; footprint = 4096 } |]
  in
  let branches = [| Branch_model.Bernoulli 0.7 |] in
  let annot = Annot.none ~uop_count:program.Program.uop_count in
  let prewarm = [ (0, 4096) ] in
  let dirty =
    Engine.create ~config:Config.default_2c ~annot
      ~policy:(Clusteer_steer.Op.make ()) ~prewarm ()
  in
  ignore
    (Engine.run dirty ~source:(source_of program ~branches ~streams 1)
       ~uops:1500);
  Engine.reset ~prewarm dirty ~annot ~policy:(Clusteer_steer.Dep.make ());
  let reused =
    Engine.run dirty ~source:(source_of program ~branches ~streams 2)
      ~uops:1500
  in
  let fresh_engine =
    Engine.create ~config:Config.default_2c ~annot
      ~policy:(Clusteer_steer.Dep.make ()) ~prewarm ()
  in
  let fresh =
    Engine.run fresh_engine ~source:(source_of program ~branches ~streams 2)
      ~uops:1500
  in
  check_bool "reset-in-place bit-identical to fresh" true
    (Stats.equal reused fresh);
  check_bool "the run did real work" true
    (fresh.Stats.committed >= 1500 && fresh.Stats.branch_mispredicts > 0)

let test_engine_warmup_resets () =
  let p = independent_program 16 in
  let engine =
    Engine.create ~config:Config.default_2c
      ~annot:(Annot.none ~uop_count:16)
      ~policy:(Clusteer_steer.One_cluster.make ())
      ()
  in
  let stats =
    Engine.run ~warmup:500 engine ~source:(source_of p 1) ~uops:1000
  in
  check_bool "only measured committed" true
    (stats.Stats.committed >= 1000 && stats.Stats.committed < 1008)

let test_engine_rob_stall_on_long_miss () =
  (* A cold far load at the ROB head with a stream of ALUs behind it
     must fill the ROB. *)
  let b = Program.Builder.create ~name:"miss" ~nregs_per_class:16 () in
  let s = Program.Builder.stream b in
  let uops =
    Program.Builder.uop b Opcode.Load ~dst:(Reg.int 8) ~srcs:[| Reg.int 1 |]
      ~stream:s ()
    :: List.init 20 (fun i ->
           Program.Builder.uop b Opcode.Int_alu ~dst:(Reg.int (i mod 8)) ())
  in
  let blk = Program.Builder.add_block b uops ~succs:[] in
  let program = Program.Builder.finish b ~entry:blk in
  let streams =
    [| Mem_model.Uniform { base = 0; footprint = 64 lsl 20; granule = 8 } |]
  in
  let engine =
    Engine.create ~config:Config.default_2c
      ~annot:(Annot.none ~uop_count:21)
      ~policy:(Clusteer_steer.One_cluster.make ())
      ()
  in
  let stats =
    Engine.run engine ~source:(source_of program ~streams 1) ~uops:3000
  in
  (* The 256-entry register file binds before the 512-entry ROB, so
     back-pressure may surface as either stall. *)
  check_bool "back-pressure observed" true
    (stats.Stats.stall_rob_full + stats.Stats.stall_regfile > 0)

let test_engine_regfile_pressure () =
  (* A tiny register file throttles in-flight destinations. *)
  let p = independent_program 16 in
  let config = { Config.default_2c with Config.int_regfile = 8 } in
  let stats =
    run_with ~config ~policy:(Clusteer_steer.One_cluster.make ()) p ~uops:2000
  in
  check_bool "regfile stalls" true (stats.Stats.stall_regfile > 0);
  check_bool "still commits" true (stats.Stats.committed >= 2000);
  (* The default 256-entry file never binds on the same workload. *)
  let free = run_with ~policy:(Clusteer_steer.One_cluster.make ()) p ~uops:2000 in
  check_int "no stalls at 256" 0 free.Stats.stall_regfile

let test_engine_rejects_rogue_policy () =
  (* Fault injection: a policy that steers out of range must fail with
     a clean diagnostic, not a segfault-ish array error. *)
  let rogue =
    {
      Policy.name = "rogue";
      decide = (fun _ _ -> Policy.Dispatch_to 7);
      uses_dependence_check = false;
      uses_vote_unit = false;
    }
  in
  let p = independent_program 4 in
  let engine =
    Engine.create ~config:Config.default_2c
      ~annot:(Annot.none ~uop_count:4)
      ~policy:rogue ()
  in
  Alcotest.check_raises "clean failure"
    (Invalid_argument
       "Engine: policy rogue steered micro-op 0 to invalid cluster 7")
    (fun () -> ignore (Engine.run engine ~source:(source_of p 1) ~uops:10))

let test_energy_estimate_shape () =
  let p = independent_program 16 in
  let one = run_with ~policy:(Clusteer_steer.One_cluster.make ()) p ~uops:2000 in
  let e = Energy.estimate ~clusters:2 one in
  check_bool "total positive" true (e.Energy.total > 0.0);
  check_bool "total = dynamic + static" true
    (abs_float (e.Energy.total -. (e.Energy.dynamic +. e.Energy.static_))
    < 1e-6);
  check_bool "no copy energy without copies" true (e.Energy.copies = 0.0);
  (* Forced copies cost energy. *)
  let n = 16 in
  let chain = serial_chain_program n in
  let annot = Annot.create_static ~scheme:"alt" ~uop_count:n in
  Array.iteri (fun i _ -> annot.Annot.cluster_of.(i) <- i mod 2) annot.Annot.cluster_of;
  let policy = Clusteer_steer.Static.make ~name:"alt" ~annot in
  let alt = run_with ~annot ~policy chain ~uops:2000 in
  let e_alt = Energy.estimate ~clusters:2 alt in
  check_bool "copy energy positive" true (e_alt.Energy.copies > 0.0)

let test_energy_costs_scale_with_clusters () =
  let c2 = Energy.default_costs ~clusters:2 in
  let c4 = Energy.default_costs ~clusters:4 in
  check_bool "smaller clusters issue cheaper" true
    (c4.Energy.issue < c2.Energy.issue)

let test_engine_store_load_forwarding () =
  (* A load to the address of an in-flight older store must wait for
     the store; to an unrelated address it must not. Compare cycles of
     a dependent pattern vs an independent one. *)
  let mk same_addr =
    let b = Program.Builder.create ~name:"fwd" ~nregs_per_class:16 () in
    let s0 = Program.Builder.stream b in
    let s1 = Program.Builder.stream b in
    (* long-latency producer feeding the store's data *)
    let slow =
      Program.Builder.uop b Opcode.Int_div ~dst:(Reg.int 1)
        ~srcs:[| Reg.int 1 |] ()
    in
    let st =
      Program.Builder.uop b Opcode.Store ~srcs:[| Reg.int 1; Reg.int 2 |]
        ~stream:s0 ()
    in
    let ld =
      Program.Builder.uop b Opcode.Load ~dst:(Reg.int 3) ~srcs:[| Reg.int 4 |]
        ~stream:(if same_addr then s0 else s1) ()
    in
    let use =
      Program.Builder.uop b Opcode.Int_alu ~dst:(Reg.int 5)
        ~srcs:[| Reg.int 3 |] ()
    in
    let blk = Program.Builder.add_block b [ slow; st; ld; use ] ~succs:[] in
    Program.Builder.finish b ~entry:blk
  in
  (* both streams at the same fixed address when same_addr *)
  let streams =
    [|
      Mem_model.Strided { base = 0; stride = 8; footprint = 8 };
      Mem_model.Strided { base = 4096; stride = 8; footprint = 8 };
    |]
  in
  let run program =
    let engine =
      Engine.create ~config:Config.default_2c
        ~annot:(Annot.none ~uop_count:4)
        ~policy:(Clusteer_steer.One_cluster.make ())
        ~prewarm:[ (0, 64); (4096, 64) ] ()
    in
    Engine.run engine ~source:(source_of program ~streams 1) ~uops:1000
  in
  let dependent = run (mk true) in
  let independent = run (mk false) in
  check_bool "aliasing load waits for the slow store" true
    (dependent.Stats.cycles > independent.Stats.cycles)

let test_engine_lsq_backpressure () =
  (* More in-flight memory operations than LSQ entries: dispatch must
     stall on the LSQ, not crash or deadlock. *)
  let b = Program.Builder.create ~name:"lsq" ~nregs_per_class:16 () in
  let st = Program.Builder.stream b in
  (* a serial divide chain at the head keeps commits slow while many
     independent loads pile into the LSQ *)
  let div =
    Program.Builder.uop b Opcode.Int_div ~dst:(Reg.int 1) ~srcs:[| Reg.int 1 |] ()
  in
  let loads =
    List.init 12 (fun i ->
        Program.Builder.uop b Opcode.Load
          ~dst:(Reg.int (2 + (i mod 8)))
          ~srcs:[| Reg.int 0 |] ~stream:st ())
  in
  let blk = Program.Builder.add_block b (div :: loads) ~succs:[] in
  let program = Program.Builder.finish b ~entry:blk in
  let streams = [| Mem_model.Strided { base = 0; stride = 8; footprint = 4096 } |] in
  let config = { Config.default_2c with Config.lsq_size = 8 } in
  let engine =
    Engine.create ~config
      ~annot:(Annot.none ~uop_count:13)
      ~policy:(Clusteer_steer.One_cluster.make ())
      ~prewarm:[ (0, 4096) ] ()
  in
  let stats = Engine.run engine ~source:(source_of program ~streams 1) ~uops:2000 in
  check_bool "lsq stalls observed" true (stats.Stats.stall_lsq_full > 0);
  check_bool "still commits" true (stats.Stats.committed >= 2000)

let test_engine_copy_queue_backpressure () =
  (* A tiny copy queue with a copy-heavy placement: dispatch must stall
     on the copy queue and still make progress. *)
  let n = 12 in
  let p = serial_chain_program n in
  let annot = Annot.create_static ~scheme:"alt" ~uop_count:n in
  Array.iteri (fun i _ -> annot.Annot.cluster_of.(i) <- i mod 2) annot.Annot.cluster_of;
  let config = { Config.default_2c with Config.copy_q_size = 1 } in
  let stats =
    run_with ~config ~annot
      ~policy:(Clusteer_steer.Static.make ~name:"alt" ~annot)
      p ~uops:500
  in
  check_bool "copy-queue stalls observed" true (stats.Stats.stall_copyq_full > 0);
  check_bool "still commits" true (stats.Stats.committed >= 500)

let test_engine_tracecache_stress () =
  (* A static footprint far beyond the trace cache forces steady-state
     misses; shrinking the cache must cost cycles. *)
  let wide = straightline 4000 (fun b i ->
      Program.Builder.uop b Opcode.Int_alu ~dst:(Reg.int (i mod 8)) ())
  in
  let run config =
    let engine =
      Engine.create ~config
        ~annot:(Annot.none ~uop_count:4000)
        ~policy:(Clusteer_steer.One_cluster.make ())
        ()
    in
    Engine.run engine ~source:(source_of wide 1) ~uops:8000
  in
  let big = run Config.default_2c in
  let tiny = run { Config.default_2c with Config.tc_size_uops = 48 } in
  check_bool "default cache holds the loop" true
    (big.Stats.tc_misses <= 4000 / 6 * 3);
  check_bool "tiny cache misses constantly" true
    (tiny.Stats.tc_misses > big.Stats.tc_misses);
  check_bool "misses cost cycles" true (tiny.Stats.cycles > big.Stats.cycles)

let test_thermal_estimate () =
  let p = independent_program 16 in
  (* one-cluster concentrates all activity: cluster 0 must be the hot
     spot with a visible spread *)
  let mono = run_with ~policy:(Clusteer_steer.One_cluster.make ()) p ~uops:2000 in
  let t_mono = Thermal.estimate ~clusters:2 mono in
  check_int "hotspot is cluster 0" 0 t_mono.Thermal.hottest;
  check_bool "visible spread" true (t_mono.Thermal.spread > 0.0);
  check_bool "above ambient" true (t_mono.Thermal.per_cluster.(0) > 45.0);
  (* balanced steering shrinks the spread *)
  let op = run_with ~policy:(Clusteer_steer.Op.make ()) p ~uops:2000 in
  let t_op = Thermal.estimate ~clusters:2 op in
  check_bool "balance cools" true (t_op.Thermal.spread < t_mono.Thermal.spread)

let test_engine_rejects_bad_args () =
  let p = independent_program 4 in
  let engine =
    Engine.create ~config:Config.default_2c
      ~annot:(Annot.none ~uop_count:4)
      ~policy:(Clusteer_steer.One_cluster.make ())
      ()
  in
  Alcotest.check_raises "zero uops"
    (Invalid_argument "Engine.run: uops must be positive") (fun () ->
      ignore (Engine.run engine ~source:(source_of p 1) ~uops:0))

let () =
  Alcotest.run "clusteer_uarch"
    [
      ( "config",
        [
          Alcotest.test_case "defaults" `Quick test_config_defaults;
          Alcotest.test_case "validation" `Quick test_config_validation;
          Alcotest.test_case "describe" `Quick test_config_describe;
        ] );
      ( "cache",
        [
          Alcotest.test_case "geometry" `Quick test_cache_geometry;
          Alcotest.test_case "hit after fill" `Quick test_cache_hit_after_fill;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "stats" `Quick test_cache_stats_and_reset;
          Alcotest.test_case "invalidate" `Quick test_cache_invalidate;
          Alcotest.test_case "touch" `Quick test_cache_touch_no_stats;
          Alcotest.test_case "power of two" `Quick test_cache_power_of_two_required;
        ] );
      ( "tracecache",
        [
          Alcotest.test_case "hits after fill" `Quick test_tracecache_hits_after_fill;
          Alcotest.test_case "lru" `Quick test_tracecache_lru;
          Alcotest.test_case "reset" `Quick test_tracecache_reset;
          Alcotest.test_case "validation" `Quick test_tracecache_validation;
        ] );
      ( "memsys",
        [
          Alcotest.test_case "latencies" `Quick test_memsys_latencies;
          Alcotest.test_case "l2 hit after l1 eviction" `Quick test_memsys_l2_hit_after_l1_eviction;
          Alcotest.test_case "prewarm" `Quick test_memsys_prewarm;
          Alcotest.test_case "stats" `Quick test_memsys_stats;
          Alcotest.test_case "next-line prefetch" `Quick test_memsys_prefetch_next_line;
        ] );
      ( "bpred",
        [
          Alcotest.test_case "learns bias" `Quick test_bpred_learns_bias;
          Alcotest.test_case "learns alternation" `Quick test_bpred_learns_alternation;
          Alcotest.test_case "random is hard" `Quick test_bpred_random_is_hard;
          Alcotest.test_case "stats reset" `Quick test_bpred_stats_reset;
        ] );
      ( "stats",
        [
          Alcotest.test_case "ipc and metrics" `Quick test_stats_ipc_and_metrics;
          Alcotest.test_case "balance entropy" `Quick test_stats_balance_entropy;
          Alcotest.test_case "reset" `Quick test_stats_reset;
        ] );
      ( "engine",
        [
          Alcotest.test_case "commits exactly" `Quick test_engine_commits_exactly;
          Alcotest.test_case "serial chain rate" `Quick test_engine_serial_chain_rate;
          Alcotest.test_case "independent throughput" `Quick test_engine_independent_throughput;
          Alcotest.test_case "one-cluster no copies" `Quick test_engine_one_cluster_no_copies;
          Alcotest.test_case "forced copies" `Quick test_engine_forced_copies;
          Alcotest.test_case "determinism" `Quick test_engine_determinism;
          Alcotest.test_case "load latency" `Quick test_engine_load_latency_counted;
          Alcotest.test_case "mispredict cost" `Quick test_engine_branch_mispredict_costs;
          Alcotest.test_case "reset equals fresh" `Quick
            test_engine_reset_equals_fresh;
          Alcotest.test_case "warmup resets" `Quick test_engine_warmup_resets;
          Alcotest.test_case "rob stall on miss" `Quick test_engine_rob_stall_on_long_miss;
          Alcotest.test_case "rejects bad args" `Quick test_engine_rejects_bad_args;
          Alcotest.test_case "rogue policy fault" `Quick test_engine_rejects_rogue_policy;
          Alcotest.test_case "regfile pressure" `Quick test_engine_regfile_pressure;
          Alcotest.test_case "store-load forwarding" `Quick test_engine_store_load_forwarding;
          Alcotest.test_case "lsq backpressure" `Quick test_engine_lsq_backpressure;
          Alcotest.test_case "copy queue backpressure" `Quick test_engine_copy_queue_backpressure;
          Alcotest.test_case "trace cache stress" `Quick test_engine_tracecache_stress;
          Alcotest.test_case "energy shape" `Quick test_energy_estimate_shape;
          Alcotest.test_case "energy cluster scaling" `Quick test_energy_costs_scale_with_clusters;
          Alcotest.test_case "thermal estimate" `Quick test_thermal_estimate;
        ] );
    ]
