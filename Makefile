# Convenience targets; everything below is plain dune + the CLI.

.PHONY: all build test bench smoke clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Fast end-to-end confidence: full build, the test suite, and one
# traced 10k-uop simulation whose Chrome trace must be valid JSON
# with interval telemetry.
smoke: build test
	dune exec bin/csteer.exe -- simulate -w mcf -n 10000 \
	  --trace-out _build/smoke_trace.json --trace-format json \
	  --stats-interval 1000
	@grep -q '"traceEvents"' _build/smoke_trace.json
	@echo "smoke: OK (_build/smoke_trace.json)"

clean:
	dune clean
