type snapshot = {
  cycle : int;
  committed : int;
  dispatched : int;
  copies_generated : int;
  copies_executed : int;
  link_transfers : int;
  stalls : int array;
  per_cluster_dispatched : int array;
}

type sample = {
  t_start : int;
  t_end : int;
  committed : int;
  dispatched : int;
  copies : int;
  copies_executed : int;
  link_transfers : int;
  stall_breakdown : int array;
  per_cluster : int array;
  ipc : float;
  copy_rate : float;
}

let diff prev next =
  if next.cycle <= prev.cycle then
    invalid_arg "Interval.diff: snapshots not in increasing cycle order";
  let cycles = next.cycle - prev.cycle in
  let committed = next.committed - prev.committed in
  let copies = next.copies_generated - prev.copies_generated in
  {
    t_start = prev.cycle + 1;
    t_end = next.cycle;
    committed;
    dispatched = next.dispatched - prev.dispatched;
    copies;
    copies_executed = next.copies_executed - prev.copies_executed;
    link_transfers = next.link_transfers - prev.link_transfers;
    stall_breakdown = Array.map2 ( - ) next.stalls prev.stalls;
    per_cluster =
      Array.map2 ( - ) next.per_cluster_dispatched prev.per_cluster_dispatched;
    ipc = float_of_int committed /. float_of_int cycles;
    copy_rate =
      (if committed = 0 then 0.0
       else float_of_int copies /. float_of_int committed);
  }

let contains s cycle = cycle >= s.t_start && cycle <= s.t_end

let csv_header ~clusters =
  [ "t_start"; "t_end"; "committed"; "dispatched"; "copies"; "ipc";
    "copy_rate" ]
  @ Array.to_list (Array.map (fun n -> "stall_" ^ n) Event.stall_names)
  @ List.init clusters (fun c -> Printf.sprintf "dispatch_c%d" c)

let csv_row s =
  [
    string_of_int s.t_start;
    string_of_int s.t_end;
    string_of_int s.committed;
    string_of_int s.dispatched;
    string_of_int s.copies;
    Printf.sprintf "%.4f" s.ipc;
    Printf.sprintf "%.4f" s.copy_rate;
  ]
  @ Array.to_list (Array.map string_of_int s.stall_breakdown)
  @ Array.to_list (Array.map string_of_int s.per_cluster)

let to_json s =
  let ints a = Json.List (Array.to_list (Array.map (fun n -> Json.Int n) a)) in
  Json.Obj
    [
      ("t_start", Json.Int s.t_start);
      ("t_end", Json.Int s.t_end);
      ("committed", Json.Int s.committed);
      ("dispatched", Json.Int s.dispatched);
      ("copies", Json.Int s.copies);
      ("copies_executed", Json.Int s.copies_executed);
      ("link_transfers", Json.Int s.link_transfers);
      ("ipc", Json.Float s.ipc);
      ("copy_rate", Json.Float s.copy_rate);
      ( "stalls",
        Json.Obj
          (Array.to_list
             (Array.mapi
                (fun i n -> (Event.stall_names.(i), Json.Int n))
                s.stall_breakdown)) );
      ("per_cluster", ints s.per_cluster);
    ]
