type direction = Forward | Backward

type 'a lattice = {
  bottom : 'a;
  equal : 'a -> 'a -> bool;
  join : 'a -> 'a -> 'a;
}

type cfg = { nblocks : int; succs : int -> int array }

type 'a result = { input : 'a array; output : 'a array; iterations : int }

exception Diverged of int

let of_program (p : Clusteer_isa.Program.t) =
  {
    nblocks = Array.length p.Clusteer_isa.Program.blocks;
    succs =
      (fun b -> p.Clusteer_isa.Program.blocks.(b).Clusteer_isa.Block.succs);
  }

let solve ?order ?fuel ?(seed = fun _ -> None) ~direction ~lattice ~cfg
    ~transfer () =
  let n = cfg.nblocks in
  let fuel =
    match fuel with Some f -> f | None -> (64 * (n + 1) * (n + 1)) + 256
  in
  let order =
    match order with Some o -> o | None -> Array.init n (fun i -> i)
  in
  if Array.length order <> n then
    invalid_arg "Fixpoint.solve: order must list every block once";
  let priority = Array.make n (-1) in
  Array.iteri
    (fun rank b ->
      if b < 0 || b >= n || priority.(b) >= 0 then
        invalid_arg "Fixpoint.solve: order must be a permutation of blocks";
      priority.(b) <- rank)
    order;
  (* Orient edges in flow direction once. *)
  let fpreds = Array.make n [] and fsuccs = Array.make n [] in
  for b = 0 to n - 1 do
    Array.iter
      (fun s ->
        if s < 0 || s >= n then
          invalid_arg "Fixpoint.solve: successor out of range"
        else begin
          match direction with
          | Forward ->
              fpreds.(s) <- b :: fpreds.(s);
              fsuccs.(b) <- s :: fsuccs.(b)
          | Backward ->
              fpreds.(b) <- s :: fpreds.(b);
              fsuccs.(s) <- b :: fsuccs.(s)
        end)
      (cfg.succs b)
  done;
  let by_priority l =
    List.sort_uniq (fun a b -> compare priority.(a) priority.(b)) l
  in
  for b = 0 to n - 1 do
    fpreds.(b) <- by_priority fpreds.(b);
    fsuccs.(b) <- by_priority fsuccs.(b)
  done;
  let input = Array.make n lattice.bottom in
  let output = Array.make n lattice.bottom in
  let queued = Array.make n false in
  let queue = Queue.create () in
  let enqueue b =
    if not queued.(b) then begin
      queued.(b) <- true;
      Queue.push b queue
    end
  in
  Array.iter enqueue order;
  let iterations = ref 0 in
  while not (Queue.is_empty queue) do
    let b = Queue.pop queue in
    queued.(b) <- false;
    incr iterations;
    if !iterations > fuel then raise (Diverged !iterations);
    let in_ =
      List.fold_left
        (fun acc p -> lattice.join acc output.(p))
        (match seed b with
        | None -> lattice.bottom
        | Some s -> lattice.join lattice.bottom s)
        fpreds.(b)
    in
    input.(b) <- in_;
    let out = transfer b in_ in
    if not (lattice.equal out output.(b)) then begin
      output.(b) <- out;
      List.iter enqueue fsuccs.(b)
    end
  done;
  { input; output; iterations = !iterations }
