lib/graphpart/refine.mli: Partition Wgraph
