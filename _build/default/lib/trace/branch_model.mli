(** Branch behaviour models.

    Each [Branch] micro-op in a program names one model by id; the
    trace generator keeps per-model mutable state and asks the model
    for an outcome at every dynamic instance. Outcome [true] (taken)
    selects successor 1 of the block, [false] selects successor 0.

    Predictability varies by constructor, which is what drives the
    front-end stall behaviour of the simulated machine: [Loop] branches
    are almost perfectly predictable, [Bernoulli] branches near
    [p = 0.5] are hard. *)

type t =
  | Bernoulli of float  (** independently taken with this probability *)
  | Loop of int
      (** taken [n-1] consecutive times, then not taken once (a loop
          back-edge with trip count [n]); [n >= 1] *)
  | Pattern of bool array  (** repeating fixed outcome sequence *)

type state

val make_state : t array -> seed:int -> state
(** Fresh per-model state for one trace walk. *)

val reset : state -> unit
(** Restart all models (used when a trace wraps back to the entry). *)

val outcome : state -> int -> bool
(** [outcome st id] draws the next outcome of model [id]. *)

val describe : t -> string
